(** satbelim — command-line front end.

    Subcommands:
    Input files ending in [.java] or [.mj] are compiled from mini-Java
    (see doc/minijava.md); anything else is parsed as jasm assembly.

    - [verify FILE]  — assemble and verify a program
    - [disasm FILE]  — assemble, inline, and print the expanded program
    - [analyze FILE] — run the barrier-removal analysis; print per-site
      verdicts and static statistics
    - [run FILE]     — interpret the program under a chosen collector and
      print dynamic barrier statistics
    - [profile FILE | --workload NAME] — run and report per-site barrier
      attribution, pause percentiles and MMU; [--json] saves the profile,
      [--baseline] gates against a saved one *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  let minijava =
    Filename.check_suffix path ".java" || Filename.check_suffix path ".mj"
  in
  try
    if minijava then Ok (Jsrc.Compile.compile_source (read_file path))
    else Ok (Jir.Parser.parse_linked (read_file path))
  with
  | Jir.Parser.Parse_error _ as e -> Error (Fmt.str "%a" Jir.Parser.pp_error e)
  | (Jsrc.Jparser.Parse_error _ | Jsrc.Jlexer.Lex_error _ | Jsrc.Compile.Type_error _)
    as e ->
      Error (Fmt.str "%a" Jsrc.Compile.pp_error e)
  | Jir.Program.Link_error msg -> Error msg
  | Sys_error msg -> Error msg

(* common args *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"jasm source file")

let inline_limit_arg =
  Arg.(
    value
    & opt int 100
    & info [ "inline-limit" ] ~docv:"N"
        ~doc:"Maximum callee size (instructions) to inline; 0 disables.")

let mode_arg =
  let mode_conv =
    Arg.conv
      ~docv:"MODE"
      ( (fun s ->
          match Satb_core.Analysis.mode_of_string s with
          | Some m -> Ok m
          | None -> Error (`Msg "expected B, F or A")),
        fun ppf m -> Fmt.string ppf (Satb_core.Analysis.string_of_mode m) )
  in
  Arg.(
    value
    & opt mode_conv Satb_core.Analysis.A
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"Analysis mode: B (none), F (fields), A (fields+arrays).")

let nos_arg =
  Arg.(
    value & flag
    & info [ "null-or-same" ] ~doc:"Enable the null-or-same extension (§4.3).")

let movedown_arg =
  Arg.(
    value & flag
    & info [ "move-down" ]
        ~doc:
          "Enable the move-down (delete-by-shift) elision (§4.3); only \
           applied to single-mutator programs and requires the SATB \
           collector's descending array scan.")

let swap_arg =
  Arg.(
    value & flag
    & info [ "swap" ]
        ~doc:
          "Enable the pairwise-swap elision (§4.3); only applied to \
           single-mutator programs and only sound under the retrace \
           collector's tracing-state protocol (--gc retrace).")

let summaries_arg =
  Arg.(
    value & flag
    & info [ "summaries" ]
        ~doc:
          "Consult interprocedural callee summaries at non-inlined calls \
           instead of the blanket havoc; elisions that depend on a \
           summary are guarded by the closed-world assumption and revoke \
           if a class load is observed.")

let debug_arg =
  Arg.(value & flag & info [ "debug" ] ~doc:"Trace abstract states on stderr.")

let conf_of mode nos md swap summaries debug =
  {
    Satb_core.Analysis.default_config with
    mode;
    null_or_same = nos;
    move_down = md;
    swap;
    summaries;
    debug;
  }

let or_die = function
  | Ok v -> v
  | Error msg ->
      Fmt.epr "satbelim: %s@." msg;
      exit 1

(* telemetry plumbing shared by analyze and run *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Stream telemetry events (GC phases, revocations, chaos faults, \
           analysis passes) to $(docv) as JSON lines.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the final metrics snapshot (all counters, gauges and \
           histograms, sorted) to $(docv) as JSON.")

let chrome_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome-trace" ] ~docv:"FILE"
        ~doc:
          "Also export the event stream as a Chrome trace-event file \
           (load in about://tracing or Perfetto).")

(** Run [f] with the requested telemetry outputs armed; the files are
    written however [f] exits.  The registry is reset first so the
    snapshot covers exactly this invocation. *)
let with_telemetry ~trace ~metrics ~chrome f =
  Telemetry.reset ();
  let sink = Option.map open_out trace in
  Option.iter Telemetry.attach_sink sink;
  if chrome <> None then Telemetry.set_recording true;
  Fun.protect f ~finally:(fun () ->
      Telemetry.detach_sink ();
      Option.iter close_out sink;
      Option.iter Telemetry.write_metrics metrics;
      Option.iter Telemetry.write_chrome chrome)

(* verify *)

let verify_cmd =
  let run file =
    let prog = or_die (load file) in
    match Jir.Verifier.verify_program prog with
    | Ok () -> Fmt.pr "%s: OK@." file
    | Error errs ->
        List.iter (fun e -> Fmt.epr "%a@." Jir.Verifier.pp_error e) errs;
        exit 1
  in
  Cmd.v (Cmd.info "verify" ~doc:"Assemble and verify a jasm program")
    Term.(const run $ file_arg)

(* disasm *)

let disasm_cmd =
  let run file limit =
    let prog = or_die (load file) in
    Jir.Verifier.verify_exn prog;
    let inlined =
      Satb_core.Inliner.inline_program ~conf:(Satb_core.Inliner.config limit)
        prog
    in
    Fmt.pr "%a@." Jir.Pp.pp_program (Jir.Program.program inlined)
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Print the program after inline expansion")
    Term.(const run $ file_arg $ inline_limit_arg)

(* analyze *)

let analyze_cmd =
  let run file limit mode nos md swap summaries debug verbose explain trace
      metrics chrome =
    let prog = or_die (load file) in
    with_telemetry ~trace ~metrics ~chrome @@ fun () ->
    let compiled =
      Satb_core.Driver.compile ~inline_limit:limit
        ~conf:(conf_of mode nos md swap summaries debug) prog
    in
    if explain then begin
      (* provenance of every elided site, in site-id order *)
      List.iter
        (fun p -> Fmt.pr "%a@." Satb_core.Driver.pp_provenance p)
        (Satb_core.Driver.explanations compiled);
      Fmt.pr "@."
    end;
    List.iter
      (fun (r : Satb_core.Analysis.method_result) ->
        if r.verdicts <> [] then begin
          Fmt.pr "%s.%s:@." r.mr_class r.mr_method;
          List.iter
            (fun (v : Satb_core.Analysis.verdict) ->
              Fmt.pr "  pc %-4d %-12s %s (%s)@." v.v_pc
                (match v.v_kind with
                | Jir.Types.Field_store -> "putfield"
                | Jir.Types.Array_store -> "aastore"
                | Jir.Types.Static_store -> "putstatic")
                (if v.v_elide then "ELIDE" else "keep")
                (Satb_core.Analysis.string_of_reason v.v_reason))
            r.verdicts
        end)
      compiled.results;
    if verbose then begin
      Fmt.pr "@.%a@.analysis: %.3fs, inlining: %.3fs@."
        Satb_core.Driver.pp_static_stats
        (Satb_core.Driver.static_stats compiled)
        compiled.analysis_seconds compiled.inline_seconds;
      match compiled.summaries with
      | Some tbl ->
          Fmt.pr "summaries: %d methods (%d havoced), %.3fs@."
            (Satb_core.Summary.n_methods tbl)
            (Satb_core.Summary.n_havoced tbl)
            compiled.summary_seconds
      | None -> ()
    end
    else
      Fmt.pr "@.%a@." Satb_core.Driver.pp_static_stats
        (Satb_core.Driver.static_stats compiled)
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"More detail.") in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the elision provenance of every removed barrier: the \
             rule that fired, the abstract facts it rests on, and the \
             runtime guards it depends on.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the barrier-removal analysis")
    Term.(
      const run $ file_arg $ inline_limit_arg $ mode_arg $ nos_arg
      $ movedown_arg $ swap_arg $ summaries_arg $ debug_arg $ verbose
      $ explain $ trace_arg $ metrics_arg $ chrome_arg)

(* run *)

let gc_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("none", `None);
             ("satb", `Satb);
             ("incr", `Incr);
             ("retrace", `Retrace);
             ("hybrid", `Hybrid);
           ])
        `Satb
    & info [ "gc" ] ~docv:"GC"
        ~doc:"Collector: none, satb, incr, retrace, or hybrid.")

let entry_arg =
  Arg.(
    value
    & opt string "Main.main"
    & info [ "entry" ] ~docv:"C.M" ~doc:"Entry method.")

(* Pacing flags, shared by `run` and `profile`.  --gc-trigger survives
   as the deprecated fixed-mode alias; the goal/limit/auto flags
   configure the {!Jrt.Pacer}.  Contradictory combinations are refused
   up front, in the same style as the capability refusals below. *)

let heap_goal_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "heap-goal" ] ~docv:"PCT"
        ~doc:
          "Heap-growth target: start the next marking cycle once the \
           live heap has grown $(docv) percent past its size at the \
           last mark end (100 doubles the heap; default 50).")

let soft_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "soft-limit" ] ~docv:"UNITS"
        ~doc:
          "Soft heap limit in heap units: past it the pacer degrades \
           gracefully (boosted mark budgets, allocate-black, \
           allocation assists) instead of failing.")

let hard_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "hard-limit" ] ~docv:"UNITS"
        ~doc:
          "Hard heap limit in heap units: an allocation that would \
           push the live heap past $(docv) aborts the run cleanly \
           with a diagnostic (exit 4).")

let pacer_arg =
  Arg.(
    value
    & opt
        (some (enum [ ("auto", `Auto); ("goal", `Goal); ("fixed", `Fixed) ]))
        None
    & info [ "pacer" ] ~docv:"MODE"
        ~doc:
          "Pacing mode: goal (heap-growth target, the default), auto \
           (the goal retuned every cycle from pause percentiles and \
           MMU), or fixed (the legacy --gc-trigger allocation count).")

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("interp", `Interp); ("threaded", `Threaded) ]) `Interp
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,interp) (default), the step-accurate \
           tree-walking interpreter, or $(b,threaded), the direct-threaded \
           compiled engine — same safepoint cadence, counters, collectors \
           and chaos faults, several times the steps/sec (see DESIGN.md \
           §8).  Final state and every printed counter are identical \
           either way.")

let pacing_of ~gc ~gc_trigger ~heap_goal ~soft_limit ~hard_limit ~pacer :
    Jrt.Pacer.config =
  let refuse fmt =
    Fmt.kstr
      (fun msg ->
        Fmt.epr "satbelim: %s@." msg;
        exit 1)
      fmt
  in
  (* one warning, in the one path every pacing-aware subcommand funnels
     through, and only when the flag was actually supplied — scripts that
     never pass --gc-trigger never see it *)
  if gc_trigger <> None then
    Fmt.epr
      "satbelim: warning: --gc-trigger is deprecated; prefer the default \
       heap-growth goal or --heap-goal (see --pacer)@.";
  let any_flag =
    gc_trigger <> None || heap_goal <> None || soft_limit <> None
    || hard_limit <> None || pacer <> None
  in
  if gc = `None then begin
    if any_flag then
      refuse
        "--gc none never starts a marking cycle, so pacing flags \
         (--gc-trigger/--heap-goal/--soft-limit/--hard-limit/--pacer) \
         make no sense with it";
    Jrt.Pacer.default_config
  end
  else begin
    (match (pacer, gc_trigger) with
    | Some `Fixed, None ->
        refuse "--pacer fixed needs --gc-trigger N to supply the trigger"
    | Some `Goal, Some _ ->
        refuse
          "--gc-trigger is the fixed-mode alias; it contradicts --pacer \
           goal (use --heap-goal instead)"
    | Some `Auto, Some _ ->
        refuse
          "--gc-trigger is the fixed-mode alias; it contradicts --pacer \
           auto"
    | _ -> ());
    (match (gc_trigger, heap_goal, pacer) with
    | Some _, Some _, _ ->
        refuse
          "--gc-trigger (fixed pacing) contradicts --heap-goal \
           (heap-growth pacing); pick one"
    | _, Some _, Some `Auto ->
        refuse
          "--pacer auto retunes the heap-growth goal itself; it \
           contradicts --heap-goal"
    | _ -> ());
    (match heap_goal with
    | Some pct when pct <= 0.0 ->
        refuse "--heap-goal must be a positive percentage (got %g)" pct
    | _ -> ());
    (match (soft_limit, hard_limit) with
    | Some s, _ when s <= 0 -> refuse "--soft-limit must be positive"
    | _, Some h when h <= 0 -> refuse "--hard-limit must be positive"
    | Some s, Some h when s >= h ->
        refuse
          "--soft-limit %d must be below --hard-limit %d (degradation \
           must have room to work before the abort)"
          s h
    | _ -> ());
    let mode =
      match (pacer, gc_trigger, heap_goal) with
      | Some `Fixed, Some n, _ | None, Some n, None -> Jrt.Pacer.Fixed n
      | Some `Auto, _, _ -> Jrt.Pacer.Auto
      | _, _, Some pct -> Jrt.Pacer.Goal (1.0 +. (pct /. 100.0))
      | _ -> Jrt.Pacer.default_config.Jrt.Pacer.mode
    in
    {
      Jrt.Pacer.mode;
      soft_limit;
      hard_limit;
      goal_floor = Jrt.Pacer.default_goal_floor;
    }
  end

let assumption_to_runtime :
    Satb_core.Driver.assumption -> Jrt.Interp.assumption = function
  | Satb_core.Driver.Single_mutator -> Jrt.Interp.Single_mutator
  | Satb_core.Driver.Retrace_collector -> Jrt.Interp.Retrace_collector
  | Satb_core.Driver.Descending_scan -> Jrt.Interp.Descending_scan
  | Satb_core.Driver.Mode_a -> Jrt.Interp.Mode_a
  | Satb_core.Driver.Closed_world -> Jrt.Interp.Closed_world

(* Split verdicts for --gc hybrid: each half of the barrier elides (and
   revokes) independently, carrying its own guard set. *)
let half_policy_of ?(no_elim = false) (compiled : Satb_core.Driver.compiled) :
    Jrt.Interp.half_policy =
 fun c m pc ->
  if no_elim then Jrt.Interp.keep_both
  else
    let key =
      { Satb_core.Driver.sk_class = c; sk_method = m; sk_pc = pc }
    in
    match Satb_core.Driver.hybrid_verdict compiled key with
    | `Keep -> Jrt.Interp.keep_both
    | (`Elide_deletion | `Elide_insertion | `Elide_both) as hv ->
        let del = hv = `Elide_deletion || hv = `Elide_both in
        let ins = hv = `Elide_insertion || hv = `Elide_both in
        {
          Jrt.Interp.hs_del_elide = del;
          hs_ins_elide = ins;
          hs_ins_repair = ins && Satb_core.Driver.ins_repair_needed compiled key;
          hs_del_guards =
            (if del then
               List.map assumption_to_runtime
                 (Satb_core.Driver.site_assumptions compiled key)
             else []);
          hs_ins_guards =
            (if ins then
               List.map assumption_to_runtime
                 (Satb_core.Driver.ins_site_assumptions compiled key)
             else []);
        }

let run_cmd =
  let run file limit mode nos md swap summaries gc engine entry no_elim
      chaos_seed retrace_budget no_revoke allow_unsound gc_trigger heap_goal
      soft_limit hard_limit pacer trace metrics chrome flight_dump =
    let prog = or_die (load file) in
    let pacing =
      pacing_of ~gc ~gc_trigger ~heap_goal ~soft_limit ~hard_limit ~pacer
    in
    let gc_choice =
      match gc with
      | `None -> Jrt.Runner.No_gc
      | `Satb -> Jrt.Runner.make_satb ~pacing ()
      | `Incr -> Jrt.Runner.make_incr ~pacing ()
      | `Retrace -> Jrt.Runner.make_retrace ~pacing ()
      | `Hybrid -> Jrt.Runner.make_hybrid ~pacing ()
    in
    (* Refuse statically-unsound elision/collector combinations, judged
       against the chosen collector's declared capabilities (the same
       record {!Jrt.Runner.run} asserts against the installed collector at
       start-up): swap verdicts need the tracing-state protocol, move-down
       needs a descending array scan, and both assume a single mutator.
       [--gc none] never marks, so every elision is vacuously sound under
       it.  [--allow-unsound] runs the combination anyway so the snapshot
       oracle can demonstrate the breakage. *)
    let caps = Jrt.Runner.caps_of_choice gc_choice in
    if not allow_unsound then begin
      if swap && not caps.Jrt.Gc_hooks.retrace_protocol then begin
        Fmt.epr
          "satbelim: --swap elision is only sound under a collector with \
           the tracing-state protocol (--gc retrace); pass --allow-unsound \
           to run anyway and let the snapshot oracle report the \
           violations@.";
        exit 1
      end;
      if md && not caps.Jrt.Gc_hooks.descending_scan then begin
        Fmt.epr
          "satbelim: --move-down elision is only sound under a collector \
           that scans object arrays in descending index order (--gc satb \
           or --gc retrace); pass --allow-unsound to run anyway@.";
        exit 1
      end;
      if (swap || md) && Satb_core.Analysis.program_spawns prog then begin
        Fmt.epr
          "satbelim: --move-down/--swap elisions assume a single mutator \
           but this program spawns threads; pass --allow-unsound to run \
           anyway@.";
        exit 1
      end
    end;
    (* auto-capture: oracle violations, hard stops and anomaly firings
       dump the flight recorder to a stable path (armed only on CLI/bench
       entry points, so `dune runtest`'s negative soundness runs don't
       spray dump files) *)
    Flight.arm_capture ();
    let code =
      with_telemetry ~trace ~metrics ~chrome @@ fun () ->
    let compiled =
      Satb_core.Driver.compile ~inline_limit:limit
        ~conf:(conf_of mode nos md swap summaries false) prog
    in
    let policy c m pc =
      (not no_elim)
      && not
           (Satb_core.Driver.needs_barrier compiled
              { sk_class = c; sk_method = m; sk_pc = pc })
    in
    let retrace c m pc =
      if no_elim then Jrt.Interp.No_check
      else
        match
          Satb_core.Driver.retrace_check compiled
            { sk_class = c; sk_method = m; sk_pc = pc }
        with
        | `Open -> Jrt.Interp.Check_open
        | `Close -> Jrt.Interp.Check_close
        | `None -> Jrt.Interp.No_check
    in
    let guards c m pc =
      if no_elim then []
      else
        List.map assumption_to_runtime
          (Satb_core.Driver.site_assumptions compiled
             { sk_class = c; sk_method = m; sk_pc = pc })
    in
    let entry_ref =
      match String.index_opt entry '.' with
      | Some i ->
          {
            Jir.Types.mclass = String.sub entry 0 i;
            mname = String.sub entry (i + 1) (String.length entry - i - 1);
          }
      | None ->
          Fmt.epr "satbelim: entry must be Class.method@.";
          exit 1
    in
    (* revocation events name the original justification of the site
       they patch *)
    let explain c m pc =
      Satb_core.Driver.justification compiled
        { sk_class = c; sk_method = m; sk_pc = pc }
    in
    let halves = half_policy_of ~no_elim compiled in
    let cfg =
      {
        Jrt.Interp.default_config with
        policy;
        retrace;
        guards;
        explain;
        revoke = not no_revoke;
        barrier_flavor =
          (if gc = `Hybrid then `Hybrid
           else Jrt.Interp.default_config.barrier_flavor);
        halves =
          (if gc = `Hybrid then halves else Jrt.Interp.no_halves);
      }
    in
    let chaos =
      Option.map
        (fun seed -> Jrt.Chaos.create (Jrt.Chaos.of_seed seed))
        chaos_seed
    in
    let r =
      Jrt.Runner.run ~cfg ~gc:gc_choice ~engine ?chaos ?retrace_budget
        compiled.program ~entry:entry_ref
    in
    Fmt.pr "steps: %d, cost units: %d (barriers: %d)@." r.steps r.cost_units
      r.barrier_units;
    Fmt.pr "%a@." Jrt.Interp.pp_dyn_stats r.dyn;
    (* under hybrid, "elided" above means both halves; show the split *)
    if gc = `Hybrid then begin
      let sum f =
        Hashtbl.fold
          (fun _ st acc -> acc + f st)
          r.machine.Jrt.Interp.stats 0
      in
      let del_e = sum (fun st -> st.Jrt.Interp.del_elided_execs)
      and del_p = sum (fun st -> st.Jrt.Interp.del_paid_execs)
      and ins_e = sum (fun st -> st.Jrt.Interp.ins_elided_execs)
      and ins_p = sum (fun st -> st.Jrt.Interp.ins_paid_execs) in
      let pc e p =
        if e + p = 0 then 0.0
        else 100.0 *. float_of_int e /. float_of_int (e + p)
      in
      Fmt.pr
        "hybrid halves: deletion %d elided / %d paid (%.1f%%), insertion %d \
         elided / %d paid (%.1f%%)@."
        del_e del_p (pc del_e del_p) ins_e ins_p (pc ins_e ins_p)
    end;
    (match r.gc with
    | Some g ->
        Fmt.pr "gc: %d cycles, %d violations, final pauses: %a@." g.cycles
          g.total_violations
          Fmt.(list ~sep:comma int)
          g.final_pause_works;
        let retraced = List.fold_left ( + ) 0 g.retraced in
        if retraced > 0 || r.machine.Jrt.Interp.retrace_checks > 0 then
          Fmt.pr "retrace: %d checks, %d forced re-scans@."
            r.machine.Jrt.Interp.retrace_checks retraced
    | None -> ());
    let m = r.machine in
    if m.Jrt.Interp.revocation_events > 0 || m.Jrt.Interp.revoked_sites > 0 then
      Fmt.pr "revocation: %d assumption failures, %d sites patched back@."
        m.Jrt.Interp.revocation_events m.Jrt.Interp.revoked_sites;
    if m.Jrt.Interp.degradations > 0 then
      Fmt.pr "degraded: %d cycles, %d swap stores fell back to logging@."
        m.Jrt.Interp.degradations m.Jrt.Interp.degraded_swap_execs;
    (match r.pacer with
    | Some ps ->
        Fmt.pr
          "pacer: state %s, goal %.2f, trigger %d units, %d/%d cycles \
           degraded, %d assists, peak live %d units@."
          (Jrt.Pacer.state_name ps.Jrt.Pacer.p_state) ps.Jrt.Pacer.p_goal
          ps.Jrt.Pacer.p_trigger_units ps.Jrt.Pacer.p_degraded_cycles
          ps.Jrt.Pacer.p_cycles ps.Jrt.Pacer.p_assists
          ps.Jrt.Pacer.p_max_live_units
    | None -> ());
    (match chaos with
    | Some c ->
        let s = Jrt.Chaos.stats c in
        Fmt.pr
          "chaos: %d spawns, %d damage stores, %d preempted increments, %d \
           forced remarks, %d class loads, %d spike allocs, %d ramp allocs@."
          s.Jrt.Chaos.spawns s.Jrt.Chaos.damage_stores
          s.Jrt.Chaos.preempted_increments s.Jrt.Chaos.pressure_remarks
          s.Jrt.Chaos.class_loads s.Jrt.Chaos.spike_allocs
          s.Jrt.Chaos.ramp_allocs
    | None -> ());
    List.iter
      (fun (tid, e) -> Fmt.pr "thread %d died: %s@." tid e)
      r.thread_errors;
    (match flight_dump with
    | Some path ->
        Flight.dump_to_file ~reason:"cli-request" path;
        Fmt.pr "wrote %s@." path
    | None -> ());
    match r.hard_stop with
    | Some msg ->
        Fmt.epr "satbelim: hard heap limit: %s@." msg;
        4
    | None -> 0
    in
    (* the sink was flushed and closed by with_telemetry; only now is it
       safe to exit (Stdlib.exit does not unwind Fun.protect) *)
    (match Flight.captured () with
    | Some (path, reason) ->
        Fmt.epr "satbelim: flight recorder dumped to %s (%s)@." path reason
    | None -> ());
    if code <> 0 then exit code
  in
  let no_elim =
    Arg.(value & flag & info [ "no-elim" ] ~doc:"Keep every barrier.")
  in
  let flight_dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dump" ] ~docv:"FILE"
          ~doc:
            "Write the flight recorder's ring (GC phase transitions, pacer              decisions, revocations with guard provenance, engine              respecializations, chaos faults) to $(docv) after the run;              $(b,satbelim timeline) reconstructs it.")
  in
  let chaos_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos" ] ~docv:"SEED"
          ~doc:
            "Inject a deterministic benign fault plan (late spawn, marker \
             preemption, heap pressure, adversarial pacing) derived from \
             $(docv); guarded elisions revoke and repair at runtime.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "retrace-budget" ] ~docv:"N"
          ~doc:
            "Bound the retrace collector's per-cycle re-scan queue; on \
             overflow the cycle degrades (swap elision falls back to \
             logging) instead of delaying remark unboundedly.")
  in
  let no_revoke_arg =
    Arg.(
      value & flag
      & info [ "no-revoke" ]
          ~doc:
            "Keep assumption guards wired but ignore their failures \
             (diagnostics only; unsound under injected faults).")
  in
  let allow_unsound_arg =
    Arg.(
      value & flag
      & info [ "allow-unsound" ]
          ~doc:
            "Run elision/collector combinations that are known to be \
             unsound so the snapshot oracle can demonstrate the breakage.")
  in
  let gc_trigger_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "gc-trigger" ] ~docv:"N"
          ~doc:
            "Deprecated fixed-mode alias: start a marking cycle every \
             $(docv) allocations, bit-for-bit the pre-pacer behaviour.  \
             Prefer the default heap-growth goal or --heap-goal.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Interpret the program with barrier instrumentation")
    Term.(
      const run $ file_arg $ inline_limit_arg $ mode_arg $ nos_arg
      $ movedown_arg $ swap_arg $ summaries_arg $ gc_arg $ engine_arg
      $ entry_arg $ no_elim $ chaos_arg $ budget_arg $ no_revoke_arg
      $ allow_unsound_arg $ gc_trigger_arg $ heap_goal_arg $ soft_limit_arg
      $ hard_limit_arg $ pacer_arg $ trace_arg $ metrics_arg $ chrome_arg
      $ flight_dump_arg)

(* profile *)

let entry_ref_of_string (entry : string) : Jir.Types.method_ref =
  match String.index_opt entry '.' with
  | Some i ->
      {
        Jir.Types.mclass = String.sub entry 0 i;
        mname = String.sub entry (i + 1) (String.length entry - i - 1);
      }
  | None ->
      Fmt.epr "satbelim: entry must be Class.method@.";
      exit 1

let profile_cmd =
  let run file workload limit mode nos md swap summaries gc engine gc_trigger
      heap_goal soft_limit hard_limit pacer entry json top baseline
      max_elision_drop max_pause_increase max_cost_increase allow_unsound
      trace metrics chrome =
    let name, prog, entry_ref =
      match (file, workload) with
      | Some _, Some _ ->
          Fmt.epr "satbelim: pass either FILE or --workload, not both@.";
          exit 1
      | None, None ->
          Fmt.epr
            "satbelim: pass a FILE or --workload NAME (try 'workloads' for \
             the list)@.";
          exit 1
      | Some f, None ->
          ( Filename.remove_extension (Filename.basename f),
            or_die (load f),
            entry_ref_of_string entry )
      | None, Some n -> (
          match Workloads.Registry.find n with
          | Some w -> (w.name, Workloads.Spec.parse w, w.entry)
          | None ->
              Fmt.epr "satbelim: unknown workload %S (try 'workloads')@." n;
              exit 1)
    in
    let pacing =
      pacing_of ~gc ~gc_trigger ~heap_goal ~soft_limit ~hard_limit ~pacer
    in
    let gc_name, gc_choice =
      match gc with
      | `None -> ("none", Jrt.Runner.No_gc)
      | `Satb -> ("satb", Jrt.Runner.make_satb ~pacing ())
      | `Incr -> ("incr", Jrt.Runner.make_incr ~pacing ())
      | `Retrace -> ("retrace", Jrt.Runner.make_retrace ~pacing ())
      | `Hybrid -> ("hybrid", Jrt.Runner.make_hybrid ~pacing ())
    in
    (* same capability-driven static-soundness refusals as `run` *)
    let caps = Jrt.Runner.caps_of_choice gc_choice in
    if not allow_unsound then begin
      if swap && not caps.Jrt.Gc_hooks.retrace_protocol then begin
        Fmt.epr
          "satbelim: --swap elision is only sound under a collector with \
           the tracing-state protocol (--gc retrace); pass --allow-unsound \
           to profile anyway@.";
        exit 1
      end;
      if md && not caps.Jrt.Gc_hooks.descending_scan then begin
        Fmt.epr
          "satbelim: --move-down elision is only sound under a collector \
           that scans object arrays in descending index order (--gc satb \
           or --gc retrace); pass --allow-unsound to profile anyway@.";
        exit 1
      end;
      if (swap || md) && Satb_core.Analysis.program_spawns prog then begin
        Fmt.epr
          "satbelim: --move-down/--swap elisions assume a single mutator \
           but this program spawns threads; pass --allow-unsound to profile \
           anyway@.";
        exit 1
      end
    end;
    Flight.arm_capture ();
    let code =
      with_telemetry ~trace ~metrics ~chrome @@ fun () ->
    let compiled =
      Satb_core.Driver.compile ~inline_limit:limit
        ~conf:(conf_of mode nos md swap summaries false) prog
    in
    let policy c m pc =
      not
        (Satb_core.Driver.needs_barrier compiled
           { sk_class = c; sk_method = m; sk_pc = pc })
    in
    let retrace c m pc =
      match
        Satb_core.Driver.retrace_check compiled
          { sk_class = c; sk_method = m; sk_pc = pc }
      with
      | `Open -> Jrt.Interp.Check_open
      | `Close -> Jrt.Interp.Check_close
      | `None -> Jrt.Interp.No_check
    in
    let guards c m pc =
      List.map assumption_to_runtime
        (Satb_core.Driver.site_assumptions compiled
           { sk_class = c; sk_method = m; sk_pc = pc })
    in
    let explain c m pc =
      Satb_core.Driver.justification compiled
        { sk_class = c; sk_method = m; sk_pc = pc }
    in
    let cfg =
      {
        Jrt.Interp.default_config with
        policy;
        retrace;
        guards;
        explain;
        barrier_flavor =
          (if gc = `Hybrid then `Hybrid
           else Jrt.Interp.default_config.barrier_flavor);
        halves =
          (if gc = `Hybrid then half_policy_of compiled
           else Jrt.Interp.no_halves);
      }
    in
    let r =
      Jrt.Runner.run ~cfg ~gc:gc_choice ~engine compiled.program
        ~entry:entry_ref
    in
    List.iter
      (fun (tid, e) -> Fmt.pr "thread %d died: %s@." tid e)
      r.thread_errors;
    match r.hard_stop with
    | Some msg ->
        Fmt.epr "satbelim: hard heap limit: %s@." msg;
        4
    | None -> (
        let p = Profile.Attr.of_report ~workload:name ~gc:gc_name ~explain r in
        (* the profile must reconcile exactly with the interpreter's global
           counters (also what --metrics reports); a mismatch is a bug in the
           attribution accounting, not in the user's input *)
        match Profile.Attr.reconciles p r with
        | Error e ->
            Fmt.epr
              "satbelim: profile does not reconcile with counters: %s@." e;
            3
        | Ok () -> (
            print_string (Profile.Attr.render ~top p);
            Option.iter
              (fun path ->
                Telemetry.write_file path
                  (Telemetry.json_to_string_pretty (Profile.Attr.to_json p));
                Fmt.pr "wrote %s@." path)
              json;
            match baseline with
            | None -> 0
            | Some path -> (
                let parsed =
                  match Telemetry.json_of_string (read_file path) with
                  | Error e -> Error (Fmt.str "%s: %s" path e)
                  | Ok j -> (
                      match Profile.Attr.of_json j with
                      | Error e -> Error (Fmt.str "%s: %s" path e)
                      | Ok b -> Ok b)
                in
                match parsed with
                | Error e ->
                    Fmt.epr "satbelim: %s@." e;
                    2
                | Ok baseline ->
                    let d =
                      Profile.Attr.diff ~max_elision_drop
                        ~max_pause_increase_pct:max_pause_increase
                        ~max_cost_increase_pct:max_cost_increase ~baseline p
                    in
                    Fmt.pr "@.-- vs baseline %s --@." path;
                    print_string (Profile.Attr.render_diff d);
                    if Profile.Attr.regressed d then begin
                      Fmt.pr "FAIL: %d regression(s)@."
                        (List.length d.Profile.Attr.df_regressions);
                      (* keep the evidence: the run's ring is still live *)
                      ignore (Flight.capture ~reason:"profile-gate");
                      1
                    end
                    else begin
                      Fmt.pr "OK: no regressions@.";
                      0
                    end)))
    in
    (match Flight.captured () with
    | Some (path, reason) ->
        Fmt.epr "satbelim: flight recorder dumped to %s (%s)@." path reason
    | None -> ());
    if code <> 0 then exit code
  in
  let file_opt_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"jasm or mini-Java source file (or use --workload).")
  in
  let workload_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:"Profile a bundled workload instead of a source file.")
  in
  let gc_trigger_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "gc-trigger" ] ~docv:"N"
          ~doc:
            "Deprecated fixed-mode alias: start a marking cycle every \
             $(docv) allocations, bit-for-bit the pre-pacer behaviour.  \
             Prefer the default heap-growth goal or --heap-goal.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the profile as deterministic JSON (sorted keys, sites in \
             site-id order) — the format `profile --baseline` and `bench \
             diff` consume.")
  in
  let top_arg =
    Arg.(
      value
      & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Hot sites to show (default 10).")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Compare against a previously saved profile JSON and exit \
             nonzero on regression.")
  in
  let elision_drop_arg =
    Arg.(
      value
      & opt float 2.0
      & info [ "max-elision-drop" ] ~docv:"POINTS"
          ~doc:
            "Allowed drop of the dynamic elision rate vs the baseline, in \
             percentage points (default 2.0).")
  in
  let pause_increase_arg =
    Arg.(
      value
      & opt float 25.0
      & info [ "max-pause-increase" ] ~docv:"PCT"
          ~doc:
            "Allowed growth of the p99/max pause vs the baseline, in \
             percent (default 25).")
  in
  let cost_increase_arg =
    Arg.(
      value
      & opt float 10.0
      & info [ "max-cost-increase" ] ~docv:"PCT"
          ~doc:
            "Allowed growth of the modelled barrier cost per kilostep vs \
             the baseline, in percent (default 10).")
  in
  let allow_unsound_arg =
    Arg.(
      value & flag
      & info [ "allow-unsound" ]
          ~doc:"Profile statically-unsound elision/collector combinations.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a workload and report per-site barrier attribution, pause \
          percentiles and MMU; optionally gate against a baseline profile")
    Term.(
      const run $ file_opt_arg $ workload_arg $ inline_limit_arg $ mode_arg
      $ nos_arg $ movedown_arg $ swap_arg $ summaries_arg $ gc_arg
      $ engine_arg $ gc_trigger_arg $ heap_goal_arg $ soft_limit_arg
      $ hard_limit_arg
      $ pacer_arg $ entry_arg $ json_arg $ top_arg $ baseline_arg
      $ elision_drop_arg $ pause_increase_arg $ cost_increase_arg
      $ allow_unsound_arg $ trace_arg $ metrics_arg $ chrome_arg)

(* validate-trace *)

let trace_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"JSONL trace file (from --trace)")

let validate_trace_cmd =
  let run file chrome =
    let lines = String.split_on_char '\n' (read_file file) in
    match Telemetry.validate_trace_lines lines with
    | Error (0, msg) ->
        (* whole-file failure (empty trace), not a malformed line *)
        Fmt.epr "%s: %s@." file msg;
        exit 1
    | Error (line, msg) ->
        Fmt.epr "%s:%d: %s@." file line msg;
        exit 1
    | Ok n -> (
        Fmt.pr "%s: %d events, schema OK@." file n;
        (* semantic post-pass: every heap.census event must reconcile the
           census fold with the heap's own counters, to the unit — a
           mismatch is a bug in the observatory's accounting *)
        let censuses = ref 0 in
        List.iteri
          (fun i l ->
            if String.trim l <> "" then
              match Telemetry.json_of_string l with
              | Error _ -> ()
              | Ok j -> (
                  match Telemetry.event_of_json j with
                  | Error _ -> ()
                  | Ok e
                    when e.Telemetry.ev_kind = "heap.census"
                         (* sampled counters-only ticks (the always-on
                            telemetry path between full censuses) carry
                            no census fold to reconcile *)
                         && List.mem_assoc "census_live" e.Telemetry.ev_fields
                    ->
                      incr censuses;
                      let geti name =
                        match List.assoc_opt name e.Telemetry.ev_fields with
                        | Some (Telemetry.Int n) -> n
                        | _ ->
                            Fmt.epr "%s:%d: heap.census missing field %s@."
                              file (i + 1) name;
                            exit 1
                      in
                      let cl = geti "census_live"
                      and cu = geti "census_units"
                      and hl = geti "heap_live"
                      and hu = geti "heap_units" in
                      if cl <> hl || cu <> hu then begin
                        Fmt.epr
                          "%s:%d: heap.census does not reconcile: census \
                           %d objects/%d units vs heap counters %d/%d@."
                          file (i + 1) cl cu hl hu;
                        exit 1
                      end
                  | Ok _ -> ()))
          lines;
        if !censuses > 0 then
          Fmt.pr "%s: %d heap.census event(s) reconcile with heap counters@."
            file !censuses;
        match chrome with
        | None -> ()
        | Some out ->
            let events =
              List.filter_map
                (fun l ->
                  if String.trim l = "" then None
                  else
                    match Telemetry.json_of_string l with
                    | Ok j -> (
                        match Telemetry.event_of_json j with
                        | Ok e -> Some e
                        | Error _ -> None)
                    | Error _ -> None)
                lines
            in
            Telemetry.write_file out
              (Telemetry.json_to_string (Telemetry.chrome_of_events events));
            Fmt.pr "%s: wrote Chrome trace (%d events)@." out
              (List.length events))
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:"Also convert the validated trace to a Chrome trace-event file.")
  in
  Cmd.v
    (Cmd.info "validate-trace"
       ~doc:
         "Check that a --trace JSONL file is schema-valid (monotonic \
          timestamps, strictly increasing sequence numbers, well-formed \
          events)")
    Term.(const run $ trace_file_arg $ chrome)

(* timeline *)

let timeline_cmd =
  let run file chrome =
    match Telemetry.json_of_string (read_file file) with
    | Error e ->
        Fmt.epr "satbelim: %s: %s@." file e;
        exit 1
    | Ok j -> (
        match Flight.parse_dump j with
        | Error e ->
            Fmt.epr "satbelim: %s: %s@." file e;
            exit 1
        | Ok d -> (
            print_string (Flight.render_timeline d);
            match chrome with
            | None -> ()
            | Some out ->
                let events = Flight.chrome_events_of_dump d in
                Telemetry.write_file out
                  (Telemetry.json_to_string
                     (Telemetry.chrome_of_events events));
                Fmt.pr "%s: wrote Chrome trace (%d events)@." out
                  (List.length events)))
  in
  let dump_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DUMP"
          ~doc:
            "Flight-recorder dump (from --flight-dump FILE or an \
             auto-captured FLIGHT_dump.json).")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Also export the recorded events as a Chrome trace-event file \
             on the mutator-step timeline (1 step = 1us in the viewer).")
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Reconstruct the per-cycle GC timeline and per-site elision \
          lifecycle from a flight-recorder dump")
    Term.(const run $ dump_arg $ chrome)

(* heap *)

(* The heap-state observatory front end: run a workload with the
   observatory armed and report the allocation-site census, dominator
   retention and per-collector barrier-float accounting; optionally
   export a byte-stable snapshot, and diff two snapshots. *)

let heap_report_term =
  let run file workload limit mode nos summaries gc engine heap_goal
      soft_limit hard_limit pacer entry top snapshot flight_dump trace metrics
      chrome =
    let name, prog, entry_ref =
      match (file, workload) with
      | Some _, Some _ ->
          Fmt.epr "satbelim: pass either FILE or --workload, not both@.";
          exit 1
      | None, None ->
          Fmt.epr
            "satbelim: pass a FILE or --workload NAME (try 'workloads' for \
             the list)@.";
          exit 1
      | Some f, None ->
          ( Filename.remove_extension (Filename.basename f),
            or_die (load f),
            entry_ref_of_string entry )
      | None, Some n -> (
          match Workloads.Registry.find n with
          | Some w -> (w.name, Workloads.Spec.parse w, w.entry)
          | None ->
              Fmt.epr "satbelim: unknown workload %S (try 'workloads')@." n;
              exit 1)
    in
    let pacing =
      (* `Satb stands in for "some collector": the observatory refuses
         --gc none itself, so pacing flags are always meaningful here *)
      pacing_of ~gc:`Satb ~gc_trigger:None ~heap_goal ~soft_limit ~hard_limit
        ~pacer
    in
    Flight.arm_capture ();
    let code =
      with_telemetry ~trace ~metrics ~chrome @@ fun () ->
      let compiled =
        Satb_core.Driver.compile ~inline_limit:limit
          ~conf:(conf_of mode nos false false summaries false)
          prog
      in
      let policy c m pc =
        not
          (Satb_core.Driver.needs_barrier compiled
             { sk_class = c; sk_method = m; sk_pc = pc })
      in
      let retrace c m pc =
        match
          Satb_core.Driver.retrace_check compiled
            { sk_class = c; sk_method = m; sk_pc = pc }
        with
        | `Open -> Jrt.Interp.Check_open
        | `Close -> Jrt.Interp.Check_close
        | `None -> Jrt.Interp.No_check
      in
      let guards c m pc =
        List.map assumption_to_runtime
          (Satb_core.Driver.site_assumptions compiled
             { sk_class = c; sk_method = m; sk_pc = pc })
      in
      let run_one gcv =
        let gc_choice =
          match gcv with
          | `Satb -> Jrt.Runner.make_satb ~pacing ()
          | `Incr -> Jrt.Runner.make_incr ~pacing ()
          | `Retrace -> Jrt.Runner.make_retrace ~pacing ()
          | `Hybrid -> Jrt.Runner.make_hybrid ~pacing ()
        in
        let cfg =
          {
            Jrt.Interp.default_config with
            policy;
            retrace;
            guards;
            barrier_flavor =
              (if gcv = `Hybrid then `Hybrid
               else Jrt.Interp.default_config.barrier_flavor);
            halves =
              (if gcv = `Hybrid then half_policy_of compiled
               else Jrt.Interp.no_halves);
          }
        in
        let obs = Heapscope.Observatory.create () in
        let r =
          Jrt.Runner.run ~cfg ~gc:gc_choice ~engine
            ~observer:(Heapscope.Observatory.observe obs)
            compiled.program ~entry:entry_ref
        in
        List.iter
          (fun (tid, e) -> Fmt.pr "thread %d died: %s@." tid e)
          r.Jrt.Runner.thread_errors;
        (obs, r)
      in
      let label = function
        | `Satb -> "satb"
        | `Incr -> "incremental-update"
        | `Retrace -> "retrace"
        | `Hybrid -> "hybrid"
      in
      let collectors =
        match gc with
        | `All -> [ `Satb; `Incr; `Retrace; `Hybrid ]
        | (`Satb | `Incr | `Retrace | `Hybrid) as g -> [ g ]
      in
      let results = List.map (fun g -> (g, run_one g)) collectors in
      (* the ring is reset per run, so the dump covers the last collector
         observed — with census events and the pending-census snapshot *)
      (match flight_dump with
      | Some path ->
          Flight.dump_to_file ~reason:"cli-request" path;
          Fmt.pr "wrote %s@." path
      | None -> ());
      let g0, (obs0, r0) = List.hd results in
      let m0 = r0.Jrt.Runner.machine in
      let h0 = m0.Jrt.Interp.heap in
      Fmt.pr "workload %s — heap observatory@." name;
      Fmt.pr
        "final heap under %s: %d live objects, %d units, %d GC cycles@.@."
        (label g0) h0.Jrt.Heap.live_count h0.Jrt.Heap.live_units
        h0.Jrt.Heap.gc_cycle;
      Fmt.pr "allocation-site census (%s):@." (label g0);
      print_string
        (Heapscope.Observatory.render_census ~top
           (Heapscope.Census.of_heap h0));
      Fmt.pr "@.dominator retention (%s):@." (label g0);
      print_string (Heapscope.Observatory.render_retainers ~top m0);
      List.iter
        (fun (g, ((obs : Heapscope.Observatory.t), (r : Jrt.Runner.report))) ->
          Fmt.pr "@.barrier float — %s:@." (label g);
          print_string (Heapscope.Observatory.render_float obs);
          match r.Jrt.Runner.hard_stop with
          | Some msg -> Fmt.pr "  (run aborted on hard heap limit: %s)@." msg
          | None -> ())
        results;
      Option.iter
        (fun path ->
          Telemetry.write_file path
            (Telemetry.json_to_string_pretty
               (Heapscope.Observatory.snapshot obs0 m0));
          Fmt.pr "@.wrote %s@." path)
        snapshot;
      if List.exists (fun (_, (_, r)) -> r.Jrt.Runner.hard_stop <> None) results
      then 4
      else 0
    in
    (match Flight.captured () with
    | Some (path, reason) ->
        Fmt.epr "satbelim: flight recorder dumped to %s (%s)@." path reason
    | None -> ());
    if code <> 0 then exit code
  in
  let file_opt_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"jasm or mini-Java source file (or use --workload).")
  in
  let workload_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:"Observe a bundled workload instead of a source file.")
  in
  let heap_gc_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("all", `All);
               ("satb", `Satb);
               ("incr", `Incr);
               ("retrace", `Retrace);
               ("hybrid", `Hybrid);
             ])
          `All
      & info [ "gc" ] ~docv:"GC"
          ~doc:
            "Collector(s) to observe: all (default — census and retention \
             from the satb run, float accounting for every collector), or \
             one of satb, incr, retrace, hybrid.")
  in
  let top_arg =
    Arg.(
      value
      & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"Census rows and retainers to show (default 10).")
  in
  let snapshot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Write a byte-stable heap snapshot (census, retained sizes, \
             per-cycle float history) as JSON — the format `heap diff` \
             consumes.")
  in
  let flight_dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dump" ] ~docv:"FILE"
          ~doc:
            "Write the flight recorder's ring (including per-cycle census \
             events and the pending-census heap state) after the last \
             observed run; $(b,satbelim timeline) annotates its cycles \
             with live units and float%.")
  in
  Term.(
    const run $ file_opt_arg $ workload_arg $ inline_limit_arg $ mode_arg
    $ nos_arg $ summaries_arg $ heap_gc_arg $ engine_arg $ heap_goal_arg
    $ soft_limit_arg $ hard_limit_arg $ pacer_arg $ entry_arg $ top_arg
    $ snapshot_arg $ flight_dump_arg $ trace_arg $ metrics_arg $ chrome_arg)

let heap_diff_cmd =
  let run old_f new_f =
    let parse path =
      match Telemetry.json_of_string (read_file path) with
      | Ok j -> j
      | Error e ->
          Fmt.epr "satbelim: %s: %s@." path e;
          exit 1
    in
    let old_j = parse old_f and new_j = parse new_f in
    match
      Heapscope.Observatory.render_diff ~old_name:old_f ~new_name:new_f old_j
        new_j
    with
    | Ok s -> print_string s
    | Error e ->
        Fmt.epr "satbelim: %s@." e;
        exit 1
  in
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Older heap snapshot (from heap --snapshot).")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Newer heap snapshot.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Census delta between two heap snapshots: per-site growth in live \
          objects and units, biggest movers first")
    Term.(const run $ old_arg $ new_arg)

let heap_cmd =
  Cmd.group ~default:heap_report_term
    (Cmd.info "heap"
       ~doc:
         "Heap-state observatory: allocation-site census, dominator \
          retention and barrier-float accounting under each collector")
    [ heap_diff_cmd ]

(* workloads *)

let workloads_cmd =
  let list_them () =
    List.iter
      (fun (w : Workloads.Spec.t) ->
        Fmt.pr "%-16s %s@." w.name w.description)
      Workloads.Registry.all
  in
  let run name =
    match name with
    | None -> list_them ()
    | Some n -> (
        match Workloads.Registry.find n with
        | Some w -> print_string w.src
        | None ->
            Fmt.epr "satbelim: unknown workload %S (try 'workloads')@." n;
            exit 1)
  in
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:"Workload to dump as jasm; omit to list all workloads.")
  in
  Cmd.v
    (Cmd.info "workloads"
       ~doc:"List the bundled workloads, or dump one as jasm source")
    Term.(const run $ name_arg)

let () =
  let doc = "compile-time SATB write-barrier removal toolkit" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "satbelim" ~doc)
          [
            verify_cmd;
            disasm_cmd;
            analyze_cmd;
            run_cmd;
            profile_cmd;
            workloads_cmd;
            validate_trace_cmd;
            timeline_cmd;
            heap_cmd;
          ]))
