# Convenience targets; the canonical CI entry point is `make check`.

.PHONY: all check test bench profile-smoke heap-smoke clean

all:
	dune build

check: all
	dune runtest
	$(MAKE) profile-smoke
	$(MAKE) heap-smoke

test: check

# profiler smoke: profile a micro workload under heap-growth pacing with
# a soft limit low enough that the tiny heap still cycles (and degrades,
# covering the degrade-don't-die path), then gate the result against
# itself (must be a clean no-regression pass)
profile-smoke:
	dune exec bin/satbelim.exe -- profile --workload micro-expand \
	  --soft-limit 24 --json PROFILE_micro.json
	dune exec bin/satbelim.exe -- profile --workload micro-expand \
	  --soft-limit 24 --baseline PROFILE_micro.json
	dune exec bench/main.exe -- diff PROFILE_micro.json PROFILE_micro.json

# observatory smoke: the full heap report (census, dominator retention,
# per-collector barrier float) on db, snapshot export, and a self-diff
# (must report no census change)
heap-smoke:
	dune exec bin/satbelim.exe -- heap --workload db --top 5 \
	  --snapshot HEAP_db.json
	dune exec bin/satbelim.exe -- heap diff HEAP_db.json HEAP_db.json

# full reproduction: every table/figure plus the bechamel timings
bench:
	dune exec bench/main.exe

clean:
	dune clean
