# Convenience targets; the canonical CI entry point is `make check`.

.PHONY: all check test bench clean

all:
	dune build

check: all
	dune runtest

test: check

# full reproduction: every table/figure plus the bechamel timings
bench:
	dune exec bench/main.exe

clean:
	dune clean
