(** A multi-threaded bytecode interpreter with write-barrier
    instrumentation: per-site execution and pre-null counters (the
    machinery behind the paper's Table 1, including the "potentially
    pre-null" upper bound of §4.2), an elision policy, the RISC cost
    model, and collector hooks. *)

exception Runtime_bug of string

type site = {
  s_class : Jir.Types.class_name;
  s_method : Jir.Types.method_name;
  s_pc : int;
}

val site_id : site -> string
(** ["Class.method\@pc"] — the site id used in traces, [--explain] output
    and the profiler's attribution rows. *)

type retrace_site = No_check | Check_open | Check_close
(** What the retrace collector's compiler emits at a swap-elided store: a
    tracing-state check that also opens (store 1) or closes (store 2) a
    safepoint-free window around the swap. *)

type assumption =
  | Single_mutator
  | Retrace_collector
  | Descending_scan
  | Mode_a
  | Closed_world
(** The runtime assumptions an elided verdict may depend on; observing
    one false revokes every dependent elision at a safepoint. *)

val string_of_assumption : assumption -> string

type site_stats = {
  st_kind : Jir.Types.store_kind;
  mutable st_elided : bool;
  mutable st_check : retrace_site;
  st_guards : assumption list;
      (** assumptions this site's elision depends on *)
  mutable st_del_elided : bool;
      (** hybrid flavor: the deletion (Yuasa) half was compiled out *)
  mutable st_ins_elided : bool;
      (** hybrid flavor: the insertion (Dijkstra) half was compiled out *)
  st_ins_repair : bool;
      (** insertion-elided destinations join the remark repair set *)
  st_del_guards : assumption list;
  st_ins_guards : assumption list;
  mutable execs : int;
  mutable pre_null_execs : int;
  mutable paid_execs : int;
      (** executions that ran a full barrier (kept, revoked or degraded);
          [execs = paid_execs + elided_execs] always holds — under the
          hybrid flavor a store is elided iff {e both} halves skipped *)
  mutable elided_execs : int;  (** executions that skipped the barrier *)
  mutable del_paid_execs : int;  (** hybrid: deletion halves executed *)
  mutable del_elided_execs : int;  (** hybrid: deletion halves skipped *)
  mutable ins_paid_execs : int;  (** hybrid: insertion halves executed *)
  mutable ins_elided_execs : int;  (** hybrid: insertion halves skipped *)
  mutable barrier_units : int;
      (** modelled RISC units charged at this site (barriers + tracing
          checks); sums to [t.barrier_units] over all sites *)
  mutable revocations : int;
      (** times this site (either half) was patched back *)
}

type barrier_policy =
  Jir.Types.class_name -> Jir.Types.method_name -> int -> bool
(** [policy cls meth pc = true] means the analysis removed that site's
    barrier. *)

type retrace_policy =
  Jir.Types.class_name -> Jir.Types.method_name -> int -> retrace_site
(** Which elided sites carry a tracing-state check (swap-pair elisions
    under the retrace collector). *)

type guard_policy =
  Jir.Types.class_name -> Jir.Types.method_name -> int -> assumption list
(** The per-site guard table (empty = unconditionally sound verdict). *)

val keep_all_policy : barrier_policy
val no_retrace_checks : retrace_policy

val no_guards : guard_policy
(** The shared "no guard table wired" closure; pass a {e different}
    closure (even one returning [[]]) to activate guard bookkeeping. *)

type half_site = {
  hs_del_elide : bool;
  hs_ins_elide : bool;
  hs_ins_repair : bool;
      (** record insertion-elided destinations for the remark re-scan *)
  hs_del_guards : assumption list;
  hs_ins_guards : assumption list;
}
(** Split verdict for one site under the hybrid barrier: each half
    elides (and revokes) independently. *)

val keep_both : half_site

type half_policy =
  Jir.Types.class_name -> Jir.Types.method_name -> int -> half_site
(** Per-site split verdicts, consulted only under the [`Hybrid] flavor. *)

val no_halves : half_policy
(** Shared "no half table wired" closure, like {!no_guards}. *)

type explain_policy =
  Jir.Types.class_name -> Jir.Types.method_name -> int -> string option
(** Original justification of a site's elision (analysis-side
    provenance), attached to [revoke.site] telemetry events so a revoked
    site prints why its barrier was removed in the first place. *)

val no_explain : explain_policy

type config = {
  policy : barrier_policy;
  retrace : retrace_policy;
  guards : guard_policy;
  explain : explain_policy;
  revoke : bool;
      (** honour guard failures by revoking dependent elisions; [false]
          runs open-loop so the oracle can catch what guards would have *)
  satb_mode : Barrier_cost.satb_mode;
  barrier_flavor : [ `Satb | `Card | `Hybrid ];
  halves : half_policy;
      (** split verdicts for the hybrid flavor; {!no_halves} keeps both
          halves everywhere *)
  max_steps : int;
}

val default_config : config

type frame = {
  f_class : Jir.Types.class_name;
  f_meth : Jir.Types.meth;
  mutable pc : int;
  locals : Value.t array;
  mutable ostack : Value.t list;
}

type thread = {
  tid : int;
  mutable frames : frame list;
  mutable finished : bool;
  mutable error : string option;
}

type t = {
  prog : Jir.Program.t;
  heap : Heap.t;
  statics : (Jir.Types.class_name * Jir.Types.field_name, Value.t) Hashtbl.t;
  mutable threads : thread list;
  mutable next_tid : int;
  stats : (site, site_stats) Hashtbl.t;
  cfg : config;
  mutable gc : Gc_hooks.t;
  mutable pacer : Pacer.t option;
      (** pacing controller; admission-controls every allocation and
          drives degraded-mode allocation assists *)
  mutable assist_execs : int;
      (** collector increments run on allocating threads' behalf while
          the pacer was degraded *)
  mutable instr_count : int;
  mutable cost_units : int;
  mutable barrier_units : int;
  mutable barriers_executed : int;
  mutable elided_barrier_execs : int;
  mutable retrace_checks : int;
  mutable in_no_safepoint : bool;
      (** a swap window is open: the scheduler must defer collector work
          until the closing store's check clears this *)
  mutable revoked : assumption list;
  mutable pending_revocations : assumption list;
  mutable revocation_events : int;
  mutable revoked_sites : int;
  mutable guarded_writes : int list;
  mutable swap_degraded : bool;
  mutable degradations : int;
  mutable degraded_swap_execs : int;
  mutable external_paid_execs : int;
      (** chaos-injected external stores that ran a full barrier — no site
          of their own; the profiler attributes them to an "external" row
          so per-site totals still reconcile with the global counters *)
  mutable external_elided_execs : int;
      (** chaos-injected external stores through live guarded elisions *)
  field_index : (Jir.Types.field_ref, int) Hashtbl.t;
  alloc_sites : (site, int) Hashtbl.t;
      (** interned {!Sitemap} ids of allocation sites, cached per program
          point so the allocation fast path does no string formatting *)
  mutable track_heap : bool;
      (** heap observatory armed: elided stores during marking append to
          [elided_write_log] (a single flag test when off) *)
  mutable elided_write_log : (int * int) list;
      (** [(obj, verdict_class)] for stores whose barrier (or a half of
          it) was elided while marking; verdict classes are {!ew_full},
          {!ew_del}, {!ew_ins}, {!ew_both}.  Cleared by
          {!reset_cycle_state}. *)
  mutable barrier_epoch : int;
      (** bumped whenever per-site verdicts may change (revocations
          applied, degraded mode entered, cycle state reset); the
          threaded engine ({!Exec}) stamps each compiled store site with
          the epoch it specialized against and respecializes on mismatch
          — per-site invalidation with no global flush *)
  mutable stack_roots_override : (unit -> (int * int list) list) option;
      (** installed by the threaded engine, which owns the live thread
          stacks; {!thread_roots}/{!roots} consult it so collectors see
          the same root set in the same order under either engine *)
}

exception Jexn of Jir.Types.exn_kind
(** A runtime exception in the interpreted program, caught by handler
    search ([unwind]); shared with the threaded engine so both unwind
    identically. *)

val jthrow : Jir.Types.exn_kind -> 'a

val bugf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Runtime_bug} with a formatted message — exported so the
    threaded engine reports invariant violations with byte-identical
    diagnostics. *)

val create : ?cfg:config -> Jir.Program.t -> t
val set_collector : t -> Gc_hooks.t -> unit

val set_pacer : t -> Pacer.t -> unit
(** Install the pacing controller; every subsequent allocation passes
    through {!Pacer.before_alloc} (and may raise {!Pacer.Hard_limit}). *)

val guards_active : t -> bool
(** Was a guard table wired (i.e. [cfg.guards] is not {!no_guards}, or
    [cfg.halves] is not {!no_halves})? *)

val request_revoke : t -> assumption -> unit
(** Note an assumption observed false; the revocation is applied at the
    next safepoint.  Deduplicated; inert unless guards are wired and
    [cfg.revoke] holds. *)

val revocation_pending : t -> bool

val apply_revocations : t -> unit
(** Flip every site depending on a failed assumption back to a full
    barrier and hand the cycle's guarded-write set to the collector for
    snapshot repair.  Must be called at a safepoint. *)

val note_second_mutator : t -> unit
(** A chaos-injected second mutator exists: [Single_mutator] is false. *)

val note_class_load : t -> unit
(** A chaos-injected class load happened: [Closed_world] is false, so
    summary-dependent elisions must revoke. *)

val reset_cycle_state : t -> unit
(** Reset the per-cycle guarded-write set and degradation flag; the
    runner calls this when a marking cycle starts or ends. *)

val set_swap_degraded : t -> unit
(** Enter degraded mode (retrace budget overflow): swap-elided sites
    execute full logging barriers for the remainder of the cycle.  Only
    call at a safepoint. *)

val external_guarded_store :
  t -> obj:int -> idx:int -> v:Value.t -> unit
(** A chaos-injected second mutator's store through a
    [Single_mutator]-guarded elided site: unlogged while such sites are
    live and the assumption unrevoked, a full barrier afterwards. *)

val external_unbarriered_store :
  t -> obj:int -> idx:int -> v:Value.t -> unit
(** A store with no barrier at all (deliberate barrier-skip fault); the
    oracle must catch the damage. *)

val external_alloc : t -> count:int -> unit
(** Chaos-injected allocation ballast: [count] small unreachable objects
    through the normal admission-controlled path, so allocation spikes
    and memory-pressure ramps exercise the pacer exactly like mutator
    pressure (including {!Pacer.Hard_limit}). *)

val spawn_thread : t -> Jir.Types.method_ref -> Value.t list -> thread

val roots : t -> int list
(** All reference values held in thread stacks and statics. *)

val static_roots : t -> int list
(** References held in statics alone — what the hybrid collector marks at
    cycle start (stacks are scanned lazily). *)

val thread_roots : t -> (int * int list) list
(** [(tid, refs held in that thread's frames)] for every thread. *)

val step : t -> thread -> bool
(** Execute one instruction; [false] once the thread has finished. *)

(** {2 Shared barrier machinery (used by the threaded engine)}

    The threaded engine ({!Exec}) compiles each store site to an opcode
    that caches the site's {!site_stats} record and dispatches to one of
    the bodies below, chosen at specialization time from the cached
    verdict.  Every body bumps exactly the counters the interpreter's
    store path would. *)

val site_stats : t -> site -> Jir.Types.store_kind -> site_stats
(** Find or lazily materialize the per-site record (born-revoked
    accounting included) — the same materialization the interpreter
    performs at a site's first execution. *)

val ref_store_barrier_st :
  t -> site_stats -> tid:int -> obj:int -> pre:Value.t -> nv:Value.t -> unit
(** The general barrier body: handles every flavor, retrace checks,
    degraded fallbacks and guarded elisions.  [obj = -1] for statics. *)

val barrier_elided_plain : t -> site_stats -> obj:int -> pre:Value.t -> unit
(** Fused fast path; precondition: [`Satb]/[`Card], elided, no check, no
    guards. *)

val barrier_elided_guarded : t -> site_stats -> obj:int -> pre:Value.t -> unit
(** Fused fast path; precondition: as {!barrier_elided_plain} but
    guarded (joins the repair set while marking). *)

val barrier_hybrid_both_elided :
  t -> site_stats -> obj:int -> pre:Value.t -> unit
(** Fused fast path; precondition: [`Hybrid], both halves elided,
    unguarded, no insertion repair. *)

val barrier_hybrid_del_elided :
  t -> site_stats -> tid:int -> obj:int -> pre:Value.t -> nv:Value.t -> unit
(** Fused fast path; precondition: [`Hybrid], deletion half elided and
    unguarded, insertion half kept. *)

val barrier_hybrid_ins_elided :
  t -> site_stats -> obj:int -> pre:Value.t -> unit
(** Fused fast path; precondition: [`Hybrid], insertion half elided,
    unguarded, no repair, deletion half kept. *)

val allocate : t -> units:int -> (unit -> Heap.obj) -> Heap.obj
(** Allocate through the pacer's admission control (may raise
    {!Pacer.Hard_limit}) and notify the collector — the path both
    engines' [New]/[Newarray] use. *)

(** {2 Heap observatory support}

    Verdict classes of {!t.elided_write_log} entries: which (half of the)
    barrier an elided store skipped, so the float accounting
    ({!Heapscope}) can attribute floating garbage per elision verdict. *)

val ew_full : int
(** Whole barrier elided ([`Satb]/[`Card] flavors). *)

val ew_del : int
(** Hybrid: deletion half elided, insertion half ran. *)

val ew_ins : int
(** Hybrid: insertion half elided, deletion half ran. *)

val ew_both : int
(** Hybrid: both halves elided. *)

val alloc_site : t -> frame -> int
(** Interned {!Sitemap} id of the allocation site at [frame]'s current
    pc, cached per program point (the interpreter's [New]/[Newarray]
    path; the threaded engine interns at compile time instead). *)

type dyn_stats = {
  total_execs : int;
  elided_execs : int;
  pot_pre_null_execs : int;
  field_execs : int;  (** putfield only; statics are counted apart *)
  field_elided : int;
  array_execs : int;
  array_elided : int;
  static_execs : int;  (** putstatic of reference statics (never elided) *)
}

val dyn_stats : t -> dyn_stats
val pp_dyn_stats : dyn_stats Fmt.t
