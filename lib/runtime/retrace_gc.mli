(** SATB concurrent marking with the optimistic tracing-state / retrace
    protocol (§4.3 rearrangement support).

    Extends plain SATB ({!Satb_gc}) with per-object tracing state
    ({!Heap.trace_state}) and a {e retrace list}: compiled code at a
    swap-elided store runs a cheap tracing-state check instead of the
    logging barrier ({!Gc_hooks.t.on_unlogged_store}); if the written
    object is not yet fully traced it is enqueued for a whole-object
    re-scan.  Remark may not end before the retrace list reaches a fixed
    point.  Sound only together with the compiler's same-block swap-pair
    contract and the interpreter's safepoint-free swap windows (see the
    implementation's header comment for the full argument).

    Arrays are scanned in bounded chunks, descending — the same contract
    move-down elision relies on.  Every cycle is verified against the
    {!Oracle}. *)

type phase = Idle | Marking
type gray = Whole of int | Array_tail of { id : int; upto : int }

type cycle_report = {
  cycle : int;
  snapshot_size : int;
  marked : int;
  logged : int;
  allocated_during : int;
  increments : int;
  retraces : int;  (** whole-object re-scans forced by unlogged stores *)
  final_pause_work : int;  (** objects processed inside the remark pause *)
  swept : int;
  budget_overflows : int;  (** checks that found the budget exhausted *)
  degraded : bool;  (** budget overflowed; swap elision disabled mid-cycle *)
  repair_enqueues : int;  (** retrace entries forced by revocation repair *)
  violations : int;  (** snapshot-reachable objects left unmarked *)
}

type t = {
  heap : Heap.t;
  roots : unit -> int list;
  steps_per_increment : int;
  buffer_capacity : int;
  array_chunk : int;
  retrace_budget : int;
  mutable phase : phase;
  mutable gray : gray list;
  mutable satb_buffer : int list;
  mutable local_buffer : int list;
  mutable local_count : int;
  mutable retrace : int list;
  mutable in_retrace : Oracle.Iset.t;
  mutable snapshot : Oracle.Iset.t;
  mutable logged : int;
  mutable allocated_during : int;
  mutable increments : int;
  mutable boost : int;
      (** mark-budget multiplier; >1 while the pacer is degraded *)
  mutable retraces : int;
  mutable enqueued : int;
  mutable degraded : bool;
  mutable budget_overflows : int;
  mutable repair_enqueues : int;
  mutable cycles : int;
  mutable reports : cycle_report list;
  mutable sweep_enabled : bool;
}

val create :
  ?steps_per_increment:int ->
  ?buffer_capacity:int ->
  ?array_chunk:int ->
  ?retrace_budget:int ->
  ?sweep:bool ->
  Heap.t ->
  roots:(unit -> int list) ->
  t
(** [retrace_budget] bounds retrace-list enqueues per cycle (termination
    watchdog); past it the cycle degrades — swap elision is disabled for
    the remainder and stores fall back to logging.  Default unbounded. *)

val is_marking : t -> bool

val is_degraded : t -> bool
(** The current cycle overflowed its retrace budget; the runner should
    disable swap elision until the cycle ends. *)

val start_cycle : t -> unit
val log_ref_store : t -> obj:int -> pre:Value.t -> unit

val on_unlogged_store : t -> obj:int -> unit
(** The tracing-state check at a swap-elided store: enqueue the object for
    a re-scan unless it is already [Traced] (or was allocated black). *)

val on_revoke : t -> objs:int list -> unit
(** Revocation repair: force a whole-object re-scan of every object
    written through a now-revoked site this cycle, regardless of tracing
    state, bypassing the budget. *)

val on_alloc : t -> Heap.obj -> unit
val step : t -> unit

val quiescent : t -> bool
(** Has the concurrent phase exhausted its visible work?  Pending retrace
    entries count as work: remark may not begin before the retrace fixed
    point. *)

val finish_cycle : t -> cycle_report
(** The remark pause: flush buffer remnants, drain everything to the
    retrace fixed point, verify the snapshot invariant, sweep. *)

val hooks : t -> Gc_hooks.t
