(** Pause-time percentiles and minimum mutator utilization (MMU) over
    sliding windows: the pure profiler math, housed in the runtime
    library so the pacer's feedback mode can consume it.
    [Profile.Stats] re-exports everything here (plus the
    report-to-timeline bridge) for the profiler-facing callers.

    The runtime is a deterministic interpreter, so the timeline is
    measured in {e mutator instruction steps} and pauses in the
    collectors' {e pause-work units}, one work unit costed at one
    step. *)

(** {2 Percentiles} *)

type dist = {
  d_count : int;  (** number of pauses *)
  d_total : int;  (** summed pause work *)
  d_p50 : int;
  d_p90 : int;
  d_p99 : int;
  d_max : int;
}

val dist_of : int list -> dist
(** Nearest-rank percentiles; all zero for the empty list. *)

val percentile : int list -> float -> int
(** [percentile xs p] — nearest-rank percentile [p] (0 < p <= 100) of
    [xs] (need not be sorted); 0 for the empty list. *)

(** {2 Minimum mutator utilization} *)

type pause = {
  at : int;  (** mutator step at which the pause began *)
  work : int;  (** pause duration, in work units (= steps) *)
}

type timeline = {
  steps : int;  (** total mutator instruction steps of the run *)
  pauses : pause list;  (** in timeline order *)
}

val total_time : timeline -> int
(** Combined length: mutator steps plus all pause work. *)

val mmu : timeline -> window:int -> float
(** Minimum mutator utilization over every sliding window of [window]
    time units: [min over t of mutator_time([t, t+w]) / w].  A window
    longer than the whole run is clamped to it (so the value degrades to
    overall utilization); a zero-pause run has MMU 1.0 at every window;
    [window <= 0] is reported as 1.0. *)

val mmu_curve : ?fractions:float list -> timeline -> (int * float) list
(** MMU at windows sized as fractions of the total timeline (default
    1%, 2%, 5%, 10%, 20%, 50%, 100%), deduplicated, ascending; each
    window is at least one unit.  Empty for a zero-length run. *)

val utilization : timeline -> float
(** Overall mutator utilization: steps / (steps + total pause work);
    1.0 for an empty run. *)
