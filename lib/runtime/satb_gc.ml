(** Snapshot-at-the-beginning (SATB) concurrent marking (Yuasa-style, as
    used by the Garbage-First collector the paper instruments).

    The collector marks the objects reachable in a logical snapshot of the
    object graph taken when marking starts.  The mutator's write barrier
    logs the {e pre-write} value of every overwritten reference field, so
    that subgraphs unlinked during marking are still traced.  Objects
    allocated during marking are implicitly marked ("allocated black") and
    need never be examined — the key SATB advantage (§1).

    The final "remark pause" only has to drain the remaining SATB buffers,
    which is why SATB pauses are so much shorter than incremental-update
    pauses (compared in {!Incr_gc}); the pause's work is measured in
    {!cycle_report.final_pause_work}.

    Object arrays are scanned {e incrementally} (in bounded chunks) and in
    {e descending} index order.  The direction is a documented contract
    with the compiler: the §4.3 move-down elision (see
    {!Satb_core.Analysis}) is only sound when the collector's array scan
    direction agrees with the direction of element movement, and delete
    loops move elements toward lower indices.

    Every cycle is checked against the {!Oracle}: a missing barrier that
    actually unlinked an unvisited snapshot object shows up as an invariant
    violation, so running workloads under this collector end-to-end tests
    the {e soundness} of the barrier-removal analysis. *)

module Iset = Oracle.Iset

type phase = Idle | Marking

(** Gray-set entries: a whole object, or the remainder of a partially
    scanned object array (slots [0..upto] still to visit, descending). *)
type gray = Whole of int | Array_tail of { id : int; upto : int }

(** How the marker walks object arrays; [Descending] is the shipping
    contract (required by move-down elision), [Ascending] exists to let
    the tests demonstrate that the contract matters. *)
type scan_direction = Descending | Ascending

type cycle_report = {
  cycle : int;
  snapshot_size : int;
  marked : int;
  logged : int;  (** SATB buffer entries processed *)
  allocated_during : int;
  increments : int;  (** concurrent mark increments *)
  final_pause_work : int;  (** objects processed inside the remark pause *)
  swept : int;
  restarts : int;
      (** marks restarted from a fresh snapshot by elision revocation *)
  violations : int;
      (** snapshot-reachable objects left unmarked — 0 unless a needed
          barrier was removed *)
}

type t = {
  heap : Heap.t;
  roots : unit -> int list;
  steps_per_increment : int;
  buffer_capacity : int;
      (** entries a mutator-local log buffer holds before it is handed to
          the collector; remnants are only visible at the remark pause *)
  array_chunk : int;  (** array slots visited per gray-entry processing *)
  direction : scan_direction;
  mutable phase : phase;
  mutable gray : gray list;
  mutable satb_buffer : int list;  (** completed buffers (object ids) *)
  mutable local_buffer : int list;  (** mutator-local, not yet handed over *)
  mutable local_count : int;
  mutable snapshot : Iset.t;
  mutable logged : int;
  mutable allocated_during : int;
  mutable increments : int;
  mutable boost : int;
      (** mark-budget multiplier; >1 while the pacer is degraded
          (shortened mark budgets under memory pressure) *)
  mutable restarts : int;  (** revocation-triggered restarts, this cycle *)
  mutable cycles : int;
  mutable reports : cycle_report list;  (** most recent first *)
  mutable sweep_enabled : bool;
}

let create ?(steps_per_increment = 64) ?(buffer_capacity = 32)
    ?(array_chunk = 8) ?(direction = Descending) ?(sweep = true)
    (heap : Heap.t) ~(roots : unit -> int list) : t =
  {
    heap;
    roots;
    steps_per_increment;
    buffer_capacity;
    array_chunk;
    direction;
    phase = Idle;
    gray = [];
    satb_buffer = [];
    local_buffer = [];
    local_count = 0;
    snapshot = Iset.empty;
    logged = 0;
    allocated_during = 0;
    increments = 0;
    boost = 1;
    restarts = 0;
    cycles = 0;
    reports = [];
    sweep_enabled = sweep;
  }

let is_marking t = t.phase = Marking

(* telemetry: shared with [Incr_gc]/[Retrace_gc] (same names, the
   [collector] field tells the streams apart) *)
let c_cycles = Telemetry.counter "gc.cycles"
let fk_satb = Flight.intern "satb"
let c_restarts = Telemetry.counter "gc.restarts"
let c_violations = Telemetry.counter "gc.violations"

(* [origin] records why the cycle keeps the object (a [Heap.origin_*]
   constant); first marker wins, children inherit the parent's origin
   while draining, and the float accounting reads the stamps post-sweep *)
let mark_and_gray t ~origin id =
  let o = Heap.get t.heap id in
  if (not o.marked) && not o.dead then begin
    o.marked <- true;
    o.origin <- origin;
    t.gray <- Whole id :: t.gray
  end

(** Begin a cycle: capture the root set (initial-mark pause) and the
    oracle snapshot used for verification. *)
let start_cycle (t : t) : unit =
  assert (t.phase = Idle);
  t.phase <- Marking;
  t.gray <- [];
  t.satb_buffer <- [];
  t.local_buffer <- [];
  t.local_count <- 0;
  t.logged <- 0;
  t.allocated_during <- 0;
  t.increments <- 0;
  t.restarts <- 0;
  let roots = t.roots () in
  t.snapshot <- Oracle.reachable t.heap roots;
  List.iter (mark_and_gray t ~origin:Heap.origin_trace) roots;
  Flight.record Flight.Mark_start ~a:fk_satb ~b:t.cycles
    ~c:(Iset.cardinal t.snapshot);
  Telemetry.emit "gc.cycle.start"
    [
      ("collector", Telemetry.Str "satb");
      ("cycle", Telemetry.Int t.cycles);
      ("phase", Telemetry.Str "marking");
      ("snapshot_size", Telemetry.Int (Iset.cardinal t.snapshot));
    ]

(** Mutator hooks. *)

(** Log the pre-write value into the mutator-local buffer; a full buffer
    is handed to the collector (only then can concurrent marking see its
    entries — exactly how G1's thread-local SATB queues behave). *)
let log_ref_store t ~obj:_ ~pre =
  if t.phase = Marking then
    match pre with
    | Value.Ref id ->
        t.local_buffer <- id :: t.local_buffer;
        t.local_count <- t.local_count + 1;
        t.logged <- t.logged + 1;
        if t.local_count >= t.buffer_capacity then begin
          t.satb_buffer <- List.rev_append t.local_buffer t.satb_buffer;
          t.local_buffer <- [];
          t.local_count <- 0
        end
    | Value.Null | Value.Int _ -> ()

let on_alloc t (o : Heap.obj) =
  if t.phase = Marking then begin
    (* allocate black: implicitly marked, never examined (§1) *)
    o.marked <- true;
    o.origin <- Heap.origin_alloc;
    o.born_during_mark <- true;
    t.allocated_during <- t.allocated_during + 1
  end

(** Scan one chunk of an object array's slots in the configured
    direction, re-graying a continuation when slots remain. *)
let scan_array_chunk (t : t) (id : int) ~(upto : int) : unit =
  let o = Heap.get t.heap id in
  if not o.dead then
    match o.payload with
    | Heap.Ref_array es ->
        let upto = min upto (Array.length es - 1) in
        let visit i =
          match es.(i) with
          | Value.Ref tgt -> mark_and_gray t ~origin:o.origin tgt
          | Value.Null | Value.Int _ -> ()
        in
        (match t.direction with
        | Descending ->
            let last = max 0 (upto - t.array_chunk + 1) in
            for i = upto downto last do
              visit i
            done;
            if last > 0 then
              t.gray <- Array_tail { id; upto = last - 1 } :: t.gray
        | Ascending ->
            (* slots [0..upto] remain, walked upward: visit the low chunk
               and keep the high remainder — used only to demonstrate the
               direction contract in tests *)
            let len = Array.length es in
            let start = len - 1 - upto in
            let stop = min (len - 1) (start + t.array_chunk - 1) in
            for i = start to stop do
              visit i
            done;
            if stop < len - 1 then
              t.gray <- Array_tail { id; upto = len - 1 - (stop + 1) } :: t.gray)
    | Heap.Fields _ | Heap.Int_array _ -> ()

(** Process up to [budget] gray entries (one collector increment),
    draining logged pre-values first.  Returns the number processed. *)
let drain (t : t) (budget : int) : int =
  let processed = ref 0 in
  while
    !processed < budget && (t.gray <> [] || t.satb_buffer <> [])
  do
    (match t.satb_buffer with
    | id :: rest ->
        t.satb_buffer <- rest;
        mark_and_gray t ~origin:Heap.origin_log id
    | [] -> ());
    (match t.gray with
    | Whole id :: rest ->
        t.gray <- rest;
        incr processed;
        let o = Heap.get t.heap id in
        if not o.dead then begin
          match o.payload with
          | Heap.Ref_array es ->
              scan_array_chunk t id ~upto:(Array.length es - 1)
          | Heap.Fields _ | Heap.Int_array _ ->
              List.iter (mark_and_gray t ~origin:o.origin) (Heap.out_edges o)
        end
    | Array_tail { id; upto } :: rest ->
        t.gray <- rest;
        incr processed;
        scan_array_chunk t id ~upto
    | [] -> ())
  done;
  !processed

let step (t : t) : unit =
  if t.phase = Marking then begin
    t.increments <- t.increments + 1;
    ignore (drain t (t.steps_per_increment * t.boost))
  end

(** Snapshot repair after elision revocation.  Plain SATB has no record
    of {e which} pre-values the revoked sites failed to log, so the only
    sound recovery is wholesale: discard the cycle's progress and restart
    the mark against a fresh snapshot taken {e now} — any object whose
    last strong reference was overwritten through a revoked site is no
    longer reachable and so no longer owed a visit. *)
let restart_mark (t : t) : unit =
  if t.phase = Marking then begin
    Heap.clear_marks t.heap;
    t.gray <- [];
    t.satb_buffer <- [];
    t.local_buffer <- [];
    t.local_count <- 0;
    t.restarts <- t.restarts + 1;
    Telemetry.incr c_restarts;
    let roots = t.roots () in
    t.snapshot <- Oracle.reachable t.heap roots;
    List.iter (mark_and_gray t ~origin:Heap.origin_trace) roots;
    Telemetry.emit "gc.restart"
      [
        ("collector", Telemetry.Str "satb");
        ("cycle", Telemetry.Int t.cycles);
        ("snapshot_size", Telemetry.Int (Iset.cardinal t.snapshot));
      ]
  end

(** Has the concurrent phase exhausted its known work? *)
let quiescent (t : t) : bool =
  t.phase = Marking && t.gray = [] && t.satb_buffer = []

(** The remark pause: flush the mutator-local buffer remnants, drain
    everything, verify the snapshot invariant, sweep.  Returns the cycle
    report.  The pause's work is bounded by the buffer remnants and their
    transitive unmarked reach — not by heap size or allocation rate, which
    is the SATB advantage measured in experiment E5. *)
let finish_cycle (t : t) : cycle_report =
  assert (t.phase = Marking);
  t.satb_buffer <- List.rev_append t.local_buffer t.satb_buffer;
  t.local_buffer <- [];
  t.local_count <- 0;
  let pause_work = ref 0 in
  while t.gray <> [] || t.satb_buffer <> [] do
    pause_work := !pause_work + drain t max_int
  done;
  (* Invariant: every snapshot-reachable object is marked.  A violation
     means a store whose barrier was (wrongly) removed unlinked an
     unvisited part of the snapshot. *)
  let violations = Oracle.snapshot_violations t.heap t.snapshot in
  let marked = ref 0 in
  Heap.iter_live t.heap (fun o -> if o.marked then incr marked);
  let swept = ref 0 in
  if t.sweep_enabled && violations = 0 then
    Heap.iter_live t.heap (fun o ->
        if not o.marked then begin
          Heap.free t.heap o;
          incr swept
        end);
  let report =
    {
      cycle = t.cycles;
      snapshot_size = Iset.cardinal t.snapshot;
      marked = !marked;
      logged = t.logged;
      allocated_during = t.allocated_during;
      increments = t.increments;
      final_pause_work = !pause_work;
      swept = !swept;
      restarts = t.restarts;
      violations;
    }
  in
  t.cycles <- t.cycles + 1;
  t.heap.Heap.gc_cycle <- t.heap.Heap.gc_cycle + 1;
  t.reports <- report :: t.reports;
  t.phase <- Idle;
  Heap.clear_marks t.heap;
  Telemetry.incr c_cycles;
  Telemetry.incr c_violations ~by:violations;
  Flight.record Flight.Mark_end ~a:fk_satb ~b:report.cycle ~c:violations;
  Telemetry.emit "gc.cycle.finish"
    [
      ("collector", Telemetry.Str "satb");
      ("cycle", Telemetry.Int report.cycle);
      ("phase", Telemetry.Str "idle");
      ("marked", Telemetry.Int report.marked);
      ("logged", Telemetry.Int report.logged);
      ("final_pause_work", Telemetry.Int report.final_pause_work);
      ("swept", Telemetry.Int report.swept);
      ("restarts", Telemetry.Int report.restarts);
      ("violations", Telemetry.Int report.violations);
    ];
  report

(** Package as mutator-facing hooks. *)
let hooks (t : t) : Gc_hooks.t =
  {
    Gc_hooks.name = "satb";
    caps =
      {
        Gc_hooks.retrace_protocol = false;
        descending_scan = (t.direction = Descending);
        insertion_half = false;
      };
    is_marking = (fun () -> is_marking t);
    log_ref_store = (fun ~obj ~pre -> log_ref_store t ~obj ~pre);
    log_ins_store = (fun ~tid:_ ~nv:_ -> ());
    (* no retrace protocol: an unlogged rearranging store is invisible to
       this collector (the negative soundness tests rely on this) *)
    on_unlogged_store = (fun ~obj:_ -> ());
    (* repair by restarting against a fresh snapshot — the ids are not
       needed, the new snapshot subsumes them *)
    on_revoke = (fun ~objs:_ -> restart_mark t);
    on_alloc = (fun o -> on_alloc t o);
    on_pressure = (fun ~degraded -> t.boost <- (if degraded then Gc_hooks.pressure_boost else 1));
    step = (fun () -> step t);
  }
