(** Process-global allocation-site interner.

    Both engines intern a site string ("Class.method\@pc") once — the
    interpreter through a per-method cache, [Jrt.Exec] at compile time —
    and stamp the resulting id on every object they allocate, so the
    allocation fast paths stay allocation-free while the heap observatory
    ({!Heapscope}) can attribute census rows, retained sizes and floating
    garbage back to program points.

    The table is process-global (like {!Flight}'s intern table): ids are
    stable across runs within a process, which is what lets snapshots
    taken from different cycles of the same run diff by id. *)

val intern : string -> int
(** Intern a site name, returning its stable id.  Idempotent. *)

val runtime_site : int
(** Id of the distinguished ["<runtime>"] site, stamped on allocations
    with no program-point provenance (chaos ballast, test scaffolding). *)

val name : int -> string
(** Reverse lookup; ["<unknown>"] for out-of-range ids. *)

val count : unit -> int
(** Number of interned sites. *)
