(** Direct-threaded execution engine: verified jir methods compile into
    arrays of OCaml closures with preresolved field offsets and static
    cells, barrier-elided stores fused into opcodes specialized per
    verdict half, and guard checks compiled to epoch-stamp comparisons
    ({!Interp.t.barrier_epoch}) so safepoint revocation invalidates
    compiled sites individually, with no global flush.

    The engine executes over the interpreter's own substrate (heap,
    statics, counters, site stats, GC hooks, pacer), so collectors,
    chaos faults and telemetry behave identically under either engine
    and the step-accurate {!Interp} serves as a differential oracle. *)

type t

val create : Interp.t -> t
(** Wrap a machine; installs {!Interp.t.stack_roots_override} so root
    enumeration follows the engine's live stacks in the interpreter's
    exact visit order.  Methods compile lazily on first call/adoption. *)

val slice : t -> Interp.thread -> fuel:int -> int
(** Run up to [fuel] instructions of the given thread (adopting it into
    the engine on first contact — including threads spawned by chaos
    faults mid-run) and return how many executed.  Counter-for-counter
    equivalent to [fuel] iterations of {!Interp.step}.  Propagates
    {!Interp.Runtime_bug} and {!Pacer.Hard_limit} like the interpreter;
    in-program exceptions unwind to handlers internally. *)

val compiled_methods : t -> int
(** Number of methods compiled so far (observability/tests). *)

val inflight : t -> int
(** Instructions charged by the slice in flight but not yet flushed to
    [instr_count] (0 between slices).  The runner's flight-recorder step
    source adds it, so mid-slice events — including barrier work inside
    fused blocks, whose store sub-ops publish their consumed prefix —
    carry exactly the step the interpreter would have recorded. *)

