(** Direct-threaded execution engine for verified jir methods.

    Each method compiles once into arrays of OCaml closures ("ops"), one
    per bytecode, with everything resolvable at compile time
    preresolved: field offsets, static cells, callee code, branch
    targets, allocation shapes.  On top of the one-op-per-instruction
    array sits a {e fused} array: a small expression compiler runs
    maximal munch over each basic block and collapses producer chains
    into their consumers — so [getstatic; iload; aaload; astore] becomes
    one closure that reads the static cell, indexes the array and writes
    the local, with no operand-stack traffic and a single dispatch.  A
    fused opcode may cover several such statements, up to the block's
    terminating branch.

    Reference stores compile to fused opcodes specialized per verdict
    half (paid / deletion-elided / insertion-elided / both-elided; see
    the [Interp.barrier_*] bodies): the site's {!Interp.site_stats}
    record is cached in the opcode and the verdict baked into which
    fused body runs.  Each store site carries an {e epoch stamp}:
    safepoint revocation, degraded-mode entry and cycle resets bump
    {!Interp.t.barrier_epoch}, and a stamped site respecializes itself
    the next time it executes — per-site invalidation through one
    integer comparison on the store fast path, no global flush.

    Fused opcodes execute only when they fit {e entirely} inside the
    current slice's fuel; near a safepoint boundary the engine falls
    back to the single-op array.  This is what keeps the two engines
    bit-identical: a safepoint can interrupt the interpreter mid-pattern
    with partial results on the operand stack, and in exactly those
    schedules the threaded engine ran the same instructions one op at a
    time, leaving an identical stack for root enumeration.

    The engine shares the interpreter's whole substrate — heap, statics
    table (written through), counters, site stats, GC hooks, pacer,
    chaos faults — so the {!Runner}'s safepoint cadence and every
    telemetry counter are engine-independent, and the step-accurate
    {!Interp} remains a differential-testing oracle.  Root enumeration
    is routed through {!Interp.t.stack_roots_override} and reproduces
    the interpreter's exact visit order (frames top first, locals in
    index order, operand stack top first, prepend-accumulated), because
    concurrent-marking progress depends on root order.

    Engine registers — operand-stack slots and locals — hold values in
    an {e unboxed tagged-int encoding} (see {!encode}), so register
    traffic is plain immediate-int array stores: no allocation, no OCaml
    write barrier.  The heap, statics table and barrier interfaces keep
    the interpreter's boxed {!Value.t}; conversion happens only at heap
    loads/stores, and integer-typed data never boxes at all.

    Deviations from the interpreter, by design and only observable from
    {e unverified} code (the verifier rules all of them out): operand
    stack underflow surfaces as an array-bounds error rather than
    [Runtime_bug], type-confusion errors inside a fused opcode surface
    in operand-evaluation order rather than pop order, method/static
    resolution happens at method-compile time rather than first
    execution, and integers wrap at 62 bits rather than 63 (the tag
    bit; both stand in for Java's 32-bit ints, and overflow behaviour
    is unspecified in jir). *)

open Jir.Types
module I = Interp

let bugf = I.bugf

(* ---- unboxed value encoding -------------------------------------------- *)

(* Registers hold values as immediate tagged ints: bit 0 set = Int
   (payload in the upper bits), 0 = Null, any other even value = Ref
   (id + 1, shifted).  The encoding is injective and order-preserving
   on ints, so integer compares run directly on encoded values. *)

let enc_int n = (n lsl 1) lor 1
let enc_ref id = (id + 1) lsl 1

let encode = function
  | Value.Null -> 0
  | Value.Int n -> enc_int n
  | Value.Ref id -> enc_ref id

let decode v =
  if v land 1 = 1 then Value.Int (v asr 1)
  else if v = 0 then Value.Null
  else Value.Ref ((v asr 1) - 1)

(* ---- compiled code ----------------------------------------------------- *)

type eframe = {
  ef_home : cmeth;  (** owning compiled method — names, handlers, pool *)
  ef_ops : op array;  (** one op per bytecode *)
  ef_fuse : op array;  (** fused op starting at each pc (= single if none) *)
  ef_klen : int array;  (** instructions the fused op at each pc covers *)
  ef_pooled : bool;
      (** engine-created (recyclable); adopted frames were sized from an
          interpreter frame and never recycle *)
  mutable epc : int;
  elocals : int array;  (** encoded values, see {!encode} *)
  estack : int array;  (** index 0 = bottom; slots above [esp] stale *)
  mutable esp : int;
}

and ethread = {
  ith : I.thread;
      (** shared identity: tid, [finished]/[error] written back so the
          scheduler and reports see the engine's threads unchanged *)
  mutable eframes : eframe array;
      (** frame stack, bottom at index 0; slots at [efp] and above are
          stale (calls and returns never allocate, they bump [efp]) *)
  mutable efp : int;  (** live frame count; top of stack = [efp - 1] *)
}

and op = ethread -> eframe -> unit

and cmeth = {
  cm_class : class_name;
  cm_meth : meth;
  mutable cm_ops : op array;
  mutable cm_fuse : op array;
  mutable cm_klen : int array;
      (** arrays filled after the record is memoized, so recursive and
          mutually recursive calls can link against the record itself *)
  cm_nargs : int;
  cm_max_locals : int;
  cm_stack_cap : int;  (** dataflow max operand depth, plus slack *)
  mutable cm_pool : eframe array;
      (** recycled frames (a stack, [cm_npool] live): calls reuse
          locals/stack arrays instead of allocating — invisible to the
          heap model, since roots only ever walk the live [eframes]
          prefixes *)
  mutable cm_npool : int;
}

(** A compiled reference-store site: the fused barrier body chosen for
    the site's current verdict, plus the epoch stamp it was specialized
    against. *)
type store_cell = {
  cell_site : I.site;
  cell_kind : store_kind;
  cell_fid : int;
      (** flight-recorder intern id of the site, paid once at compile
          time so respecialization records stay allocation-free *)
  mutable cell_stamp : int;  (** -1 = never specialized *)
  mutable cell_exec : tid:int -> obj:int -> pre:Value.t -> nv:Value.t -> unit;
}

(** A preresolved static slot.  Reads hit the cell; writes go through to
    the interpreter's statics table as well, so root enumeration, traces
    and the differential oracle see identical statics at all times
    (every key exists from machine creation, so [Hashtbl.replace]
    mutates in place and iteration order never changes). *)
type static_cell = {
  sc_key : class_name * field_name;
  mutable sc_v : Value.t;
  mutable sc_enc : int;  (** [encode sc_v], kept in lockstep *)
}

type t = {
  m : I.t;
  methods : (class_name * method_name, cmeth) Hashtbl.t;
  threads : (int, ethread) Hashtbl.t;  (** by tid *)
  statics : (class_name * field_name, static_cell) Hashtbl.t;
  mutable last : ethread option;  (** slice-to-slice thread cache *)
  slice_n : int ref;
      (** instructions charged by the slice in flight but not yet flushed
          to [instr_count]; the flight recorder's step source adds it so
          mid-slice events land on their true step *)
  mutable fuse_start : int;
      (** block-start pc of the fused op in flight, -1 outside one; with
          [fuse_ep] it recovers the instructions a fused block has
          consumed when a sub-op records mid-block *)
  mutable fuse_ep : int;
      (** pc published by the recording sub-ops (the ref stores) just
          before barrier work; -1 until one runs in the current block *)
}

(* ---- operand stack ----------------------------------------------------- *)

(* operands are encoded ints throughout, see {!encode} *)

let push fr v =
  fr.estack.(fr.esp) <- v;
  fr.esp <- fr.esp + 1

let pop fr =
  let sp = fr.esp - 1 in
  fr.esp <- sp;
  fr.estack.(sp)

let pop_int fr =
  let v = pop fr in
  if v land 1 = 1 then v asr 1
  else bugf "expected int, got %a" Value.pp (decode v)

let pop_ref_or_null fr =
  let v = pop fr in
  if v land 1 = 0 then v else bugf "expected ref, got int"

let deref (m : I.t) fr (v : int) : Heap.obj =
  if v land 1 = 1 then bugf "expected ref, got int"
  else if v = 0 then I.jthrow Null_deref
  else begin
    (* inlined Heap.get: encoded refs come only from the allocator, so
       id >= 0 and id < next_id hold by construction; the array read
       keeps its own bounds check as the backstop *)
    let id = (v asr 1) - 1 in
    let o = m.I.heap.Heap.objects.(id) in
    if o.Heap.dead then
      bugf "use-after-free of #%d (%s) at %s.%s@%d" id o.Heap.cls
        fr.ef_home.cm_class fr.ef_home.cm_meth.mname fr.epc;
    o
  end

let pop_obj (m : I.t) fr = deref m fr (pop fr)

let fields_of (o : Heap.obj) =
  match o.Heap.payload with
  | Heap.Fields fs -> fs
  | Heap.Ref_array _ | Heap.Int_array _ -> bugf "expected object, got array"

let ref_elems_of (o : Heap.obj) =
  match o.Heap.payload with
  | Heap.Ref_array es -> es
  | Heap.Fields _ | Heap.Int_array _ -> bugf "expected object array"

let int_elems_of (o : Heap.obj) =
  match o.Heap.payload with
  | Heap.Int_array es -> es
  | Heap.Fields _ | Heap.Ref_array _ -> bugf "expected int array"

(* ---- barrier specialization -------------------------------------------- *)

(** (Re)specialize a store site against the machine's current epoch:
    materialize (or find) its stats — the same lazy materialization, in
    the same first-execution order, as the interpreter — and pick the
    fused body its verdict qualifies for.  Anything with a tracing-state
    check, a live guard on a fused-ineligible shape, or a degraded
    interaction falls back to the shared general body. *)
let specialize (m : I.t) (cell : store_cell) : unit =
  let st = I.site_stats m cell.cell_site cell.cell_kind in
  Flight.record Flight.Respecialize ~a:cell.cell_fid ~b:m.I.barrier_epoch
    ~c:0;
  cell.cell_stamp <- m.I.barrier_epoch;
  cell.cell_exec <-
    (match m.I.cfg.I.barrier_flavor with
    | `Hybrid ->
        if
          st.I.st_del_elided && st.I.st_ins_elided
          && st.I.st_del_guards = [] && st.I.st_ins_guards = []
          && not st.I.st_ins_repair
        then fun ~tid:_ ~obj ~pre ~nv:_ ->
          I.barrier_hybrid_both_elided m st ~obj ~pre
        else if
          st.I.st_del_elided
          && (not st.I.st_ins_elided)
          && st.I.st_del_guards = []
        then fun ~tid ~obj ~pre ~nv ->
          I.barrier_hybrid_del_elided m st ~tid ~obj ~pre ~nv
        else if
          st.I.st_ins_elided
          && (not st.I.st_del_elided)
          && st.I.st_ins_guards = []
          && not st.I.st_ins_repair
        then fun ~tid:_ ~obj ~pre ~nv:_ ->
          I.barrier_hybrid_ins_elided m st ~obj ~pre
        else fun ~tid ~obj ~pre ~nv ->
          I.ref_store_barrier_st m st ~tid ~obj ~pre ~nv
    | `Satb | `Card ->
        if st.I.st_elided && st.I.st_check = I.No_check then
          if st.I.st_guards = [] then fun ~tid:_ ~obj ~pre ~nv:_ ->
            I.barrier_elided_plain m st ~obj ~pre
          else fun ~tid:_ ~obj ~pre ~nv:_ ->
            I.barrier_elided_guarded m st ~obj ~pre
        else fun ~tid ~obj ~pre ~nv ->
          I.ref_store_barrier_st m st ~tid ~obj ~pre ~nv)

let unspecialized : tid:int -> obj:int -> pre:Value.t -> nv:Value.t -> unit =
 fun ~tid:_ ~obj:_ ~pre:_ ~nv:_ -> assert false

(** Intern the allocation site at [pc] of a method being compiled —
    once, at compile time, so the allocation closures carry a plain int
    and the fast path does no lookup at all (one better than the
    interpreter's per-site cache). *)
let alloc_site_id (c : cmeth) (pc : int) : int =
  Sitemap.intern
    (I.site_id { I.s_class = c.cm_class; s_method = c.cm_meth.mname; s_pc = pc })

let store_cell (c_class : class_name) (mname : method_name) (pc : int)
    (kind : store_kind) : store_cell =
  let site = { I.s_class = c_class; s_method = mname; s_pc = pc } in
  {
    cell_site = site;
    cell_kind = kind;
    cell_fid = Flight.intern (I.site_id site);
    cell_stamp = -1;
    cell_exec = unspecialized;
  }

(* ---- frames ------------------------------------------------------------ *)

let fresh_frame (cm : cmeth) : eframe =
  {
    ef_home = cm;
    ef_ops = cm.cm_ops;
    ef_fuse = cm.cm_fuse;
    ef_klen = cm.cm_klen;
    ef_pooled = true;
    epc = 0;
    elocals = Array.make cm.cm_max_locals 0;
    estack = Array.make cm.cm_stack_cap 0;
    esp = 0;
  }

let frame_of (cm : cmeth) : eframe =
  let np = cm.cm_npool in
  if np > 0 then begin
    cm.cm_npool <- np - 1;
    let f = cm.cm_pool.(np - 1) in
    Array.fill f.elocals 0 (Array.length f.elocals) 0;
    f.epc <- 0;
    f.esp <- 0;
    f
  end
  else fresh_frame cm

let release (f : eframe) : unit =
  if f.ef_pooled then begin
    let cm = f.ef_home in
    let cap = Array.length cm.cm_pool in
    if cm.cm_npool = cap then begin
      let bigger = Array.make (max 4 (2 * cap)) f in
      Array.blit cm.cm_pool 0 bigger 0 cap;
      cm.cm_pool <- bigger
    end;
    cm.cm_pool.(cm.cm_npool) <- f;
    cm.cm_npool <- cm.cm_npool + 1
  end

(* call: never allocates once warm — the frame comes from the pool and
   the thread's frame stack grows amortized *)
let push_frame (eth : ethread) (nf : eframe) : unit =
  let cap = Array.length eth.eframes in
  if eth.efp = cap then begin
    let bigger = Array.make (max 8 (2 * cap)) nf in
    Array.blit eth.eframes 0 bigger 0 cap;
    eth.eframes <- bigger
  end;
  eth.eframes.(eth.efp) <- nf;
  eth.efp <- eth.efp + 1

(* ---- operand-stack capacity -------------------------------------------- *)

(** Forward dataflow over the bytecode computing the maximum operand
    depth, so call frames allocate exactly the stack they need (the
    interpreter's list-backed stack never needed a bound).  Joins take
    the max; depths are clamped by the code length so even inconsistent
    (unverified) flows terminate. *)
let stack_cap_of (prog : Jir.Program.t) (meth : meth) : int =
  let code = meth.code in
  let len = Array.length code in
  if len = 0 then 2
  else begin
    let effect_of = function
      | Iconst _ | Aconst_null | Iload _ | Aload _ | Getstatic _ | Dup
      | New _ ->
          1
      | Istore _ | Astore _ | Pop | If_i _ | If_null _ | If_nonnull _
      | Putstatic _ | Ibin _ | Aaload | Iaload ->
          -1
      | If_icmp _ | If_acmp _ | Putfield _ -> -2
      | Aastore | Iastore -> -3
      | Iinc _ | Ineg | Arraylength | Newarray _ | Swap | Goto _ | Getfield _
        ->
          0
      | Invoke mr ->
          (* +1 over-approximates: a void callee pushes nothing *)
          1 - List.length (Jir.Program.get_method prog mr).params
      | Spawn mr -> -List.length (Jir.Program.get_method prog mr).params
      | Return | Ireturn | Areturn -> 0
    in
    let depth = Array.make len (-1) in
    let maxd = ref 0 in
    let rec visit pc d =
      if pc >= 0 && pc < len && depth.(pc) < d then begin
        depth.(pc) <- d;
        if d > !maxd then maxd := d;
        let dn = min len (max 0 (d + effect_of code.(pc))) in
        match code.(pc) with
        | Goto l -> visit l dn
        | If_i (_, l)
        | If_icmp (_, l)
        | If_null l
        | If_nonnull l
        | If_acmp (_, l) ->
            visit l dn;
            visit (pc + 1) dn
        | Return | Ireturn | Areturn -> ()
        | _ -> visit (pc + 1) dn
      end
    in
    visit 0 0;
    List.iter (fun (h : int handler) -> visit h.target 0) meth.handlers;
    !maxd + 2
  end

(* ---- compilation: one op per bytecode ---------------------------------- *)

let static_cell (t : t) (r : field_ref) : static_cell =
  let key = (r.fclass, r.fname) in
  match Hashtbl.find_opt t.statics key with
  | Some c -> c
  | None ->
      (* the write-through keeps the interpreter's table current, so the
         value at (lazy) compile time is the live one *)
      let v = Hashtbl.find t.m.I.statics key in
      let c = { sc_key = key; sc_v = v; sc_enc = encode v } in
      Hashtbl.add t.statics key c;
      c

let rec get_cmeth (t : t) (mclass : class_name) (mname : method_name) : cmeth =
  let key = (mclass, mname) in
  match Hashtbl.find_opt t.methods key with
  | Some c -> c
  | None ->
      let meth = Jir.Program.get_method t.m.I.prog { mclass; mname } in
      let c =
        {
          cm_class = mclass;
          cm_meth = meth;
          cm_ops = [||];
          cm_fuse = [||];
          cm_klen = [||];
          cm_nargs = List.length meth.params;
          cm_max_locals = meth.max_locals;
          cm_stack_cap = stack_cap_of t.m.I.prog meth;
          cm_pool = [||];
          cm_npool = 0;
        }
      in
      Hashtbl.add t.methods key c;
      c.cm_ops <- Array.mapi (fun pc ins -> compile_op t c pc ins) meth.code;
      compile_blocks t c;
      c

and compile_op (t : t) (c : cmeth) (pc : int) (ins : int instr) : op =
  let m = t.m in
  let next fr = fr.epc <- fr.epc + 1 in
  match ins with
  | Iconst n ->
      let v = enc_int n in
      fun _ fr ->
        push fr v;
        next fr
  | Aconst_null ->
      fun _ fr ->
        push fr 0;
        next fr
  | Iload i | Aload i ->
      fun _ fr ->
        push fr fr.elocals.(i);
        next fr
  | Istore i | Astore i ->
      fun _ fr ->
        fr.elocals.(i) <- pop fr;
        next fr
  | Iinc (i, d) ->
      let d2 = d lsl 1 in
      fun _ fr ->
        let v = fr.elocals.(i) in
        if v land 1 = 0 then bugf "iinc of %a" Value.pp (decode v);
        fr.elocals.(i) <- v + d2;
        next fr
  | Ibin op ->
      (* encoded arithmetic: add/sub stay in the encoding, mul/div/rem
         go through the raw payload *)
      let f =
        match op with
        | Add -> fun a b -> a + b - 1
        | Sub -> fun a b -> a - b + 1
        | Mul -> fun a b -> enc_int ((a asr 1) * (b asr 1))
        | Div ->
            fun a b ->
              if b = 1 then I.jthrow Arith
              else enc_int ((a asr 1) / (b asr 1))
        | Rem ->
            fun a b ->
              if b = 1 then I.jthrow Arith
              else enc_int ((a asr 1) mod (b asr 1))
      in
      fun _ fr ->
        let b = pop fr in
        let a = pop fr in
        if a land b land 1 = 0 then
          bugf "expected int, got %a" Value.pp
            (decode (if a land 1 = 0 then a else b));
        push fr (f a b);
        next fr
  | Ineg ->
      (* enc (-n) = -(2n+1) + 2 = 2 - enc n *)
      fun _ fr ->
        let v = pop fr in
        if v land 1 = 0 then
          bugf "expected int, got %a" Value.pp (decode v);
        push fr (2 - v);
        next fr
  | Dup ->
      fun _ fr ->
        push fr fr.estack.(fr.esp - 1);
        next fr
  | Pop ->
      fun _ fr ->
        fr.esp <- fr.esp - 1;
        next fr
  | Swap ->
      fun _ fr ->
        let a = pop fr in
        let b = pop fr in
        push fr a;
        push fr b;
        next fr
  | Goto l -> fun _ fr -> fr.epc <- l
  | If_i (cond, l) ->
      fun _ fr ->
        let a = pop_int fr in
        if eval_cond cond a 0 then fr.epc <- l else next fr
  | If_icmp (cond, l) ->
      fun _ fr ->
        let b = pop_int fr in
        let a = pop_int fr in
        if eval_cond cond a b then fr.epc <- l else next fr
  | If_null l ->
      fun _ fr ->
        if pop_ref_or_null fr = 0 then fr.epc <- l else next fr
  | If_nonnull l ->
      fun _ fr ->
        if pop_ref_or_null fr = 0 then next fr else fr.epc <- l
  | If_acmp (want_eq, l) ->
      fun _ fr ->
        let b = pop_ref_or_null fr in
        let a = pop_ref_or_null fr in
        if a = b = want_eq then fr.epc <- l else next fr
  | Getstatic r ->
      let cell = static_cell t r in
      fun _ fr ->
        push fr cell.sc_enc;
        next fr
  | Putstatic r ->
      let cell = static_cell t r in
      if Jir.Types.equal_ty (Jir.Program.static_ty m.I.prog r) R then begin
        let b = store_cell c.cm_class c.cm_meth.mname pc Static_store in
        fun eth fr ->
          let ev = pop fr in
          let v = decode ev in
          if b.cell_stamp <> m.I.barrier_epoch then specialize m b;
          b.cell_exec ~tid:eth.ith.I.tid ~obj:(-1) ~pre:cell.sc_v ~nv:v;
          cell.sc_v <- v;
          cell.sc_enc <- ev;
          Hashtbl.replace m.I.statics cell.sc_key v;
          next fr
      end
      else
        fun _ fr ->
          let ev = pop fr in
          cell.sc_v <- decode ev;
          cell.sc_enc <- ev;
          Hashtbl.replace m.I.statics cell.sc_key cell.sc_v;
          next fr
  | Getfield r ->
      let idx = Jir.Program.field_index m.I.prog r in
      fun _ fr ->
        let o = pop_obj m fr in
        push fr (encode (fields_of o).(idx));
        next fr
  | Putfield r ->
      let idx = Jir.Program.field_index m.I.prog r in
      if Jir.Types.equal_ty (Jir.Program.field_ty m.I.prog r) R then begin
        let b = store_cell c.cm_class c.cm_meth.mname pc Field_store in
        fun eth fr ->
          let v = decode (pop fr) in
          let o = pop_obj m fr in
          let fs = fields_of o in
          if b.cell_stamp <> m.I.barrier_epoch then specialize m b;
          b.cell_exec ~tid:eth.ith.I.tid ~obj:o.Heap.id ~pre:fs.(idx) ~nv:v;
          fs.(idx) <- v;
          next fr
      end
      else
        fun _ fr ->
          let v = decode (pop fr) in
          let o = pop_obj m fr in
          (fields_of o).(idx) <- v;
          next fr
  | New cn ->
      let cls = Jir.Program.get_class m.I.prog cn in
      let n_fields = List.length cls.fields in
      let units = 2 + n_fields in
      let heap = m.I.heap in
      (* the interned id matches what [Interp.alloc_site] would produce
         at this pc, so census rows are engine-independent *)
      let site = alloc_site_id c pc in
      let mk () = Heap.alloc_object ~site heap cn ~n_fields in
      fun _ fr ->
        let o = I.allocate m ~units mk in
        push fr (enc_ref o.Heap.id);
        next fr
  | Newarray (Elem_ref cn) ->
      let heap = m.I.heap in
      let site = alloc_site_id c pc in
      fun _ fr ->
        let len = pop_int fr in
        if len < 0 then I.jthrow Bounds;
        let o =
          I.allocate m ~units:(2 + len) (fun () ->
              Heap.alloc_ref_array ~site heap cn ~len)
        in
        push fr (enc_ref o.Heap.id);
        next fr
  | Newarray Elem_int ->
      let heap = m.I.heap in
      let site = alloc_site_id c pc in
      fun _ fr ->
        let len = pop_int fr in
        if len < 0 then I.jthrow Bounds;
        let o =
          I.allocate m ~units:(2 + len) (fun () ->
              Heap.alloc_int_array ~site heap ~len)
        in
        push fr (enc_ref o.Heap.id);
        next fr
  | Aaload ->
      fun _ fr ->
        let i = pop_int fr in
        let o = pop_obj m fr in
        let es = ref_elems_of o in
        if i < 0 || i >= Array.length es then I.jthrow Bounds;
        push fr (encode es.(i));
        next fr
  | Aastore ->
      let b = store_cell c.cm_class c.cm_meth.mname pc Array_store in
      fun eth fr ->
        let v = decode (pop fr) in
        let i = pop_int fr in
        let o = pop_obj m fr in
        let es = ref_elems_of o in
        if i < 0 || i >= Array.length es then I.jthrow Bounds;
        if b.cell_stamp <> m.I.barrier_epoch then specialize m b;
        b.cell_exec ~tid:eth.ith.I.tid ~obj:o.Heap.id ~pre:es.(i) ~nv:v;
        es.(i) <- v;
        next fr
  | Iaload ->
      fun _ fr ->
        let i = pop_int fr in
        let o = pop_obj m fr in
        let es = int_elems_of o in
        if i < 0 || i >= Array.length es then I.jthrow Bounds;
        push fr (enc_int es.(i));
        next fr
  | Iastore ->
      fun _ fr ->
        let v = pop_int fr in
        let i = pop_int fr in
        let o = pop_obj m fr in
        let es = int_elems_of o in
        if i < 0 || i >= Array.length es then I.jthrow Bounds;
        es.(i) <- v;
        next fr
  | Arraylength ->
      fun _ fr ->
        let o = pop_obj m fr in
        let len =
          match o.Heap.payload with
          | Heap.Ref_array es -> Array.length es
          | Heap.Int_array es -> Array.length es
          | Heap.Fields _ -> bugf "arraylength of non-array"
        in
        push fr (enc_int len);
        next fr
  | Invoke mr ->
      (* links against the memoized record; its arrays are read at call
         time, so recursion (the record's ops still being filled here)
         resolves correctly *)
      let callee = get_cmeth t mr.mclass mr.mname in
      let nargs = callee.cm_nargs in
      fun eth fr ->
        let nf = frame_of callee in
        for k = nargs - 1 downto 0 do
          nf.elocals.(k) <- pop fr
        done;
        (* fr.epc stays at the call site until the callee returns, so
           exception handler ranges cover the invoke *)
        push_frame eth nf
  | Spawn mr ->
      (* eager get_cmeth so create-time prewarm compiles spawn targets *)
      let callee = get_cmeth t mr.mclass mr.mname in
      let nargs = callee.cm_nargs in
      fun _ fr ->
        let args = Array.make nargs Value.Null in
        for k = nargs - 1 downto 0 do
          args.(k) <- decode (pop fr)
        done;
        let th = I.spawn_thread m mr (Array.to_list args) in
        ignore (adopt t th);
        next fr
  | Return ->
      fun eth _ ->
        let fp = eth.efp - 1 in
        release eth.eframes.(fp);
        eth.efp <- fp;
        if fp = 0 then eth.ith.I.finished <- true
        else begin
          let caller = eth.eframes.(fp - 1) in
          caller.epc <- caller.epc + 1
        end
  | Ireturn | Areturn ->
      fun eth fr ->
        let v = pop fr in
        let fp = eth.efp - 1 in
        release eth.eframes.(fp);
        eth.efp <- fp;
        if fp = 0 then eth.ith.I.finished <- true
        else begin
          let caller = eth.eframes.(fp - 1) in
          push caller v;
          caller.epc <- caller.epc + 1
        end

(* ---- compilation: fused basic blocks ------------------------------------

   A small expression compiler over the stack code.  A {e producer} is a
   closure computing one operand value directly (no operand-stack
   traffic), built by maximal munch over leaf pushes (const, local,
   static read) and value-producing consumers (arithmetic, array loads,
   field loads, arraylength).  Producers carry their {e shape} — known
   constant, local slot, static cell, or opaque closure — so consumers
   specialize: [iload 0; iconst 1; iadd] compiles to one closure doing a
   local read and an add, not a chain of three indirect calls, and
   constant subexpressions fold at compile time.

   A {e statement} is a producer-fed sink (branch, local store, heap or
   static store, return, invoke), a folded run of [iinc]s, a [goto], or
   — when no sink matches — a plain push of the parsed producers, so
   blocks keep going through argument setup.  A fused opcode covers a
   run of statements ending at the block's terminator.  Calls fuse too:
   an [invoke] sink writes producer-fed arguments straight into the
   callee's (pooled) frame, and [return]s recycle the frame and resume
   the caller, so a small method body costs one dispatch per call.

   Exception parity: any sub-instruction that can raise a program
   exception sets [fr.epc] to its own pc first, so handler-range
   matching in [unwind] and the slice's executed-instruction accounting
   ([fr.epc - start + 1]) behave exactly as if the run had executed one
   op at a time.  Producers run in push order and dereferences happen at
   the consumer, matching the interpreter's effect order on verified
   code; pure operands (constants, locals, static cells — nothing in a
   producer chain ever writes) may evaluate out of order, which is
   unobservable. *)

and compile_blocks (t : t) (c : cmeth) : unit =
  let m = t.m in
  let code = c.cm_meth.code in
  let len = Array.length code in
  let fuse = Array.copy c.cm_ops in
  let klen = Array.make len 1 in
  (* encoded -> raw int payload *)
  let as_int v =
    if v land 1 = 1 then v asr 1
    else bugf "expected int, got %a" Value.pp (decode v)
  in
  let module P = struct
    (* integer producers yield RAW machine ints *)
    type iprod =
      | IP_const of int
      | IP_local of int
      | IP_fun of (ethread -> eframe -> int)

    (* value producers yield ENCODED values (see {!encode}) *)
    type vprod =
      | VP_null
      | VP_local of int
      | VP_static of static_cell
      | VP_fun of (ethread -> eframe -> int)

    (* all shapes but IP_fun/VP_fun are pure register/cell reads *)
    type prod = P_int of iprod | P_val of vprod
  end in
  let open P in
  let ifun = function
    | IP_const n -> fun _ _ -> n
    | IP_local i -> fun _ fr -> as_int fr.elocals.(i)
    | IP_fun f -> f
  in
  let vfun = function
    | VP_null -> fun _ _ -> 0
    | VP_local i -> fun _ fr -> fr.elocals.(i)
    | VP_static cell -> fun _ _ -> cell.sc_enc
    | VP_fun f -> f
  in
  let iprod_of = function
    | P_int ip -> ip
    | P_val (VP_local i) -> IP_local i
    | P_val (VP_static cell) -> IP_fun (fun _ _ -> as_int cell.sc_enc)
    | P_val VP_null -> IP_fun (fun _ _ -> as_int 0)
    | P_val (VP_fun f) -> IP_fun (fun eth fr -> as_int (f eth fr))
  in
  let vprod_of = function
    | P_val vp -> vp
    | P_int (IP_const n) ->
        let v = enc_int n in
        VP_fun (fun _ _ -> v)
    | P_int (IP_local i) ->
        (* int-typed locals are stored encoded already *)
        VP_local i
    | P_int (IP_fun f) -> VP_fun (fun eth fr -> enc_int (f eth fr))
  in
  let cmp_of : cond -> int -> int -> bool = function
    | Eq -> fun a b -> a = b
    | Ne -> fun a b -> a <> b
    | Lt -> fun a b -> a < b
    | Ge -> fun a b -> a >= b
    | Gt -> fun a b -> a > b
    | Le -> fun a b -> a <= b
  in
  (* evaluate a reference producer and dereference it at pc [at] *)
  let obj_of at vp : ethread -> eframe -> Heap.obj =
    match vp with
    | VP_local i ->
        fun _ fr ->
          let v = fr.elocals.(i) in
          fr.epc <- at;
          deref m fr v
    | VP_static cell ->
        fun _ fr ->
          fr.epc <- at;
          deref m fr cell.sc_enc
    | VP_null ->
        fun _ fr ->
          fr.epc <- at;
          I.jthrow Null_deref
    | VP_fun f ->
        fun eth fr ->
          let v = f eth fr in
          fr.epc <- at;
          deref m fr v
  in
  let ibin_op (op : ibin) ipa ipb q2 : iprod =
    match op with
    | Add | Sub | Mul -> (
        match (ipa, ipb) with
        | IP_const a, IP_const b ->
            IP_const
              (match op with
              | Add -> a + b
              | Sub -> a - b
              | Mul -> a * b
              | Div | Rem -> assert false)
        | IP_local i, IP_const b -> (
            match op with
            | Add -> IP_fun (fun _ fr -> as_int fr.elocals.(i) + b)
            | Sub -> IP_fun (fun _ fr -> as_int fr.elocals.(i) - b)
            | Mul -> IP_fun (fun _ fr -> as_int fr.elocals.(i) * b)
            | Div | Rem -> assert false)
        | IP_local i, IP_local j -> (
            match op with
            | Add ->
                IP_fun
                  (fun _ fr -> as_int fr.elocals.(i) + as_int fr.elocals.(j))
            | Sub ->
                IP_fun
                  (fun _ fr -> as_int fr.elocals.(i) - as_int fr.elocals.(j))
            | Mul ->
                IP_fun
                  (fun _ fr -> as_int fr.elocals.(i) * as_int fr.elocals.(j))
            | Div | Rem -> assert false)
        | IP_fun f, IP_const b -> (
            match op with
            | Add -> IP_fun (fun eth fr -> f eth fr + b)
            | Sub -> IP_fun (fun eth fr -> f eth fr - b)
            | Mul -> IP_fun (fun eth fr -> f eth fr * b)
            | Div | Rem -> assert false)
        | ipa, ipb ->
            let fa = ifun ipa and fb = ifun ipb in
            let g =
              match op with
              | Add -> ( + )
              | Sub -> ( - )
              | Mul -> ( * )
              | Div | Rem -> assert false
            in
            IP_fun
              (fun eth fr ->
                let a = fa eth fr in
                let b = fb eth fr in
                g a b))
    | Div | Rem -> (
        match ipb with
        | IP_const b when b <> 0 ->
            (* divisor known nonzero: no trap, no pc stamp *)
            let fa = ifun ipa in
            if op = Div then IP_fun (fun eth fr -> fa eth fr / b)
            else IP_fun (fun eth fr -> fa eth fr mod b)
        | _ ->
            let fa = ifun ipa and fb = ifun ipb in
            if op = Div then
              IP_fun
                (fun eth fr ->
                  let a = fa eth fr in
                  let b = fb eth fr in
                  fr.epc <- q2;
                  if b = 0 then I.jthrow Arith else a / b)
            else
              IP_fun
                (fun eth fr ->
                  let a = fa eth fr in
                  let b = fb eth fr in
                  fr.epc <- q2;
                  if b = 0 then I.jthrow Arith else a mod b))
  in
  let getfield_prod vp idx at : vprod =
    match vp with
    | VP_local i ->
        VP_fun
          (fun _ fr ->
            let v = fr.elocals.(i) in
            fr.epc <- at;
            encode (fields_of (deref m fr v)).(idx))
    | vp ->
        let fo = obj_of at vp in
        VP_fun (fun eth fr -> encode (fields_of (fo eth fr)).(idx))
  in
  let aaload_elems at v fr =
    fr.epc <- at;
    ref_elems_of (deref m fr v)
  in
  let iaload_elems at v fr =
    fr.epc <- at;
    int_elems_of (deref m fr v)
  in
  let aaload_prod vp ip at : vprod =
    match (vp, ip) with
    | VP_static cell, IP_local i ->
        VP_fun
          (fun _ fr ->
            let i = as_int fr.elocals.(i) in
            let es = aaload_elems at cell.sc_enc fr in
            if i < 0 || i >= Array.length es then I.jthrow Bounds;
            encode es.(i))
    | VP_local l, IP_local i ->
        VP_fun
          (fun _ fr ->
            let v = fr.elocals.(l) in
            let i = as_int fr.elocals.(i) in
            let es = aaload_elems at v fr in
            if i < 0 || i >= Array.length es then I.jthrow Bounds;
            encode es.(i))
    | vp, ip ->
        let fv = vfun vp and fi = ifun ip in
        VP_fun
          (fun eth fr ->
            let v = fv eth fr in
            let i = fi eth fr in
            let es = aaload_elems at v fr in
            if i < 0 || i >= Array.length es then I.jthrow Bounds;
            encode es.(i))
  in
  let iaload_prod vp ip at : iprod =
    match (vp, ip) with
    | VP_local l, IP_local i ->
        IP_fun
          (fun _ fr ->
            let v = fr.elocals.(l) in
            let i = as_int fr.elocals.(i) in
            let es = iaload_elems at v fr in
            if i < 0 || i >= Array.length es then I.jthrow Bounds;
            es.(i))
    | vp, ip ->
        let fv = vfun vp and fi = ifun ip in
        IP_fun
          (fun eth fr ->
            let v = fv eth fr in
            let i = fi eth fr in
            let es = iaload_elems at v fr in
            if i < 0 || i >= Array.length es then I.jthrow Bounds;
            es.(i))
  in
  let leaf q : (prod * int) option =
    if q >= len then None
    else
      match code.(q) with
      | Iconst n -> Some (P_int (IP_const n), q + 1)
      | Aconst_null -> Some (P_val VP_null, q + 1)
      | Iload i | Aload i -> Some (P_val (VP_local i), q + 1)
      | Getstatic r -> Some (P_val (VP_static (static_cell t r)), q + 1)
      | _ -> None
  in
  (* maximal munch: parse one producer starting at [q], folding in any
     value-producing consumers that follow; backtracking is free because
     parsing is pure compile-time work *)
  let rec prod q : (prod * int) option =
    match leaf q with None -> None | Some (p0, q1) -> extend p0 q1
  and extend p0 q : (prod * int) option =
    if q >= len then Some (p0, q)
    else
      match code.(q) with
      | Ineg ->
          extend
            (P_int
               (match iprod_of p0 with
               | IP_const n -> IP_const (-n)
               | IP_local i -> IP_fun (fun _ fr -> -as_int fr.elocals.(i))
               | IP_fun f -> IP_fun (fun eth fr -> -f eth fr)))
            (q + 1)
      | Arraylength ->
          let fo = obj_of q (vprod_of p0) in
          extend
            (P_int
               (IP_fun
                  (fun eth fr ->
                    match (fo eth fr).Heap.payload with
                    | Heap.Ref_array es -> Array.length es
                    | Heap.Int_array es -> Array.length es
                    | Heap.Fields _ -> bugf "arraylength of non-array")))
            (q + 1)
      | Getfield r ->
          let idx = Jir.Program.field_index m.I.prog r in
          extend (P_val (getfield_prod (vprod_of p0) idx q)) (q + 1)
      | _ -> (
          (* binary value-producing consumers take a second operand *)
          match prod q with
          | None -> Some (p0, q)
          | Some (p1, q2) ->
              if q2 >= len then Some (p0, q)
              else (
                match code.(q2) with
                | Ibin op ->
                    extend
                      (P_int (ibin_op op (iprod_of p0) (iprod_of p1) q2))
                      (q2 + 1)
                | Aaload ->
                    extend
                      (P_val (aaload_prod (vprod_of p0) (iprod_of p1) q2))
                      (q2 + 1)
                | Iaload ->
                    extend
                      (P_int (iaload_prod (vprod_of p0) (iprod_of p1) q2))
                      (q2 + 1)
                | _ -> Some (p0, q)))
  in
  (* ---- statements: (run, next_pc, terminal).  Terminal statements
     set [epc] themselves (absolute target, fallthrough, or call/return
     bookkeeping); non-terminal ones leave it to the block epilogue. *)
  let store_local i p0 : op =
    match p0 with
    | P_val (VP_local j) | P_int (IP_local j) ->
        fun _ fr -> fr.elocals.(i) <- fr.elocals.(j)
    | P_val (VP_static cell) -> fun _ fr -> fr.elocals.(i) <- cell.sc_enc
    | P_val VP_null -> fun _ fr -> fr.elocals.(i) <- 0
    | P_val (VP_fun f) -> fun eth fr -> fr.elocals.(i) <- f eth fr
    | P_int (IP_const n) ->
        let v = enc_int n in
        fun _ fr -> fr.elocals.(i) <- v
    | P_int (IP_fun f) ->
        fun eth fr -> fr.elocals.(i) <- enc_int (f eth fr)
  in
  let if_i_stmt cond ipa l fall : op =
    let cmp = cmp_of cond in
    match ipa with
    | IP_const a ->
        let tgt = if cmp a 0 then l else fall in
        fun _ fr -> fr.epc <- tgt
    | IP_local i ->
        fun _ fr ->
          fr.epc <- (if cmp (as_int fr.elocals.(i)) 0 then l else fall)
    | IP_fun f ->
        fun eth fr -> fr.epc <- (if cmp (f eth fr) 0 then l else fall)
  in
  let if_icmp_stmt cond ipa ipb l fall : op =
    let cmp = cmp_of cond in
    match (ipa, ipb) with
    | IP_local i, IP_const b ->
        fun _ fr ->
          fr.epc <- (if cmp (as_int fr.elocals.(i)) b then l else fall)
    | IP_local i, IP_local j ->
        fun _ fr ->
          fr.epc <-
            (if cmp (as_int fr.elocals.(i)) (as_int fr.elocals.(j)) then l
             else fall)
    | IP_fun f, IP_const b ->
        fun eth fr -> fr.epc <- (if cmp (f eth fr) b then l else fall)
    | IP_fun f, IP_local j ->
        fun eth fr ->
          (* the local read is pure; evaluation order is unobservable *)
          let a = f eth fr in
          fr.epc <- (if cmp a (as_int fr.elocals.(j)) then l else fall)
    | IP_local i, IP_fun f ->
        fun eth fr ->
          let b = f eth fr in
          fr.epc <- (if cmp (as_int fr.elocals.(i)) b then l else fall)
    | ipa, ipb ->
        let fa = ifun ipa and fb = ifun ipb in
        fun eth fr ->
          let a = fa eth fr in
          let b = fb eth fr in
          fr.epc <- (if cmp a b then l else fall)
  in
  let if_null_stmt want_null vp l fall : op =
    let tnull = if want_null then l else fall in
    let tnon = if want_null then fall else l in
    match vp with
    | VP_local i ->
        fun _ fr ->
          fr.epc <- (if fr.elocals.(i) = 0 then tnull else tnon)
    | vp ->
        let fv = vfun vp in
        fun eth fr ->
          fr.epc <- (if fv eth fr = 0 then tnull else tnon)
  in
  let return_stmt : op =
   fun eth _ ->
    let fp = eth.efp - 1 in
    release eth.eframes.(fp);
    eth.efp <- fp;
    if fp = 0 then eth.ith.I.finished <- true
    else begin
      let caller = eth.eframes.(fp - 1) in
      caller.epc <- caller.epc + 1
    end
  in
  let vreturn_stmt (fv : ethread -> eframe -> int) : op =
   fun eth fr ->
    let v = fv eth fr in
    let fp = eth.efp - 1 in
    release eth.eframes.(fp);
    eth.efp <- fp;
    if fp = 0 then eth.ith.I.finished <- true
    else begin
      let caller = eth.eframes.(fp - 1) in
      push caller v;
      caller.epc <- caller.epc + 1
    end
  in
  (* a fused call: spill any surplus producers to the stack (they are
     operands of something after the call), evaluate the last [nargs]
     producers straight into the callee's locals, pop whatever the
     producers did not cover from the operand stack, and push the
     callee's frame.  [fr.epc] parks at the call site so handler ranges
     cover the invoke and the caller resumes at the next pc. *)
  let invoke_stmt (callee : cmeth) ps q_inv : op =
    let nargs = callee.cm_nargs in
    let nps = List.length ps in
    let npush = max 0 (nps - nargs) in
    let pushes =
      Array.of_list
        (List.filteri (fun i _ -> i < npush) ps
        |> List.map (fun p -> vfun (vprod_of p)))
    in
    let argfs =
      Array.of_list
        (List.filteri (fun i _ -> i >= npush) ps
        |> List.map (fun p -> vfun (vprod_of p)))
    in
    let na = Array.length argfs in
    let npop = nargs - na in
    if Array.length pushes = 0 then
      fun eth fr ->
        let nf = frame_of callee in
        for i = 0 to na - 1 do
          nf.elocals.(npop + i) <- argfs.(i) eth fr
        done;
        for k = npop - 1 downto 0 do
          nf.elocals.(k) <- pop fr
        done;
        fr.epc <- q_inv;
        push_frame eth nf
    else
      fun eth fr ->
        for i = 0 to Array.length pushes - 1 do
          push fr (pushes.(i) eth fr)
        done;
        let nf = frame_of callee in
        for i = 0 to na - 1 do
          nf.elocals.(npop + i) <- argfs.(i) eth fr
        done;
        for k = npop - 1 downto 0 do
          nf.elocals.(k) <- pop fr
        done;
        fr.epc <- q_inv;
        push_frame eth nf
  in
  let push_stmt ps q' : (op * int * bool) option =
    match List.map (fun p -> vfun (vprod_of p)) ps with
    | [ fa ] -> Some ((fun eth fr -> push fr (fa eth fr)), q', false)
    | [ fa; fb ] ->
        Some
          ( (fun eth fr ->
              push fr (fa eth fr);
              push fr (fb eth fr)),
            q',
            false )
    | [ fa; fb; fv ] ->
        Some
          ( (fun eth fr ->
              push fr (fa eth fr);
              push fr (fb eth fr);
              push fr (fv eth fr)),
            q',
            false )
    | _ -> None
  in
  let parse_stmt q : (op * int * bool) option =
    if q >= len then None
    else
      match code.(q) with
      | Iinc (i, d) ->
          (* fold a run of same-local iincs (workloads use these as
             padding) into one add; intermediate values are unobservable
             inside a slice *)
          let q' = ref (q + 1) in
          let total = ref d in
          let scanning = ref true in
          while !scanning && !q' < len do
            match code.(!q') with
            | Iinc (i', d') when i' = i ->
                total := !total + d';
                incr q'
            | _ -> scanning := false
          done;
          let total2 = !total lsl 1 in
          Some
            ( (fun _ fr ->
                let v = fr.elocals.(i) in
                if v land 1 = 0 then bugf "iinc of %a" Value.pp (decode v);
                fr.elocals.(i) <- v + total2),
              !q',
              false )
      | Goto l -> Some ((fun _ fr -> fr.epc <- l), q + 1, true)
      | Return -> Some (return_stmt, q + 1, true)
      | Ireturn | Areturn ->
          (* return value from the operand stack (pushed by an earlier
             statement or before the block) *)
          Some (vreturn_stmt (fun _ fr -> pop fr), q + 1, true)
      | Invoke mr ->
          let callee = get_cmeth t mr.mclass mr.mname in
          Some (invoke_stmt callee [] q, q + 1, true)
      | _ -> (
          match prod q with
          | None -> None
          | Some (pa, q1) -> (
              if q1 >= len then push_stmt [ pa ] q1
              else
                match code.(q1) with
                (* ---- arity-1 sinks ---- *)
                | If_i (cond, l) ->
                    Some (if_i_stmt cond (iprod_of pa) l (q1 + 1), q1 + 1, true)
                | If_null l ->
                    Some
                      ( if_null_stmt true (vprod_of pa) l (q1 + 1),
                        q1 + 1,
                        true )
                | If_nonnull l ->
                    Some
                      ( if_null_stmt false (vprod_of pa) l (q1 + 1),
                        q1 + 1,
                        true )
                | Istore i | Astore i -> Some (store_local i pa, q1 + 1, false)
                | Ireturn | Areturn ->
                    Some (vreturn_stmt (vfun (vprod_of pa)), q1 + 1, true)
                | Invoke mr ->
                    let callee = get_cmeth t mr.mclass mr.mname in
                    Some (invoke_stmt callee [ pa ] q1, q1 + 1, true)
                | Putstatic r ->
                    let cell = static_cell t r in
                    let fa = vfun (vprod_of pa) in
                    if
                      Jir.Types.equal_ty (Jir.Program.static_ty m.I.prog r) R
                    then
                      let b =
                        store_cell c.cm_class c.cm_meth.mname q1 Static_store
                      in
                      Some
                        ( (fun eth fr ->
                            let ev = fa eth fr in
                            let v = decode ev in
                            t.fuse_ep <- q1;
                            if b.cell_stamp <> m.I.barrier_epoch then
                              specialize m b;
                            b.cell_exec ~tid:eth.ith.I.tid ~obj:(-1)
                              ~pre:cell.sc_v ~nv:v;
                            cell.sc_v <- v;
                            cell.sc_enc <- ev;
                            Hashtbl.replace m.I.statics cell.sc_key v),
                          q1 + 1,
                          false )
                    else
                      Some
                        ( (fun eth fr ->
                            let ev = fa eth fr in
                            cell.sc_v <- decode ev;
                            cell.sc_enc <- ev;
                            Hashtbl.replace m.I.statics cell.sc_key
                              cell.sc_v),
                          q1 + 1,
                          false )
                (* ---- arity-2 sinks ---- *)
                | _ -> (
                    match prod q1 with
                    | None -> push_stmt [ pa ] q1
                    | Some (pb, q2) -> (
                        if q2 >= len then push_stmt [ pa; pb ] q2
                        else
                          match code.(q2) with
                          | If_icmp (cond, l) ->
                              Some
                                ( if_icmp_stmt cond (iprod_of pa)
                                    (iprod_of pb) l (q2 + 1),
                                  q2 + 1,
                                  true )
                          | If_acmp (want_eq, l) ->
                              let fa = vfun (vprod_of pa)
                              and fb = vfun (vprod_of pb) in
                              let fall = q2 + 1 in
                              Some
                                ( (fun eth fr ->
                                    let a = fa eth fr in
                                    let b = fb eth fr in
                                    fr.epc <-
                                      (if a = b = want_eq then l else fall)),
                                  q2 + 1,
                                  true )
                          | Invoke mr ->
                              let callee = get_cmeth t mr.mclass mr.mname in
                              Some
                                ( invoke_stmt callee [ pa; pb ] q2,
                                  q2 + 1,
                                  true )
                          | Putfield r ->
                              let idx = Jir.Program.field_index m.I.prog r in
                              let vo = vprod_of pa in
                              let fv = vfun (vprod_of pb) in
                              let is_ref =
                                Jir.Types.equal_ty
                                  (Jir.Program.field_ty m.I.prog r)
                                  R
                              in
                              let run =
                                if is_ref then
                                  let b =
                                    store_cell c.cm_class c.cm_meth.mname q2
                                      Field_store
                                  in
                                  match vo with
                                  | VP_local i ->
                                      fun eth fr ->
                                        let v = decode (fv eth fr) in
                                        fr.epc <- q2;
                                        t.fuse_ep <- q2;
                                        let o =
                                          deref m fr fr.elocals.(i)
                                        in
                                        let fs = fields_of o in
                                        if b.cell_stamp <> m.I.barrier_epoch
                                        then specialize m b;
                                        b.cell_exec ~tid:eth.ith.I.tid
                                          ~obj:o.Heap.id ~pre:fs.(idx) ~nv:v;
                                        fs.(idx) <- v
                                  | vo ->
                                      let fo = vfun vo in
                                      fun eth fr ->
                                        let ov = fo eth fr in
                                        let v = decode (fv eth fr) in
                                        fr.epc <- q2;
                                        t.fuse_ep <- q2;
                                        let o = deref m fr ov in
                                        let fs = fields_of o in
                                        if b.cell_stamp <> m.I.barrier_epoch
                                        then specialize m b;
                                        b.cell_exec ~tid:eth.ith.I.tid
                                          ~obj:o.Heap.id ~pre:fs.(idx) ~nv:v;
                                        fs.(idx) <- v
                                else
                                  match vo with
                                  | VP_local i ->
                                      fun eth fr ->
                                        let v = decode (fv eth fr) in
                                        fr.epc <- q2;
                                        let o =
                                          deref m fr fr.elocals.(i)
                                        in
                                        (fields_of o).(idx) <- v
                                  | vo ->
                                      let fo = vfun vo in
                                      fun eth fr ->
                                        let ov = fo eth fr in
                                        let v = decode (fv eth fr) in
                                        fr.epc <- q2;
                                        (fields_of (deref m fr ov)).(idx) <-
                                          v
                              in
                              Some (run, q2 + 1, false)
                          (* ---- arity-3 sinks ---- *)
                          | _ -> (
                              match prod q2 with
                              | None -> push_stmt [ pa; pb ] q2
                              | Some (pv, q3) -> (
                                  if q3 >= len then
                                    push_stmt [ pa; pb; pv ] q3
                                  else
                                    match code.(q3) with
                                    | Invoke mr ->
                                        let callee =
                                          get_cmeth t mr.mclass mr.mname
                                        in
                                        Some
                                          ( invoke_stmt callee [ pa; pb; pv ]
                                              q3,
                                            q3 + 1,
                                            true )
                                    | Aastore ->
                                        let fa = vfun (vprod_of pa)
                                        and fi = ifun (iprod_of pb)
                                        and fv = vfun (vprod_of pv) in
                                        let b =
                                          store_cell c.cm_class
                                            c.cm_meth.mname q3 Array_store
                                        in
                                        Some
                                          ( (fun eth fr ->
                                              let va = fa eth fr in
                                              let i = fi eth fr in
                                              let v = decode (fv eth fr) in
                                              fr.epc <- q3;
                                              t.fuse_ep <- q3;
                                              let o = deref m fr va in
                                              let es = ref_elems_of o in
                                              if
                                                i < 0
                                                || i >= Array.length es
                                              then I.jthrow Bounds;
                                              if
                                                b.cell_stamp
                                                <> m.I.barrier_epoch
                                              then specialize m b;
                                              b.cell_exec ~tid:eth.ith.I.tid
                                                ~obj:o.Heap.id ~pre:es.(i)
                                                ~nv:v;
                                              es.(i) <- v),
                                            q3 + 1,
                                            false )
                                    | Iastore ->
                                        let fa = vfun (vprod_of pa)
                                        and fi = ifun (iprod_of pb)
                                        and fv = ifun (iprod_of pv) in
                                        Some
                                          ( (fun eth fr ->
                                              let va = fa eth fr in
                                              let i = fi eth fr in
                                              let v = fv eth fr in
                                              fr.epc <- q3;
                                              let es =
                                                int_elems_of (deref m fr va)
                                              in
                                              if
                                                i < 0
                                                || i >= Array.length es
                                              then I.jthrow Bounds;
                                              es.(i) <- v),
                                            q3 + 1,
                                            false )
                                    | _ -> push_stmt [ pa; pb; pv ] q3))))))
  in
  let block_at p : (op * int) option =
    let stmts = ref [] in
    let q = ref p in
    let terminal = ref false in
    let stop = ref false in
    while not !stop do
      match parse_stmt !q with
      | None -> stop := true
      | Some (run, q', term) ->
          stmts := run :: !stmts;
          q := q';
          if term then begin
            terminal := true;
            stop := true
          end
    done;
    let k = !q - p in
    if k < 2 then None
    else
      let all = Array.of_list (List.rev !stmts) in
      let nst = Array.length all in
      let body, tail =
        if !terminal then (Array.sub all 0 (nst - 1), all.(nst - 1))
        else
          let e = p + k in
          (all, fun _ fr -> fr.epc <- e)
      in
      let run =
        match body with
        | [||] -> tail
        | [| s0 |] ->
            fun eth fr ->
              s0 eth fr;
              tail eth fr
        | [| s0; s1 |] ->
            fun eth fr ->
              s0 eth fr;
              s1 eth fr;
              tail eth fr
        | [| s0; s1; s2 |] ->
            fun eth fr ->
              s0 eth fr;
              s1 eth fr;
              s2 eth fr;
              tail eth fr
        | ss ->
            let n = Array.length ss in
            fun eth fr ->
              for i = 0 to n - 1 do
                ss.(i) eth fr
              done;
              tail eth fr
      in
      Some (run, k)
  in
  (* block leader pcs: method entry, branch targets, fallthroughs of
     branches/returns/calls, handler targets, and resumption points
     after unfusable ops — plus anywhere not already covered by a
     block *)
  let leaders = Array.make (max len 1) false in
  if len > 0 then leaders.(0) <- true;
  let mark pc = if pc >= 0 && pc < len then leaders.(pc) <- true in
  Array.iteri
    (fun pc ins ->
      match ins with
      | Goto l -> mark l
      | If_i (_, l)
      | If_icmp (_, l)
      | If_null l
      | If_nonnull l
      | If_acmp (_, l) ->
          mark l;
          mark (pc + 1)
      | Return | Ireturn | Areturn | Invoke _ | Spawn _ | New _ | Newarray _
      | Dup | Pop | Swap ->
          mark (pc + 1)
      | _ -> ())
    code;
  List.iter (fun (h : int handler) -> mark h.target) c.cm_meth.handlers;
  let cover = ref 0 in
  for p = 0 to len - 1 do
    if p >= !cover || leaders.(p) then begin
      (match block_at p with
      | Some (op, k) ->
          fuse.(p) <- op;
          klen.(p) <- k;
          if p + k > !cover then cover := p + k
      | None -> ());
      if p >= !cover then cover := p + 1
    end
  done;
  c.cm_fuse <- fuse;
  c.cm_klen <- klen

(* ---- threads ----------------------------------------------------------- *)

(** Mirror an interpreter thread into the engine.  Locals copy into the
    encoded representation (the interpreter built them at spawn and
    never touches them again); the operand stack — empty for freshly
    spawned threads — converts from the top-first list to the bottom-up
    array. *)
and adopt (t : t) (ith : I.thread) : ethread =
  (* interpreter frame lists are top-first; the engine stack is
     bottom-at-0 *)
  let eframes =
    List.rev_map
      (fun (fr : I.frame) ->
        let cm = get_cmeth t fr.I.f_class fr.I.f_meth.mname in
        let n = List.length fr.I.ostack in
        let estack = Array.make (max cm.cm_stack_cap (n + 2)) 0 in
        List.iteri (fun i v -> estack.(n - 1 - i) <- encode v) fr.I.ostack;
        {
          ef_home = cm;
          ef_ops = cm.cm_ops;
          ef_fuse = cm.cm_fuse;
          ef_klen = cm.cm_klen;
          ef_pooled = false;
          epc = fr.I.pc;
          elocals = Array.map encode fr.I.locals;
          estack;
          esp = n;
        })
      ith.I.frames
    |> Array.of_list
  in
  let eth = { ith; eframes; efp = Array.length eframes } in
  Hashtbl.replace t.threads ith.I.tid eth;
  eth

let ethread_of (t : t) (ith : I.thread) : ethread =
  match t.last with
  | Some eth when eth.ith == ith -> eth
  | _ ->
      let eth =
        match Hashtbl.find_opt t.threads ith.I.tid with
        | Some eth -> eth
        | None -> adopt t ith
      in
      t.last <- Some eth;
      eth

(** Root enumeration in the interpreter's exact visit order; threads the
    engine has not adopted yet (chaos late spawns before their first
    slice) are adopted here, which preserves values and order. *)
let stack_roots (t : t) : (int * int list) list =
  List.map
    (fun (ith : I.thread) ->
      let eth = ethread_of t ith in
      let acc = ref [] in
      let add v =
        (* even and nonzero = encoded Ref *)
        if v land 1 = 0 && v <> 0 then acc := ((v asr 1) - 1) :: !acc
      in
      (* frames top first, as the interpreter visits them *)
      for fi = eth.efp - 1 downto 0 do
        let fr = eth.eframes.(fi) in
        Array.iter add fr.elocals;
        for i = fr.esp - 1 downto 0 do
          add fr.estack.(i)
        done
      done;
      (ith.I.tid, !acc))
    t.m.I.threads

(* ---- unwinding --------------------------------------------------------- *)

(** Mirror of [Interp.unwind] over engine frames: find a matching
    handler walking frames top-down (caller pcs rest at their call
    sites), clear the operand stack on entry; no handler kills the
    thread with the exception kind as its error.  Frames dropped on the
    way down are recycled. *)
let unwind (eth : ethread) (kind : exn_kind) : unit =
  let matches (h : int handler) =
    match h.kind, kind with
    | Any, _ -> true
    | Bounds, Bounds | Null_deref, Null_deref | Arith, Arith -> true
    | (Bounds | Null_deref | Arith), _ -> false
  in
  let rec go fp =
    if fp < 0 then begin
      eth.efp <- 0;
      eth.ith.I.finished <- true;
      eth.ith.I.error <- Some (string_of_exn_kind kind)
    end
    else begin
      let fr = eth.eframes.(fp) in
      let candidate =
        List.find_opt
          (fun h -> fr.epc >= h.from_pc && fr.epc < h.to_pc && matches h)
          fr.ef_home.cm_meth.handlers
      in
      match candidate with
      | Some h ->
          fr.esp <- 0;
          fr.epc <- h.target;
          eth.efp <- fp + 1
      | None ->
          release fr;
          go (fp - 1)
    end
  in
  go (eth.efp - 1)

(* ---- driving ----------------------------------------------------------- *)

let create (m : I.t) : t =
  let t =
    {
      m;
      methods = Hashtbl.create 64;
      threads = Hashtbl.create 8;
      statics = Hashtbl.create 64;
      last = None;
      slice_n = ref 0;
      fuse_start = -1;
      fuse_ep = -1;
    }
  in
  m.I.stack_roots_override <- Some (fun () -> stack_roots t);
  (* prewarm: adopting the already-spawned threads compiles their entry
     methods, and compilation links callees (and spawn targets) eagerly,
     so the whole reachable call graph is compiled before the first
     slice runs *)
  List.iter (fun th -> ignore (ethread_of t th)) m.I.threads;
  t

let compiled_methods (t : t) : int = Hashtbl.length t.methods
(* Outside a fused block, [slice_n] already includes the running
   instruction (single-steps pre-charge).  Inside one, the block's k
   instructions are charged only on completion, but the recording
   sub-ops publish their pc in [fuse_ep] first, so the consumed prefix
   — store included, the interpreter's charge-before-execute accounting
   — is recoverable exactly. *)
let inflight (t : t) : int =
  let base = !(t.slice_n) in
  if t.fuse_start >= 0 && t.fuse_ep >= t.fuse_start then
    base + (t.fuse_ep - t.fuse_start + 1)
  else base

(** Run up to [fuel] instructions.  Counters are batched: instead of the
    interpreter's per-instruction [instr_count]/[cost_units] updates and
    budget check, the slice pre-clamps its fuel against the remaining
    budget and flushes both counters once per slice (and before any
    propagating exception) — safepoints, telemetry and the budget
    diagnostic all see identical values.  The one mid-slice reader is
    the flight recorder's step source, which adds the in-flight count
    ({!inflight}): single-stepped instructions are charged to [slice_n]
    before they run (the interpreter's accounting); fused blocks are
    charged on completion, but their recording sub-ops (the ref stores)
    publish the block's consumed prefix first, so recorded steps match
    the interpreter's exactly everywhere.

    Fused opcodes run only while they fit in the remaining fuel; the
    tail of a slice single-steps, which keeps safepoint-time operand
    stacks identical to the interpreter's. *)
let slice (t : t) (ith : I.thread) ~(fuel : int) : int =
  let m = t.m in
  let eth = ethread_of t ith in
  let max_steps = m.I.cfg.I.max_steps in
  let budget_left = max_steps - m.I.instr_count in
  let efuel = if fuel <= budget_left then fuel else max 0 budget_left in
  let n = t.slice_n in
  n := 0;
  let executed = ref 0 in
  let flush () =
    m.I.instr_count <- m.I.instr_count + !n;
    m.I.cost_units <- m.I.cost_units + (!n * Barrier_cost.bytecode_units);
    executed := !executed + !n;
    n := 0
  in
  while !n < efuel && not ith.I.finished do
    if eth.efp = 0 then ith.I.finished <- true
    else begin
      let fr = eth.eframes.(eth.efp - 1) in
      let p = fr.epc in
      if p < 0 || p >= Array.length fr.ef_ops then begin
        incr n;
        flush ();
        bugf "pc out of range in %s.%s" fr.ef_home.cm_class
          fr.ef_home.cm_meth.mname
      end;
      let k = fr.ef_klen.(p) in
      if k > 1 && !n + k <= efuel then (
        t.fuse_start <- p;
        t.fuse_ep <- -1;
        try
          fr.ef_fuse.(p) eth fr;
          t.fuse_start <- -1;
          n := !n + k
        with
        | I.Jexn kind ->
            (* risky sub-instructions stamp [fr.epc], so the executed
               prefix (faulting instruction included) is recoverable *)
            t.fuse_start <- -1;
            n := !n + (fr.epc - p + 1);
            unwind eth kind
        | e ->
            t.fuse_start <- -1;
            n := !n + (fr.epc - p + 1);
            flush ();
            raise e)
      else (
        (* charged before executing, like the interpreter: an abort
           (e.g. a pacer hard stop) includes it, and anything the
           instruction records sees its own step *)
        incr n;
        try fr.ef_ops.(p) eth fr with
        | I.Jexn kind -> unwind eth kind
        | e ->
            flush ();
            raise e)
    end
  done;
  flush ();
  (* budget exhausted mid-slice: the interpreter raises when the next
     instruction is attempted, charging it first *)
  if
    !executed = efuel && efuel < fuel && (not ith.I.finished)
    && eth.efp > 0
  then begin
    m.I.instr_count <- m.I.instr_count + 1;
    m.I.cost_units <- m.I.cost_units + Barrier_cost.bytecode_units;
    bugf "instruction budget exceeded (%d)" max_steps
  end;
  !executed

