(** A multi-threaded bytecode interpreter with write-barrier
    instrumentation.

    Every reference store (putfield/putstatic of a reference field,
    aastore) is a {e barrier site}.  The interpreter counts, per site, how
    many times it executes and how often the overwritten value was null —
    the instrumentation behind the paper's Table 1, including the
    "potentially pre-null" upper bound (§4.2).  A {e policy} (normally the
    analysis verdicts) decides which sites' barriers were compiled out;
    executed barriers invoke the active collector's hook and are charged to
    the RISC cost model.

    Threads are deterministic green threads; the {!Runner} module
    interleaves them and the collector. *)

open Jir.Types

exception Runtime_bug of string

let bugf fmt = Fmt.kstr (fun s -> raise (Runtime_bug s)) fmt

(** A barrier site in the compiled (inlined) program. *)
type site = { s_class : class_name; s_method : method_name; s_pc : int }

(** What the retrace collector's compiler emits at a swap-elided store:
    nothing, or a tracing-state check that additionally opens (store 1 of
    the pair) or closes (store 2) a safepoint-free window.  The scheduler
    defers collector work while a window is open, so the collector never
    observes a half-completed swap (see {!Retrace_gc}). *)
type retrace_site = No_check | Check_open | Check_close

(** The runtime assumptions an elided verdict may depend on.  Each elided
    site carries its assumption set (its {e guards}); when an assumption
    is observed false at runtime the dependent sites are {e revoked} —
    atomically flipped back to full barriers at a safepoint, with snapshot
    repair through {!Gc_hooks.t.on_revoke}. *)
type assumption =
  | Single_mutator
  | Retrace_collector
  | Descending_scan
  | Mode_a
  | Closed_world

let string_of_assumption = function
  | Single_mutator -> "single-mutator"
  | Retrace_collector -> "retrace-collector"
  | Descending_scan -> "descending-scan"
  | Mode_a -> "mode-A"
  | Closed_world -> "closed-world"

type site_stats = {
  st_kind : store_kind;
  mutable st_elided : bool;  (** the policy removed this site's barrier *)
  mutable st_check : retrace_site;
      (** tracing-state check compiled in its place *)
  st_guards : assumption list;
      (** assumptions this site's elision depends on; revocation of any
          flips [st_elided] off *)
  mutable st_del_elided : bool;
      (** hybrid flavor: the deletion (Yuasa) half was compiled out *)
  mutable st_ins_elided : bool;
      (** hybrid flavor: the insertion (Dijkstra) half was compiled out *)
  st_ins_repair : bool;
      (** insertion-elided destinations join the repair set handed to the
          collector at remark (fresh-value proofs need the re-scan; a
          proven-null store does not) *)
  st_del_guards : assumption list;  (** guards of the deletion half alone *)
  st_ins_guards : assumption list;  (** guards of the insertion half alone *)
  mutable execs : int;
  mutable pre_null_execs : int;
  mutable paid_execs : int;
      (** executions that ran a full barrier (kept, revoked or degraded);
          under the hybrid flavor, executions where at least one half ran *)
  mutable elided_execs : int;
      (** executions that skipped the barrier (both halves, under hybrid) *)
  mutable del_paid_execs : int;  (** hybrid: deletion halves executed *)
  mutable del_elided_execs : int;  (** hybrid: deletion halves skipped *)
  mutable ins_paid_execs : int;  (** hybrid: insertion halves executed *)
  mutable ins_elided_execs : int;  (** hybrid: insertion halves skipped *)
  mutable barrier_units : int;
      (** modelled RISC units charged at this site (barriers + checks) *)
  mutable revocations : int;
      (** times this site (either half) was patched back *)
}

(** [policy cls meth pc = true] means the analysis proved the barrier at
    that site unnecessary. *)
type barrier_policy = class_name -> method_name -> int -> bool

(** Which elided sites carry a tracing-state check (swap-pair elisions
    under the retrace collector). *)
type retrace_policy = class_name -> method_name -> int -> retrace_site

(** The per-site guard table: which assumptions the site's verdict is
    conditional on (empty for unconditionally sound verdicts). *)
type guard_policy = class_name -> method_name -> int -> assumption list

let keep_all_policy : barrier_policy = fun _ _ _ -> false
let no_retrace_checks : retrace_policy = fun _ _ _ -> No_check

(* A single shared closure so [guards_active] can recognise "no guard
   table was wired" by physical equality. *)
let no_guards : guard_policy = fun _ _ _ -> []

(** Split verdict for one site under the hybrid barrier: each half elides
    (and revokes) independently. *)
type half_site = {
  hs_del_elide : bool;
  hs_ins_elide : bool;
  hs_ins_repair : bool;
      (** record insertion-elided destinations for the remark re-scan *)
  hs_del_guards : assumption list;
  hs_ins_guards : assumption list;
}

let keep_both : half_site =
  {
    hs_del_elide = false;
    hs_ins_elide = false;
    hs_ins_repair = false;
    hs_del_guards = [];
    hs_ins_guards = [];
  }

(** Per-site split verdicts, consulted only under the [`Hybrid] flavor. *)
type half_policy = class_name -> method_name -> int -> half_site

(* Shared sentinel, like [no_guards]. *)
let no_halves : half_policy = fun _ _ _ -> keep_both

(** Original justification of a site's elision (the analysis-side
    provenance), attached to revocation events so a revoked site can
    print why its barrier was removed in the first place. *)
type explain_policy = class_name -> method_name -> int -> string option

let no_explain : explain_policy = fun _ _ _ -> None

type config = {
  policy : barrier_policy;
  retrace : retrace_policy;
  guards : guard_policy;
  explain : explain_policy;
  revoke : bool;
      (** honour guard failures by revoking dependent elisions; [false]
          (--no-revoke) runs open-loop so the oracle can demonstrate the
          failure the guards would have caught *)
  satb_mode : Barrier_cost.satb_mode;
  barrier_flavor : [ `Satb | `Card | `Hybrid ];
      (** which barrier body executes at non-elided sites: SATB pre-value
          logging, incremental-update card marking, or the fused
          deletion+insertion hybrid pair *)
  halves : half_policy;
      (** split verdicts for the hybrid flavor; [no_halves] keeps both
          halves everywhere *)
  max_steps : int;
}

let default_config =
  {
    policy = keep_all_policy;
    retrace = no_retrace_checks;
    guards = no_guards;
    explain = no_explain;
    revoke = true;
    satb_mode = Barrier_cost.Conditional;
    barrier_flavor = `Satb;
    halves = no_halves;
    max_steps = 50_000_000;
  }

type frame = {
  f_class : class_name;
  f_meth : meth;
  mutable pc : int;
  locals : Value.t array;
  mutable ostack : Value.t list;
}

type thread = {
  tid : int;
  mutable frames : frame list;  (** top first *)
  mutable finished : bool;
  mutable error : string option;
}

type t = {
  prog : Jir.Program.t;
  heap : Heap.t;
  statics : (class_name * field_name, Value.t) Hashtbl.t;
  mutable threads : thread list;  (** in spawn order *)
  mutable next_tid : int;
  stats : (site, site_stats) Hashtbl.t;
  cfg : config;
  mutable gc : Gc_hooks.t;
  mutable pacer : Pacer.t option;
      (** pacing controller; admission-controls every allocation and
          drives degraded-mode allocation assists *)
  mutable assist_execs : int;
      (** collector increments run on allocating threads' behalf while
          the pacer was degraded *)
  mutable instr_count : int;
  mutable cost_units : int;  (** bytecode + barrier RISC units *)
  mutable barrier_units : int;
  mutable barriers_executed : int;
  mutable elided_barrier_execs : int;
  mutable retrace_checks : int;  (** executed tracing-state checks *)
  mutable in_no_safepoint : bool;
      (** a swap window is open: collector work must be deferred *)
  mutable revoked : assumption list;  (** assumptions observed false *)
  mutable pending_revocations : assumption list;
      (** guard failures noticed mid-quantum, applied at the next
          safepoint (or synchronously at a [Spawn]) *)
  mutable revocation_events : int;  (** assumptions revoked so far *)
  mutable revoked_sites : int;  (** sites flipped back to full barriers *)
  mutable guarded_writes : int list;
      (** objects written through guarded elided sites this marking
          cycle — the repair set handed to [on_revoke] *)
  mutable swap_degraded : bool;
      (** retrace budget overflowed: swap-elided sites execute full
          barriers for the remainder of the cycle *)
  mutable degradations : int;  (** cycles that entered degraded mode *)
  mutable degraded_swap_execs : int;
      (** stores at swap-elided sites that fell back to full barriers *)
  mutable external_paid_execs : int;
      (** chaos-injected external stores that ran a full barrier; no site
          of their own, attributed to the profiler's "external" row *)
  mutable external_elided_execs : int;
      (** chaos-injected external stores through live guarded elisions *)
  field_index : (field_ref, int) Hashtbl.t;
  alloc_sites : (site, int) Hashtbl.t;
      (** interned {!Sitemap} ids of allocation sites, cached per program
          point so the allocation fast path does no string formatting *)
  mutable track_heap : bool;
      (** heap observatory armed: elided stores during marking append to
          [elided_write_log] (one flag test when off) *)
  mutable elided_write_log : (int * int) list;
      (** [(obj, verdict_class)] for stores whose barrier (or a half of
          it) was elided while marking — lets the float accounting split
          per-verdict; verdict classes are the [ew_*] constants *)
  mutable barrier_epoch : int;
      (** bumped whenever per-site verdicts may change (revocation
          applied, degraded mode entered, cycle state reset); the
          threaded engine stamps each compiled store site with the epoch
          it specialized against and respecializes on mismatch — per-site
          invalidation with no global flush *)
  mutable stack_roots_override : (unit -> (int * int list) list) option;
      (** installed by the threaded engine ({!Exec}), which owns the live
          thread stacks; {!thread_roots} and {!roots} consult it so the
          collectors see the same root set in the same enumeration order
          under either engine *)
}

exception Jexn of exn_kind

let jthrow kind = raise (Jexn kind)

let create ?(cfg = default_config) (prog : Jir.Program.t) : t =
  let statics = Hashtbl.create 64 in
  List.iter
    (fun (c : cls) ->
      List.iter
        (fun fd ->
          Hashtbl.replace statics (c.cname, fd.fd_name)
            (match fd.fd_ty with I -> Value.Int 0 | R -> Value.Null))
        c.statics)
    (Jir.Program.classes prog);
  {
    prog;
    heap = Heap.create ();
    statics;
    threads = [];
    next_tid = 0;
    stats = Hashtbl.create 256;
    cfg;
    gc = Gc_hooks.none;
    pacer = None;
    assist_execs = 0;
    instr_count = 0;
    cost_units = 0;
    barrier_units = 0;
    barriers_executed = 0;
    elided_barrier_execs = 0;
    retrace_checks = 0;
    in_no_safepoint = false;
    revoked = [];
    pending_revocations = [];
    revocation_events = 0;
    revoked_sites = 0;
    guarded_writes = [];
    swap_degraded = false;
    degradations = 0;
    degraded_swap_execs = 0;
    external_paid_execs = 0;
    external_elided_execs = 0;
    field_index = Hashtbl.create 64;
    alloc_sites = Hashtbl.create 64;
    track_heap = false;
    elided_write_log = [];
    barrier_epoch = 0;
    stack_roots_override = None;
  }

let set_collector m gc = m.gc <- gc
let set_pacer m p = m.pacer <- Some p

(* ---- telemetry -------------------------------------------------------- *)

(* Mirrors of the legacy mutable counters above, bumped at exactly the
   same program points so a metrics snapshot reconciles with
   [Interp] statistics to the unit (the invariant the telemetry test
   suite fuzzes).  Module-level handles: a counter bump on the barrier
   hot path is one int-ref increment. *)
let c_barriers = Telemetry.counter "jrt.barriers_executed"
let c_elided = Telemetry.counter "jrt.elided_barrier_execs"
let c_retrace_checks = Telemetry.counter "jrt.retrace_checks"
let c_revocation_events = Telemetry.counter "jrt.revocation_events"
let c_revoked_sites = Telemetry.counter "jrt.revoked_sites"
let c_degradations = Telemetry.counter "jrt.degradations"
let c_degraded_swap = Telemetry.counter "jrt.degraded_swap_execs"
let c_assist_execs = Telemetry.counter "jrt.assist_execs"

let site_id (site : site) : string =
  Printf.sprintf "%s.%s@%d" site.s_class site.s_method site.s_pc

(* ---- heap observatory hooks ------------------------------------------- *)

(* Verdict classes of an elided-write-log entry: which (half of the)
   barrier the store skipped.  Plain ints so the fused fast paths cons a
   two-int tuple and nothing else. *)
let ew_full = 0 (* whole barrier elided ([`Satb]/[`Card] flavors) *)
let ew_del = 1 (* hybrid: deletion half elided, insertion ran *)
let ew_ins = 2 (* hybrid: insertion half elided, deletion ran *)
let ew_both = 3 (* hybrid: both halves elided *)

(* One flag test on the elided fast path when the observatory is off;
   recording is gated on marking because only stores inside a cycle can
   change what that cycle floats. *)
let note_elided_write (m : t) ~(obj : int) (cls : int) : unit =
  if m.track_heap && obj >= 0 && m.gc.is_marking () then
    m.elided_write_log <- (obj, cls) :: m.elided_write_log

(** [revoke.site] event: the runtime patched one elided site back to a
    full barrier; carries the site id, its guard set, and — when the
    driver wired an explain policy — the original justification. *)
let emit_revoked_site (m : t) (site : site) (st : site_stats)
    ~(materialized : bool) : unit =
  if Telemetry.armed () then
    Telemetry.emit "revoke.site"
      ([
         ("site", Telemetry.Str (site_id site));
         ( "guards",
           Telemetry.List
             (List.map
                (fun a -> Telemetry.Str (string_of_assumption a))
                st.st_guards) );
         ("materialized", Telemetry.Bool materialized);
       ]
      @
      match m.cfg.explain site.s_class site.s_method site.s_pc with
      | Some j -> [ ("justification", Telemetry.Str j) ]
      | None -> [])

(* ---- guards and revocation -------------------------------------------- *)

(** Flight-recorder twin of {!emit_revoked_site}: site, the guard that
    actually fired (provenance), and which hybrid half flipped.  Interning
    only happens here, on the cold revocation path. *)
let flight_revoked_site (site : site) ~(guards : assumption list)
    ~(failed : assumption list) ~(half : int) : unit =
  if Flight.enabled () then
    let prov =
      match List.find_opt (fun a -> List.mem a failed) guards with
      | Some a -> string_of_assumption a
      | None -> "?"
    in
    Flight.record Flight.Revoke_site
      ~a:(Flight.intern (site_id site))
      ~b:(Flight.intern prov) ~c:half

(** Was a guard table wired at all?  Default configs share the
    [no_guards] / [no_halves] closures, so physical inequality is the
    test (the hybrid flavor carries its guards inside the half policy). *)
let guards_active (m : t) : bool =
  m.cfg.guards != no_guards || m.cfg.halves != no_halves

(** Note an assumption observed false.  The revocation itself happens at
    the next safepoint ({!apply_revocations}); deduplicated, and inert
    unless guards are wired and revocation is enabled. *)
let request_revoke (m : t) (a : assumption) : unit =
  if
    guards_active m && m.cfg.revoke
    && (not (List.mem a m.revoked))
    && not (List.mem a m.pending_revocations)
  then begin
    m.pending_revocations <- a :: m.pending_revocations;
    Flight.record Flight.Revoke_request
      ~a:(Flight.intern (string_of_assumption a))
      ~b:0 ~c:0;
    Telemetry.emit "revoke.request"
      [ ("assumption", Telemetry.Str (string_of_assumption a)) ]
  end

let revocation_pending (m : t) : bool = m.pending_revocations <> []

(** Atomically flip every site depending on a failed assumption back to a
    full barrier, then hand the cycle's guarded-write set to the
    collector for snapshot repair.  Must run at a safepoint: the runner
    calls it between quanta (never inside a swap window), and [Spawn]
    calls it synchronously before the new thread can run. *)
let apply_revocations (m : t) : unit =
  if m.pending_revocations <> [] then begin
    (* compiled code specialized against the old verdicts is stale *)
    m.barrier_epoch <- m.barrier_epoch + 1;
    let failed = m.pending_revocations in
    m.pending_revocations <- [];
    m.revoked <- failed @ m.revoked;
    m.revocation_events <- m.revocation_events + List.length failed;
    Telemetry.incr c_revocation_events ~by:(List.length failed);
    Flight.record Flight.Revoke_apply ~a:(List.length failed)
      ~b:(List.length m.guarded_writes) ~c:0;
    Telemetry.emit "revoke.apply"
      [
        ( "assumptions",
          Telemetry.List
            (List.map
               (fun a -> Telemetry.Str (string_of_assumption a))
               failed) );
        ("repair_set", Telemetry.Int (List.length m.guarded_writes));
      ];
    let hit guards = List.exists (fun a -> List.mem a failed) guards in
    Hashtbl.iter
      (fun site st ->
        match m.cfg.barrier_flavor with
        | `Hybrid ->
            (* each half revokes against its own guard set; a site counts
               as one revocation even if both halves flip together *)
            let del_flip = st.st_del_elided && hit st.st_del_guards in
            let ins_flip = st.st_ins_elided && hit st.st_ins_guards in
            if del_flip then st.st_del_elided <- false;
            if ins_flip then st.st_ins_elided <- false;
            if del_flip || ins_flip then begin
              st.st_elided <- st.st_del_elided && st.st_ins_elided;
              st.st_check <- No_check;
              st.revocations <- st.revocations + 1;
              m.revoked_sites <- m.revoked_sites + 1;
              Telemetry.incr c_revoked_sites;
              flight_revoked_site site
                ~guards:
                  ((if del_flip then st.st_del_guards else [])
                  @ if ins_flip then st.st_ins_guards else [])
                ~failed
                ~half:
                  (if del_flip && ins_flip then 0
                   else if del_flip then 1
                   else 2);
              emit_revoked_site m site st ~materialized:false
            end
        | `Satb | `Card ->
            if st.st_elided && hit st.st_guards then begin
              st.st_elided <- false;
              st.st_del_elided <- false;
              st.st_check <- No_check;
              st.revocations <- st.revocations + 1;
              m.revoked_sites <- m.revoked_sites + 1;
              Telemetry.incr c_revoked_sites;
              flight_revoked_site site ~guards:st.st_guards ~failed ~half:0;
              emit_revoked_site m site st ~materialized:false
            end)
      m.stats;
    (* Repair: every object written through a guarded elided site this
       cycle may have had a pre-value go unlogged; the collector re-scans
       them (retrace) or restarts from a fresh snapshot (plain SATB). *)
    if m.gc.is_marking () then m.gc.on_revoke ~objs:m.guarded_writes;
    m.guarded_writes <- []
  end

(** A chaos-injected second mutator was observed (late-spawn fault): the
    single-mutator assumption is false from here on. *)
let note_second_mutator (m : t) : unit = request_revoke m Single_mutator

(** A chaos-injected class load was observed: the closed-world assumption
    behind the callee summaries is false from here on, so every
    summary-dependent elision must revoke. *)
let note_class_load (m : t) : unit = request_revoke m Closed_world

(** Marking-cycle lifecycle (called by the runner at cycle start/end):
    the guarded-write repair set and the degradation flag are per-cycle. *)
let reset_cycle_state (m : t) : unit =
  m.guarded_writes <- [];
  m.elided_write_log <- [];
  (* leaving degraded mode changes what swap-elided sites execute *)
  if m.swap_degraded then m.barrier_epoch <- m.barrier_epoch + 1;
  m.swap_degraded <- false

(** Enter degraded mode: the retrace budget overflowed, so swap-elided
    sites execute full logging barriers for the rest of the cycle.
    Applied at safepoints only, so it never lands inside a swap window. *)
let set_swap_degraded (m : t) : unit =
  if not m.swap_degraded then begin
    m.barrier_epoch <- m.barrier_epoch + 1;
    m.swap_degraded <- true;
    m.degradations <- m.degradations + 1;
    Telemetry.incr c_degradations;
    Flight.record Flight.Swap_degraded
      ~a:(Flight.intern "retrace-budget-overflow")
      ~b:0 ~c:0;
    Telemetry.emit "runtime.degraded"
      [ ("reason", Telemetry.Str "retrace-budget-overflow") ]
  end

let field_index m fr =
  match Hashtbl.find_opt m.field_index fr with
  | Some i -> i
  | None ->
      let i = Jir.Program.field_index m.prog fr in
      Hashtbl.replace m.field_index fr i;
      i

(** Interned {!Sitemap} id of the allocation site at [fr]'s current pc.
    Cached like {!field_index}: the string is formatted once per program
    point, after which the fast path is one hash lookup. *)
let alloc_site (m : t) (fr : frame) : int =
  let key =
    { s_class = fr.f_class; s_method = fr.f_meth.mname; s_pc = fr.pc }
  in
  match Hashtbl.find_opt m.alloc_sites key with
  | Some id -> id
  | None ->
      let id = Sitemap.intern (site_id key) in
      Hashtbl.replace m.alloc_sites key id;
      id

(** Spawn a thread running [mr] with [args] already evaluated. *)
let spawn_thread (m : t) (mr : method_ref) (args : Value.t list) : thread =
  let meth = Jir.Program.get_method m.prog mr in
  let locals = Array.make meth.max_locals Value.Null in
  List.iteri (fun i v -> locals.(i) <- v) args;
  let th =
    {
      tid = m.next_tid;
      frames =
        [ { f_class = mr.mclass; f_meth = meth; pc = 0; locals; ostack = [] } ];
      finished = false;
      error = None;
    }
  in
  m.next_tid <- m.next_tid + 1;
  (* A second mutator falsifies the single-mutator assumption.  Revoke
     synchronously — [Spawn] is never inside a swap window (the analysis
     only whitelists simple non-throwing instructions there), and the new
     thread may otherwise run up to a full quantum before the next
     safepoint would apply the patch. *)
  if m.threads <> [] then begin
    request_revoke m Single_mutator;
    apply_revocations m
  end;
  m.threads <- m.threads @ [ th ];
  th

(* ---- GC root enumeration ---------------------------------------------- *)

(** Static roots alone — the part of the root set the hybrid collector
    marks at cycle start (stacks are scanned lazily). *)
let static_roots (m : t) : int list =
  let acc = ref [] in
  Hashtbl.iter
    (fun _ v -> match v with Value.Ref id -> acc := id :: !acc | _ -> ())
    m.statics;
  !acc

(** One interpreter thread's stack roots: frames top first, locals in
    index order, then the operand stack top first, prepend-accumulated.
    Marking progress depends on root order, so the threaded engine's
    override must reproduce exactly this enumeration. *)
let interp_stack_roots (th : thread) : int list =
  let acc = ref [] in
  let add = function Value.Ref id -> acc := id :: !acc | Value.Null | Value.Int _ -> () in
  List.iter
    (fun fr ->
      Array.iter add fr.locals;
      List.iter add fr.ostack)
    th.frames;
  !acc

(** Per-thread stack roots: [(tid, refs held in that thread's frames)],
    including finished threads' (empty) frames so the collector sees every
    tid it may have been asked about.  When the threaded engine owns the
    live stacks it installs {!t.stack_roots_override}. *)
let thread_roots (m : t) : (int * int list) list =
  match m.stack_roots_override with
  | Some f -> f ()
  | None -> List.map (fun th -> (th.tid, interp_stack_roots th)) m.threads

(** All reference values currently held in thread stacks and statics —
    list-identical to the historical single-pass enumeration (statics
    first, threads in spawn order, each segment prepend-reversed). *)
let roots (m : t) : int list =
  List.fold_left (fun acc (_, l) -> l @ acc) (static_roots m) (thread_roots m)

(* ---- barrier instrumentation ------------------------------------------ *)

let site_stats (m : t) (site : site) (kind : store_kind) : site_stats =
  match Hashtbl.find_opt m.stats site with
  | Some st -> st
  | None ->
      let alive guards = not (List.exists (fun a -> List.mem a m.revoked) guards) in
      let st =
        match m.cfg.barrier_flavor with
        | `Hybrid ->
            (* split verdicts: each half materializes (and may materialize
               already-patched) against its own guard set *)
            let hs = m.cfg.halves site.s_class site.s_method site.s_pc in
            let del_alive = alive hs.hs_del_guards in
            let ins_alive = alive hs.hs_ins_guards in
            let del_elided = hs.hs_del_elide && del_alive in
            let ins_elided = hs.hs_ins_elide && ins_alive in
            let born_revoked =
              (hs.hs_del_elide && not del_alive)
              || (hs.hs_ins_elide && not ins_alive)
            in
            {
              st_kind = kind;
              st_elided = del_elided && ins_elided;
              st_check = No_check;
              st_guards =
                List.sort_uniq compare (hs.hs_del_guards @ hs.hs_ins_guards);
              st_del_elided = del_elided;
              st_ins_elided = ins_elided;
              st_ins_repair = hs.hs_ins_repair;
              st_del_guards = hs.hs_del_guards;
              st_ins_guards = hs.hs_ins_guards;
              execs = 0;
              pre_null_execs = 0;
              paid_execs = 0;
              elided_execs = 0;
              del_paid_execs = 0;
              del_elided_execs = 0;
              ins_paid_execs = 0;
              ins_elided_execs = 0;
              barrier_units = 0;
              revocations = (if born_revoked then 1 else 0);
            }
        | `Satb | `Card ->
            let guards = m.cfg.guards site.s_class site.s_method site.s_pc in
            (* a site first reached after one of its assumptions was
               revoked materializes already patched *)
            let alive = alive guards in
            let would_elide = m.cfg.policy site.s_class site.s_method site.s_pc in
            let elided = alive && would_elide in
            {
              st_kind = kind;
              st_elided = elided;
              st_check =
                (if elided then
                   m.cfg.retrace site.s_class site.s_method site.s_pc
                 else No_check);
              st_guards = guards;
              st_del_elided = elided;
              st_ins_elided = false;
              st_ins_repair = false;
              st_del_guards = guards;
              st_ins_guards = [];
              execs = 0;
              pre_null_execs = 0;
              paid_execs = 0;
              elided_execs = 0;
              del_paid_execs = 0;
              del_elided_execs = 0;
              ins_paid_execs = 0;
              ins_elided_execs = 0;
              barrier_units = 0;
              revocations = (if would_elide && not alive then 1 else 0);
            }
      in
      if st.revocations > 0 then begin
        m.revoked_sites <- m.revoked_sites + 1;
        Telemetry.incr c_revoked_sites;
        flight_revoked_site site ~guards:st.st_guards ~failed:m.revoked
          ~half:0
      end;
      Hashtbl.replace m.stats site st;
      if st.revocations > 0 then emit_revoked_site m site st ~materialized:true;
      st

(** Execute the fused hybrid barrier: deletion and insertion halves run
    (or are skipped) independently.  The site-level [paid_execs] /
    [elided_execs] invariant is preserved — a store counts as elided iff
    {e both} halves were skipped — so the profiler's reconciliation and
    every legacy counter stay exact. *)
let hybrid_store_barrier (m : t) (st : site_stats) ~(tid : int) ~(obj : int)
    ~(pre : Value.t) ~(nv : Value.t) ~(pre_null : bool) : unit =
  let marking = m.gc.is_marking () in
  let charge cost =
    m.barrier_units <- m.barrier_units + cost;
    m.cost_units <- m.cost_units + cost;
    st.barrier_units <- st.barrier_units + cost
  in
  let compiled_out = m.cfg.satb_mode = Barrier_cost.No_barrier in
  (* deletion half (Yuasa): shade the overwritten value *)
  if st.st_del_elided then st.del_elided_execs <- st.del_elided_execs + 1
  else begin
    st.del_paid_execs <- st.del_paid_execs + 1;
    if not compiled_out then begin
      charge (Barrier_cost.hybrid_del_cost ~marking ~pre_null);
      m.gc.log_ref_store ~obj ~pre
    end
  end;
  (* insertion half (Dijkstra): shade the stored value while the storing
     thread's stack is grey; the collector owns the scan-state test *)
  if st.st_ins_elided then st.ins_elided_execs <- st.ins_elided_execs + 1
  else begin
    st.ins_paid_execs <- st.ins_paid_execs + 1;
    if not compiled_out then begin
      charge (Barrier_cost.hybrid_ins_cost ~marking ~stack_grey:true);
      m.gc.log_ins_store ~tid ~nv
    end
  end;
  (* repair set: a guarded deletion elision may have let a pre-value go
     unlogged; an insertion elision under a freshness proof needs its
     destination re-scanned at remark regardless of guards *)
  if
    marking && obj >= 0
    && ((st.st_del_elided && st.st_del_guards <> [])
       || (st.st_ins_elided && (st.st_ins_repair || st.st_ins_guards <> [])))
  then m.guarded_writes <- obj :: m.guarded_writes;
  if m.track_heap then
    if st.st_del_elided && st.st_ins_elided then
      note_elided_write m ~obj ew_both
    else if st.st_del_elided then note_elided_write m ~obj ew_del
    else if st.st_ins_elided then note_elided_write m ~obj ew_ins;
  if st.st_del_elided && st.st_ins_elided then begin
    m.elided_barrier_execs <- m.elided_barrier_execs + 1;
    st.elided_execs <- st.elided_execs + 1;
    Telemetry.incr c_elided
  end
  else begin
    m.barriers_executed <- m.barriers_executed + 1;
    st.paid_execs <- st.paid_execs + 1;
    Telemetry.incr c_barriers
  end

(** Execute the write-barrier protocol for a reference store whose
    {!site_stats} record is already in hand — the general (slow-path)
    body both engines share: the interpreter reaches it through
    {!ref_store_barrier}, the threaded engine calls it directly from
    compiled store opcodes whose cached verdict does not qualify for one
    of the fused fast paths below.  [obj = -1] for static stores; [nv] is
    the value being stored and [tid] the storing thread (both consumed by
    the hybrid flavor only). *)
let ref_store_barrier_st (m : t) (st : site_stats) ~(tid : int) ~(obj : int)
    ~(pre : Value.t) ~(nv : Value.t) : unit =
  st.execs <- st.execs + 1;
  let pre_null = not (Value.is_ref pre) in
  if pre_null then st.pre_null_execs <- st.pre_null_execs + 1;
  if m.cfg.barrier_flavor = `Hybrid then
    hybrid_store_barrier m st ~tid ~obj ~pre ~nv ~pre_null
  else if st.st_elided && not (m.swap_degraded && st.st_check <> No_check) then begin
    m.elided_barrier_execs <- m.elided_barrier_execs + 1;
    st.elided_execs <- st.elided_execs + 1;
    Telemetry.incr c_elided;
    if m.track_heap then note_elided_write m ~obj ew_full;
    (* a write through a guarded site during marking joins the repair
       set: if its guards later fail this cycle, the collector re-scans
       (or re-snapshots) to make up for whatever went unlogged here *)
    if st.st_guards <> [] && obj >= 0 && m.gc.is_marking () then
      m.guarded_writes <- obj :: m.guarded_writes;
    match st.st_check with
    | No_check -> ()
    | (Check_open | Check_close) as check ->
        m.retrace_checks <- m.retrace_checks + 1;
        Telemetry.incr c_retrace_checks;
        let cost = Barrier_cost.tracing_check_units in
        m.barrier_units <- m.barrier_units + cost;
        m.cost_units <- m.cost_units + cost;
        st.barrier_units <- st.barrier_units + cost;
        m.gc.on_unlogged_store ~obj;
        m.in_no_safepoint <- check = Check_open
  end
  else begin
    (* degraded swap sites fall back to the full logging barrier for the
       rest of the cycle (retrace-budget overflow); a close store must
       still dismiss any window its open store created before
       degradation — it cannot have, since degradation is only applied
       at safepoints, but clear defensively *)
    if st.st_elided then begin
      m.degraded_swap_execs <- m.degraded_swap_execs + 1;
      Telemetry.incr c_degraded_swap;
      if st.st_check = Check_close then m.in_no_safepoint <- false
    end;
    m.barriers_executed <- m.barriers_executed + 1;
    st.paid_execs <- st.paid_execs + 1;
    Telemetry.incr c_barriers;
    let cost =
      match m.cfg.barrier_flavor with
      | `Satb ->
          Barrier_cost.satb_cost ~mode:m.cfg.satb_mode
            ~marking:(m.gc.is_marking ()) ~pre_null
      | `Card -> Barrier_cost.card_mark_cost
      | `Hybrid -> assert false (* handled by [hybrid_store_barrier] *)
    in
    m.barrier_units <- m.barrier_units + cost;
    m.cost_units <- m.cost_units + cost;
    st.barrier_units <- st.barrier_units + cost;
    let active =
      match m.cfg.satb_mode, m.cfg.barrier_flavor with
      | Barrier_cost.No_barrier, _ -> false
      | _, (`Card | `Hybrid) -> true
      | (Barrier_cost.Conditional | Barrier_cost.Always_log), `Satb -> true
    in
    if active then m.gc.log_ref_store ~obj ~pre
  end

(** Site-lookup wrapper used by the tree-walking interpreter: build the
    site key from the current frame, materialize (or find) its stats,
    run the shared barrier body. *)
let ref_store_barrier (m : t) (fr : frame) ~(kind : store_kind) ~(tid : int)
    ~(obj : int) ~(pre : Value.t) ~(nv : Value.t) : unit =
  let site = { s_class = fr.f_class; s_method = fr.f_meth.mname; s_pc = fr.pc } in
  let st = site_stats m site kind in
  ref_store_barrier_st m st ~tid ~obj ~pre ~nv

(* ---- fused fast-path barrier bodies (threaded engine) ------------------ *)

(* The threaded engine ({!Exec}) specializes every compiled store site to
   one of these fused bodies when it (re)materializes the site's verdict.
   Preconditions are established at specialization time and revalidated
   through {!t.barrier_epoch} stamps — never re-checked on the store fast
   path.  Each body is a line-for-line restriction of
   [ref_store_barrier_st] under its precondition, so both engines bump
   exactly the same counters. *)

(** Precondition: [`Satb]/[`Card] flavor, [st_elided], [No_check],
    [st_guards = []]. *)
let barrier_elided_plain (m : t) (st : site_stats) ~(obj : int)
    ~(pre : Value.t) : unit =
  st.execs <- st.execs + 1;
  if not (Value.is_ref pre) then st.pre_null_execs <- st.pre_null_execs + 1;
  m.elided_barrier_execs <- m.elided_barrier_execs + 1;
  st.elided_execs <- st.elided_execs + 1;
  Telemetry.incr c_elided;
  if m.track_heap then note_elided_write m ~obj ew_full

(** Precondition: as {!barrier_elided_plain} but [st_guards <> []]. *)
let barrier_elided_guarded (m : t) (st : site_stats) ~(obj : int)
    ~(pre : Value.t) : unit =
  st.execs <- st.execs + 1;
  if not (Value.is_ref pre) then st.pre_null_execs <- st.pre_null_execs + 1;
  m.elided_barrier_execs <- m.elided_barrier_execs + 1;
  st.elided_execs <- st.elided_execs + 1;
  Telemetry.incr c_elided;
  if m.track_heap then note_elided_write m ~obj ew_full;
  if obj >= 0 && m.gc.is_marking () then
    m.guarded_writes <- obj :: m.guarded_writes

(** Precondition: [`Hybrid] flavor, both halves elided, neither half
    guarded, not [st_ins_repair]. *)
let barrier_hybrid_both_elided (m : t) (st : site_stats) ~(obj : int)
    ~(pre : Value.t) : unit =
  st.execs <- st.execs + 1;
  if not (Value.is_ref pre) then st.pre_null_execs <- st.pre_null_execs + 1;
  st.del_elided_execs <- st.del_elided_execs + 1;
  st.ins_elided_execs <- st.ins_elided_execs + 1;
  m.elided_barrier_execs <- m.elided_barrier_execs + 1;
  st.elided_execs <- st.elided_execs + 1;
  Telemetry.incr c_elided;
  if m.track_heap then note_elided_write m ~obj ew_both

(** Precondition: [`Hybrid] flavor, deletion half elided with no guards,
    insertion half kept. *)
let barrier_hybrid_del_elided (m : t) (st : site_stats) ~(tid : int)
    ~(obj : int) ~(pre : Value.t) ~(nv : Value.t) : unit =
  st.execs <- st.execs + 1;
  if not (Value.is_ref pre) then st.pre_null_execs <- st.pre_null_execs + 1;
  st.del_elided_execs <- st.del_elided_execs + 1;
  st.ins_paid_execs <- st.ins_paid_execs + 1;
  if m.track_heap then note_elided_write m ~obj ew_del;
  if m.cfg.satb_mode <> Barrier_cost.No_barrier then begin
    let cost =
      Barrier_cost.hybrid_ins_cost ~marking:(m.gc.is_marking ())
        ~stack_grey:true
    in
    m.barrier_units <- m.barrier_units + cost;
    m.cost_units <- m.cost_units + cost;
    st.barrier_units <- st.barrier_units + cost;
    m.gc.log_ins_store ~tid ~nv
  end;
  m.barriers_executed <- m.barriers_executed + 1;
  st.paid_execs <- st.paid_execs + 1;
  Telemetry.incr c_barriers

(** Precondition: [`Hybrid] flavor, insertion half elided with no guards
    and not [st_ins_repair], deletion half kept. *)
let barrier_hybrid_ins_elided (m : t) (st : site_stats) ~(obj : int)
    ~(pre : Value.t) : unit =
  st.execs <- st.execs + 1;
  let pre_null = not (Value.is_ref pre) in
  if pre_null then st.pre_null_execs <- st.pre_null_execs + 1;
  st.del_paid_execs <- st.del_paid_execs + 1;
  if m.track_heap then note_elided_write m ~obj ew_ins;
  if m.cfg.satb_mode <> Barrier_cost.No_barrier then begin
    let cost =
      Barrier_cost.hybrid_del_cost ~marking:(m.gc.is_marking ()) ~pre_null
    in
    m.barrier_units <- m.barrier_units + cost;
    m.cost_units <- m.cost_units + cost;
    st.barrier_units <- st.barrier_units + cost;
    m.gc.log_ref_store ~obj ~pre
  end;
  st.ins_elided_execs <- st.ins_elided_execs + 1;
  m.barriers_executed <- m.barriers_executed + 1;
  st.paid_execs <- st.paid_execs + 1;
  Telemetry.incr c_barriers

(* ---- external (chaos-injected) mutator stores ------------------------- *)

(** Does any materialized site still elide its barrier on the strength of
    assumption [a]?  Used by {!external_guarded_store} to decide whether
    a chaos-injected second mutator would be executing guarded elided
    code at all. *)
let has_live_guarded_elisions (m : t) (a : assumption) : bool =
  Hashtbl.fold
    (fun _ st acc ->
      acc
      || (st.st_del_elided && List.mem a st.st_del_guards)
      || (st.st_ins_elided && List.mem a st.st_ins_guards))
    m.stats false

let external_slot_store (m : t) ~(obj : int) ~(idx : int) ~(v : Value.t)
    ~(log : pre:Value.t -> unit) : unit =
  if obj >= 0 && obj < m.heap.Heap.next_id then begin
    let o = Heap.get m.heap obj in
    if not o.Heap.dead then
      let store slots i =
        log ~pre:slots.(i);
        slots.(i) <- v
      in
      match o.Heap.payload with
      | Heap.Ref_array es ->
          if idx >= 0 && idx < Array.length es then store es idx
      | Heap.Fields fs -> if idx >= 0 && idx < Array.length fs then store fs idx
      | Heap.Int_array _ -> ()
  end

(** A store performed by a chaos-injected second mutator through a
    [Single_mutator]-guarded elided site: it takes the unlogged (elided)
    path only while such sites are still live and the assumption stands
    unrevoked — after a revocation the patched code executes the full
    barrier, which is exactly the property the E11 experiment checks. *)
let external_guarded_store (m : t) ~(obj : int) ~(idx : int) ~(v : Value.t) :
    unit =
  let elided =
    (not (List.mem Single_mutator m.revoked))
    && has_live_guarded_elisions m Single_mutator
  in
  external_slot_store m ~obj ~idx ~v ~log:(fun ~pre ->
      if elided then begin
        m.elided_barrier_execs <- m.elided_barrier_execs + 1;
        m.external_elided_execs <- m.external_elided_execs + 1;
        Telemetry.incr c_elided;
        if m.gc.is_marking () then m.guarded_writes <- obj :: m.guarded_writes
      end
      else begin
        m.barriers_executed <- m.barriers_executed + 1;
        m.external_paid_execs <- m.external_paid_execs + 1;
        Telemetry.incr c_barriers;
        m.gc.log_ref_store ~obj ~pre;
        (* tid -1: an external mutator has no scanned stack, so a hybrid
           collector treats it as permanently grey and shades [v] *)
        m.gc.log_ins_store ~tid:(-1) ~nv:v
      end)

(** A store with {e no} barrier at all — the deliberate barrier-skip
    fault.  Nothing is logged and nothing can repair it; the oracle must
    report the resulting snapshot violation (checker-of-the-checker). *)
let external_unbarriered_store (m : t) ~(obj : int) ~(idx : int)
    ~(v : Value.t) : unit =
  external_slot_store m ~obj ~idx ~v ~log:(fun ~pre:_ -> ())

(* ---- interpretation --------------------------------------------------- *)

let pop fr =
  match fr.ostack with
  | v :: rest ->
      fr.ostack <- rest;
      v
  | [] -> bugf "operand stack underflow at %s.%s@%d" fr.f_class fr.f_meth.mname fr.pc

let push fr v = fr.ostack <- v :: fr.ostack

let pop_int fr =
  match pop fr with
  | Value.Int n -> n
  | v -> bugf "expected int, got %a" Value.pp v

let pop_ref_or_null fr =
  match pop fr with
  | (Value.Null | Value.Ref _) as v -> v
  | Value.Int _ -> bugf "expected ref, got int"

let pop_obj m fr =
  match pop_ref_or_null fr with
  | Value.Ref id ->
      let o = Heap.get m.heap id in
      (* a swept object reached through a live reference means the
         collector (or an unsound barrier removal) freed live data *)
      if o.Heap.dead then
        bugf "use-after-free of #%d (%s) at %s.%s@%d" id o.Heap.cls fr.f_class
          fr.f_meth.mname fr.pc;
      o
  | Value.Null -> jthrow Null_deref
  | Value.Int _ -> assert false

let fields_of (o : Heap.obj) =
  match o.payload with
  | Heap.Fields fs -> fs
  | Heap.Ref_array _ | Heap.Int_array _ -> bugf "expected object, got array"

let ref_elems_of (o : Heap.obj) =
  match o.payload with
  | Heap.Ref_array es -> es
  | Heap.Fields _ | Heap.Int_array _ -> bugf "expected object array"

let int_elems_of (o : Heap.obj) =
  match o.payload with
  | Heap.Int_array es -> es
  | Heap.Fields _ | Heap.Ref_array _ -> bugf "expected int array"

(** Allocate and notify the collector.  The pacer (when installed)
    admission-controls the allocation {e before} it happens — so the live
    heap provably never exceeds a hard limit — and, while degraded, makes
    the allocating thread assist: it runs one collector increment on the
    spot, shortening the outstanding mark. *)
let allocate m ~units mk =
  (match m.pacer with
  | None -> ()
  | Some p ->
      Pacer.before_alloc p m.heap ~units;
      if Pacer.degraded p && m.gc.is_marking () && not m.in_no_safepoint
      then begin
        m.gc.step ();
        m.assist_execs <- m.assist_execs + 1;
        Telemetry.incr c_assist_execs;
        Pacer.note_assist p
      end);
  let o = mk () in
  m.gc.on_alloc o;
  o

(** Chaos-injected allocation ballast: [count] small unreachable objects
    (two fields, four heap units each), allocated through the normal
    admission-controlled path so spikes exercise the pacer exactly like
    mutator pressure — including {!Pacer.Hard_limit}. *)
let external_alloc (m : t) ~(count : int) : unit =
  for _ = 1 to count do
    ignore
      (allocate m ~units:4 (fun () ->
           Heap.alloc_object ~site:Sitemap.runtime_site m.heap "chaos.Ballast"
             ~n_fields:2))
  done

(** Unwind after a runtime exception of [kind] raised at the current pc of
    the top frame. *)
let unwind (m : t) (th : thread) (kind : exn_kind) : unit =
  ignore m;
  let matches (h : int handler) =
    match h.kind, kind with
    | Any, _ -> true
    | Bounds, Bounds | Null_deref, Null_deref | Arith, Arith -> true
    | (Bounds | Null_deref | Arith), _ -> false
  in
  let rec go = function
    | [] ->
        th.frames <- [];
        th.finished <- true;
        th.error <- Some (string_of_exn_kind kind)
    | (fr : frame) :: rest -> (
        let candidate =
          List.find_opt
            (fun h -> fr.pc >= h.from_pc && fr.pc < h.to_pc && matches h)
            fr.f_meth.handlers
        in
        match candidate with
        | Some h ->
            fr.ostack <- [];
            fr.pc <- h.target;
            th.frames <- fr :: rest
        | None -> go rest)
  in
  go th.frames

(** Execute one instruction of [th].  Returns [false] once the thread has
    finished. *)
let step (m : t) (th : thread) : bool =
  match th.frames with
  | [] ->
      th.finished <- true;
      false
  | fr :: callers -> (
      m.instr_count <- m.instr_count + 1;
      m.cost_units <- m.cost_units + Barrier_cost.bytecode_units;
      if m.instr_count > m.cfg.max_steps then
        bugf "instruction budget exceeded (%d)" m.cfg.max_steps;
      let code = fr.f_meth.code in
      if fr.pc < 0 || fr.pc >= Array.length code then
        bugf "pc out of range in %s.%s" fr.f_class fr.f_meth.mname;
      let next () = fr.pc <- fr.pc + 1 in
      try
        (match code.(fr.pc) with
        | Iconst n ->
            push fr (Value.Int n);
            next ()
        | Aconst_null ->
            push fr Value.Null;
            next ()
        | Iload i ->
            push fr fr.locals.(i);
            next ()
        | Aload i ->
            push fr fr.locals.(i);
            next ()
        | Istore i | Astore i ->
            fr.locals.(i) <- pop fr;
            next ()
        | Iinc (i, d) ->
            (match fr.locals.(i) with
            | Value.Int n -> fr.locals.(i) <- Value.Int (n + d)
            | v -> bugf "iinc of %a" Value.pp v);
            next ()
        | Ibin op ->
            let b = pop_int fr in
            let a = pop_int fr in
            let r =
              match op with
              | Add -> a + b
              | Sub -> a - b
              | Mul -> a * b
              | Div -> if b = 0 then jthrow Arith else a / b
              | Rem -> if b = 0 then jthrow Arith else a mod b
            in
            push fr (Value.Int r);
            next ()
        | Ineg ->
            push fr (Value.Int (-pop_int fr));
            next ()
        | Dup ->
            let v = pop fr in
            push fr v;
            push fr v;
            next ()
        | Pop ->
            let _ = pop fr in
            next ()
        | Swap ->
            let a = pop fr in
            let b = pop fr in
            push fr a;
            push fr b;
            next ()
        | Goto l -> fr.pc <- l
        | If_i (c, l) ->
            let a = pop_int fr in
            if eval_cond c a 0 then fr.pc <- l else next ()
        | If_icmp (c, l) ->
            let b = pop_int fr in
            let a = pop_int fr in
            if eval_cond c a b then fr.pc <- l else next ()
        | If_null l -> (
            match pop_ref_or_null fr with
            | Value.Null -> fr.pc <- l
            | _ -> next ())
        | If_nonnull l -> (
            match pop_ref_or_null fr with
            | Value.Null -> next ()
            | _ -> fr.pc <- l)
        | If_acmp (want_eq, l) ->
            let b = pop_ref_or_null fr in
            let a = pop_ref_or_null fr in
            if Value.equal a b = want_eq then fr.pc <- l else next ()
        | Getstatic r ->
            push fr (Hashtbl.find m.statics (r.fclass, r.fname));
            next ()
        | Putstatic r ->
            let v = pop fr in
            (if Jir.Types.equal_ty (Jir.Program.static_ty m.prog r) R then
               let pre = Hashtbl.find m.statics (r.fclass, r.fname) in
               ref_store_barrier m fr ~kind:Static_store ~tid:th.tid ~obj:(-1)
                 ~pre ~nv:v);
            Hashtbl.replace m.statics (r.fclass, r.fname) v;
            next ()
        | Getfield r ->
            let o = pop_obj m fr in
            push fr (fields_of o).(field_index m r);
            next ()
        | Putfield r ->
            let v = pop fr in
            let o = pop_obj m fr in
            let fs = fields_of o in
            let idx = field_index m r in
            (if Jir.Types.equal_ty (Jir.Program.field_ty m.prog r) R then
               ref_store_barrier m fr ~kind:Field_store ~tid:th.tid ~obj:o.id
                 ~pre:fs.(idx) ~nv:v);
            fs.(idx) <- v;
            next ()
        | New cn ->
            let c = Jir.Program.get_class m.prog cn in
            let n_fields = List.length c.fields in
            let site = alloc_site m fr in
            let o =
              allocate m ~units:(2 + n_fields) (fun () ->
                  Heap.alloc_object ~site m.heap cn ~n_fields)
            in
            push fr (Value.Ref o.id);
            next ()
        | Newarray ety ->
            let len = pop_int fr in
            if len < 0 then jthrow Bounds;
            let site = alloc_site m fr in
            let o =
              allocate m ~units:(2 + len) (fun () ->
                  match ety with
                  | Elem_ref cn -> Heap.alloc_ref_array ~site m.heap cn ~len
                  | Elem_int -> Heap.alloc_int_array ~site m.heap ~len)
            in
            push fr (Value.Ref o.id);
            next ()
        | Aaload ->
            let i = pop_int fr in
            let o = pop_obj m fr in
            let es = ref_elems_of o in
            if i < 0 || i >= Array.length es then jthrow Bounds;
            push fr es.(i);
            next ()
        | Aastore ->
            let v = pop fr in
            let i = pop_int fr in
            let o = pop_obj m fr in
            let es = ref_elems_of o in
            if i < 0 || i >= Array.length es then jthrow Bounds;
            ref_store_barrier m fr ~kind:Array_store ~tid:th.tid ~obj:o.id
              ~pre:es.(i) ~nv:v;
            es.(i) <- v;
            next ()
        | Iaload ->
            let i = pop_int fr in
            let o = pop_obj m fr in
            let es = int_elems_of o in
            if i < 0 || i >= Array.length es then jthrow Bounds;
            push fr (Value.Int es.(i));
            next ()
        | Iastore ->
            let v = pop_int fr in
            let i = pop_int fr in
            let o = pop_obj m fr in
            let es = int_elems_of o in
            if i < 0 || i >= Array.length es then jthrow Bounds;
            es.(i) <- v;
            next ()
        | Arraylength ->
            let o = pop_obj m fr in
            let len =
              match o.payload with
              | Heap.Ref_array es -> Array.length es
              | Heap.Int_array es -> Array.length es
              | Heap.Fields _ -> bugf "arraylength of non-array"
            in
            push fr (Value.Int len);
            next ()
        | Invoke mr ->
            let callee = Jir.Program.get_method m.prog mr in
            let nargs = List.length callee.params in
            let locals = Array.make callee.max_locals Value.Null in
            for k = nargs - 1 downto 0 do
              locals.(k) <- pop fr
            done;
            let new_frame =
              {
                f_class = mr.mclass;
                f_meth = callee;
                pc = 0;
                locals;
                ostack = [];
              }
            in
            (* fr.pc stays at the call site until the callee returns, so
               exception handler ranges cover the invoke *)
            th.frames <- new_frame :: fr :: callers
        | Spawn mr ->
            let callee = Jir.Program.get_method m.prog mr in
            let nargs = List.length callee.params in
            let args = Array.make nargs Value.Null in
            for k = nargs - 1 downto 0 do
              args.(k) <- pop fr
            done;
            let _ = spawn_thread m mr (Array.to_list args) in
            next ()
        | Return -> (
            match callers with
            | [] ->
                th.frames <- [];
                th.finished <- true
            | caller :: _ ->
                caller.pc <- caller.pc + 1;
                th.frames <- callers)
        | Ireturn | Areturn -> (
            let v = pop fr in
            match callers with
            | [] ->
                th.frames <- [];
                th.finished <- true
            | caller :: _ ->
                push caller v;
                caller.pc <- caller.pc + 1;
                th.frames <- callers));
        not th.finished
      with Jexn kind ->
        unwind m th kind;
        not th.finished)

(* ---- aggregate statistics --------------------------------------------- *)

type dyn_stats = {
  total_execs : int;  (** dynamic reference-store (barrier) executions *)
  elided_execs : int;
  pot_pre_null_execs : int;
      (** executions at sites whose pre-value was never non-null *)
  field_execs : int;  (** putfield only; statics are counted apart *)
  field_elided : int;
  array_execs : int;
  array_elided : int;
  static_execs : int;  (** putstatic of reference statics (never elided) *)
}

let dyn_stats (m : t) : dyn_stats =
  let total = ref 0
  and elided = ref 0
  and pot = ref 0
  and field = ref 0
  and field_e = ref 0
  and array = ref 0
  and array_e = ref 0
  and static_ = ref 0 in
  Hashtbl.iter
    (fun _ st ->
      total := !total + st.execs;
      if st.st_elided then elided := !elided + st.execs;
      if st.pre_null_execs = st.execs then pot := !pot + st.execs;
      match st.st_kind with
      | Field_store ->
          field := !field + st.execs;
          if st.st_elided then field_e := !field_e + st.execs
      | Static_store -> static_ := !static_ + st.execs
      | Array_store ->
          array := !array + st.execs;
          if st.st_elided then array_e := !array_e + st.execs)
    m.stats;
  {
    total_execs = !total;
    elided_execs = !elided;
    pot_pre_null_execs = !pot;
    field_execs = !field;
    field_elided = !field_e;
    array_execs = !array;
    array_elided = !array_e;
    static_execs = !static_;
  }

let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let pp_dyn_stats ppf (d : dyn_stats) =
  Fmt.pf ppf
    "barriers: %d execs, %.1f%% elided, %.1f%% potentially pre-null; field %d (%.1f%% elided), array %d (%.1f%% elided), static %d"
    d.total_execs
    (pct d.elided_execs d.total_execs)
    (pct d.pot_pre_null_execs d.total_execs)
    d.field_execs
    (pct d.field_elided d.field_execs)
    d.array_execs
    (pct d.array_elided d.array_execs)
    d.static_execs
