(** Synchronous reachability oracle.

    The simulator can stop the world for free, so we compute exact
    reachable sets to (a) capture the logical snapshot when SATB marking
    starts and (b) verify collector invariants at the end of each cycle.
    A production collector obviously has no such oracle — it exists purely
    to {e check} the algorithms. *)

module Iset = Set.Make (Int)

(** Objects reachable from the given root ids. *)
let reachable (heap : Heap.t) (roots : int list) : Iset.t =
  let rec go seen = function
    | [] -> seen
    | id :: todo ->
        if Iset.mem id seen then go seen todo
        else
          let o = Heap.get heap id in
          let seen = Iset.add id seen in
          go seen (List.rev_append (Heap.out_edges o) todo)
  in
  go Iset.empty roots

(** Snapshot-invariant check shared by the SATB-family collectors: members
    of the marking-start snapshot that ended the cycle dead or unmarked.
    Nonzero means a barrier (or a tracing-state check) that was actually
    needed had been removed. *)
let snapshot_violations (heap : Heap.t) (snapshot : Iset.t) : int =
  Iset.fold
    (fun id n ->
      let o = Heap.get heap id in
      if o.Heap.dead || not o.Heap.marked then n + 1 else n)
    snapshot 0
