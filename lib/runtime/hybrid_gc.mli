(** Concurrent marking with the Go-style hybrid write barrier: Yuasa
    deletion shading on every kept store plus Dijkstra insertion shading
    while the storing thread's stack is still grey.  Stacks are scanned
    lazily, one per collector increment; the final pause re-scans all
    roots once (no re-scan loop) and checks end-reachability like
    {!Incr_gc}. *)

type phase = Idle | Marking

type cycle_report = {
  cycle : int;
  marked : int;
  del_shades : int;  (** deletion-half executions that shaded *)
  ins_shades : int;  (** insertion-half executions that shaded *)
  stack_scans : int;  (** thread stacks scanned (lazily or at finish) *)
  allocated_during : int;
  increments : int;
  final_pause_work : int;  (** objects scanned inside the final pause *)
  rescans : int;  (** repair-set objects re-scanned at remark *)
  swept : int;
  violations : int;  (** reachable-at-end objects left unmarked *)
}

type t = {
  heap : Heap.t;
  static_roots : unit -> int list;
  thread_roots : unit -> (int * int list) list;
  steps_per_increment : int;
  mutable phase : phase;
  mutable gray : int list;
  scanned : (int, unit) Hashtbl.t;
  mutable del_shades : int;
  mutable ins_shades : int;
  mutable stack_scans : int;
  mutable allocated_during : int;
  mutable increments : int;
  mutable boost : int;
      (** mark-budget multiplier; >1 while the pacer is degraded *)
  mutable rescans : int;
  mutable cycles : int;
  mutable reports : cycle_report list;
  mutable sweep_enabled : bool;
}

val create :
  ?steps_per_increment:int ->
  ?sweep:bool ->
  Heap.t ->
  static_roots:(unit -> int list) ->
  thread_roots:(unit -> (int * int list) list) ->
  t

val is_marking : t -> bool

val stack_grey : t -> tid:int -> bool
(** Has thread [tid]'s stack not yet been scanned this cycle? *)

val start_cycle : t -> unit
(** Mark the static roots and leave every thread stack grey. *)

val log_ref_store : t -> obj:int -> pre:Value.t -> unit
(** Deletion half: shade the overwritten value. *)

val log_ins_store : t -> tid:int -> nv:Value.t -> unit
(** Insertion half: shade [nv] while [tid]'s stack is grey. *)

val on_alloc : t -> Heap.obj -> unit
(** Allocate black during marking. *)

val on_revoke : t -> objs:int list -> unit
(** Re-scan repair: mark and re-gray each destination object. *)

val step : t -> unit
(** One increment: scan a grey stack if any remain, else drain gray. *)

val quiescent : t -> bool

val finish_cycle : t -> cycle_report
(** Final pause: scan remaining grey stacks, one root re-scan, drain,
    end-reachability check, sweep when sound. *)

val hooks : t -> Gc_hooks.t
