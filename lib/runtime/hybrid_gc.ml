(** Concurrent marking with the Go-style {e hybrid} write barrier
    (Clements–Hudson, Go proposal 17503-eliminate-rescan): on every kept
    reference store the mutator shades the {e old} value (the Yuasa
    deletion half, as in {!Satb_gc}) and {e also} shades the {e new}
    value while the storing thread's stack has not yet been scanned this
    cycle (the Dijkstra insertion half).

    The payoff the hybrid barrier buys in Go is eliminating the final
    stop-the-world stack re-scan: once a stack has been scanned it stays
    black, because any pointer subsequently written {e from} that stack
    into the heap is either already shaded or gets shaded by the
    insertion half of some other, still-grey thread.  We model that with
    lazy per-thread stack scanning — [start_cycle] marks only the static
    roots and leaves every stack grey; each collector increment scans one
    grey stack before draining gray objects; [log_ins_store] consults the
    storing thread's scan state.

    Elision interplay: deletion halves removed by the paper's
    pre-null/null-or-same proofs need no repair (the overwritten slot
    held null or an already-reachable value).  Insertion halves removed
    by the freshness proofs (§2.4 allocation-site facts, summary-proven
    fresh returns) are covered by three layers: objects are allocated
    black during marking ([on_alloc]); destinations of insertion-elided
    stores recorded by the interpreter are handed back through
    [on_revoke] at remark time and re-scanned; and [finish_cycle]
    re-scans every root (statics and all stacks) inside the final pause,
    which also makes static-store insertion elision sound.  Soundness is
    checked like {!Incr_gc}: at the end of the cycle everything reachable
    must be marked. *)

module Iset = Oracle.Iset

type phase = Idle | Marking

type cycle_report = {
  cycle : int;
  marked : int;
  del_shades : int;  (** deletion-half barrier executions that shaded *)
  ins_shades : int;  (** insertion-half executions that shaded *)
  stack_scans : int;  (** thread stacks scanned (lazily or at finish) *)
  allocated_during : int;
  increments : int;
  final_pause_work : int;  (** objects scanned inside the final pause *)
  rescans : int;  (** repair-set objects re-scanned at remark *)
  swept : int;
  violations : int;  (** reachable-at-end objects left unmarked *)
}

type t = {
  heap : Heap.t;
  static_roots : unit -> int list;
  thread_roots : unit -> (int * int list) list;
      (** (tid, refs reachable from that thread's frames) *)
  steps_per_increment : int;
  mutable phase : phase;
  mutable gray : int list;
  scanned : (int, unit) Hashtbl.t;  (** tids whose stack is black *)
  mutable del_shades : int;
  mutable ins_shades : int;
  mutable stack_scans : int;
  mutable allocated_during : int;
  mutable increments : int;
  mutable boost : int;
      (** mark-budget multiplier; >1 while the pacer is degraded *)
  mutable rescans : int;
  mutable cycles : int;
  mutable reports : cycle_report list;
  mutable sweep_enabled : bool;
}

let create ?(steps_per_increment = 64) ?(sweep = true) (heap : Heap.t)
    ~(static_roots : unit -> int list)
    ~(thread_roots : unit -> (int * int list) list) : t =
  {
    heap;
    static_roots;
    thread_roots;
    steps_per_increment;
    phase = Idle;
    gray = [];
    scanned = Hashtbl.create 8;
    del_shades = 0;
    ins_shades = 0;
    stack_scans = 0;
    allocated_during = 0;
    increments = 0;
    boost = 1;
    rescans = 0;
    cycles = 0;
    reports = [];
    sweep_enabled = sweep;
  }

let is_marking t = t.phase = Marking

(** Has thread [tid]'s stack been scanned (turned black) this cycle?
    Threads the collector has not seen yet are grey by construction. *)
let stack_grey (t : t) ~tid = not (Hashtbl.mem t.scanned tid)

(* telemetry: gc.* counters shared with the other collectors *)
let c_cycles = Telemetry.counter "gc.cycles"
let fk_hybrid = Flight.intern "hybrid"
let c_violations = Telemetry.counter "gc.violations"

(* [origin] is the float-accounting cause stamp ({!Heap.origin_trace}
   etc.); first marker wins, drained children inherit their parent's *)
let mark_and_gray t ~origin id =
  let o = Heap.get t.heap id in
  if (not o.marked) && not o.dead then begin
    o.marked <- true;
    o.origin <- origin;
    t.gray <- id :: t.gray
  end

let start_cycle (t : t) : unit =
  assert (t.phase = Idle);
  t.phase <- Marking;
  t.gray <- [];
  Hashtbl.reset t.scanned;
  t.del_shades <- 0;
  t.ins_shades <- 0;
  t.stack_scans <- 0;
  t.allocated_during <- 0;
  t.increments <- 0;
  t.rescans <- 0;
  (* statics only: every thread stack starts the cycle grey *)
  List.iter (mark_and_gray t ~origin:Heap.origin_trace) (t.static_roots ());
  Flight.record Flight.Mark_start ~a:fk_hybrid ~b:t.cycles ~c:0;
  Telemetry.emit "gc.cycle.start"
    [
      ("collector", Telemetry.Str "hybrid");
      ("cycle", Telemetry.Int t.cycles);
      ("phase", Telemetry.Str "marking");
    ]

(** Deletion half: shade the overwritten value (Yuasa). *)
let log_ref_store t ~obj:_ ~pre =
  if t.phase = Marking then
    match pre with
    | Value.Ref id ->
        let o = Heap.get t.heap id in
        if (not o.marked) && not o.dead then begin
          t.del_shades <- t.del_shades + 1;
          mark_and_gray t ~origin:Heap.origin_log id
        end
    | _ -> ()

(** Insertion half: shade the stored value while the storing thread's
    stack is still grey (Dijkstra). *)
let log_ins_store t ~tid ~nv =
  if t.phase = Marking && stack_grey t ~tid then
    match nv with
    | Value.Ref id ->
        let o = Heap.get t.heap id in
        if (not o.marked) && not o.dead then begin
          t.ins_shades <- t.ins_shades + 1;
          mark_and_gray t ~origin:Heap.origin_log id
        end
    | _ -> ()

(** Allocate black: new objects cannot be swept this cycle, which is one
    of the layers insertion-half elision at fresh-store sites rests on. *)
let on_alloc t (o : Heap.obj) =
  if t.phase = Marking then begin
    o.marked <- true;
    o.origin <- Heap.origin_alloc;
    o.born_during_mark <- true;
    t.allocated_during <- t.allocated_during + 1
  end

(** Remark-time repair: [objs] are destinations of stores whose barrier
    (either half) was elided under assumptions that failed, plus — when
    the runner hands them over — destinations of insertion-elided stores
    executed this cycle.  Re-scan them: mark and re-gray so their current
    fields are traced. *)
let on_revoke t ~objs =
  if t.phase = Marking then
    List.iter
      (fun id ->
        if id >= 0 then begin
          let o = Heap.get t.heap id in
          if not o.dead then begin
            t.rescans <- t.rescans + 1;
            if not o.marked then o.origin <- Heap.origin_repair;
            o.marked <- true;
            t.gray <- id :: t.gray
          end
        end)
      objs

(** Scan one grey thread stack, turning it black. *)
let scan_stack (t : t) (tid : int) (refs : int list) : unit =
  List.iter (mark_and_gray t ~origin:Heap.origin_trace) refs;
  Hashtbl.replace t.scanned tid ();
  t.stack_scans <- t.stack_scans + 1

let drain (t : t) (budget : int) : int =
  let processed = ref 0 in
  while !processed < budget && t.gray <> [] do
    match t.gray with
    | id :: rest ->
        t.gray <- rest;
        incr processed;
        let o = Heap.get t.heap id in
        if not o.dead then
          List.iter (mark_and_gray t ~origin:o.origin) (Heap.out_edges o)
    | [] -> ()
  done;
  !processed

(** One collector increment: scan a grey stack if any remain (lazy stack
    scanning — no stop-the-world stack phase), otherwise drain gray
    objects. *)
let step (t : t) : unit =
  if t.phase = Marking then begin
    t.increments <- t.increments + 1;
    match
      List.find_opt (fun (tid, _) -> stack_grey t ~tid) (t.thread_roots ())
    with
    | Some (tid, refs) -> scan_stack t tid refs
    | None -> ignore (drain t (t.steps_per_increment * t.boost))
  end

let quiescent (t : t) : bool =
  t.phase = Marking && t.gray = []
  && List.for_all (fun (tid, _) -> not (stack_grey t ~tid)) (t.thread_roots ())

(** Final pause: scan any stacks still grey (threads spawned late), then
    re-scan every root — the layer that also covers insertion-elided
    static stores — and drain to a fixed point.  The hybrid barrier's
    whole point is that this pause never grows a re-scan {e loop} the way
    incremental update's does ({!Incr_gc.finish_cycle}): one root pass
    plus a drain suffices. *)
let finish_cycle (t : t) : cycle_report =
  assert (t.phase = Marking);
  let pause_work = ref 0 in
  List.iter
    (fun (tid, refs) ->
      if stack_grey t ~tid then begin
        pause_work := !pause_work + List.length refs;
        scan_stack t tid refs
      end)
    (t.thread_roots ());
  let all_roots () =
    t.static_roots ()
    @ List.concat_map (fun (_, refs) -> refs) (t.thread_roots ())
  in
  List.iter
    (fun id ->
      incr pause_work;
      mark_and_gray t ~origin:Heap.origin_trace id)
    (all_roots ());
  pause_work := !pause_work + drain t max_int;
  (* Invariant: everything reachable now is marked. *)
  let now = Oracle.reachable t.heap (all_roots ()) in
  let violations =
    Iset.fold
      (fun id n ->
        let o = Heap.get t.heap id in
        if o.dead || not o.marked then n + 1 else n)
      now 0
  in
  let marked = ref 0 in
  Heap.iter_live t.heap (fun o -> if o.marked then incr marked);
  let swept = ref 0 in
  if t.sweep_enabled && violations = 0 then
    Heap.iter_live t.heap (fun o ->
        if not o.marked then begin
          Heap.free t.heap o;
          incr swept
        end);
  let report =
    {
      cycle = t.cycles;
      marked = !marked;
      del_shades = t.del_shades;
      ins_shades = t.ins_shades;
      stack_scans = t.stack_scans;
      allocated_during = t.allocated_during;
      increments = t.increments;
      final_pause_work = !pause_work;
      rescans = t.rescans;
      swept = !swept;
      violations;
    }
  in
  t.cycles <- t.cycles + 1;
  t.heap.Heap.gc_cycle <- t.heap.Heap.gc_cycle + 1;
  t.reports <- report :: t.reports;
  t.phase <- Idle;
  Heap.clear_marks t.heap;
  Telemetry.incr c_cycles;
  Telemetry.incr c_violations ~by:violations;
  Flight.record Flight.Mark_end ~a:fk_hybrid ~b:report.cycle ~c:violations;
  Telemetry.emit "gc.cycle.finish"
    [
      ("collector", Telemetry.Str "hybrid");
      ("cycle", Telemetry.Int report.cycle);
      ("phase", Telemetry.Str "idle");
      ("marked", Telemetry.Int report.marked);
      ("del_shades", Telemetry.Int report.del_shades);
      ("ins_shades", Telemetry.Int report.ins_shades);
      ("stack_scans", Telemetry.Int report.stack_scans);
      ("final_pause_work", Telemetry.Int report.final_pause_work);
      ("rescans", Telemetry.Int report.rescans);
      ("swept", Telemetry.Int report.swept);
      ("violations", Telemetry.Int report.violations);
    ];
  report

(** Package as mutator-facing hooks. *)
let hooks (t : t) : Gc_hooks.t =
  {
    Gc_hooks.name = "hybrid";
    caps =
      {
        (* arrays are scanned whole in one gray-drain step: no tracing
           protocol, no direction contract *)
        Gc_hooks.retrace_protocol = false;
        descending_scan = false;
        insertion_half = true;
      };
    is_marking = (fun () -> is_marking t);
    log_ref_store = (fun ~obj ~pre -> log_ref_store t ~obj ~pre);
    log_ins_store = (fun ~tid ~nv -> log_ins_store t ~tid ~nv);
    on_unlogged_store = (fun ~obj:_ -> ());
    on_revoke = (fun ~objs -> on_revoke t ~objs);
    on_alloc = (fun o -> on_alloc t o);
    on_pressure =
      (fun ~degraded ->
        t.boost <- (if degraded then Gc_hooks.pressure_boost else 1));
    step = (fun () -> step t);
  }
