(** Incremental-update ("mostly-parallel") concurrent marking with a
    card-marking write barrier — the Boehm–Demers–Shenker style baseline
    the paper contrasts SATB against (§1).

    The mutator's barrier merely dirties the card of the object whose field
    was written (≈2 instructions).  The collector traces concurrently from
    a root snapshot; the final stop-the-world pause must then (a) rescan
    the roots, (b) rescan every object on a dirty card, and (c) trace
    everything newly discovered — which includes every object allocated
    during the cycle that became reachable, since incremental update gets
    no "allocated black" guarantee.  That rescan loop is why
    incremental-update final pauses are often an order of magnitude longer
    than SATB remark pauses (§1, §4.5); the measured pause work feeds the
    E5 experiment. *)

module Iset = Oracle.Iset

let card_size = 64

type phase = Idle | Marking

type cycle_report = {
  cycle : int;
  marked : int;
  dirty_cards : int;  (** distinct cards dirtied during the cycle *)
  allocated_during : int;
  increments : int;
  final_pause_work : int;  (** objects scanned inside the final pause *)
  rescan_rounds : int;
  swept : int;
  violations : int;  (** reachable-at-end objects left unmarked *)
}

type t = {
  heap : Heap.t;
  roots : unit -> int list;
  steps_per_increment : int;
  mutable phase : phase;
  mutable gray : int list;
  mutable dirty : Iset.t;  (** dirty card ids *)
  mutable dirtied_total : int;
  mutable allocated_during : int;
  mutable increments : int;
  mutable boost : int;
      (** mark-budget multiplier; >1 while the pacer is degraded *)
  mutable force_black : bool;
      (** degraded mode: allocate black (plus a birth-dirtied card, so
          elided stores into the new object are still re-scanned at the
          final pause) instead of the usual allocate-white *)
  mutable cycles : int;
  mutable reports : cycle_report list;
  mutable sweep_enabled : bool;
}

let create ?(steps_per_increment = 64) ?(sweep = true) (heap : Heap.t)
    ~(roots : unit -> int list) : t =
  {
    heap;
    roots;
    steps_per_increment;
    phase = Idle;
    gray = [];
    dirty = Iset.empty;
    dirtied_total = 0;
    allocated_during = 0;
    increments = 0;
    boost = 1;
    force_black = false;
    cycles = 0;
    reports = [];
    sweep_enabled = sweep;
  }

let is_marking t = t.phase = Marking

(* telemetry: gc.* counters shared with the SATB collectors *)
let c_cycles = Telemetry.counter "gc.cycles"
let fk_incr = Flight.intern "incremental-update"
let c_violations = Telemetry.counter "gc.violations"

(* [origin] is the float-accounting cause stamp ({!Heap.origin_trace}
   etc.); first marker wins, drained children inherit their parent's *)
let mark_and_gray t ~origin id =
  let o = Heap.get t.heap id in
  if (not o.marked) && not o.dead then begin
    o.marked <- true;
    o.origin <- origin;
    t.gray <- id :: t.gray
  end

let start_cycle (t : t) : unit =
  assert (t.phase = Idle);
  t.phase <- Marking;
  t.gray <- [];
  t.dirty <- Iset.empty;
  t.dirtied_total <- 0;
  t.allocated_during <- 0;
  t.increments <- 0;
  List.iter (mark_and_gray t ~origin:Heap.origin_trace) (t.roots ());
  Flight.record Flight.Mark_start ~a:fk_incr ~b:t.cycles ~c:0;
  Telemetry.emit "gc.cycle.start"
    [
      ("collector", Telemetry.Str "incremental-update");
      ("cycle", Telemetry.Int t.cycles);
      ("phase", Telemetry.Str "marking");
    ]

let log_ref_store t ~obj ~pre:_ =
  if t.phase = Marking && obj >= 0 then begin
    let card = obj / card_size in
    if not (Iset.mem card t.dirty) then begin
      t.dirty <- Iset.add card t.dirty;
      t.dirtied_total <- t.dirtied_total + 1
    end
  end

let on_alloc t (o : Heap.obj) =
  if t.phase = Marking then begin
    (* allocated white: incremental update must trace new objects *)
    o.born_during_mark <- true;
    t.allocated_during <- t.allocated_during + 1;
    if t.force_black then begin
      (* Degraded mode: allocate black so the final pause no longer owes
         this object a transitive visit.  Soundness needs its card
         dirtied at birth: stores into a fresh object are prime pre-null
         elision targets, and an elided store dirties nothing — the
         birth-dirty card makes the pause's fixed point re-scan the
         object's final fields regardless. *)
      o.Heap.marked <- true;
      o.Heap.origin <- Heap.origin_alloc;
      log_ref_store t ~obj:o.Heap.id ~pre:Value.Null
    end
  end

let drain (t : t) (budget : int) : int =
  let processed = ref 0 in
  while !processed < budget && t.gray <> [] do
    match t.gray with
    | id :: rest ->
        t.gray <- rest;
        incr processed;
        let o = Heap.get t.heap id in
        if not o.dead then
          List.iter (mark_and_gray t ~origin:o.origin) (Heap.out_edges o)
    | [] -> ()
  done;
  !processed

let step (t : t) : unit =
  if t.phase = Marking then begin
    t.increments <- t.increments + 1;
    ignore (drain t (t.steps_per_increment * t.boost))
  end

let quiescent (t : t) : bool = t.phase = Marking && t.gray = []

(** The final stop-the-world pause: alternate root rescans and dirty-card
    rescans until a fixed point, then sweep. *)
let finish_cycle (t : t) : cycle_report =
  assert (t.phase = Marking);
  let pause_work = ref 0 in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed do
    incr rounds;
    changed := false;
    (* rescan roots: they may now reference unmarked (e.g. new) objects *)
    List.iter
      (fun id ->
        incr pause_work;
        let o = Heap.get t.heap id in
        if (not o.marked) && not o.dead then begin
          changed := true;
          mark_and_gray t ~origin:Heap.origin_trace id
        end)
      (t.roots ());
    (* rescan marked objects on dirty cards: their fields were updated *)
    let dirty = t.dirty in
    t.dirty <- Iset.empty;
    Iset.iter
      (fun card ->
        let lo = card * card_size in
        let hi = min ((card + 1) * card_size) t.heap.Heap.next_id in
        for id = lo to hi - 1 do
          let o = Heap.get t.heap id in
          if o.marked && not o.dead then begin
            incr pause_work;
            List.iter
              (fun tgt ->
                let g = Heap.get t.heap tgt in
                if (not g.marked) && not g.dead then begin
                  changed := true;
                  (* kept only because its parent's card was dirtied *)
                  mark_and_gray t ~origin:Heap.origin_log tgt
                end)
              (Heap.out_edges o)
          end
        done)
      dirty;
    pause_work := !pause_work + drain t max_int
  done;
  (* Invariant: everything reachable now is marked. *)
  let now = Oracle.reachable t.heap (t.roots ()) in
  let violations =
    Iset.fold
      (fun id n ->
        let o = Heap.get t.heap id in
        if o.dead || not o.marked then n + 1 else n)
      now 0
  in
  let marked = ref 0 in
  Heap.iter_live t.heap (fun o -> if o.marked then incr marked);
  let swept = ref 0 in
  if t.sweep_enabled && violations = 0 then
    Heap.iter_live t.heap (fun o ->
        if not o.marked then begin
          Heap.free t.heap o;
          incr swept
        end);
  let report =
    {
      cycle = t.cycles;
      marked = !marked;
      dirty_cards = t.dirtied_total;
      allocated_during = t.allocated_during;
      increments = t.increments;
      final_pause_work = !pause_work;
      rescan_rounds = !rounds;
      swept = !swept;
      violations;
    }
  in
  t.cycles <- t.cycles + 1;
  t.heap.Heap.gc_cycle <- t.heap.Heap.gc_cycle + 1;
  t.reports <- report :: t.reports;
  t.phase <- Idle;
  Heap.clear_marks t.heap;
  Telemetry.incr c_cycles;
  Telemetry.incr c_violations ~by:violations;
  Flight.record Flight.Mark_end ~a:fk_incr ~b:report.cycle ~c:violations;
  Telemetry.emit "gc.cycle.finish"
    [
      ("collector", Telemetry.Str "incremental-update");
      ("cycle", Telemetry.Int report.cycle);
      ("phase", Telemetry.Str "idle");
      ("marked", Telemetry.Int report.marked);
      ("dirty_cards", Telemetry.Int report.dirty_cards);
      ("final_pause_work", Telemetry.Int report.final_pause_work);
      ("rescan_rounds", Telemetry.Int report.rescan_rounds);
      ("swept", Telemetry.Int report.swept);
      ("violations", Telemetry.Int report.violations);
    ];
  report

let hooks (t : t) : Gc_hooks.t =
  {
    Gc_hooks.name = "incremental-update";
    caps =
      {
        Gc_hooks.retrace_protocol = false;
        descending_scan = false;
        insertion_half = false;
      };
    is_marking = (fun () -> is_marking t);
    log_ref_store = (fun ~obj ~pre -> log_ref_store t ~obj ~pre);
    log_ins_store = (fun ~tid:_ ~nv:_ -> ());
    on_unlogged_store = (fun ~obj:_ -> ());
    (* repair by dirtying the written objects' cards: the final pause's
       dirty-card rescan then re-examines their current fields *)
    on_revoke =
      (fun ~objs ->
        List.iter (fun obj -> log_ref_store t ~obj ~pre:Value.Null) objs);
    on_alloc = (fun o -> on_alloc t o);
    on_pressure =
      (fun ~degraded ->
        t.boost <- (if degraded then Gc_hooks.pressure_boost else 1);
        t.force_black <- degraded);
    step = (fun () -> step t);
  }
