(** Seeded fault injection for the guard/revocation subsystem: late
    thread spawns, forced marker preemption, mid-cycle heap pressure,
    deliberate barrier skips (oracle self-test), and adversarial
    scheduler pacing.  Deterministic for a given plan; see the
    implementation header for the victim-selection argument. *)

type fault =
  | Late_spawn of { at_instr : int; stores : int }
      (** a second mutator appears at [at_instr], then performs [stores]
          guarded damage stores at later safepoints while marking *)
  | Preempt_marker of { at_alloc : int; skips : int }
      (** withhold [skips] collector increments once the heap reaches
          [at_alloc] allocations *)
  | Heap_pressure of { at_alloc : int }
      (** force an emergency remark of the in-flight cycle *)
  | Barrier_skip of { at_instr : int; victims : int }
      (** unsound by design: sever [victims] snapshot objects with no
          barrier at all — the oracle must catch it *)
  | Class_load of { at_instr : int }
      (** announce a class load at [at_instr]: the closed-world
          assumption behind the callee summaries fails, revoking every
          summary-dependent elision *)
  | Alloc_spike of { at_instr : int; count : int }
      (** allocate [count] ballast objects in one burst at [at_instr] —
          a sudden allocation spike the pacer must absorb *)
  | Mem_pressure of { at_alloc : int; per_safepoint : int; total : int }
      (** from [at_alloc] allocations on, inject [per_safepoint] ballast
          objects at every safepoint until [total] are placed — a
          sustained memory-pressure ramp against the pacer's limits *)

type plan = {
  seed : int;
  faults : fault list;
  quantum : int option;  (** adversarial scheduler pacing override *)
  gc_period : int option;
}

type stats = {
  spawns : int;
  damage_stores : int;
  skipped_barriers : int;
  preempted_increments : int;
  pressure_remarks : int;
  class_loads : int;
  spike_allocs : int;  (** ballast objects injected by allocation spikes *)
  ramp_allocs : int;  (** ballast objects injected by pressure ramps *)
}

type action = { defer_increment : bool; force_remark : bool }
(** What the runner must do at the current safepoint. *)

val no_action : action

type t

val create : plan -> t

val of_seed : int -> plan
(** A deterministic benign plan for [--chaos <seed>]: late spawn plus a
    seed-dependent mix of preemption, heap pressure, class loading,
    allocation spikes, and pacing; never a barrier skip. *)

val plan : t -> plan
val stats : t -> stats

val find_victims : Interp.t -> (int * int) list
(** [(owner, slot)] pairs whose overwrite-with-null severs the sole
    reference to a live, unmarked, pre-existing, non-root object.
    Exposed for the oracle self-tests. *)

val at_safepoint : t -> Interp.t -> action
(** Run the plan's due faults.  Must be called at a safepoint, before
    {!Interp.apply_revocations} and before the collector increment. *)
