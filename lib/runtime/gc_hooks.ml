(** The mutator/collector interface.

    The interpreter calls these hooks; collectors ({!Satb_gc},
    {!Incr_gc}) implement them.  [log_ref_store] is the body of the write
    barrier: it runs only for stores whose barrier was {e not} eliminated
    by the analysis — SATB logs the pre-write value, incremental-update
    card-marking dirties the target's card. *)

type t = {
  name : string;
  is_marking : unit -> bool;
  log_ref_store : obj:int -> pre:Value.t -> unit;
  on_unlogged_store : obj:int -> unit;
      (** tracing-state check compiled at swap-elided sites: the analysis
          removed the logging barrier but the retrace protocol
          ({!Retrace_gc}) still needs to know the object was mutated while
          its scan may be in flight.  Collectors without the protocol
          ignore it — which is exactly what the negative soundness tests
          demonstrate to be unsafe. *)
  on_alloc : Heap.obj -> unit;
  step : unit -> unit;  (** perform a bounded increment of collector work *)
}

(** No collector: barriers are pure instrumentation. *)
let none : t =
  {
    name = "none";
    is_marking = (fun () -> false);
    log_ref_store = (fun ~obj:_ ~pre:_ -> ());
    on_unlogged_store = (fun ~obj:_ -> ());
    on_alloc = (fun _ -> ());
    step = (fun () -> ());
  }
