(** The mutator/collector interface.

    The interpreter calls these hooks; collectors ({!Satb_gc},
    {!Incr_gc}) implement them.  [log_ref_store] is the body of the write
    barrier: it runs only for stores whose barrier was {e not} eliminated
    by the analysis — SATB logs the pre-write value, incremental-update
    card-marking dirties the target's card. *)

(** Mark-budget multiplier every collector applies while the pacer is
    degraded; one shared constant so the four collectors degrade
    identically. *)
let pressure_boost = 4

type caps = {
  retrace_protocol : bool;
      (** the collector honours [on_unlogged_store] (tracing-state
          protocol), so swap-elided stores are sound under it *)
  descending_scan : bool;
      (** object arrays are scanned from the highest index downwards, the
          direction contract move-down elision depends on *)
  insertion_half : bool;
      (** the collector consumes a Dijkstra insertion half
          ([log_ins_store]) and re-scans the repair set handed to
          [on_revoke] at remark time, so insertion-half elision is sound
          under it *)
}

type t = {
  name : string;
  caps : caps;
  is_marking : unit -> bool;
  log_ref_store : obj:int -> pre:Value.t -> unit;
  log_ins_store : tid:int -> nv:Value.t -> unit;
      (** Dijkstra insertion half of a hybrid barrier: shade the value
          being stored while thread [tid]'s stack is still grey.  No-op
          for the pure-deletion collectors. *)
  on_unlogged_store : obj:int -> unit;
      (** tracing-state check compiled at swap-elided sites: the analysis
          removed the logging barrier but the retrace protocol
          ({!Retrace_gc}) still needs to know the object was mutated while
          its scan may be in flight.  Collectors without the protocol
          ignore it — which is exactly what the negative soundness tests
          demonstrate to be unsafe. *)
  on_revoke : objs:int list -> unit;
      (** snapshot repair after elision revocation: [objs] are the ids of
          every object written through a now-revoked site during the
          current marking cycle.  A retrace collector enqueues them for
          re-scan; plain SATB restarts the mark from a fresh snapshot;
          collectors that never rely on elision may ignore it. *)
  on_alloc : Heap.obj -> unit;
  on_pressure : degraded:bool -> unit;
      (** the pacer entered ([true]) or left ([false]) degraded mode:
          boost the per-increment mark budget, and collectors that
          allocate white (incremental update) must force allocate-black
          for the duration *)
  step : unit -> unit;  (** perform a bounded increment of collector work *)
}

(** No collector: barriers are pure instrumentation.  Capabilities are
    vacuously [true] — with no marking there is nothing to violate. *)
let none : t =
  {
    name = "none";
    caps = { retrace_protocol = true; descending_scan = true; insertion_half = true };
    is_marking = (fun () -> false);
    log_ref_store = (fun ~obj:_ ~pre:_ -> ());
    log_ins_store = (fun ~tid:_ ~nv:_ -> ());
    on_unlogged_store = (fun ~obj:_ -> ());
    on_revoke = (fun ~objs:_ -> ());
    on_alloc = (fun _ -> ());
    on_pressure = (fun ~degraded:_ -> ());
    step = (fun () -> ());
  }
