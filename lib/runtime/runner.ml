(** Deterministic execution harness: interleaves mutator threads and
    collector increments, triggers and finishes marking cycles, and
    produces a run report.

    Scheduling is a round-robin over live threads with a fixed (optionally
    seed-jittered) quantum; collector increments run every
    [gc_period] mutator instructions.  Everything is deterministic for a
    given seed, which the soundness property tests exploit to explore many
    adversarial mutator/collector interleavings.

    Collector work (increments, cycle starts, remark) only runs at
    {e safepoints}: it is deferred while the interpreter is inside a
    swap-elided store pair's safepoint-free window
    ({!Interp.t.in_no_safepoint}) — the scheduling half of the retrace
    protocol's soundness argument (see {!Retrace_gc}). *)

type gc_choice =
  | No_gc
  | Satb of { steps_per_increment : int; pacing : Pacer.config }
  | Incr of { steps_per_increment : int; pacing : Pacer.config }
  | Retrace of { steps_per_increment : int; pacing : Pacer.config }
  | Hybrid of { steps_per_increment : int; pacing : Pacer.config }

(** [?trigger_allocs] is the deprecated fixed-count alias
    ([Pacer.Fixed], bit-for-bit the old behaviour); [?pacing] the full
    pacer config.  With neither, {!Pacer.default_config}'s heap-growth
    goal paces the run — calibrated so every bundled workload cycles
    with no flags at all. *)
let resolve_pacing ?trigger_allocs ?pacing () : Pacer.config =
  match trigger_allocs, pacing with
  | Some _, Some _ ->
      invalid_arg
        "Runner: ~trigger_allocs (deprecated fixed-count alias) and          ~pacing are mutually exclusive"
  | Some n, None -> Pacer.config_of_trigger n
  | None, Some p -> p
  | None, None -> Pacer.default_config

let make_satb ?(steps_per_increment = 64) ?trigger_allocs ?pacing () =
  Satb { steps_per_increment; pacing = resolve_pacing ?trigger_allocs ?pacing () }

let make_incr ?(steps_per_increment = 64) ?trigger_allocs ?pacing () =
  Incr { steps_per_increment; pacing = resolve_pacing ?trigger_allocs ?pacing () }

let make_retrace ?(steps_per_increment = 64) ?trigger_allocs ?pacing () =
  Retrace { steps_per_increment; pacing = resolve_pacing ?trigger_allocs ?pacing () }

let make_hybrid ?(steps_per_increment = 64) ?trigger_allocs ?pacing () =
  Hybrid { steps_per_increment; pacing = resolve_pacing ?trigger_allocs ?pacing () }

(** The capability record each choice's collector is expected to expose.
    Declared once here so flag-level compatibility checks (the CLI's
    static refusals) and the run-start assertion consult the same truth
    rather than each growing its own copy. *)
let caps_of_choice : gc_choice -> Gc_hooks.caps = function
  | No_gc -> Gc_hooks.none.Gc_hooks.caps
  | Satb _ ->
      { Gc_hooks.retrace_protocol = false; descending_scan = true; insertion_half = false }
  | Incr _ ->
      { Gc_hooks.retrace_protocol = false; descending_scan = false; insertion_half = false }
  | Retrace _ ->
      { Gc_hooks.retrace_protocol = true; descending_scan = true; insertion_half = false }
  | Hybrid _ ->
      { Gc_hooks.retrace_protocol = false; descending_scan = false; insertion_half = true }

type gc_summary = {
  cycles : int;
  total_violations : int;
  final_pause_works : int list;  (** per cycle, oldest first *)
  pause_steps : int list;
      (** mutator instruction count at which each final pause began,
          parallel to [final_pause_works] — the profiler's MMU timeline *)
  mark_increments : int list;
  logged_or_dirtied : int list;
      (** SATB buffer entries / dirty cards, per cycle *)
  retraced : int list;
      (** forced re-scans, per cycle; all zero except under [Retrace] *)
}

type report = {
  machine : Interp.t;
  steps : int;
  dyn : Interp.dyn_stats;
  cost_units : int;
  barrier_units : int;
  gc : gc_summary option;
  pacer : Pacer.stats option;
  hard_stop : string option;
      (** the hard heap limit fired: the run was aborted cleanly with
          this diagnostic (the in-flight cycle was still finished and
          checked) *)
  thread_errors : (int * string) list;
  loop_s : float;
      (** wall time of the scheduling loop alone — mutator slices plus
          safepoint/GC work, excluding machine construction and (for the
          threaded engine) method compilation, which [Exec.create] does
          eagerly up front.  The steady-state number benchmarks compare
          across engines. *)
  gc_s : float;
      (** portion of [loop_s] spent inside safepoint work — collector
          increments, pauses, pacing, revocation — which is
          engine-invariant by construction (the engines share every GC
          hook).  [loop_s -. gc_s] is mutator time. *)
}

(** A live collector behind a uniform closure interface, so the scheduling
    loop is collector-agnostic. *)
type live = {
  l_marking : unit -> bool;
  l_start : unit -> unit;
  l_quiescent : unit -> bool;
  l_finish : unit -> int;
      (** run the final pause, keep the report, return the pause's work *)
  l_degraded : unit -> bool;
      (** the cycle overflowed its retrace budget; swap elision must be
          disabled for its remainder *)
  l_summary : unit -> gc_summary;
}

let summary_of_cycles ~violations ~pause ~increments ~logged ~retraced
    ~pause_steps rs =
  {
    cycles = List.length rs;
    total_violations = List.fold_left (fun a r -> a + violations r) 0 rs;
    final_pause_works = List.map pause rs;
    pause_steps;
    mark_increments = List.map increments rs;
    logged_or_dirtied = List.map logged rs;
    retraced = List.map retraced rs;
  }

(** Simple deterministic PRNG for quantum jitter. *)
let lcg seed =
  let state = ref (if seed = 0 then 1 else seed) in
  fun bound ->
    state := (!state * 1103515245) + 12345;
    let v = (!state lsr 16) land 0x3FFF in
    1 + (v mod bound)

let run ?(cfg = Interp.default_config) ?(gc = No_gc) ?(engine = `Interp)
    ?(quantum = 50) ?(seed = 0) ?(gc_period = 32) ?chaos ?retrace_budget
    ?observer (prog : Jir.Program.t) ~(entry : Jir.Types.method_ref) : report =
  let m = Interp.create ~cfg prog in
  (* heap observer: arm verdict logging before the first instruction so
     the first cycle's elided stores are attributed too *)
  (match observer with
  | Some _ -> m.Interp.track_heap <- true
  | None -> ());
  let _main = Interp.spawn_thread m entry [] in
  (* the threaded engine wraps the same machine: shared heap, statics,
     counters and hooks, so everything below it is engine-agnostic *)
  let exec =
    match engine with `Interp -> None | `Threaded -> Some (Exec.create m)
  in
  let gc_name =
    match gc with
    | No_gc -> "none"
    | Satb _ -> "satb"
    | Incr _ -> "incremental-update"
    | Retrace _ -> "retrace"
    | Hybrid _ -> "hybrid"
  in
  Telemetry.emit "run.start"
    ([
       ("entry", Telemetry.Str (entry.Jir.Types.mclass ^ "." ^ entry.Jir.Types.mname));
       ("gc", Telemetry.Str gc_name);
       ("seed", Telemetry.Int seed);
       ("chaos", Telemetry.Bool (chaos <> None));
     ]
    (* only stamped when non-default, so interpreter traces stay
       bit-identical to earlier releases *)
    @ match engine with
      | `Threaded -> [ ("engine", Telemetry.Str "threaded") ]
      | `Interp -> []);
  (* flight recorder: fresh ring per run, clocked by the mutator's
     instruction counter, with a per-site snapshot source for dumps *)
  Flight.begin_run ();
  Flight.set_step_source
    (match exec with
    | None -> fun () -> m.Interp.instr_count
    | Some e -> fun () -> m.Interp.instr_count + Exec.inflight e);
  Flight.set_meta
    [
      ("collector", gc_name);
      ( "engine",
        match engine with `Interp -> "interp" | `Threaded -> "threaded" );
      ("entry", entry.Jir.Types.mclass ^ "." ^ entry.Jir.Types.mname);
      ("seed", string_of_int seed);
      ("chaos", if chaos <> None then "yes" else "no");
    ];
  Flight.set_sites_source (fun () ->
      Hashtbl.fold
        (fun site (st : Interp.site_stats) acc ->
          let state =
            match m.Interp.cfg.Interp.barrier_flavor with
            | `Hybrid ->
                if st.Interp.st_del_elided && st.Interp.st_ins_elided then
                  "both-elided"
                else if st.Interp.st_del_elided then "del-elided"
                else if st.Interp.st_ins_elided then "ins-elided"
                else if st.Interp.revocations > 0 then "revoked"
                else "kept"
            | `Satb | `Card ->
                if st.Interp.st_elided then "elided"
                else if st.Interp.revocations > 0 then "revoked"
                else "kept"
          in
          {
            Flight.fs_site = Interp.site_id site;
            fs_kind =
              (match st.Interp.st_kind with
              | Jir.Types.Field_store -> "putfield"
              | Jir.Types.Array_store -> "aastore"
              | Jir.Types.Static_store -> "putstatic");
            fs_state = state;
            fs_execs = st.Interp.execs;
            fs_paid = st.Interp.paid_execs;
            fs_elided_execs = st.Interp.elided_execs;
            fs_revocations = st.Interp.revocations;
            fs_guards =
              List.map Interp.string_of_assumption st.Interp.st_guards;
          }
          :: acc)
        m.Interp.stats []);
  (* with a heap observer armed, dumps flush the current heap census so
     a hard-limit abort mid-cycle still leaves the heap state on disk *)
  (match observer with
  | Some _ ->
      Flight.set_census_source (fun () ->
          Some
            ( m.Interp.heap.Heap.gc_cycle,
              m.Interp.heap.Heap.live_count,
              m.Interp.heap.Heap.live_units ))
  | None -> ());
  (* mutator step at which each final (remark) pause began, oldest first
     once reversed — the profiler's MMU/pause timeline *)
  let pause_steps = ref [] in
  (* an adversarial chaos plan may override the pacing *)
  let quantum, gc_period =
    match chaos with
    | None -> quantum, gc_period
    | Some c ->
        let p = Chaos.plan c in
        ( Option.value p.Chaos.quantum ~default:quantum,
          Option.value p.Chaos.gc_period ~default:gc_period )
  in
  let rand = lcg seed in
  (* collector wiring *)
  let roots () = Interp.roots m in
  let live =
    match gc with
    | No_gc -> None
    | Satb { steps_per_increment; _ } ->
        let t = Satb_gc.create ~steps_per_increment m.Interp.heap ~roots in
        Interp.set_collector m (Satb_gc.hooks t);
        let reports = ref [] in
        Some
          {
            l_marking = (fun () -> Satb_gc.is_marking t);
            l_start = (fun () -> Satb_gc.start_cycle t);
            l_quiescent = (fun () -> Satb_gc.quiescent t);
            l_finish =
              (fun () ->
                let r = Satb_gc.finish_cycle t in
                reports := r :: !reports;
                r.Satb_gc.final_pause_work);
            l_degraded = (fun () -> false);
            l_summary =
              (fun () ->
                summary_of_cycles (List.rev !reports)
                  ~violations:(fun (r : Satb_gc.cycle_report) -> r.violations)
                  ~pause:(fun r -> r.Satb_gc.final_pause_work)
                  ~increments:(fun r -> r.Satb_gc.increments)
                  ~logged:(fun r -> r.Satb_gc.logged)
                  ~retraced:(fun _ -> 0)
                  ~pause_steps:(List.rev !pause_steps));
          }
    | Incr { steps_per_increment; _ } ->
        let t = Incr_gc.create ~steps_per_increment m.Interp.heap ~roots in
        Interp.set_collector m (Incr_gc.hooks t);
        let reports = ref [] in
        Some
          {
            l_marking = (fun () -> Incr_gc.is_marking t);
            l_start = (fun () -> Incr_gc.start_cycle t);
            l_quiescent = (fun () -> Incr_gc.quiescent t);
            l_finish =
              (fun () ->
                let r = Incr_gc.finish_cycle t in
                reports := r :: !reports;
                r.Incr_gc.final_pause_work);
            l_degraded = (fun () -> false);
            l_summary =
              (fun () ->
                summary_of_cycles (List.rev !reports)
                  ~violations:(fun (r : Incr_gc.cycle_report) -> r.violations)
                  ~pause:(fun r -> r.Incr_gc.final_pause_work)
                  ~increments:(fun r -> r.Incr_gc.increments)
                  ~logged:(fun r -> r.Incr_gc.dirty_cards)
                  ~retraced:(fun _ -> 0)
                  ~pause_steps:(List.rev !pause_steps));
          }
    | Retrace { steps_per_increment; _ } ->
        let t =
          Retrace_gc.create ~steps_per_increment ?retrace_budget
            m.Interp.heap ~roots
        in
        Interp.set_collector m (Retrace_gc.hooks t);
        let reports = ref [] in
        Some
          {
            l_marking = (fun () -> Retrace_gc.is_marking t);
            l_start = (fun () -> Retrace_gc.start_cycle t);
            l_quiescent = (fun () -> Retrace_gc.quiescent t);
            l_finish =
              (fun () ->
                let r = Retrace_gc.finish_cycle t in
                reports := r :: !reports;
                r.Retrace_gc.final_pause_work);
            l_degraded = (fun () -> Retrace_gc.is_degraded t);
            l_summary =
              (fun () ->
                summary_of_cycles (List.rev !reports)
                  ~violations:(fun (r : Retrace_gc.cycle_report) ->
                    r.violations)
                  ~pause:(fun r -> r.Retrace_gc.final_pause_work)
                  ~increments:(fun r -> r.Retrace_gc.increments)
                  ~logged:(fun r -> r.Retrace_gc.logged)
                  ~retraced:(fun r -> r.Retrace_gc.retraces)
                  ~pause_steps:(List.rev !pause_steps));
          }
    | Hybrid { steps_per_increment; _ } ->
        let t =
          Hybrid_gc.create ~steps_per_increment m.Interp.heap
            ~static_roots:(fun () -> Interp.static_roots m)
            ~thread_roots:(fun () -> Interp.thread_roots m)
        in
        Interp.set_collector m (Hybrid_gc.hooks t);
        let reports = ref [] in
        Some
          {
            l_marking = (fun () -> Hybrid_gc.is_marking t);
            l_start = (fun () -> Hybrid_gc.start_cycle t);
            l_quiescent = (fun () -> Hybrid_gc.quiescent t);
            l_finish =
              (fun () ->
                let r = Hybrid_gc.finish_cycle t in
                reports := r :: !reports;
                r.Hybrid_gc.final_pause_work);
            l_degraded = (fun () -> false);
            l_summary =
              (fun () ->
                summary_of_cycles (List.rev !reports)
                  ~violations:(fun (r : Hybrid_gc.cycle_report) -> r.violations)
                  ~pause:(fun r -> r.Hybrid_gc.final_pause_work)
                  ~increments:(fun r -> r.Hybrid_gc.increments)
                  ~logged:(fun r -> r.Hybrid_gc.del_shades + r.Hybrid_gc.ins_shades)
                  ~retraced:(fun r -> r.Hybrid_gc.rescans)
                  ~pause_steps:(List.rev !pause_steps));
          }
  in
  let pacer =
    match gc with
    | No_gc -> None
    | Satb { steps_per_increment; pacing }
    | Incr { steps_per_increment; pacing }
    | Retrace { steps_per_increment; pacing }
    | Hybrid { steps_per_increment; pacing } ->
        let p =
          Pacer.create ~collector:gc_name
            ~increment_budget:steps_per_increment pacing
        in
        Interp.set_pacer m p;
        Some p
  in
  (* Capabilities are queried exactly once, here at run start, and
     asserted against the declared capability record for the chosen
     collector: a mismatch means a collector was wired whose abilities
     differ from what flag-level compatibility checks assumed, which
     must be a loud error, never a silent fallback. *)
  let caps = m.Interp.gc.Gc_hooks.caps in
  if caps <> caps_of_choice gc then
    invalid_arg
      (Printf.sprintf
         "Runner.run: collector %s reports capabilities \
          {retrace=%b; descending=%b; insertion=%b} but the %s choice \
          declares {retrace=%b; descending=%b; insertion=%b}"
         m.Interp.gc.Gc_hooks.name caps.Gc_hooks.retrace_protocol
         caps.Gc_hooks.descending_scan caps.Gc_hooks.insertion_half gc_name
         (caps_of_choice gc).Gc_hooks.retrace_protocol
         (caps_of_choice gc).Gc_hooks.descending_scan
         (caps_of_choice gc).Gc_hooks.insertion_half);
  (* Startup capability guards: the installed collector may lack
     capabilities some verdicts assumed (e.g. swap verdicts under a
     collector without the retrace protocol, move-down under an
     ascending scan).  Revoke before the first mutator instruction —
     inert unless a guard table was wired. *)
  if not caps.Gc_hooks.retrace_protocol then
    Interp.request_revoke m Interp.Retrace_collector;
  if not caps.Gc_hooks.descending_scan then
    Interp.request_revoke m Interp.Descending_scan;
  Interp.apply_revocations m;
  let maybe_start_cycle l =
    match pacer with
    | Some p when (not (l.l_marking ())) && Pacer.should_start p m.Interp.heap
      ->
        Telemetry.emit "gc.cycle.begin"
          [
            ("collector", Telemetry.Str gc_name);
            ("at_step", Telemetry.Int m.Interp.instr_count);
          ];
        Pacer.note_cycle_start p m.Interp.heap;
        l.l_start ();
        Interp.reset_cycle_state m
    | Some _ | None -> ()
  in
  (* run the final (remark) pause, stamping when it happened on the
     mutator's instruction timeline — the profiler's MMU input *)
  let record_pause l =
    let at_step = m.Interp.instr_count in
    (* insertion-capable collectors re-scan the cycle's repair set at
       remark: destinations of insertion-elided stores may hold edges to
       objects that were provably fresh at analysis time but white at
       run time (allocated before this cycle started) *)
    if caps.Gc_hooks.insertion_half && l.l_marking () then begin
      m.Interp.gc.Gc_hooks.on_revoke ~objs:m.Interp.guarded_writes;
      m.Interp.guarded_writes <- []
    end;
    let work = l.l_finish () in
    Flight.record Flight.Pause ~a:work ~b:0 ~c:0;
    pause_steps := at_step :: !pause_steps;
    (* cycle bookkeeping: recompute the heap-growth trigger from the
       live size the mark left behind, feed auto mode, and run the
       degradation-exit hysteresis *)
    Option.iter
      (fun p ->
        Pacer.note_cycle_end p m.Interp.heap ~at_step ~pause_work:work)
      pacer;
    Telemetry.emit "gc.pause"
      [
        ("collector", Telemetry.Str gc_name);
        ("at_step", Telemetry.Int at_step);
        ("work", Telemetry.Int work);
      ];
    (* the observatory reads survivors' mark origins and the cycle's
       elided-store log, so it must run after the sweep and before
       [reset_cycle_state] clears the log (in [finish_cycle] below and
       on the next cycle start) *)
    match observer with Some f -> f m | None -> ()
  in
  let finish_cycle l =
    record_pause l;
    Interp.reset_cycle_state m
  in
  (* keep the collector's pressure response in lockstep with the pacer's
     state machine: boost budgets (and force allocate-black where it
     matters) on entry, restore on exit *)
  let pressure_synced = ref false in
  let sync_pressure () =
    let degraded =
      match pacer with Some p -> Pacer.degraded p | None -> false
    in
    if degraded <> !pressure_synced then begin
      pressure_synced := degraded;
      m.Interp.gc.Gc_hooks.on_pressure ~degraded
    end
  in
  (* Run up to [fuel] instructions of [th] on the selected engine,
     returning how many executed.  The interpreter path is the old
     step-at-a-time loop verbatim; the threaded engine dispatches the
     whole slice through compiled code. *)
  let step_slice th ~fuel =
    match exec with
    | Some e -> Exec.slice e th ~fuel
    | None ->
        let n = ref 0 in
        while !n < fuel && not th.Interp.finished do
          ignore (Interp.step m th);
          incr n
        done;
        !n
  in
  (* main scheduling loop *)
  let since_gc = ref 0 in
  let continue_ = ref true in
  let hard_stop = ref None in
  let loop_t0 = Telemetry.now_s () in
  let gc_s = ref 0.0 in
  (try
     while !continue_ do
       let runnable =
         List.filter (fun th -> not th.Interp.finished) m.Interp.threads
       in
       if runnable = [] then continue_ := false
       else
         List.iter
           (fun th ->
             let q = if seed = 0 then quantum else rand quantum in
             let k = ref 0 in
             while !k < q && not th.Interp.finished do
               (* run straight to the next safepoint boundary in one
                  slice — the cadence is identical to stepping one
                  instruction at a time because a safepoint can only
                  fire when [since_gc] reaches [gc_period].  While a
                  swap-elided pair's window holds the safepoint open the
                  bound degenerates to single-stepping, exactly like the
                  per-instruction loop it replaces. *)
               let fuel = max 1 (min (q - !k) (gc_period - !since_gc)) in
               let n = step_slice th ~fuel in
               k := !k + n;
               since_gc := !since_gc + n;
               (* safepoint: collector work is deferred while a swap-elided
                  store pair's window is open *)
               if !since_gc >= gc_period && not m.Interp.in_no_safepoint
               then begin
                 let sp_t0 = Telemetry.now_s () in
                 since_gc := 0;
                 (* chaos faults fire first, so a late-spawn announcement's
                    revocation is applied below, before the fault's damage
                    stores (which run at later safepoints) *)
                 let action =
                   match chaos with
                   | Some c -> Chaos.at_safepoint c m
                   | None -> Chaos.no_action
                 in
                 (* guard failures noticed since the last safepoint patch
                    their dependent sites atomically here *)
                 Interp.apply_revocations m;
                 (* retrace-budget watchdog: a degraded cycle disables swap
                    elision for its remainder *)
                 (match live with
                 | Some l when l.l_degraded () -> Interp.set_swap_degraded m
                 | Some _ | None -> ());
                 (* poll the pacer's state machine; while degraded it asks
                    for extra increments on top of the boosted budgets *)
                 let extra =
                   match pacer with
                   | Some p -> Pacer.at_safepoint p m.Interp.heap
                   | None -> 0
                 in
                 sync_pressure ();
                 (* anomaly detectors sweep the ring's new events *)
                 Flight.poll ();
                 if not action.Chaos.defer_increment then begin
                   m.Interp.gc.Gc_hooks.step ();
                   for _ = 1 to extra do
                     m.Interp.gc.Gc_hooks.step ()
                   done
                 end;
                 (match live with
                 | None -> ()
                 | Some l ->
                     if action.Chaos.force_remark && l.l_marking () then
                       (* chaos heap pressure: emergency remark now *)
                       finish_cycle l
                     else begin
                       maybe_start_cycle l;
                       (* finish once the concurrent phase has gone
                          quiescent *)
                       if l.l_quiescent () then finish_cycle l
                     end);
                 gc_s := !gc_s +. (Telemetry.now_s () -. sp_t0)
               end
             done)
           runnable
     done
   with Pacer.Hard_limit msg ->
     (* degrade-don't-die ran out of road: abort cleanly.  The refusal
        happened before the allocation, so the live heap never exceeded
        the limit; fall through to finish the in-flight cycle below so
        every invariant is still checked. *)
     hard_stop := Some msg;
     ignore (Flight.capture ~reason:"hard-limit"));
  (* finish any in-flight cycle so its invariants still get checked *)
  (match live with
  | Some l when l.l_marking () ->
      let sp_t0 = Telemetry.now_s () in
      record_pause l;
      gc_s := !gc_s +. (Telemetry.now_s () -. sp_t0)
  | Some _ | None -> ());
  let loop_s = Telemetry.now_s () -. loop_t0 in
  Telemetry.emit "run.finish"
    [
      ("hard_stop", Telemetry.Bool (!hard_stop <> None));
      ("steps", Telemetry.Int m.Interp.instr_count);
      ("cost_units", Telemetry.Int m.Interp.cost_units);
      ("barriers_executed", Telemetry.Int m.Interp.barriers_executed);
      ("elided_barrier_execs", Telemetry.Int m.Interp.elided_barrier_execs);
      ("revocation_events", Telemetry.Int m.Interp.revocation_events);
      ("revoked_sites", Telemetry.Int m.Interp.revoked_sites);
    ];
  let gc_summary = Option.map (fun l -> l.l_summary ()) live in
  (match gc_summary with
  | Some s when s.total_violations > 0 ->
      ignore (Flight.capture ~reason:"oracle-violation")
  | Some _ | None -> ());
  {
    machine = m;
    steps = m.Interp.instr_count;
    dyn = Interp.dyn_stats m;
    cost_units = m.Interp.cost_units;
    barrier_units = m.Interp.barrier_units;
    gc = gc_summary;
    pacer = Option.map Pacer.stats pacer;
    hard_stop = !hard_stop;
    thread_errors =
      List.filter_map
        (fun th ->
          match th.Interp.error with
          | Some e -> Some (th.Interp.tid, e)
          | None -> None)
        m.Interp.threads;
    loop_s;
    gc_s = !gc_s;
  }
