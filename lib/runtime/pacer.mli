(** The per-run GC pacing controller, shared by all four collectors: it
    decides when marking cycles start (fixed trigger, heap-growth goal,
    or MMU/percentile-driven auto mode), degrades gracefully under a
    soft memory limit (boosted increments, forced allocate-black,
    allocation assists) and aborts cleanly — never corrupting state — at
    a hard limit.

    State machine: [Normal → Degraded → Hard_stop], with entry at the
    soft limit and exit only at a cycle boundary below 90% of it
    (hysteresis).  All sizes are in heap units ({!Heap.size_units}). *)

type mode =
  | Fixed of int
      (** the legacy [--gc-trigger] alias: a cycle every [n] allocations *)
  | Goal of float
      (** heap-growth target: next trigger = live-at-mark-end × goal *)
  | Auto
      (** [Goal] retuned each cycle from pause percentiles and MMU *)

val mode_name : mode -> string

type config = {
  mode : mode;
  soft_limit : int option;  (** heap units; arms graceful degradation *)
  hard_limit : int option;  (** heap units; arms the clean abort *)
  goal_floor : int;
      (** minimum trigger in heap units for the goal modes (also the
          first-cycle trigger) *)
}

val default_goal : float
val default_goal_floor : int

val default_config : config
(** [Goal default_goal] with no limits — calibrated so every bundled
    workload cycles with no flags at all. *)

val config_of_trigger : int -> config
(** The deprecated [--gc-trigger n] alias: [Fixed n], no limits.
    Reproduces the legacy allocation-count pacing bit-for-bit. *)

type state = Normal | Degraded | Hard_stop

val state_name : state -> string

exception Hard_limit of string
(** Raised by {!before_alloc} when an allocation would push the live
    heap over the hard limit.  The allocation is refused {e before} it
    happens, so the live size never exceeds the limit; the runner
    catches this, finishes the in-flight cycle (invariants still get
    checked) and reports the diagnostic. *)

type t

val create : ?collector:string -> ?increment_budget:int -> config -> t
(** [increment_budget] is the collector's per-increment mark budget —
    auto mode's yardstick for "this pause was negligible".  Raises
    [Invalid_argument] for contradictory configs (soft ≥ hard, goal ≤
    1.0). *)

val state : t -> state
val degraded : t -> bool
val trigger_units : t -> int
val goal : t -> float

val before_alloc : t -> Heap.t -> units:int -> unit
(** Admission control for one allocation of [units] heap units: may
    enter degraded mode, and raises {!Hard_limit} if the allocation
    would exceed the hard limit. *)

val note_assist : t -> unit
(** The allocating thread ran one increment of marking on the
    collector's behalf (degraded mode); reconciles with the
    interpreter's assist counter. *)

val should_start : t -> Heap.t -> bool
(** Should a cycle start now (the collector being idle)?  Immediately
    true while degraded. *)

val note_cycle_start : t -> Heap.t -> unit
(** Emit the [pacer.trigger] provenance event for a cycle start. *)

val note_cycle_end : t -> Heap.t -> at_step:int -> pause_work:int -> unit
(** Cycle bookkeeping: recompute the trigger from live-at-mark-end ×
    goal, run auto mode's feedback retune, and apply the
    degradation-exit hysteresis. *)

val at_safepoint : t -> Heap.t -> int
(** Poll the state machine at a safepoint; returns the number of
    {e extra} collector increments the runner must run now (degraded
    mode's shortened mark budgets; 0 while normal). *)

val note_hard_stop : t -> string -> unit

type stats = {
  p_state : state;
  p_goal : float;
  p_trigger_units : int;
  p_cycles : int;
  p_degraded_entries : int;
  p_degraded_cycles : int;
  p_assists : int;
  p_max_live_units : int;
  p_hard_stop : string option;
}

val stats : t -> stats
