(** Process-global allocation-site interner.  See sitemap.mli. *)

let names : (string, int) Hashtbl.t = Hashtbl.create 64
let rev : string array ref = ref (Array.make 64 "")
let next = ref 0

let intern (s : string) : int =
  match Hashtbl.find_opt names s with
  | Some id -> id
  | None ->
      let id = !next in
      if id >= Array.length !rev then begin
        let bigger = Array.make (2 * Array.length !rev) "" in
        Array.blit !rev 0 bigger 0 (Array.length !rev);
        rev := bigger
      end;
      !rev.(id) <- s;
      Hashtbl.add names s id;
      incr next;
      id

(* id 0 is reserved for allocations with no program-point provenance
   (chaos ballast, test scaffolding) so census rows always have a name *)
let runtime_site = intern "<runtime>"

let name (id : int) : string =
  if id < 0 || id >= !next then "<unknown>" else !rev.(id)

let count () = !next
