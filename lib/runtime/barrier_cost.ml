(** RISC-instruction cost model for write barriers.

    The paper (§1) reports that the Garbage-First SATB barrier's inline
    portion "first checks whether marking is in progress.  If so, it reads
    the pre-write value of the field, and checks whether that value is
    non-null; if so, it calls an out-of-line routine to add the value to a
    thread-local buffer.  These steps require between 9 and 12 RISC
    instructions for each barrier", while a card-marking incremental-update
    barrier "can cost as few as two extra instructions per pointer write"
    (§1, citing Hölzle).

    Unit = one RISC instruction.  Every interpreted bytecode also costs
    {!bytecode_units} units, giving an end-to-end denominator for the
    Table 2 throughput model. *)

type satb_mode =
  | No_barrier  (** all SATB barriers compiled out (Table 2 "no-barrier") *)
  | Conditional  (** normal barrier: check the marking flag first *)
  | Always_log
      (** Table 2 "always-log": the marking check is elided and non-null
          pre-values are always logged, simulating fully incrementalized
          marking (§4.5) *)

let string_of_satb_mode = function
  | No_barrier -> "no-barrier"
  | Conditional -> "conditional"
  | Always_log -> "always-log"

(* Component costs, in RISC instructions. *)
let check_marking = 3  (* load flag, compare, branch *)
let load_and_test_pre = 4  (* load pre-value, compare null, branch *)
let log_out_of_line = 5  (* spill, buffer store, bump index, overflow check *)

(** Cost of one executed SATB barrier. *)
let satb_cost ~(mode : satb_mode) ~(marking : bool) ~(pre_null : bool) : int =
  match mode with
  | No_barrier -> 0
  | Conditional ->
      if not marking then check_marking
      else
        check_marking + load_and_test_pre
        + if pre_null then 0 else log_out_of_line
  (* 3 / 7 / 12 — matching the paper's "between 9 and 12" when active *)
  | Always_log ->
      load_and_test_pre + if pre_null then 0 else log_out_of_line

(** Cost of one executed card-marking barrier (incremental update). *)
let card_mark_cost = 2

(** Per-half costs of the hybrid (Yuasa + Dijkstra) barrier.  The
    deletion half is the SATB shape: marking check, pre-value load/test,
    out-of-line shade.  The insertion half shares the marking check with
    the deletion half when both are compiled (the fused form), so on its
    own it costs a stack-scan-state load/test plus the shade call; the
    shade of an already-marked value stops at the test. *)
let hybrid_del_cost ~(marking : bool) ~(pre_null : bool) : int =
  satb_cost ~mode:Conditional ~marking ~pre_null

let hybrid_ins_cost ~(marking : bool) ~(stack_grey : bool) : int =
  if not marking then check_marking
  else check_marking + (2 (* load scan state, branch *))
       + if stack_grey then log_out_of_line else 0

(** Cost of the tracing-state check the retrace collector's compiler emits
    at a swap-elided store in place of the full SATB barrier: load the
    object's tracing state, compare, branch (§4.3).  The slow path — the
    out-of-line retrace enqueue — only runs while the object is being
    traced concurrently, unlike the SATB log which runs for the whole of
    marking. *)
let tracing_check_units = 3

(** Average cost of one interpreted bytecode in RISC instructions — the
    base work the barrier overhead is measured against. *)
let bytecode_units = 8
