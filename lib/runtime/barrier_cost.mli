(** RISC-instruction cost model for write barriers, calibrated to the
    paper's §1: the SATB barrier's inline path costs "between 9 and 12
    RISC instructions" while active; a card-marking barrier "as few as
    two". *)

type satb_mode =
  | No_barrier  (** Table 2 "no-barrier" *)
  | Conditional  (** normal barrier: marking check first *)
  | Always_log  (** Table 2 "always-log": check elided (§4.5) *)

val string_of_satb_mode : satb_mode -> string
val check_marking : int
val load_and_test_pre : int
val log_out_of_line : int
val satb_cost : mode:satb_mode -> marking:bool -> pre_null:bool -> int
val card_mark_cost : int

val hybrid_del_cost : marking:bool -> pre_null:bool -> int
(** Deletion (Yuasa) half of the hybrid barrier: the SATB shape. *)

val hybrid_ins_cost : marking:bool -> stack_grey:bool -> int
(** Insertion (Dijkstra) half: marking check, stack-scan-state test,
    shade call while the storing thread's stack is grey. *)

val tracing_check_units : int
(** Inline cost of the retrace collector's tracing-state check compiled at
    a swap-elided store (load state, compare, branch). *)

val bytecode_units : int
(** Average machine instructions per interpreted bytecode — the base work
    barrier overhead is measured against. *)
