(** The simulated heap: a growable store of objects and arrays with
    per-object mark state.  Reference fields and object-array elements
    start null, int fields/elements zero — the allocator-zeroing guarantee
    the pre-null analysis relies on. *)

type payload =
  | Fields of Value.t array  (** instance fields, declaration order *)
  | Ref_array of Value.t array
  | Int_array of int array

(** Per-object tracing progress within the current marking cycle, used by
    the retrace protocol ({!Retrace_gc}); [Being_traced] is observable for
    object arrays whose chunked scan spans collector increments. *)
type trace_state = Untraced | Being_traced | Traced

type obj = {
  id : int;
  cls : Jir.Types.class_name;  (** class, or element class for arrays *)
  payload : payload;
  mutable marked : bool;
  mutable born_during_mark : bool;
  mutable trace : trace_state;
  mutable dead : bool;  (** reclaimed by a sweep *)
}

type t = {
  mutable objects : obj array;
  mutable next_id : int;
  mutable live_count : int;
  mutable total_allocated : int;
  mutable live_units : int;
      (** units currently held by live objects — the pacer's notion of
          heap size (its goals and limits are expressed in units) *)
  mutable allocated_units : int;  (** units ever allocated *)
}

val create : unit -> t

val size_units : obj -> int
(** Heap units an object occupies: a two-unit header plus one per field
    or element. *)

val alloc_object : t -> Jir.Types.class_name -> n_fields:int -> obj
val alloc_ref_array : t -> Jir.Types.class_name -> len:int -> obj
val alloc_int_array : t -> len:int -> obj
val get : t -> int -> obj

val out_edges : obj -> int list
(** Reference values directly held by the object. *)

val iter_live : t -> (obj -> unit) -> unit
val clear_marks : t -> unit
val free : t -> obj -> unit
