(** The simulated heap: a growable store of objects and arrays with
    per-object mark state.  Reference fields and object-array elements
    start null, int fields/elements zero — the allocator-zeroing guarantee
    the pre-null analysis relies on. *)

type payload =
  | Fields of Value.t array  (** instance fields, declaration order *)
  | Ref_array of Value.t array
  | Int_array of int array

(** Per-object tracing progress within the current marking cycle, used by
    the retrace protocol ({!Retrace_gc}); [Being_traced] is observable for
    object arrays whose chunked scan spans collector increments. *)
type trace_state = Untraced | Being_traced | Traced

type obj = {
  id : int;
  cls : Jir.Types.class_name;  (** class, or element class for arrays *)
  site : int;  (** interned allocation site ({!Sitemap}); 0 = no provenance *)
  birth_cycle : int;  (** heap [gc_cycle] at allocation; age axis *)
  payload : payload;
  mutable marked : bool;
  mutable born_during_mark : bool;
  mutable trace : trace_state;
  mutable origin : int;
      (** why the most recent cycle marked this object (an [origin_*]
          constant below).  Deliberately {e not} reset by {!clear_marks}:
          the float accounting reads survivors' origins after the sweep,
          and the next cycle overwrites the field when it first marks the
          object. *)
  mutable dead : bool;  (** reclaimed by a sweep *)
}

(** Mark origins, stamped by the collectors on first marking and read by
    the float accounting after the sweep: [origin_trace] — reached from a
    root by ordinary tracing, [origin_log] — kept by a barrier log entry
    (SATB buffer, dirty card, deletion/insertion shade), [origin_alloc] —
    allocate-black, [origin_repair] — kept by a revocation repair or a
    retrace re-scan.  Children discovered while draining inherit the
    parent's origin: an object is "floated by the snapshot" even if it is
    three hops below the logged pre-value. *)

val origin_none : int

val origin_trace : int
val origin_log : int
val origin_alloc : int
val origin_repair : int

type t = {
  mutable objects : obj array;
  mutable next_id : int;
  mutable live_count : int;
  mutable total_allocated : int;
  mutable live_units : int;
      (** units currently held by live objects — the pacer's notion of
          heap size (its goals and limits are expressed in units) *)
  mutable allocated_units : int;  (** units ever allocated *)
  mutable gc_cycle : int;
      (** completed GC cycles, bumped by each collector's finish; the
          axis object ages ([gc_cycle - birth_cycle]) are measured on *)
}

val create : unit -> t

val size_units : obj -> int
(** Heap units an object occupies: a two-unit header plus one per field
    or element. *)

val alloc_object : ?site:int -> t -> Jir.Types.class_name -> n_fields:int -> obj
val alloc_ref_array : ?site:int -> t -> Jir.Types.class_name -> len:int -> obj
val alloc_int_array : ?site:int -> t -> len:int -> obj
val get : t -> int -> obj

val out_edges : obj -> int list
(** Reference values directly held by the object. *)

val iter_live : t -> (obj -> unit) -> unit
val clear_marks : t -> unit
val free : t -> obj -> unit
