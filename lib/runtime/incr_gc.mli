(** Incremental-update ("mostly parallel") concurrent marking with a
    card-marking write barrier — the Boehm-Demers-Shenker-style baseline
    the paper contrasts SATB against (§1).  The final stop-the-world
    pause must rescan roots and dirty cards and trace everything newly
    reachable — including every object allocated during the cycle — which
    is why its pauses dwarf SATB remark pauses (experiment E5). *)

val card_size : int

type phase = Idle | Marking

type cycle_report = {
  cycle : int;
  marked : int;
  dirty_cards : int;
  allocated_during : int;
  increments : int;
  final_pause_work : int;
  rescan_rounds : int;
  swept : int;
  violations : int;  (** reachable-at-end objects left unmarked *)
}

type t = {
  heap : Heap.t;
  roots : unit -> int list;
  steps_per_increment : int;
  mutable phase : phase;
  mutable gray : int list;
  mutable dirty : Oracle.Iset.t;
  mutable dirtied_total : int;
  mutable allocated_during : int;
  mutable increments : int;
  mutable boost : int;
      (** mark-budget multiplier; >1 while the pacer is degraded *)
  mutable force_black : bool;
      (** degraded mode: allocate black with a birth-dirtied card instead
          of the usual allocate-white *)
  mutable cycles : int;
  mutable reports : cycle_report list;
  mutable sweep_enabled : bool;
}

val create :
  ?steps_per_increment:int ->
  ?sweep:bool ->
  Heap.t ->
  roots:(unit -> int list) ->
  t

val is_marking : t -> bool
val start_cycle : t -> unit
val log_ref_store : t -> obj:int -> pre:Value.t -> unit
val on_alloc : t -> Heap.obj -> unit
val step : t -> unit
val quiescent : t -> bool
val finish_cycle : t -> cycle_report
val hooks : t -> Gc_hooks.t
