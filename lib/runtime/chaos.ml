(** Seeded fault injection for the guard/revocation subsystem.

    A chaos {e plan} is a deterministic list of faults the runner injects
    at safepoints:

    - {e late spawn}: a second mutator appears mid-run in a program
      analyzed as single-mutator, then performs stores through
      [Single_mutator]-guarded elided sites ({!Interp.external_guarded_store}).
      With revocation enabled the spawn announcement revokes the
      dependent elisions before any damage store executes; with
      [--no-revoke] the stores go unlogged and the oracle catches the
      broken snapshot.
    - {e marker preemption}: collector increments are withheld for a
      stretch once the heap reaches a chosen index, starving the marker
      so mutator/marker races get maximal surface.
    - {e heap pressure}: an emergency remark is forced mid-cycle (the
      collector must finish from whatever state it is in).
    - {e barrier skip}: a store bypasses the barrier machinery entirely
      ({!Interp.external_unbarriered_store}) — deliberately unsound, a
      self-test that the snapshot oracle still catches genuinely missing
      barriers (checker-of-the-checker).
    - {e adversarial pacing}: the plan may override the scheduler quantum
      and collector period.

    Damage stores pick their victims by in-edge counting: a live,
    unmarked, pre-existing, non-root object held by exactly one
    reference is guaranteed to be in the marking snapshot (references
    cannot be forged, so reachable-now ∧ born-before-mark ⇒ reachable at
    mark start), and overwriting that one reference without logging it
    severs the object from both mutator and marker. *)

type fault =
  | Late_spawn of { at_instr : int; stores : int }
      (** announce a second mutator once [at_instr] instructions have
          run; perform [stores] guarded damage stores at later
          safepoints (one per safepoint, only while marking) *)
  | Preempt_marker of { at_alloc : int; skips : int }
      (** once the heap has allocated [at_alloc] objects, withhold the
          next [skips] collector increments *)
  | Heap_pressure of { at_alloc : int }
      (** once the heap reaches [at_alloc] allocations, force an
          emergency remark of the in-flight cycle *)
  | Barrier_skip of { at_instr : int; victims : int }
      (** from [at_instr] on, overwrite the sole reference to [victims]
          snapshot objects with no barrier at all *)
  | Class_load of { at_instr : int }
      (** announce a class load once [at_instr] instructions have run:
          the closed-world assumption behind the interprocedural callee
          summaries fails, and summary-dependent elisions revoke *)
  | Alloc_spike of { at_instr : int; count : int }
      (** once [at_instr] instructions have run, allocate [count] ballast
          objects in one burst ({!Interp.external_alloc}) — a sudden
          allocation spike the pacer must absorb (early trigger,
          degraded mode, or a clean hard-limit abort) *)
  | Mem_pressure of { at_alloc : int; per_safepoint : int; total : int }
      (** once the heap has allocated [at_alloc] objects, allocate
          [per_safepoint] ballast objects at every safepoint until
          [total] have been injected — a sustained memory-pressure ramp
          that holds the pacer near its limits *)

type plan = {
  seed : int;
  faults : fault list;
  quantum : int option;  (** adversarial scheduler pacing override *)
  gc_period : int option;  (** collector-period override *)
}

type stats = {
  spawns : int;  (** second-mutator announcements *)
  damage_stores : int;  (** guarded stores performed by the late spawn *)
  skipped_barriers : int;  (** barrier-skip stores performed *)
  preempted_increments : int;  (** collector increments withheld *)
  pressure_remarks : int;  (** emergency remarks forced *)
  class_loads : int;  (** class-load announcements *)
  spike_allocs : int;  (** ballast objects injected by allocation spikes *)
  ramp_allocs : int;  (** ballast objects injected by pressure ramps *)
}

(** What the runner must do at this safepoint. *)
type action = { defer_increment : bool; force_remark : bool }

let no_action = { defer_increment = false; force_remark = false }

(* armed (mutable) per-fault state *)
type armed =
  | Aspawn of { at_instr : int; mutable stores_left : int; mutable announced : bool }
  | Apreempt of { at_alloc : int; mutable skips_left : int }
  | Apressure of { at_alloc : int; mutable fired : bool }
  | Askip of { at_instr : int; mutable victims_left : int }
  | Aload of { at_instr : int; mutable loaded : bool }
  | Aspike of { at_instr : int; count : int; mutable fired : bool }
  | Aramp of { at_alloc : int; per_safepoint : int; mutable left : int }

type t = {
  plan : plan;
  armed : armed list;
  rand : int -> int;
  mutable spawns : int;
  mutable damage_stores : int;
  mutable skipped_barriers : int;
  mutable preempted_increments : int;
  mutable pressure_remarks : int;
  mutable class_loads : int;
  mutable spike_allocs : int;
  mutable ramp_allocs : int;
}

(** Same deterministic LCG as {!Runner}'s quantum jitter. *)
let lcg seed =
  let state = ref (if seed = 0 then 1 else seed) in
  fun bound ->
    state := (!state * 1103515245) + 12345;
    let v = (!state lsr 16) land 0x3FFF in
    1 + (v mod bound)

let create (plan : plan) : t =
  {
    plan;
    armed =
      List.map
        (function
          | Late_spawn { at_instr; stores } ->
              Aspawn { at_instr; stores_left = stores; announced = false }
          | Preempt_marker { at_alloc; skips } ->
              Apreempt { at_alloc; skips_left = skips }
          | Heap_pressure { at_alloc } -> Apressure { at_alloc; fired = false }
          | Barrier_skip { at_instr; victims } ->
              Askip { at_instr; victims_left = victims }
          | Class_load { at_instr } -> Aload { at_instr; loaded = false }
          | Alloc_spike { at_instr; count } ->
              Aspike { at_instr; count; fired = false }
          | Mem_pressure { at_alloc; per_safepoint; total } ->
              Aramp { at_alloc; per_safepoint; left = total })
        plan.faults;
    rand = lcg (plan.seed lxor 0x5bd1e995);
    spawns = 0;
    damage_stores = 0;
    skipped_barriers = 0;
    preempted_increments = 0;
    pressure_remarks = 0;
    class_loads = 0;
    spike_allocs = 0;
    ramp_allocs = 0;
  }

(** A deterministic benign plan for [--chaos <seed>]: late spawn plus
    preemption, pressure, and pacing in a seed-dependent mix.  Never
    includes a barrier-skip fault — those are only built explicitly by
    the self-tests, since they are unsound by design. *)
let of_seed (seed : int) : plan =
  let r = lcg seed in
  let faults =
    [ Late_spawn { at_instr = 500 + r 4000; stores = 1 + r 3 } ]
    @ (if r 4 > 1 then
         [ Preempt_marker { at_alloc = 32 + r 512; skips = 2 + r 12 } ]
       else [])
    @ (if r 4 > 1 then [ Heap_pressure { at_alloc = 64 + r 768 } ] else [])
    @ (if r 4 > 1 then [ Class_load { at_instr = 300 + r 3000 } ] else [])
    @ if r 4 = 1 then
        [ Alloc_spike { at_instr = 400 + r 3000; count = 8 + r 56 } ]
      else []
  in
  {
    seed;
    faults;
    quantum = (if r 3 = 1 then Some (5 + r 60) else None);
    gc_period = (if r 3 = 1 then Some (4 + r 48) else None);
  }

let plan (t : t) : plan = t.plan

let stats (t : t) : stats =
  {
    spawns = t.spawns;
    damage_stores = t.damage_stores;
    skipped_barriers = t.skipped_barriers;
    preempted_increments = t.preempted_increments;
    pressure_remarks = t.pressure_remarks;
    class_loads = t.class_loads;
    spike_allocs = t.spike_allocs;
    ramp_allocs = t.ramp_allocs;
  }

(* ---- victim selection -------------------------------------------------- *)

module Iset = Oracle.Iset

(** Find [(owner, slot)] pairs whose overwrite-with-null severs the sole
    reference to a live, unmarked, pre-existing, non-root object — a
    guaranteed snapshot casualty if the store goes unlogged. *)
let find_victims (m : Interp.t) : (int * int) list =
  let heap = m.Interp.heap in
  let roots = Interp.roots m in
  let root_set = List.fold_left (fun s id -> Iset.add id s) Iset.empty roots in
  let reach = Oracle.reachable heap roots in
  (* in-edge count and (owner, slot) of the last seen in-edge, among
     reachable objects only *)
  let in_edges : (int, int * (int * int)) Hashtbl.t = Hashtbl.create 256 in
  Iset.iter
    (fun id ->
      let o = Heap.get heap id in
      if not o.Heap.dead then
        let slots =
          match o.Heap.payload with
          | Heap.Fields fs -> Some fs
          | Heap.Ref_array es -> Some es
          | Heap.Int_array _ -> None
        in
        match slots with
        | None -> ()
        | Some slots ->
            Array.iteri
              (fun i v ->
                match v with
                | Value.Ref tgt ->
                    let n, _ =
                      Option.value
                        (Hashtbl.find_opt in_edges tgt)
                        ~default:(0, (0, 0))
                    in
                    Hashtbl.replace in_edges tgt (n + 1, (id, i))
                | Value.Null | Value.Int _ -> ())
              slots)
    reach;
  Hashtbl.fold
    (fun tgt (n, (owner, slot)) acc ->
      if n = 1 && not (Iset.mem tgt root_set) then
        let x = Heap.get heap tgt in
        if
          (not x.Heap.dead) && (not x.Heap.marked)
          && not x.Heap.born_during_mark
        then (owner, slot) :: acc
        else acc
      else acc)
    in_edges []

(** Sever one victim's sole in-edge via [store].  Returns [true] if a
    victim existed. *)
let damage_one (t : t) (m : Interp.t)
    ~(store : obj:int -> idx:int -> v:Value.t -> unit) : bool =
  match find_victims m with
  | [] -> false
  | victims ->
      (* deterministic but seed-dependent choice *)
      let n = List.length victims in
      let owner, slot = List.nth victims (t.rand n - 1) in
      store ~obj:owner ~idx:slot ~v:Value.Null;
      true

(* ---- the safepoint hook ------------------------------------------------ *)

(* Each injected fault bumps a chaos.* counter and emits a chaos.fault
   event naming the fault kind, so a trace shows what was injected when
   (and the fuzz suite can reconcile telemetry against [stats]). *)
let c_spawns = Telemetry.counter "chaos.spawns"
let c_damage = Telemetry.counter "chaos.damage_stores"
let c_skips = Telemetry.counter "chaos.skipped_barriers"
let c_preempts = Telemetry.counter "chaos.preempted_increments"
let c_pressure = Telemetry.counter "chaos.pressure_remarks"
let c_loads = Telemetry.counter "chaos.class_loads"
let c_spike = Telemetry.counter "chaos.spike_allocs"
let c_ramp = Telemetry.counter "chaos.ramp_allocs"

let fault_event (kind : string) (fields : (string * Telemetry.json) list) :
    unit =
  (* flight-recorder twin: fault kind interned, first numeric field
     (at_instr / at_alloc) as the payload *)
  if Flight.enabled () then begin
    let payload =
      match
        List.find_opt
          (fun (_, v) -> match v with Telemetry.Int _ -> true | _ -> false)
          fields
      with
      | Some (_, Telemetry.Int n) -> n
      | _ -> 0
    in
    Flight.record Flight.Chaos_fault ~a:(Flight.intern kind) ~b:payload ~c:0
  end;
  Telemetry.emit "chaos.fault" (("fault", Telemetry.Str kind) :: fields)

let at_safepoint (t : t) (m : Interp.t) : action =
  let marking = m.Interp.gc.Gc_hooks.is_marking () in
  let allocated = m.Interp.heap.Heap.total_allocated in
  let instr = m.Interp.instr_count in
  let defer = ref false in
  let remark = ref false in
  List.iter
    (function
      | Aspawn a ->
          if (not a.announced) && instr >= a.at_instr then begin
            (* the second mutator exists from here on; the runner applies
               the resulting revocation before this safepoint ends, so
               the damage stores below (later safepoints) meet patched
               sites when revocation is enabled *)
            a.announced <- true;
            t.spawns <- t.spawns + 1;
            Telemetry.incr c_spawns;
            fault_event "late-spawn" [ ("at_instr", Telemetry.Int instr) ];
            Interp.note_second_mutator m
          end
          else if a.announced && a.stores_left > 0 && marking then
            if
              damage_one t m ~store:(fun ~obj ~idx ~v ->
                  Interp.external_guarded_store m ~obj ~idx ~v)
            then begin
              a.stores_left <- a.stores_left - 1;
              t.damage_stores <- t.damage_stores + 1;
              Telemetry.incr c_damage;
              fault_event "damage-store" [ ("at_instr", Telemetry.Int instr) ]
            end
      | Apreempt a ->
          if allocated >= a.at_alloc && a.skips_left > 0 && marking then begin
            a.skips_left <- a.skips_left - 1;
            t.preempted_increments <- t.preempted_increments + 1;
            Telemetry.incr c_preempts;
            fault_event "preempt-marker" [ ("at_alloc", Telemetry.Int allocated) ];
            defer := true
          end
      | Apressure a ->
          if (not a.fired) && allocated >= a.at_alloc && marking then begin
            a.fired <- true;
            t.pressure_remarks <- t.pressure_remarks + 1;
            Telemetry.incr c_pressure;
            fault_event "heap-pressure" [ ("at_alloc", Telemetry.Int allocated) ];
            remark := true
          end
      | Askip a ->
          if a.victims_left > 0 && instr >= a.at_instr && marking then
            if
              damage_one t m ~store:(fun ~obj ~idx ~v ->
                  Interp.external_unbarriered_store m ~obj ~idx ~v)
            then begin
              a.victims_left <- a.victims_left - 1;
              t.skipped_barriers <- t.skipped_barriers + 1;
              Telemetry.incr c_skips;
              fault_event "barrier-skip" [ ("at_instr", Telemetry.Int instr) ]
            end
      | Aload a ->
          if (not a.loaded) && instr >= a.at_instr then begin
            a.loaded <- true;
            t.class_loads <- t.class_loads + 1;
            Telemetry.incr c_loads;
            fault_event "class-load" [ ("at_instr", Telemetry.Int instr) ];
            Interp.note_class_load m
          end
      | Aspike a ->
          if (not a.fired) && instr >= a.at_instr then begin
            a.fired <- true;
            t.spike_allocs <- t.spike_allocs + a.count;
            Telemetry.incr c_spike ~by:a.count;
            fault_event "alloc-spike"
              [ ("at_instr", Telemetry.Int instr);
                ("count", Telemetry.Int a.count) ];
            (* may raise Pacer.Hard_limit — propagated to the runner,
               which must abort cleanly, exactly as mutator pressure
               would *)
            Interp.external_alloc m ~count:a.count
          end
      | Aramp a ->
          if a.left > 0 && allocated >= a.at_alloc then begin
            let n = min a.per_safepoint a.left in
            a.left <- a.left - n;
            t.ramp_allocs <- t.ramp_allocs + n;
            Telemetry.incr c_ramp ~by:n;
            fault_event "mem-pressure"
              [ ("at_alloc", Telemetry.Int allocated);
                ("count", Telemetry.Int n) ];
            Interp.external_alloc m ~count:n
          end)
    t.armed;
  { defer_increment = !defer; force_remark = !remark }
