(** The mutator/collector interface: the interpreter calls these hooks,
    collectors implement them.  [log_ref_store] is the write-barrier body
    and runs only at sites whose barrier the analysis kept. *)

type t = {
  name : string;
  is_marking : unit -> bool;
  log_ref_store : obj:int -> pre:Value.t -> unit;
      (** [obj] is the written object's id, [-1] for static stores *)
  on_unlogged_store : obj:int -> unit;
      (** tracing-state check at swap-elided sites: no pre-value is
          logged, but a retrace collector may need to re-scan [obj].
          No-op for collectors without the protocol. *)
  on_alloc : Heap.obj -> unit;
  step : unit -> unit;  (** one bounded increment of collector work *)
}

val none : t
(** No collector: barriers are pure instrumentation. *)
