(** The mutator/collector interface: the interpreter calls these hooks,
    collectors implement them.  [log_ref_store] is the write-barrier body
    and runs only at sites whose barrier the analysis kept. *)

val pressure_boost : int
(** Mark-budget multiplier applied by every collector while the pacer is
    degraded. *)

type caps = {
  retrace_protocol : bool;
      (** honours [on_unlogged_store]; swap elision is sound *)
  descending_scan : bool;
      (** object arrays scanned highest-index-first; move-down is sound *)
  insertion_half : bool;
      (** consumes [log_ins_store] and re-scans the [on_revoke] repair
          set at remark; insertion-half elision is sound *)
}

type t = {
  name : string;
  caps : caps;  (** which elision assumptions this collector satisfies *)
  is_marking : unit -> bool;
  log_ref_store : obj:int -> pre:Value.t -> unit;
      (** [obj] is the written object's id, [-1] for static stores *)
  log_ins_store : tid:int -> nv:Value.t -> unit;
      (** Dijkstra insertion half of a hybrid barrier: shade [nv] while
          thread [tid]'s stack is grey.  No-op for pure-deletion
          collectors. *)
  on_unlogged_store : obj:int -> unit;
      (** tracing-state check at swap-elided sites: no pre-value is
          logged, but a retrace collector may need to re-scan [obj].
          No-op for collectors without the protocol. *)
  on_revoke : objs:int list -> unit;
      (** snapshot repair after elision revocation: [objs] are ids of
          objects written through now-revoked sites this cycle.  Retrace
          enqueues them; plain SATB restarts the mark from a fresh
          snapshot. *)
  on_alloc : Heap.obj -> unit;
  on_pressure : degraded:bool -> unit;
      (** pacer degradation entry/exit: while degraded, collectors boost
          their per-increment mark budget, and collectors that allocate
          white (incremental update) force allocate-black *)
  step : unit -> unit;  (** one bounded increment of collector work *)
}

val none : t
(** No collector: barriers are pure instrumentation. *)
