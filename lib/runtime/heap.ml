(** The simulated heap: a growable store of objects and arrays with
    per-object mark state for the concurrent collectors.

    Objects' reference fields and object-array elements start null and int
    fields/elements start zero, exactly the allocator-zeroing guarantee the
    paper's pre-null analysis relies on. *)

type payload =
  | Fields of Value.t array  (** instance fields, in declaration order *)
  | Ref_array of Value.t array
  | Int_array of int array

(** Per-object tracing progress, maintained by collectors that expose it
    to the mutator (the retrace protocol of {!Retrace_gc}).  [Being_traced]
    is observable for object arrays, whose scan spans several collector
    increments; plain objects go straight to [Traced]. *)
type trace_state = Untraced | Being_traced | Traced

type obj = {
  id : int;
  cls : Jir.Types.class_name;  (** class, or element class for arrays *)
  site : int;  (** interned allocation site ({!Sitemap}) *)
  birth_cycle : int;  (** value of [gc_cycle] when allocated *)
  payload : payload;
  mutable marked : bool;
  mutable born_during_mark : bool;
      (** allocated while marking was in progress (relevant to both
          collectors, with opposite consequences) *)
  mutable trace : trace_state;
      (** scan progress within the current marking cycle *)
  mutable origin : int;
      (** why the most recent cycle marked this object (an [origin_*]
          constant); survives [clear_marks] so the float accounting can
          read it after the sweep — the next cycle overwrites it *)
  mutable dead : bool;  (** reclaimed by a sweep *)
}

(* Mark origins.  Kept as plain ints (not a variant) so collectors can
   stamp them on the mark fast path without boxing or a match. *)
let origin_none = 0
let origin_trace = 1
let origin_log = 2
let origin_alloc = 3
let origin_repair = 4

type t = {
  mutable objects : obj array;  (** slot i holds object with id i (or dummy) *)
  mutable next_id : int;
  mutable live_count : int;
  mutable total_allocated : int;
  mutable live_units : int;
  mutable allocated_units : int;
  mutable gc_cycle : int;  (** completed GC cycles; object age axis *)
}

(** Size of an object in heap units: a two-unit header plus one unit per
    field or element.  The pacer's heap-goal, soft and hard limits are
    all expressed in these units, so "bytes" of pressure scale with the
    payloads a workload allocates rather than with object count alone. *)
let size_units (o : obj) : int =
  2
  +
  match o.payload with
  | Fields vs | Ref_array vs -> Array.length vs
  | Int_array es -> Array.length es

let dummy =
  {
    id = -1;
    cls = "";
    site = 0;
    birth_cycle = 0;
    payload = Fields [||];
    marked = false;
    born_during_mark = false;
    trace = Untraced;
    origin = origin_none;
    dead = true;
  }

let create () =
  {
    objects = Array.make 1024 dummy;
    next_id = 0;
    live_count = 0;
    total_allocated = 0;
    live_units = 0;
    allocated_units = 0;
    gc_cycle = 0;
  }

let grow h =
  if h.next_id >= Array.length h.objects then begin
    let bigger = Array.make (2 * Array.length h.objects) dummy in
    Array.blit h.objects 0 bigger 0 (Array.length h.objects);
    h.objects <- bigger
  end

let alloc ?(site = 0) (h : t) (cls : Jir.Types.class_name) (payload : payload)
    : obj =
  grow h;
  let o =
    {
      id = h.next_id;
      cls;
      site;
      birth_cycle = h.gc_cycle;
      payload;
      marked = false;
      born_during_mark = false;
      trace = Untraced;
      origin = origin_none;
      dead = false;
    }
  in
  h.objects.(h.next_id) <- o;
  h.next_id <- h.next_id + 1;
  h.live_count <- h.live_count + 1;
  h.total_allocated <- h.total_allocated + 1;
  let u = size_units o in
  h.live_units <- h.live_units + u;
  h.allocated_units <- h.allocated_units + u;
  o

let alloc_object ?site h cls ~n_fields =
  alloc ?site h cls (Fields (Array.make n_fields Value.Null))

let alloc_ref_array ?site h cls ~len =
  alloc ?site h cls (Ref_array (Array.make len Value.Null))

let alloc_int_array ?site h ~len =
  alloc ?site h "int[]" (Int_array (Array.make len 0))

let get (h : t) (id : int) : obj =
  if id < 0 || id >= h.next_id then invalid_arg "Heap.get: bad id";
  h.objects.(id)

(** Reference values directly held by an object (outgoing edges). *)
let out_edges (o : obj) : int list =
  match o.payload with
  | Fields vs | Ref_array vs ->
      Array.to_list vs
      |> List.filter_map (function Value.Ref id -> Some id | _ -> None)
  | Int_array _ -> []

let iter_live (h : t) (f : obj -> unit) =
  for id = 0 to h.next_id - 1 do
    let o = h.objects.(id) in
    if not o.dead then f o
  done

let clear_marks (h : t) =
  iter_live h (fun o ->
      o.marked <- false;
      o.born_during_mark <- false;
      o.trace <- Untraced)

(** Reclaim an object (sweep); accessing it afterwards is a bug that we
    make loud by poisoning its payload. *)
let free (h : t) (o : obj) =
  if not o.dead then begin
    o.dead <- true;
    h.live_count <- h.live_count - 1;
    h.live_units <- h.live_units - size_units o
  end
