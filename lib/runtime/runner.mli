(** Deterministic execution harness: interleaves mutator threads and
    collector increments, triggers and finishes marking cycles, and
    produces a run report.  Deterministic for a given seed — the
    soundness property tests sweep seeds to explore adversarial
    mutator/collector interleavings. *)

type gc_choice =
  | No_gc
  | Satb of { steps_per_increment : int; trigger_allocs : int }
  | Incr of { steps_per_increment : int; trigger_allocs : int }
  | Retrace of { steps_per_increment : int; trigger_allocs : int }
  | Hybrid of { steps_per_increment : int; trigger_allocs : int }

val make_satb :
  ?steps_per_increment:int -> ?trigger_allocs:int -> unit -> gc_choice

val make_incr :
  ?steps_per_increment:int -> ?trigger_allocs:int -> unit -> gc_choice

val make_retrace :
  ?steps_per_increment:int -> ?trigger_allocs:int -> unit -> gc_choice

val make_hybrid :
  ?steps_per_increment:int -> ?trigger_allocs:int -> unit -> gc_choice

val caps_of_choice : gc_choice -> Gc_hooks.caps
(** The capability record the chosen collector is expected to expose —
    the single truth flag-level compatibility checks and the run-start
    assertion both consult.  {!run} raises [Invalid_argument] if the
    installed collector's capabilities disagree. *)

type gc_summary = {
  cycles : int;
  total_violations : int;
  final_pause_works : int list;  (** per cycle, oldest first *)
  pause_steps : int list;
      (** mutator instruction count at which each final pause began,
          parallel to [final_pause_works] — the profiler's MMU/pause
          timeline (also emitted as [gc.pause] trace events) *)
  mark_increments : int list;
  logged_or_dirtied : int list;
      (** SATB log entries / dirty cards, per cycle *)
  retraced : int list;
      (** forced re-scans, per cycle; all zero except under [Retrace] *)
}

type report = {
  machine : Interp.t;
  steps : int;
  dyn : Interp.dyn_stats;
  cost_units : int;
  barrier_units : int;
  gc : gc_summary option;
  thread_errors : (int * string) list;
}

val run :
  ?cfg:Interp.config ->
  ?gc:gc_choice ->
  ?quantum:int ->
  ?seed:int ->
  ?gc_period:int ->
  ?chaos:Chaos.t ->
  ?retrace_budget:int ->
  Jir.Program.t ->
  entry:Jir.Types.method_ref ->
  report
(** [chaos] injects the given fault plan at safepoints (its plan may
    also override [quantum]/[gc_period]); [retrace_budget] bounds the
    retrace collector's per-cycle re-scan queue (see {!Retrace_gc}).
    Startup capability guards and mid-run guard failures revoke
    dependent elisions when [cfg] wires a guard table. *)
