(** Deterministic execution harness: interleaves mutator threads and
    collector increments, triggers and finishes marking cycles, and
    produces a run report.  Deterministic for a given seed — the
    soundness property tests sweep seeds to explore adversarial
    mutator/collector interleavings. *)

type gc_choice =
  | No_gc
  | Satb of { steps_per_increment : int; pacing : Pacer.config }
  | Incr of { steps_per_increment : int; pacing : Pacer.config }
  | Retrace of { steps_per_increment : int; pacing : Pacer.config }
  | Hybrid of { steps_per_increment : int; pacing : Pacer.config }

(** The [make_*] constructors take {e either} [?trigger_allocs] — the
    deprecated fixed-allocation-count alias ([Pacer.Fixed n], bit-for-bit
    the legacy behaviour) — or [?pacing], the full pacer configuration;
    passing both raises [Invalid_argument].  With neither,
    {!Pacer.default_config}'s heap-growth goal paces the run. *)

val make_satb :
  ?steps_per_increment:int ->
  ?trigger_allocs:int ->
  ?pacing:Pacer.config ->
  unit ->
  gc_choice

val make_incr :
  ?steps_per_increment:int ->
  ?trigger_allocs:int ->
  ?pacing:Pacer.config ->
  unit ->
  gc_choice

val make_retrace :
  ?steps_per_increment:int ->
  ?trigger_allocs:int ->
  ?pacing:Pacer.config ->
  unit ->
  gc_choice

val make_hybrid :
  ?steps_per_increment:int ->
  ?trigger_allocs:int ->
  ?pacing:Pacer.config ->
  unit ->
  gc_choice

val caps_of_choice : gc_choice -> Gc_hooks.caps
(** The capability record the chosen collector is expected to expose —
    the single truth flag-level compatibility checks and the run-start
    assertion both consult.  {!run} raises [Invalid_argument] if the
    installed collector's capabilities disagree. *)

type gc_summary = {
  cycles : int;
  total_violations : int;
  final_pause_works : int list;  (** per cycle, oldest first *)
  pause_steps : int list;
      (** mutator instruction count at which each final pause began,
          parallel to [final_pause_works] — the profiler's MMU/pause
          timeline (also emitted as [gc.pause] trace events) *)
  mark_increments : int list;
  logged_or_dirtied : int list;
      (** SATB log entries / dirty cards, per cycle *)
  retraced : int list;
      (** forced re-scans, per cycle; all zero except under [Retrace] *)
}

type report = {
  machine : Interp.t;
  steps : int;
  dyn : Interp.dyn_stats;
  cost_units : int;
  barrier_units : int;
  gc : gc_summary option;
  pacer : Pacer.stats option;
      (** pacing outcome — trigger, degraded-cycle and assist counts,
          peak live units; [None] only under [No_gc] *)
  hard_stop : string option;
      (** the hard heap limit fired: the run was aborted cleanly with
          this diagnostic (the in-flight cycle was still finished and
          checked) *)
  thread_errors : (int * string) list;
  loop_s : float;
      (** wall time of the scheduling loop alone — mutator slices plus
          safepoint/GC work, excluding machine construction and (for the
          threaded engine) up-front method compilation.  The
          steady-state number benchmarks compare across engines. *)
  gc_s : float;
      (** portion of [loop_s] spent inside safepoint work — collector
          increments, pauses, pacing, revocation — which is
          engine-invariant by construction (the engines share every GC
          hook).  [loop_s -. gc_s] is mutator time. *)
}

val run :
  ?cfg:Interp.config ->
  ?gc:gc_choice ->
  ?engine:[ `Interp | `Threaded ] ->
  ?quantum:int ->
  ?seed:int ->
  ?gc_period:int ->
  ?chaos:Chaos.t ->
  ?retrace_budget:int ->
  ?observer:(Interp.t -> unit) ->
  Jir.Program.t ->
  entry:Jir.Types.method_ref ->
  report
(** [engine] selects the execution substrate: [`Interp] (default), the
    step-accurate tree-walking interpreter, or [`Threaded], the
    direct-threaded compiled engine ({!Exec}) — same safepoint cadence,
    counters, collectors and chaos faults, ≈10x the steps/sec.
    [chaos] injects the given fault plan at safepoints (its plan may
    also override [quantum]/[gc_period]); [retrace_budget] bounds the
    retrace collector's per-cycle re-scan queue (see {!Retrace_gc}).
    Startup capability guards and mid-run guard failures revoke
    dependent elisions when [cfg] wires a guard table.

    [observer] is the heap observatory's cycle-end hook: passing one
    arms {!Interp.t.track_heap} before the first instruction, installs a
    flight-recorder census source (so a hard-limit dump flushes the
    in-flight cycle's heap state), and invokes the hook after every
    completed cycle's final pause — survivors still carry their mark
    origins and the cycle's elided-store log has not been reset yet. *)
