(** Snapshot-at-the-beginning (SATB) concurrent marking (Yuasa-style, as
    in the Garbage-First collector the paper instruments).

    The collector marks the objects reachable in a logical snapshot taken
    when marking starts; the mutator's barrier logs pre-write values into
    mutator-local buffers handed over when full; objects allocated during
    marking are implicitly marked ("allocated black").  The remark pause
    only drains leftover buffers — the short-pause advantage measured in
    experiment E5.

    Object arrays are scanned incrementally (bounded chunks) and, by
    default, in {e descending} index order — the contract the §4.3
    move-down elision depends on.

    Every cycle is verified against the {!Oracle}: a wrongly removed
    barrier that unlinked an unvisited snapshot object surfaces as a
    violation. *)

type phase = Idle | Marking
type gray = Whole of int | Array_tail of { id : int; upto : int }
type scan_direction = Descending | Ascending

type cycle_report = {
  cycle : int;
  snapshot_size : int;
  marked : int;
  logged : int;
  allocated_during : int;
  increments : int;
  final_pause_work : int;  (** objects processed inside the remark pause *)
  swept : int;
  restarts : int;  (** revocation-triggered fresh-snapshot restarts *)
  violations : int;  (** snapshot-reachable objects left unmarked *)
}

type t = {
  heap : Heap.t;
  roots : unit -> int list;
  steps_per_increment : int;
  buffer_capacity : int;
  array_chunk : int;
  direction : scan_direction;
  mutable phase : phase;
  mutable gray : gray list;
  mutable satb_buffer : int list;
  mutable local_buffer : int list;
  mutable local_count : int;
  mutable snapshot : Oracle.Iset.t;
  mutable logged : int;
  mutable allocated_during : int;
  mutable increments : int;
  mutable boost : int;
      (** mark-budget multiplier; >1 while the pacer is degraded *)
  mutable restarts : int;
  mutable cycles : int;
  mutable reports : cycle_report list;
  mutable sweep_enabled : bool;
}

val create :
  ?steps_per_increment:int ->
  ?buffer_capacity:int ->
  ?array_chunk:int ->
  ?direction:scan_direction ->
  ?sweep:bool ->
  Heap.t ->
  roots:(unit -> int list) ->
  t

val is_marking : t -> bool
val start_cycle : t -> unit

(** Snapshot repair after elision revocation: discard the cycle's
    progress and restart against a fresh snapshot taken now.  No-op when
    idle. *)
val restart_mark : t -> unit
val log_ref_store : t -> obj:int -> pre:Value.t -> unit
val on_alloc : t -> Heap.obj -> unit
val step : t -> unit

val quiescent : t -> bool
(** Has the concurrent phase exhausted its visible work?  (Mutator-local
    buffer remnants are only seen by {!finish_cycle}.) *)

val finish_cycle : t -> cycle_report
(** The remark pause: flush buffer remnants, drain, verify the snapshot
    invariant, sweep. *)

val hooks : t -> Gc_hooks.t
