(** Pause-time percentiles and minimum mutator utilization (MMU) over
    sliding windows — the pure math shared by the profiler
    ([Profile.Stats] re-exports this module) and the pacer's feedback
    mode, which sits below [lib/profile] in the dependency order.

    Everything here is exact and deterministic: the runtime is a
    deterministic interpreter, so the timeline is measured in mutator
    instruction steps and pauses in pause-work units (objects processed
    inside the stop-the-world pause), one work unit costed at one step. *)

(* ---- percentiles -------------------------------------------------------- *)

type dist = {
  d_count : int;
  d_total : int;
  d_p50 : int;
  d_p90 : int;
  d_p99 : int;
  d_max : int;
}

(** Nearest-rank percentile of a sorted array. *)
let rank_of (sorted : int array) (p : float) : int =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let percentile (xs : int list) (p : float) : int =
  let a = Array.of_list xs in
  Array.sort compare a;
  rank_of a p

let dist_of (xs : int list) : dist =
  let a = Array.of_list xs in
  Array.sort compare a;
  {
    d_count = Array.length a;
    d_total = Array.fold_left ( + ) 0 a;
    d_p50 = rank_of a 50.0;
    d_p90 = rank_of a 90.0;
    d_p99 = rank_of a 99.0;
    d_max = (if Array.length a = 0 then 0 else a.(Array.length a - 1));
  }

(* ---- minimum mutator utilization ---------------------------------------- *)

type pause = { at : int; work : int }
type timeline = { steps : int; pauses : pause list }

let total_time (t : timeline) : int =
  t.steps + List.fold_left (fun a p -> a + p.work) 0 t.pauses

(** Pause intervals on the {e combined} timeline, where each pause
    stretches time: pause [i] occupies
    [[at_i + sum of earlier works, at_i + sum of works through i)]. *)
let intervals (t : timeline) : (int * int) list =
  let shift = ref 0 in
  List.map
    (fun p ->
      let s = p.at + !shift in
      shift := !shift + p.work;
      (s, s + p.work))
    (List.sort (fun a b -> compare (a.at, a.work) (b.at, b.work)) t.pauses)

(** Pause time inside the window [[t0, t0+w)]. *)
let busy_in (ivals : (int * int) list) ~(t0 : int) ~(w : int) : int =
  List.fold_left
    (fun acc (s, e) -> acc + max 0 (min e (t0 + w) - max s t0))
    0 ivals

let mmu (t : timeline) ~(window : int) : float =
  let total = total_time t in
  if window <= 0 || total <= 0 then 1.0
  else begin
    let w = min window total in
    let ivals = intervals t in
    (* The pause-overlap function is piecewise linear in the window
       start; its maxima lie where a window edge touches a pause edge,
       so candidates are: the run start, each pause start, and each
       pause end minus the window. *)
    let clamp t0 = max 0 (min (total - w) t0) in
    let candidates =
      0 :: List.concat_map (fun (s, e) -> [ clamp s; clamp (e - w) ]) ivals
    in
    let worst_busy =
      List.fold_left (fun acc t0 -> max acc (busy_in ivals ~t0 ~w)) 0 candidates
    in
    float_of_int (w - worst_busy) /. float_of_int w
  end

let default_fractions = [ 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.0 ]

let mmu_curve ?(fractions = default_fractions) (t : timeline) :
    (int * float) list =
  let total = total_time t in
  if total <= 0 then []
  else
    let windows =
      List.sort_uniq compare
        (List.map
           (fun f -> max 1 (int_of_float (f *. float_of_int total)))
           fractions)
    in
    List.map (fun w -> (w, mmu t ~window:w)) windows

let utilization (t : timeline) : float =
  let total = total_time t in
  if total <= 0 then 1.0 else float_of_int t.steps /. float_of_int total
