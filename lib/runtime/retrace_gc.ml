(** SATB concurrent marking with the optimistic tracing-state / retrace
    protocol of the paper's §4.3.

    Plain SATB ({!Satb_gc}) cannot support eliding the barriers of an
    array {e rearrangement} (the pairwise swap in a sort): between the two
    stores of a swap the displaced element lives only in mutator locals,
    so a marker that scans the array inside that window — or that already
    scanned the element's slot — misses it, and no pre-value was logged.

    This collector closes the gap by exposing per-object {e tracing
    state} ({!Heap.trace_state}: untraced / being-traced / traced,
    observable mid-scan for chunked object arrays) and maintaining a
    {e retrace list}.  Compiled code at a swap-elided store executes a
    cheap tracing-state check instead of the logging barrier
    ({!Gc_hooks.t.on_unlogged_store}): if marking is in progress and the
    written object is not yet fully traced, the object is enqueued for a
    whole-object re-scan.  Re-scans run during normal mark increments and
    must reach a fixed point (an empty retrace list) before the remark
    pause may end.

    Soundness additionally relies on two contracts with the compiler and
    scheduler, mirroring a real VM's no-safepoint regions:

    - the analysis only elides swap pairs whose two stores sit in the
      same basic block with only simple non-throwing instructions
      between them ({!Satb_core.Analysis}), and
    - the interpreter marks that window as safepoint-free, so collector
      increments (and hence re-scans and the remark pause) never observe
      a half-completed swap ({!Interp}, {!Runner}).

    Under those contracts every re-scan sees a rearrangement-consistent
    array, and a [Traced] object's current elements are all marked (an
    elided store may only re-store a value loaded from the same array,
    which a completed scan already visited).  Arrays are scanned in
    descending index order, preserving the move-down contract of
    {!Satb_gc}.  Every cycle is verified against the {!Oracle} exactly
    like plain SATB. *)

module Iset = Oracle.Iset

type phase = Idle | Marking

(** Gray-set entries: a whole object, or the remainder of a partially
    scanned object array (slots [0..upto] still to visit, descending). *)
type gray = Whole of int | Array_tail of { id : int; upto : int }

type cycle_report = {
  cycle : int;
  snapshot_size : int;
  marked : int;
  logged : int;  (** SATB buffer entries processed *)
  allocated_during : int;
  increments : int;
  retraces : int;  (** whole-object re-scans forced by unlogged stores *)
  final_pause_work : int;
  swept : int;
  budget_overflows : int;
      (** tracing-state checks that found the retrace budget exhausted *)
  degraded : bool;
      (** the budget overflowed this cycle, so swap elision was disabled
          for its remainder (graceful degradation, not an abort) *)
  repair_enqueues : int;  (** retrace entries forced by revocation repair *)
  violations : int;  (** snapshot-reachable objects left unmarked *)
}

type t = {
  heap : Heap.t;
  roots : unit -> int list;
  steps_per_increment : int;
  buffer_capacity : int;
  array_chunk : int;  (** array slots visited per gray-entry processing *)
  retrace_budget : int;
      (** max retrace-list enqueues per cycle before the termination
          watchdog degrades the cycle (swap elision falls back to
          logging); [max_int] = unbounded *)
  mutable phase : phase;
  mutable gray : gray list;
  mutable satb_buffer : int list;  (** completed buffers (object ids) *)
  mutable local_buffer : int list;  (** mutator-local, not yet handed over *)
  mutable local_count : int;
  mutable retrace : int list;  (** objects awaiting a re-scan *)
  mutable in_retrace : Iset.t;  (** dedup for the retrace list *)
  mutable snapshot : Iset.t;
  mutable logged : int;
  mutable allocated_during : int;
  mutable increments : int;
  mutable boost : int;
      (** mark-budget multiplier; >1 while the pacer is degraded *)
  mutable retraces : int;
  mutable enqueued : int;  (** retrace enqueues this cycle (budget basis) *)
  mutable degraded : bool;
  mutable budget_overflows : int;
  mutable repair_enqueues : int;
  mutable cycles : int;
  mutable reports : cycle_report list;  (** most recent first *)
  mutable sweep_enabled : bool;
}

let create ?(steps_per_increment = 64) ?(buffer_capacity = 32)
    ?(array_chunk = 8) ?(retrace_budget = max_int) ?(sweep = true)
    (heap : Heap.t) ~(roots : unit -> int list) : t =
  {
    heap;
    roots;
    steps_per_increment;
    buffer_capacity;
    array_chunk;
    retrace_budget;
    phase = Idle;
    gray = [];
    satb_buffer = [];
    local_buffer = [];
    local_count = 0;
    retrace = [];
    in_retrace = Iset.empty;
    snapshot = Iset.empty;
    logged = 0;
    allocated_during = 0;
    increments = 0;
    boost = 1;
    retraces = 0;
    enqueued = 0;
    degraded = false;
    budget_overflows = 0;
    repair_enqueues = 0;
    cycles = 0;
    reports = [];
    sweep_enabled = sweep;
  }

let is_marking t = t.phase = Marking
let is_degraded t = t.degraded

(* telemetry: the gc.* counters are shared with [Satb_gc]/[Incr_gc];
   retrace.* are this collector's own *)
let c_cycles = Telemetry.counter "gc.cycles"
let fk_retrace = Flight.intern "retrace"
let c_violations = Telemetry.counter "gc.violations"
let c_retraces = Telemetry.counter "retrace.rescans"
let c_enqueues = Telemetry.counter "retrace.enqueues"
let c_repair_enqueues = Telemetry.counter "retrace.repair_enqueues"
let c_budget_overflows = Telemetry.counter "retrace.budget_overflows"

(* [origin] is the float-accounting cause stamp ({!Heap.origin_trace}
   etc.); first marker wins, drained children inherit their parent's *)
let mark_and_gray t ~origin id =
  let o = Heap.get t.heap id in
  if (not o.marked) && not o.dead then begin
    o.marked <- true;
    o.origin <- origin;
    t.gray <- Whole id :: t.gray
  end

(** Begin a cycle: capture the root set (initial-mark pause) and the
    oracle snapshot used for verification.  All tracing states are
    [Untraced] here — {!Heap.clear_marks} reset them at the previous
    cycle's end, and allocation starts objects untraced. *)
let start_cycle (t : t) : unit =
  assert (t.phase = Idle);
  t.phase <- Marking;
  t.gray <- [];
  t.satb_buffer <- [];
  t.local_buffer <- [];
  t.local_count <- 0;
  t.retrace <- [];
  t.in_retrace <- Iset.empty;
  t.logged <- 0;
  t.allocated_during <- 0;
  t.increments <- 0;
  t.retraces <- 0;
  t.enqueued <- 0;
  t.degraded <- false;
  t.budget_overflows <- 0;
  t.repair_enqueues <- 0;
  let roots = t.roots () in
  t.snapshot <- Oracle.reachable t.heap roots;
  List.iter (mark_and_gray t ~origin:Heap.origin_trace) roots;
  Flight.record Flight.Mark_start ~a:fk_retrace ~b:t.cycles
    ~c:(Iset.cardinal t.snapshot);
  Telemetry.emit "gc.cycle.start"
    [
      ("collector", Telemetry.Str "retrace");
      ("cycle", Telemetry.Int t.cycles);
      ("phase", Telemetry.Str "marking");
      ("snapshot_size", Telemetry.Int (Iset.cardinal t.snapshot));
    ]

(** Mutator hooks. *)

(** Identical to {!Satb_gc.log_ref_store}: mutator-local buffers, handed
    over when full. *)
let log_ref_store t ~obj:_ ~pre =
  if t.phase = Marking then
    match pre with
    | Value.Ref id ->
        t.local_buffer <- id :: t.local_buffer;
        t.local_count <- t.local_count + 1;
        t.logged <- t.logged + 1;
        if t.local_count >= t.buffer_capacity then begin
          t.satb_buffer <- List.rev_append t.local_buffer t.satb_buffer;
          t.local_buffer <- [];
          t.local_count <- 0
        end
    | Value.Null | Value.Int _ -> ()

(** The tracing-state check compiled at a swap-elided store: nothing was
    logged, so if the object's scan has not provably completed, schedule a
    whole-object re-scan.  Objects allocated during marking are black and
    never scanned, so rearrangements inside them need no retrace. *)
let on_unlogged_store t ~obj =
  if t.phase = Marking && obj >= 0 then begin
    let o = Heap.get t.heap obj in
    if (not o.dead) && not o.born_during_mark then
      match o.trace with
      | Heap.Traced -> ()
      | Heap.Untraced | Heap.Being_traced ->
          if not (Iset.mem obj t.in_retrace) then begin
            (* Termination watchdog: past the budget the cycle is marked
               degraded — the runner will disable swap elision for its
               remainder, so no further checks arrive.  The entry itself
               is still enqueued: its store already happened unlogged, and
               dropping it would be unsound. *)
            if t.enqueued >= t.retrace_budget then begin
              t.degraded <- true;
              t.budget_overflows <- t.budget_overflows + 1;
              Telemetry.incr c_budget_overflows;
              Telemetry.emit "gc.degraded"
                [
                  ("collector", Telemetry.Str "retrace");
                  ("cycle", Telemetry.Int t.cycles);
                  ("enqueued", Telemetry.Int t.enqueued);
                  ("budget", Telemetry.Int t.retrace_budget);
                ]
            end;
            t.enqueued <- t.enqueued + 1;
            Telemetry.incr c_enqueues;
            t.in_retrace <- Iset.add obj t.in_retrace;
            t.retrace <- obj :: t.retrace
          end
  end

(** Snapshot repair after elision revocation: every object written
    through a now-revoked site this cycle gets a whole-object re-scan,
    regardless of tracing state — the revoked sites logged nothing, so a
    completed scan proves nothing about what they overwrote.  Bypasses
    the retrace budget: repair is mandatory. *)
let on_revoke t ~objs =
  if t.phase = Marking then
    List.iter
      (fun obj ->
        if obj >= 0 then
          let o = Heap.get t.heap obj in
          if
            (not o.dead)
            && (not o.born_during_mark)
            && not (Iset.mem obj t.in_retrace)
          then begin
            o.trace <- Heap.Untraced;
            t.repair_enqueues <- t.repair_enqueues + 1;
            Telemetry.incr c_repair_enqueues;
            t.in_retrace <- Iset.add obj t.in_retrace;
            t.retrace <- obj :: t.retrace
          end)
      objs

let on_alloc t (o : Heap.obj) =
  if t.phase = Marking then begin
    (* allocate black: implicitly marked, never examined *)
    o.marked <- true;
    o.origin <- Heap.origin_alloc;
    o.born_during_mark <- true;
    t.allocated_during <- t.allocated_during + 1
  end

(** Scan one chunk of an object array's slots, descending; the object is
    [Being_traced] until the chunk reaching slot 0 promotes it. *)
let scan_array_chunk (t : t) (id : int) ~(upto : int) : unit =
  let o = Heap.get t.heap id in
  if not o.dead then
    match o.payload with
    | Heap.Ref_array es ->
        let upto = min upto (Array.length es - 1) in
        let last = max 0 (upto - t.array_chunk + 1) in
        for i = upto downto last do
          match es.(i) with
          | Value.Ref tgt -> mark_and_gray t ~origin:o.origin tgt
          | Value.Null | Value.Int _ -> ()
        done;
        if last > 0 then t.gray <- Array_tail { id; upto = last - 1 } :: t.gray
        else o.trace <- Heap.Traced
    | Heap.Fields _ | Heap.Int_array _ -> ()

(** Re-scan a retraced object in one step.  Runs only at safepoints, so
    the contents are rearrangement-consistent; the whole object is
    visited, making it [Traced] again no matter how far the original scan
    had progressed when the unlogged store hit. *)
let rescan (t : t) (id : int) : unit =
  let o = Heap.get t.heap id in
  if not o.dead then begin
    (* anything first kept by a re-scan owes its survival to the retrace
       window (or a revocation repair), not the snapshot *)
    (match o.payload with
    | Heap.Ref_array es ->
        Array.iter
          (function
            | Value.Ref tgt -> mark_and_gray t ~origin:Heap.origin_repair tgt
            | Value.Null | Value.Int _ -> ())
          es
    | Heap.Fields _ | Heap.Int_array _ ->
        List.iter (mark_and_gray t ~origin:Heap.origin_repair)
          (Heap.out_edges o));
    o.trace <- Heap.Traced
  end

(** Process up to [budget] work units: logged pre-values, then gray
    entries; once the gray set is empty, retrace-list entries.  (Retrace
    entries wait for an empty gray set so that at most one scan of an
    object array is in flight at a time.) *)
let drain (t : t) (budget : int) : int =
  let processed = ref 0 in
  while
    !processed < budget
    && (t.gray <> [] || t.satb_buffer <> [] || t.retrace <> [])
  do
    (match t.satb_buffer with
    | id :: rest ->
        t.satb_buffer <- rest;
        mark_and_gray t ~origin:Heap.origin_log id
    | [] -> ());
    match t.gray with
    | Whole id :: rest ->
        t.gray <- rest;
        incr processed;
        let o = Heap.get t.heap id in
        if not o.dead then begin
          match o.payload with
          | Heap.Ref_array es ->
              o.trace <- Heap.Being_traced;
              scan_array_chunk t id ~upto:(Array.length es - 1)
          | Heap.Fields _ | Heap.Int_array _ ->
              List.iter (mark_and_gray t ~origin:o.origin) (Heap.out_edges o);
              o.trace <- Heap.Traced
        end
    | Array_tail { id; upto } :: rest ->
        t.gray <- rest;
        incr processed;
        scan_array_chunk t id ~upto
    | [] -> (
        match t.retrace with
        | id :: rest ->
            t.retrace <- rest;
            t.in_retrace <- Iset.remove id t.in_retrace;
            t.retraces <- t.retraces + 1;
            Telemetry.incr c_retraces;
            incr processed;
            rescan t id
        | [] -> ())
  done;
  !processed

let step (t : t) : unit =
  if t.phase = Marking then begin
    t.increments <- t.increments + 1;
    ignore (drain t (t.steps_per_increment * t.boost))
  end

(** Has the concurrent phase exhausted its known work?  The retrace list
    counts: remark may not begin while a forced re-scan is pending — the
    retrace fixed point is part of cycle termination. *)
let quiescent (t : t) : bool =
  t.phase = Marking && t.gray = [] && t.satb_buffer = [] && t.retrace = []

(** The remark pause: flush the mutator-local buffer remnants, drain
    everything — including late retrace entries — to the retrace fixed
    point, verify the snapshot invariant, sweep. *)
let finish_cycle (t : t) : cycle_report =
  assert (t.phase = Marking);
  t.satb_buffer <- List.rev_append t.local_buffer t.satb_buffer;
  t.local_buffer <- [];
  t.local_count <- 0;
  let pause_work = ref 0 in
  while t.gray <> [] || t.satb_buffer <> [] || t.retrace <> [] do
    pause_work := !pause_work + drain t max_int
  done;
  assert (t.retrace = [] && Iset.is_empty t.in_retrace);
  let violations = Oracle.snapshot_violations t.heap t.snapshot in
  let marked = ref 0 in
  Heap.iter_live t.heap (fun o -> if o.marked then incr marked);
  let swept = ref 0 in
  if t.sweep_enabled && violations = 0 then
    Heap.iter_live t.heap (fun o ->
        if not o.marked then begin
          Heap.free t.heap o;
          incr swept
        end);
  let report =
    {
      cycle = t.cycles;
      snapshot_size = Iset.cardinal t.snapshot;
      marked = !marked;
      logged = t.logged;
      allocated_during = t.allocated_during;
      increments = t.increments;
      retraces = t.retraces;
      final_pause_work = !pause_work;
      swept = !swept;
      budget_overflows = t.budget_overflows;
      degraded = t.degraded;
      repair_enqueues = t.repair_enqueues;
      violations;
    }
  in
  t.cycles <- t.cycles + 1;
  t.heap.Heap.gc_cycle <- t.heap.Heap.gc_cycle + 1;
  t.reports <- report :: t.reports;
  t.phase <- Idle;
  t.degraded <- false;
  Heap.clear_marks t.heap;
  Telemetry.incr c_cycles;
  Telemetry.incr c_violations ~by:violations;
  Flight.record Flight.Mark_end ~a:fk_retrace ~b:report.cycle ~c:violations;
  Telemetry.emit "gc.cycle.finish"
    [
      ("collector", Telemetry.Str "retrace");
      ("cycle", Telemetry.Int report.cycle);
      ("phase", Telemetry.Str "idle");
      ("marked", Telemetry.Int report.marked);
      ("logged", Telemetry.Int report.logged);
      ("retraces", Telemetry.Int report.retraces);
      ("final_pause_work", Telemetry.Int report.final_pause_work);
      ("swept", Telemetry.Int report.swept);
      ("budget_overflows", Telemetry.Int report.budget_overflows);
      ("degraded", Telemetry.Bool report.degraded);
      ("repair_enqueues", Telemetry.Int report.repair_enqueues);
      ("violations", Telemetry.Int report.violations);
    ];
  report

(** Package as mutator-facing hooks. *)
let hooks (t : t) : Gc_hooks.t =
  {
    Gc_hooks.name = "retrace";
    caps =
      {
        Gc_hooks.retrace_protocol = true;
        descending_scan = true;
        insertion_half = false;
      };
    is_marking = (fun () -> is_marking t);
    log_ref_store = (fun ~obj ~pre -> log_ref_store t ~obj ~pre);
    log_ins_store = (fun ~tid:_ ~nv:_ -> ());
    on_unlogged_store = (fun ~obj -> on_unlogged_store t ~obj);
    on_revoke = (fun ~objs -> on_revoke t ~objs);
    on_alloc = (fun o -> on_alloc t o);
    on_pressure =
      (fun ~degraded ->
        t.boost <- (if degraded then Gc_hooks.pressure_boost else 1));
    step = (fun () -> step t);
  }
