(** The per-run GC pacing controller.

    One pacer instance is shared by whichever collector the runner wired
    (SATB, incremental-update, retrace or hybrid); the runner consults it
    to decide {e when} a marking cycle starts, and the interpreter's
    allocation path consults it for the soft/hard memory-limit machinery.
    Three pacing modes:

    - [Fixed n] — the legacy [--gc-trigger] behaviour: a cycle every [n]
      allocations.  Kept as a deprecated alias so old invocations and
      committed baselines reproduce bit-for-bit.
    - [Goal g] — a heap-growth target in the GOGC style: the next cycle
      triggers when the live heap reaches [g ×] the live size measured at
      the end of the previous mark, clamped below by [goal_floor] so the
      first cycle (no previous mark) still happens on small heaps.
    - [Auto] — [Goal] with a feedback loop: after every cycle the goal is
      retuned from the run's pause percentiles and MMU so far
      ({!Mmu}), growing when pauses are provably cheap and shrinking the
      moment they are not.

    Orthogonally to the mode, a {e soft limit} arms the
    degrade-don't-die machinery and a {e hard limit} arms the clean
    abort.  The state machine is [Normal → Degraded → Hard_stop]:

    - [Normal → Degraded] when the live heap reaches the soft limit
      (observed at an allocation or a safepoint).  While degraded the
      pacer starts a cycle immediately, asks the runner for boosted
      collector increments (shortened mark budgets), tells the collector
      to force allocate-black ({!Gc_hooks.t.on_pressure}), and makes
      allocating threads assist marking; [pacer.degraded] telemetry
      records the entry.
    - [Degraded → Normal] only at a cycle boundary, and only once the
      live heap has fallen to 90% of the soft limit — entry/exit
      hysteresis, so the pacer cannot flap across the limit within a
      cycle.
    - [→ Hard_stop] when an allocation would push the live heap {e over}
      the hard limit: the allocation is refused before it happens (the
      live size never exceeds the limit) and {!Hard_limit} aborts the run
      with a diagnostic; the runner finishes the in-flight cycle so every
      invariant is still checked, then reports the stop. *)

type mode = Fixed of int | Goal of float | Auto

let mode_name = function
  | Fixed _ -> "fixed"
  | Goal _ -> "goal"
  | Auto -> "auto"

type config = {
  mode : mode;
  soft_limit : int option;  (** heap units; arms graceful degradation *)
  hard_limit : int option;  (** heap units; arms the clean abort *)
  goal_floor : int;
      (** minimum trigger in heap units for the goal modes: the
          first-cycle trigger, and a lower clamp forever after *)
}

(** Calibrated so the six table-1 workloads all exercise at least one
    full cycle with no flags at all (the [--gc-trigger] default-mismatch
    fix); the micro workloads peak below the floor and need an explicit
    [--soft-limit] (or trigger) to cycle. *)
let default_goal = 1.5

let default_goal_floor = 64

let default_config =
  {
    mode = Goal default_goal;
    soft_limit = None;
    hard_limit = None;
    goal_floor = default_goal_floor;
  }

let config_of_trigger (n : int) : config =
  { default_config with mode = Fixed n }

(* Auto mode's goal clamp and retuning facts.  The controller starts at
   the laziest (largest) goal — rare cycles give the concurrent marker
   time to finish, so remark pauses are smallest — and shrinks
   multiplicatively the moment the evidence turns (a pause outgrew one
   collector increment, or mutator utilization sagged), growing back
   slowly once pauses are provably negligible again.  Shrink-fast /
   grow-slow keeps one bad remark from ever becoming a trend, which is
   what the p99 acceptance bar measures. *)
let auto_min_goal = 1.2
let auto_max_goal = 3.0
let auto_start_goal = auto_max_goal
let auto_grow = 1.15
let auto_shrink = 0.7
let auto_min_mmu = 0.5

(* Degradation exits at 90% of the soft limit, never at the limit
   itself: the hysteresis band that keeps the state machine from
   flapping. *)
let soft_exit_pct = 90

type state = Normal | Degraded | Hard_stop

let state_name = function
  | Normal -> "normal"
  | Degraded -> "degraded"
  | Hard_stop -> "hard-stop"

exception Hard_limit of string

type t = {
  cfg : config;
  collector : string;
  increment_budget : int;
      (** the collector's per-increment mark budget (work units) — the
          yardstick auto mode measures pauses against *)
  mutable goal : float;  (** current goal multiplier (goal/auto modes) *)
  mutable trigger_units : int;  (** live-heap trigger for the next cycle *)
  mutable base_alloc : int;
      (** allocation count at the last cycle end (fixed mode) *)
  mutable state : state;
  mutable degraded_this_cycle : bool;
  mutable cycles : int;
  mutable degraded_entries : int;
  mutable degraded_cycles : int;
  mutable assists : int;
  mutable max_live_units : int;
  mutable hard_stop : string option;
  (* the feedback history: one (at_step, pause_work) per finished cycle,
     newest first *)
  mutable pause_history : (int * int) list;
}

type stats = {
  p_state : state;
  p_goal : float;
  p_trigger_units : int;
  p_cycles : int;
  p_degraded_entries : int;
  p_degraded_cycles : int;
  p_assists : int;
  p_max_live_units : int;
  p_hard_stop : string option;
}

(* ---- telemetry --------------------------------------------------------- *)

let c_assists = Telemetry.counter "pacer.assists"
let c_degraded_entries = Telemetry.counter "pacer.degraded_entries"
let c_degraded_cycles = Telemetry.counter "pacer.degraded_cycles"
let c_hard_stops = Telemetry.counter "pacer.hard_stops"
let g_trigger = Telemetry.gauge "pacer.trigger_units"
let g_goal = Telemetry.gauge "pacer.goal"
let g_live = Telemetry.gauge "pacer.live_units"

(* ---- construction ------------------------------------------------------ *)

let create ?(collector = "?") ?(increment_budget = 64) (cfg : config) : t =
  (match cfg.soft_limit, cfg.hard_limit with
  | Some s, Some h when s >= h ->
      invalid_arg
        (Printf.sprintf
           "Pacer.create: soft limit %d must be below the hard limit %d" s h)
  | _ -> ());
  let goal =
    match cfg.mode with
    | Fixed _ -> 0.0
    | Goal g ->
        if g <= 1.0 then
          invalid_arg
            (Printf.sprintf
               "Pacer.create: heap goal %.2f must exceed 1.0 (the heap must \
                be allowed to grow between cycles)"
               g)
        else g
    | Auto -> auto_start_goal
  in
  let t =
    {
      cfg;
      collector;
      increment_budget = max 1 increment_budget;
      goal;
      trigger_units = max 1 cfg.goal_floor;
      base_alloc = 0;
      state = Normal;
      degraded_this_cycle = false;
      cycles = 0;
      degraded_entries = 0;
      degraded_cycles = 0;
      assists = 0;
      max_live_units = 0;
      hard_stop = None;
      pause_history = [];
    }
  in
  Telemetry.set_gauge g_trigger (float_of_int t.trigger_units);
  Telemetry.set_gauge g_goal t.goal;
  t

let state (t : t) : state = t.state
let degraded (t : t) : bool = t.state = Degraded
let trigger_units (t : t) : int = t.trigger_units
let goal (t : t) : float = t.goal

(* ---- the state machine ------------------------------------------------- *)

let enter_degraded (t : t) ~(live : int) ~(soft : int) : unit =
  if t.state = Normal then begin
    t.state <- Degraded;
    t.degraded_this_cycle <- true;
    t.degraded_entries <- t.degraded_entries + 1;
    Telemetry.incr c_degraded_entries;
    Flight.record Flight.Soft_enter ~a:live ~b:soft ~c:0;
    Telemetry.emit "pacer.degraded"
      [
        ("collector", Telemetry.Str t.collector);
        ("live_units", Telemetry.Int live);
        ("soft_limit", Telemetry.Int soft);
      ]
  end

(** Degradation entry: live heap at or over the soft limit.  Called from
    both the allocation path and safepoints so a spike between
    safepoints still degrades promptly. *)
let check_soft (t : t) ~(live : int) : unit =
  match t.cfg.soft_limit with
  | Some soft when t.state = Normal && live >= soft ->
      enter_degraded t ~live ~soft
  | _ -> ()

(** Degradation exit — only here, at a cycle boundary, and only below
    the hysteresis threshold. *)
let maybe_recover (t : t) ~(live : int) : unit =
  match t.cfg.soft_limit with
  | Some soft
    when t.state = Degraded && live * 100 <= soft * soft_exit_pct ->
      t.state <- Normal;
      Flight.record Flight.Soft_exit ~a:live ~b:soft ~c:0;
      Telemetry.emit "pacer.recovered"
        [
          ("collector", Telemetry.Str t.collector);
          ("live_units", Telemetry.Int live);
          ("soft_limit", Telemetry.Int soft);
        ]
  | _ -> ()

(* ---- allocation-path hooks --------------------------------------------- *)

let note_hard_stop (t : t) (msg : string) : unit =
  if t.hard_stop = None then begin
    t.hard_stop <- Some msg;
    t.state <- Hard_stop;
    Telemetry.incr c_hard_stops;
    Flight.record Flight.Hard_stop ~a:t.max_live_units ~b:0 ~c:0;
    Telemetry.emit "pacer.hard_stop"
      [
        ("collector", Telemetry.Str t.collector);
        ("diagnostic", Telemetry.Str msg);
      ]
  end

(** Admission control for one allocation of [units] heap units: refuses
    (raises {!Hard_limit}) before the allocation happens, so the live
    heap {e never} exceeds the hard limit. *)
let before_alloc (t : t) (heap : Heap.t) ~(units : int) : unit =
  let live = heap.Heap.live_units in
  (match t.cfg.hard_limit with
  | Some hard when live + units > hard ->
      let msg =
        Printf.sprintf
          "hard heap limit exceeded: %d live units + %d requested > limit %d \
           (soft limit %s, state %s, %d cycles, %d assists)"
          live units hard
          (match t.cfg.soft_limit with
          | Some s -> string_of_int s
          | None -> "unset")
          (state_name t.state) t.cycles t.assists
      in
      note_hard_stop t msg;
      raise (Hard_limit msg)
  | _ -> ());
  check_soft t ~live:(live + units);
  t.max_live_units <- max t.max_live_units (live + units)

(** An allocating thread performed one bounded increment of marking on
    the collector's behalf (degraded mode only; the interpreter runs the
    increment, the pacer keeps the book). *)
let note_assist (t : t) : unit =
  t.assists <- t.assists + 1;
  Flight.record Flight.Assist ~a:0 ~b:0 ~c:0;
  Telemetry.incr c_assists

(* ---- cycle pacing ------------------------------------------------------ *)

let should_start (t : t) (heap : Heap.t) : bool =
  match t.state with
  | Hard_stop -> false
  | Degraded -> true  (* free memory as soon as the collector is idle *)
  | Normal -> (
      match t.cfg.mode with
      | Fixed n -> heap.Heap.total_allocated - t.base_alloc >= n
      | Goal _ | Auto -> heap.Heap.live_units >= t.trigger_units)

let note_cycle_start (t : t) (heap : Heap.t) : unit =
  Flight.record Flight.Trigger ~a:heap.Heap.live_units ~b:t.trigger_units
    ~c:(if t.state = Degraded then 1 else 0);
  Telemetry.emit "pacer.trigger"
    [
      ("collector", Telemetry.Str t.collector);
      ("mode", Telemetry.Str (mode_name t.cfg.mode));
      ("live_units", Telemetry.Int heap.Heap.live_units);
      ("trigger_units", Telemetry.Int t.trigger_units);
      ("degraded", Telemetry.Bool (t.state = Degraded));
    ]

(** Auto mode's feedback: retune the goal from the pause percentiles and
    the MMU of the timeline so far.  Grow only when the evidence is that
    pauses are negligible (the last pause fit inside one collector
    increment {e and} mutator utilization stayed high); shrink the
    moment a pause got expensive. *)
let retune (t : t) : unit =
  match t.pause_history with
  | [] -> ()
  | (last_at, last_work) :: _ ->
      let works = List.map snd t.pause_history in
      let p99 = Mmu.percentile works 99.0 in
      let timeline =
        {
          Mmu.steps = last_at;
          pauses =
            List.rev_map
              (fun (at, work) -> { Mmu.at; work })
              (List.filter (fun (_, w) -> w > 0) t.pause_history);
        }
      in
      let window = max 1 (Mmu.total_time timeline / 10) in
      let mmu_10 = Mmu.mmu timeline ~window in
      let old_goal = t.goal in
      if last_work <= t.increment_budget && mmu_10 >= auto_min_mmu then
        t.goal <- Float.min auto_max_goal (t.goal *. auto_grow)
      else t.goal <- Float.max auto_min_goal (t.goal *. auto_shrink);
      if t.goal <> old_goal then begin
        Flight.record Flight.Retune
          ~a:(int_of_float (t.goal *. 1000.))
          ~b:p99
          ~c:(int_of_float (mmu_10 *. 1000.));
        Telemetry.emit "pacer.retune"
          [
            ("collector", Telemetry.Str t.collector);
            ("goal", Telemetry.Float t.goal);
            ("p99", Telemetry.Int p99);
            ("mmu_10", Telemetry.Float mmu_10);
            ("last_pause", Telemetry.Int last_work);
          ]
      end

(** Cycle end: record the pause for the feedback loop, recompute the
    next trigger from the live size the mark left behind, and run the
    degradation-exit hysteresis. *)
let note_cycle_end (t : t) (heap : Heap.t) ~(at_step : int)
    ~(pause_work : int) : unit =
  t.cycles <- t.cycles + 1;
  t.base_alloc <- heap.Heap.total_allocated;
  t.pause_history <- (at_step, pause_work) :: t.pause_history;
  if t.degraded_this_cycle then begin
    t.degraded_cycles <- t.degraded_cycles + 1;
    Telemetry.incr c_degraded_cycles
  end;
  t.degraded_this_cycle <- t.state = Degraded;
  (match t.cfg.mode with
  | Fixed _ -> ()
  | Goal _ | Auto ->
      if t.cfg.mode = Auto then retune t;
      t.trigger_units <-
        max t.cfg.goal_floor
          (int_of_float (float_of_int heap.Heap.live_units *. t.goal)));
  maybe_recover t ~live:heap.Heap.live_units;
  Telemetry.set_gauge g_trigger (float_of_int t.trigger_units);
  Telemetry.set_gauge g_goal t.goal;
  Telemetry.set_gauge g_live (float_of_int heap.Heap.live_units)

(** Safepoint poll: update the degradation state machine from the
    current live size and tell the runner how many {e extra} collector
    increments to run right now (the shortened-mark-budget half of
    degraded mode; 0 while normal). *)
let at_safepoint (t : t) (heap : Heap.t) : int =
  t.max_live_units <- max t.max_live_units heap.Heap.live_units;
  check_soft t ~live:heap.Heap.live_units;
  if t.state = Degraded then 1 else 0

let stats (t : t) : stats =
  {
    p_state = t.state;
    p_goal = t.goal;
    p_trigger_units = t.trigger_units;
    p_cycles = t.cycles;
    p_degraded_entries = t.degraded_entries;
    p_degraded_cycles = t.degraded_cycles;
    p_assists = t.assists;
    p_max_live_units = t.max_live_units;
    p_hard_stop = t.hard_stop;
  }
