(** Synchronous reachability oracle: exact reachable sets used to capture
    the logical snapshot when SATB marking starts and to verify collector
    invariants.  Exists purely to {e check} the algorithms. *)

module Iset : Set.S with type elt = int

val reachable : Heap.t -> int list -> Iset.t

val snapshot_violations : Heap.t -> Iset.t -> int
(** Members of a marking-start snapshot that are dead or unmarked at the
    end of the cycle — the invariant every SATB-family collector (plain
    SATB and the retrace variant) must satisfy. *)
