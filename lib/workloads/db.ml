(** db lookalike — a small in-memory database's store population.

    Records are allocated with their reference fields initialized in the
    constructor (eliminable), inserted into a global index array, and then
    the index is bubble-sorted: the sorting swaps are the paper's §4.3
    "array rearrangement" idiom — two aastores per swap whose pre-values
    are never null, so neither pre-null analysis nor the potentially
    pre-null bound can touch them.  Under the baseline analyses those
    swaps keep their barriers (the paper's 0.0% array elimination for
    db); with the pairwise-swap extension and the retrace collector's
    tracing-state protocol ([--swap --gc retrace], experiment E10) both
    stores of each swap lose their barriers, making db the showcase for
    the retrace design.  Periodic "snapshot" arrays are published
    (escape) before being filled, so their stores stay potentially
    pre-null yet unprovable.

    Paper row: 30.1M barriers, 10.2% eliminated, 28.2% potentially
    pre-null, 10/90 field/array, field 99.4% / array 0.0% eliminated. *)

let pad n = String.concat "\n" (List.init n (fun _ -> "    iinc 2 1"))

let src =
  Printf.sprintf
    {|
; db: record allocation, index sort (swap idiom), snapshot publication
class Obj
  method void <init> (ref) locals 1 ctor
    return
  end
end

class Rec
  field ref k0
  field ref k1
  field ref k2
  field ref k3
  field int id
  method void <init> (ref ref int) locals 3 ctor
    aload 0
    iload 2
    putfield Rec.id
    return
  end
end

class Main
  static ref index
  static ref snap
  static ref seed

  ; one full bubble pass over the index: swap out-of-order neighbours
  method void pass () locals 4
    iconst 0
    istore 0
  loop:
    iload 0
    getstatic Main.index
    arraylength
    iconst 1
    isub
    if_icmpge fin
    getstatic Main.index
    iload 0
    aaload
    astore 1            ; a = index[j]
    getstatic Main.index
    iload 0
    iconst 1
    iadd
    aaload
    astore 2            ; b = index[j+1]
    aload 1
    getfield Rec.id
    aload 2
    getfield Rec.id
    if_icmple skip
    getstatic Main.index
    iload 0
    aload 2
    aastore             ; swap first store: pre-value never null; elided
                        ; only by the swap extension (retrace collector)
    getstatic Main.index
    iload 0
    iconst 1
    iadd
    aload 1
    aastore             ; swap second store: closes the swap window
  skip:
    iinc 0 1
    goto loop
  fin:
    return
  end

  ; publish a snapshot array, then fill it (escape before init: stores
  ; stay potentially pre-null but unprovable)
  method void snapshot () locals 1
    getstatic Main.index
    arraylength
    anewarray Rec
    putstatic Main.snap
    iconst 0
    istore 0
  loop:
    iload 0
    getstatic Main.snap
    arraylength
    if_icmpge fin
    getstatic Main.snap
    iload 0
    getstatic Main.index
    iload 0
    aaload
    aastore
    iinc 0 1
    goto loop
  fin:
    return
  end

  ; sets the remaining record keys; sized (~40 instructions) so it
  ; inlines at limit 50 but not at 25
  method void bindKeys (ref ref) locals 3
    aload 0
    aload 1
    putfield Rec.k1
    aload 0
    aload 1
    putfield Rec.k2
    aload 0
    aload 1
    putfield Rec.k3
    iconst 0
    istore 2
%s
    return
  end

  method void main () locals 2
    new Obj
    dup
    invoke Obj.<init>
    putstatic Main.seed
    iconst 32
    anewarray Rec
    putstatic Main.index
    ; fill the index in reverse key order to maximize sorting work
    iconst 0
    istore 0
  fill:
    iload 0
    iconst 32
    if_icmpge sort
    new Rec
    dup
    getstatic Main.seed
    iconst 32
    iload 0
    isub
    invoke Rec.<init>
    astore 1
    ; primary key right at the allocation site (eliminable once the
    ; constructor is inlined)
    aload 1
    getstatic Main.seed
    putfield Rec.k0
    ; remaining keys via a mid-sized helper (inlines at limit 50+)
    aload 1
    getstatic Main.seed
    invoke Main.bindKeys
    getstatic Main.index
    iload 0
    aload 1
    aastore
    iinc 0 1
    goto fill
  sort:
    iconst 0
    istore 0
  passes:
    iload 0
    iconst 32
    if_icmpge snaps
    invoke Main.pass
    iinc 0 1
    goto passes
  snaps:
    iconst 0
    istore 0
  sloop:
    iload 0
    iconst 8
    if_icmpge fin
    invoke Main.snapshot
    iinc 0 1
    goto sloop
  fin:
    return
  end
end
|}
    (pad 28)

let t : Spec.t =
  {
    Spec.name = "db";
    description = "database: index bubble-sort swaps dominate stores";
    paper_row =
      Some
        {
          p_total_millions = 30.1;
          p_elim_pct = 10.2;
          p_pot_pre_null_pct = 28.2;
          p_field_pct = 10;
          p_field_elim_pct = 99.4;
          p_array_elim_pct = 0.0;
        };
    src;
    entry = Spec.main_entry;
  }
