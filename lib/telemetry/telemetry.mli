(** Unified telemetry: a process-wide registry of counters, gauges and
    histograms, a structured JSONL event stream with monotonic
    timestamps, a Chrome trace-event exporter, and shared row tables —
    the single measurement surface behind [--trace]/[--metrics], the
    harness experiments and the bench JSON artifacts.

    Counters are always live; events are recorded only while a recorder
    or sink is armed, so hot paths pay nothing by default. *)

(** {2 JSON} *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : json -> string
(** Compact, single-line. *)

val json_to_string_pretty : json -> string
(** 2-space indented, trailing newline. *)

val json_of_string : string -> (json, string) result
(** Minimal parser — enough to validate and re-read our own output. *)

(** {2 Monotonic clock} *)

val now_s : unit -> float
(** Monotonic wall-clock seconds since process start
    ([Unix.gettimeofday] clamped to never decrease). *)

(** {2 Metrics registry} *)

type counter
type gauge
type histogram

type histo_stats = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** 0. when empty *)
  h_max : float;  (** 0. when empty *)
}

val counter : string -> counter
(** Find-or-register; handles stay valid across {!reset}. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val get_counter : string -> int
(** Value of the named counter; 0 if never registered. *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float
val get_gauge : string -> float

val histogram : string -> histogram
val observe : histogram -> float -> unit
val histo_stats : histogram -> histo_stats

val time : string -> (unit -> 'a) -> 'a * float
(** Run the thunk, record its duration ({!now_s}) in the named
    histogram, return the result and the duration in seconds. *)

(** {2 Event stream} *)

type event = {
  ev_seq : int;  (** process-wide, strictly increasing *)
  ev_ts : float;  (** monotonic seconds since process start *)
  ev_kind : string;
  ev_fields : (string * json) list;
}

val set_recording : bool -> unit
(** Keep emitted events in memory (for {!events} / {!write_chrome}). *)

val attach_sink : out_channel -> unit
(** Stream every emitted event to the channel as one JSONL line. *)

val detach_sink : unit -> unit
(** Flush and stop streaming (does not close the channel). *)

val armed : unit -> bool
(** Is anything listening?  Use to skip building expensive fields. *)

val emit : string -> (string * json) list -> unit
(** [emit kind fields] — a no-op unless {!armed}.  [ts], [seq] and
    [kind] are reserved keys added by the stream. *)

val events : unit -> event list
(** Recorded events, oldest first. *)

val event_to_json : event -> json
val event_of_json : json -> (event, string) result

(** {2 JSONL schema validation} *)

val validate_event_line : string -> (unit, string) result
(** One line: a JSON object with a non-negative number ["ts"], a
    non-negative integer ["seq"], a non-empty string ["kind"], and no
    duplicate keys. *)

val validate_trace_lines : string list -> (int, int * string) result
(** Whole trace (blank lines skipped): every line schema-valid,
    timestamps non-decreasing, sequence numbers strictly increasing, and
    run envelopes well-bracketed — a [run.finish] with no distinct
    preceding [run.start] (duplicated or orphaned) is rejected.
    [Ok n] is the event count; [Error (line, msg)] names the first
    offender.  A trace with no events at all is rejected distinctly as
    [Error (0, "empty trace (no events)")] — line 0 means the file as a
    whole, not a malformed line. *)

(** {2 Chrome trace-event exporter} *)

val chrome_of_events : event list -> json
(** Trace-event format (load in about://tracing or Perfetto). *)

(** {2 Row tables} *)

type row = (string * json) list

val clear_table : string -> unit
val add_row : table:string -> row -> unit

val rows : table:string -> row list
(** Insertion order. *)

val table_to_json : string -> json
val table_names : unit -> string list

(** {2 Snapshots} *)

type snapshot = {
  sn_counters : (string * int) list;  (** sorted by name *)
  sn_gauges : (string * float) list;  (** sorted by name *)
  sn_histograms : (string * histo_stats) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
val snapshot_to_json : snapshot -> json
val pp_snapshot : snapshot Fmt.t

(** {2 Files} *)

val write_file : string -> string -> unit
val write_metrics : string -> unit
(** Deterministic (sorted) metrics snapshot as pretty JSON. *)

val write_chrome : string -> unit
(** Recorded events as a Chrome trace-event file. *)

val reset : unit -> unit
(** Zero all metrics (handles stay valid), drop events and tables,
    restart the sequence counter. *)
