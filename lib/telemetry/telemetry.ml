(** Unified telemetry: a process-wide registry of counters, gauges and
    histograms, a structured JSONL event stream, and shared row tables —
    the single measurement surface behind [--trace], [--metrics], the
    harness experiments and the bench JSON artifacts.

    Counters are always live (they are plain [int ref] bumps and the
    reconciliation tests equate them with the interpreter's legacy
    statistics).  Events are recorded only while {e armed} — an in-memory
    recorder enabled ({!set_recording}) or a JSONL sink attached
    ({!attach_sink}) — so the hot paths pay nothing by default.

    Every emitted event carries a monotonic wall-clock timestamp
    ({!now_s}: seconds since process start, clamped to never decrease)
    and a process-wide sequence number, so traces are totally ordered
    even when two events land in the same clock tick. *)

(* ---- JSON --------------------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let buf_add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(** Shortest float form that still round-trips our measurements; always
    contains a ['.'], ['e'] or [n]/[i] so readers keep the number a
    float. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec buf_add_json b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s ->
      Buffer.add_char b '"';
      buf_add_escaped b s;
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          buf_add_json b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          buf_add_escaped b k;
          Buffer.add_string b "\":";
          buf_add_json b v)
        kvs;
      Buffer.add_char b '}'

let json_to_string (j : json) : string =
  let b = Buffer.create 256 in
  buf_add_json b j;
  Buffer.contents b

(** Pretty printer with 2-space indentation, for the metrics snapshot and
    chrome files (JSONL event lines stay compact). *)
let rec buf_add_json_pretty b ~indent = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as j -> buf_add_json b j
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad';
          buf_add_json_pretty b ~indent:(indent + 2) x)
        xs;
      Buffer.add_char b '\n';
      Buffer.add_string b pad;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad';
          Buffer.add_char b '"';
          buf_add_escaped b k;
          Buffer.add_string b "\": ";
          buf_add_json_pretty b ~indent:(indent + 2) v)
        kvs;
      Buffer.add_char b '\n';
      Buffer.add_string b pad;
      Buffer.add_char b '}'

let json_to_string_pretty (j : json) : string =
  let b = Buffer.create 1024 in
  buf_add_json_pretty b ~indent:0 j;
  Buffer.add_char b '\n';
  Buffer.contents b

(* A minimal recursive-descent parser — enough to validate our own JSONL
   output and re-read traces for the chrome exporter; not a general
   JSON implementation. *)

exception Parse_fail of string

let json_of_string (s : string) : (json, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char b '"'; go ()
          | '\\' -> Buffer.add_char b '\\'; go ()
          | '/' -> Buffer.add_char b '/'; go ()
          | 'n' -> Buffer.add_char b '\n'; go ()
          | 't' -> Buffer.add_char b '\t'; go ()
          | 'r' -> Buffer.add_char b '\r'; go ()
          | 'b' -> Buffer.add_char b '\b'; go ()
          | 'f' -> Buffer.add_char b '\012'; go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* our own output only escapes control characters; anything
                 above Latin-1 is preserved as a '?' placeholder *)
              Buffer.add_char b
                (if code < 0x100 then Char.chr code else '?');
              go ()
          | _ -> fail "bad escape")
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if tok = "" then fail "expected number";
    let is_float =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ member () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := member () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with Parse_fail msg -> Error msg

(* ---- monotonic clock ---------------------------------------------------- *)

let t_start = Unix.gettimeofday ()
let t_last = ref 0.0

(** Monotonic wall-clock seconds since process start.  Backed by
    [Unix.gettimeofday] but clamped so it never goes backwards (NTP
    steps, VM suspensions), which keeps trace timestamps ordered. *)
let now_s () : float =
  let t = Unix.gettimeofday () -. t_start in
  if t > !t_last then t_last := t;
  !t_last

(* ---- metrics registry --------------------------------------------------- *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histo_stats = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** 0. when empty *)
  h_max : float;  (** 0. when empty *)
}

type histogram = {
  hg_name : string;
  mutable hg_count : int;
  mutable hg_sum : float;
  mutable hg_min : float;
  mutable hg_max : float;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let counter (name : string) : counter =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace counters name c;
      c

let incr ?(by = 1) (c : counter) = c.c_value <- c.c_value + by
let counter_value (c : counter) = c.c_value
let counter_name (c : counter) = c.c_name

(** Current value of the named counter; 0 if it was never registered. *)
let get_counter (name : string) : int =
  match Hashtbl.find_opt counters name with Some c -> c.c_value | None -> 0

let gauge (name : string) : gauge =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      Hashtbl.replace gauges name g;
      g

let set_gauge (g : gauge) (v : float) = g.g_value <- v
let gauge_value (g : gauge) = g.g_value

let get_gauge (name : string) : float =
  match Hashtbl.find_opt gauges name with Some g -> g.g_value | None -> 0.0

let histogram (name : string) : histogram =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        { hg_name = name; hg_count = 0; hg_sum = 0.0; hg_min = 0.0; hg_max = 0.0 }
      in
      Hashtbl.replace histograms name h;
      h

let observe (h : histogram) (v : float) =
  if h.hg_count = 0 then begin
    h.hg_min <- v;
    h.hg_max <- v
  end
  else begin
    if v < h.hg_min then h.hg_min <- v;
    if v > h.hg_max then h.hg_max <- v
  end;
  h.hg_count <- h.hg_count + 1;
  h.hg_sum <- h.hg_sum +. v

let histo_stats (h : histogram) : histo_stats =
  { h_count = h.hg_count; h_sum = h.hg_sum; h_min = h.hg_min; h_max = h.hg_max }

(** Time a thunk, record the duration in the named histogram, and return
    both the result and the duration. *)
let time (name : string) (f : unit -> 'a) : 'a * float =
  let h = histogram name in
  let t0 = now_s () in
  let r = f () in
  let dt = now_s () -. t0 in
  observe h dt;
  (r, dt)

(* ---- event stream ------------------------------------------------------- *)

type event = {
  ev_seq : int;
  ev_ts : float;  (** monotonic seconds since process start *)
  ev_kind : string;
  ev_fields : (string * json) list;
}

let seq = ref 0
let recording = ref false
let recorded : event list ref = ref []  (* newest first *)
let sink : out_channel option ref = ref None

let set_recording (on : bool) = recording := on

let attach_sink (oc : out_channel) = sink := Some oc

let detach_sink () =
  (match !sink with Some oc -> flush oc | None -> ());
  sink := None

(** Is anything listening?  Callers may use this to skip building
    expensive field lists. *)
let armed () = !recording || !sink <> None

let event_to_json (e : event) : json =
  Obj
    (("ts", Float e.ev_ts) :: ("seq", Int e.ev_seq)
    :: ("kind", Str e.ev_kind) :: e.ev_fields)

let emit (kind : string) (fields : (string * json) list) : unit =
  if armed () then begin
    let e = { ev_seq = !seq; ev_ts = now_s (); ev_kind = kind; ev_fields = fields }
    in
    Stdlib.incr seq;
    if !recording then recorded := e :: !recorded;
    match !sink with
    | Some oc ->
        output_string oc (json_to_string (event_to_json e));
        output_char oc '\n'
    | None -> ()
  end

(** Recorded events, oldest first. *)
let events () : event list = List.rev !recorded

(* ---- JSONL schema validation -------------------------------------------- *)

(** Schema of one trace line: a JSON object whose reserved keys are a
    non-negative number ["ts"], a non-negative integer ["seq"] and a
    non-empty string ["kind"]; no key may repeat. *)
let validate_event_line (line : string) : (unit, string) result =
  match json_of_string line with
  | Error e -> Error ("not valid JSON: " ^ e)
  | Ok (Obj kvs) -> (
      let keys = List.map fst kvs in
      let dup =
        List.find_opt (fun k -> List.length (List.filter (( = ) k) keys) > 1) keys
      in
      match dup with
      | Some k -> Error (Printf.sprintf "duplicate key %S" k)
      | None -> (
          match
            ( List.assoc_opt "ts" kvs,
              List.assoc_opt "seq" kvs,
              List.assoc_opt "kind" kvs )
          with
          | None, _, _ -> Error "missing \"ts\""
          | _, None, _ -> Error "missing \"seq\""
          | _, _, None -> Error "missing \"kind\""
          | Some ts, Some sq, Some kind -> (
              let ts_ok =
                match ts with
                | Float f -> f >= 0.0
                | Int i -> i >= 0
                | _ -> false
              in
              if not ts_ok then Error "\"ts\" must be a non-negative number"
              else
                match sq with
                | Int i when i >= 0 -> (
                    ignore i;
                    match kind with
                    | Str "" -> Error "\"kind\" must be non-empty"
                    | Str _ -> Ok ()
                    | _ -> Error "\"kind\" must be a string")
                | _ -> Error "\"seq\" must be a non-negative integer")))
  | Ok _ -> Error "not a JSON object"

let event_of_json (j : json) : (event, string) result =
  match j with
  | Obj kvs -> (
      match
        ( List.assoc_opt "ts" kvs,
          List.assoc_opt "seq" kvs,
          List.assoc_opt "kind" kvs )
      with
      | Some ts, Some (Int sq), Some (Str kind) ->
          let ts =
            match ts with Float f -> f | Int i -> float_of_int i | _ -> -1.0
          in
          if ts < 0.0 then Error "bad ts"
          else
            Ok
              {
                ev_seq = sq;
                ev_ts = ts;
                ev_kind = kind;
                ev_fields =
                  List.filter
                    (fun (k, _) -> k <> "ts" && k <> "seq" && k <> "kind")
                    kvs;
              }
      | _ -> Error "missing ts/seq/kind")
  | _ -> Error "not a JSON object"

(** Validate a whole trace: every line schema-valid, timestamps
    non-decreasing, sequence numbers strictly increasing, and run
    envelopes well-bracketed (every [run.finish] closes a distinct
    preceding [run.start] — a duplicated or orphaned finish envelope is
    rejected).  Returns the number of events on success, or
    [(line_number, message)] for the first offending line. *)
let validate_trace_lines (lines : string list) : (int, int * string) result =
  let rec go i prev_ts prev_seq ~starts ~finishes = function
    | [] -> Ok (i - 1)
    | line :: rest -> (
        match validate_event_line line with
        | Error e -> Error (i, e)
        | Ok () -> (
            match json_of_string line with
            | Error e -> Error (i, e)
            | Ok j -> (
                match event_of_json j with
                | Error e -> Error (i, e)
                | Ok e ->
                    if e.ev_ts < prev_ts then
                      Error (i, "timestamp went backwards")
                    else if e.ev_seq <= prev_seq then
                      Error (i, "sequence number did not increase")
                    else
                      let starts =
                        if e.ev_kind = "run.start" then starts + 1 else starts
                      in
                      if e.ev_kind = "run.finish" && finishes >= starts then
                        Error
                          ( i,
                            "duplicate \"run.finish\" envelope (no matching \
                             \"run.start\")" )
                      else
                        let finishes =
                          if e.ev_kind = "run.finish" then finishes + 1
                          else finishes
                        in
                        go (i + 1) e.ev_ts e.ev_seq ~starts ~finishes rest)))
  in
  match List.filter (fun l -> String.trim l <> "") lines with
  | [] ->
      (* an empty trace is its own failure mode (a sink that was armed
         but never flushed, a truncated file) — report it as such, not
         as "0 events, schema OK" and not as malformed JSON *)
      Error (0, "empty trace (no events)")
  | nonblank -> go 1 0.0 (-1) ~starts:0 ~finishes:0 nonblank

(* ---- chrome trace-event exporter ---------------------------------------- *)

(** Convert events to the Chrome trace-event format (load the result in
    [about://tracing] / Perfetto): instant events on one pid/tid, with
    the telemetry fields as [args]. *)
let chrome_of_events (evs : event list) : json =
  Obj
    [
      ( "traceEvents",
        List
          (List.map
             (fun e ->
               Obj
                 [
                   ("name", Str e.ev_kind);
                   ("ph", Str "i");
                   ("s", Str "t");
                   (* chrome timestamps are microseconds *)
                   ("ts", Float (e.ev_ts *. 1e6));
                   ("pid", Int 1);
                   ("tid", Int 1);
                   ("args", Obj e.ev_fields);
                 ])
             evs) );
      ("displayTimeUnit", Str "ms");
    ]

(* ---- row tables (one source of truth for harness + bench JSON) ---------- *)

type row = (string * json) list

let tables : (string, row list ref) Hashtbl.t = Hashtbl.create 16

let clear_table (name : string) = Hashtbl.remove tables name

let add_row ~(table : string) (r : row) : unit =
  match Hashtbl.find_opt tables table with
  | Some rows -> rows := r :: !rows
  | None -> Hashtbl.replace tables table (ref [ r ])

(** Rows in insertion order. *)
let rows ~(table : string) : row list =
  match Hashtbl.find_opt tables table with
  | Some rows -> List.rev !rows
  | None -> []

let table_to_json (name : string) : json =
  List (List.map (fun r -> Obj r) (rows ~table:name))

let table_names () : string list =
  Hashtbl.fold (fun k _ acc -> k :: acc) tables [] |> List.sort compare

(* ---- snapshots ---------------------------------------------------------- *)

type snapshot = {
  sn_counters : (string * int) list;  (** sorted by name *)
  sn_gauges : (string * float) list;  (** sorted by name *)
  sn_histograms : (string * histo_stats) list;  (** sorted by name *)
}

let snapshot () : snapshot =
  {
    sn_counters =
      Hashtbl.fold (fun k c acc -> (k, c.c_value) :: acc) counters []
      |> List.sort compare;
    sn_gauges =
      Hashtbl.fold (fun k g acc -> (k, g.g_value) :: acc) gauges []
      |> List.sort compare;
    sn_histograms =
      Hashtbl.fold (fun k h acc -> (k, histo_stats h) :: acc) histograms []
      |> List.sort compare;
  }

let snapshot_to_json (s : snapshot) : json =
  Obj
    [
      ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) s.sn_counters));
      ("gauges", Obj (List.map (fun (k, v) -> (k, Float v)) s.sn_gauges));
      ( "histograms",
        Obj
          (List.map
             (fun (k, h) ->
               ( k,
                 Obj
                   [
                     ("count", Int h.h_count);
                     ("sum", Float h.h_sum);
                     ("min", Float h.h_min);
                     ("max", Float h.h_max);
                   ] ))
             s.sn_histograms) );
      ( "tables",
        Obj (List.map (fun n -> (n, table_to_json n)) (table_names ())) );
    ]

let pp_snapshot ppf (s : snapshot) =
  List.iter (fun (k, v) -> Fmt.pf ppf "%s %d@." k v) s.sn_counters;
  List.iter (fun (k, v) -> Fmt.pf ppf "%s %g@." k v) s.sn_gauges;
  List.iter
    (fun (k, h) ->
      Fmt.pf ppf "%s count=%d sum=%g min=%g max=%g@." k h.h_count h.h_sum
        h.h_min h.h_max)
    s.sn_histograms

(* ---- file helpers ------------------------------------------------------- *)

let write_file (path : string) (content : string) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

(** Write the current metrics snapshot (sorted, deterministic key order)
    as pretty JSON. *)
let write_metrics (path : string) : unit =
  write_file path (json_to_string_pretty (snapshot_to_json (snapshot ())))

(** Write recorded events as a Chrome trace-event file. *)
let write_chrome (path : string) : unit =
  write_file path (json_to_string_pretty (chrome_of_events (events ())))

(* ---- reset -------------------------------------------------------------- *)

(** Zero every metric, drop recorded events and row tables, and restart
    the sequence counter.  Registered metric handles stay valid (they are
    zeroed in place, not dropped), so cached counters in long-lived
    structures keep working across resets. *)
let reset () : unit =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.0) gauges;
  Hashtbl.iter
    (fun _ h ->
      h.hg_count <- 0;
      h.hg_sum <- 0.0;
      h.hg_min <- 0.0;
      h.hg_max <- 0.0)
    histograms;
  recorded := [];
  seq := 0;
  Hashtbl.reset tables
