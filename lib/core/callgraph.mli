(** Static call graph over a linked program, with SCC condensation.

    Nodes are (class, method) pairs; there is an edge from a method to
    every method it names in an [Invoke] or [Spawn] instruction.  JIR has
    no virtual dispatch (see {!Jir.Types}), so the graph is exact: the
    summary engine ({!Summary}) walks its condensation bottom-up and only
    has to iterate inside recursive components. *)

type node = Jir.Types.class_name * Jir.Types.method_name

val compare_node : node -> node -> int

(** One strongly connected component of the call graph. *)
type scc = {
  members : node list;  (** sorted, for deterministic iteration *)
  recursive : bool;
      (** more than one member, or a single member that calls itself —
          summaries for these must be computed as a fixpoint *)
}

type t

val build : Jir.Program.t -> t
(** Index every method of the program and its outgoing call edges.
    Edges to unknown methods are dropped (the summarizer treats such
    calls as havoc anyway). *)

val callees : t -> node -> node list
(** Sorted, deduplicated direct callees ([Invoke] and [Spawn] targets). *)

val callers : t -> node -> node list
(** Sorted, deduplicated direct callers. *)

val sccs_bottom_up : t -> scc list
(** Tarjan condensation in reverse topological order: every callee's
    component appears before any of its callers' (modulo cycles, which
    share a component).  The order is deterministic for a given
    program. *)

val n_nodes : t -> int
