(** Interprocedural method summaries (see the mli).

    The summarizer runs a small abstract interpretation per method over a
    deliberately coarse value domain: each value is a set of parameters
    it may equal or be reachable from, a set of classes it may be a fresh
    allocation of, a fresh-but-imprecise flag, and a global flag.  All
    four empty/false means definitely null.  Side effects accumulate in a
    per-method record; because a few transfer results read the
    accumulators (loads from fresh receivers), the per-method fixpoint is
    re-run until the accumulators are stable too. *)

open Jir.Types

module Iset = Set.Make (Int)
module Cset = Set.Make (String)
module Fmap = Map.Make (Field_id)

(** Set of (parameter, field) must-written locations. *)
module Pf = Set.Make (struct
  type t = int * Field_id.t

  let compare (p1, f1) (p2, f2) =
    match Int.compare p1 p2 with 0 -> Field_id.compare f1 f2 | c -> c
end)

(* ---- public summary types --------------------------------------------- *)

type vshape = { vs_params : Iset.t; vs_fresh : bool; vs_global : bool }

type write = { w_val : vshape; w_int : bool; w_must : bool }

type param_summary = {
  ps_escapes : bool;
  ps_writes : write Fmap.t;
  ps_writes_top : bool;
}

type ret_shape =
  | Ret_plain
  | Ret_fresh of class_name * (vshape * bool) Fmap.t
  | Ret_shape of vshape

type statics_w = Sw_set of field_ref list | Sw_top

type t = {
  s_params : param_summary array;
  s_ret : ret_shape;
  s_statics : statics_w;
  s_elems_public : bool;
  s_global_heap : bool;
  s_allocates : bool;
  s_spawns : bool;
  s_calls_unknown : bool;
}

let null_shape = { vs_params = Iset.empty; vs_fresh = false; vs_global = false }
let global_shape = { null_shape with vs_global = true }

let equal_vshape a b =
  Iset.equal a.vs_params b.vs_params
  && a.vs_fresh = b.vs_fresh
  && a.vs_global = b.vs_global

let equal_write a b =
  equal_vshape a.w_val b.w_val && a.w_int = b.w_int && a.w_must = b.w_must

let equal_param a b =
  a.ps_escapes = b.ps_escapes
  && a.ps_writes_top = b.ps_writes_top
  && Fmap.equal equal_write a.ps_writes b.ps_writes

let equal_ret a b =
  match a, b with
  | Ret_plain, Ret_plain -> true
  | Ret_fresh (c1, m1), Ret_fresh (c2, m2) ->
      String.equal c1 c2
      && Fmap.equal
           (fun (v1, i1) (v2, i2) -> equal_vshape v1 v2 && i1 = i2)
           m1 m2
  | Ret_shape v1, Ret_shape v2 -> equal_vshape v1 v2
  | (Ret_plain | Ret_fresh _ | Ret_shape _), _ -> false

let equal_statics a b =
  match a, b with
  | Sw_top, Sw_top -> true
  | Sw_set l1, Sw_set l2 -> (
      try List.for_all2 equal_field_ref l1 l2 with Invalid_argument _ -> false)
  | (Sw_top | Sw_set _), _ -> false

let equal a b =
  Array.length a.s_params = Array.length b.s_params
  && Array.for_all2 equal_param a.s_params b.s_params
  && equal_ret a.s_ret b.s_ret
  && equal_statics a.s_statics b.s_statics
  && a.s_elems_public = b.s_elems_public
  && a.s_global_heap = b.s_global_heap
  && a.s_allocates = b.s_allocates
  && a.s_spawns = b.s_spawns
  && a.s_calls_unknown = b.s_calls_unknown

let pure (s : t) =
  (not s.s_elems_public) && (not s.s_global_heap) && (not s.s_spawns)
  && (not s.s_calls_unknown)
  && (match s.s_statics with Sw_set [] -> true | Sw_set _ | Sw_top -> false)
  && Array.for_all
       (fun p ->
         (not p.ps_escapes) && (not p.ps_writes_top) && Fmap.is_empty p.ps_writes)
       s.s_params

let havoc (m : meth) : t =
  {
    s_params =
      Array.of_list
        (List.map
           (fun ty ->
             match ty with
             | R ->
                 { ps_escapes = true; ps_writes = Fmap.empty; ps_writes_top = true }
             | I ->
                 {
                   ps_escapes = false;
                   ps_writes = Fmap.empty;
                   ps_writes_top = false;
                 })
           m.params);
    s_ret = (match m.ret with Some R -> Ret_shape global_shape | _ -> Ret_plain);
    s_statics = Sw_top;
    s_elems_public = true;
    s_global_heap = true;
    s_allocates = true;
    s_spawns = true;
    s_calls_unknown = true;
  }

(** Optimistic starting point for a recursive component's fixpoint: no
    effects at all, definitely-null return. *)
let bottom (m : meth) : t =
  {
    s_params =
      Array.of_list
        (List.map
           (fun _ ->
             { ps_escapes = false; ps_writes = Fmap.empty; ps_writes_top = false })
           m.params);
    s_ret = (match m.ret with Some R -> Ret_shape null_shape | _ -> Ret_plain);
    s_statics = Sw_set [];
    s_elems_public = false;
    s_global_heap = false;
    s_allocates = false;
    s_spawns = false;
    s_calls_unknown = false;
  }

let pp_vshape ppf (v : vshape) =
  if equal_vshape v null_shape then Fmt.string ppf "null"
  else
    Fmt.pf ppf "{%a%s%s}"
      Fmt.(list ~sep:comma int)
      (Iset.elements v.vs_params)
      (if v.vs_fresh then ";fresh" else "")
      (if v.vs_global then ";glob" else "")

let pp ppf (s : t) =
  let pp_param ppf (i, p) =
    Fmt.pf ppf "p%d:%s%s[%a]" i
      (if p.ps_escapes then "esc" else "-")
      (if p.ps_writes_top then "!top" else "")
      Fmt.(
        list ~sep:comma (fun ppf (f, w) ->
            pf ppf "%a%s=%a%s" Field_id.pp f
              (if w.w_must then "!" else "?")
              pp_vshape w.w_val
              (if w.w_int then "i" else "")))
      (Fmap.bindings p.ps_writes)
  in
  Fmt.pf ppf "@[<h>%a ret=%s%s%s%s%s@]"
    Fmt.(list ~sep:sp pp_param)
    (Array.to_list (Array.mapi (fun i p -> (i, p)) s.s_params))
    (match s.s_ret with
    | Ret_plain -> "plain"
    | Ret_fresh (c, _) -> "fresh:" ^ c
    | Ret_shape v -> Fmt.str "%a" pp_vshape v)
    (match s.s_statics with
    | Sw_top -> " statics:top"
    | Sw_set [] -> ""
    | Sw_set l -> Fmt.str " statics:%d" (List.length l))
    (if s.s_elems_public then " elems" else "")
    (if s.s_global_heap then " gheap" else "")
    (if s.s_calls_unknown then " unk" else "")

(* ---- tables ----------------------------------------------------------- *)

type table = {
  tbl : (Callgraph.node, t) Hashtbl.t;
  mutable havoced : int;
}

let find (t : table) (mr : method_ref) : t option =
  Hashtbl.find_opt t.tbl (mr.mclass, mr.mname)

let n_methods (t : table) = Hashtbl.length t.tbl
let n_havoced (t : table) = t.havoced

(* ---- the per-method summarizer ---------------------------------------- *)

(** Internal value shape; fresh allocations keep their class while
    provably unmixed, so a returned allocation can become {!Ret_fresh}. *)
type sv = {
  params : Iset.t;
  fresh : Cset.t;
  fresh_other : bool;
      (** fresh but imprecise: an array, a callee allocation of unknown
          class, or a value loaded back out of a fresh object *)
  global : bool;
}

let sv_bot =
  { params = Iset.empty; fresh = Cset.empty; fresh_other = false; global = false }

let sv_global = { sv_bot with global = true }

let sv_join a b =
  {
    params = Iset.union a.params b.params;
    fresh = Cset.union a.fresh b.fresh;
    fresh_other = a.fresh_other || b.fresh_other;
    global = a.global || b.global;
  }

let sv_equal a b =
  Iset.equal a.params b.params
  && Cset.equal a.fresh b.fresh
  && a.fresh_other = b.fresh_other
  && a.global = b.global

let sv_is_bot v = sv_equal v sv_bot
let has_fresh v = v.fresh_other || not (Cset.is_empty v.fresh)
let to_vshape v =
  { vs_params = v.params; vs_fresh = has_fresh v; vs_global = v.global }

(** Per-path state: locals, operand stack, and the set of
    (parameter, field) locations written on {e every} path so far. *)
type st = { regs : sv array; stk : sv list; must : Pf.t }

let st_equal a b =
  (try Array.for_all2 sv_equal a.regs b.regs with Invalid_argument _ -> false)
  && (try List.for_all2 sv_equal a.stk b.stk with Invalid_argument _ -> false)
  && Pf.equal a.must b.must

let st_join a b =
  {
    regs = Array.map2 sv_join a.regs b.regs;
    stk =
      (try List.map2 sv_join a.stk b.stk
       with Invalid_argument _ -> List.map (fun _ -> sv_global) a.stk);
    must = Pf.inter a.must b.must;
  }

(** Accumulated whole-method effects.  Every field only grows; [version]
    is bumped on growth so the driver can re-run the state fixpoint until
    the accumulators are stable (a few transfer results read them). *)
type acc = {
  mutable a_escaped : Iset.t;
  mutable a_fresh_escaped : bool;
  a_writes : (int * Field_id.t, sv * bool) Hashtbl.t;
      (** (value shape join, int write?) per param-reachable location *)
  mutable a_writes_top : Iset.t;
  a_fresh : (Field_id.t, sv * bool) Hashtbl.t;
      (** writes into fresh (call-allocated) receivers *)
  mutable a_fresh_top : bool;
  mutable a_statics : statics_w;
  mutable a_elems_global : bool;
  mutable a_global_heap : bool;
  mutable a_allocates : bool;
  mutable a_spawns : bool;
  mutable a_calls_unknown : bool;
  mutable a_ret : sv option;
  mutable a_must_ret : Pf.t option;
  mutable version : int;
}

let acc_create () =
  {
    a_escaped = Iset.empty;
    a_fresh_escaped = false;
    a_writes = Hashtbl.create 16;
    a_writes_top = Iset.empty;
    a_fresh = Hashtbl.create 16;
    a_fresh_top = false;
    a_statics = Sw_set [];
    a_elems_global = false;
    a_global_heap = false;
    a_allocates = false;
    a_spawns = false;
    a_calls_unknown = false;
    a_ret = None;
    a_must_ret = None;
    version = 0;
  }

let bump a = a.version <- a.version + 1

let esc_params (a : acc) (ps : Iset.t) =
  if not (Iset.subset ps a.a_escaped) then begin
    a.a_escaped <- Iset.union ps a.a_escaped;
    bump a
  end

(** The value becomes reachable from another thread (or, for fresh
    components, from the caller other than via the return value). *)
let esc_sv (a : acc) (v : sv) =
  esc_params a v.params;
  if has_fresh v && not a.a_fresh_escaped then begin
    a.a_fresh_escaped <- true;
    bump a
  end

let note_write (a : acc) tbl key (v : sv) ~(int_w : bool) =
  match Hashtbl.find_opt tbl key with
  | None ->
      Hashtbl.replace tbl key (v, int_w);
      bump a
  | Some (old, old_i) ->
      let j = sv_join old v in
      let i = old_i || int_w in
      if not (sv_equal j old && i = old_i) then begin
        Hashtbl.replace tbl key (j, i);
        bump a
      end

let note_static (a : acc) (fr : field_ref) =
  match a.a_statics with
  | Sw_top -> ()
  | Sw_set l ->
      if not (List.exists (equal_field_ref fr) l) then begin
        a.a_statics <-
          Sw_set (List.sort_uniq compare_field_ref (fr :: l));
        bump a
      end

let note_statics_top (a : acc) =
  match a.a_statics with
  | Sw_top -> ()
  | Sw_set _ ->
      a.a_statics <- Sw_top;
      bump a

let note_flag (a : acc) get set =
  if not (get ()) then begin
    set ();
    bump a
  end

let note_ret (a : acc) (v : sv) =
  match a.a_ret with
  | None ->
      a.a_ret <- Some v;
      bump a
  | Some old ->
      let j = sv_join old v in
      if not (sv_equal j old) then begin
        a.a_ret <- Some j;
        bump a
      end

let note_must_ret (a : acc) (m : Pf.t) =
  match a.a_must_ret with
  | None ->
      a.a_must_ret <- Some m;
      bump a
  | Some old ->
      let j = Pf.inter old m in
      if not (Pf.equal j old) then begin
        a.a_must_ret <- Some j;
        bump a
      end

exception Give_up

(** Summarization environment for one method. *)
type senv = {
  prog : Jir.Program.t;
  meth : meth;
  partial : table;  (** summaries computed so far (bottom-up, partial) *)
  acc : acc;
}

let is_ref_field (e : senv) (fr : field_ref) =
  match Jir.Program.find_field e.prog fr with
  | Some fd -> equal_ty fd.fd_ty R
  | None -> true (* unknown: treat conservatively as a reference *)

let is_ref_static (e : senv) (fr : field_ref) =
  match Jir.Program.find_static e.prog fr with
  | Some fd -> equal_ty fd.fd_ty R
  | None -> true

(** Dispatch a write of [v] into field [f] of the objects denoted by
    receiver [rv]: recorded against every parameter component, into the
    fresh accumulator for fresh components, and as a global heap write
    (which escapes the value) for global components.  Returns the updated
    must-set contribution: the location is definitely written when the
    receiver can only be the parameter itself. *)
let dispatch_write (e : senv) (rv : sv) (f : Field_id.t) (v : sv)
    ~(int_w : bool) (must : Pf.t) : Pf.t =
  let a = e.acc in
  Iset.iter (fun q -> note_write a a.a_writes (q, f) v ~int_w) rv.params;
  if has_fresh rv then begin
    note_write a a.a_fresh f v ~int_w;
    (* a parameter or global value captured inside a fresh object makes a
       precise fresh return claim unsafe only if that fresh object is
       itself returned or escapes — tracked via [a_fresh_escaped] and the
       return shape, nothing to do here *)
    ()
  end;
  if rv.global then begin
    note_flag a (fun () -> a.a_global_heap) (fun () -> a.a_global_heap <- true);
    if Field_id.equal f Field_id.Elems && not int_w then
      note_flag a
        (fun () -> a.a_elems_global)
        (fun () -> a.a_elems_global <- true);
    esc_sv a v
  end;
  (* a value with fresh components stored into a caller-visible object
     becomes caller-reachable: precise fresh returns are off *)
  if has_fresh v && (rv.global || not (Iset.is_empty rv.params)) then
    note_flag a
      (fun () -> a.a_fresh_escaped)
      (fun () -> a.a_fresh_escaped <- true);
  match Iset.elements rv.params with
  | [ q ]
    when (not rv.global) && (not (has_fresh rv)) ->
      Pf.add (q, f) must
  | _ -> must

(** Content of field [f] of the objects denoted by [rv] (reference
    fields).  Reads from parameter-reachable objects stay attributed to
    the parameters (the caller's closure covers their contents); reads
    from fresh receivers replay the accumulated fresh writes. *)
let read_field (e : senv) (rv : sv) (f : Field_id.t) : sv =
  let a = e.acc in
  let base =
    {
      params = rv.params;
      fresh = Cset.empty;
      fresh_other = has_fresh rv;
      global = rv.global || not (Iset.is_empty rv.params);
    }
  in
  if has_fresh rv then
    let from_fresh =
      if a.a_fresh_top then
        {
          params =
            List.mapi (fun i _ -> i) e.meth.params
            |> List.to_seq |> Iset.of_seq;
          fresh = Cset.empty;
          fresh_other = true;
          global = true;
        }
      else
        match Hashtbl.find_opt a.a_fresh f with
        | Some (v, _) -> { v with fresh = Cset.empty; fresh_other = has_fresh v }
        | None -> sv_bot
    in
    sv_join base from_fresh
  else base

let pop (st : st) : sv * st =
  match st.stk with
  | v :: stk -> (v, { st with stk })
  | [] -> raise Give_up (* malformed stack: bail to the havoc summary *)

let push (v : sv) (st : st) : st = { st with stk = v :: st.stk }

let pop_n (n : int) (st : st) : sv list * st =
  (* returns values in parameter order (args are pushed left-to-right) *)
  let rec go n acc st =
    if n = 0 then (acc, st)
    else
      let v, st = pop st in
      go (n - 1) (v :: acc) st
  in
  go n [] st

(** Map a callee-side shape onto caller-side (this method's) terms: the
    callee's parameters become the corresponding argument shapes, callee
    allocations become imprecise-fresh. *)
let map_shape (args : sv array) (vs : vshape) : sv =
  let base =
    {
      params = Iset.empty;
      fresh = Cset.empty;
      fresh_other = vs.vs_fresh;
      global = vs.vs_global;
    }
  in
  Iset.fold
    (fun p m ->
      if p < Array.length args then sv_join m args.(p) else { m with global = true })
    vs.vs_params base

(** Fold an [Invoke]'s effects through the callee summary; [None] means
    no summary is available and the call is havoc. *)
let apply_call (e : senv) (callee : meth) (summary : t option) (st : st) :
    st =
  let a = e.acc in
  let args_l, st = pop_n (List.length callee.params) st in
  let args = Array.of_list args_l in
  match summary with
  | None ->
      note_flag a
        (fun () -> a.a_calls_unknown)
        (fun () -> a.a_calls_unknown <- true);
      note_statics_top a;
      note_flag a
        (fun () -> a.a_global_heap)
        (fun () -> a.a_global_heap <- true);
      note_flag a
        (fun () -> a.a_elems_global)
        (fun () -> a.a_elems_global <- true);
      Array.iter
        (fun v ->
          esc_sv a v;
          Iset.iter
            (fun q -> note_write a a.a_writes (q, Field_id.Elems) sv_global ~int_w:true)
            v.params;
          if not (Iset.subset v.params a.a_writes_top) then begin
            a.a_writes_top <- Iset.union v.params a.a_writes_top;
            bump a
          end)
        args;
      let st =
        match callee.ret with
        | Some R -> push sv_global st
        | Some I -> push sv_bot st
        | None -> st
      in
      st
  | Some s ->
      (* unknown-field writes: any argument could have been stored into
         the written objects, so everything passed escapes together *)
      let writes_top_applies =
        Array.exists
          (fun (i, v) -> s.s_params.(i).ps_writes_top && not (sv_is_bot v))
          (Array.mapi (fun i v -> (i, v)) args)
      in
      if writes_top_applies then
        Array.iteri
          (fun i v ->
            esc_sv a v;
            if s.s_params.(i).ps_writes_top && not (Iset.subset v.params a.a_writes_top)
            then begin
              a.a_writes_top <- Iset.union v.params a.a_writes_top;
              bump a
            end;
            if s.s_params.(i).ps_writes_top && has_fresh v then
              note_flag a (fun () -> a.a_fresh_top) (fun () -> a.a_fresh_top <- true))
          args;
      (* escapes *)
      Array.iteri
        (fun i v -> if s.s_params.(i).ps_escapes then esc_sv a v)
        args;
      (* per-field writes, mapped into our terms *)
      let must = ref st.must in
      Array.iteri
        (fun i rv ->
          Fmap.iter
            (fun f (w : write) ->
              let v = map_shape args w.w_val in
              let must' =
                dispatch_write e rv f v ~int_w:w.w_int
                  (if w.w_must then !must else Pf.empty)
              in
              if w.w_must then must := must')
            s.s_params.(i).ps_writes)
        args;
      (* inherited whole-program effects *)
      (match s.s_statics with
      | Sw_top -> note_statics_top a
      | Sw_set l -> List.iter (note_static a) l);
      if s.s_global_heap then
        note_flag a (fun () -> a.a_global_heap) (fun () -> a.a_global_heap <- true);
      if s.s_elems_public then
        note_flag a (fun () -> a.a_elems_global) (fun () -> a.a_elems_global <- true);
      if s.s_allocates then
        note_flag a (fun () -> a.a_allocates) (fun () -> a.a_allocates <- true);
      if s.s_spawns then
        note_flag a (fun () -> a.a_spawns) (fun () -> a.a_spawns <- true);
      if s.s_calls_unknown then
        note_flag a
          (fun () -> a.a_calls_unknown)
          (fun () -> a.a_calls_unknown <- true);
      (* return value *)
      let st = { st with must = !must } in
      let st =
        match callee.ret, s.s_ret with
        | None, _ -> st
        | Some I, _ -> push sv_bot st
        | Some R, Ret_fresh (cn, fields) ->
            (* fold the returned object's captured writes into our fresh
               accumulator so a pass-through return stays precise *)
            Fmap.iter
              (fun f (vs, int_w) ->
                note_write a a.a_fresh f (map_shape args vs) ~int_w)
              fields;
            push { sv_bot with fresh = Cset.singleton cn } st
        | Some R, Ret_shape vs -> push (map_shape args vs) st
        | Some R, Ret_plain -> push sv_global st
      in
      st

(** Transfer of one instruction.  Mirrors the main analysis's control
    structure but over the coarse summary domain. *)
type outcome =
  | Fall of st
  | Jump of (int * st) list
  | Branch of { taken : int * st; fall : st }
  | Stop

let transfer (e : senv) (st : st) (instr : int instr) : outcome =
  let a = e.acc in
  match instr with
  | Iconst _ -> Fall (push sv_bot st)
  | Aconst_null -> Fall (push sv_bot st)
  | Iload _ -> Fall (push sv_bot st)
  | Aload i ->
      Fall (push (if i < Array.length st.regs then st.regs.(i) else sv_global) st)
  | Istore i | Astore i ->
      let v, st = pop st in
      if i < Array.length st.regs then begin
        let regs = Array.copy st.regs in
        regs.(i) <- v;
        Fall { st with regs }
      end
      else Fall st
  | Iinc _ -> Fall st
  | Ibin _ ->
      let _, st = pop st in
      let _, st = pop st in
      Fall (push sv_bot st)
  | Ineg ->
      let _, st = pop st in
      Fall (push sv_bot st)
  | Dup ->
      let v, _ = pop st in
      Fall (push v st)
  | Pop ->
      let _, st = pop st in
      Fall st
  | Swap ->
      let x, st = pop st in
      let y, st = pop st in
      Fall (push y (push x st))
  | Goto l -> Jump [ (l, st) ]
  | If_i (_, l) ->
      let _, st = pop st in
      Branch { taken = (l, st); fall = st }
  | If_icmp (_, l) ->
      let _, st = pop st in
      let _, st = pop st in
      Branch { taken = (l, st); fall = st }
  | If_null l | If_nonnull l ->
      let _, st = pop st in
      Branch { taken = (l, st); fall = st }
  | If_acmp (_, l) ->
      let _, st = pop st in
      let _, st = pop st in
      Branch { taken = (l, st); fall = st }
  | Getstatic fr ->
      Fall (push (if is_ref_static e fr then sv_global else sv_bot) st)
  | Putstatic fr ->
      let v, st = pop st in
      note_static a fr;
      if is_ref_static e fr then esc_sv a v;
      Fall st
  | Getfield fr ->
      let rv, st = pop st in
      let f = Field_id.of_field_ref fr in
      if is_ref_field e fr then Fall (push (read_field e rv f) st)
      else Fall (push sv_bot st)
  | Putfield fr ->
      let v, st = pop st in
      let rv, st = pop st in
      let f = Field_id.of_field_ref fr in
      let int_w = not (is_ref_field e fr) in
      let v = if int_w then sv_bot else v in
      let must = dispatch_write e rv f v ~int_w st.must in
      Fall { st with must }
  | New cn ->
      note_flag a (fun () -> a.a_allocates) (fun () -> a.a_allocates <- true);
      Fall (push { sv_bot with fresh = Cset.singleton cn } st)
  | Newarray _ ->
      note_flag a (fun () -> a.a_allocates) (fun () -> a.a_allocates <- true);
      let _, st = pop st in
      Fall (push { sv_bot with fresh_other = true } st)
  | Aaload ->
      let _, st = pop st in
      let rv, st = pop st in
      Fall (push (read_field e rv Field_id.Elems) st)
  | Aastore ->
      let v, st = pop st in
      let _, st = pop st in
      let rv, st = pop st in
      let must = dispatch_write e rv Field_id.Elems v ~int_w:false st.must in
      Fall { st with must }
  | Iaload ->
      let _, st = pop st in
      let _, st = pop st in
      Fall (push sv_bot st)
  | Iastore ->
      let _, st = pop st in
      let _, st = pop st in
      let rv, st = pop st in
      let must = dispatch_write e rv Field_id.Elems sv_bot ~int_w:true st.must in
      Fall { st with must }
  | Arraylength ->
      let _, st = pop st in
      Fall (push sv_bot st)
  | Invoke mr -> (
      match Jir.Program.find_method e.prog mr with
      | Some callee -> Fall (apply_call e callee (find e.partial mr) st)
      | None ->
          (* unlinkable target: treat as a havoc call with no arguments we
             can see — escape the whole reachable state conservatively by
             topping every parameter *)
          note_flag a
            (fun () -> a.a_calls_unknown)
            (fun () -> a.a_calls_unknown <- true);
          raise Give_up)
  | Spawn mr -> (
      note_flag a (fun () -> a.a_spawns) (fun () -> a.a_spawns <- true);
      match Jir.Program.find_method e.prog mr with
      | Some callee ->
          let args, st = pop_n (List.length callee.params) st in
          List.iter (esc_sv a) args;
          Fall st
      | None -> raise Give_up)
  | Return | Ireturn ->
      (match instr with
      | Ireturn -> ignore (pop st)
      | _ -> ());
      note_must_ret a st.must;
      Stop
  | Areturn ->
      let v, st' = pop st in
      ignore st';
      note_ret a v;
      note_must_ret a st.must;
      Stop

(** One full dataflow pass over the method with the current accumulators;
    the caller re-runs it until the accumulators stop growing. *)
let run_pass (e : senv) : unit =
  let m = e.meth in
  let cfg = Jir.Cfg.build m in
  let nb = Jir.Cfg.n_blocks cfg in
  let in_states : st option array = Array.make nb None in
  let visits = Array.make nb 0 in
  let queued = Array.make nb false in
  let work = Queue.create () in
  let enqueue id =
    if not queued.(id) then begin
      queued.(id) <- true;
      Queue.add id work
    end
  in
  let post_block id (s : st) =
    let merged =
      match in_states.(id) with None -> s | Some old -> st_join old s
    in
    match in_states.(id) with
    | Some old when st_equal old merged -> ()
    | Some _ | None ->
        in_states.(id) <- Some merged;
        enqueue id
  in
  let post_pc pc s = post_block cfg.block_of_pc.(pc) s in
  let entry =
    let regs = Array.make m.max_locals sv_bot in
    List.iteri
      (fun i ty ->
        match ty with
        | R -> regs.(i) <- { sv_bot with params = Iset.singleton i }
        | I -> ())
      m.params;
    { regs; stk = []; must = Pf.empty }
  in
  in_states.(0) <- Some entry;
  enqueue 0;
  while not (Queue.is_empty work) do
    let id = Queue.pop work in
    queued.(id) <- false;
    visits.(id) <- visits.(id) + 1;
    if visits.(id) > 512 then raise Give_up;
    match in_states.(id) with
    | None -> ()
    | Some s0 ->
        let b = Jir.Cfg.block cfg id in
        let rec go pc s =
          if pc >= b.end_pc then post_pc pc s
          else begin
            List.iter
              (fun h ->
                if pc >= h.from_pc && pc < h.to_pc then
                  post_pc h.target { s with stk = [] })
              m.handlers;
            match transfer e s m.code.(pc) with
            | Fall s -> go (pc + 1) s
            | Jump targets -> List.iter (fun (t, s) -> post_pc t s) targets
            | Branch { taken = t, ts; fall } ->
                post_pc t ts;
                go (pc + 1) fall
            | Stop -> ()
          end
        in
        go b.start_pc s0
  done

(** Finalize the accumulators into a public summary. *)
let finalize (e : senv) : t =
  let a = e.acc in
  let m = e.meth in
  (* once some fresh object is caller-reachable, writes into fresh
     receivers are caller-visible after all *)
  if a.a_fresh_escaped then begin
    Hashtbl.iter
      (fun f ((v : sv), _) ->
        esc_params a v.params;
        a.a_global_heap <- true;
        if Field_id.equal f Field_id.Elems then a.a_elems_global <- true)
      a.a_fresh;
    if a.a_fresh_top then begin
      a.a_global_heap <- true;
      a.a_elems_global <- true;
      a.a_escaped <-
        Iset.union a.a_escaped
          (List.mapi (fun i _ -> i) m.params |> List.to_seq |> Iset.of_seq)
    end
  end;
  let must_ret =
    match a.a_must_ret with
    | Some s -> s
    | None ->
        (* no normal return: every recorded location is vacuously a
           must-write *)
        Hashtbl.fold (fun k _ s -> Pf.add k s) a.a_writes Pf.empty
  in
  let params =
    Array.of_list
      (List.mapi
         (fun i _ty ->
           let ps_writes =
             Hashtbl.fold
               (fun (q, f) ((v : sv), int_w) m ->
                 if q = i then
                   Fmap.add f
                     {
                       w_val = to_vshape v;
                       w_int = int_w;
                       w_must = Pf.mem (q, f) must_ret;
                     }
                     m
                 else m)
               a.a_writes Fmap.empty
           in
           {
             ps_escapes = Iset.mem i a.a_escaped;
             ps_writes;
             ps_writes_top = Iset.mem i a.a_writes_top;
           })
         m.params)
  in
  let ret =
    match m.ret with
    | None | Some I -> Ret_plain
    | Some R -> (
        match a.a_ret with
        | None -> Ret_shape null_shape (* no reachable Areturn *)
        | Some v ->
            if
              Iset.is_empty v.params && (not v.global) && (not v.fresh_other)
              && Cset.cardinal v.fresh = 1
              && (not a.a_fresh_escaped)
              && not a.a_fresh_top
            then
              let cn = Cset.choose v.fresh in
              let fields =
                Hashtbl.fold
                  (fun f ((w : sv), int_w) m ->
                    Fmap.add f (to_vshape w, int_w) m)
                  a.a_fresh Fmap.empty
              in
              Ret_fresh (cn, fields)
            else Ret_shape (to_vshape v))
  in
  {
    s_params = params;
    s_ret = ret;
    s_statics = a.a_statics;
    s_elems_public = a.a_elems_global;
    s_global_heap = a.a_global_heap;
    s_allocates = a.a_allocates;
    s_spawns = a.a_spawns;
    s_calls_unknown = a.a_calls_unknown;
  }

let summarize (prog : Jir.Program.t) (partial : table) (node : Callgraph.node)
    : t =
  let cn, mn = node in
  let m = Jir.Program.get_method prog { mclass = cn; mname = mn } in
  let e = { prog; meth = m; partial; acc = acc_create () } in
  try
    (* re-run until the accumulators are stable: some transfer results
       (loads from fresh receivers, composed fresh-field merges) read
       them, so a single pass can under-report *)
    let rec stabilize round =
      if round > 8 then raise Give_up;
      let v0 = e.acc.version in
      run_pass e;
      if e.acc.version <> v0 then stabilize (round + 1)
    in
    stabilize 1;
    finalize e
  with Give_up -> havoc m

let of_program ?(fixpoint_bound = 12) (prog : Jir.Program.t) : table =
  let cg = Callgraph.build prog in
  let table = { tbl = Hashtbl.create 64; havoced = 0 } in
  let set n s = Hashtbl.replace table.tbl n s in
  let get n = Hashtbl.find table.tbl n in
  let meth_of (cn, mn) =
    Jir.Program.get_method prog { mclass = cn; mname = mn }
  in
  List.iter
    (fun (scc : Callgraph.scc) ->
      if not scc.recursive then
        List.iter (fun n -> set n (summarize prog table n)) scc.members
      else begin
        List.iter (fun n -> set n (bottom (meth_of n))) scc.members;
        let rec iterate round =
          if round > fixpoint_bound then begin
            (* widen: past the bound the whole component degrades to the
               blanket havoc summary (the pre-summary behaviour) *)
            List.iter (fun n -> set n (havoc (meth_of n))) scc.members;
            table.havoced <- table.havoced + List.length scc.members;
            Telemetry.incr
              (Telemetry.counter "summary.widened")
              ~by:(List.length scc.members)
          end
          else begin
            let changed =
              List.fold_left
                (fun changed n ->
                  let s' = summarize prog table n in
                  if equal s' (get n) then changed
                  else begin
                    set n s';
                    true
                  end)
                false scc.members
            in
            if changed then iterate (round + 1)
          end
        in
        iterate 1
      end)
    (Callgraph.sccs_bottom_up cg);
  table
