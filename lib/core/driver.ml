(** End-to-end "JIT compilation" pipeline: verify → inline → analyze.

    The result bundles the expanded program, the per-site barrier verdicts
    keyed the way the runtime looks them up, and compile-time measurements
    used by the Figure 2 reproduction. *)

open Jir.Types

type site_key = {
  sk_class : class_name;
  sk_method : method_name;
  sk_pc : int;  (** pc in the {e inlined} method *)
}

(** The runtime assumptions an elided verdict depends on.  Unconditional
    verdicts (pre-null, null-or-same, dead code) carry none; the §4.3
    extensions are conditional — on a single mutator, on the collector's
    array-scan direction, on the retrace protocol, and on the array
    analysis (mode A) that identified the arrays involved.  The runtime
    ({!Jrt} [Interp]) mirrors this type and revokes dependent elisions
    when an assumption is observed false. *)
type assumption =
  | Single_mutator
  | Retrace_collector
  | Descending_scan
  | Mode_a
  | Closed_world

let string_of_assumption = function
  | Single_mutator -> "single-mutator"
  | Retrace_collector -> "retrace-collector"
  | Descending_scan -> "descending-scan"
  | Mode_a -> "mode-A"
  | Closed_world -> "closed-world"

let assumptions_of_reason (r : Analysis.reason) : assumption list =
  match r with
  | Analysis.Keep | Analysis.Dead_code | Analysis.Pre_null_field
  | Analysis.Null_or_same ->
      []
  | Analysis.Pre_null_array -> [ Mode_a ]
  | Analysis.Move_down -> [ Mode_a; Single_mutator; Descending_scan ]
  | Analysis.Swap_first | Analysis.Swap_second ->
      [ Mode_a; Single_mutator; Retrace_collector ]

(** Guards of the {e insertion}-half verdict alone.  Null and literal
    in-method freshness are unconditional (the collector's allocate-black
    plus remark re-scan cover them); freshness proved through a callee
    summary stands on the closed world. *)
let ins_assumptions_of_reason (r : Analysis.ins_reason) : assumption list =
  match r with
  | Analysis.Ins_keep | Analysis.Ins_null | Analysis.Ins_fresh
  | Analysis.Ins_dead ->
      []
  | Analysis.Ins_summary_fresh -> [ Closed_world ]

type compiled = {
  program : Jir.Program.t;  (** after inlining *)
  results : Analysis.method_result list;
  verdicts : (site_key, Analysis.verdict) Hashtbl.t;
  guards : (site_key, assumption list) Hashtbl.t;
      (** per-program guard table: assumption set of every {e elided}
          site whose verdict is conditional *)
  ins_guards : (site_key, assumption list) Hashtbl.t;
      (** insertion-half guard table: assumption set of every site whose
          {e insertion}-half elision is conditional — kept apart from
          [guards] so a hybrid collector can revoke one half of a barrier
          while the other stays elided *)
  inline_limit : int;
  conf : Analysis.config;
  summaries : Summary.table option;
      (** the interprocedural summary table, when [conf.summaries] *)
  analysis_seconds : float;
      (** monotonic wall-clock seconds in the analysis proper
          ({!Telemetry.now_s}, so traces and verbose timings agree) *)
  inline_seconds : float;
  summary_seconds : float;  (** wall-clock seconds computing summaries *)
}

(** Statistics over static store sites (tech-report-style static counts). *)
type static_stats = {
  total_sites : int;
  elided_sites : int;
  field_sites : int;
  field_elided : int;
  array_sites : int;
  array_elided : int;
  static_sites : int;
  by_reason : (Analysis.reason * int) list;
  ins_elided_sites : int;
      (** sites whose {e insertion} (Dijkstra) half is removable — only a
          hybrid collector can cash these in *)
  both_elided_sites : int;  (** sites with both halves removable *)
  by_ins_reason : (Analysis.ins_reason * int) list;
}

(** One compilation pass, timed on the telemetry clock ({!Telemetry.time}
    observes the [compile.<pass>_s] histogram) and mirrored as an
    [analysis.pass] trace event. *)
let timed_pass (name : string) (f : unit -> 'a) : 'a * float =
  let r, dt = Telemetry.time ("compile." ^ name ^ "_s") f in
  Telemetry.emit "analysis.pass"
    [ ("pass", Telemetry.Str name); ("seconds", Telemetry.Float dt) ];
  (r, dt)

let compile ?(verify = true) ?(inline_limit = 100)
    ?(conf = Analysis.default_config) (prog : Jir.Program.t) : compiled =
  if verify then Jir.Verifier.verify_exn prog;
  let program, inline_seconds =
    timed_pass "inline" (fun () ->
        Inliner.inline_program ~conf:(Inliner.config inline_limit) prog)
  in
  let summaries, summary_seconds =
    timed_pass "summary" (fun () ->
        if conf.Analysis.summaries then Some (Summary.of_program program)
        else None)
  in
  let results, analysis_seconds =
    timed_pass "analysis" (fun () ->
        Analysis.analyze_program ~conf ?summaries program)
  in
  let verdicts = Hashtbl.create 256 in
  let guards = Hashtbl.create 16 in
  let ins_guards = Hashtbl.create 16 in
  List.iter
    (fun (r : Analysis.method_result) ->
      List.iter
        (fun (v : Analysis.verdict) ->
          let key =
            { sk_class = r.mr_class; sk_method = r.mr_method; sk_pc = v.v_pc }
          in
          Hashtbl.replace verdicts key v;
          (* Every elision in a method whose analysis consulted a callee
             summary additionally rests on the closed world: "loading" a
             class later invalidates the summaries, so the runtime must
             be able to revoke these sites.  The method-level flag cannot
             tell which half's proof leaned on a summary, so both halves
             carry the guard. *)
          let closed = if r.mr_summary_dependent then [ Closed_world ] else [] in
          (if v.v_elide then
             match assumptions_of_reason v.v_reason @ closed with
             | [] -> ()
             | assumptions -> Hashtbl.replace guards key assumptions);
          if v.v_ins_elide then
            match ins_assumptions_of_reason v.v_ins_reason @ closed with
            | [] -> ()
            | assumptions ->
                Hashtbl.replace ins_guards key
                  (List.sort_uniq compare assumptions))
        r.verdicts)
    results;
  Telemetry.incr ~by:(List.length results) (Telemetry.counter "analysis.methods");
  Telemetry.incr
    ~by:
      (List.fold_left
         (fun acc (r : Analysis.method_result) -> acc + r.iterations)
         0 results)
    (Telemetry.counter "analysis.fixpoint_iterations");
  Telemetry.incr ~by:(Hashtbl.length verdicts)
    (Telemetry.counter "analysis.sites.total");
  Telemetry.incr
    ~by:
      (Hashtbl.fold
         (fun _ (v : Analysis.verdict) n -> if v.v_elide then n + 1 else n)
         verdicts 0)
    (Telemetry.counter "analysis.sites.elided");
  (match summaries with
  | Some tbl ->
      Telemetry.incr ~by:(Summary.n_methods tbl)
        (Telemetry.counter "summary.methods");
      Telemetry.incr ~by:(Summary.n_havoced tbl)
        (Telemetry.counter "summary.havoced")
  | None -> ());
  {
    program;
    results;
    verdicts;
    guards;
    ins_guards;
    inline_limit;
    conf;
    summaries;
    analysis_seconds;
    inline_seconds;
    summary_seconds;
  }

(** Does the store at [key] still need its SATB barrier? *)
let needs_barrier (c : compiled) (key : site_key) : bool =
  match Hashtbl.find_opt c.verdicts key with
  | Some v -> not v.v_elide
  | None -> true

let verdict (c : compiled) (key : site_key) : Analysis.verdict option =
  Hashtbl.find_opt c.verdicts key

(** Tracing-state check the retrace collector's code generator emits at a
    swap-elided store: [`Open] at the pair's first store (also opens the
    safepoint-free window), [`Close] at the second. *)
let retrace_check (c : compiled) (key : site_key) :
    [ `None | `Open | `Close ] =
  match Hashtbl.find_opt c.verdicts key with
  | Some { v_elide = true; v_reason = Analysis.Swap_first; _ } -> `Open
  | Some { v_elide = true; v_reason = Analysis.Swap_second; _ } -> `Close
  | Some _ | None -> `None

(** The assumption set the elision at [key] depends on; empty for kept
    sites and unconditional verdicts. *)
let site_assumptions (c : compiled) (key : site_key) : assumption list =
  Option.value (Hashtbl.find_opt c.guards key) ~default:[]

(** The assumption set of the insertion-half elision at [key] alone. *)
let ins_site_assumptions (c : compiled) (key : site_key) : assumption list =
  Option.value (Hashtbl.find_opt c.ins_guards key) ~default:[]

(** The half-verdict lattice a hybrid-barrier code generator compiles
    from: the deletion verdict ([v_elide], overwritten-value facts) and
    the insertion verdict ([v_ins_elide], stored-value facts) combine
    pointwise. *)
type hybrid_verdict =
  [ `Keep  (** both halves stay *)
  | `Elide_deletion  (** only the Yuasa half proved removable *)
  | `Elide_insertion  (** only the Dijkstra half proved removable *)
  | `Elide_both ]

let string_of_hybrid_verdict : hybrid_verdict -> string = function
  | `Keep -> "keep"
  | `Elide_deletion -> "elide-deletion"
  | `Elide_insertion -> "elide-insertion"
  | `Elide_both -> "elide-both"

let hybrid_verdict (c : compiled) (key : site_key) : hybrid_verdict =
  match Hashtbl.find_opt c.verdicts key with
  | None -> `Keep
  | Some v -> (
      match v.Analysis.v_elide, v.Analysis.v_ins_elide with
      | false, false -> `Keep
      | true, false -> `Elide_deletion
      | false, true -> `Elide_insertion
      | true, true -> `Elide_both)

(** Does the insertion-half elision at [key] need its destination
    re-scanned at remark?  Freshness proofs do (the value may predate the
    cycle and be white); a proven-null store shades nothing either way. *)
let ins_repair_needed (c : compiled) (key : site_key) : bool =
  match Hashtbl.find_opt c.verdicts key with
  | Some
      {
        Analysis.v_ins_elide = true;
        v_ins_reason = Analysis.Ins_fresh | Analysis.Ins_summary_fresh;
        _;
      } ->
      true
  | Some _ | None -> false

(** Every assumption some elided site of the program depends on —
    deduplicated and in declaration order, for CLI safety checks and
    reporting. *)
let guarded_assumptions (c : compiled) : assumption list =
  Hashtbl.fold
    (fun _ assumptions acc ->
      List.fold_left
        (fun acc a -> if List.mem a acc then acc else a :: acc)
        acc assumptions)
    c.guards []
  |> List.sort compare

(* ---- elision provenance ("explain") ------------------------------------ *)

let string_of_site_key (k : site_key) : string =
  Printf.sprintf "%s.%s@%d" k.sk_class k.sk_method k.sk_pc

(** Why a site's barrier was removed, as an inspectable artifact: the
    rule (abstract fact) that fired, the chain of sub-facts it rests on,
    and the runtime guards the verdict depends on.  This is what
    [analyze --explain] prints and what revocation events carry, so a
    revoked site can name its original justification. *)
type provenance = {
  pv_key : site_key;
  pv_kind : Jir.Types.store_kind;
  pv_reason : Analysis.reason;
  pv_rule : string;  (** short rule name, e.g. ["pre-null-field"] *)
  pv_facts : string list;  (** the abstract-fact chain, outermost first *)
  pv_guards : assumption list;
  pv_summary_dependent : bool;
}

let rule_of_reason : Analysis.reason -> string = function
  | Analysis.Keep -> "keep"
  | Analysis.Dead_code -> "dead-code"
  | Analysis.Pre_null_field -> "pre-null-field"
  | Analysis.Pre_null_array -> "pre-null-array"
  | Analysis.Null_or_same -> "null-or-same"
  | Analysis.Move_down -> "move-down"
  | Analysis.Swap_first -> "swap-first"
  | Analysis.Swap_second -> "swap-second"

let facts_of_reason : Analysis.reason -> string list = function
  | Analysis.Keep -> [ "no elision rule applied; the SATB barrier stays" ]
  | Analysis.Dead_code -> [ "the store is unreachable (dead code, §2.4)" ]
  | Analysis.Pre_null_field ->
      [
        "receiver is a unique thread-local object (R_id uniqueness, \
         §2.4 two-names precision)";
        "the stored-to field is definitely null on every path to the \
         store (§2 abstract nullness)";
      ]
  | Analysis.Pre_null_array ->
      [
        "the array identity is tracked by the mode-A array analysis (§3)";
        "the store index lies inside the array's null range NR (§3.1)";
      ]
  | Analysis.Null_or_same ->
      [
        "the overwritten slot is null or already holds the stored value \
         (null-or-same, §4.3)";
      ]
  | Analysis.Move_down ->
      [
        "delete-by-shift copy store: the value was loaded from the same \
         array at a higher index (§4.3 move-down)";
        "the collector scans object arrays in descending index order, so \
         the source slot is visited before the destination";
        "a single mutator: no concurrent store can interleave the shift";
      ]
  | Analysis.Swap_first ->
      [
        "first store of an elided pairwise swap: both stores sit in one \
         basic block with only whitelisted instructions between (§4.3)";
        "a tracing-state check is compiled in place of the barrier and \
         opens the safepoint-free window";
        "the retrace collector re-scans the object if its scan was in \
         flight when the unlogged store hit";
      ]
  | Analysis.Swap_second ->
      [
        "second store of an elided pairwise swap (§4.3)";
        "its tracing-state check closes the safepoint-free window opened \
         by the first store";
      ]

let facts_of_ins_reason : Analysis.ins_reason -> string list = function
  | Analysis.Ins_keep -> []
  | Analysis.Ins_null ->
      [ "insertion half: the stored value is provably null (nothing to shade)" ]
  | Analysis.Ins_fresh ->
      [
        "insertion half: every possible stored value is an in-method \
         allocation — black if allocated during marking, covered by the \
         destination's remark re-scan otherwise";
      ]
  | Analysis.Ins_summary_fresh ->
      [
        "insertion half: the stored value is fresh by a callee summary's \
         Ret_fresh — valid only while the world stays closed";
      ]
  | Analysis.Ins_dead ->
      [ "insertion half: the store is unreachable (dead code)" ]

(** Provenance for the verdict at [key]; [None] for unknown sites. *)
let explain (c : compiled) (key : site_key) : provenance option =
  match Hashtbl.find_opt c.verdicts key with
  | None -> None
  | Some v ->
      let summary_dependent =
        List.exists
          (fun (r : Analysis.method_result) ->
            r.mr_summary_dependent && r.mr_class = key.sk_class
            && r.mr_method = key.sk_method)
          c.results
      in
      let facts =
        facts_of_reason v.v_reason
        @ (if v.v_ins_elide then facts_of_ins_reason v.v_ins_reason else [])
        @
        if v.v_elide && summary_dependent then
          [
            "the analysis consulted interprocedural callee summaries: \
             valid only while no class loads after compilation \
             (closed world)";
          ]
        else []
      in
      Some
        {
          pv_key = key;
          pv_kind = v.v_kind;
          pv_reason = v.v_reason;
          pv_rule = rule_of_reason v.v_reason;
          pv_facts = facts;
          pv_guards =
            (if v.v_elide then
               Option.value (Hashtbl.find_opt c.guards key) ~default:[]
             else []);
          pv_summary_dependent = summary_dependent;
        }

(** Provenance of every {e elided} site, sorted by site id
    (class, method, pc) so the output is deterministic. *)
let explanations (c : compiled) : provenance list =
  Hashtbl.fold
    (fun key (v : Analysis.verdict) acc ->
      if v.v_elide then
        match explain c key with Some p -> p :: acc | None -> acc
      else acc)
    c.verdicts []
  |> List.sort (fun a b -> compare a.pv_key b.pv_key)

let pp_provenance ppf (p : provenance) =
  Fmt.pf ppf "%s %s %s"
    (string_of_site_key p.pv_key)
    (match p.pv_kind with
    | Jir.Types.Field_store -> "putfield"
    | Jir.Types.Array_store -> "aastore"
    | Jir.Types.Static_store -> "putstatic")
    p.pv_rule;
  List.iter (fun f -> Fmt.pf ppf "@.    - %s" f) p.pv_facts;
  match p.pv_guards with
  | [] -> Fmt.pf ppf "@.    guards: none (unconditional)"
  | gs ->
      Fmt.pf ppf "@.    guards: %s"
        (String.concat ", " (List.map string_of_assumption gs))

(** One-line justification string attached to runtime revocation events. *)
let justification (c : compiled) (key : site_key) : string option =
  match explain c key with
  | Some p when p.pv_guards <> [] || p.pv_reason <> Analysis.Keep ->
      Some
        (Printf.sprintf "%s (guards: %s)" p.pv_rule
           (match p.pv_guards with
           | [] -> "none"
           | gs -> String.concat ", " (List.map string_of_assumption gs)))
  | Some _ | None -> None

let static_stats (c : compiled) : static_stats =
  let total = ref 0
  and elided = ref 0
  and field = ref 0
  and field_e = ref 0
  and array = ref 0
  and array_e = ref 0
  and static_ = ref 0
  and ins_elided = ref 0
  and both_elided = ref 0 in
  let reasons = Hashtbl.create 8 in
  let ins_reasons = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ (v : Analysis.verdict) ->
      incr total;
      if v.v_elide then incr elided;
      if v.v_ins_elide then incr ins_elided;
      if v.v_elide && v.v_ins_elide then incr both_elided;
      (if v.v_ins_elide then
         let k = v.v_ins_reason in
         Hashtbl.replace ins_reasons k
           (1 + Option.value ~default:0 (Hashtbl.find_opt ins_reasons k)));
      (match v.v_kind with
      | Field_store ->
          incr field;
          if v.v_elide then incr field_e
      | Array_store ->
          incr array;
          if v.v_elide then incr array_e
      | Static_store -> incr static_);
      let k = v.v_reason in
      Hashtbl.replace reasons k (1 + Option.value ~default:0 (Hashtbl.find_opt reasons k)))
    c.verdicts;
  {
    total_sites = !total;
    elided_sites = !elided;
    field_sites = !field;
    field_elided = !field_e;
    array_sites = !array;
    array_elided = !array_e;
    static_sites = !static_;
    by_reason =
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) reasons []
      |> List.sort compare;
    ins_elided_sites = !ins_elided;
    both_elided_sites = !both_elided;
    by_ins_reason =
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) ins_reasons []
      |> List.sort compare;
  }

let pp_static_stats ppf (s : static_stats) =
  Fmt.pf ppf
    "sites: %d total, %d elided (%.1f%%); fields %d/%d; arrays %d/%d; statics %d"
    s.total_sites s.elided_sites
    (if s.total_sites = 0 then 0.
     else 100. *. float_of_int s.elided_sites /. float_of_int s.total_sites)
    s.field_elided s.field_sites s.array_elided s.array_sites s.static_sites;
  let interesting =
    List.filter (fun (r, _) -> r <> Analysis.Keep) s.by_reason
    |> List.sort compare
  in
  if interesting <> [] then
    Fmt.pf ppf "; by reason: %a"
      Fmt.(
        list ~sep:comma (fun ppf (r, n) ->
            pf ppf "%s %d" (Analysis.string_of_reason r) n))
      interesting;
  if s.ins_elided_sites > 0 then (
    Fmt.pf ppf "; insertion-half %d elided (%d both)" s.ins_elided_sites
      s.both_elided_sites;
    let ins_interesting =
      List.filter (fun (r, _) -> r <> Analysis.Ins_keep) s.by_ins_reason
    in
    if ins_interesting <> [] then
      Fmt.pf ppf "; by ins reason: %a"
        Fmt.(
          list ~sep:comma (fun ppf (r, n) ->
              pf ppf "%s %d" (Analysis.string_of_ins_reason r) n))
        ins_interesting)

(** Code-size model for the Figure 3 reproduction: every bytecode compiles
    to roughly [codegen_expansion] machine instructions, plus the inline
    footprint of an SATB barrier at every reference store that kept its
    barrier.  The paper (§1) puts the barrier at 9-12 RISC instructions;
    we charge the static inline portion.  With this model barrier
    elimination reduces compiled code size by a few percent, as the
    paper's Figure 3 reports (2-6%). *)
let barrier_footprint = 11

let codegen_expansion = 8

let code_size (c : compiled) : int =
  let base = codegen_expansion * Jir.Program.total_instr_count c.program in
  let barriers =
    Hashtbl.fold
      (fun _ (v : Analysis.verdict) acc -> if v.v_elide then acc else acc + 1)
      c.verdicts 0
  in
  base + (barrier_footprint * barriers)
