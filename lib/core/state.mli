(** Abstract program states for the barrier-removal analyses: the paper's
    ⟨ρ, σ, NL, stk⟩ tuple (§2.1) plus the array-analysis components Len
    and NR (§3.2), the null-or-same facts (§4.3), and the move-down shift
    chains (§4.3). *)

module Rset = Refsym.Set

module Sigma : Map.S with type key = Refsym.t * Field_id.t
module Rmap : Map.S with type key = Refsym.t

(** Null-or-same facts: [(r, f)] ∈ [nos v] means [v] equals the current
    content of [r.f] or that content is null — either way an SATB barrier
    for [r.f ← v] is unnecessary (§4.3). *)
module Nos : Set.S with type elt = Refsym.t * Field_id.t

(** Must-alias value sources: two values carrying the same source are the
    same concrete reference (used by the §4.3 move-down extension). *)
type must_src = Mstatic of Jir.Types.class_name * Jir.Types.field_name

val equal_must_src : must_src -> must_src -> bool
val pp_must_src : must_src Fmt.t

type eprov = { ep_src : must_src; ep_idx : Intval.t; ep_displaced : bool }
(** Element provenance (§4.3 rearrangements): the value was loaded from
    the array identified by [ep_src] at [ep_idx] and, unless displaced,
    still is that slot's current content.  A displaced provenance means
    the slot was just overwritten by the first store of a pending swap:
    the value is the unique element pushed out of [ep_idx]. *)

val equal_eprov : eprov -> eprov -> bool

type refinfo = {
  refs : Rset.t;  (** empty set = definitely null *)
  nos : Nos.t;
  msrc : must_src option;
      (** this value equals the current content of the source *)
  eprov : eprov option;
}

(** Abstract values; [Clash] covers locals holding different kinds on
    different paths (never read, per the verifier). *)
type aval = Bot | Clash | Int of Intval.t | Ref of refinfo

type t = {
  rho : aval array;  (** locals *)
  stk : aval list;  (** operand stack, top first *)
  nl : Rset.t;  (** non-thread-local symbols *)
  sigma : aval Sigma.t;  (** abstract store *)
  len : Intval.t Rmap.t;  (** array lengths *)
  nr : Intrange.t Rmap.t;  (** null ranges *)
  shift : (must_src * Intval.t) option;
      (** active move-down chain: slots ≤ idx of the identified array
          hold null or a value also stored at a lower index *)
}

val mk_refinfo :
  ?msrc:must_src -> ?eprov:eprov -> ?nos:Nos.t -> Rset.t -> refinfo

val ref_of : Rset.t -> aval
val null_v : aval
val global_v : aval
val pp_aval : aval Fmt.t
val pp : t Fmt.t
val equal_aval : aval -> aval -> bool
val equal : t -> t -> bool

(** {2 Lookups} *)

val lookup_field : t -> Refsym.t -> Field_id.t -> aval
(** The paper's lookup(σ, r, NL, f): {GlobalRef} for non-thread-local
    references, the recorded value otherwise. *)

val lookup_ref_field : t -> Rset.t -> Field_id.t -> refinfo
val lookup_int_field : t -> Rset.t -> Field_id.t -> Intval.t

val lookup_len : t -> Rset.t -> Intval.t
(** Sound even for escaped arrays: lengths are immutable. *)

val lookup_nr : t -> Refsym.t -> Intrange.t
(** [Empty] once the array may be visible to another thread. *)

(** {2 Escape (non-thread-locality)} *)

val all_non_tl : t -> Rset.t -> t
(** The paper's AllNonTL: extend NL with the set and everything
    transitively reachable from it via σ. *)

val all_non_tl_cond : t -> objs:Rset.t -> value:aval -> t
(** AllNonTLCond: the stored value escapes if any receiver already has. *)

val escape_args : t -> aval list -> t
(** nAllNonTL over call arguments. *)

val reach_closure : t -> Rset.t -> Rset.t
(** Every symbol reachable from the set through explicit σ entries, the
    set included — without marking anything non-thread-local.  Used by
    the summary-aware call transfer to find the possible receivers of a
    callee's writes through a parameter. *)

(** {2 Allocation-site symbol recycling (§2.4 newinstance)} *)

val retire_site : t -> int -> t
(** Substitute [R_site/A → R_site/B] throughout the state (the paper's
    rngSubst / transfer / replS). *)

(** {2 Merging (§2.2, §3.5)} *)

val merge_nos : t -> t -> refinfo -> refinfo -> Nos.t
val merge_msrc : must_src option -> must_src option -> must_src option

val merge_eprov :
  Intval.Ctx.ctx -> eprov option -> eprov option -> eprov option
(** Same source and displacement status; indices merged as integer state
    components. *)

val merge_aval : Intval.Ctx.ctx -> t -> t -> aval -> aval -> aval

val merge : ?widen:bool -> gen:Intval.Gen.t -> t -> t -> t
(** Merge two whole states through one shared stride-discovery context,
    so all integer state components (ρ, stk, NR bounds, shift indices)
    can share variable unknowns (§3.5). *)

(** {2 Fact invalidation} *)

val kill_nos : t -> (Refsym.t * Field_id.t) list -> t
(** Remove null-or-same facts about possibly-written locations from every
    value in the state. *)

val kill_must_src : t -> (must_src -> bool) -> t
val kill_all_must_src : t -> t
val kill_all_eprov : t -> t

val eprov_after_store :
  t -> src:must_src option -> idx:Intval.t -> displace:bool -> t
(** Refine element provenances across an object-array store: facts about
    the must-same array at a provably different (nonzero constant delta)
    index survive; with [displace], facts at provably the same index
    become displaced (first half of a swap); everything else — including
    facts about other or unknown sources, which may alias the stored-to
    array — dies. *)

(** {2 Stack and locals} *)

exception Analysis_bug of string

val push : aval -> t -> t
val pop : t -> aval * t
val pop_int : t -> Intval.t * t
val pop_ref : t -> refinfo * t
val set_local : t -> int -> aval -> t
val local : t -> int -> aval
