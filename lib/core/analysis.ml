(** The barrier-removal abstract interpretation (paper §2 and §3).

    A flow-sensitive, intraprocedural iterative dataflow analysis over
    basic blocks.  Each reference store site receives a verdict: whether
    its SATB write barrier may be omitted, and why.  The verdict recorded
    at the analysis fixed point is the sound one (§2.4, last paragraph).

    Modes correspond to the configurations measured in the paper's
    Figures 2 and 3:
    - [B] — no analysis, every barrier kept (baseline);
    - [F] — field analysis only (§2): pre-null object-field stores;
    - [A] — field + array analysis (§3): additionally proves array-element
      stores initializing via null ranges and stride inference.

    The [null_or_same] flag enables the §4.3 extension (implemented here,
    where the paper did the reasoning "by inspection"): a store may also be
    elided when the written value provably either equals the current field
    content or overwrites null, for unique thread-local receivers. *)

open Jir.Types
module Rset = Refsym.Set

type mode = B | F | A

let mode_of_string = function
  | "B" | "b" -> Some B
  | "F" | "f" -> Some F
  | "A" | "a" -> Some A
  | _ -> None

let string_of_mode = function B -> "B" | F -> "F" | A -> "A"

type config = {
  mode : mode;
  null_or_same : bool;
  move_down : bool;
      (** enable the §4.3 move-down (delete-by-shift) elision; it is only
          applied when the program is single-mutator (no spawn) and
          requires the collector to scan object arrays in descending
          index order *)
  swap : bool;
      (** enable the §4.3 pairwise-swap (rearrangement) elision: both
          stores of a same-block swap of two elements of a
          must-identified array.  Only sound under the retrace
          collector's tracing-state protocol ({!Retrace_gc}), so elided
          pairs are surfaced as tracing-check sites rather than plain
          elisions; gated on single-mutator like move-down *)
  two_names : bool;
      (** the paper's §2.4 precision: a unique [R_id/A] for the most
          recent allocation plus a summary [R_id/B].  Disabling it (for
          the ablation study) collapses every site to its summary name,
          losing strong update and the constructor-fresh-object facts *)
  max_visits : int;
      (** widening threshold: after this many visits of a block, integer
          components merge straight to ⊤ *)
  summaries : bool;
      (** consult interprocedural callee summaries ({!Summary}) at
          non-inlined [Invoke]s instead of the blanket havoc; unknown
          targets still havoc *)
  debug : bool;  (** trace block states and verdicts on stderr *)
}

let default_config =
  {
    mode = A;
    null_or_same = false;
    move_down = false;
    swap = false;
    two_names = true;
    max_visits = 24;
    summaries = false;
    debug = false;
  }

(** Why a barrier was removed (or kept). *)
type reason =
  | Keep
  | Pre_null_field  (** §2: receiver thread-local, field definitely null *)
  | Pre_null_array  (** §3: index within the array's null range *)
  | Null_or_same  (** §4.3 extension *)
  | Move_down
      (** §4.3 extension: delete-by-shift store whose overwritten value is
          null or was re-stored at a lower index *)
  | Swap_first
      (** §4.3 extension: first store of an elided pairwise swap — the
          displaced element is provably re-stored by the pair's second
          store in the same basic block.  Requires the retrace
          collector's tracing-state check in place of the barrier. *)
  | Swap_second  (** second store of an elided pairwise swap *)
  | Dead_code  (** store unreachable in the analyzed method *)

let string_of_reason = function
  | Keep -> "keep"
  | Pre_null_field -> "pre-null-field"
  | Pre_null_array -> "pre-null-array"
  | Null_or_same -> "null-or-same"
  | Move_down -> "move-down"
  | Swap_first -> "swap-first"
  | Swap_second -> "swap-second"
  | Dead_code -> "dead-code"

(** Why the {e insertion} (Dijkstra) half of a hybrid barrier was removed
    (or kept).  The deletion-half verdict above proves facts about the
    {e overwritten} value; these prove facts about the {e stored} value —
    the two halves are independent, which is what lets a hybrid-barrier
    collector elide one without the other. *)
type ins_reason =
  | Ins_keep
  | Ins_null  (** stored value is provably null: nothing to shade *)
  | Ins_fresh
      (** stored value was allocated in the analyzed method, so it is
          black when allocated during marking and the destination's
          remark re-scan covers it otherwise *)
  | Ins_summary_fresh
      (** fresh via a callee summary's [Ret_fresh]: additionally rests on
          the closed-world assumption *)
  | Ins_dead  (** store unreachable in the analyzed method *)

let string_of_ins_reason = function
  | Ins_keep -> "ins-keep"
  | Ins_null -> "ins-null"
  | Ins_fresh -> "ins-fresh"
  | Ins_summary_fresh -> "ins-summary-fresh"
  | Ins_dead -> "ins-dead"

let ins_elides = function
  | Ins_keep -> false
  | Ins_null | Ins_fresh | Ins_summary_fresh | Ins_dead -> true

type verdict = {
  v_pc : int;
  v_kind : store_kind;
  v_elide : bool;
  v_reason : reason;
  v_ins_elide : bool;  (** the insertion half alone is removable *)
  v_ins_reason : ins_reason;
}

type method_result = {
  mr_class : class_name;
  mr_method : method_name;
  verdicts : verdict list;  (** one per reference-store site, by pc *)
  iterations : int;  (** block visits until the fixed point *)
  mr_summary_dependent : bool;
      (** some callee summary was consulted while analyzing the method:
          its elisions additionally depend on the closed-world assumption
          (no late class loading changes callee behaviour) *)
}

(** Analysis of one method. *)

(** A pending first store of a pairwise swap (§4.3): slot [sp_lo] of the
    array identified by [sp_src] was just overwritten with the element
    loaded from [sp_hi]; the displaced element (provenance [sp_lo]) must
    be re-stored at exactly [sp_hi] before the pending fact dies for the
    pair to be elidable.  The fact only survives across simple
    non-throwing instructions, so a matched pair sits in one basic block
    with nothing in between that could trigger a safepoint — the window
    contract the retrace collector relies on. *)
type swap_pend = {
  sp_src : State.must_src;
  sp_lo : Intval.t;
  sp_hi : Intval.t;
  sp_pc : int;
  sp_elided : bool;
      (** the first store was already elided for another reason, so no
          [Swap_first] verdict should overwrite it *)
}

type env = {
  conf : config;
  prog : Jir.Program.t;
  cls : cls;
  meth : meth;
  gen : Intval.Gen.t;
  in_ctor : bool;
  catches_bounds : bool;
      (** §3.6 footnote: methods that catch array-bounds exceptions get no
          array-store elision at all *)
  track_ints : bool;
  move_down : bool;
      (** §4.3 move-down elision, already gated on single-mutator *)
  swap : bool;
      (** §4.3 swap elision, gated on single-mutator, mode [A], and the
          absence of bounds handlers *)
  mutable swap_pending : swap_pend option;
      (** block-local: reset at block entry, killed by any instruction
          outside the swap-window whitelist *)
  summary_tbl : Summary.table option;
      (** callee summaries; [Some] only when [conf.summaries] *)
  mutable used_summaries : bool;
      (** a summary was consulted on some path through this method *)
  summary_fresh_sites : (int, unit) Hashtbl.t;
      (** pcs whose allocation symbol was minted for a summary-proven
          fresh return ([Ret_fresh]) rather than a literal [New]:
          insertion-half freshness through them is [Ins_summary_fresh] *)
}

(** Outcome of transferring one instruction. *)
type outcome =
  | Fall of State.t
  | Jump of (int * State.t) list  (** (target pc, state) *)
  | Branch of { taken : int * State.t; fall : State.t }
  | Stop

let is_ref_field env fr = Jir.Types.equal_ty (Jir.Program.field_ty env.prog fr) R

let int_top = State.Int Intval.top

(** Entry state (§2.3, §3.4): reference arguments hold their [Arg i]
    symbols (all non-thread-local except a constructor's receiver); integer
    arguments and argument array lengths get fresh constant unknowns; in a
    constructor the receiver's declared fields are null. *)
let entry_state (env : env) : State.t =
  let m = env.meth in
  let rho = Array.make m.max_locals State.Bot in
  let nl = ref (Rset.singleton Refsym.Global) in
  let len = ref State.Rmap.empty in
  let sigma = ref State.Sigma.empty in
  List.iteri
    (fun i ty ->
      match ty with
      | R ->
          let sym = Refsym.Arg i in
          rho.(i) <- State.ref_of (Rset.singleton sym);
          if not (env.in_ctor && i = 0) then nl := Rset.add sym !nl;
          if env.track_ints then
            len :=
              State.Rmap.add sym
                (Intval.of_const_unknown (Intval.Gen.fresh_const env.gen))
                !len
      | I ->
          rho.(i) <-
            (if env.track_ints then
               State.Int
                 (Intval.of_const_unknown (Intval.Gen.fresh_const env.gen))
             else int_top))
    m.params;
  if env.in_ctor then
    List.iter
      (fun fd ->
        let key = (Refsym.Arg 0, Field_id.F (env.cls.cname, fd.fd_name)) in
        let v =
          match fd.fd_ty with
          | R -> State.null_v
          | I -> State.Int (Intval.const 0)
        in
        sigma := State.Sigma.add key v !sigma)
      env.cls.fields;
  {
    rho;
    stk = [];
    nl = !nl;
    sigma = !sigma;
    len = !len;
    nr = State.Rmap.empty;
    shift = None;
  }

let push_int env i s =
  State.push (if env.track_ints then State.Int i else int_top) s

(** Allocate at [pc]: retire the site's previous most-recent symbol into
    the summary symbol, then bind the fresh [R_pc/A].  With the two-names
    precision ablated, every allocation binds the (non-unique) summary
    name directly. *)
let fresh_alloc env pc (s : State.t) : Refsym.t * State.t =
  if env.conf.two_names then (Refsym.recent pc, State.retire_site s pc)
  else (Refsym.summary pc, s)

(** Field-store verdict (§2.4): every possible receiver is thread-local
    and the field's abstract content is the empty set of references. *)
let field_store_elidable (s : State.t) (objs : Rset.t) (f : Field_id.t) : bool
    =
  Rset.for_all
    (fun ot ->
      (not (Rset.mem ot s.State.nl))
      &&
      match State.Sigma.find_opt (ot, f) s.State.sigma with
      | Some (State.Ref { refs; _ }) -> Rset.is_empty refs
      | Some (State.Bot | State.Clash | State.Int _) | None -> false)
    objs

(** Array-store verdict (§3): every possible receiver is thread-local and
    the index provably lies in its null range. *)
let array_store_elidable (s : State.t) (arrs : Rset.t) (ind : Intval.t) : bool
    =
  Rset.for_all
    (fun at ->
      (not (Rset.mem at s.State.nl))
      && Intrange.mem (State.lookup_nr s at) ind
           ~len:(State.lookup_len s (Rset.singleton at)))
    arrs

(** Null-or-same verdict (§4.3 extension): unique thread-local receiver,
    and the value carries the fact that it equals the field's current
    content or that content is null. *)
let null_or_same_elidable env (s : State.t) (objs : Rset.t)
    (value : State.refinfo) (f : Field_id.t) : bool =
  env.conf.null_or_same
  &&
  match Rset.elements objs with
  | [ r ] ->
      Refsym.unique ~in_ctor:env.in_ctor r
      && (not (Rset.mem r s.State.nl))
      && State.Nos.mem (r, f) value.State.nos
  | [] | _ :: _ :: _ -> false

(** Insertion-half verdict for the stored value: provably null (nothing
    to shade), or every reference it may denote is an in-method
    allocation — literal [New] sites, or summary-proven fresh returns,
    which additionally rest on the closed world.  The verdict is about
    the {e value}, so it applies uniformly to field, array and static
    stores (the deletion half of a static store is never elidable, its
    insertion half is). *)
let ins_verdict env (value : State.aval) : ins_reason =
  match value with
  | State.Ref { refs; _ } when Rset.is_empty refs -> Ins_null
  | State.Ref { refs; _ }
    when Rset.for_all
           (function Refsym.Alloc _ -> true | Refsym.Global | Refsym.Arg _ -> false)
           refs ->
      if
        Rset.exists
          (function
            | Refsym.Alloc { site; _ } ->
                Hashtbl.mem env.summary_fresh_sites site
            | Refsym.Global | Refsym.Arg _ -> false)
          refs
      then Ins_summary_fresh
      else Ins_fresh
  | State.Ref _ | State.Bot | State.Clash | State.Int _ -> Ins_keep

(** On the branch where a tested value is known null, every null-or-same
    fact it carries implies the named field is currently null: refine σ.
    Sound only for unique, thread-local receivers (no other mutator can
    intervene). *)
let refine_on_null env (s : State.t) (ri : State.refinfo) : State.t =
  if not env.conf.null_or_same then s
  else
    State.Nos.fold
      (fun (r, f) (s : State.t) ->
        if Refsym.unique ~in_ctor:env.in_ctor r && not (Rset.mem r s.State.nl)
        then
          { s with sigma = State.Sigma.add (r, f) State.null_v s.State.sigma }
        else s)
      ri.nos s

(* ---- calls ------------------------------------------------------------ *)

(** Pop a callee's arguments off the stack, returned in parameter order. *)
let pop_call_args (s : State.t) (params : ty list) :
    State.aval list * State.t =
  List.fold_left
    (fun (args, s) _ty ->
      let v, s = State.pop s in
      (v :: args, s))
    ([], s) params

(** The blanket call havoc (§2.4): every reference argument — and
    everything reachable from one — escapes, and every must-alias fact
    dies.  Shared by [Invoke] (no summary available) and [Spawn] (a
    spawned thread runs concurrently, so summaries never apply). *)
let c_invoke_havocs = Telemetry.counter "analysis.invoke_havocs"

let havoc_call (s : State.t) (args : State.aval list) : State.t =
  Telemetry.incr c_invoke_havocs;
  State.kill_all_must_src (State.escape_args s args)

let arg_refs (v : State.aval) : Rset.t =
  match v with
  | State.Ref ri -> ri.State.refs
  | State.Bot | State.Clash | State.Int _ -> Rset.empty

(** Summary-aware call transfer: apply the callee's summarized effects to
    the caller state instead of havocking it.

    Receiver candidates of a write through parameter [i] are the σ-closure
    of the argument's references ({!State.reach_closure}): the summary's
    parameter component covers anything reachable from the parameter.
    Writes landing on a non-thread-local receiver escape the written
    value instead (its σ is never consulted); writes with unknown field
    sets degrade to the full havoc escape for all arguments (any of them
    may have been stored into the written objects). *)
let apply_summary env (s : State.t) pc (callee : meth) (sum : Summary.t)
    (args : State.aval array) : State.t =
  let closures = Array.map (fun v -> State.reach_closure s (arg_refs v)) args in
  let shape_refs (s : State.t) (vs : Summary.vshape) : Rset.t =
    let base =
      if vs.Summary.vs_fresh || vs.Summary.vs_global then
        Rset.singleton Refsym.Global
      else Rset.empty
    in
    let rs =
      Summary.Iset.fold
        (fun p acc ->
          if p < Array.length closures then Rset.union closures.(p) acc
          else Rset.add Refsym.Global acc)
        vs.Summary.vs_params base
    in
    (* a non-thread-local member's reachable set is not fully named by σ *)
    if Rset.exists (fun r -> Rset.mem r s.State.nl) rs then
      Rset.add Refsym.Global rs
    else rs
  in
  (* 1. unknown-field writes force the full havoc escape: any argument may
     have been stored into the written objects *)
  let writes_top =
    Array.exists
      (fun (i, v) ->
        sum.Summary.s_params.(i).Summary.ps_writes_top
        && not (Rset.is_empty (arg_refs v)))
      (Array.mapi (fun i v -> (i, v)) args)
  in
  let s = if writes_top then State.escape_args s (Array.to_list args) else s in
  (* 2. per-parameter escapes *)
  let s =
    snd
      (Array.fold_left
         (fun (i, s) v ->
           ( i + 1,
             if sum.Summary.s_params.(i).Summary.ps_escapes then
               State.all_non_tl s (arg_refs v)
             else s ))
         (0, s) args)
  in
  (* 3. per-field writes *)
  let kill_eprov =
    ref
      (writes_top || sum.Summary.s_elems_public
     || sum.Summary.s_calls_unknown)
  in
  let apply_write s i f (w : Summary.write) =
    let receivers = closures.(i) in
    if Rset.is_empty receivers then s
    else begin
      let mapped = shape_refs s w.Summary.w_val in
      (* value stored into an escaped object escapes with it *)
      let s =
        if Rset.exists (fun r -> Rset.mem r s.State.nl) receivers then begin
          (if Field_id.equal f Field_id.Elems && not (Rset.is_empty mapped)
           then kill_eprov := true);
          State.all_non_tl s mapped
        end
        else s
      in
      let locs = List.map (fun r -> (r, f)) (Rset.elements receivers) in
      let s = State.kill_nos s locs in
      (* strong update when the write provably targets the argument object
         itself on every normal return; array elements always merge weakly
         (one element written says nothing about the others) *)
      let strong_sym =
        match f, Rset.elements (arg_refs args.(i)) with
        | Field_id.F _, [ r ]
          when w.Summary.w_must && Refsym.unique ~in_ctor:env.in_ctor r ->
            Some r
        | _, _ -> None
      in
      let field_is_int =
        match f with
        | Field_id.F (c, fn) ->
            Jir.Types.equal_ty
              (Jir.Program.field_ty env.prog { fclass = c; fname = fn })
              I
        | Field_id.Elems -> false
      in
      let update s r =
        if Rset.mem r s.State.nl then s
        else if
          match strong_sym with
          | Some r' -> Refsym.equal r r'
          | None -> false
        then
          let v = if field_is_int then int_top else State.ref_of mapped in
          { s with State.sigma = State.Sigma.add (r, f) v s.State.sigma }
        else
          let old = State.lookup_field s r f in
          let merged =
            match old with
            | State.Int _ -> if w.Summary.w_int then int_top else old
            | State.Ref ri ->
                if Rset.is_empty mapped then old
                else State.Ref (State.mk_refinfo (Rset.union ri.State.refs mapped))
            | State.Bot | State.Clash -> State.ref_of mapped
          in
          { s with State.sigma = State.Sigma.add (r, f) merged s.State.sigma }
      in
      let s = Rset.fold (fun r s -> update s r) receivers s in
      (* a possibly-non-null element write at an unknown index empties the
         array's null range *)
      if Field_id.equal f Field_id.Elems && not (Rset.is_empty mapped) then
        Rset.fold
          (fun r s ->
            if Rset.mem r s.State.nl then s
            else { s with State.nr = State.Rmap.remove r s.State.nr })
          receivers s
      else s
    end
  in
  let s =
    snd
      (Array.fold_left
         (fun (i, s) _v ->
           ( i + 1,
             Summary.Fmap.fold
               (fun f w s -> apply_write s i f w)
               sum.Summary.s_params.(i).Summary.ps_writes s ))
         (0, s) args)
  in
  (* 4. statics the callee writes invalidate must-alias facts derived from
     them; everything else survives *)
  let s =
    match sum.Summary.s_statics with
    | Summary.Sw_top -> State.kill_all_must_src s
    | Summary.Sw_set [] -> s
    | Summary.Sw_set frs ->
        State.kill_must_src s (fun m ->
            List.exists
              (fun (fr : field_ref) ->
                State.equal_must_src m (State.Mstatic (fr.fclass, fr.fname)))
              frs)
  in
  (* 5. element writes to caller-visible arrays kill element provenances
     and any active shift chain (the arrays may alias the must-source) *)
  let s =
    if !kill_eprov then { (State.kill_all_eprov s) with State.shift = None }
    else s
  in
  (* 6. return value *)
  match callee.ret with
  | None -> s
  | Some I -> State.push int_top s
  | Some R -> (
      match sum.Summary.s_ret with
      | Summary.Ret_plain -> State.push State.global_v s
      | Summary.Ret_shape vs -> State.push (State.ref_of (shape_refs s vs)) s
      | Summary.Ret_fresh (cn, fields) -> (
          match Jir.Program.find_class env.prog cn with
          | None -> State.push State.global_v s
          | Some c ->
              (* the callee returns a fresh, unescaped object whose fields
                 it summarized completely: bind a fresh symbol exactly as
                 [New] would, seeded with the captured writes (unlisted
                 reference fields are definitely null) *)
              let sym, s = fresh_alloc env pc s in
              Hashtbl.replace env.summary_fresh_sites pc ();
              let strong = Refsym.unique ~in_ctor:false sym in
              let sigma =
                List.fold_left
                  (fun sg (fd : field_decl) ->
                    let key = (sym, Field_id.F (cn, fd.fd_name)) in
                    let fresh_v =
                      match fd.fd_ty with
                      | R ->
                          let refs =
                            match
                              Summary.Fmap.find_opt
                                (Field_id.F (cn, fd.fd_name))
                                fields
                            with
                            | Some (vs, _) -> shape_refs s vs
                            | None -> Rset.empty
                          in
                          State.ref_of refs
                      | I -> (
                          match
                            Summary.Fmap.find_opt
                              (Field_id.F (cn, fd.fd_name))
                              fields
                          with
                          | Some _ -> int_top
                          | None ->
                              if env.track_ints && strong then
                                State.Int (Intval.const 0)
                              else int_top)
                    in
                    let v =
                      if strong then fresh_v
                      else
                        match State.Sigma.find_opt key sg, fresh_v with
                        | Some (State.Ref a), State.Ref b ->
                            State.Ref
                              (State.mk_refinfo
                                 (Rset.union a.State.refs b.State.refs))
                        | Some (State.Int _), _ | _, State.Int _ -> int_top
                        | (Some _ | None), v -> v
                    in
                    State.Sigma.add key v sg)
                  s.State.sigma c.fields
              in
              State.push
                (State.ref_of (Rset.singleton sym))
                { s with State.sigma }))

(** The transfer function: abstract effect of one instruction (§2.4, §3.3),
    plus verdict recording for reference stores.  [record pc kind elide
    reason ins] is called for each store site visit; [ins] is the
    insertion-half verdict for the stored value ([None] re-records a
    deletion verdict for another pc — a swap pair's first store — without
    disturbing that pc's own insertion verdict). *)
let transfer env ~record (s : State.t) (pc : int) (instr : int instr) :
    outcome =
  let track_arrays = env.conf.mode = A in
  (* §4.3 swap: a pending first store survives only across simple,
     non-throwing, non-heap-writing instructions — the safepoint-free
     window contract the retrace collector relies on.  Anything else
     (possible throwers, heap writes, calls, control transfers) kills it;
     the [Aastore] case re-arms it. *)
  let pending = env.swap_pending in
  env.swap_pending <- None;
  (match instr with
  | Iconst _ | Aconst_null | Iload _ | Aload _ | Istore _ | Astore _
  | Iinc _ | Ibin (Add | Sub | Mul) | Ineg | Dup | Pop | Swap | Getstatic _
    ->
      env.swap_pending <- pending
  | Ibin (Div | Rem)
  | Goto _ | If_i _ | If_icmp _ | If_null _ | If_nonnull _ | If_acmp _
  | Putstatic _ | Getfield _ | Putfield _ | New _ | Newarray _ | Aaload
  | Aastore | Iaload | Iastore | Arraylength | Invoke _ | Spawn _ | Return
  | Ireturn | Areturn ->
      ());
  match instr with
  | Iconst n -> Fall (push_int env (Intval.const n) s)
  | Aconst_null -> Fall (State.push State.null_v s)
  | Iload i ->
      let v =
        match State.local s i with
        | State.Int _ as v when env.track_ints -> v
        | State.Int _ | State.Bot | State.Clash -> int_top
        | State.Ref _ -> int_top
      in
      Fall (State.push v s)
  | Aload i ->
      let v =
        match State.local s i with
        | State.Ref _ as v -> v
        | State.Bot | State.Clash | State.Int _ -> State.global_v
      in
      Fall (State.push v s)
  | Istore i ->
      let v, s = State.pop s in
      let v = match v with State.Int _ -> v | _ -> int_top in
      Fall (State.set_local s i v)
  | Astore i ->
      let v, s = State.pop s in
      let v = match v with State.Ref _ -> v | _ -> State.global_v in
      Fall (State.set_local s i v)
  | Iinc (i, d) ->
      let v =
        match State.local s i with
        | State.Int iv when env.track_ints -> State.Int (Intval.add_const d iv)
        | State.Int _ | State.Bot | State.Clash | State.Ref _ -> int_top
      in
      Fall (State.set_local s i v)
  | Ibin op ->
      let b, s = State.pop_int s in
      let a, s = State.pop_int s in
      Fall (push_int env (Intval.binop op a b) s)
  | Ineg ->
      let a, s = State.pop_int s in
      Fall (push_int env (Intval.neg a) s)
  | Dup ->
      let v, s' = State.pop s in
      ignore s';
      Fall (State.push v s)
  | Pop ->
      let _, s = State.pop s in
      Fall s
  | Swap ->
      let a, s = State.pop s in
      let b, s = State.pop s in
      Fall (State.push b (State.push a s))
  | Goto l -> Jump [ (l, s) ]
  | If_i (_, l) ->
      let _, s = State.pop_int s in
      Branch { taken = (l, s); fall = s }
  | If_icmp (_, l) ->
      let _, s = State.pop_int s in
      let _, s = State.pop_int s in
      Branch { taken = (l, s); fall = s }
  | If_null l ->
      let ri, s = State.pop_ref s in
      Branch { taken = (l, refine_on_null env s ri); fall = s }
  | If_nonnull l ->
      let ri, s = State.pop_ref s in
      Branch { taken = (l, s); fall = refine_on_null env s ri }
  | If_acmp (_, l) ->
      let _, s = State.pop_ref s in
      let _, s = State.pop_ref s in
      Branch { taken = (l, s); fall = s }
  | Getstatic fr -> (
      match Jir.Program.static_ty env.prog fr with
      | R ->
          (* the loaded value is exactly the static's current content: a
             must-alias source for the §4.3 rearrangement extensions *)
          let msrc =
            if env.move_down || env.swap then
              Some (State.Mstatic (fr.fclass, fr.fname))
            else None
          in
          Fall
            (State.push
               (State.Ref
                  (State.mk_refinfo ?msrc (Rset.singleton Refsym.Global)))
               s)
      | I -> Fall (push_int env Intval.top s))
  | Putstatic fr ->
      let v, s = State.pop s in
      if Jir.Types.equal_ty (Jir.Program.static_ty env.prog fr) R then begin
        (* static stores always escape the value and always need their
           deletion half (the receiver is GlobalRef, the overwritten
           value unknowable); the insertion half judges the stored value
           and may still go *)
        record pc Static_store false Keep (Some (ins_verdict env v));
        let s =
          match v with
          | State.Ref { refs; _ } -> State.all_non_tl s refs
          | State.Bot | State.Clash | State.Int _ -> s
        in
        (* the static now holds a different object: must-alias facts
           derived from it are stale *)
        let s =
          State.kill_must_src s (fun m ->
              State.equal_must_src m (State.Mstatic (fr.fclass, fr.fname)))
        in
        Fall s
      end
      else Fall s
  | Getfield fr ->
      let obj, s = State.pop_ref s in
      let f = Field_id.of_field_ref fr in
      if is_ref_field env fr then begin
        let ri = State.lookup_ref_field s obj.refs f in
        let nos =
          match Rset.elements obj.refs with
          | [ r ]
            when env.conf.null_or_same
                 && Refsym.unique ~in_ctor:env.in_ctor r
                 && not (Rset.mem r s.nl) ->
              State.Nos.add (r, f) ri.nos
          | _ -> ri.nos
        in
        Fall (State.push (State.Ref { ri with nos }) s)
      end
      else Fall (push_int env (State.lookup_int_field s obj.refs f) s)
  | Putfield fr ->
      let value, s = State.pop s in
      let obj, s = State.pop_ref s in
      let f = Field_id.of_field_ref fr in
      let is_ref = is_ref_field env fr in
      (* verdict first, against the pre-store state *)
      if is_ref then begin
        let vri =
          match value with
          | State.Ref ri -> ri
          | State.Bot | State.Clash | State.Int _ ->
              State.mk_refinfo (Rset.singleton Refsym.Global)
        in
        let ins = Some (ins_verdict env value) in
        if Rset.is_empty obj.refs then
          (* receiver definitely null: the store always raises NPE *)
          record pc Field_store true Dead_code (Some Ins_dead)
        else if field_store_elidable s obj.refs f then
          record pc Field_store true Pre_null_field ins
        else if null_or_same_elidable env s obj.refs vri f then
          record pc Field_store true Null_or_same ins
        else record pc Field_store false Keep ins
      end;
      (* σ update: strong for a unique singleton receiver, weak merge
         otherwise (§2.4) *)
      let store_val =
        match Jir.Program.field_ty env.prog fr, value with
        | R, State.Ref _ -> value
        | R, (State.Bot | State.Clash | State.Int _) -> State.global_v
        | I, State.Int _ when env.track_ints -> value
        | I, _ -> int_top
      in
      let locs = List.map (fun ot -> (ot, f)) (Rset.elements obj.refs) in
      let s = State.kill_nos s locs in
      let s =
        match Rset.elements obj.refs with
        | [ r ] when Refsym.unique ~in_ctor:env.in_ctor r ->
            { s with sigma = State.Sigma.add (r, f) store_val s.sigma }
        | receivers ->
            List.fold_left
              (fun s ot ->
                if Rset.mem ot s.State.nl then s
                else
                  let old = State.lookup_field s ot f in
                  let merged =
                    match old, store_val with
                    | State.Ref a, State.Ref b ->
                        State.Ref
                          (State.mk_refinfo (Rset.union a.refs b.refs))
                    | State.Int a, State.Int b ->
                        State.Int (Intval.merge_flat a b)
                    | _, v -> v
                  in
                  { s with sigma = State.Sigma.add (ot, f) merged s.sigma })
              s receivers
      in
      Fall (State.all_non_tl_cond s ~objs:obj.refs ~value)
  | New cn ->
      let sym, s = fresh_alloc env pc s in
      let c = Jir.Program.get_class env.prog cn in
      (* the fresh object's fields are zeroed; when the symbol is unique
         this is a strong fact, but for the ablated single-name mode the
         summary also covers older objects, so existing knowledge must be
         kept (union with the empty set is the identity) *)
      let strong = Refsym.unique ~in_ctor:false sym in
      let sigma =
        List.fold_left
          (fun sg fd ->
            let key = (sym, Field_id.F (cn, fd.fd_name)) in
            if (not strong) && State.Sigma.mem key sg then sg
            else
              let v =
                match fd.fd_ty with
                | R -> State.null_v
                | I ->
                    if env.track_ints && strong then State.Int (Intval.const 0)
                    else int_top
              in
              State.Sigma.add key v sg)
          s.State.sigma c.fields
      in
      Fall (State.push (State.ref_of (Rset.singleton sym)) { s with sigma })
  | Newarray ety ->
      let n, s = State.pop_int s in
      let sym, s = fresh_alloc env pc s in
      let strong = Refsym.unique ~in_ctor:false sym in
      let elem_val =
        match ety with
        | Elem_ref _ -> State.null_v
        | Elem_int ->
            if env.track_ints && strong then State.Int (Intval.const 0)
            else int_top
      in
      let sigma =
        let key = (sym, Field_id.Elems) in
        if (not strong) && State.Sigma.mem key s.State.sigma then s.State.sigma
        else State.Sigma.add key elem_val s.State.sigma
      in
      let len =
        if not env.track_ints then s.State.len
        else if strong then State.Rmap.add sym n s.State.len
        else
          State.Rmap.update sym
            (function
              | None -> Some n | Some old -> Some (Intval.merge_flat old n))
            s.State.len
      in
      let nr =
        match ety with
        | Elem_ref _ when track_arrays && strong ->
            State.Rmap.add sym (Intrange.of_new_array n) s.State.nr
        | Elem_ref _ | Elem_int -> s.State.nr
      in
      Fall
        (State.push
           (State.ref_of (Rset.singleton sym))
           { s with sigma; len; nr })
  | Aaload ->
      let ind, s = State.pop_int s in
      let arr, s = State.pop_ref s in
      let ri = State.lookup_ref_field s arr.refs Field_id.Elems in
      (* remember where the element came from when the array itself is
         must-identified (§4.3 rearrangements) *)
      let eprov =
        match arr.State.msrc with
        | Some m
          when (env.move_down || env.swap) && not (Intval.is_top ind) ->
            Some { State.ep_src = m; ep_idx = ind; ep_displaced = false }
        | Some _ | None -> None
      in
      Fall (State.push (State.Ref { ri with eprov }) s)
  | Aastore ->
      let value, s = State.pop s in
      let ind, s = State.pop_int s in
      let arr, s = State.pop_ref s in
      (* §4.3 move-down: the stored value was loaded from the same
         (must-identified) array one slot above, and the active chain says
         the overwritten slot currently holds null or a value already
         re-stored at a lower index — with a descending-scan collector and
         a single mutator, no snapshot pointer can be lost *)
      let move_down_ok =
        env.move_down
        && (not env.catches_bounds)
        &&
        match arr.State.msrc, value, s.State.shift with
        | ( Some m,
            State.Ref
              {
                eprov =
                  Some { ep_src = m'; ep_idx = idx_v; ep_displaced = false };
                _;
              },
            Some (ms, idx_s) ) ->
            State.equal_must_src m m'
            && State.equal_must_src m ms
            && Intval.equal ind idx_s
            && Intval.equal (Intval.sub idx_v ind) (Intval.const 1)
        | _, _, _ -> false
      in
      let pre_null_ok =
        track_arrays
        && (not env.catches_bounds)
        && array_store_elidable s arr.refs ind
      in
      (* §4.3 swap, second store: a first store is pending and the value
         is exactly the element it displaced, going to exactly the slot
         the first store's value came from.  The displaced provenance
         also witnesses an earlier successful load at [sp_hi], so this
         store provably does not throw — the window cannot stay open. *)
      let swap_close =
        if not env.swap then None
        else
          match pending, arr.State.msrc, value with
          | Some sp, Some m, State.Ref { eprov = Some ep; _ }
            when State.equal_must_src m sp.sp_src
                 && ep.State.ep_displaced
                 && State.equal_must_src ep.State.ep_src sp.sp_src
                 && Intval.equal ep.State.ep_idx sp.sp_lo
                 && Intval.equal ind sp.sp_hi ->
              Some sp
          | _, _, _ -> None
      in
      (* verdict against the pre-store state *)
      (let ins = Some (ins_verdict env value) in
       if Rset.is_empty arr.refs then
         record pc Array_store true Dead_code (Some Ins_dead)
       else if pre_null_ok then record pc Array_store true Pre_null_array ins
       else if move_down_ok then record pc Array_store true Move_down ins
       else
         match swap_close with
         | Some sp ->
             (* both verdicts land in this same transfer, so a visit's
                result is deterministic at the fixed point; [None] keeps
                the first store's own insertion verdict *)
             if not sp.sp_elided then
               record sp.sp_pc Array_store true Swap_first None;
             record pc Array_store true Swap_second ins
         | None -> record pc Array_store false Keep ins);
      (* §4.3 swap, first-store candidate: the stored value is the
         current content of a provably different slot (nonzero constant
         index delta) of the same must-identified array.  The displaced
         element's provenance is flipped to "displaced" below. *)
      let open_pending =
        if (not env.swap) || Option.is_some swap_close then None
        else
          match arr.State.msrc, value with
          | Some m, State.Ref { eprov = Some ep; _ }
            when (not ep.State.ep_displaced)
                 && State.equal_must_src ep.State.ep_src m
                 && (not (Intval.is_top ind))
                 && (match
                       Intval.to_literal (Intval.sub ep.State.ep_idx ind)
                     with
                    | Some d -> d <> 0
                    | None -> false) ->
              Some
                {
                  sp_src = m;
                  sp_lo = ind;
                  sp_hi = ep.State.ep_idx;
                  sp_pc = pc;
                  sp_elided =
                    Rset.is_empty arr.refs || pre_null_ok || move_down_ok;
                }
          | _, _ -> None
      in
      (* shift-chain bookkeeping for the post-store state: a store of
         null through a must-identified array starts a chain (its barrier
         logged the overwritten value, or that value was null); the chain
         store itself advances it; anything else ends it. *)
      let next_shift =
        match arr.State.msrc, value with
        | Some m, State.Ref { refs; _ }
          when Rset.is_empty refs && not (Intval.is_top ind) ->
            Some (m, ind)
        | Some m, State.Ref { eprov = Some { ep_idx = idx_v; _ }; _ }
          when move_down_ok ->
            Some (m, idx_v)
        | _, _ -> None
      in
      (* element provenances: facts about provably untouched slots of the
         must-same array survive; a first swap store displaces the facts
         for its slot; everything else (unknown or other sources may
         alias this array) dies *)
      let s =
        State.eprov_after_store s ~src:arr.State.msrc ~idx:ind
          ~displace:(Option.is_some open_pending)
      in
      env.swap_pending <- open_pending;
      let s = { s with State.shift = next_shift } in
      (* element update is always weak (§2.4) *)
      let store_val =
        match value with
        | State.Ref _ -> value
        | State.Bot | State.Clash | State.Int _ -> State.global_v
      in
      let locs =
        List.map (fun at -> (at, Field_id.Elems)) (Rset.elements arr.refs)
      in
      let s = State.kill_nos s locs in
      let s =
        List.fold_left
          (fun s at ->
            if Rset.mem at s.State.nl then s
            else
              let old = State.lookup_field s at Field_id.Elems in
              let merged =
                match old, store_val with
                | State.Ref a, State.Ref b ->
                    State.Ref (State.mk_refinfo (Rset.union a.refs b.refs))
                | _, v -> v
              in
              { s with sigma = State.Sigma.add (at, Field_id.Elems) merged s.sigma })
          s (Rset.elements arr.refs)
      in
      (* null ranges contract (§3.3) *)
      let s =
        if track_arrays then
          let nr =
            Rset.fold
              (fun at nr ->
                match State.Rmap.find_opt at nr with
                | Some r -> State.Rmap.add at (Intrange.contract r ind) nr
                | None -> nr)
              arr.refs s.State.nr
          in
          { s with nr }
        else s
      in
      Fall (State.all_non_tl_cond s ~objs:arr.refs ~value)
  | Iaload ->
      let _, s = State.pop_int s in
      let arr, s = State.pop_ref s in
      Fall (push_int env (State.lookup_int_field s arr.refs Field_id.Elems) s)
  | Iastore ->
      let v, s = State.pop_int s in
      let _, s = State.pop_int s in
      let arr, s = State.pop_ref s in
      let s =
        List.fold_left
          (fun s at ->
            if Rset.mem at s.State.nl then s
            else
              let old = State.lookup_int_field s (Rset.singleton at) Field_id.Elems in
              { s with
                State.sigma =
                  State.Sigma.add (at, Field_id.Elems)
                    (State.Int (Intval.merge_flat old v))
                    s.State.sigma
              })
          s (Rset.elements arr.refs)
      in
      Fall s
  | Arraylength ->
      let arr, s = State.pop_ref s in
      Fall (push_int env (State.lookup_len s arr.refs) s)
  | Invoke mr -> (
      let callee = Jir.Program.get_method env.prog mr in
      let args, s = pop_call_args s callee.params in
      let summary =
        match env.summary_tbl with
        | Some tbl -> Summary.find tbl mr
        | None -> None
      in
      match summary with
      | Some sum ->
          env.used_summaries <- true;
          Fall (apply_summary env s pc callee sum (Array.of_list args))
      | None ->
          let s = havoc_call s args in
          let s =
            match callee.ret with
            | None -> s
            | Some R -> State.push State.global_v s
            | Some I -> State.push int_top s
          in
          Fall s)
  | Spawn mr ->
      (* same argument path as [Invoke], but always the full havoc: the
         spawned thread runs concurrently, so no summary of its
         sequential effects can bound what it does from here on *)
      let callee = Jir.Program.get_method env.prog mr in
      let args, s = pop_call_args s callee.params in
      Fall (havoc_call s args)
  | Return | Ireturn | Areturn -> Stop

(** Run the analysis on one method to its fixed point.
    [single_mutator] gates the §4.3 move-down extension: the caller sets
    it when the whole program contains no [spawn]. *)
let analyze_method ?(conf = default_config) ?(single_mutator = false)
    ?summaries (prog : Jir.Program.t) (cls : cls) (meth : meth) :
    method_result =
  let n = Array.length meth.code in
  let store_pcs =
    (* every reference-store site in the method, for verdict reporting *)
    List.filter_map
      (fun pc ->
        match meth.code.(pc) with
        | Putfield fr when Jir.Types.equal_ty (Jir.Program.field_ty prog fr) R
          ->
            Some (pc, Field_store)
        | Putstatic fr
          when Jir.Types.equal_ty (Jir.Program.static_ty prog fr) R ->
            Some (pc, Static_store)
        | Aastore -> Some (pc, Array_store)
        | _ -> None)
      (List.init n Fun.id)
  in
  if conf.mode = B then
    {
      mr_class = cls.cname;
      mr_method = meth.mname;
      verdicts =
        List.map
          (fun (pc, kind) ->
            {
              v_pc = pc;
              v_kind = kind;
              v_elide = false;
              v_reason = Keep;
              v_ins_elide = false;
              v_ins_reason = Ins_keep;
            })
          store_pcs;
      iterations = 0;
      mr_summary_dependent = false;
    }
  else begin
    let catches_bounds =
      List.exists
        (fun h ->
          match h.kind with Bounds | Any -> true | Null_deref | Arith -> false)
        meth.handlers
    in
    let env =
      {
        conf;
        prog;
        cls;
        meth;
        gen = Intval.Gen.create ();
        in_ctor = meth.is_constructor;
        catches_bounds;
        track_ints = conf.mode = A;
        move_down = conf.move_down && single_mutator && conf.mode = A;
        swap =
          conf.swap && single_mutator && conf.mode = A
          && not catches_bounds;
        swap_pending = None;
        summary_tbl = (if conf.summaries then summaries else None);
        used_summaries = false;
        summary_fresh_sites = Hashtbl.create 8;
      }
    in
    let cfg = Jir.Cfg.build meth in
    let nb = Jir.Cfg.n_blocks cfg in
    let in_states : State.t option array = Array.make nb None in
    let visits = Array.make nb 0 in
    let queued = Array.make nb false in
    let work = Queue.create () in
    let iterations = ref 0 in
    let verdict_tbl : (int, bool * reason * ins_reason) Hashtbl.t =
      Hashtbl.create 16
    in
    let record pc _kind elide reason ins =
      let ins =
        match ins with
        | Some i -> i
        | None -> (
            (* re-recording another pc's deletion verdict (swap pairing):
               leave that pc's own insertion verdict alone *)
            match Hashtbl.find_opt verdict_tbl pc with
            | Some (_, _, i) -> i
            | None -> Ins_keep)
      in
      if conf.debug then
        Fmt.epr "   verdict %s.%s@@%d: %s (%s) / ins %s (%s)@." cls.cname
          meth.mname pc
          (if elide then "elide" else "keep")
          (string_of_reason reason)
          (if ins_elides ins then "elide" else "keep")
          (string_of_ins_reason ins);
      Hashtbl.replace verdict_tbl pc (elide, reason, ins)
    in
    let enqueue id =
      if not queued.(id) then begin
        queued.(id) <- true;
        Queue.add id work
      end
    in
    let post_block id (s : State.t) =
      let widen = visits.(id) >= conf.max_visits in
      let merged =
        match in_states.(id) with
        | None -> s
        | Some old -> State.merge ~widen ~gen:env.gen old s
      in
      match in_states.(id) with
      | Some old when State.equal old merged -> ()
      | Some _ | None ->
          in_states.(id) <- Some merged;
          enqueue id
    in
    let post_pc pc s = post_block cfg.block_of_pc.(pc) s in
    let process_block id =
      visits.(id) <- visits.(id) + 1;
      match in_states.(id) with
      | None -> ()
      | Some s0 ->
          let b = Jir.Cfg.block cfg id in
          if conf.debug then
            Fmt.epr "@[<v2>-- %s.%s block %d (pc %d..%d) visit %d:@,%a@]@."
              cls.cname meth.mname id b.start_pc b.end_pc visits.(id)
              State.pp s0;
          (* pending swap facts never cross a block boundary *)
          env.swap_pending <- None;
          let rec go pc s =
            if pc >= b.end_pc then post_pc pc s
            else begin
              (* handler edges: control may leave for the handler from any
                 covered instruction, with an empty operand stack *)
              List.iter
                (fun h ->
                  if pc >= h.from_pc && pc < h.to_pc then
                    post_pc h.target { s with State.stk = [] })
                meth.handlers;
              match transfer env ~record s pc meth.code.(pc) with
              | Fall s -> go (pc + 1) s
              | Jump targets -> List.iter (fun (t, s) -> post_pc t s) targets
              | Branch { taken = t, st; fall } ->
                  post_pc t st;
                  go (pc + 1) fall
              | Stop -> ()
            end
          in
          go b.start_pc s0
    in
    in_states.(0) <- Some (entry_state env);
    enqueue 0;
    while not (Queue.is_empty work) do
      let id = Queue.pop work in
      queued.(id) <- false;
      incr iterations;
      process_block id
    done;
    let verdicts =
      List.map
        (fun (pc, kind) ->
          match Hashtbl.find_opt verdict_tbl pc with
          | Some (elide, reason, ins) ->
              {
                v_pc = pc;
                v_kind = kind;
                v_elide = elide;
                v_reason = reason;
                v_ins_elide = ins_elides ins;
                v_ins_reason = ins;
              }
          | None ->
              (* never visited: unreachable code *)
              {
                v_pc = pc;
                v_kind = kind;
                v_elide = true;
                v_reason = Dead_code;
                v_ins_elide = true;
                v_ins_reason = Ins_dead;
              })
        store_pcs
    in
    {
      mr_class = cls.cname;
      mr_method = meth.mname;
      verdicts;
      iterations = !iterations;
      mr_summary_dependent = env.used_summaries;
    }
  end

(** Does the program ever start a second thread?  The move-down extension
    is disabled for multi-threaded programs (§4.3: unsynchronized writes
    by other mutators would invalidate it). *)
let program_spawns (prog : Jir.Program.t) : bool =
  List.exists
    (fun (_, (m : meth)) ->
      Array.exists
        (function Spawn _ -> true | _ -> false)
        m.code)
    (Jir.Program.all_methods prog)

(** Analyze every method of a program.  With [conf.summaries], the
    summary table is computed here (bottom-up over the call graph) unless
    the caller already has one to share. *)
let analyze_program ?(conf = default_config) ?summaries
    (prog : Jir.Program.t) : method_result list =
  let single_mutator = not (program_spawns prog) in
  let summaries =
    match summaries with
    | Some _ as t -> t
    | None -> if conf.summaries then Some (Summary.of_program prog) else None
  in
  List.map
    (fun (c, m) -> analyze_method ~conf ~single_mutator ?summaries prog c m)
    (Jir.Program.all_methods prog)
