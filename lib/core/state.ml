(** Abstract program states for the barrier-removal analyses.

    A state is the paper's tuple ⟨ρ, σ, NL, stk⟩ (§2.1) extended with the
    array-analysis components Len and NR (§3.2) and, for the null-or-same
    extension (§4.3), per-value "null-or-same-as (r, f)" facts.

    - ρ ([rho]) maps local variables to abstract values;
    - [stk] is the abstract operand stack;
    - NL ([nl]) is the set of reference symbols that may be reachable by
      other threads (non-thread-local);
    - σ ([sigma]) maps (reference symbol, field id) to the abstract value
      the field may contain; a reference field mapped to the empty set of
      symbols is {e definitely null};
    - [len] maps array symbols to their symbolic length;
    - [nr] maps object-array symbols to the subrange of indices known to
      hold null. *)

module Rset = Refsym.Set

module Sigma = Map.Make (struct
  type t = Refsym.t * Field_id.t

  let compare (r1, f1) (r2, f2) =
    match Refsym.compare r1 r2 with
    | 0 -> Field_id.compare f1 f2
    | c -> c
end)

module Rmap = Map.Make (Refsym)

(** Null-or-same facts: [(r, f)] ∈ [nos v] means that in every concrete
    state, either [v] equals the current content of field [f] of the object
    named [r], or that content is null.  Either disjunct makes an SATB
    barrier for [r.f ← v] unnecessary (§4.3).  Facts are killed eagerly
    (from every abstract value in the state) whenever the location may be
    written, so a surviving fact always refers to the current content. *)
module Nos = Set.Make (struct
  type t = Refsym.t * Field_id.t

  let compare (r1, f1) (r2, f2) =
    match Refsym.compare r1 r2 with
    | 0 -> Field_id.compare f1 f2
    | c -> c
end)

(** Must-alias value sources, for the §4.3 array-rearrangement extension:
    two values carrying the same source are {e the same concrete
    reference}.  Currently only static fields are tracked (enough for the
    delete-by-shift idiom over a program-global array); the type is a
    variant so finer sources can be added. *)
type must_src = Mstatic of Jir.Types.class_name * Jir.Types.field_name

let equal_must_src (Mstatic (c1, f1)) (Mstatic (c2, f2)) =
  String.equal c1 c2 && String.equal f1 f2

let pp_must_src ppf (Mstatic (c, f)) = Fmt.pf ppf "%s.%s" c f

(** Element provenance, for the §4.3 rearrangement (move-down and swap)
    extensions: the value was loaded from the array identified by
    [ep_src] at index [ep_idx].  While [ep_displaced] is false, no store
    to that array may have touched the slot since, so the value still
    {e is} the current content of [ep_src\[ep_idx\]].  A {e displaced}
    provenance (swap analysis) instead means the slot was just
    overwritten by the first store of a pending swap: the value is no
    longer in the array, but is known to be the unique element displaced
    from [ep_idx]. *)
type eprov = { ep_src : must_src; ep_idx : Intval.t; ep_displaced : bool }

type refinfo = {
  refs : Rset.t;
  nos : Nos.t;
  msrc : must_src option;
      (** this value equals the current content of the source *)
  eprov : eprov option;
}

(** Abstract values: the ⊥ of the RefVal lattice, integer values, or sets
    of reference symbols.  [Clash] covers local-variable slots holding
    different kinds on different paths; the verifier guarantees they are
    never read. *)
type aval = Bot | Clash | Int of Intval.t | Ref of refinfo

type t = {
  rho : aval array;
  stk : aval list;
  nl : Rset.t;
  sigma : aval Sigma.t;
  len : Intval.t Rmap.t;
  nr : Intrange.t Rmap.t;
  shift : (must_src * Intval.t) option;
      (** active move-down chain (§4.3): every slot of the array
          identified by the source at index ≤ the given one currently
          holds null or a value also stored at a lower index *)
}

let mk_refinfo ?msrc ?eprov ?(nos = Nos.empty) refs =
  { refs; nos; msrc; eprov }

let ref_of refs = Ref (mk_refinfo refs)
let null_v = ref_of Rset.empty
let global_v = ref_of (Rset.singleton Refsym.Global)

let pp_aval ppf = function
  | Bot -> Fmt.string ppf "⊥"
  | Clash -> Fmt.string ppf "clash"
  | Int i -> Intval.pp ppf i
  | Ref { refs; _ } ->
      if Rset.is_empty refs then Fmt.string ppf "null" else Rset.pp ppf refs

let pp ppf (s : t) =
  Fmt.pf ppf "@[<v>rho: %a@,stk: %a@,NL: %a@,sigma: %a@,len: %a@,nr: %a@]"
    Fmt.(array ~sep:sp pp_aval)
    s.rho
    Fmt.(list ~sep:sp pp_aval)
    s.stk Rset.pp s.nl
    Fmt.(
      list ~sep:sp (fun ppf ((r, f), v) ->
          pf ppf "%a.%a=%a" Refsym.pp r Field_id.pp f pp_aval v))
    (Sigma.bindings s.sigma)
    Fmt.(
      list ~sep:sp (fun ppf (r, v) ->
          pf ppf "len(%a)=%a" Refsym.pp r Intval.pp v))
    (Rmap.bindings s.len)
    Fmt.(
      list ~sep:sp (fun ppf (r, v) ->
          pf ppf "nr(%a)=%a" Refsym.pp r Intrange.pp v))
    (Rmap.bindings s.nr)

(* ---- equality --------------------------------------------------------- *)

let equal_opt eq a b =
  match a, b with
  | None, None -> true
  | Some x, Some y -> eq x y
  | None, Some _ | Some _, None -> false

let equal_shift (m1, i1) (m2, i2) =
  equal_must_src m1 m2 && Intval.equal i1 i2

let equal_eprov a b =
  equal_must_src a.ep_src b.ep_src
  && Intval.equal a.ep_idx b.ep_idx
  && Bool.equal a.ep_displaced b.ep_displaced

let equal_refinfo a b =
  Rset.equal a.refs b.refs
  && Nos.equal a.nos b.nos
  && equal_opt equal_must_src a.msrc b.msrc
  && equal_opt equal_eprov a.eprov b.eprov

let equal_aval a b =
  match a, b with
  | Bot, Bot | Clash, Clash -> true
  | Int x, Int y -> Intval.equal x y
  | Ref x, Ref y -> equal_refinfo x y
  | (Bot | Clash | Int _ | Ref _), _ -> false

let equal (a : t) (b : t) =
  Array.length a.rho = Array.length b.rho
  && Array.for_all2 equal_aval a.rho b.rho
  && List.length a.stk = List.length b.stk
  && List.for_all2 equal_aval a.stk b.stk
  && Rset.equal a.nl b.nl
  && Sigma.equal equal_aval a.sigma b.sigma
  && Rmap.equal Intval.equal a.len b.len
  && Rmap.equal Intrange.equal a.nr b.nr
  && equal_opt equal_shift a.shift b.shift

(* ---- lookups ---------------------------------------------------------- *)

(** The paper's lookup(σ, r, NL, f): {GlobalRef} for non-thread-local
    references, the recorded abstract value otherwise.  An absent entry
    means the location was never populated on any path reaching here; for
    reference fields we conservatively answer {GlobalRef}. *)
let lookup_field (s : t) (r : Refsym.t) (f : Field_id.t) : aval =
  if Rset.mem r s.nl || Refsym.equal r Refsym.Global then global_v
  else
    match Sigma.find_opt (r, f) s.sigma with
    | Some v -> v
    | None -> global_v

(** Union of reference-field lookups over a receiver set.  Integer fields
    use {!lookup_int_field}. *)
let lookup_ref_field (s : t) (objs : Rset.t) (f : Field_id.t) : refinfo =
  Rset.fold
    (fun r acc ->
      match lookup_field s r f with
      | Ref ri -> { acc with refs = Rset.union acc.refs ri.refs }
      | Bot -> acc
      | Clash | Int _ -> { acc with refs = Rset.add Refsym.Global acc.refs })
    objs (mk_refinfo Rset.empty)

let lookup_int_field (s : t) (objs : Rset.t) (f : Field_id.t) : Intval.t =
  if Rset.is_empty objs then Intval.top
  else
    Rset.fold
      (fun r acc ->
        let v =
          match lookup_field s r f with Int i -> i | Bot | Clash | Ref _ -> Intval.top
        in
        match acc with
        | None -> Some v
        | Some a -> Some (Intval.merge_flat a v))
      objs None
    |> Option.value ~default:Intval.top

(** Array length: sound even for escaped arrays, since lengths are
    immutable. *)
let lookup_len (s : t) (objs : Rset.t) : Intval.t =
  if Rset.is_empty objs then Intval.top
  else
    Rset.fold
      (fun r acc ->
        let v =
          match Rmap.find_opt r s.len with Some l -> l | None -> Intval.top
        in
        match acc with
        | None -> Some v
        | Some a -> Some (Intval.merge_flat a v))
      objs None
    |> Option.value ~default:Intval.top

(** Null range of an array; [Empty] once it may be visible to another
    thread (its elements could be overwritten behind our back). *)
let lookup_nr (s : t) (r : Refsym.t) : Intrange.t =
  if Rset.mem r s.nl then Intrange.Empty
  else
    match Rmap.find_opt r s.nr with Some nr -> nr | None -> Intrange.Empty

(* ---- escape (non-thread-locality) ------------------------------------- *)

(** The paper's AllNonTL(NL, RS, σ): extend NL with [rs] and everything
    transitively reachable from [rs] via σ. *)
let all_non_tl (s : t) (rs : Rset.t) : t =
  let rec close nl frontier =
    match Rset.choose_opt frontier with
    | None -> nl
    | Some r ->
        let frontier = Rset.remove r frontier in
        if Rset.mem r nl then close nl frontier
        else
          let nl = Rset.add r nl in
          let reachable =
            Sigma.fold
              (fun (r', _) v acc ->
                if Refsym.equal r' r then
                  match v with
                  | Ref { refs; _ } -> Rset.union refs acc
                  | Bot | Clash | Int _ -> acc
                else acc)
              s.sigma Rset.empty
          in
          close nl (Rset.union frontier (Rset.diff reachable nl))
  in
  { s with nl = close s.nl rs }

(** Every symbol reachable from [rs] through explicit σ entries, [rs]
    included — the universe of objects a callee can reach from an
    argument.  The same walk as {!all_non_tl}, but nothing is marked
    non-thread-local.  Sound because a thread-local symbol's absent σ
    entries denote never-stored (hence initial, null) locations, and
    entries of non-thread-local members only over-approximate. *)
let reach_closure (s : t) (rs : Rset.t) : Rset.t =
  let rec close seen frontier =
    match Rset.choose_opt frontier with
    | None -> seen
    | Some r ->
        let frontier = Rset.remove r frontier in
        if Rset.mem r seen then close seen frontier
        else
          let seen = Rset.add r seen in
          let reachable =
            Sigma.fold
              (fun (r', _) v acc ->
                if Refsym.equal r' r then
                  match v with
                  | Ref { refs; _ } -> Rset.union refs acc
                  | Bot | Clash | Int _ -> acc
                else acc)
              s.sigma Rset.empty
          in
          close seen (Rset.union frontier (Rset.diff reachable seen))
  in
  close Rset.empty rs

(** AllNonTLCond(NL, RS, val, σ): if any possible receiver is already
    non-thread-local, the stored value (and everything reachable from it)
    escapes. *)
let all_non_tl_cond (s : t) ~(objs : Rset.t) ~(value : aval) : t =
  if Rset.is_empty (Rset.inter objs s.nl) then s
  else
    match value with
    | Ref { refs; _ } -> all_non_tl s refs
    | Bot | Clash | Int _ -> s

(** nAllNonTL over the reference arguments of a call. *)
let escape_args (s : t) (args : aval list) : t =
  let refs =
    List.fold_left
      (fun acc v ->
        match v with
        | Ref { refs; _ } -> Rset.union refs acc
        | Bot | Clash | Int _ -> acc)
      Rset.empty args
  in
  all_non_tl s refs

(* ---- allocation-site symbol recycling (§2.4 newinstance) -------------- *)

(** Substitute [R_site/A → R_site/B] throughout the state: ρ, stk, NL, the
    domain and range of σ, Len, NR and versions — the paper's rngSubst,
    transfer and replS.  Null-or-same facts naming the site are dropped
    (the name is about to denote a different object). *)
let retire_site (s : t) (site : int) : t =
  let a_sym = Refsym.recent site in
  let b_sym = Refsym.summary site in
  let subst_set rs =
    if Rset.mem a_sym rs then Rset.add b_sym (Rset.remove a_sym rs) else rs
  in
  let drop_site_nos nos =
    Nos.filter (fun (r, _) -> not (Refsym.equal r a_sym)) nos
  in
  let subst_aval = function
    | Ref ri ->
        Ref { ri with refs = subst_set ri.refs; nos = drop_site_nos ri.nos }
    | (Bot | Clash | Int _) as v -> v
  in
  let subst_key (r, f) = (Refsym.subst ~from_sym:a_sym ~to_sym:b_sym r, f) in
  let sigma =
    Sigma.fold
      (fun key v acc ->
        let key = subst_key key in
        let v = subst_aval v in
        match Sigma.find_opt key acc with
        | None -> Sigma.add key v acc
        | Some old ->
            let merged =
              match old, v with
              | Ref a, Ref b ->
                  Ref
                    (mk_refinfo
                       ~nos:(Nos.inter a.nos b.nos)
                       (Rset.union a.refs b.refs))
              | Int a, Int b -> Int (Intval.merge_flat a b)
              | Bot, x | x, Bot -> x
              | _ -> Clash
            in
            Sigma.add key merged acc)
      s.sigma Sigma.empty
  in
  let remap_rmap merge m =
    Rmap.fold
      (fun r v acc ->
        let r = Refsym.subst ~from_sym:a_sym ~to_sym:b_sym r in
        match Rmap.find_opt r acc with
        | None -> Rmap.add r v acc
        | Some old -> Rmap.add r (merge old v) acc)
      m Rmap.empty
  in
  {
    s with
    rho = Array.map subst_aval s.rho;
    stk = List.map subst_aval s.stk;
    nl = subst_set s.nl;
    sigma;
    len = remap_rmap Intval.merge_flat s.len;
    nr = remap_rmap Intrange.merge_flat s.nr;
  }

(* ---- merging (§2.2, §3.5) --------------------------------------------- *)

(** Merge null-or-same facts: a fact survives when on {e each} side either
    it was recorded for the value, or the side's σ shows the location
    definitely null — the "or the field is null" disjunct of §4.3. *)
let merge_nos (s1 : t) (s2 : t) (r1 : refinfo) (r2 : refinfo) : Nos.t =
  let candidates = Nos.union r1.nos r2.nos in
  let side_ok (s : t) (ri : refinfo) ((r, f) : Refsym.t * Field_id.t) =
    Nos.mem (r, f) ri.nos
    || ((not (Rset.mem r s.nl))
       &&
       match Sigma.find_opt (r, f) s.sigma with
       | Some (Ref { refs; _ }) -> Rset.is_empty refs
       | Some (Bot | Clash | Int _) | None -> false)
  in
  Nos.filter (fun c -> side_ok s1 r1 c && side_ok s2 r2 c) candidates

(** Merge must-sources: survives only when identical on both sides. *)
let merge_msrc a b =
  match a, b with
  | Some x, Some y when equal_must_src x y -> a
  | Some _, Some _ | None, _ | _, None -> None

(** Merge element provenances: same array source and same displacement
    status, indices merged as integer state components (they stride with
    loop counters). *)
let merge_eprov ctx a b =
  match a, b with
  | Some e1, Some e2
    when equal_must_src e1.ep_src e2.ep_src
         && Bool.equal e1.ep_displaced e2.ep_displaced -> (
      match Intval.merge ctx e1.ep_idx e2.ep_idx with
      | Intval.Top -> None
      | i -> Some { e1 with ep_idx = i })
  | Some _, Some _ | None, _ | _, None -> None

let merge_aval (ctx : Intval.Ctx.ctx) (s1 : t) (s2 : t) (a : aval) (b : aval)
    : aval =
  match a, b with
  | Bot, x | x, Bot -> x
  | Int x, Int y -> Int (Intval.merge ctx x y)
  | Ref x, Ref y ->
      Ref
        {
          refs = Rset.union x.refs y.refs;
          nos = merge_nos s1 s2 x y;
          msrc = merge_msrc x.msrc y.msrc;
          eprov = merge_eprov ctx x.eprov y.eprov;
        }
  | Clash, _ | _, Clash -> Clash
  | Int _, Ref _ | Ref _, Int _ -> Clash

(** Merge two whole states through one shared merge context, so that all
    integer state components (ρ, stk, and NR bounds — §3.5) discover common
    strides.  Raises [Invalid_argument] on operand-stack disagreement,
    which the verifier rules out. *)
let merge ?(widen = false) ~(gen : Intval.Gen.t) (s1 : t) (s2 : t) : t =
  let ctx = Intval.Ctx.create ~widen gen in
  let mav = merge_aval ctx s1 s2 in
  if List.length s1.stk <> List.length s2.stk then
    invalid_arg "State.merge: operand stack mismatch";
  let sigma =
    Sigma.merge
      (fun _ a b ->
        match a, b with
        | None, x | x, None -> x
        | Some a, Some b -> Some (mav a b))
      s1.sigma s2.sigma
  in
  let len =
    Rmap.merge
      (fun _ a b ->
        match a, b with
        | None, x | x, None -> x
        | Some a, Some b -> Some (Intval.merge ctx a b))
      s1.len s2.len
  in
  let nr =
    Rmap.merge
      (fun r a b ->
        match a, b with
        | None, x | x, None -> x
        | Some a, Some b ->
            let len_of (s : t) =
              match Rmap.find_opt r s.len with
              | Some l -> l
              | None -> Intval.top
            in
            Some (Intrange.merge ctx ~len1:(len_of s1) ~len2:(len_of s2) a b))
      s1.nr s2.nr
  in
  let shift =
    match s1.shift, s2.shift with
    | Some (m1, i1), Some (m2, i2) when equal_must_src m1 m2 -> (
        match Intval.merge ctx i1 i2 with
        | Intval.Top -> None
        | i -> Some (m1, i))
    | Some _, Some _ | None, _ | _, None -> None
  in
  {
    rho = Array.map2 mav s1.rho s2.rho;
    stk = List.map2 mav s1.stk s2.stk;
    nl = Rset.union s1.nl s2.nl;
    sigma;
    len;
    nr;
    shift;
  }

(* ---- null-or-same fact invalidation ----------------------------------- *)

(** [kill_nos s locs] removes every null-or-same fact about the locations
    [locs] from every abstract value in the state.  Called whenever a
    location may have been written, so surviving facts always describe the
    current content. *)
let kill_nos (s : t) (locs : (Refsym.t * Field_id.t) list) : t =
  if locs = [] then s
  else
    let dead (r, f) =
      List.exists
        (fun (r', f') -> Refsym.equal r r' && Field_id.equal f f')
        locs
    in
    let clean = function
      | Ref ri -> Ref { ri with nos = Nos.filter (fun l -> not (dead l)) ri.nos }
      | (Bot | Clash | Int _) as v -> v
    in
    {
      s with
      rho = Array.map clean s.rho;
      stk = List.map clean s.stk;
      sigma = Sigma.map clean s.sigma;
    }

(** Invalidate must-source-derived facts.  [pred m] selects the sources
    to kill; values lose their [msrc]/[eprov], and the active shift chain
    dies if its source matches. *)
let kill_must_src (s : t) (pred : must_src -> bool) : t =
  let clean = function
    | Ref ri ->
        let msrc =
          match ri.msrc with Some m when pred m -> None | o -> o
        in
        let eprov =
          match ri.eprov with
          | Some { ep_src = m; _ } when pred m -> None
          | o -> o
        in
        Ref { ri with msrc; eprov }
    | (Bot | Clash | Int _) as v -> v
  in
  let shift =
    match s.shift with Some (m, _) when pred m -> None | o -> o
  in
  {
    s with
    rho = Array.map clean s.rho;
    stk = List.map clean s.stk;
    sigma = Sigma.map clean s.sigma;
    shift;
  }

(** Kill every must-source fact (conservative barrier for calls, which
    may write any static or array). *)
let kill_all_must_src (s : t) : t = kill_must_src s (fun _ -> true)

(** Kill every element provenance — called after any object-array store,
    since two distinct sources may alias the same concrete array.  (The
    caller re-establishes the shift chain separately when the store
    extended it.) *)
let kill_all_eprov (s : t) : t =
  let clean = function
    | Ref ({ eprov = Some _; _ } as ri) -> Ref { ri with eprov = None }
    | (Bot | Clash | Int _ | Ref { eprov = None; _ }) as v -> v
  in
  {
    s with
    rho = Array.map clean s.rho;
    stk = List.map clean s.stk;
    sigma = Sigma.map clean s.sigma;
  }

(** Refine element provenances across an object-array store to index
    [idx] of the array identified by [src].

    A (non-displaced) provenance survives only when its array is
    {e must}-the-same as the stored-to one and its index provably differs
    from [idx] by a nonzero constant — the slot it describes was not
    touched.  Facts about a different or unknown source always die: two
    distinct sources may alias the same concrete array.  Displaced facts
    are consumed by the swap-verdict logic {e before} the store's kill,
    so any still present die here too.

    With [displace], facts whose index provably {e equals} [idx] become
    displaced instead of dying: the store is the first half of a swap,
    and the fact's value is the unique element just pushed out of that
    slot. *)
let eprov_after_store (s : t) ~(src : must_src option) ~(idx : Intval.t)
    ~(displace : bool) : t =
  let clean = function
    | Ref ({ eprov = Some ep; _ } as ri) ->
        let eprov =
          match src with
          | Some m when equal_must_src ep.ep_src m && not ep.ep_displaced ->
              if displace && Intval.equal ep.ep_idx idx then
                Some { ep with ep_displaced = true }
              else (
                match Intval.to_literal (Intval.sub ep.ep_idx idx) with
                | Some d when d <> 0 -> Some ep
                | Some _ | None -> None)
          | Some _ | None -> None
        in
        Ref { ri with eprov }
    | (Bot | Clash | Int _ | Ref { eprov = None; _ }) as v -> v
  in
  {
    s with
    rho = Array.map clean s.rho;
    stk = List.map clean s.stk;
    sigma = Sigma.map clean s.sigma;
  }

(* ---- stack and locals helpers ----------------------------------------- *)

exception Analysis_bug of string

let bugf fmt = Fmt.kstr (fun s -> raise (Analysis_bug s)) fmt

let push v s = { s with stk = v :: s.stk }

let pop s =
  match s.stk with
  | v :: stk -> (v, { s with stk })
  | [] -> bugf "abstract stack underflow (verifier should prevent this)"

let pop_int s =
  match pop s with
  | Int i, s -> (i, s)
  | (Bot | Clash), s -> (Intval.top, s)
  | Ref _, _ -> bugf "expected abstract int on stack"

let pop_ref s =
  match pop s with
  | Ref ri, s -> (ri, s)
  | (Bot | Clash), s -> (mk_refinfo (Rset.singleton Refsym.Global), s)
  | Int _, _ -> bugf "expected abstract ref on stack"

let set_local s i v =
  let rho = Array.copy s.rho in
  rho.(i) <- v;
  { s with rho }

let local s i = s.rho.(i)
