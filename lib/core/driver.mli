(** End-to-end "JIT compilation" pipeline: verify → inline → analyze,
    bundling the expanded program with per-site barrier verdicts keyed the
    way the runtime looks them up, plus the compile-time measurements used
    by the Figure 2 reproduction. *)

type site_key = {
  sk_class : Jir.Types.class_name;
  sk_method : Jir.Types.method_name;
  sk_pc : int;  (** pc in the {e inlined} method *)
}

type assumption =
  | Single_mutator
  | Retrace_collector
  | Descending_scan
  | Mode_a
  | Closed_world
      (** the callee summaries consulted during analysis remain valid —
          no class is loaded after compilation *)
(** The runtime assumptions an elided verdict depends on; the runtime
    mirrors this type and revokes dependent elisions when one is
    observed false. *)

val string_of_assumption : assumption -> string

val assumptions_of_reason : Analysis.reason -> assumption list
(** Unconditional verdicts (pre-null field, null-or-same, dead code)
    carry no assumptions; §3 array verdicts record mode A; the §4.3
    move-down and swap extensions additionally depend on a single
    mutator and on the collector (scan direction / retrace protocol). *)

val ins_assumptions_of_reason : Analysis.ins_reason -> assumption list
(** Guards of the {e insertion}-half verdict alone.  Null and literal
    in-method freshness are unconditional (the collector's
    allocate-black plus remark re-scan cover them); freshness proved
    through a callee summary stands on the closed world. *)

type compiled = {
  program : Jir.Program.t;  (** after inlining *)
  results : Analysis.method_result list;
  verdicts : (site_key, Analysis.verdict) Hashtbl.t;
  guards : (site_key, assumption list) Hashtbl.t;
      (** guard table: assumption set of every elided conditional site *)
  ins_guards : (site_key, assumption list) Hashtbl.t;
      (** insertion-half guard table, kept apart from [guards] so a
          hybrid collector can revoke one half of a barrier while the
          other stays elided *)
  inline_limit : int;
  conf : Analysis.config;
  summaries : Summary.table option;
      (** the interprocedural summary table, when [conf.summaries] *)
  analysis_seconds : float;
      (** monotonic wall-clock seconds in the analysis proper
          ({!Telemetry.now_s}, so traces and verbose timings agree) *)
  inline_seconds : float;
  summary_seconds : float;  (** wall-clock seconds computing summaries *)
}

type static_stats = {
  total_sites : int;
  elided_sites : int;
  field_sites : int;
  field_elided : int;
  array_sites : int;
  array_elided : int;
  static_sites : int;
  by_reason : (Analysis.reason * int) list;
  ins_elided_sites : int;
      (** sites whose {e insertion} (Dijkstra) half is removable — only
          a hybrid collector can cash these in *)
  both_elided_sites : int;  (** sites with both halves removable *)
  by_ins_reason : (Analysis.ins_reason * int) list;
}

val compile :
  ?verify:bool ->
  ?inline_limit:int ->
  ?conf:Analysis.config ->
  Jir.Program.t ->
  compiled

val needs_barrier : compiled -> site_key -> bool
(** Does the store at the site still need its SATB barrier?  Unknown
    sites conservatively do. *)

val verdict : compiled -> site_key -> Analysis.verdict option

val retrace_check : compiled -> site_key -> [ `None | `Open | `Close ]
(** Tracing-state check emitted at a swap-elided store: [`Open] at the
    pair's first store (also opens the safepoint-free window), [`Close]
    at the second, [`None] everywhere else. *)

val site_assumptions : compiled -> site_key -> assumption list
(** Assumption set the elision at the site depends on; empty for kept
    sites and unconditional verdicts. *)

val ins_site_assumptions : compiled -> site_key -> assumption list
(** Assumption set the {e insertion}-half elision at the site depends
    on; empty for kept-insertion sites and unconditional verdicts. *)

(** Split verdict for a hybrid (deletion + insertion) barrier: how the
    deletion verdict ([v_elide], overwritten-value facts) and the
    insertion verdict ([v_ins_elide], stored-value facts) combine at one
    site. *)
type hybrid_verdict = [ `Keep | `Elide_deletion | `Elide_insertion | `Elide_both ]

val string_of_hybrid_verdict : hybrid_verdict -> string

val hybrid_verdict : compiled -> site_key -> hybrid_verdict
(** The split verdict at the site; unknown sites are [`Keep]. *)

val ins_repair_needed : compiled -> site_key -> bool
(** Must the destination object be queued for a remark-time re-scan when
    the insertion half is elided at this site?  True for the freshness
    verdicts (the allocation may predate the current marking cycle);
    false for provably-null stores and dead code. *)

val guarded_assumptions : compiled -> assumption list
(** Deduplicated union of all sites' assumption sets, in declaration
    order. *)

val string_of_site_key : site_key -> string
(** ["Class.method\@pc"], the site id used in traces and [--explain]. *)

(** Why a site's barrier was removed: the rule that fired, the chain of
    abstract facts it rests on, and the runtime guards the verdict
    depends on.  What [analyze --explain] prints, and what revocation
    events carry so a revoked site names its original justification. *)
type provenance = {
  pv_key : site_key;
  pv_kind : Jir.Types.store_kind;
  pv_reason : Analysis.reason;
  pv_rule : string;  (** short rule name, e.g. ["pre-null-field"] *)
  pv_facts : string list;  (** the abstract-fact chain, outermost first *)
  pv_guards : assumption list;
  pv_summary_dependent : bool;
}

val explain : compiled -> site_key -> provenance option
(** Provenance for the verdict at the site; [None] for unknown sites. *)

val explanations : compiled -> provenance list
(** Provenance of every {e elided} site, sorted by site id
    (class, method, pc) so the output is deterministic. *)

val pp_provenance : provenance Fmt.t

val justification : compiled -> site_key -> string option
(** One-line justification string attached to runtime revocation
    events. *)

val static_stats : compiled -> static_stats
val pp_static_stats : static_stats Fmt.t

val barrier_footprint : int
(** Inline code-space cost of one retained SATB barrier, in machine
    instructions (§1: "between 9 and 12 RISC instructions"). *)

val codegen_expansion : int
(** Machine instructions per bytecode in the code-size model. *)

val code_size : compiled -> int
(** Figure 3's metric: expanded bytecodes plus barrier footprints. *)
