(** Interprocedural method summaries.

    The paper's analyses are intraprocedural and lean on the inliner:
    every non-inlined [Invoke] havocs the abstract state (all reference
    arguments escape, must-alias facts die, the return value is
    [GlobalRef]).  This module computes compositional per-method
    summaries — escape information in the style of Hill & Spoto's
    abstract-interpretation escape analysis, and entry/exit nullness
    facts in the style of Hubert's non-null inferencer — so the
    summary-aware call transfer in {!Analysis} can keep elision precision
    at small inline limits.

    Summaries are computed bottom-up over the {!Callgraph} SCC
    condensation; recursive components are iterated to a fixpoint under a
    widened round bound (past the bound, every member degrades to the
    havoc summary, which is exactly the old blanket behaviour). *)

open Jir.Types

module Iset : Set.S with type elt = int
module Fmap : Map.S with type key = Field_id.t

type vshape = {
  vs_params : Iset.t;
      (** may equal, or be reachable from, these parameters *)
  vs_fresh : bool;  (** may be an object allocated during the call *)
  vs_global : bool;  (** may be a pre-existing / escaped object *)
}
(** Shape of a value as the caller can name it.  All components empty /
    false means the value is definitely null. *)

type write = {
  w_val : vshape;  (** join of every reference written to the location *)
  w_int : bool;  (** an integer write to the location may occur *)
  w_must : bool;
      (** the location is written on every normal return, with the
          parameter itself (not something reachable from it) as the
          receiver — the caller may apply a strong update *)
}
(** Effect on one field of (an object reachable from) a parameter. *)

type param_summary = {
  ps_escapes : bool;
      (** the argument (or something reachable from it) may become
          reachable from another thread *)
  ps_writes : write Fmap.t;  (** per-field may-write effects *)
  ps_writes_top : bool;
      (** unknown fields of the argument's reachable objects may be
          written — the caller must treat the argument as escaped *)
}

type ret_shape =
  | Ret_plain  (** void or integer return *)
  | Ret_fresh of class_name * (vshape * bool) Fmap.t
      (** a freshly allocated, unescaped object of the class; the map
          gives the may-written fields (reference shape, integer-write
          flag) — unlisted reference fields are definitely null and
          unlisted integer fields definitely zero *)
  | Ret_shape of vshape  (** anything else *)

(** Statics the method (transitively) writes. *)
type statics_w = Sw_set of field_ref list | Sw_top

type t = {
  s_params : param_summary array;  (** indexed by parameter position *)
  s_ret : ret_shape;
  s_statics : statics_w;
  s_elems_public : bool;
      (** may store into elements of a caller-visible (global-reachable)
          object array: element-provenance facts must die.  Writes
          through parameters are visible per-field in [ps_writes]. *)
  s_global_heap : bool;
      (** may write fields of objects it did not allocate and was not
          passed (reached through statics) *)
  s_allocates : bool;
  s_spawns : bool;
  s_calls_unknown : bool;
      (** some transitive callee had no summary; its effects were folded
          in as havoc *)
}

val pure : t -> bool
(** No caller-visible side effect at all: nothing escapes, no parameter
    or global heap writes, no statics written, no spawn, no unknown
    callee.  (A pure method may still allocate.) *)

val havoc : meth -> t
(** The blanket worst-case summary: all arguments escape with unknown
    writes, all statics written, global return. *)

val equal : t -> t -> bool
val pp : t Fmt.t

(** {2 Summary tables} *)

type table

val find : table -> method_ref -> t option
val n_methods : table -> int

val n_havoced : table -> int
(** Methods whose summary degraded to {!havoc} (recursive components
    past the fixpoint bound). *)

val of_program : ?fixpoint_bound:int -> Jir.Program.t -> table
(** Summarize every method, bottom-up over the call-graph SCC
    condensation.  Recursive components start from the bottom summary
    and iterate; if a component has not converged after
    [fixpoint_bound] rounds (default 12), its members are widened to
    {!havoc}. *)
