(** Static call graph + Tarjan SCC condensation (see the mli).

    Everything is deterministic: nodes are visited in sorted order and
    adjacency lists are sorted, so the bottom-up SCC order — and with it
    the summary fixpoint — is byte-stable across runs. *)

open Jir.Types

type node = class_name * method_name

let compare_node (c1, m1) (c2, m2) =
  match String.compare c1 c2 with 0 -> String.compare m1 m2 | c -> c

module Nmap = Map.Make (struct
  type t = node

  let compare = compare_node
end)

type scc = { members : node list; recursive : bool }

type t = {
  nodes : node list;  (** sorted *)
  succ : node list Nmap.t;  (** sorted, deduplicated *)
  pred : node list Nmap.t;
}

let direct_callees (prog : Jir.Program.t) (m : meth) : node list =
  Array.to_list m.code
  |> List.filter_map (function
       | Invoke mr | Spawn mr ->
           (* unknown targets cannot be summarized; drop the edge *)
           if Jir.Program.find_method prog mr <> None then
             Some (mr.mclass, mr.mname)
           else None
       | _ -> None)
  |> List.sort_uniq compare_node

let build (prog : Jir.Program.t) : t =
  let nodes =
    Jir.Program.all_methods prog
    |> List.map (fun ((c : cls), (m : meth)) -> (c.cname, m.mname))
    |> List.sort compare_node
  in
  let succ =
    List.fold_left
      (fun acc ((c : cls), (m : meth)) ->
        Nmap.add (c.cname, m.mname) (direct_callees prog m) acc)
      Nmap.empty
      (Jir.Program.all_methods prog)
  in
  let pred =
    Nmap.fold
      (fun caller callees acc ->
        List.fold_left
          (fun acc callee ->
            Nmap.update callee
              (function None -> Some [ caller ] | Some l -> Some (caller :: l))
              acc)
          acc callees)
      succ Nmap.empty
  in
  let pred = Nmap.map (List.sort_uniq compare_node) pred in
  { nodes; succ; pred }

let n_nodes t = List.length t.nodes

let callees t n = Option.value (Nmap.find_opt n t.succ) ~default:[]
let callers t n = Option.value (Nmap.find_opt n t.pred) ~default:[]

(** Iterative Tarjan.  Emits SCCs callee-first: a component is completed
    only after every component it can reach, which is exactly the
    bottom-up order the summary engine wants. *)
let sccs_bottom_up (t : t) : scc list =
  let index = ref 0 in
  let idx : int Nmap.t ref = ref Nmap.empty in
  let low : int Nmap.t ref = ref Nmap.empty in
  let on_stack : bool Nmap.t ref = ref Nmap.empty in
  let stack = ref [] in
  let out = ref [] in
  let find m n = Nmap.find n !m in
  let set m n v = m := Nmap.add n v !m in
  (* explicit machine: (node, remaining callees) frames *)
  let rec visit (n : node) =
    set idx n !index;
    set low n !index;
    incr index;
    stack := n :: !stack;
    set on_stack n true;
    List.iter
      (fun c ->
        if not (Nmap.mem c !idx) then begin
          visit c;
          set low n (min (find low n) (find low c))
        end
        else if Option.value (Nmap.find_opt c !on_stack) ~default:false then
          set low n (min (find low n) (find idx c)))
      (callees t n);
    if find low n = find idx n then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | x :: rest ->
            stack := rest;
            set on_stack x false;
            if compare_node x n = 0 then x :: acc else pop (x :: acc)
      in
      let members = List.sort compare_node (pop []) in
      let recursive =
        match members with
        | [ m ] -> List.exists (fun c -> compare_node c m = 0) (callees t m)
        | _ -> true
      in
      out := { members; recursive } :: !out
    end
  in
  List.iter (fun n -> if not (Nmap.mem n !idx) then visit n) t.nodes;
  List.rev !out
