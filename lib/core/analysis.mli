(** The barrier-removal abstract interpretation (paper §2 and §3): a
    flow-sensitive, intraprocedural iterative dataflow analysis over basic
    blocks, producing a verdict — barrier removable or not, and why — for
    every reference-store site.  The verdict recorded at the fixed point
    is the sound one (§2.4). *)

(** Analysis modes, matching the configurations of the paper's Figures 2
    and 3: no analysis / field only / field + array. *)
type mode = B | F | A

val mode_of_string : string -> mode option
val string_of_mode : mode -> string

type config = {
  mode : mode;
  null_or_same : bool;  (** enable the §4.3 null-or-same extension *)
  move_down : bool;
      (** enable the §4.3 move-down elision; applied only to
          single-mutator programs, and requires the collector to scan
          object arrays in descending index order *)
  swap : bool;
      (** enable the §4.3 pairwise-swap elision; applied only to
          single-mutator programs, and sound only under the retrace
          collector's tracing-state protocol — elided pairs are surfaced
          as tracing-check sites *)
  two_names : bool;
      (** §2.4 two-names-per-site precision; disable only for the
          ablation study *)
  max_visits : int;  (** per-block widening threshold *)
  summaries : bool;
      (** consult interprocedural callee summaries ({!Summary}) at
          non-inlined [Invoke]s instead of the blanket havoc *)
  debug : bool;  (** trace block states and verdicts on stderr *)
}

val default_config : config

(** Why a barrier was removed (or kept). *)
type reason =
  | Keep
  | Pre_null_field  (** §2: receiver thread-local, field definitely null *)
  | Pre_null_array  (** §3: index within the array's null range *)
  | Null_or_same  (** §4.3: rewrites the field's value or fills a null *)
  | Move_down  (** §4.3: delete-by-shift copy store *)
  | Swap_first
      (** §4.3: first store of an elided pairwise swap; requires the
          retrace collector's tracing-state check in place of the
          barrier *)
  | Swap_second  (** §4.3: second store of an elided pairwise swap *)
  | Dead_code

val string_of_reason : reason -> string

(** Why the insertion (Dijkstra) half of a hybrid barrier was removed (or
    kept): facts about the {e stored} value, independent of the
    deletion-half facts about the overwritten one. *)
type ins_reason =
  | Ins_keep
  | Ins_null  (** stored value provably null *)
  | Ins_fresh  (** every possible value is an in-method allocation *)
  | Ins_summary_fresh
      (** fresh via a callee summary ([Ret_fresh]); additionally rests on
          the closed-world assumption *)
  | Ins_dead

val string_of_ins_reason : ins_reason -> string

val ins_elides : ins_reason -> bool

type verdict = {
  v_pc : int;
  v_kind : Jir.Types.store_kind;
  v_elide : bool;
  v_reason : reason;
  v_ins_elide : bool;  (** the insertion half alone is removable *)
  v_ins_reason : ins_reason;
}

type method_result = {
  mr_class : Jir.Types.class_name;
  mr_method : Jir.Types.method_name;
  verdicts : verdict list;  (** one per reference-store site, by pc *)
  iterations : int;  (** block visits until the fixed point *)
  mr_summary_dependent : bool;
      (** a callee summary was consulted: elisions in this method also
          depend on the closed-world assumption *)
}

val analyze_method :
  ?conf:config ->
  ?single_mutator:bool ->
  ?summaries:Summary.table ->
  Jir.Program.t ->
  Jir.Types.cls ->
  Jir.Types.meth ->
  method_result
(** Analyze one (already inlined) method to its fixed point.
    [single_mutator] gates the move-down extension; [summaries] (used
    only under [conf.summaries]) replaces the blanket [Invoke] havoc with
    the callee's summarized effects. *)

val program_spawns : Jir.Program.t -> bool
(** Does the program ever start a second thread? *)

val analyze_program :
  ?conf:config ->
  ?summaries:Summary.table ->
  Jir.Program.t ->
  method_result list
(** Analyze every method.  With [conf.summaries] and no table supplied,
    the summary table is computed here first. *)
