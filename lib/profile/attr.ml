(** Per-site barrier attribution — see attr.mli. *)

module J = Telemetry

(* Bumped whenever the JSON layout changes incompatibly; {!of_json}
   refuses files written at any other version so the regression gate
   never silently compares mismatched layouts. *)
let schema_version = 2

type site_row = {
  r_site : string;
  r_kind : string;
  r_elided : bool;
  r_execs : int;
  r_elided_execs : int;
  r_paid_execs : int;
  r_del_elided : bool;
  r_ins_elided : bool;
  r_del_elided_execs : int;
  r_del_paid_execs : int;
  r_ins_elided_execs : int;
  r_ins_paid_execs : int;
  r_barrier_units : int;
  r_revocations : int;
  r_guards : string list;
  r_why : string option;
}

type totals = {
  t_execs : int;
  t_elided_execs : int;
  t_paid_execs : int;
  t_del_elided_execs : int;
  t_del_paid_execs : int;
  t_ins_elided_execs : int;
  t_ins_paid_execs : int;
  t_barrier_units : int;
  t_external_paid : int;
  t_external_elided : int;
  t_revocation_events : int;
  t_revoked_sites : int;
}

type t = {
  p_workload : string;
  p_gc : string;
  p_steps : int;
  p_cycles : int;
  p_violations : int;
  p_sites : site_row list;
  p_totals : totals;
  p_pauses : Stats.dist;
  p_mmu : (int * float) list;
  p_utilization : float;
}

let kind_string = function
  | Jir.Types.Field_store -> "field"
  | Jir.Types.Array_store -> "array"
  | Jir.Types.Static_store -> "static"

let of_report ~workload ~gc ?(explain = Jrt.Interp.no_explain)
    (r : Jrt.Runner.report) : t =
  let m = r.Jrt.Runner.machine in
  let sites =
    Hashtbl.fold
      (fun site (st : Jrt.Interp.site_stats) acc ->
        {
          r_site = Jrt.Interp.site_id site;
          r_kind = kind_string st.Jrt.Interp.st_kind;
          r_elided = st.Jrt.Interp.st_elided;
          r_execs = st.Jrt.Interp.execs;
          r_elided_execs = st.Jrt.Interp.elided_execs;
          r_paid_execs = st.Jrt.Interp.paid_execs;
          r_del_elided = st.Jrt.Interp.st_del_elided;
          r_ins_elided = st.Jrt.Interp.st_ins_elided;
          r_del_elided_execs = st.Jrt.Interp.del_elided_execs;
          r_del_paid_execs = st.Jrt.Interp.del_paid_execs;
          r_ins_elided_execs = st.Jrt.Interp.ins_elided_execs;
          r_ins_paid_execs = st.Jrt.Interp.ins_paid_execs;
          r_barrier_units = st.Jrt.Interp.barrier_units;
          r_revocations = st.Jrt.Interp.revocations;
          r_guards =
            List.map Jrt.Interp.string_of_assumption st.Jrt.Interp.st_guards;
          r_why =
            explain site.Jrt.Interp.s_class site.Jrt.Interp.s_method
              site.Jrt.Interp.s_pc;
        }
        :: acc)
      m.Jrt.Interp.stats []
  in
  let sites =
    List.sort (fun a b -> String.compare a.r_site b.r_site) sites
  in
  let sum f = List.fold_left (fun a s -> a + f s) 0 sites in
  let totals =
    {
      t_execs = sum (fun s -> s.r_execs);
      t_elided_execs = sum (fun s -> s.r_elided_execs);
      t_paid_execs = sum (fun s -> s.r_paid_execs);
      t_del_elided_execs = sum (fun s -> s.r_del_elided_execs);
      t_del_paid_execs = sum (fun s -> s.r_del_paid_execs);
      t_ins_elided_execs = sum (fun s -> s.r_ins_elided_execs);
      t_ins_paid_execs = sum (fun s -> s.r_ins_paid_execs);
      t_barrier_units = sum (fun s -> s.r_barrier_units);
      t_external_paid = m.Jrt.Interp.external_paid_execs;
      t_external_elided = m.Jrt.Interp.external_elided_execs;
      t_revocation_events = m.Jrt.Interp.revocation_events;
      t_revoked_sites = m.Jrt.Interp.revoked_sites;
    }
  in
  let timeline =
    Stats.timeline_of_summary ~steps:r.Jrt.Runner.steps r.Jrt.Runner.gc
  in
  let cycles, violations, pause_works =
    match r.Jrt.Runner.gc with
    | None -> (0, 0, [])
    | Some g ->
        ( g.Jrt.Runner.cycles,
          g.Jrt.Runner.total_violations,
          g.Jrt.Runner.final_pause_works )
  in
  {
    p_workload = workload;
    p_gc = gc;
    p_steps = r.Jrt.Runner.steps;
    p_cycles = cycles;
    p_violations = violations;
    p_sites = sites;
    p_totals = totals;
    p_pauses = Stats.dist_of pause_works;
    p_mmu = Stats.mmu_curve timeline;
    p_utilization = Stats.utilization timeline;
  }

let elision_rate (p : t) : float =
  let elided = p.p_totals.t_elided_execs + p.p_totals.t_external_elided in
  let paid = p.p_totals.t_paid_execs + p.p_totals.t_external_paid in
  let all = elided + paid in
  if all = 0 then 0.0 else 100.0 *. float_of_int elided /. float_of_int all

let units_per_kstep (p : t) : float =
  if p.p_steps = 0 then 0.0
  else 1000.0 *. float_of_int p.p_totals.t_barrier_units /. float_of_int p.p_steps

let has_halves (p : t) : bool =
  p.p_totals.t_del_elided_execs + p.p_totals.t_del_paid_execs
  + p.p_totals.t_ins_elided_execs + p.p_totals.t_ins_paid_execs
  > 0

let half_rate ~elided ~paid : float =
  if elided + paid = 0 then 0.0
  else 100.0 *. float_of_int elided /. float_of_int (elided + paid)

let del_elision_rate (p : t) : float =
  half_rate ~elided:p.p_totals.t_del_elided_execs
    ~paid:p.p_totals.t_del_paid_execs

let ins_elision_rate (p : t) : float =
  half_rate ~elided:p.p_totals.t_ins_elided_execs
    ~paid:p.p_totals.t_ins_paid_execs

let reconciles (p : t) (r : Jrt.Runner.report) : (unit, string) result =
  let m = r.Jrt.Runner.machine in
  let checks =
    [
      ( "paid executions",
        p.p_totals.t_paid_execs + p.p_totals.t_external_paid,
        m.Jrt.Interp.barriers_executed );
      ( "elided executions",
        p.p_totals.t_elided_execs + p.p_totals.t_external_elided,
        m.Jrt.Interp.elided_barrier_execs );
      ("barrier units", p.p_totals.t_barrier_units, m.Jrt.Interp.barrier_units);
      ( "total executions",
        p.p_totals.t_execs,
        p.p_totals.t_paid_execs + p.p_totals.t_elided_execs );
      ("dynamic stores", p.p_totals.t_execs, r.Jrt.Runner.dyn.Jrt.Interp.total_execs);
    ]
  in
  (* Under the hybrid flavor every store runs each half exactly once
     (elided or paid), so the per-half sums must also cover every
     execution. *)
  let checks =
    if m.Jrt.Interp.cfg.Jrt.Interp.barrier_flavor = `Hybrid then
      checks
      @ [
          ( "deletion-half executions",
            p.p_totals.t_del_paid_execs + p.p_totals.t_del_elided_execs,
            p.p_totals.t_execs );
          ( "insertion-half executions",
            p.p_totals.t_ins_paid_execs + p.p_totals.t_ins_elided_execs,
            p.p_totals.t_execs );
        ]
    else checks
  in
  let rec go = function
    | [] -> Ok ()
    | (what, got, want) :: rest ->
        if got <> want then
          Error (Printf.sprintf "%s: profile says %d, counters say %d" what got want)
        else go rest
  in
  go checks

(* Ranking is a total order: units desc, paid execs desc, then site id
   asc as the deciding key.  Site ids are unique within a profile, so
   the result never depends on the Hashtbl fold order the rows were
   born in — `render` and `profile --json` are byte-stable across runs
   with equal counts. *)
let hot ?(top = 10) (p : t) : site_row list =
  let ranked =
    List.sort
      (fun a b ->
        match compare b.r_barrier_units a.r_barrier_units with
        | 0 -> (
            match compare b.r_paid_execs a.r_paid_execs with
            | 0 -> String.compare a.r_site b.r_site
            | c -> c)
        | c -> c)
      p.p_sites
  in
  List.filteri (fun i _ -> i < top) ranked

(* ---- JSON --------------------------------------------------------------- *)

let round6 f = Float.round (f *. 1e6) /. 1e6

let site_to_json (s : site_row) : J.json =
  J.Obj
    [
      ("barrier_units", J.Int s.r_barrier_units);
      ("del_elided", J.Bool s.r_del_elided);
      ("del_elided_execs", J.Int s.r_del_elided_execs);
      ("del_paid_execs", J.Int s.r_del_paid_execs);
      ("elided", J.Bool s.r_elided);
      ("elided_execs", J.Int s.r_elided_execs);
      ("execs", J.Int s.r_execs);
      ("guards", J.List (List.map (fun g -> J.Str g) s.r_guards));
      ("ins_elided", J.Bool s.r_ins_elided);
      ("ins_elided_execs", J.Int s.r_ins_elided_execs);
      ("ins_paid_execs", J.Int s.r_ins_paid_execs);
      ("kind", J.Str s.r_kind);
      ("paid_execs", J.Int s.r_paid_execs);
      ("revocations", J.Int s.r_revocations);
      ("site", J.Str s.r_site);
      ("why", match s.r_why with None -> J.Null | Some w -> J.Str w);
    ]

let to_json (p : t) : J.json =
  J.Obj
    [
      ("cycles", J.Int p.p_cycles);
      ("gc", J.Str p.p_gc);
      ( "mmu",
        J.List
          (List.map
             (fun (w, u) ->
               J.Obj [ ("mmu", J.Float (round6 u)); ("window", J.Int w) ])
             p.p_mmu) );
      ( "pauses",
        J.Obj
          [
            ("count", J.Int p.p_pauses.Stats.d_count);
            ("max", J.Int p.p_pauses.Stats.d_max);
            ("p50", J.Int p.p_pauses.Stats.d_p50);
            ("p90", J.Int p.p_pauses.Stats.d_p90);
            ("p99", J.Int p.p_pauses.Stats.d_p99);
            ("total", J.Int p.p_pauses.Stats.d_total);
          ] );
      ("schema_version", J.Int schema_version);
      ("sites", J.List (List.map site_to_json p.p_sites));
      ("steps", J.Int p.p_steps);
      ( "totals",
        J.Obj
          [
            ("barrier_units", J.Int p.p_totals.t_barrier_units);
            ("del_elided_execs", J.Int p.p_totals.t_del_elided_execs);
            ("del_paid_execs", J.Int p.p_totals.t_del_paid_execs);
            ("elided_execs", J.Int p.p_totals.t_elided_execs);
            ("execs", J.Int p.p_totals.t_execs);
            ("external_elided", J.Int p.p_totals.t_external_elided);
            ("external_paid", J.Int p.p_totals.t_external_paid);
            ("ins_elided_execs", J.Int p.p_totals.t_ins_elided_execs);
            ("ins_paid_execs", J.Int p.p_totals.t_ins_paid_execs);
            ("paid_execs", J.Int p.p_totals.t_paid_execs);
            ("revocation_events", J.Int p.p_totals.t_revocation_events);
            ("revoked_sites", J.Int p.p_totals.t_revoked_sites);
          ] );
      ("utilization", J.Float (round6 p.p_utilization));
      ("violations", J.Int p.p_violations);
      ("workload", J.Str p.p_workload);
    ]

(* -- parsing back -- *)

let field (o : (string * J.json) list) (k : string) : (J.json, string) result =
  match List.assoc_opt k o with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing key %S" k)

let as_obj = function
  | J.Obj o -> Ok o
  | _ -> Error "expected an object"

let as_int k = function
  | J.Int i -> Ok i
  | _ -> Error (Printf.sprintf "key %S: expected an integer" k)

let as_float k = function
  | J.Float f -> Ok f
  | J.Int i -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "key %S: expected a number" k)

let as_str k = function
  | J.Str s -> Ok s
  | _ -> Error (Printf.sprintf "key %S: expected a string" k)

let as_bool k = function
  | J.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "key %S: expected a bool" k)

let ( let* ) = Result.bind

let int_field o k =
  let* v = field o k in
  as_int k v

let float_field o k =
  let* v = field o k in
  as_float k v

let str_field o k =
  let* v = field o k in
  as_str k v

let bool_field o k =
  let* v = field o k in
  as_bool k v

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
      let* y = f x in
      let* ys = map_result f xs in
      Ok (y :: ys)

let site_of_json (j : J.json) : (site_row, string) result =
  let* o = as_obj j in
  let* r_barrier_units = int_field o "barrier_units" in
  let* r_elided = bool_field o "elided" in
  let* r_elided_execs = int_field o "elided_execs" in
  let* r_execs = int_field o "execs" in
  let* guards = field o "guards" in
  let* r_guards =
    match guards with
    | J.List gs -> map_result (as_str "guards") gs
    | _ -> Error "key \"guards\": expected a list"
  in
  let* r_del_elided = bool_field o "del_elided" in
  let* r_del_elided_execs = int_field o "del_elided_execs" in
  let* r_del_paid_execs = int_field o "del_paid_execs" in
  let* r_ins_elided = bool_field o "ins_elided" in
  let* r_ins_elided_execs = int_field o "ins_elided_execs" in
  let* r_ins_paid_execs = int_field o "ins_paid_execs" in
  let* r_kind = str_field o "kind" in
  let* r_paid_execs = int_field o "paid_execs" in
  let* r_revocations = int_field o "revocations" in
  let* r_site = str_field o "site" in
  let* r_why =
    match field o "why" with
    | Ok J.Null | Error _ -> Ok None
    | Ok (J.Str w) -> Ok (Some w)
    | Ok _ -> Error "key \"why\": expected a string or null"
  in
  Ok
    {
      r_site;
      r_kind;
      r_elided;
      r_execs;
      r_elided_execs;
      r_paid_execs;
      r_del_elided;
      r_ins_elided;
      r_del_elided_execs;
      r_del_paid_execs;
      r_ins_elided_execs;
      r_ins_paid_execs;
      r_barrier_units;
      r_revocations;
      r_guards;
      r_why;
    }

let of_json (j : J.json) : (t, string) result =
  let* o = as_obj j in
  let* () =
    match List.assoc_opt "schema_version" o with
    | None ->
        Error
          (Printf.sprintf
             "profile has no schema_version (predates v%d); regenerate it \
              with this build"
             schema_version)
    | Some v -> (
        let* v = as_int "schema_version" v in
        if v = schema_version then Ok ()
        else
          Error
            (Printf.sprintf
               "profile schema_version %d, but this build reads v%d; \
                regenerate the file"
               v schema_version))
  in
  let* p_cycles = int_field o "cycles" in
  let* p_gc = str_field o "gc" in
  let* mmu = field o "mmu" in
  let* p_mmu =
    match mmu with
    | J.List ms ->
        map_result
          (fun m ->
            let* mo = as_obj m in
            let* u = float_field mo "mmu" in
            let* w = int_field mo "window" in
            Ok (w, u))
          ms
    | _ -> Error "key \"mmu\": expected a list"
  in
  let* pauses = field o "pauses" in
  let* po = as_obj pauses in
  let* d_count = int_field po "count" in
  let* d_max = int_field po "max" in
  let* d_p50 = int_field po "p50" in
  let* d_p90 = int_field po "p90" in
  let* d_p99 = int_field po "p99" in
  let* d_total = int_field po "total" in
  let* sites = field o "sites" in
  let* p_sites =
    match sites with
    | J.List ss -> map_result site_of_json ss
    | _ -> Error "key \"sites\": expected a list"
  in
  let* p_steps = int_field o "steps" in
  let* totals = field o "totals" in
  let* t_o = as_obj totals in
  let* t_barrier_units = int_field t_o "barrier_units" in
  let* t_del_elided_execs = int_field t_o "del_elided_execs" in
  let* t_del_paid_execs = int_field t_o "del_paid_execs" in
  let* t_elided_execs = int_field t_o "elided_execs" in
  let* t_execs = int_field t_o "execs" in
  let* t_external_elided = int_field t_o "external_elided" in
  let* t_external_paid = int_field t_o "external_paid" in
  let* t_ins_elided_execs = int_field t_o "ins_elided_execs" in
  let* t_ins_paid_execs = int_field t_o "ins_paid_execs" in
  let* t_paid_execs = int_field t_o "paid_execs" in
  let* t_revocation_events = int_field t_o "revocation_events" in
  let* t_revoked_sites = int_field t_o "revoked_sites" in
  let* p_utilization = float_field o "utilization" in
  let* p_violations = int_field o "violations" in
  let* p_workload = str_field o "workload" in
  Ok
    {
      p_workload;
      p_gc;
      p_steps;
      p_cycles;
      p_violations;
      p_sites;
      p_totals =
        {
          t_execs;
          t_elided_execs;
          t_paid_execs;
          t_del_elided_execs;
          t_del_paid_execs;
          t_ins_elided_execs;
          t_ins_paid_execs;
          t_barrier_units;
          t_external_paid;
          t_external_elided;
          t_revocation_events;
          t_revoked_sites;
        };
      p_pauses = { Stats.d_count; d_total; d_p50; d_p90; d_p99; d_max };
      p_mmu;
      p_utilization;
    }

(* ---- rendering ---------------------------------------------------------- *)

let render ?(top = 10) (p : t) : string =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "profile: %s  (gc=%s)\n" p.p_workload p.p_gc;
  pf "  steps %d  cycles %d  violations %d\n" p.p_steps p.p_cycles
    p.p_violations;
  pf "  stores %d  elided %d (%.1f%%)  paid %d  barrier units %d (%.2f/kstep)\n"
    p.p_totals.t_execs p.p_totals.t_elided_execs (elision_rate p)
    p.p_totals.t_paid_execs p.p_totals.t_barrier_units (units_per_kstep p);
  if has_halves p then
    pf
      "  deletion half: %d elided, %d paid (%.1f%%)  insertion half: %d \
       elided, %d paid (%.1f%%)\n"
      p.p_totals.t_del_elided_execs p.p_totals.t_del_paid_execs
      (del_elision_rate p) p.p_totals.t_ins_elided_execs
      p.p_totals.t_ins_paid_execs (ins_elision_rate p);
  if p.p_totals.t_external_paid + p.p_totals.t_external_elided > 0 then
    pf "  external stores: %d paid, %d elided (chaos-injected, siteless)\n"
      p.p_totals.t_external_paid p.p_totals.t_external_elided;
  if p.p_totals.t_revocation_events > 0 then
    pf "  revocations: %d events, %d sites re-barriered\n"
      p.p_totals.t_revocation_events p.p_totals.t_revoked_sites;
  let d = p.p_pauses in
  pf "  pauses %d  p50=%d p90=%d p99=%d max=%d  (total work %d)\n" d.Stats.d_count
    d.Stats.d_p50 d.Stats.d_p90 d.Stats.d_p99 d.Stats.d_max d.Stats.d_total;
  pf "  utilization %.4f\n" p.p_utilization;
  if p.p_mmu <> [] then begin
    pf "  MMU:";
    List.iter (fun (w, u) -> pf "  %d:%.3f" w u) p.p_mmu;
    pf "\n"
  end;
  let sites = hot ~top p in
  if sites <> [] then begin
    let width =
      List.fold_left (fun a s -> max a (String.length s.r_site)) 4 sites
    in
    pf "\n  %-*s %-6s %8s %8s %8s %8s %5s  guards\n" width "site" "kind"
      "execs" "elided" "paid" "units" "rvk";
    List.iter
      (fun s ->
        let marker =
          let half_data =
            s.r_del_elided_execs + s.r_del_paid_execs + s.r_ins_elided_execs
            + s.r_ins_paid_execs
            > 0
          in
          if half_data then
            match (s.r_del_elided, s.r_ins_elided) with
            | true, true -> ""
            | true, false -> "  [del-half]"
            | false, true -> "  [ins-half]"
            | false, false -> "  [kept]"
          else if s.r_elided then ""
          else "  [kept]"
        in
        pf "  %-*s %-6s %8d %8d %8d %8d %5d  %s%s\n" width s.r_site s.r_kind
          s.r_execs s.r_elided_execs s.r_paid_execs s.r_barrier_units
          s.r_revocations
          (if s.r_guards = [] then "-" else String.concat "," s.r_guards)
          marker;
        match s.r_why with
        | Some w -> pf "  %-*s   `- %s\n" width "" w
        | None -> ())
      sites
  end;
  Buffer.contents b

(* ---- baseline comparison ------------------------------------------------ *)

type diff = { df_lines : string list; df_regressions : string list }

let diff ?(max_elision_drop = 2.0) ?(max_pause_increase_pct = 25.0)
    ?(max_cost_increase_pct = 10.0) ~(baseline : t) (p : t) : diff =
  let lines = ref [] in
  let regressions = ref [] in
  let note fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let regress fmt =
    Printf.ksprintf
      (fun s ->
        lines := ("REGRESSION: " ^ s) :: !lines;
        regressions := s :: !regressions)
      fmt
  in
  let old_rate = elision_rate baseline and new_rate = elision_rate p in
  let drop = old_rate -. new_rate in
  if drop > max_elision_drop then
    regress "elision rate fell %.1f points (%.1f%% -> %.1f%%, allowed drop %.1f)"
      drop old_rate new_rate max_elision_drop
  else note "elision rate %.1f%% -> %.1f%%" old_rate new_rate;
  (* Per-half elision rates, gated independently when both profiles carry
     hybrid half data: a deletion-half drop can hide behind an unchanged
     both-halves rate and vice versa. *)
  if has_halves baseline && has_halves p then begin
    let half what old_r new_r =
      let d = old_r -. new_r in
      if d > max_elision_drop then
        regress "%s elision rate fell %.1f points (%.1f%% -> %.1f%%, \
                 allowed drop %.1f)"
          what d old_r new_r max_elision_drop
      else note "%s elision rate %.1f%% -> %.1f%%" what old_r new_r
    in
    half "deletion-half" (del_elision_rate baseline) (del_elision_rate p);
    half "insertion-half" (ins_elision_rate baseline) (ins_elision_rate p)
  end;
  let pause_check what old_v new_v =
    if new_v > old_v then begin
      let pct =
        100.0 *. float_of_int (new_v - old_v) /. float_of_int (max 1 old_v)
      in
      if pct > max_pause_increase_pct then
        regress "pause %s grew %.0f%% (%d -> %d, allowed %.0f%%)" what pct
          old_v new_v max_pause_increase_pct
      else note "pause %s %d -> %d (+%.0f%%)" what old_v new_v pct
    end
    else note "pause %s %d -> %d" what old_v new_v
  in
  pause_check "p99" baseline.p_pauses.Stats.d_p99 p.p_pauses.Stats.d_p99;
  pause_check "max" baseline.p_pauses.Stats.d_max p.p_pauses.Stats.d_max;
  let old_cost = units_per_kstep baseline and new_cost = units_per_kstep p in
  if new_cost > old_cost then begin
    let pct = 100.0 *. (new_cost -. old_cost) /. Float.max 1e-9 old_cost in
    if pct > max_cost_increase_pct then
      regress
        "barrier cost grew %.0f%% (%.2f -> %.2f units/kstep, allowed %.0f%%)"
        pct old_cost new_cost max_cost_increase_pct
    else note "barrier cost %.2f -> %.2f units/kstep" old_cost new_cost
  end
  else note "barrier cost %.2f -> %.2f units/kstep" old_cost new_cost;
  if p.p_violations > baseline.p_violations then
    regress "snapshot violations %d -> %d" baseline.p_violations p.p_violations;
  (* Newly-paying sites: elided in the baseline, kept (or revoked) now. *)
  let baseline_elided =
    List.filter_map
      (fun s -> if s.r_elided then Some s.r_site else None)
      baseline.p_sites
  in
  List.iter
    (fun s ->
      if (not s.r_elided) && List.mem s.r_site baseline_elided then
        note "site %s no longer elided (%d paid execs)" s.r_site s.r_paid_execs)
    p.p_sites;
  { df_lines = List.rev !lines; df_regressions = List.rev !regressions }

let regressed (d : diff) : bool = d.df_regressions <> []

let render_diff (d : diff) : string =
  String.concat "" (List.map (fun l -> l ^ "\n") d.df_lines)
