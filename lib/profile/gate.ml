(** The bench regression gate — see gate.mli. *)

module J = Telemetry

type thresholds = {
  max_elision_drop : float;
  max_pause_increase_pct : float;
  max_cost_increase_pct : float;
  max_mmu_drop : float;
}

let default_thresholds =
  {
    max_elision_drop = 2.0;
    max_pause_increase_pct = 25.0;
    max_cost_increase_pct = 10.0;
    max_mmu_drop = 0.05;
  }

type outcome = { o_lines : string list; o_regressions : string list }

let regressed (o : outcome) : bool = o.o_regressions <> []

let render (o : outcome) : string =
  String.concat "" (List.map (fun l -> l ^ "\n") o.o_lines)

(* How a gated metric regresses: an elimination percentage dropping by
   points, a cost/pause growing by percent, a utilization dropping in
   absolute terms. *)
type direction =
  | Points_drop of (thresholds -> float)
  | Pct_increase of (thresholds -> float)
  | Abs_drop of (thresholds -> float)
  | Max_value of float
      (* absolute ceiling on the NEW value, independent of the baseline:
         zero-tolerance metrics (oracle violations, hard stops) gate at
         0.0 — a baseline must never grandfather one in *)
  | Min_value of float
      (* absolute floor on the NEW value, independent of the baseline:
         the threaded-engine speedup must never fall below the floor,
         even if a slow run was accidentally baselined *)

(* (table, key fields, gated metrics) *)
let known_tables : (string * string list * (string * direction) list) list =
  [
    ( "table1",
      [ "benchmark" ],
      [ ("elim_pct", Points_drop (fun t -> t.max_elision_drop)) ] );
    ( "fig2_summaries",
      [ "benchmark"; "inline_limit" ],
      [
        ("elim_pct_havoc", Points_drop (fun t -> t.max_elision_drop));
        ("elim_pct_summaries", Points_drop (fun t -> t.max_elision_drop));
      ] );
    ( "table2",
      [ "mode" ],
      [ ("cost_units", Pct_increase (fun t -> t.max_cost_increase_pct)) ] );
    ( "pause",
      [ "bench"; "collector" ],
      [
        ("p99", Pct_increase (fun t -> t.max_pause_increase_pct));
        ("max", Pct_increase (fun t -> t.max_pause_increase_pct));
        ("mmu_10", Abs_drop (fun t -> t.max_mmu_drop));
      ] );
    ( "hybrid",
      [ "bench"; "collector" ],
      [
        ("del_elide_pct", Points_drop (fun t -> t.max_elision_drop));
        ("ins_elide_pct", Points_drop (fun t -> t.max_elision_drop));
        ("both_elide_pct", Points_drop (fun t -> t.max_elision_drop));
      ] );
    (* E16: pauses are gated leniently (pacing policies trade pause size
       for throughput by design), violations and hard stops at zero *)
    ( "pacing",
      [ "bench"; "collector"; "policy" ],
      [
        ("violations", Max_value 0.0);
        ("hard_stops", Max_value 0.0);
        ("elide_pct", Points_drop (fun t -> t.max_elision_drop));
        ("p99", Pct_increase (fun t -> 2.0 *. t.max_pause_increase_pct));
        ("mmu_10", Abs_drop (fun t -> 2.0 *. t.max_mmu_drop));
      ] );
    ( "pacing_chaos",
      [ "plan"; "bench"; "collector" ],
      [
        ("violations", Max_value 0.0);
        ("hard_stops", Max_value 0.0);
      ] );
    ( "pacing_summary",
      [ "bench" ],
      [
        (* only the TOTAL row carries auto_losses; auto must beat the
           best fixed trigger on at least 3 of the 6 workloads *)
        ("auto_losses", Max_value 3.0);
      ] );
    (* E17: the threaded engine's speedup over the interpreter is an
       absolute floor, not a baseline-relative delta — refreshing the
       baseline after a dispatch regression must not grandfather it in.
       Observed 3.6-5.0x across the six workloads; 3.0 leaves headroom
       for shared-runner timing noise (interp throughput swings tens of
       percent run-to-run) while still catching any real regression. *)
    ("engines", [ "benchmark" ], [ ("speedup", Min_value 3.0) ]);
    (* E18: the flight recorder must stay cheap enough to leave on — an
       absolute ceiling on the measured overhead, never baseline-relative,
       so a noisy baseline can't grandfather in a hot recorder.  The
       recorder writes nothing per-store (only per-cycle and per-safepoint
       events), so the true overhead is well under 1%; 2.0 absorbs
       shared-runner timing noise. *)
    ("flight", [ "benchmark" ], [ ("overhead_pct", Max_value 2.0) ]);
    (* E19: float counts are pure simulation state (interp engine, fixed
       cadence), so the float columns are diffed like any deterministic
       metric; the observatory's runtime cost is an absolute ceiling so
       a noisy baseline can never grandfather in an expensive census. *)
    ( "heap",
      [ "bench"; "collector" ],
      [
        ("float_units", Pct_increase (fun t -> t.max_cost_increase_pct));
        ("float_pct", Pct_increase (fun t -> t.max_cost_increase_pct));
      ] );
    ("heap_overhead", [ "benchmark" ], [ ("overhead_pct", Max_value 3.0) ]);
  ]

(* Version stamp of the BENCH table-file layout; [bench --json] writes
   it and {!diff_json} refuses to compare files written at different
   versions.  Files predating versioning carry none and only compare
   with each other. *)
let bench_schema_version = 1

let bench_version (o : (string * J.json) list) : int option =
  match List.assoc_opt "schema_version" o with
  | Some (J.Int v) -> Some v
  | Some _ | None -> None

let scalar_string = function
  | J.Str s -> s
  | J.Int i -> string_of_int i
  | J.Float f -> string_of_float f
  | J.Bool b -> string_of_bool b
  | J.Null -> "null"
  | J.List _ | J.Obj _ -> "<composite>"

let as_number = function
  | J.Int i -> Some (float_of_int i)
  | J.Float f -> Some f
  | _ -> None

let row_key (key_fields : string list) (row : (string * J.json) list) : string =
  String.concat "/"
    (List.map
       (fun k ->
         match List.assoc_opt k row with
         | Some v -> scalar_string v
         | None -> "?")
       key_fields)

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e9 then
    string_of_int (int_of_float v)
  else Printf.sprintf "%.2f" v

(* ---- BENCH table files -------------------------------------------------- *)

let diff_tables ~(th : thresholds) (old_tables : (string * J.json) list)
    (new_tables : (string * J.json) list) : outcome =
  let lines = ref [] in
  let regressions = ref [] in
  let note fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let regress fmt =
    Printf.ksprintf
      (fun s ->
        lines := ("REGRESSION: " ^ s) :: !lines;
        regressions := s :: !regressions)
      fmt
  in
  let rows_of = function
    | J.List rows ->
        List.filter_map (function J.Obj o -> Some o | _ -> None) rows
    | _ -> []
  in
  List.iter
    (fun (table, old_json) ->
      match List.find_opt (fun (t, _, _) -> t = table) known_tables with
      | None -> note "table %s: not gated, skipped" table
      | Some (_, key_fields, metrics) -> (
          match List.assoc_opt table new_tables with
          | None -> regress "table %s missing from the new file" table
          | Some new_json ->
              let old_rows = rows_of old_json and new_rows = rows_of new_json in
              let find_new key =
                List.find_opt (fun r -> row_key key_fields r = key) new_rows
              in
              List.iter
                (fun old_row ->
                  let key = row_key key_fields old_row in
                  match find_new key with
                  | None -> regress "%s/%s: missing from the new file" table key
                  | Some new_row ->
                      List.iter
                        (fun (metric, dir) ->
                          match
                            ( Option.bind (List.assoc_opt metric old_row)
                                as_number,
                              Option.bind (List.assoc_opt metric new_row)
                                as_number )
                          with
                          | Some old_v, Some new_v -> (
                              let name =
                                Printf.sprintf "%s/%s %s" table key metric
                              in
                              match dir with
                              | Points_drop limit ->
                                  let drop = old_v -. new_v in
                                  if drop > limit th then
                                    regress
                                      "%s fell %.1f points (%.1f -> %.1f, \
                                       allowed %.1f)"
                                      name drop old_v new_v (limit th)
                                  else
                                    note "%s %.1f -> %.1f ok" name old_v new_v
                              | Pct_increase limit ->
                                  let pct =
                                    100.0 *. (new_v -. old_v)
                                    /. Float.max 1e-9 old_v
                                  in
                                  if new_v > old_v && pct > limit th then
                                    regress
                                      "%s grew %.0f%% (%s -> %s, allowed \
                                       %.0f%%)"
                                      name pct (fmt_value old_v)
                                      (fmt_value new_v) (limit th)
                                  else
                                    note "%s %s -> %s ok" name
                                      (fmt_value old_v) (fmt_value new_v)
                              | Abs_drop limit ->
                                  let drop = old_v -. new_v in
                                  if drop > limit th then
                                    regress
                                      "%s dropped %.3f (%.3f -> %.3f, allowed \
                                       %.3f)"
                                      name drop old_v new_v (limit th)
                                  else
                                    note "%s %.3f -> %.3f ok" name old_v new_v
                              | Max_value ceiling ->
                                  if new_v > ceiling then
                                    regress "%s is %s (ceiling %s)" name
                                      (fmt_value new_v) (fmt_value ceiling)
                                  else note "%s %s ok" name (fmt_value new_v)
                              | Min_value floor ->
                                  if new_v < floor then
                                    regress "%s is %s (floor %s)" name
                                      (fmt_value new_v) (fmt_value floor)
                                  else note "%s %s ok" name (fmt_value new_v))
                          | _, _ ->
                              note "%s/%s %s: not numeric in both files, \
                                    skipped"
                                table key metric)
                        metrics)
                old_rows))
    old_tables;
  { o_lines = List.rev !lines; o_regressions = List.rev !regressions }

(* ---- dispatch ----------------------------------------------------------- *)

let is_profile = function
  | J.Obj o -> List.mem_assoc "sites" o
  | _ -> false

let diff_json ?(thresholds = default_thresholds) ~(old_ : J.json)
    (new_ : J.json) : (outcome, string) result =
  match (is_profile old_, is_profile new_) with
  | true, true -> (
      match (Attr.of_json old_, Attr.of_json new_) with
      | Ok baseline, Ok p ->
          let d =
            Attr.diff ~max_elision_drop:thresholds.max_elision_drop
              ~max_pause_increase_pct:thresholds.max_pause_increase_pct
              ~max_cost_increase_pct:thresholds.max_cost_increase_pct ~baseline
              p
          in
          Ok { o_lines = d.Attr.df_lines; o_regressions = d.Attr.df_regressions }
      | Error e, _ -> Error ("old profile: " ^ e)
      | _, Error e -> Error ("new profile: " ^ e))
  | true, false | false, true ->
      Error "cannot compare a profiler file with a BENCH table file"
  | false, false -> (
      match (old_, new_) with
      | J.Obj old_tables, J.Obj new_tables -> (
          let strip = List.filter (fun (k, _) -> k <> "schema_version") in
          match (bench_version old_tables, bench_version new_tables) with
          | Some a, Some b when a <> b ->
              Error
                (Printf.sprintf
                   "schema_version mismatch: old file v%d, new file v%d; \
                    regenerate the baseline"
                   a b)
          | None, Some b ->
              Error
                (Printf.sprintf
                   "old file has no schema_version but the new file is v%d; \
                    regenerate the baseline"
                   b)
          | Some a, None ->
              Error
                (Printf.sprintf
                   "old file is v%d but the new file has no schema_version" a)
          | Some _, Some _ | None, None ->
              Ok (diff_tables ~th:thresholds (strip old_tables) (strip new_tables)))
      | _ -> Error "expected top-level JSON objects")

let diff_files ?thresholds ~(old_path : string) (new_path : string) :
    (outcome, string) result =
  let read path =
    match In_channel.with_open_text path In_channel.input_all with
    | contents -> (
        match J.json_of_string contents with
        | Ok j -> Ok j
        | Error e -> Error (Printf.sprintf "%s: %s" path e))
    | exception Sys_error e -> Error e
  in
  match (read old_path, read new_path) with
  | Ok o, Ok n -> diff_json ?thresholds ~old_:o n
  | Error e, _ | _, Error e -> Error e
