(** Profiler math: pause-time percentiles and minimum mutator
    utilization (MMU) over sliding windows.

    The math itself lives in {!Jrt.Mmu} — the pacer's auto mode consumes
    it from below [lib/profile] in the dependency order — and is
    re-exported here unchanged; this module adds only the bridge from a
    run report to the MMU timeline. *)

include Jrt.Mmu

let timeline_of_summary ~(steps : int) (gc : Jrt.Runner.gc_summary option) :
    timeline =
  match gc with
  | None -> { steps; pauses = [] }
  | Some g ->
      let rec zip ats works =
        match ats, works with
        | at :: ats, work :: works -> { at; work } :: zip ats works
        | _, _ -> []
      in
      {
        steps;
        pauses =
          List.filter
            (fun p -> p.work > 0)
            (zip g.Jrt.Runner.pause_steps g.Jrt.Runner.final_pause_works);
      }
