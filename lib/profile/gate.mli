(** The bench regression gate: compare two machine-readable artifacts —
    either BENCH table files ([{"table1": [rows]}] as written by
    [bench --json]) or profiler JSON files (as written by
    [satbelim profile --json]) — and flag threshold breaches.

    Known tables and their gated metrics:
    - [table1]: [elim_pct] per benchmark (points drop);
    - [fig2_summaries]: [elim_pct_havoc] / [elim_pct_summaries] per
      (benchmark, inline limit) (points drop);
    - [table2]: [cost_units] per mode (percent increase);
    - [pause]: [p99] / [max] per (bench, collector) (percent increase)
      and [mmu_10] (absolute drop);
    - [hybrid]: [del_elide_pct] / [ins_elide_pct] / [both_elide_pct]
      per (bench, collector) (points drop) — each half of the hybrid
      barrier is gated independently;
    - [engines]: [speedup] per benchmark (absolute floor, 3.0x) — the
      threaded engine's advantage over the interpreter may not fall
      below the floor even if a slow run was accidentally baselined.

    A key present in the old file but missing from the new one is a
    regression (a benchmark or collector silently disappearing must not
    pass the gate); unknown tables are noted and skipped.  Both file
    formats carry a [schema_version]; comparing files written at
    different versions is an error, not a silent diff. *)

type thresholds = {
  max_elision_drop : float;
      (** allowed drop in any elimination percentage, in points *)
  max_pause_increase_pct : float;  (** allowed growth of p99/max pauses *)
  max_cost_increase_pct : float;  (** allowed growth of modelled cost *)
  max_mmu_drop : float;  (** allowed absolute drop of MMU\@10% *)
}

val default_thresholds : thresholds
(** 2.0 points, 25%, 10%, 0.05. *)

val bench_schema_version : int
(** Version stamp of the BENCH table-file layout; [bench --json] writes
    it and {!diff_json} refuses to compare files at different versions. *)

type outcome = {
  o_lines : string list;  (** full comparison log *)
  o_regressions : string list;  (** threshold breaches, subset *)
}

val regressed : outcome -> bool

val diff_json :
  ?thresholds:thresholds ->
  old_:Telemetry.json ->
  Telemetry.json ->
  (outcome, string) result
(** [diff_json ~old_ new_] dispatches on shape: a top-level ["sites"]
    key means profiler files (delegates to {!Attr.diff}); otherwise
    BENCH table files. *)

val diff_files :
  ?thresholds:thresholds -> old_path:string -> string -> (outcome, string) result
(** [diff_files ~old_path new_path] reads, parses and compares two
    artifact files. *)

val render : outcome -> string
