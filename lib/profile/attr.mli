(** Per-site barrier attribution: turns a run report into a profile —
    one row per static store site with dynamic execution counts, the
    elided-vs-paid split, modelled barrier cost and revocations — plus
    run-level pause percentiles and the MMU curve.

    The profile reconciles {e exactly} with the interpreter's global
    counters: per-site paid/elided sums plus the external (chaos) rows
    equal [barriers_executed]/[elided_barrier_execs], and per-site
    [barrier_units] sum to the machine total.  {!reconciles} checks
    this; the CLI runs it as a self-check on every [profile] run. *)

val schema_version : int
(** Version stamp written into every profile JSON ({!to_json}) and
    required to match on read ({!of_json}), so the regression gate never
    silently compares files with different layouts. *)

type site_row = {
  r_site : string;  (** ["Class.method\@pc"] *)
  r_kind : string;  (** ["field"], ["array"] or ["static"] *)
  r_elided : bool;  (** final elision state (after any revocation) *)
  r_execs : int;
  r_elided_execs : int;
  r_paid_execs : int;
  r_del_elided : bool;  (** hybrid: deletion half elided (after revocation) *)
  r_ins_elided : bool;  (** hybrid: insertion half elided *)
  r_del_elided_execs : int;
      (** per-half execution counts; all zero outside the hybrid flavor,
          where [elided_execs] counts both-halves-elided executions and
          [paid_execs] those where at least one half ran *)
  r_del_paid_execs : int;
  r_ins_elided_execs : int;
  r_ins_paid_execs : int;
  r_barrier_units : int;
  r_revocations : int;
  r_guards : string list;
  r_why : string option;  (** analysis provenance, when [--explain]-able *)
}

type totals = {
  t_execs : int;
  t_elided_execs : int;
  t_paid_execs : int;
  t_del_elided_execs : int;  (** per-half sums; zero outside hybrid runs *)
  t_del_paid_execs : int;
  t_ins_elided_execs : int;
  t_ins_paid_execs : int;
  t_barrier_units : int;
  t_external_paid : int;  (** chaos stores that ran a barrier (siteless) *)
  t_external_elided : int;  (** chaos stores through guarded elisions *)
  t_revocation_events : int;
  t_revoked_sites : int;
}

type t = {
  p_workload : string;
  p_gc : string;
  p_steps : int;
  p_cycles : int;
  p_violations : int;
  p_sites : site_row list;  (** sorted by site id *)
  p_totals : totals;
  p_pauses : Stats.dist;
  p_mmu : (int * float) list;  (** (window, mmu), ascending windows *)
  p_utilization : float;
}

val of_report :
  workload:string ->
  gc:string ->
  ?explain:Jrt.Interp.explain_policy ->
  Jrt.Runner.report ->
  t

val elision_rate : t -> float
(** Dynamic elision rate in percent over {e all} reference stores,
    external ones included; 0 when nothing executed. *)

val units_per_kstep : t -> float
(** Modelled barrier cost per 1000 mutator instructions. *)

val has_halves : t -> bool
(** Does the profile carry hybrid per-half execution data? *)

val del_elision_rate : t -> float
(** Deletion-half dynamic elision rate in percent; 0 outside hybrid. *)

val ins_elision_rate : t -> float
(** Insertion-half dynamic elision rate in percent; 0 outside hybrid. *)

val reconciles : t -> Jrt.Runner.report -> (unit, string) result
(** Check the profile's sums against the interpreter counters; the
    error names the first mismatching quantity. *)

val hot : ?top:int -> t -> site_row list
(** Top-[top] (default 10) sites by modelled cost; ties broken by paid
    executions (descending) then site id (ascending) so the order is
    deterministic. *)

val to_json : t -> Telemetry.json
(** Deterministic: object keys emitted in sorted order, sites sorted by
    id, so equal profiles serialize byte-identically. *)

val of_json : Telemetry.json -> (t, string) result

val render : ?top:int -> t -> string
(** Human-readable report: run header, pause percentiles, MMU curve and
    the hot-site table, with provenance inlined under each of the top
    offenders that has one. *)

(** {2 Baseline comparison} *)

type diff = {
  df_lines : string list;  (** full comparison, one metric per line *)
  df_regressions : string list;  (** threshold breaches, subset of above *)
}

val diff :
  ?max_elision_drop:float ->
  ?max_pause_increase_pct:float ->
  ?max_cost_increase_pct:float ->
  baseline:t ->
  t ->
  diff
(** Compare against a baseline profile.  Regressions: dynamic elision
    rate dropping more than [max_elision_drop] percentage points
    (default 2.0), pause p99 or max growing more than
    [max_pause_increase_pct] percent (default 25.0), or modelled cost
    per kilostep growing more than [max_cost_increase_pct] percent
    (default 10.0). *)

val regressed : diff -> bool
val render_diff : diff -> string
