(** Always-on flight recorder: a bounded ring buffer of compact GC/runtime
    events, cheap enough to stay enabled under the threaded engine.

    Each record is five ints (kind, mutator step, three kind-specific
    payload slots) written into pre-allocated parallel arrays — no
    allocation on the hot path.  Strings (site ids, collector names,
    assumption names, chaos fault kinds) are interned once on cold paths
    and referenced by id from the payload slots.

    The recorder is process-global, like the telemetry registry: the
    runner resets it at run start ({!begin_run}), installs a step source
    and per-site snapshot source, and polls the anomaly detectors at
    safepoints.  A dump ({!dump_json}) is fully deterministic — events
    carry mutator steps, never wall-clock — so `satbelim timeline` output
    is byte-stable for a fixed seed.

    Auto-capture: when armed (CLI/bench entry points only, never under
    `dune runtest`), the first oracle violation, hard-limit abort,
    anomaly-detector firing or bench-gate failure dumps the ring to a
    stable path ([FLIGHT_dump.json]); {!captured} reports where so the
    CLI can print it. *)

(** {1 Event kinds} *)

type kind =
  | Mark_start  (** a=collector, b=cycle index (0-based), c=snapshot/root size *)
  | Mark_end  (** a=collector, b=cycle index, c=violations *)
  | Pause  (** a=final pause work *)
  | Assist  (** one degraded-mode allocation assist *)
  | Trigger  (** a=live units, b=trigger units, c=1 if degraded *)
  | Soft_enter  (** a=live units, b=soft limit *)
  | Soft_exit  (** a=live units, b=soft limit *)
  | Retune  (** a=goal*1000, b=p99 pause work, c=mmu*1000 *)
  | Hard_stop  (** a=live units *)
  | Revoke_request  (** a=assumption *)
  | Revoke_apply  (** a=#assumptions, b=repair-set size *)
  | Revoke_site  (** a=site, b=guard provenance, c=half (0 full / 1 del / 2 ins) *)
  | Respecialize  (** a=site, b=barrier epoch (threaded engine only) *)
  | Swap_degraded  (** a=reason *)
  | Chaos_fault  (** a=fault kind, b=fault payload (instr/alloc/count) *)
  | Anomaly  (** a=detector, b=observed count *)
  | Census  (** a=cycle index, b=live units, c=floating units *)

val kind_name : kind -> string
(** Stable dotted name ("mark.start", "revoke.site", ...) used in dumps. *)

type ev = { k : kind; step : int; a : int; b : int; c : int }

(** {1 Recording} *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Master switch, on by default; the overhead experiment (E18) A/Bs it. *)

val intern : string -> int
(** Intern a string, returning its stable id.  The table persists across
    {!begin_run} so ids are comparable between runs in one process. *)

val str_of : int -> string
(** Inverse of {!intern}; ["?<id>"] for an unknown id. *)

val record : kind -> a:int -> b:int -> c:int -> unit
(** Append one event (the step comes from the installed step source).
    Constant-time, allocation-free; a no-op while disabled. *)

val set_step_source : (unit -> int) -> unit
(** The mutator-step clock, installed by the runner
    ([fun () -> m.instr_count]). *)

val set_meta : (string * string) list -> unit
(** Run context stamped into dumps (collector, engine, entry, seed, ...). *)

type site_state = {
  fs_site : string;
  fs_kind : string;  (** putfield / aastore / putstatic *)
  fs_state : string;  (** elided / kept / revoked / del-elided / ... *)
  fs_execs : int;
  fs_paid : int;
  fs_elided_execs : int;
  fs_revocations : int;
  fs_guards : string list;
}

val set_sites_source : (unit -> site_state list) -> unit
(** Called at dump time to snapshot per-site elision state; the runner
    installs a closure over the live machine. *)

val set_census_source : (unit -> (int * int * int) option) -> unit
(** Called at dump time to snapshot the heap census totals
    [(gc cycle, live objects, live units)].  Installed only when a heap
    observer is armed — so a hard-limit abort mid-cycle still flushes
    the in-flight cycle's census into the dump — and reset by
    {!begin_run}; ordinary dumps carry nothing and stay byte-identical
    to earlier releases. *)

val begin_run : unit -> unit
(** Reset the ring, detector state and run metadata for a fresh run.
    Keeps the intern table, the enabled flag and the capture arming. *)

val events : unit -> ev list
(** Surviving ring contents, oldest first. *)

val recorded : unit -> int
(** Total events recorded since {!begin_run} (>= length of {!events}
    once the ring has wrapped). *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Reallocate the ring (tests only); implies {!begin_run}. *)

(** {1 Anomaly detectors} *)

val poll : unit -> unit
(** Scan events recorded since the last poll and update the detectors:
    revocation storm, pacing oscillation, assist spiral, degradation
    cascade.  Each fires at most once per run, records an {!Anomaly}
    event and triggers auto-capture.  Called by the runner at
    safepoints; cheap when nothing new was recorded. *)

val anomalies : unit -> (string * int) list
(** Detectors fired this run, as [(name, step)], oldest first. *)

(** {1 Auto-capture} *)

val arm_capture : ?dir:string -> unit -> unit
(** Arm auto-capture (CLI/bench entry points call this; tests never do,
    so negative soundness runs don't spray dump files).  [dir] defaults
    to the current directory. *)

val disarm_capture : unit -> unit

val capture : reason:string -> string option
(** Dump the ring to [<dir>/FLIGHT_dump.json] if armed and nothing was
    captured yet this process; returns the path when a dump was written.
    First capture wins — later triggers keep the earlier evidence. *)

val captured : unit -> (string * string) option
(** [(path, reason)] of the capture performed this process, if any. *)

(** {1 Dumps} *)

val dump_json : reason:string -> Telemetry.json
(** Deterministic dump of the ring: run metadata, intern table, events,
    per-site snapshot (sorted by site id) and fired anomalies. *)

val dump_to_file : reason:string -> string -> unit

type dump = {
  d_reason : string;
  d_step : int;  (** step source at capture time *)
  d_capacity : int;
  d_recorded : int;
  d_meta : (string * string) list;
  d_events : ev list;
  d_sites : site_state list;
  d_anomalies : (string * int) list;
  d_strings : string array;  (** payload-slot decoding table *)
  d_pending_census : (int * int * int) option;
      (** [(cycle, live, live_units)] heap state at capture time, present
          only in dumps written under a heap observer *)
}

val parse_dump : Telemetry.json -> (dump, string) result

(** {1 Timeline reconstruction} *)

type cycle = {
  cy_n : int;  (** 0-based, as recorded by the collector *)
  cy_collector : string;
  cy_start : int;  (** mutator step of mark start *)
  cy_end : int option;  (** None = still marking at capture *)
  cy_pause : int option;  (** final pause work *)
  cy_violations : int;
  cy_assists : int;
  cy_revoked_sites : int;
  cy_faults : int;
  cy_soft_enters : int;
  cy_retunes : int;
  cy_census : (int * int) option;
      (** (live units, floating units) from the cycle-end heap census,
          when a heap observer recorded one *)
}

type site_life = {
  sl_site : string;
  sl_kind : string;
  sl_state : string;
  sl_history : string;  (** "respec@64 -> revoked@2980 (single-mutator)" *)
}

type timeline = {
  tl_cycles : cycle list;
  tl_sites : site_life list;  (** sorted by site id *)
  tl_anomalies : (string * int) list;
  tl_hard_stop : int option;  (** step of the hard-limit abort *)
  tl_dropped : int;  (** events lost to ring wrap-around *)
}

val timeline_of : dump -> timeline

val render_timeline : dump -> string
(** Deterministic ASCII rendering (header, per-cycle table, per-site
    lifecycle table, anomalies) — the `satbelim timeline` output and the
    golden-test surface. *)

val chrome_events_of_dump : dump -> Telemetry.event list
(** Bridge to {!Telemetry.chrome_of_events}: one trace event per ring
    record, timestamped on the mutator-step axis (1 step = 1 "us"). *)
