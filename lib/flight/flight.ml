(* Always-on flight recorder.  See flight.mli for the design contract.

   Layout: five pre-allocated parallel int arrays indexed by
   [total mod capacity] — a record is five stores and two increments,
   no allocation, so the recorder stays enabled under the threaded
   engine (<2% on every workload, gated by BENCH_flight.json).  Strings
   cross into the ring only as intern-table ids, produced on cold paths
   (revocation, respecialization, fault injection). *)

type kind =
  | Mark_start
  | Mark_end
  | Pause
  | Assist
  | Trigger
  | Soft_enter
  | Soft_exit
  | Retune
  | Hard_stop
  | Revoke_request
  | Revoke_apply
  | Revoke_site
  | Respecialize
  | Swap_degraded
  | Chaos_fault
  | Anomaly
  | Census

let kinds =
  [|
    Mark_start; Mark_end; Pause; Assist; Trigger; Soft_enter; Soft_exit;
    Retune; Hard_stop; Revoke_request; Revoke_apply; Revoke_site;
    Respecialize; Swap_degraded; Chaos_fault; Anomaly; Census;
  |]

let int_of_kind = function
  | Mark_start -> 0
  | Mark_end -> 1
  | Pause -> 2
  | Assist -> 3
  | Trigger -> 4
  | Soft_enter -> 5
  | Soft_exit -> 6
  | Retune -> 7
  | Hard_stop -> 8
  | Revoke_request -> 9
  | Revoke_apply -> 10
  | Revoke_site -> 11
  | Respecialize -> 12
  | Swap_degraded -> 13
  | Chaos_fault -> 14
  | Anomaly -> 15
  | Census -> 16

let kind_name = function
  | Mark_start -> "mark.start"
  | Mark_end -> "mark.end"
  | Pause -> "gc.pause"
  | Assist -> "gc.assist"
  | Trigger -> "pacer.trigger"
  | Soft_enter -> "pacer.soft.enter"
  | Soft_exit -> "pacer.soft.exit"
  | Retune -> "pacer.retune"
  | Hard_stop -> "pacer.hard_stop"
  | Revoke_request -> "revoke.request"
  | Revoke_apply -> "revoke.apply"
  | Revoke_site -> "revoke.site"
  | Respecialize -> "engine.respecialize"
  | Swap_degraded -> "runtime.degraded"
  | Chaos_fault -> "chaos.fault"
  | Anomaly -> "anomaly"
  | Census -> "heap.census"

let kind_of_name (s : string) : kind option =
  let rec go i =
    if i >= Array.length kinds then None
    else if kind_name kinds.(i) = s then Some kinds.(i)
    else go (i + 1)
  in
  go 0

type ev = { k : kind; step : int; a : int; b : int; c : int }

(* ---- interning --------------------------------------------------------- *)

let intern_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let intern_rev : string list ref = ref []  (* newest first *)
let intern_n = ref 0

let intern (s : string) : int =
  match Hashtbl.find_opt intern_tbl s with
  | Some i -> i
  | None ->
      let i = !intern_n in
      incr intern_n;
      Hashtbl.replace intern_tbl s i;
      intern_rev := s :: !intern_rev;
      i

let intern_array () : string array =
  let a = Array.make !intern_n "" in
  List.iteri (fun j s -> a.(!intern_n - 1 - j) <- s) !intern_rev;
  a

let str_of (i : int) : string =
  if i >= 0 && i < !intern_n then List.nth !intern_rev (!intern_n - 1 - i)
  else Printf.sprintf "?%d" i

(* ---- the ring ---------------------------------------------------------- *)

let default_capacity = 4096
let cap = ref default_capacity
let r_kind = ref (Array.make default_capacity 0)
let r_step = ref (Array.make default_capacity 0)
let r_a = ref (Array.make default_capacity 0)
let r_b = ref (Array.make default_capacity 0)
let r_c = ref (Array.make default_capacity 0)
let total = ref 0
let on = ref true
let step_source : (unit -> int) ref = ref (fun () -> 0)
let meta : (string * string) list ref = ref []

type site_state = {
  fs_site : string;
  fs_kind : string;
  fs_state : string;
  fs_execs : int;
  fs_paid : int;
  fs_elided_execs : int;
  fs_revocations : int;
  fs_guards : string list;
}

let sites_source : (unit -> site_state list) ref = ref (fun () -> [])

(* Heap-census snapshot at dump time (cycle, live objects, live units).
   Installed only when a heap observer is armed, so ordinary dumps stay
   byte-identical to earlier releases.  Exists for the hard-limit abort
   path: the in-flight cycle's census has not been emitted yet when the
   ring is captured, so the dump flushes the heap state directly. *)
let census_source : (unit -> (int * int * int) option) ref =
  ref (fun () -> None)

let enabled () = !on
let set_enabled b = on := b
let set_step_source f = step_source := f
let set_meta m = meta := m
let set_sites_source f = sites_source := f
let set_census_source f = census_source := f
let recorded () = !total
let capacity () = !cap

let record (k : kind) ~(a : int) ~(b : int) ~(c : int) : unit =
  if !on then begin
    let i = !total mod !cap in
    !r_kind.(i) <- int_of_kind k;
    !r_step.(i) <- !step_source ();
    !r_a.(i) <- a;
    !r_b.(i) <- b;
    !r_c.(i) <- c;
    incr total
  end

let nth_ev (n : int) : ev =
  let i = n mod !cap in
  {
    k = kinds.(!r_kind.(i));
    step = !r_step.(i);
    a = !r_a.(i);
    b = !r_b.(i);
    c = !r_c.(i);
  }

let first_live () = max 0 (!total - !cap)

let events () : ev list =
  let rec go n acc = if n < first_live () then acc else go (n - 1) (nth_ev n :: acc) in
  go (!total - 1) []

(* ---- anomaly detectors ------------------------------------------------- *)

(* Windowed counters over the event stream, evaluated at safepoint polls.
   Each keeps the steps of its recent relevant events (pruned against the
   window) and fires at most once per run: a firing records an [Anomaly]
   event and triggers auto-capture, and a stuck detector re-firing every
   safepoint would bury the evidence it exists to preserve. *)

type det = {
  d_name : string;
  d_id : int;  (* interned name *)
  d_window : int;  (* steps *)
  d_threshold : int;
  mutable d_recent : int list;  (* steps, newest first *)
  mutable d_fired : bool;
}

let mk_det name ~window ~threshold =
  {
    d_name = name;
    d_id = intern name;
    d_window = window;
    d_threshold = threshold;
    d_recent = [];
    d_fired = false;
  }

let det_revoke_storm = mk_det "revocation-storm" ~window:5000 ~threshold:6
let det_oscillation = mk_det "pacing-oscillation" ~window:20000 ~threshold:4
let det_assist_spiral = mk_det "assist-spiral" ~window:5000 ~threshold:50

(* degradation cascade: three distinct degradation signals — pacer soft
   pressure, swap degradation / runtime degraded, and a revocation —
   landing inside one window *)
let det_cascade = mk_det "degradation-cascade" ~window:10000 ~threshold:3
let cascade_soft = ref (-1)
let cascade_degraded = ref (-1)
let cascade_revoke = ref (-1)

let detectors = [ det_revoke_storm; det_oscillation; det_assist_spiral; det_cascade ]
let fired : (string * int) list ref = ref []  (* newest first *)
let polled = ref 0

(* capture is defined below; detectors reach it through this knot *)
let capture_hook : (reason:string -> unit) ref = ref (fun ~reason:_ -> ())

let det_note (d : det) (step : int) : unit =
  if not d.d_fired then begin
    d.d_recent <- step :: List.filter (fun s -> step - s < d.d_window) d.d_recent;
    if List.length d.d_recent >= d.d_threshold then begin
      d.d_fired <- true;
      fired := (d.d_name, step) :: !fired;
      record Anomaly ~a:d.d_id ~b:(List.length d.d_recent) ~c:0;
      !capture_hook ~reason:("anomaly:" ^ d.d_name)
    end
  end

let det_cascade_note (slot : int ref) (step : int) : unit =
  if not det_cascade.d_fired then begin
    slot := step;
    let live s = s >= 0 && step - s < det_cascade.d_window in
    if live !cascade_soft && live !cascade_degraded && live !cascade_revoke
    then begin
      det_cascade.d_fired <- true;
      fired := (det_cascade.d_name, step) :: !fired;
      record Anomaly ~a:det_cascade.d_id ~b:3 ~c:0;
      !capture_hook ~reason:("anomaly:" ^ det_cascade.d_name)
    end
  end

let poll () : unit =
  if !polled < !total then begin
    let from = max !polled (first_live ()) in
    for n = from to !total - 1 do
      let i = n mod !cap in
      let step = !r_step.(i) in
      match kinds.(!r_kind.(i)) with
      | Revoke_site ->
          det_note det_revoke_storm step;
          det_cascade_note cascade_revoke step
      | Soft_enter ->
          det_note det_oscillation step;
          det_cascade_note cascade_soft step
      | Assist -> det_note det_assist_spiral step
      | Swap_degraded -> det_cascade_note cascade_degraded step
      | _ -> ()
    done;
    polled := !total
  end

let anomalies () = List.rev !fired

(* ---- run lifecycle ----------------------------------------------------- *)

let begin_run () : unit =
  total := 0;
  polled := 0;
  meta := [];
  fired := [];
  List.iter
    (fun d ->
      d.d_recent <- [];
      d.d_fired <- false)
    detectors;
  cascade_soft := -1;
  cascade_degraded := -1;
  cascade_revoke := -1;
  step_source := (fun () -> 0);
  sites_source := (fun () -> []);
  census_source := (fun () -> None)

let set_capacity (n : int) : unit =
  let n = max 16 n in
  cap := n;
  r_kind := Array.make n 0;
  r_step := Array.make n 0;
  r_a := Array.make n 0;
  r_b := Array.make n 0;
  r_c := Array.make n 0;
  begin_run ()

(* ---- dumps ------------------------------------------------------------- *)

module J = Telemetry

let site_to_json (s : site_state) : J.json =
  J.Obj
    [
      ("site", J.Str s.fs_site);
      ("kind", J.Str s.fs_kind);
      ("state", J.Str s.fs_state);
      ("execs", J.Int s.fs_execs);
      ("paid", J.Int s.fs_paid);
      ("elided", J.Int s.fs_elided_execs);
      ("revocations", J.Int s.fs_revocations);
      ("guards", J.List (List.map (fun g -> J.Str g) s.fs_guards));
    ]

let dump_json ~(reason : string) : J.json =
  let evs = events () in
  let sites =
    List.sort (fun a b -> compare a.fs_site b.fs_site) (!sites_source ())
  in
  J.Obj
    [
      ( "flight",
        J.Obj
          ([
            ("version", J.Int 1);
            ("reason", J.Str reason);
            ("at_step", J.Int (!step_source ()));
            ("capacity", J.Int !cap);
            ("recorded", J.Int !total);
            ( "meta",
              J.Obj (List.map (fun (k, v) -> (k, J.Str v)) !meta) );
            ( "strings",
              J.List
                (Array.to_list (Array.map (fun s -> J.Str s) (intern_array ())))
            );
            ( "events",
              J.List
                (List.map
                   (fun e ->
                     J.List
                       [
                         J.Str (kind_name e.k);
                         J.Int e.step;
                         J.Int e.a;
                         J.Int e.b;
                         J.Int e.c;
                       ])
                   evs) );
            ("sites", J.List (List.map site_to_json sites));
            ( "anomalies",
              J.List
                (List.map
                   (fun (name, step) ->
                     J.Obj [ ("detector", J.Str name); ("at_step", J.Int step) ])
                   (anomalies ())) );
          ]
          @
          (* appended, and only when a heap observer is armed, so dumps
             without one stay byte-identical to earlier releases *)
          match !census_source () with
          | Some (cycle, live, units) ->
              [
                ( "pending_census",
                  J.Obj
                    [
                      ("cycle", J.Int cycle);
                      ("live", J.Int live);
                      ("live_units", J.Int units);
                    ] );
              ]
          | None -> []) );
    ]

let dump_to_file ~reason path =
  J.write_file path (J.json_to_string_pretty (dump_json ~reason))

(* ---- auto-capture ------------------------------------------------------ *)

let armed_dir : string option ref = ref None
let captured_at : (string * string) option ref = ref None

let arm_capture ?(dir = ".") () = armed_dir := Some dir
let disarm_capture () = armed_dir := None

let capture ~(reason : string) : string option =
  match (!armed_dir, !captured_at) with
  | Some dir, None ->
      let path = Filename.concat dir "FLIGHT_dump.json" in
      dump_to_file ~reason path;
      captured_at := Some (path, reason);
      Some path
  | _ -> None

let captured () = !captured_at
let () = capture_hook := fun ~reason -> ignore (capture ~reason)

(* ---- parsing ----------------------------------------------------------- *)

type dump = {
  d_reason : string;
  d_step : int;
  d_capacity : int;
  d_recorded : int;
  d_meta : (string * string) list;
  d_events : ev list;
  d_sites : site_state list;
  d_anomalies : (string * int) list;
  d_strings : string array;
  d_pending_census : (int * int * int) option;
}

let parse_dump (j : J.json) : (dump, string) result =
  let ( let* ) = Result.bind in
  let field name = function
    | J.Obj kvs -> (
        match List.assoc_opt name kvs with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing field %S" name))
    | _ -> Error "expected an object"
  in
  let as_int = function J.Int n -> Ok n | _ -> Error "expected an int" in
  let as_str = function J.Str s -> Ok s | _ -> Error "expected a string" in
  let as_list = function J.List l -> Ok l | _ -> Error "expected a list" in
  let* body = field "flight" j in
  let* version = Result.bind (field "version" body) as_int in
  if version <> 1 then Error (Printf.sprintf "unsupported dump version %d" version)
  else
    let* reason = Result.bind (field "reason" body) as_str in
    let* step = Result.bind (field "at_step" body) as_int in
    let* capacity = Result.bind (field "capacity" body) as_int in
    let* recorded = Result.bind (field "recorded" body) as_int in
    let* meta =
      match field "meta" body with
      | Ok (J.Obj kvs) ->
          List.fold_left
            (fun acc (k, v) ->
              let* acc = acc in
              let* s = as_str v in
              Ok ((k, s) :: acc))
            (Ok []) kvs
          |> Result.map List.rev
      | Ok _ -> Error "meta: expected an object"
      | Error e -> Error e
    in
    let* strings =
      let* l = Result.bind (field "strings" body) as_list in
      let* ss =
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            let* s = as_str v in
            Ok (s :: acc))
          (Ok []) l
      in
      Ok (Array.of_list (List.rev ss))
    in
    let* events =
      let* l = Result.bind (field "events" body) as_list in
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          match v with
          | J.List [ J.Str kname; J.Int step; J.Int a; J.Int b; J.Int c ] -> (
              match kind_of_name kname with
              | Some k -> Ok ({ k; step; a; b; c } :: acc)
              | None -> Error (Printf.sprintf "unknown event kind %S" kname))
          | _ -> Error "event: expected [kind, step, a, b, c]")
        (Ok []) l
      |> Result.map List.rev
    in
    let* sites =
      let* l = Result.bind (field "sites" body) as_list in
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          let* fs_site = Result.bind (field "site" v) as_str in
          let* fs_kind = Result.bind (field "kind" v) as_str in
          let* fs_state = Result.bind (field "state" v) as_str in
          let* fs_execs = Result.bind (field "execs" v) as_int in
          let* fs_paid = Result.bind (field "paid" v) as_int in
          let* fs_elided_execs = Result.bind (field "elided" v) as_int in
          let* fs_revocations = Result.bind (field "revocations" v) as_int in
          let* fs_guards =
            let* gl = Result.bind (field "guards" v) as_list in
            List.fold_left
              (fun acc g ->
                let* acc = acc in
                let* s = as_str g in
                Ok (s :: acc))
              (Ok []) gl
            |> Result.map List.rev
          in
          Ok
            ({
               fs_site;
               fs_kind;
               fs_state;
               fs_execs;
               fs_paid;
               fs_elided_execs;
               fs_revocations;
               fs_guards;
             }
            :: acc))
        (Ok []) l
      |> Result.map List.rev
    in
    let* anomalies =
      let* l = Result.bind (field "anomalies" body) as_list in
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          let* name = Result.bind (field "detector" v) as_str in
          let* at = Result.bind (field "at_step" v) as_int in
          Ok ((name, at) :: acc))
        (Ok []) l
      |> Result.map List.rev
    in
    (* optional: only dumps written under a heap observer carry it *)
    let* pending_census =
      match body with
      | J.Obj kvs -> (
          match List.assoc_opt "pending_census" kvs with
          | None -> Ok None
          | Some pc ->
              let* cycle = Result.bind (field "cycle" pc) as_int in
              let* live = Result.bind (field "live" pc) as_int in
              let* units = Result.bind (field "live_units" pc) as_int in
              Ok (Some (cycle, live, units)))
      | _ -> Ok None
    in
    Ok
      {
        d_reason = reason;
        d_step = step;
        d_capacity = capacity;
        d_recorded = recorded;
        d_meta = meta;
        d_events = events;
        d_sites = sites;
        d_anomalies = anomalies;
        d_strings = strings;
        d_pending_census = pending_census;
      }

(* ---- timeline reconstruction ------------------------------------------- *)

type cycle = {
  cy_n : int;
  cy_collector : string;
  cy_start : int;
  cy_end : int option;
  cy_pause : int option;
  cy_violations : int;
  cy_assists : int;
  cy_revoked_sites : int;
  cy_faults : int;
  cy_soft_enters : int;
  cy_retunes : int;
  cy_census : (int * int) option;
      (** (live units, floating units) from the cycle-end heap census,
          when a heap observer recorded one *)
}

type site_life = {
  sl_site : string;
  sl_kind : string;
  sl_state : string;
  sl_history : string;
}

type timeline = {
  tl_cycles : cycle list;
  tl_sites : site_life list;
  tl_anomalies : (string * int) list;
  tl_hard_stop : int option;
  tl_dropped : int;
}

let dstr (d : dump) (i : int) : string =
  if i >= 0 && i < Array.length d.d_strings then d.d_strings.(i)
  else Printf.sprintf "?%d" i

let timeline_of (d : dump) : timeline =
  (* Fold the event stream into cycles.  Idle-period events (assists,
     revocations, faults between cycles) are attributed to the cycle
     that follows them — they are typically what provokes it. *)
  let cycles = ref [] in
  let current = ref None in
  let assists = ref 0 in
  let revoked = ref 0 in
  let faults = ref 0 in
  let soft = ref 0 in
  let retunes = ref 0 in
  let hard = ref None in
  let take r =
    let v = !r in
    r := 0;
    v
  in
  List.iter
    (fun e ->
      match e.k with
      | Mark_start ->
          current :=
            Some
              {
                cy_n = e.b;
                cy_collector = dstr d e.a;
                cy_start = e.step;
                cy_end = None;
                cy_pause = None;
                cy_violations = 0;
                cy_assists = take assists;
                cy_revoked_sites = take revoked;
                cy_faults = take faults;
                cy_soft_enters = take soft;
                cy_retunes = take retunes;
                cy_census = None;
              }
      | Mark_end ->
          (match !current with
          | Some cy ->
              cycles :=
                {
                  cy with
                  cy_end = Some e.step;
                  cy_violations = e.c;
                  cy_assists = cy.cy_assists + take assists;
                  cy_revoked_sites = cy.cy_revoked_sites + take revoked;
                  cy_faults = cy.cy_faults + take faults;
                  cy_soft_enters = cy.cy_soft_enters + take soft;
                  cy_retunes = cy.cy_retunes + take retunes;
                }
                :: !cycles
          | None ->
              (* start fell off the ring: synthesize a truncated cycle *)
              cycles :=
                {
                  cy_n = e.b;
                  cy_collector = dstr d e.a;
                  cy_start = -1;
                  cy_end = Some e.step;
                  cy_pause = None;
                  cy_violations = e.c;
                  cy_assists = take assists;
                  cy_revoked_sites = take revoked;
                  cy_faults = take faults;
                  cy_soft_enters = take soft;
                  cy_retunes = take retunes;
                  cy_census = None;
                }
                :: !cycles);
          current := None
      | Pause -> (
          (* recorded just after the collector's mark.end *)
          match !cycles with
          | cy :: rest when cy.cy_pause = None ->
              cycles := { cy with cy_pause = Some e.a } :: rest
          | _ -> ())
      | Census -> (
          (* recorded by the heap observer right after the pause *)
          match !cycles with
          | cy :: rest when cy.cy_census = None ->
              cycles := { cy with cy_census = Some (e.b, e.c) } :: rest
          | _ -> ())
      | Assist -> incr assists
      | Revoke_site -> incr revoked
      | Chaos_fault -> incr faults
      | Soft_enter -> incr soft
      | Retune -> incr retunes
      | Hard_stop -> hard := Some e.step
      | Trigger | Soft_exit | Revoke_request | Revoke_apply | Respecialize
      | Swap_degraded | Anomaly ->
          ())
    d.d_events;
  (* a cycle still marking at capture time *)
  let open_cycle =
    match !current with
    | Some cy ->
        [
          {
            cy with
            cy_assists = cy.cy_assists + !assists;
            cy_revoked_sites = cy.cy_revoked_sites + !revoked;
            cy_faults = cy.cy_faults + !faults;
            cy_soft_enters = cy.cy_soft_enters + !soft;
            cy_retunes = cy.cy_retunes + !retunes;
          };
        ]
    | None -> []
  in
  (* per-site history: revocations (with guard provenance) and
     respecializations, in stream order *)
  let hist : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let push site entry =
    let prev = Option.value (Hashtbl.find_opt hist site) ~default:[] in
    Hashtbl.replace hist site (entry :: prev)
  in
  List.iter
    (fun e ->
      match e.k with
      | Revoke_site ->
          let half =
            match e.c with 1 -> " del-half" | 2 -> " ins-half" | _ -> ""
          in
          push (dstr d e.a)
            (Printf.sprintf "revoked@%d (%s%s)" e.step (dstr d e.b) half)
      | Respecialize ->
          push (dstr d e.a) (Printf.sprintf "respec@%d e%d" e.step e.b)
      | _ -> ())
    d.d_events;
  let sites =
    List.map
      (fun s ->
        {
          sl_site = s.fs_site;
          sl_kind = s.fs_kind;
          sl_state = s.fs_state;
          sl_history =
            (match Hashtbl.find_opt hist s.fs_site with
            | Some entries -> String.concat " -> " (List.rev entries)
            | None -> "-");
        })
      d.d_sites
  in
  {
    tl_cycles = List.rev !cycles @ open_cycle;
    tl_sites = sites;
    tl_anomalies = d.d_anomalies;
    tl_hard_stop = !hard;
    tl_dropped = max 0 (d.d_recorded - d.d_capacity);
  }

(* ---- rendering --------------------------------------------------------- *)

(* fixed-format aligned table: header + rows, two-space gutters, columns
   sized to content, left-aligned (numbers are small here and alignment
   stability matters more than typography — this is a golden surface) *)
let render_table (header : string list) (rows : string list list) : string =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 256 in
  let line r =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < List.length r - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      r;
    Buffer.add_char buf '\n'
  in
  line header;
  line
    (List.mapi
       (fun i _ -> String.make widths.(i) '-')
       (List.init ncols (fun i -> i)));
  List.iter line rows;
  Buffer.contents buf

let cycle_notes (cy : cycle) : string =
  let notes = ref [] in
  if cy.cy_start < 0 then notes := "truncated" :: !notes;
  if cy.cy_end = None then notes := "in-flight" :: !notes;
  if cy.cy_soft_enters > 0 then notes := "soft-pressure" :: !notes;
  if cy.cy_violations > 0 then notes := "VIOLATIONS" :: !notes;
  String.concat ";" (List.rev !notes)

let render_timeline (d : dump) : string =
  let tl = timeline_of d in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "flight recorder: reason=%s, captured at step %d\n"
       d.d_reason d.d_step);
  Buffer.add_string buf
    (Printf.sprintf "events: %d recorded, %d in ring (capacity %d%s)\n"
       d.d_recorded
       (List.length d.d_events)
       d.d_capacity
       (if tl.tl_dropped > 0 then
          Printf.sprintf ", %d oldest dropped" tl.tl_dropped
        else ""));
  if d.d_meta <> [] then
    Buffer.add_string buf
      (String.concat " "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) d.d_meta)
      ^ "\n");
  Buffer.add_string buf "\nGC cycles:\n";
  (match tl.tl_cycles with
  | [] -> Buffer.add_string buf "  (no marking cycle in the recorded window)\n"
  | cycles ->
      (* census columns appear only when a heap observer recorded census
         events, so timelines of ordinary dumps stay byte-identical *)
      let with_census = List.exists (fun cy -> cy.cy_census <> None) cycles in
      let census_cells cy =
        if not with_census then []
        else
          match cy.cy_census with
          | None -> [ "-"; "-" ]
          | Some (live, fl) ->
              [
                string_of_int live;
                (if live = 0 then "0.0"
                 else
                   Printf.sprintf "%.1f"
                     (100.0 *. float_of_int fl /. float_of_int live));
              ]
      in
      Buffer.add_string buf
        (render_table
           ([ "cycle"; "collector"; "start"; "end"; "pause"; "assists";
              "revoked"; "faults" ]
           @ (if with_census then [ "live_u"; "float%" ] else [])
           @ [ "notes" ])
           (List.map
              (fun cy ->
                [
                  string_of_int cy.cy_n;
                  cy.cy_collector;
                  (if cy.cy_start < 0 then "?" else string_of_int cy.cy_start);
                  (match cy.cy_end with
                  | Some s -> string_of_int s
                  | None -> "-");
                  (match cy.cy_pause with
                  | Some w -> string_of_int w
                  | None -> "-");
                  string_of_int cy.cy_assists;
                  string_of_int cy.cy_revoked_sites;
                  string_of_int cy.cy_faults;
                ]
                @ census_cells cy
                @ [ cycle_notes cy ])
              cycles)));
  (match d.d_pending_census with
  | Some (cycle, live, units) ->
      Buffer.add_string buf
        (Printf.sprintf
           "pending census at capture: cycle %d, %d live (%d units)\n" cycle
           live units)
  | None -> ());
  (match tl.tl_hard_stop with
  | Some step ->
      Buffer.add_string buf (Printf.sprintf "hard stop at step %d\n" step)
  | None -> ());
  Buffer.add_string buf "\nsite elision lifecycle:\n";
  (match tl.tl_sites with
  | [] -> Buffer.add_string buf "  (no barrier sites recorded)\n"
  | sites ->
      Buffer.add_string buf
        (render_table
           [ "site"; "kind"; "state"; "execs"; "elided"; "history" ]
           (List.map
              (fun s ->
                let snap =
                  List.find_opt (fun x -> x.fs_site = s.sl_site) d.d_sites
                in
                let execs, elided =
                  match snap with
                  | Some x -> (x.fs_execs, x.fs_elided_execs)
                  | None -> (0, 0)
                in
                [
                  s.sl_site;
                  s.sl_kind;
                  s.sl_state;
                  string_of_int execs;
                  string_of_int elided;
                  s.sl_history;
                ])
              sites)));
  Buffer.add_string buf "\nanomalies:";
  (match tl.tl_anomalies with
  | [] -> Buffer.add_string buf " none\n"
  | l ->
      Buffer.add_char buf '\n';
      List.iter
        (fun (name, step) ->
          Buffer.add_string buf (Printf.sprintf "  %s at step %d\n" name step))
        l);
  Buffer.contents buf

(* ---- chrome bridge ----------------------------------------------------- *)

let fields_of_ev (d : dump) (e : ev) : (string * J.json) list =
  let s i = J.Str (dstr d i) in
  match e.k with
  | Mark_start -> [ ("collector", s e.a); ("cycle", J.Int e.b); ("roots", J.Int e.c) ]
  | Mark_end -> [ ("collector", s e.a); ("cycle", J.Int e.b); ("violations", J.Int e.c) ]
  | Pause -> [ ("work", J.Int e.a) ]
  | Assist -> []
  | Trigger ->
      [
        ("live_units", J.Int e.a);
        ("trigger_units", J.Int e.b);
        ("degraded", J.Bool (e.c = 1));
      ]
  | Soft_enter | Soft_exit -> [ ("live_units", J.Int e.a); ("soft_limit", J.Int e.b) ]
  | Retune ->
      [
        ("goal", J.Float (float_of_int e.a /. 1000.));
        ("p99", J.Int e.b);
        ("mmu_10", J.Float (float_of_int e.c /. 1000.));
      ]
  | Hard_stop -> [ ("live_units", J.Int e.a) ]
  | Revoke_request -> [ ("assumption", s e.a) ]
  | Revoke_apply -> [ ("assumptions", J.Int e.a); ("repair_set", J.Int e.b) ]
  | Revoke_site ->
      [
        ("site", s e.a);
        ("guard", s e.b);
        ( "half",
          J.Str (match e.c with 1 -> "del" | 2 -> "ins" | _ -> "full") );
      ]
  | Respecialize -> [ ("site", s e.a); ("epoch", J.Int e.b) ]
  | Swap_degraded -> [ ("reason", s e.a) ]
  | Chaos_fault -> [ ("fault", s e.a); ("at", J.Int e.b) ]
  | Anomaly -> [ ("detector", s e.a); ("count", J.Int e.b) ]
  | Census ->
      [
        ("cycle", J.Int e.a);
        ("live_units", J.Int e.b);
        ("float_units", J.Int e.c);
      ]

let chrome_events_of_dump (d : dump) : J.event list =
  List.mapi
    (fun i e ->
      {
        J.ev_seq = i;
        (* mutator-step axis: 1 step renders as 1us in the viewer *)
        ev_ts = float_of_int e.step /. 1_000_000.;
        ev_kind = "flight." ^ kind_name e.k;
        ev_fields = fields_of_ev d e;
      })
    d.d_events
