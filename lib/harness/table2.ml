(** E2 — reproduction of the paper's Table 2 (jbb end-to-end barrier
    cost).

    Three barrier modes (§4.5):
    - {b no-barrier}: all SATB barriers compiled out;
    - {b always-log}: the marking-in-progress check is elided and non-null
      pre-values always logged, simulating fully incrementalized marking;
      elimination disabled;
    - {b always-log-elim}: like always-log with analysis-directed
      elimination enabled.

    Throughput is work per cost unit under the RISC cost model
    ({!Jrt.Barrier_cost}); we report it relative to no-barrier, as the
    paper does (its absolute column is SPECjbb throughput). *)

type row = { mode : string; cost_units : int; relative : float }

(** Paper's Table 2 relative-to-no-barrier column. *)
let paper = [ ("no-barrier", 1.000); ("always-log", 0.975); ("always-log-elim", 0.984) ]

let measure ?(workload = Workloads.Jbb.t) () : row list =
  let run ~satb_mode ~use_policy =
    let cw = Exp.compile workload in
    let r = Exp.run ~satb_mode ~use_policy cw in
    r.cost_units
  in
  let no_barrier =
    run ~satb_mode:Jrt.Barrier_cost.No_barrier ~use_policy:false
  in
  let always_log =
    run ~satb_mode:Jrt.Barrier_cost.Always_log ~use_policy:false
  in
  let always_log_elim =
    run ~satb_mode:Jrt.Barrier_cost.Always_log ~use_policy:true
  in
  let rel c = float_of_int no_barrier /. float_of_int c in
  let rows =
    [
      { mode = "no-barrier"; cost_units = no_barrier; relative = rel no_barrier };
      { mode = "always-log"; cost_units = always_log; relative = rel always_log };
      {
        mode = "always-log-elim";
        cost_units = always_log_elim;
        relative = rel always_log_elim;
      };
    ]
  in
  Telemetry.clear_table "table2";
  List.iter
    (fun r ->
      Telemetry.add_row ~table:"table2"
        [
          ("mode", Telemetry.Str r.mode);
          ("cost_units", Telemetry.Int r.cost_units);
          ("relative", Telemetry.Float r.relative);
        ])
    rows;
  rows

let render (rows : row list) : string =
  let body =
    List.map
      (fun r ->
        let paper_rel =
          match List.assoc_opt r.mode paper with
          | Some v -> Printf.sprintf "%.3f" v
          | None -> "-"
        in
        [
          r.mode;
          string_of_int r.cost_units;
          Printf.sprintf "%.3f" r.relative;
          paper_rel;
        ])
      rows
  in
  Tablefmt.render
    ~header:[ "barrier mode"; "cost units"; "relative"; "paper relative" ]
    ~align:[ Tablefmt.L; R; R; R ]
    body

let print () = print_endline (render (measure ()))
