(** E3 — reproduction of the paper's Figure 2: effect of the inline limit
    on analysis effectiveness and compilation time.

    For each benchmark and each inline limit we compile in three modes —
    B (no analysis), F (field analysis), A (field + array analysis) — and
    report the dynamic elimination rate and the compile (inline +
    analysis) time.  The paper's qualitative findings to reproduce: the
    elimination rate climbs with the inline limit and the 100-instruction
    level "gains essentially all the analysis results", while compile time
    keeps growing with more aggressive inlining; and F ⊆ A in both
    effectiveness and cost. *)

let limits = [ 0; 25; 50; 100; 200 ]
let modes = [ Satb_core.Analysis.B; F; A ]

type point = {
  bench : string;
  limit : int;
  mode : Satb_core.Analysis.mode;
  elim_pct : float;
  compile_s : float;
      (** inline + analysis CPU seconds, averaged over [reps] *)
}

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let measure_one ?(reps = 5) (w : Workloads.Spec.t) ~limit ~mode : point =
  (* timing: average several compiles to stabilize the tiny absolute
     numbers; effectiveness: one instrumented run *)
  let cw = ref (Exp.compile ~inline_limit:limit ~mode w) in
  let time = ref ((!cw).compiled.analysis_seconds +. (!cw).compiled.inline_seconds) in
  for _ = 2 to reps do
    cw := Exp.compile ~inline_limit:limit ~mode w;
    time := !time +. (!cw).compiled.analysis_seconds +. (!cw).compiled.inline_seconds
  done;
  let r = Exp.run !cw in
  let p =
    {
      bench = w.name;
      limit;
      mode;
      elim_pct = pct r.dyn.elided_execs r.dyn.total_execs;
      compile_s = !time /. float_of_int reps;
    }
  in
  Telemetry.add_row ~table:"fig2"
    [
      ("benchmark", Telemetry.Str p.bench);
      ("inline_limit", Telemetry.Int p.limit);
      ("mode", Telemetry.Str (Satb_core.Analysis.string_of_mode p.mode));
      ("elim_pct", Telemetry.Float p.elim_pct);
      ("compile_seconds", Telemetry.Float p.compile_s);
    ];
  p

let measure ?reps () : point list =
  Telemetry.clear_table "fig2";
  List.concat_map
    (fun w ->
      List.concat_map
        (fun limit ->
          List.map (fun mode -> measure_one ?reps w ~limit ~mode) modes)
        limits)
    Workloads.Registry.table1

let render (points : point list) : string =
  let buf = Buffer.create 1024 in
  let benches =
    List.sort_uniq compare (List.map (fun p -> p.bench) points)
  in
  List.iter
    (fun bench ->
      Buffer.add_string buf (Printf.sprintf "%s:\n" bench);
      let rows =
        List.filter_map
          (fun limit ->
            let find mode =
              List.find_opt
                (fun p -> p.bench = bench && p.limit = limit && p.mode = mode)
                points
            in
            match find Satb_core.Analysis.B, find F, find A with
            | Some b, Some f, Some a ->
                Some
                  [
                    string_of_int limit;
                    Tablefmt.f1 b.elim_pct;
                    Tablefmt.f1 f.elim_pct;
                    Tablefmt.f1 a.elim_pct;
                    Printf.sprintf "%.2f" (b.compile_s *. 1000.);
                    Printf.sprintf "%.2f" (f.compile_s *. 1000.);
                    Printf.sprintf "%.2f" (a.compile_s *. 1000.);
                  ]
            | _ -> None)
          limits
      in
      Buffer.add_string buf
        (Tablefmt.render
           ~header:
             [
               "inline limit";
               "B elim%";
               "F elim%";
               "A elim%";
               "B ms";
               "F ms";
               "A ms";
             ]
           ~align:[ Tablefmt.R; R; R; R; R; R; R ]
           rows);
      Buffer.add_string buf "\n\n")
    benches;
  Buffer.contents buf

let print () = print_string (render (measure ()))
