(** E11 — guarded elision under fault injection: revocation closes every
    chaos hole the guards cover, and the oracle still catches the holes
    they don't.

    The sweep crosses chaos fault plans (late second-mutator spawn,
    forced marker preemption, mid-cycle heap pressure, retrace-budget
    overflow) with both SATB-family collectors (plain and retrace) over
    the Table 1 workloads, compiled with every §4.3 extension on so the
    guard table is maximally populated.  With revocation enabled every
    run must finish with zero oracle violations: the late spawn revokes
    [Single_mutator] before the injected mutator's first store, running
    swap verdicts under plain SATB revokes [Retrace_collector] at
    startup, and a budget overflow degrades the cycle (swap elision off,
    stores logged) instead of hanging or aborting.  With revocation
    disabled the same late-spawn plan — and the deliberately unsound
    barrier-skip plan, which no guard covers — must be caught by the
    snapshot oracle, demonstrating both halves of the
    speculate-and-revoke contract. *)

type collector = Csatb | Cretrace

let collector_name = function Csatb -> "satb" | Cretrace -> "retrace"

let gc_of ?(steps_per_increment = 8) = function
  | Csatb -> Jrt.Runner.make_satb ~trigger_allocs:24 ~steps_per_increment ()
  | Cretrace -> Jrt.Runner.make_retrace ~trigger_allocs:24 ~steps_per_increment ()

(** The fault plans of the revocation-enabled sweep.  [budget-overflow]
    drives the termination watchdog: marking is slowed to one gray entry
    per increment and frozen mid-scan by a long marker preemption, so the
    cycle is still live when the swap-heavy phase runs, and a zero
    retrace budget trips the watchdog on the first unlogged store. *)
let plans : (string * Jrt.Chaos.fault list * int option * int) list =
  [
    ( "late-spawn",
      [ Jrt.Chaos.Late_spawn { at_instr = 1000; stores = 4 } ],
      None,
      8 );
    ( "preemption",
      [ Jrt.Chaos.Preempt_marker { at_alloc = 48; skips = 12 } ],
      None,
      8 );
    ("heap-pressure", [ Jrt.Chaos.Heap_pressure { at_alloc = 64 } ], None, 8);
    ( "budget-overflow",
      [ Jrt.Chaos.Preempt_marker { at_alloc = 24; skips = 700 } ],
      Some 0,
      1 );
  ]

type row = {
  plan : string;
  collector : string;
  bench : string;
  violations : int;
  revocations : int;  (** assumptions revoked at runtime *)
  revoked_sites : int;  (** elided sites patched back to full barriers *)
  degradations : int;  (** cycles that hit the retrace budget *)
  damage : int;  (** chaos damage stores performed *)
  retraces : int;  (** forced re-scans, incl. revocation repair *)
}

type caught_row = {
  c_plan : string;
  c_collector : string;
  c_bench : string;
  c_seed : int;
  c_violations : int;  (** > 0 = the oracle caught the unrepaired fault *)
}

let compile_all () =
  List.map
    (fun w -> Exp.compile ~null_or_same:true ~move_down:true ~swap:true w)
    Workloads.Registry.table1

let run_one ~revoke ~plan_name ~faults ~budget ?steps_per_increment ~seed
    ~(coll : collector) (cw : Exp.compiled_workload) : row =
  let chaos =
    match faults with
    | [] -> None
    | faults ->
        Some
          (Jrt.Chaos.create
             { Jrt.Chaos.seed; faults; quantum = None; gc_period = None })
  in
  let r =
    Exp.run
      ~gc:(gc_of ?steps_per_increment coll)
      ~guards:true ~revoke ?chaos ?retrace_budget:budget
      ~fail_on_thread_error:false ~seed cw
  in
  let violations, retraces =
    match r.gc with
    | Some g -> (g.total_violations, List.fold_left ( + ) 0 g.retraced)
    | None -> (0, 0)
  in
  let damage =
    match chaos with
    | Some c ->
        let s = Jrt.Chaos.stats c in
        s.Jrt.Chaos.damage_stores + s.Jrt.Chaos.skipped_barriers
    | None -> 0
  in
  {
    plan = plan_name;
    collector = collector_name coll;
    bench = cw.Exp.workload.name;
    violations;
    revocations = r.machine.Jrt.Interp.revocation_events;
    revoked_sites = r.machine.Jrt.Interp.revoked_sites;
    degradations = r.machine.Jrt.Interp.degradations;
    damage;
    retraces;
  }

let add_row (r : row) : row =
  Telemetry.add_row ~table:"revoke"
    [
      ("plan", Telemetry.Str r.plan);
      ("collector", Telemetry.Str r.collector);
      ("benchmark", Telemetry.Str r.bench);
      ("violations", Telemetry.Int r.violations);
      ("revocations", Telemetry.Int r.revocations);
      ("revoked_sites", Telemetry.Int r.revoked_sites);
      ("degradations", Telemetry.Int r.degradations);
      ("damage", Telemetry.Int r.damage);
      ("retraces", Telemetry.Int r.retraces);
    ];
  r

(** The revocation-enabled sweep: every row must report 0 violations. *)
let measure () : row list =
  Telemetry.clear_table "revoke";
  let compiled = compile_all () in
  List.concat_map
    (fun (plan_name, faults, budget, steps_per_increment) ->
      List.concat_map
        (fun coll ->
          List.map
            (fun cw ->
              add_row
                (run_one ~revoke:true ~plan_name ~faults ~budget
                   ~steps_per_increment ~seed:1 ~coll cw))
            compiled)
        [ Csatb; Cretrace ])
    plans

(** The revocation-disabled counterpart on the workloads with guarded
    elisions: the oracle must catch the late spawn somewhere, and must
    catch every barrier skip (no guard covers it). *)
let measure_caught ?(seeds = [ 1; 2 ]) () : caught_row list =
  Telemetry.clear_table "revoke_caught";
  let guarded =
    List.filter
      (fun (cw : Exp.compiled_workload) ->
        cw.workload.name = "db" || cw.workload.name = "jbb")
      (compile_all ())
  in
  let negative_plans =
    [
      ("late-spawn", [ Jrt.Chaos.Late_spawn { at_instr = 1000; stores = 4 } ]);
      ("barrier-skip", [ Jrt.Chaos.Barrier_skip { at_instr = 1000; victims = 4 } ]);
    ]
  in
  List.concat_map
    (fun (plan_name, faults) ->
      List.concat_map
        (fun coll ->
          List.concat_map
            (fun (cw : Exp.compiled_workload) ->
              List.map
                (fun seed ->
                  let r =
                    run_one ~revoke:false ~plan_name ~faults ~budget:None
                      ~seed ~coll cw
                  in
                  Telemetry.add_row ~table:"revoke_caught"
                    [
                      ("plan", Telemetry.Str plan_name);
                      ("collector", Telemetry.Str r.collector);
                      ("benchmark", Telemetry.Str r.bench);
                      ("seed", Telemetry.Int seed);
                      ("violations", Telemetry.Int r.violations);
                    ];
                  {
                    c_plan = plan_name;
                    c_collector = r.collector;
                    c_bench = r.bench;
                    c_seed = seed;
                    c_violations = r.violations;
                  })
                seeds)
            guarded)
        [ Csatb; Cretrace ])
    negative_plans

let render (rows : row list) : string =
  let body =
    List.map
      (fun r ->
        [
          r.plan;
          r.collector;
          r.bench;
          string_of_int r.violations;
          string_of_int r.revocations;
          string_of_int r.revoked_sites;
          string_of_int r.degradations;
          string_of_int r.damage;
          string_of_int r.retraces;
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [
        "plan";
        "collector";
        "benchmark";
        "violations";
        "revocations";
        "sites";
        "degraded";
        "damage";
        "retraces";
      ]
    ~align:[ Tablefmt.L; L; L; R; R; R; R; R; R ]
    body

let render_caught (rows : caught_row list) : string =
  let body =
    List.map
      (fun r ->
        [
          r.c_plan;
          r.c_collector;
          r.c_bench;
          string_of_int r.c_seed;
          string_of_int r.c_violations;
          (if r.c_violations > 0 then "caught" else "-");
        ])
      rows
  in
  Tablefmt.render
    ~header:[ "plan"; "collector"; "benchmark"; "seed"; "violations"; "oracle" ]
    ~align:[ Tablefmt.L; L; L; R; R; L ]
    body

let print () =
  print_endline "revocation enabled (every row must show 0 violations):";
  print_endline (render (measure ()));
  print_endline "";
  print_endline "revocation disabled (--no-revoke; the oracle must catch):";
  print_endline (render_caught (measure_caught ()))
