(** E5 — pause distribution and mutator utilization for all three
    collectors (§1 and §4.5).

    All collectors run with the same concurrent-increment budget on the
    same workload; we compare the work done inside the stop-the-world
    pauses.  The paper's claim: SATB remark pauses (drain the leftover
    log buffers) are often an order of magnitude smaller than
    incremental-update final pauses (rescan roots + dirty cards + trace
    everything allocated during the cycle).  The retrace collector rides
    along so its swap-elision re-scans show up in the same distribution
    view. *)

type coll = {
  collector : string;
  cycles : int;
  pauses : Profile.Stats.dist;
  mmu_10 : float;
  utilization : float;
}

type row = { bench : string; collectors : coll list; ratio : float }

let find (r : row) (name : string) : coll =
  List.find (fun c -> c.collector = name) r.collectors

let measure_one ?(trigger_allocs = 16) ?(steps_per_increment = 16)
    (w : Workloads.Spec.t) : row =
  (* The SATB run uses the analysis-directed elision policy; the
     incremental-update run keeps every barrier, because pre-null elision
     is an SATB-specific optimization: a card-marking collector must hear
     about stores of fresh pointers into already-scanned objects even when
     the overwritten value was null.  The retrace run adds the §4.3
     swap/move-down elisions the retrace protocol exists for. *)
  let go ~use_policy ~swap name gc =
    let cw =
      if swap then Exp.compile ~move_down:true ~swap:true w else Exp.compile w
    in
    let r = Exp.run ~use_policy ~gc cw in
    match r.Jrt.Runner.gc with
    | Some g ->
        if g.Jrt.Runner.total_violations > 0 then
          Fmt.failwith "%s/%s: marking invariant violated" w.name name;
        let tl =
          Profile.Stats.timeline_of_summary ~steps:r.Jrt.Runner.steps
            r.Jrt.Runner.gc
        in
        let w10 = max 1 (Profile.Stats.total_time tl / 10) in
        {
          collector = name;
          cycles = g.Jrt.Runner.cycles;
          pauses = Profile.Stats.dist_of g.Jrt.Runner.final_pause_works;
          mmu_10 = Profile.Stats.mmu tl ~window:w10;
          utilization = Profile.Stats.utilization tl;
        }
    | None ->
        {
          collector = name;
          cycles = 0;
          pauses = Profile.Stats.dist_of [];
          mmu_10 = 1.0;
          utilization = 1.0;
        }
  in
  let satb =
    go ~use_policy:true ~swap:false "satb"
      (Jrt.Runner.Satb { steps_per_increment; pacing = Jrt.Pacer.config_of_trigger trigger_allocs })
  in
  let incr =
    go ~use_policy:false ~swap:false "incr"
      (Jrt.Runner.Incr { steps_per_increment; pacing = Jrt.Pacer.config_of_trigger trigger_allocs })
  in
  let retrace =
    go ~use_policy:true ~swap:true "retrace"
      (Jrt.Runner.Retrace { steps_per_increment; pacing = Jrt.Pacer.config_of_trigger trigger_allocs })
  in
  {
    bench = w.name;
    collectors = [ satb; incr; retrace ];
    ratio =
      (* a zero SATB pause is reported as if it cost one unit *)
      float_of_int incr.pauses.Profile.Stats.d_max
      /. float_of_int (max 1 satb.pauses.Profile.Stats.d_max);
  }

let measure ?trigger_allocs ?steps_per_increment () : row list =
  (* the shared row table is the single source of truth behind the
     rendered table, BENCH_pause.json and the regression gate *)
  Telemetry.clear_table "pause";
  let rows =
    List.map
      (measure_one ?trigger_allocs ?steps_per_increment)
      Workloads.Registry.table1
  in
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          let d = c.pauses in
          Telemetry.add_row ~table:"pause"
            [
              ("bench", Telemetry.Str r.bench);
              ("collector", Telemetry.Str c.collector);
              ("cycles", Telemetry.Int c.cycles);
              ("pauses", Telemetry.Int d.Profile.Stats.d_count);
              ("p50", Telemetry.Int d.Profile.Stats.d_p50);
              ("p90", Telemetry.Int d.Profile.Stats.d_p90);
              ("p99", Telemetry.Int d.Profile.Stats.d_p99);
              ("max", Telemetry.Int d.Profile.Stats.d_max);
              ("mmu_10", Telemetry.Float c.mmu_10);
              ("utilization", Telemetry.Float c.utilization);
            ])
        r.collectors)
    rows;
  rows

let render (rows : row list) : string =
  let body =
    List.concat_map
      (fun r ->
        List.map
          (fun c ->
            let d = c.pauses in
            [
              r.bench;
              c.collector;
              string_of_int c.cycles;
              string_of_int d.Profile.Stats.d_count;
              string_of_int d.Profile.Stats.d_p50;
              string_of_int d.Profile.Stats.d_p90;
              string_of_int d.Profile.Stats.d_p99;
              string_of_int d.Profile.Stats.d_max;
              Printf.sprintf "%.3f" c.mmu_10;
              Printf.sprintf "%.3f" c.utilization;
              (if c.collector = "incr" then
                 if Float.is_nan r.ratio then "-"
                 else Printf.sprintf "%.1fx" r.ratio
               else "");
            ])
          r.collectors)
      rows
  in
  Tablefmt.render
    ~header:
      [
        "benchmark";
        "collector";
        "cycles";
        "pauses";
        "p50";
        "p90";
        "p99";
        "max";
        "mmu@10%";
        "util";
        "incr/satb";
      ]
    ~align:[ Tablefmt.L; L; R; R; R; R; R; R; R; R; R ]
    body

let print () = print_endline (render (measure ()))
