(** E5 — pause distribution and mutator utilization across all three
    collectors under equal concurrent budgets (the paper's §1
    motivation).

    Each benchmark runs under SATB (analysis-directed elision),
    incremental update (every barrier kept — pre-null elision is
    SATB-specific) and the retrace collector (swap + move-down
    elision).  Instead of the old max-only view, each run reports the
    full pause distribution (p50/p90/p99/max), MMU at a 10% window and
    overall mutator utilization, via the shared [Profile.Stats] code.
    Rows feed the ["pause"] telemetry table behind BENCH_pause.json and
    the bench regression gate. *)

type coll = {
  collector : string;  (** ["satb"], ["incr"] or ["retrace"] *)
  cycles : int;
  pauses : Profile.Stats.dist;  (** final-pause work distribution *)
  mmu_10 : float;  (** MMU at a window of 10% of the run *)
  utilization : float;
}

type row = {
  bench : string;
  collectors : coll list;  (** satb, incr, retrace — in that order *)
  ratio : float;  (** incr / satb max pause work (the paper's claim) *)
}

val find : row -> string -> coll
(** The named collector's measurement; raises [Not_found] otherwise. *)

val measure_one :
  ?trigger_allocs:int -> ?steps_per_increment:int -> Workloads.Spec.t -> row

val measure :
  ?trigger_allocs:int -> ?steps_per_increment:int -> unit -> row list
(** All Table-1 workloads; repopulates the ["pause"] telemetry table. *)

val render : row list -> string
val print : unit -> unit
