(** E4 — reproduction of the paper's Figure 3: effect of the analyses on
    compiled code size, at inline limit 100.

    Code size is modeled as one unit per instruction plus the inline
    footprint of every retained SATB barrier
    ({!Satb_core.Driver.barrier_footprint}).  The paper reports a 2-6%%
    reduction from barrier elimination, with the array analysis
    contributing less than it does dynamically because array barriers sit
    in loops. *)

type row = {
  bench : string;
  size_b : int;  (** code size with no elimination *)
  size_f : int;
  size_a : int;
}

let measure_one ?(inline_limit = 100) (w : Workloads.Spec.t) : row =
  let size mode =
    Satb_core.Driver.code_size (Exp.compile ~inline_limit ~mode w).compiled
  in
  let r =
    {
      bench = w.name;
      size_b = size Satb_core.Analysis.B;
      size_f = size F;
      size_a = size A;
    }
  in
  Telemetry.add_row ~table:"fig3"
    [
      ("benchmark", Telemetry.Str r.bench);
      ("size_b", Telemetry.Int r.size_b);
      ("size_f", Telemetry.Int r.size_f);
      ("size_a", Telemetry.Int r.size_a);
    ];
  r

let measure ?inline_limit () : row list =
  Telemetry.clear_table "fig3";
  List.map (measure_one ?inline_limit) Workloads.Registry.table1

let render (rows : row list) : string =
  let body =
    List.map
      (fun r ->
        let reduction s =
          Printf.sprintf "-%.1f%%"
            (100. *. float_of_int (r.size_b - s) /. float_of_int r.size_b)
        in
        [
          r.bench;
          string_of_int r.size_b;
          string_of_int r.size_f;
          reduction r.size_f;
          string_of_int r.size_a;
          reduction r.size_a;
        ])
      rows
  in
  Tablefmt.render
    ~header:[ "benchmark"; "B size"; "F size"; "F vs B"; "A size"; "A vs B" ]
    ~align:[ Tablefmt.L; R; R; R; R; R ]
    body

let print () = print_endline (render (measure ()))
