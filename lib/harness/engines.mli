(** E17 — execution-engine comparison: the direct-threaded compiled
    engine ({!Jrt.Exec}) vs the tree-walking interpreter across the
    Table 1 workloads, with an exhaustive equality check between the two
    engines' final states. *)

type row = {
  bench : string;
  steps : int;  (** instructions per run (identical under both engines) *)
  interp_steps_s : float;
  threaded_steps_s : float;
  speedup : float;
  equal : bool;  (** the exhaustive {!diff} found no mismatch *)
}

val diff :
  ?flight:Flight.ev list * Flight.ev list ->
  Jrt.Runner.report ->
  Jrt.Runner.report ->
  string option
(** Exhaustive comparison of two runs' final states: steps, cost and
    barrier units, every machine counter, dynamic store stats, per-site
    attribution, statics, the full heap graph (class, liveness and
    payload of every object ever allocated), GC summary, pacer stats and
    thread errors.  [?flight] additionally compares the two runs'
    flight-recorder event streams (GC phase transitions, pacer
    decisions, revocations, faults — everything except the
    threaded-only respecialization records, which are filtered out);
    kind, order, payloads and steps must all match exactly — the
    threaded engine's step source includes the slice's in-flight count
    ([Exec.inflight]), so its events carry the interpreter's steps even
    from inside fused blocks.  Snapshot each stream with
    [Flight.events ()] right after its run, before the next run resets
    the ring.  [None] means identical;
    [Some m] names every mismatching dimension.  Also used by the
    differential QCheck property. *)

val bench_quantum : int
val bench_gc_period : int
(** The documented coarse throughput cadence (see engines.ml); E18
    measures the recorder's overhead at the same cadence. *)

val measure : ?min_seconds:float -> unit -> row list
(** Run every Table 1 workload under both engines (SATB collector,
    default pacing), fail loudly if any pair of runs diverges, then
    measure steps/sec per engine by repeating the deterministic run
    until cumulative wall time reaches [min_seconds] (default 0.2s).
    Fills the ["engines"] telemetry table behind BENCH_engines.json. *)

val render : row list -> string
val print : unit -> unit
