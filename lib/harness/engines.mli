(** E17 — execution-engine comparison: the direct-threaded compiled
    engine ({!Jrt.Exec}) vs the tree-walking interpreter across the
    Table 1 workloads, with an exhaustive equality check between the two
    engines' final states. *)

type row = {
  bench : string;
  steps : int;  (** instructions per run (identical under both engines) *)
  interp_steps_s : float;
  threaded_steps_s : float;
  speedup : float;
  equal : bool;  (** the exhaustive {!diff} found no mismatch *)
}

val diff : Jrt.Runner.report -> Jrt.Runner.report -> string option
(** Exhaustive comparison of two runs' final states: steps, cost and
    barrier units, every machine counter, dynamic store stats, per-site
    attribution, statics, the full heap graph (class, liveness and
    payload of every object ever allocated), GC summary, pacer stats and
    thread errors.  [None] means identical; [Some m] names every
    mismatching dimension.  Also used by the differential QCheck
    property. *)

val measure : ?min_seconds:float -> unit -> row list
(** Run every Table 1 workload under both engines (SATB collector,
    default pacing), fail loudly if any pair of runs diverges, then
    measure steps/sec per engine by repeating the deterministic run
    until cumulative wall time reaches [min_seconds] (default 0.2s).
    Fills the ["engines"] telemetry table behind BENCH_engines.json. *)

val render : row list -> string
val print : unit -> unit
