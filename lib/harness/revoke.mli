(** E11 — guarded elision under chaos fault injection: the
    revocation-enabled sweep (fault plans × collectors × workloads, all
    expected violation-free) and its revocation-disabled counterpart
    (the oracle must catch late spawns and barrier skips). *)

type collector = Csatb | Cretrace

type row = {
  plan : string;
  collector : string;
  bench : string;
  violations : int;
  revocations : int;
  revoked_sites : int;
  degradations : int;
  damage : int;
  retraces : int;
}

type caught_row = {
  c_plan : string;
  c_collector : string;
  c_bench : string;
  c_seed : int;
  c_violations : int;
}

val measure : unit -> row list
(** The revocation-enabled sweep; every row must report 0 violations. *)

val measure_caught : ?seeds:int list -> unit -> caught_row list
(** Revocation disabled on the guarded workloads (db, jbb): late spawns
    must be caught somewhere, barrier skips everywhere. *)

val render : row list -> string
val render_caught : caught_row list -> string
val print : unit -> unit
