(** E17 — execution-engine comparison: the direct-threaded compiled
    engine ({!Jrt.Exec}) vs the tree-walking interpreter across the six
    Table 1 workloads.

    Both engines run the same compiled workload under the same collector
    with identical scheduling, so every run is deterministic and the two
    final states must be {e identical} — counters, per-site attribution,
    heap graph, statics, GC summary.  {!diff} checks that exhaustively
    (it is also the engine room of the differential QCheck property);
    any mismatch fails the experiment loudly rather than producing a
    pretty table over wrong numbers.

    Throughput is measured by repeating the deterministic run until
    cumulative wall time passes a floor, so the steps/sec ratio is
    stable despite the sub-millisecond single-run times of the bundled
    workloads.  The headline number — the speedup column — is gated in
    CI as a floor (≥5x) so an engine regression cannot be silently
    grandfathered into the baseline. *)

type row = {
  bench : string;
  steps : int;  (** instructions per run (identical under both engines) *)
  interp_steps_s : float;
  threaded_steps_s : float;
  speedup : float;
  equal : bool;  (** the exhaustive {!diff} found no mismatch *)
}

(* ---- exhaustive report comparison -------------------------------------- *)

let site_table (m : Jrt.Interp.t) =
  Hashtbl.fold
    (fun s (st : Jrt.Interp.site_stats) acc ->
      ( Jrt.Interp.site_id s,
        ( st.Jrt.Interp.execs,
          st.pre_null_execs,
          st.paid_execs,
          st.elided_execs,
          st.del_paid_execs,
          st.del_elided_execs,
          st.ins_paid_execs,
          st.ins_elided_execs,
          st.barrier_units,
          st.revocations ) )
      :: acc)
    m.Jrt.Interp.stats []
  |> List.sort compare

let statics_table (m : Jrt.Interp.t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.Jrt.Interp.statics []
  |> List.sort compare

(* class, liveness and full payload of every object ever allocated, in
   allocation order — object ids are allocation-ordered under both
   engines, so this is a complete heap-graph comparison *)
let heap_table (h : Jrt.Heap.t) =
  List.init h.Jrt.Heap.next_id (fun i ->
      let o = Jrt.Heap.get h i in
      (o.Jrt.Heap.cls, o.Jrt.Heap.dead, o.Jrt.Heap.payload))

(* Flight-recorder parity: both engines drive the same machine and clock
   the recorder with the same instruction counter, so the recorded event
   stream — GC phase transitions, pacer decisions, revocations, faults —
   must be identical — steps included: the threaded engine's step
   source adds the slice's in-flight instruction count ([Exec.inflight]),
   so even an event recorded from inside a fused block carries the
   interpreter's exact charge-before-execute step.  Respecialization
   events exist only under the threaded engine and are excluded.
   Payload slots hold intern-table ids; the table is process-global, so
   ids are directly comparable between two runs of one process. *)
let flight_diff (ea : Flight.ev list) (eb : Flight.ev list) : string option =
  let strip = List.filter (fun e -> e.Flight.k <> Flight.Respecialize) in
  let a = strip ea and b = strip eb in
  if a = b then None
  else
    let rec first_div i = function
      | x :: xs, y :: ys when x = y -> first_div (i + 1) (xs, ys)
      | _ -> i
    in
    let i = first_div 0 (a, b) in
    let show l =
      match List.nth_opt l i with
      | Some e ->
          Printf.sprintf "%s@%d(%d,%d,%d)"
            (Flight.kind_name e.Flight.k)
            e.Flight.step e.Flight.a e.Flight.b e.Flight.c
      | None -> "<end>"
    in
    Some
      (Printf.sprintf
         "flight events: %d vs %d records, diverging at #%d: %s vs %s"
         (List.length a) (List.length b) i (show a) (show b))

let diff ?flight (a : Jrt.Runner.report) (b : Jrt.Runner.report) :
    string option =
  let ma = a.Jrt.Runner.machine and mb = b.Jrt.Runner.machine in
  let mismatches = ref [] in
  let chk name equal = if not equal then mismatches := name :: !mismatches in
  let chki name x y =
    if x <> y then
      mismatches := Printf.sprintf "%s: %d vs %d" name x y :: !mismatches
  in
  chki "steps" a.steps b.steps;
  chki "cost_units" a.cost_units b.cost_units;
  chki "barrier_units" a.barrier_units b.barrier_units;
  chki "barriers_executed" ma.Jrt.Interp.barriers_executed
    mb.Jrt.Interp.barriers_executed;
  chki "elided_barrier_execs" ma.Jrt.Interp.elided_barrier_execs
    mb.Jrt.Interp.elided_barrier_execs;
  chki "retrace_checks" ma.Jrt.Interp.retrace_checks
    mb.Jrt.Interp.retrace_checks;
  chki "revocation_events" ma.Jrt.Interp.revocation_events
    mb.Jrt.Interp.revocation_events;
  chki "revoked_sites" ma.Jrt.Interp.revoked_sites
    mb.Jrt.Interp.revoked_sites;
  chki "degradations" ma.Jrt.Interp.degradations mb.Jrt.Interp.degradations;
  chki "degraded_swap_execs" ma.Jrt.Interp.degraded_swap_execs
    mb.Jrt.Interp.degraded_swap_execs;
  chki "assist_execs" ma.Jrt.Interp.assist_execs mb.Jrt.Interp.assist_execs;
  chki "external_paid_execs" ma.Jrt.Interp.external_paid_execs
    mb.Jrt.Interp.external_paid_execs;
  chki "external_elided_execs" ma.Jrt.Interp.external_elided_execs
    mb.Jrt.Interp.external_elided_execs;
  chk "dyn stats" (a.dyn = b.dyn);
  chk "per-site attribution" (site_table ma = site_table mb);
  chk "statics" (statics_table ma = statics_table mb);
  chki "heap objects" ma.Jrt.Interp.heap.Jrt.Heap.next_id
    mb.Jrt.Interp.heap.Jrt.Heap.next_id;
  chki "heap live_units" ma.Jrt.Interp.heap.Jrt.Heap.live_units
    mb.Jrt.Interp.heap.Jrt.Heap.live_units;
  chk "final heap graph"
    (ma.Jrt.Interp.heap.Jrt.Heap.next_id = mb.Jrt.Interp.heap.Jrt.Heap.next_id
    && heap_table ma.Jrt.Interp.heap = heap_table mb.Jrt.Interp.heap);
  chk "gc summary" (a.gc = b.gc);
  chk "pacer stats" (a.pacer = b.pacer);
  chk "hard_stop" (a.hard_stop = b.hard_stop);
  chk "thread_errors" (a.thread_errors = b.thread_errors);
  (match flight with
  | Some (ea, eb) -> (
      match flight_diff ea eb with
      | Some m -> mismatches := m :: !mismatches
      | None -> ())
  | None -> ());
  match !mismatches with
  | [] -> None
  | ms -> Some (String.concat "; " (List.rev ms))

(* ---- throughput -------------------------------------------------------- *)

(* Throughput cadence: safepoint work (marking increments, chaos hooks,
   root scans) is engine-independent, so at the default fine-grained
   cadence it dominates wall time for BOTH engines and masks the
   dispatch cost being measured.  E17 therefore times mutator throughput
   at a documented coarser cadence — identical for both engines, so the
   ratio is still apples-to-apples — while the exhaustive equality check
   runs at BOTH cadences. *)
let bench_quantum = 500
let bench_gc_period = 512

(** Repeat the deterministic run until cumulative mutator time reaches
    [min_seconds]; returns (steps per run, steps/sec).  Time is the sum
    of each run's [loop_s -. gc_s]: the scheduling loop alone, minus
    safepoint/GC work.  VM bring-up and the threaded engine's up-front
    method compilation are outside [loop_s], and collector work is
    engine-invariant by construction (the exhaustive equality check
    proves the collector saw identical inputs), so what remains — and
    what E17's ratio compares — is steady-state {e mutator} throughput,
    the paper's quantity of interest. *)
let steps_per_sec ~min_seconds ~engine (cw : Exp.compiled_workload) :
    int * float =
  let gc = Jrt.Runner.make_satb () in
  let run () =
    Exp.run ~gc ~engine ~quantum:bench_quantum ~gc_period:bench_gc_period cw
  in
  let mutator_s (r : Jrt.Runner.report) =
    r.Jrt.Runner.loop_s -. r.Jrt.Runner.gc_s
  in
  let first = run () in
  let acc = ref (mutator_s first) in
  let runs = ref 1 in
  while !acc < min_seconds do
    acc := !acc +. mutator_s (run ());
    incr runs
  done;
  let steps = first.Jrt.Runner.steps in
  (steps, float_of_int (steps * !runs) /. !acc)

let measure_one ~min_seconds (w : Workloads.Spec.t) : row =
  let cw = Exp.compile w in
  (* pilot runs per engine for the exhaustive equality check, at the
     default cadence and at the throughput cadence *)
  let gc = Jrt.Runner.make_satb () in
  let check ?quantum ?gc_period tag =
    let ri = Exp.run ~gc ~engine:`Interp ?quantum ?gc_period cw in
    let ei = Flight.events () in
    let rt = Exp.run ~gc ~engine:`Threaded ?quantum ?gc_period cw in
    let et = Flight.events () in
    match diff ~flight:(ei, et) ri rt with
    | None -> ()
    | Some m ->
        Fmt.failwith "E17 %s (%s cadence): engines diverge — %s" w.name tag m
  in
  check "default";
  check ~quantum:bench_quantum ~gc_period:bench_gc_period "bench";
  let equal = true in
  let steps, interp_steps_s =
    steps_per_sec ~min_seconds ~engine:`Interp cw
  in
  let _, threaded_steps_s =
    steps_per_sec ~min_seconds ~engine:`Threaded cw
  in
  let speedup =
    if interp_steps_s = 0.0 then 0.0 else threaded_steps_s /. interp_steps_s
  in
  let r =
    { bench = w.name; steps; interp_steps_s; threaded_steps_s; speedup; equal }
  in
  Telemetry.add_row ~table:"engines"
    [
      ("benchmark", Telemetry.Str r.bench);
      ("steps", Telemetry.Int r.steps);
      ("interp_steps_s", Telemetry.Float r.interp_steps_s);
      ("threaded_steps_s", Telemetry.Float r.threaded_steps_s);
      ("speedup", Telemetry.Float r.speedup);
      ("equal", Telemetry.Bool r.equal);
    ];
  r

let measure ?(min_seconds = 0.2) () : row list =
  Telemetry.clear_table "engines";
  List.map (measure_one ~min_seconds) Workloads.Registry.table1

let render (rows : row list) : string =
  let body =
    List.map
      (fun r ->
        [
          r.bench;
          string_of_int r.steps;
          Printf.sprintf "%.0f" r.interp_steps_s;
          Printf.sprintf "%.0f" r.threaded_steps_s;
          Printf.sprintf "%.1fx" r.speedup;
          (if r.equal then "yes" else "NO");
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [
        "benchmark";
        "steps/run";
        "interp steps/s";
        "threaded steps/s";
        "speedup";
        "identical";
      ]
    ~align:[ Tablefmt.L; R; R; R; R; R ]
    body

let print () =
  print_endline
    "threaded engine vs interpreter (identical = counters, per-site \
     attribution, heap graph, statics and GC summary all byte-equal):";
  print_endline (render (measure ()))
