(** E16 — the pacing-controller sweep: fixed triggers, heap-growth
    goals, soft limits (degrade-don't-die) and MMU-driven auto-tuning
    across the Table 1 workloads and all four collectors; plus a chaos
    sub-sweep injecting allocation spikes and memory-pressure ramps on
    top of the soft limit.  Fills the [pacing], [pacing_chaos] and
    [pacing_summary] telemetry tables the bench gate checks. *)

type policy = { p_name : string; p_config : Jrt.Pacer.config }

val fixed : int -> policy
val goal : float -> policy
val auto : policy
val soft_of : limit:int -> policy

val fixed_policies : policy list
(** The fixed-trigger rows auto mode is judged against. *)

type row = {
  bench : string;
  collector : string;
  policy : string;
  stores : int;
  elide_pct : float;
  cycles : int;
  degraded_cycles : int;
  assists : int;
  p50 : int;
  p99 : int;
  max_pause : int;
  mmu_10 : float;
  max_live : int;  (** peak live heap units the pacer observed *)
  violations : int;
  hard_stops : int;  (** 0 or 1; every sweep row must be 0 *)
  pauses : int list;  (** raw pause works, for the summary pooling *)
}

type chaos_row = {
  c_plan : string;
  c_bench : string;
  c_collector : string;
  c_violations : int;
  c_degraded_cycles : int;
  c_injected : int;  (** ballast objects the fault placed *)
  c_hard_stops : int;
}

type summary_row = {
  s_bench : string;
  s_best_fixed : string;  (** name of the winning fixed policy *)
  s_best_fixed_p99 : int;
  s_auto_p99 : int;
  s_auto_win : bool;
}

val probe_peak : coll:Hybrid.collector -> Exp.compiled_workload -> int
(** Peak live units of a policy-free run — the yardstick the [soft]
    rows derive their limit from. *)

val measure : unit -> row list
(** The full sweep: 6 workloads x 4 collectors x 7 policies. *)

val measure_chaos : ?seed:int -> unit -> chaos_row list
(** Allocation-fault sub-sweep on top of the soft-limit policy. *)

val summarize : row list -> summary_row list
(** Pool each bench's pauses across collectors; compare auto's p99 to
    the best fixed trigger's.  Appends a TOTAL row carrying
    [auto_losses] for the gate. *)

val render : row list -> string
val render_chaos : chaos_row list -> string
val render_summary : summary_row list -> string

val print : unit -> unit
