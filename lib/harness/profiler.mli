(** E14 — hot-site walkthrough: per-site barrier attribution on [db]
    under the retrace collector, comparing the plain §3 analysis against
    the full extension stack (null-or-same, move-down, swap, callee
    summaries) with guards wired.

    The point of the experiment is the profiler's view of {e where} the
    barrier budget goes: the baseline run pays full barriers inside
    [db]'s shell-sort swap loop; the full run elides them pairwise and
    the hot-site table shows the same sites flip from paid to elided,
    with the analysis provenance inlined.  Both profiles are self-checked
    against the interpreter counters ({!Profile.Attr.reconciles}) and
    feed the ["profile"] telemetry table. *)

type result = {
  workload : string;
  baseline : Profile.Attr.t;  (** plain mode-A analysis *)
  full : Profile.Attr.t;  (** + null-or-same, move-down, swap, summaries *)
  diff : Profile.Attr.diff;  (** full vs the baseline *)
}

val measure : ?workload:Workloads.Spec.t -> unit -> result
(** Defaults to [db].  Fails if either profile does not reconcile with
    the interpreter's global counters. *)

val render : result -> string
val print : unit -> unit
