(** E14 — hot-site walkthrough on [db] — see profiler.mli. *)

type result = {
  workload : string;
  baseline : Profile.Attr.t;
  full : Profile.Attr.t;
  diff : Profile.Attr.diff;
}

let profile_run ~(label : string) ~(gc : Jrt.Runner.gc_choice)
    (cw : Exp.compiled_workload) : Profile.Attr.t =
  let r = Exp.run ~gc ~guards:true cw in
  (match r.Jrt.Runner.gc with
  | Some g when g.Jrt.Runner.total_violations > 0 ->
      Fmt.failwith "%s/%s: marking invariant violated" cw.Exp.workload.name
        label
  | Some _ | None -> ());
  let p =
    Profile.Attr.of_report ~workload:cw.Exp.workload.name ~gc:"retrace"
      ~explain:(Exp.explain_policy_of cw) r
  in
  (match Profile.Attr.reconciles p r with
  | Ok () -> ()
  | Error e ->
      Fmt.failwith "%s/%s: profile does not reconcile: %s"
        cw.Exp.workload.name label e);
  p

let measure ?(workload = Workloads.Db.t) () : result =
  let gc = Jrt.Runner.make_retrace ~trigger_allocs:24 () in
  let baseline = profile_run ~label:"plain" ~gc (Exp.compile workload) in
  let full =
    profile_run ~label:"full" ~gc
      (Exp.compile ~null_or_same:true ~move_down:true ~swap:true
         ~summaries:true workload)
  in
  (* the "diff" direction is full-vs-baseline, so an *improvement* shows
     up as a (desired) elision-rate gain, not a regression *)
  let diff = Profile.Attr.diff ~baseline full in
  Telemetry.clear_table "profile";
  List.iter
    (fun (variant, p) ->
      Telemetry.add_row ~table:"profile"
        [
          ("workload", Telemetry.Str workload.Workloads.Spec.name);
          ("variant", Telemetry.Str variant);
          ("elision_pct", Telemetry.Float (Profile.Attr.elision_rate p));
          ("barrier_units", Telemetry.Int p.Profile.Attr.p_totals.t_barrier_units);
          ("units_per_kstep", Telemetry.Float (Profile.Attr.units_per_kstep p));
          ("pause_p99", Telemetry.Int p.Profile.Attr.p_pauses.Profile.Stats.d_p99);
          ("pause_max", Telemetry.Int p.Profile.Attr.p_pauses.Profile.Stats.d_max);
          ("utilization", Telemetry.Float p.Profile.Attr.p_utilization);
        ])
    [ ("plain", baseline); ("full", full) ];
  { workload = workload.Workloads.Spec.name; baseline; full; diff }

let render (r : result) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "-- %s: plain mode-A analysis --\n" r.workload);
  Buffer.add_string b (Profile.Attr.render ~top:5 r.baseline);
  Buffer.add_string b
    (Printf.sprintf "\n-- %s: + null-or-same, move-down, swap, summaries --\n"
       r.workload);
  Buffer.add_string b (Profile.Attr.render ~top:5 r.full);
  Buffer.add_string b "\n-- full vs plain --\n";
  Buffer.add_string b (Profile.Attr.render_diff r.diff);
  Buffer.contents b

let print () = print_endline (render (measure ()))
