(** Shared plumbing for the experiments: compile a workload at a given
    analysis configuration and run it under the instrumented runtime. *)

type compiled_workload = {
  workload : Workloads.Spec.t;
  compiled : Satb_core.Driver.compiled;
}

val compile :
  ?inline_limit:int ->
  ?mode:Satb_core.Analysis.mode ->
  ?null_or_same:bool ->
  ?move_down:bool ->
  ?swap:bool ->
  ?summaries:bool ->
  Workloads.Spec.t ->
  compiled_workload

val policy_of : compiled_workload -> Jrt.Interp.barrier_policy
(** Barrier-elision policy from the analysis verdicts. *)

val retrace_policy_of : compiled_workload -> Jrt.Interp.retrace_policy
(** Tracing-state-check sites (swap-elided store pairs) from the analysis
    verdicts; [no_retrace_checks] when the swap extension is off. *)

val guard_policy_of : compiled_workload -> Jrt.Interp.guard_policy
(** The per-site guard table from the compiler's assumption metadata. *)

val half_policy_of : compiled_workload -> Jrt.Interp.half_policy
(** Per-site split verdicts for the hybrid barrier, from the compiler's
    deletion- and insertion-half tables; each half carries its own guard
    set.  {!run} wires this automatically when [gc] is [Hybrid]. *)

val explain_policy_of : compiled_workload -> Jrt.Interp.explain_policy
(** Elision provenance: the analysis-side justification of each elided
    site, for revocation events and the profiler's hot-site report. *)

val default_engine : [ `Interp | `Threaded ] ref
(** Session-wide default for {!run}'s [?engine] (initially [`Interp],
    or [`Threaded] when the [SATB_ENGINE=threaded] environment variable
    is set); `bench --engine threaded` flips it so every experiment
    re-runs on the compiled engine without per-call plumbing, and CI
    uses the environment variable to re-run the whole tier-1 suite on
    the compiled engine. *)

val run :
  ?gc:Jrt.Runner.gc_choice ->
  ?satb_mode:Jrt.Barrier_cost.satb_mode ->
  ?use_policy:bool ->
  ?guards:bool ->
  ?revoke:bool ->
  ?chaos:Jrt.Chaos.t ->
  ?retrace_budget:int ->
  ?fail_on_thread_error:bool ->
  ?seed:int ->
  ?quantum:int ->
  ?gc_period:int ->
  ?engine:[ `Interp | `Threaded ] ->
  ?observer:(Jrt.Interp.t -> unit) ->
  compiled_workload ->
  Jrt.Runner.report
(** Run under the instrumented runtime; fails on any thread error unless
    [fail_on_thread_error:false] (chaos damage may legitimately kill
    workload threads).  [guards] (default off — the negative soundness
    tests depend on unguarded runs) wires the compiler's guard table so
    assumption failures revoke dependent elisions; [revoke:false] keeps
    the guards wired but ignores their failures.  [engine] defaults to
    {!default_engine}.  [observer] is the heap observatory's cycle-end
    hook, forwarded to {!Jrt.Runner.run}. *)
