(** E16 — the pacing-controller sweep: heap-growth goals, soft limits
    and auto-tuning across the Table 1 workloads and all four
    collectors.

    Each (workload, collector) pair runs under a sweep of pacing
    policies:

    - [fixed-24] / [fixed-64] / [fixed-128] — the deprecated
      [--gc-trigger] alias, a cycle every N allocations;
    - [goal-1.5] / [goal-2.0] — the GOGC-style heap-growth target;
    - [soft] — [goal-1.5] with a soft limit at 60% of the policy-free
      peak live size (learned by a probe run), so the row is guaranteed
      to exercise the degrade-don't-die machinery: boosted increments,
      forced allocate-black, allocation assists — and must finish with
      {e zero} oracle violations and no hard stop;
    - [auto] — the MMU/percentile feedback mode.

    Every row must report zero violations and zero hard stops (no row
    sets a hard limit; the clean-abort path is exercised by the unit
    tests).  The [soft] rows must show degraded cycles — pressure that
    merely aborts is a pacer bug, pressure that corrupts marking is a
    collector bug; the oracle distinguishes them.

    A chaos sub-sweep reruns every (workload, collector) pair under the
    two allocation faults — a one-burst {e alloc-spike} and a sustained
    {e mem-pressure} ramp — on top of the [soft] policy, again demanding
    zero violations: revocation must stay sound while the pacer is
    absorbing injected garbage.

    The summary table pools each bench's pauses across collectors and
    asks whether [auto]'s p99 beats the best fixed trigger; the
    committed baseline gates the total number of losing benches. *)

type policy = {
  p_name : string;
  p_config : Jrt.Pacer.config;
}

let fixed n =
  { p_name = Printf.sprintf "fixed-%d" n;
    p_config = Jrt.Pacer.config_of_trigger n }

let goal g =
  { p_name = Printf.sprintf "goal-%.1f" g;
    p_config = { Jrt.Pacer.default_config with mode = Jrt.Pacer.Goal g } }

let auto =
  { p_name = "auto";
    p_config = { Jrt.Pacer.default_config with mode = Jrt.Pacer.Auto } }

let soft_of ~(limit : int) =
  { p_name = "soft";
    p_config = { Jrt.Pacer.default_config with soft_limit = Some limit } }

let fixed_policies = [ fixed 24; fixed 64; fixed 128 ]

(** The soft-limit fraction of the probe run's peak live size: low
    enough that the run re-crosses it and degrades, high enough that
    boosted collection can get back under it. *)
let soft_limit_pct = 60

type row = {
  bench : string;
  collector : string;
  policy : string;
  stores : int;
  elide_pct : float;
  cycles : int;
  degraded_cycles : int;
  assists : int;
  p50 : int;
  p99 : int;
  max_pause : int;
  mmu_10 : float;
  max_live : int;  (** peak live heap units the pacer observed *)
  violations : int;
  hard_stops : int;  (** 0 or 1; every sweep row must be 0 *)
  pauses : int list;  (** raw pause works, for the summary pooling *)
}

type chaos_row = {
  c_plan : string;
  c_bench : string;
  c_collector : string;
  c_violations : int;
  c_degraded_cycles : int;
  c_injected : int;  (** ballast objects the fault placed *)
  c_hard_stops : int;
}

type summary_row = {
  s_bench : string;
  s_best_fixed : string;  (** name of the winning fixed policy *)
  s_best_fixed_p99 : int;
  s_auto_p99 : int;
  s_auto_win : bool;
}

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

(** Same analysis configuration as E15: null-or-same feeds the deletion
    half, summaries the insertion half; every collector's guard set is
    sound under it. *)
let compile_all () =
  List.map
    (fun w -> Exp.compile ~null_or_same:true ~summaries:true w)
    Workloads.Registry.table1

let gc_of ~(pacing : Jrt.Pacer.config) = function
  | Hybrid.Csatb -> Jrt.Runner.make_satb ~pacing ()
  | Hybrid.Cincr -> Jrt.Runner.make_incr ~pacing ()
  | Hybrid.Cretrace -> Jrt.Runner.make_retrace ~pacing ()
  | Hybrid.Chybrid -> Jrt.Runner.make_hybrid ~pacing ()

let run_one ~(coll : Hybrid.collector) ~(pacing : Jrt.Pacer.config) ?chaos
    ?seed (cw : Exp.compiled_workload) : Jrt.Runner.report =
  Exp.run ~gc:(gc_of ~pacing coll) ~guards:true ~fail_on_thread_error:false
    ?chaos ?seed cw

(** Peak live units of a policy-free run — the yardstick the [soft]
    rows derive their limit from. *)
let probe_peak ~(coll : Hybrid.collector) (cw : Exp.compiled_workload) : int =
  let r = run_one ~coll ~pacing:Jrt.Pacer.default_config cw in
  match r.Jrt.Runner.pacer with
  | Some p -> max 1 p.Jrt.Pacer.p_max_live_units
  | None -> 1

let row_of ~(coll : Hybrid.collector) ~(policy : string)
    (cw : Exp.compiled_workload) (r : Jrt.Runner.report) : row =
  let m = r.Jrt.Runner.machine in
  let sum f =
    Hashtbl.fold (fun _ st acc -> acc + f st) m.Jrt.Interp.stats 0
  in
  let stores = sum (fun st -> st.Jrt.Interp.execs) in
  let elided = sum (fun st -> st.Jrt.Interp.elided_execs) in
  let cycles, violations, pauses =
    match r.Jrt.Runner.gc with
    | Some g ->
        ( g.Jrt.Runner.cycles,
          g.Jrt.Runner.total_violations,
          g.Jrt.Runner.final_pause_works )
    | None -> (0, 0, [])
  in
  let degraded_cycles, assists, max_live =
    match r.Jrt.Runner.pacer with
    | Some p ->
        ( p.Jrt.Pacer.p_degraded_cycles,
          p.Jrt.Pacer.p_assists,
          p.Jrt.Pacer.p_max_live_units )
    | None -> (0, 0, 0)
  in
  let dist = Profile.Stats.dist_of pauses in
  let tl =
    Profile.Stats.timeline_of_summary ~steps:r.Jrt.Runner.steps
      r.Jrt.Runner.gc
  in
  let w10 = max 1 (Profile.Stats.total_time tl / 10) in
  {
    bench = cw.Exp.workload.name;
    collector = Hybrid.collector_name coll;
    policy;
    stores;
    elide_pct = pct elided stores;
    cycles;
    degraded_cycles;
    assists;
    p50 = dist.Profile.Stats.d_p50;
    p99 = dist.Profile.Stats.d_p99;
    max_pause = dist.Profile.Stats.d_max;
    mmu_10 = Profile.Stats.mmu tl ~window:w10;
    max_live;
    violations;
    hard_stops = (match r.Jrt.Runner.hard_stop with Some _ -> 1 | None -> 0);
    pauses;
  }

let add_row (r : row) : row =
  Telemetry.add_row ~table:"pacing"
    [
      ("bench", Telemetry.Str r.bench);
      ("collector", Telemetry.Str r.collector);
      ("policy", Telemetry.Str r.policy);
      ("stores", Telemetry.Int r.stores);
      ("elide_pct", Telemetry.Float r.elide_pct);
      ("cycles", Telemetry.Int r.cycles);
      ("degraded_cycles", Telemetry.Int r.degraded_cycles);
      ("assists", Telemetry.Int r.assists);
      ("p50", Telemetry.Int r.p50);
      ("p99", Telemetry.Int r.p99);
      ("max_pause", Telemetry.Int r.max_pause);
      ("mmu_10", Telemetry.Float r.mmu_10);
      ("max_live", Telemetry.Int r.max_live);
      ("violations", Telemetry.Int r.violations);
      ("hard_stops", Telemetry.Int r.hard_stops);
    ];
  r

let measure () : row list =
  Telemetry.clear_table "pacing";
  let compiled = compile_all () in
  List.concat_map
    (fun (cw : Exp.compiled_workload) ->
      List.concat_map
        (fun coll ->
          let peak = probe_peak ~coll cw in
          let soft = soft_of ~limit:(max 8 (peak * soft_limit_pct / 100)) in
          let policies =
            fixed_policies @ [ goal 1.5; goal 2.0; soft; auto ]
          in
          List.map
            (fun p ->
              add_row
                (row_of ~coll ~policy:p.p_name cw
                   (run_one ~coll ~pacing:p.p_config cw)))
            policies)
        Hybrid.all_collectors)
    compiled

(* ---- chaos sub-sweep ---------------------------------------------------- *)

let chaos_plans : (string * Jrt.Chaos.fault list) list =
  [
    ("alloc-spike", [ Jrt.Chaos.Alloc_spike { at_instr = 800; count = 64 } ]);
    ( "mem-pressure",
      [ Jrt.Chaos.Mem_pressure { at_alloc = 32; per_safepoint = 4; total = 200 } ]
    );
  ]

let measure_chaos ?(seed = 1) () : chaos_row list =
  Telemetry.clear_table "pacing_chaos";
  let compiled = compile_all () in
  List.concat_map
    (fun (plan, faults) ->
      List.concat_map
        (fun (cw : Exp.compiled_workload) ->
          List.map
            (fun coll ->
              let peak = probe_peak ~coll cw in
              let soft =
                soft_of ~limit:(max 8 (peak * soft_limit_pct / 100))
              in
              let chaos =
                Jrt.Chaos.create
                  { Jrt.Chaos.seed; faults; quantum = None; gc_period = None }
              in
              let r =
                run_one ~coll ~pacing:soft.p_config ~chaos ~seed cw
              in
              let violations =
                match r.Jrt.Runner.gc with
                | Some g -> g.Jrt.Runner.total_violations
                | None -> 0
              in
              let degraded =
                match r.Jrt.Runner.pacer with
                | Some p -> p.Jrt.Pacer.p_degraded_cycles
                | None -> 0
              in
              let cs = Jrt.Chaos.stats chaos in
              let row =
                {
                  c_plan = plan;
                  c_bench = cw.Exp.workload.name;
                  c_collector = Hybrid.collector_name coll;
                  c_violations = violations;
                  c_degraded_cycles = degraded;
                  c_injected =
                    cs.Jrt.Chaos.spike_allocs + cs.Jrt.Chaos.ramp_allocs;
                  c_hard_stops =
                    (match r.Jrt.Runner.hard_stop with
                    | Some _ -> 1
                    | None -> 0);
                }
              in
              Telemetry.add_row ~table:"pacing_chaos"
                [
                  ("plan", Telemetry.Str row.c_plan);
                  ("bench", Telemetry.Str row.c_bench);
                  ("collector", Telemetry.Str row.c_collector);
                  ("violations", Telemetry.Int row.c_violations);
                  ("degraded_cycles", Telemetry.Int row.c_degraded_cycles);
                  ("injected", Telemetry.Int row.c_injected);
                  ("hard_stops", Telemetry.Int row.c_hard_stops);
                ];
              row)
            Hybrid.all_collectors)
        compiled)
    chaos_plans

(* ---- the auto-vs-fixed summary ------------------------------------------ *)

let summarize (rows : row list) : summary_row list =
  let benches =
    List.sort_uniq compare (List.map (fun r -> r.bench) rows)
  in
  let pooled_p99 bench policy =
    let pauses =
      List.concat_map
        (fun r ->
          if r.bench = bench && r.policy = policy then r.pauses else [])
        rows
    in
    Profile.Stats.percentile pauses 99.0
  in
  (* A fixed trigger is only a competitor if it actually collects: a
     trigger larger than the workload's whole allocation count runs zero
     cycles on every collector and "wins" on pauses by doing no GC at
     all — the very default-mismatch pathology the goal modes fix. *)
  let qualifies bench policy =
    List.for_all
      (fun r ->
        not (r.bench = bench && r.policy = policy) || r.cycles > 0)
      rows
  in
  let srows =
    List.map
      (fun bench ->
        let candidates =
          match
            List.filter (fun p -> qualifies bench p.p_name) fixed_policies
          with
          | [] -> fixed_policies
          | qs -> qs
        in
        let best_fixed, best_fixed_p99 =
          List.fold_left
            (fun (bn, bp) p ->
              let v = pooled_p99 bench p.p_name in
              if v < bp then (p.p_name, v) else (bn, bp))
            ("?", max_int) candidates
        in
        let auto_p99 = pooled_p99 bench "auto" in
        {
          s_bench = bench;
          s_best_fixed = best_fixed;
          s_best_fixed_p99 = best_fixed_p99;
          s_auto_p99 = auto_p99;
          s_auto_win = auto_p99 <= best_fixed_p99;
        })
      benches
  in
  Telemetry.clear_table "pacing_summary";
  List.iter
    (fun s ->
      Telemetry.add_row ~table:"pacing_summary"
        [
          ("bench", Telemetry.Str s.s_bench);
          ("best_fixed", Telemetry.Str s.s_best_fixed);
          ("best_fixed_p99", Telemetry.Int s.s_best_fixed_p99);
          ("auto_p99", Telemetry.Int s.s_auto_p99);
          ("auto_win", Telemetry.Int (if s.s_auto_win then 1 else 0));
        ])
    srows;
  let losses =
    List.length (List.filter (fun s -> not s.s_auto_win) srows)
  in
  Telemetry.add_row ~table:"pacing_summary"
    [
      ("bench", Telemetry.Str "TOTAL");
      ("auto_losses", Telemetry.Int losses);
    ];
  srows

(* ---- rendering ---------------------------------------------------------- *)

let render (rows : row list) : string =
  let body =
    List.map
      (fun r ->
        [
          r.bench;
          r.collector;
          r.policy;
          Printf.sprintf "%.1f" r.elide_pct;
          string_of_int r.cycles;
          string_of_int r.degraded_cycles;
          string_of_int r.assists;
          string_of_int r.p99;
          Printf.sprintf "%.3f" r.mmu_10;
          string_of_int r.max_live;
          string_of_int r.violations;
          string_of_int r.hard_stops;
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [
        "benchmark";
        "collector";
        "policy";
        "elide%";
        "cycles";
        "degraded";
        "assists";
        "p99";
        "mmu-10%";
        "max-live";
        "violations";
        "hard-stops";
      ]
    ~align:[ Tablefmt.L; L; L; R; R; R; R; R; R; R; R; R ]
    body

let render_chaos (rows : chaos_row list) : string =
  let body =
    List.map
      (fun r ->
        [
          r.c_plan;
          r.c_bench;
          r.c_collector;
          string_of_int r.c_injected;
          string_of_int r.c_degraded_cycles;
          string_of_int r.c_violations;
          string_of_int r.c_hard_stops;
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [
        "plan";
        "benchmark";
        "collector";
        "injected";
        "degraded";
        "violations";
        "hard-stops";
      ]
    ~align:[ Tablefmt.L; L; L; R; R; R; R ]
    body

let render_summary (rows : summary_row list) : string =
  let body =
    List.map
      (fun s ->
        [
          s.s_bench;
          s.s_best_fixed;
          string_of_int s.s_best_fixed_p99;
          string_of_int s.s_auto_p99;
          (if s.s_auto_win then "yes" else "no");
        ])
      rows
  in
  Tablefmt.render
    ~header:[ "benchmark"; "best fixed"; "fixed p99"; "auto p99"; "auto wins" ]
    ~align:[ Tablefmt.L; L; R; R; L ]
    body

let print () =
  let rows = measure () in
  print_endline
    "pacing sweep (all rows must show 0 violations and 0 hard stops; \
     'soft' rows must degrade, not die):";
  print_endline (render rows);
  print_endline "";
  print_endline "auto vs best fixed trigger (pauses pooled per bench):";
  print_endline (render_summary (summarize rows));
  print_endline "";
  print_endline
    "chaos allocation faults on top of the soft limit (0 violations \
     required):";
  print_endline (render_chaos (measure_chaos ()))
