(** E1 — reproduction of the paper's Table 1 (dynamic analysis results).

    For each benchmark: total dynamic barrier executions, the percentage
    the analysis eliminates, the potentially-pre-null upper bound measured
    by the interpreter's instrumentation, the field/array store split, and
    the per-kind elimination rates.  The paper's values are printed
    underneath each measured row for side-by-side comparison; absolute
    totals differ (our workloads are synthetic and far smaller), the
    {e shape} is what must match. *)

type row = {
  name : string;
  dyn : Jrt.Interp.dyn_stats;
  paper : Workloads.Spec.paper_row option;
}

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let measure ?(inline_limit = 100) (w : Workloads.Spec.t) : row =
  let cw = Exp.compile ~inline_limit w in
  let report = Exp.run ~gc:(Jrt.Runner.make_satb ()) cw in
  (match report.gc with
  | Some g when g.total_violations > 0 ->
      Fmt.failwith "%s: SATB invariant violated under analysis policy" w.name
  | Some _ | None -> ());
  let d = report.dyn in
  (* the shared row table is the single source of truth behind both the
     rendered table and the BENCH_table1.json artifact *)
  Telemetry.add_row ~table:"table1"
    [
      ("benchmark", Telemetry.Str w.name);
      ("total_execs", Telemetry.Int d.total_execs);
      ("elided_execs", Telemetry.Int d.elided_execs);
      ("elim_pct", Telemetry.Float (pct d.elided_execs d.total_execs));
      ("field_execs", Telemetry.Int d.field_execs);
      ("field_elided", Telemetry.Int d.field_elided);
      ("array_execs", Telemetry.Int d.array_execs);
      ("array_elided", Telemetry.Int d.array_elided);
      ("static_execs", Telemetry.Int d.static_execs);
      ("analysis_seconds", Telemetry.Float cw.Exp.compiled.analysis_seconds);
      ("inline_seconds", Telemetry.Float cw.Exp.compiled.inline_seconds);
    ];
  { name = w.name; dyn = report.dyn; paper = w.paper_row }

let rows ?inline_limit () : row list =
  Telemetry.clear_table "table1";
  List.map (measure ?inline_limit) Workloads.Registry.table1

let render (rows : row list) : string =
  let pct = Tablefmt.pct in
  let body =
    List.concat_map
      (fun r ->
        let d = r.dyn in
        let field_pct =
          (* the paper's split covers field vs array stores; our handful
             of static stores are excluded from the ratio *)
          let fa = d.field_execs + d.array_execs in
          if fa = 0 then 0
          else
            int_of_float
              (float_of_int d.field_execs /. float_of_int fa *. 100. +. 0.5)
        in
        let measured =
          [
            r.name;
            string_of_int d.total_execs;
            pct d.elided_execs d.total_execs;
            pct d.pot_pre_null_execs d.total_execs;
            Printf.sprintf "%d/%d" field_pct (100 - field_pct);
            pct d.field_elided d.field_execs;
            pct d.array_elided d.array_execs;
          ]
        in
        let paper =
          match r.paper with
          | None -> []
          | Some p ->
              [
                [
                  "  (paper)";
                  Printf.sprintf "%.1fM" p.p_total_millions;
                  Tablefmt.f1 p.p_elim_pct;
                  Tablefmt.f1 p.p_pot_pre_null_pct;
                  Printf.sprintf "%d/%d" p.p_field_pct (100 - p.p_field_pct);
                  Tablefmt.f1 p.p_field_elim_pct;
                  Tablefmt.f1 p.p_array_elim_pct;
                ];
              ]
        in
        measured :: paper)
      rows
  in
  Tablefmt.render
    ~header:
      [
        "benchmark";
        "total";
        "% elim";
        "% pot pre-null";
        "field/array";
        "field % elim";
        "array % elim";
      ]
    ~align:[ Tablefmt.L; R; R; R; R; R; R ]
    body

let print () = print_endline (render (rows ()))
