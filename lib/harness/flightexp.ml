(** E18 — flight recorder walkthrough + overhead.  See flightexp.mli. *)

type row = {
  bench : string;
  steps : int;
  on_steps_s : float;
  off_steps_s : float;
  overhead_pct : float;
  events : int;
}

(* ---- timeline walkthrough ----------------------------------------------- *)

(* The E11 revocation scenario: db compiled with move-down + swap, run
   under the retrace collector with guards wired and a late-spawn fault
   that breaks the single-mutator assumption mid-run — so the dump holds
   mark cycles, a chaos fault, revocations with guard provenance and the
   per-site lifecycle, all on one deterministic step axis. *)
let walkthrough () : string =
  let cw = Exp.compile ~move_down:true ~swap:true Workloads.Db.t in
  let chaos =
    Jrt.Chaos.create
      {
        Jrt.Chaos.seed = 1;
        faults = [ Jrt.Chaos.Late_spawn { at_instr = 1000; stores = 4 } ];
        quantum = None;
        gc_period = None;
      }
  in
  ignore
    (Exp.run
       ~gc:(Jrt.Runner.make_retrace ~trigger_allocs:24 ())
       ~guards:true ~chaos ~fail_on_thread_error:false cw);
  (* the ring still holds this run (the next begin_run resets it); the
     dump -> parse -> render round trip is exactly what `satbelim
     timeline` performs on an auto-captured FLIGHT_dump.json *)
  match Flight.parse_dump (Flight.dump_json ~reason:"walkthrough") with
  | Ok d -> Flight.render_timeline d
  | Error e -> Fmt.failwith "E18 walkthrough: dump does not parse back: %s" e

(* ---- overhead ------------------------------------------------------------ *)

(* Same cadence and mutator-time accounting as E17: coarse safepoints so
   dispatch (and any recording on it) isn't drowned by engine-invariant
   safepoint work, loop_s minus gc_s so collector work is excluded.

   The estimator has to resolve a sub-2% effect against shared-runner
   noise whose slow drift alone is several percent.  Single runs are
   ~0.1-0.5ms, so the two arms are interleaved run-by-run (drift hits
   both equally), the within-pair order alternates (no warmth bias), and
   each arm is summarized by its MEDIAN per-run mutator time (scheduler
   spikes land in the tail).  A/A calibration of this estimator stays
   within +/-1.4% where best-of-trials throughput swung +/-7%. *)
let measure_one ~min_seconds ~min_pairs (w : Workloads.Spec.t) : row =
  let cw = Exp.compile w in
  let gc = Jrt.Runner.make_satb () in
  let mutator_s (r : Jrt.Runner.report) =
    r.Jrt.Runner.loop_s -. r.Jrt.Runner.gc_s
  in
  Fun.protect ~finally:(fun () -> Flight.set_enabled true) @@ fun () ->
  let timed enabled =
    Flight.set_enabled enabled;
    let r =
      Exp.run ~gc ~engine:`Threaded ~quantum:Engines.bench_quantum
        ~gc_period:Engines.bench_gc_period cw
    in
    (r, mutator_s r)
  in
  let r0, _ = timed true in
  let steps = r0.Jrt.Runner.steps in
  let events = Flight.recorded () in
  let t_on = ref [] and t_off = ref [] in
  let acc = ref 0.0 and n = ref 0 in
  while !acc < min_seconds || !n < min_pairs do
    let on, off =
      if !n mod 2 = 0 then
        let _, a = timed true in
        let _, b = timed false in
        (a, b)
      else
        let _, b = timed false in
        let _, a = timed true in
        (a, b)
    in
    acc := !acc +. on +. off;
    t_on := on :: !t_on;
    t_off := off :: !t_off;
    incr n
  done;
  let median l =
    let s = List.sort compare l in
    List.nth s (List.length s / 2)
  in
  let med_on = median !t_on and med_off = median !t_off in
  let overhead_pct =
    if med_off <= 0.0 then 0.0 else 100.0 *. (med_on -. med_off) /. med_off
  in
  let per_sec t = if t <= 0.0 then 0.0 else float_of_int steps /. t in
  let r =
    {
      bench = w.name;
      steps;
      on_steps_s = per_sec med_on;
      off_steps_s = per_sec med_off;
      overhead_pct;
      events;
    }
  in
  Telemetry.add_row ~table:"flight"
    [
      ("benchmark", Telemetry.Str r.bench);
      ("steps", Telemetry.Int r.steps);
      ("on_steps_s", Telemetry.Float r.on_steps_s);
      ("off_steps_s", Telemetry.Float r.off_steps_s);
      ("overhead_pct", Telemetry.Float r.overhead_pct);
      ("events", Telemetry.Int r.events);
    ];
  r

let measure ?(min_seconds = 0.6) ?(min_pairs = 50) () : row list =
  Telemetry.clear_table "flight";
  List.map (measure_one ~min_seconds ~min_pairs) Workloads.Registry.table1

(* ---- rendering ----------------------------------------------------------- *)

let render (rows : row list) : string =
  let body =
    List.map
      (fun r ->
        [
          r.bench;
          string_of_int r.steps;
          string_of_int r.events;
          Printf.sprintf "%.0f" r.off_steps_s;
          Printf.sprintf "%.0f" r.on_steps_s;
          Printf.sprintf "%.2f" r.overhead_pct;
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [
        "benchmark";
        "steps/run";
        "events/run";
        "recorder off steps/s";
        "recorder on steps/s";
        "overhead %";
      ]
    ~align:[ Tablefmt.L; R; R; R; R; R ]
    body

let print () =
  print_endline
    "timeline walkthrough: db under retrace, late-spawn chaos, guards \
     wired (dump -> parse -> reconstruct, as `satbelim timeline` does):";
  print_endline (walkthrough ());
  print_endline
    "recorder overhead, threaded engine at the E17 bench cadence (gated \
     at <2%):";
  print_endline (render (measure ()))
