(** E19 — the heap-state observatory: census/retention walkthrough on
    db, the six-workload barrier-float table, and the census overhead
    measurement behind the <3% gate.  See heapexp.mli. *)

type float_row = {
  bench : string;
  collector : string;
  cycles : int;
  float_objs : int;
  float_units : int;
  float_pct : float;
  trace_u : int;
  log_u : int;
  alloc_u : int;
  repair_u : int;
}

type overhead_row = {
  ov_bench : string;
  ov_steps : int;
  ov_cycles : int;
  on_steps_s : float;
  off_steps_s : float;
  overhead_pct : float;
}

(* ---- walkthrough --------------------------------------------------------- *)

(* What `satbelim heap --workload db` shows, produced in-process: the
   final-heap census, the dominator retention report, and the per-cycle
   float accounting under the SATB collector.  Fully deterministic. *)
let walkthrough () : string =
  let cw = Exp.compile Workloads.Db.t in
  let obs = Heapscope.Observatory.create () in
  let r =
    Exp.run
      ~gc:(Jrt.Runner.make_satb ())
      ~engine:`Interp
      ~observer:(Heapscope.Observatory.observe obs)
      cw
  in
  let m = r.Jrt.Runner.machine in
  String.concat "\n"
    [
      "final-heap allocation-site census (db under satb):";
      Heapscope.Observatory.render_census ~top:8
        (Heapscope.Census.of_heap m.Jrt.Interp.heap);
      "dominator retention:";
      Heapscope.Observatory.render_retainers ~top:8 m;
      "barrier-float accounting:";
      Heapscope.Observatory.render_float obs;
    ]

(* ---- the six-workload float table ---------------------------------------- *)

let collectors =
  [
    ("satb", fun () -> Jrt.Runner.make_satb ());
    ("incr", fun () -> Jrt.Runner.make_incr ());
    ("retrace", fun () -> Jrt.Runner.make_retrace ());
    ("hybrid", fun () -> Jrt.Runner.make_hybrid ());
  ]

(* Float counts are pure simulation state — pinned to the interpreter
   engine (the threaded engine is state-identical anyway, E17) so the
   table is byte-deterministic and the gate can diff it exactly. *)
let measure_one (w : Workloads.Spec.t) : float_row list =
  let cw = Exp.compile w in
  List.map
    (fun (cname, mk) ->
      let obs = Heapscope.Observatory.create () in
      ignore
        (Exp.run ~gc:(mk ()) ~engine:`Interp
           ~observer:(Heapscope.Observatory.observe obs)
           cw);
      let cycles = Heapscope.Observatory.cycles obs in
      let fo, fu = Heapscope.Observatory.float_totals obs in
      let live_u =
        List.fold_left
          (fun acc c -> acc + c.Heapscope.Observatory.cs_live_units)
          0 cycles
      in
      let ou = Heapscope.Observatory.origin_unit_totals obs in
      let r =
        {
          bench = w.name;
          collector = cname;
          cycles = List.length cycles;
          float_objs = fo;
          float_units = fu;
          float_pct =
            (if live_u = 0 then 0.0
             else 100.0 *. float_of_int fu /. float_of_int live_u);
          trace_u = ou.(Jrt.Heap.origin_trace);
          log_u = ou.(Jrt.Heap.origin_log);
          alloc_u = ou.(Jrt.Heap.origin_alloc);
          repair_u = ou.(Jrt.Heap.origin_repair);
        }
      in
      Telemetry.add_row ~table:"heap"
        [
          ("bench", Telemetry.Str r.bench);
          ("collector", Telemetry.Str r.collector);
          ("cycles", Telemetry.Int r.cycles);
          ("float_objs", Telemetry.Int r.float_objs);
          ("float_units", Telemetry.Int r.float_units);
          ("float_pct", Telemetry.Float r.float_pct);
          ("trace_units", Telemetry.Int r.trace_u);
          ("log_units", Telemetry.Int r.log_u);
          ("alloc_units", Telemetry.Int r.alloc_u);
          ("repair_units", Telemetry.Int r.repair_u);
        ];
      r)
    collectors

let measure () : float_row list =
  Telemetry.clear_table "heap";
  List.concat_map measure_one Workloads.Registry.table1

(* ---- census overhead ------------------------------------------------------ *)

(* The ON arm is the always-on census telemetry path ([census_tick]:
   census + event + ring record, plus the armed verdict log) — the full
   oracle-sweep diagnostic is `satbelim heap`'s per-invocation cost,
   not a per-run tax, so it is not what the gate ceilings.

   The E18 differential estimator cannot resolve this effect: the hook
   runs inside the safepoint, so the arms must be compared on TOTAL
   loop time, whose run-to-run noise on these sub-millisecond runs is
   several times the true cost (a NO-OP observer reads anywhere from
   -5% to +19% on it).  Instead the hook is timed directly — per-run
   census seconds, summed inside the observer — and reported against
   the median loop time of interleaved observer-free runs.  What direct
   timing cannot see (the observer call indirection and the armed
   verdict log's accumulation inside marking) is indistinguishable from
   zero under the differential estimator, so the hook time is the
   measurable cost. *)
let measure_overhead_one ~min_seconds ~min_pairs (w : Workloads.Spec.t) :
    overhead_row =
  let cw = Exp.compile w in
  let ticks = ref 0 in
  let census_s = ref 0.0 in
  let timed on =
    census_s := 0.0;
    let observer =
      if on then
        Some
          (fun m ->
            incr ticks;
            let t0 = Telemetry.now_s () in
            Heapscope.Observatory.census_tick m;
            census_s := !census_s +. (Telemetry.now_s () -. t0))
      else None
    in
    let r =
      Exp.run
        ~gc:(Jrt.Runner.make_satb ())
        ~engine:`Threaded ~quantum:Engines.bench_quantum
        ~gc_period:Engines.bench_gc_period ?observer cw
    in
    (r, r.Jrt.Runner.loop_s, !census_s)
  in
  ticks := 0;
  let r0, _, _ = timed true in
  let steps = r0.Jrt.Runner.steps in
  let n_cycles = !ticks in
  let t_on = ref [] and t_off = ref [] and t_census = ref [] in
  let acc = ref 0.0 and n = ref 0 in
  while !acc < min_seconds || !n < min_pairs do
    let on, off, census =
      if !n mod 2 = 0 then
        let _, a, c = timed true in
        let _, b, _ = timed false in
        (a, b, c)
      else
        let _, b, _ = timed false in
        let _, a, c = timed true in
        (a, b, c)
    in
    acc := !acc +. on +. off;
    t_on := on :: !t_on;
    t_off := off :: !t_off;
    t_census := census :: !t_census;
    incr n
  done;
  let median l =
    let s = List.sort compare l in
    List.nth s (List.length s / 2)
  in
  let med_on = median !t_on
  and med_off = median !t_off
  and med_census = median !t_census in
  let overhead_pct =
    if med_off <= 0.0 then 0.0 else 100.0 *. med_census /. med_off
  in
  let per_sec t = if t <= 0.0 then 0.0 else float_of_int steps /. t in
  let r =
    {
      ov_bench = w.name;
      ov_steps = steps;
      ov_cycles = n_cycles;
      on_steps_s = per_sec med_on;
      off_steps_s = per_sec med_off;
      overhead_pct;
    }
  in
  Telemetry.add_row ~table:"heap_overhead"
    [
      ("benchmark", Telemetry.Str r.ov_bench);
      ("steps", Telemetry.Int r.ov_steps);
      ("cycles", Telemetry.Int r.ov_cycles);
      ("off_steps_s", Telemetry.Float r.off_steps_s);
      ("on_steps_s", Telemetry.Float r.on_steps_s);
      ("overhead_pct", Telemetry.Float r.overhead_pct);
    ];
  r

let measure_overhead ?(min_seconds = 0.6) ?(min_pairs = 50) () :
    overhead_row list =
  Telemetry.clear_table "heap_overhead";
  List.map
    (measure_overhead_one ~min_seconds ~min_pairs)
    Workloads.Registry.table1

(* ---- rendering ------------------------------------------------------------ *)

let render_float_table (rows : float_row list) : string =
  let body =
    List.map
      (fun r ->
        [
          r.bench;
          r.collector;
          string_of_int r.cycles;
          string_of_int r.float_objs;
          string_of_int r.float_units;
          Printf.sprintf "%.1f" r.float_pct;
          string_of_int r.trace_u;
          string_of_int r.log_u;
          string_of_int r.alloc_u;
          string_of_int r.repair_u;
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [
        "benchmark";
        "collector";
        "cycles";
        "float objs";
        "float units";
        "float %";
        "trace_u";
        "log_u";
        "alloc_u";
        "repair_u";
      ]
    ~align:[ Tablefmt.L; L; R; R; R; R; R; R; R; R ]
    body

let render_overhead (rows : overhead_row list) : string =
  let body =
    List.map
      (fun r ->
        [
          r.ov_bench;
          string_of_int r.ov_steps;
          string_of_int r.ov_cycles;
          Printf.sprintf "%.0f" r.off_steps_s;
          Printf.sprintf "%.0f" r.on_steps_s;
          Printf.sprintf "%.2f" r.overhead_pct;
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [
        "benchmark";
        "steps/run";
        "cycles/run";
        "observatory off steps/s";
        "observatory on steps/s";
        "overhead %";
      ]
    ~align:[ Tablefmt.L; R; R; R; R; R ]
    body

let print () =
  print_endline
    "observatory walkthrough (what `satbelim heap --workload db` reports):";
  print_endline (walkthrough ());
  print_endline
    "barrier float across the Table 1 workloads, per collector (float = \
     survivors the exact-reachability oracle does not reach, attributed \
     to the mark origin that kept them):";
  print_endline (render_float_table (measure ()));
  print_endline
    "observatory overhead, threaded engine at the E17 bench cadence \
     (gated at <3%):";
  print_endline (render_overhead (measure_overhead ()))
