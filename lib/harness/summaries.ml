(** E12 — interprocedural callee summaries vs the inline limit.

    The paper ties analysis effectiveness to the inliner: Figure 2 shows
    the elimination rate collapsing as the inline limit shrinks, because
    every surviving [Invoke] havocs the abstract state.  The summary
    engine ({!Satb_core.Summary}) decouples the two — callee effects are
    applied from compositional summaries instead — so this experiment
    re-runs the Figure 2 sweep with summaries off and on.  The headline
    is the limit-0 column: with inlining disabled entirely, summaries
    must recover elisions the havoc transfer cannot (and may never lose
    one — the summary transfer refines havoc pointwise).

    Summary-dependent elisions rest on the closed-world assumption, so
    the second half is a chaos sweep: class-load faults (alone, mixed
    with late spawns, and inside seeded benign plans) against
    summary-compiled workloads with guards wired.  The [Closed_world]
    revocation must patch the dependent sites back before the snapshot
    can break: every run violation-free. *)

let limits = [ 0; 25; 50; 100 ]

type point = {
  bench : string;
  limit : int;
  static_off : int;
  static_on : int;
  elim_off : float;
  elim_on : float;
  sum_methods : int;
  sum_havoced : int;
}

type chaos_row = {
  c_bench : string;
  c_plan : string;
  c_seed : int;
  c_violations : int;
  c_revocations : int;
  c_revoked_sites : int;
  c_class_loads : int;
}

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let measure_one (w : Workloads.Spec.t) ~limit : point =
  let off = Exp.compile ~inline_limit:limit ~summaries:false w in
  let on = Exp.compile ~inline_limit:limit ~summaries:true w in
  let stat cw = (Satb_core.Driver.static_stats cw.Exp.compiled).elided_sites in
  let elim cw =
    let r = Exp.run cw in
    pct r.Jrt.Runner.dyn.elided_execs r.Jrt.Runner.dyn.total_execs
  in
  let sum_methods, sum_havoced =
    match on.Exp.compiled.summaries with
    | Some tbl -> (Satb_core.Summary.n_methods tbl, Satb_core.Summary.n_havoced tbl)
    | None -> (0, 0)
  in
  let p =
    {
      bench = w.name;
      limit;
      static_off = stat off;
      static_on = stat on;
      elim_off = elim off;
      elim_on = elim on;
      sum_methods;
      sum_havoced;
    }
  in
  (* field names match the BENCH_fig2.json artifact, which is generated
     straight from this table *)
  Telemetry.add_row ~table:"fig2_summaries"
    [
      ("benchmark", Telemetry.Str p.bench);
      ("inline_limit", Telemetry.Int p.limit);
      ("static_elided_havoc", Telemetry.Int p.static_off);
      ("static_elided_summaries", Telemetry.Int p.static_on);
      ("elim_pct_havoc", Telemetry.Float p.elim_off);
      ("elim_pct_summaries", Telemetry.Float p.elim_on);
      ("summary_methods", Telemetry.Int p.sum_methods);
      ("summary_havoced", Telemetry.Int p.sum_havoced);
    ];
  p

let measure () : point list =
  Telemetry.clear_table "fig2_summaries";
  List.concat_map
    (fun w -> List.map (fun limit -> measure_one w ~limit) limits)
    Workloads.Registry.table1

(** The chaos sweep: summary-compiled at inline limit 0, guards wired,
    plain SATB collector.  [seeded] exercises {!Jrt.Chaos.of_seed}'s
    benign mix (which may or may not include a class load). *)
let chaos_plans ~seed : (string * Jrt.Chaos.plan) list =
  [
    ( "class-load",
      {
        Jrt.Chaos.seed;
        faults = [ Jrt.Chaos.Class_load { at_instr = 800 } ];
        quantum = None;
        gc_period = None;
      } );
    ( "load+spawn",
      {
        Jrt.Chaos.seed;
        faults =
          [
            Jrt.Chaos.Class_load { at_instr = 600 };
            Jrt.Chaos.Late_spawn { at_instr = 1000; stores = 3 };
          ];
        quantum = None;
        gc_period = None;
      } );
    ("seeded", Jrt.Chaos.of_seed seed);
  ]

let measure_chaos ?(seeds = [ 1; 2; 3 ]) () : chaos_row list =
  Telemetry.clear_table "summaries_chaos";
  let compiled =
    List.map
      (fun w -> Exp.compile ~inline_limit:0 ~summaries:true w)
      Workloads.Registry.table1
  in
  List.concat_map
    (fun seed ->
      List.concat_map
        (fun (plan_name, plan) ->
          List.map
            (fun (cw : Exp.compiled_workload) ->
              let chaos = Jrt.Chaos.create plan in
              let r =
                Exp.run
                  ~gc:(Jrt.Runner.make_satb ~trigger_allocs:24 ())
                  ~guards:true ~chaos ~fail_on_thread_error:false ~seed cw
              in
              let violations =
                match r.gc with Some g -> g.total_violations | None -> 0
              in
              let s = Jrt.Chaos.stats chaos in
              Telemetry.add_row ~table:"summaries_chaos"
                [
                  ("benchmark", Telemetry.Str cw.Exp.workload.name);
                  ("plan", Telemetry.Str plan_name);
                  ("seed", Telemetry.Int seed);
                  ("violations", Telemetry.Int violations);
                  ( "revocations",
                    Telemetry.Int r.machine.Jrt.Interp.revocation_events );
                  ( "revoked_sites",
                    Telemetry.Int r.machine.Jrt.Interp.revoked_sites );
                  ("class_loads", Telemetry.Int s.Jrt.Chaos.class_loads);
                ];
              {
                c_bench = cw.Exp.workload.name;
                c_plan = plan_name;
                c_seed = seed;
                c_violations = violations;
                c_revocations = r.machine.Jrt.Interp.revocation_events;
                c_revoked_sites = r.machine.Jrt.Interp.revoked_sites;
                c_class_loads = s.Jrt.Chaos.class_loads;
              })
            compiled)
        (chaos_plans ~seed))
    seeds

let render (points : point list) : string =
  let buf = Buffer.create 1024 in
  let benches =
    List.sort_uniq compare (List.map (fun p -> p.bench) points)
  in
  List.iter
    (fun bench ->
      let mine = List.filter (fun p -> p.bench = bench) points in
      (match mine with
      | p :: _ ->
          Buffer.add_string buf
            (Printf.sprintf "%s (summaries: %d methods, %d havoced):\n" bench
               p.sum_methods p.sum_havoced)
      | [] -> ());
      let rows =
        List.map
          (fun p ->
            [
              string_of_int p.limit;
              string_of_int p.static_off;
              string_of_int p.static_on;
              Tablefmt.f1 p.elim_off;
              Tablefmt.f1 p.elim_on;
            ])
          (List.sort (fun a b -> compare a.limit b.limit) mine)
      in
      Buffer.add_string buf
        (Tablefmt.render
           ~header:
             [
               "inline limit";
               "elided (havoc)";
               "elided (summ)";
               "elim% (havoc)";
               "elim% (summ)";
             ]
           ~align:[ Tablefmt.R; R; R; R; R ]
           rows);
      Buffer.add_string buf "\n\n")
    benches;
  Buffer.contents buf

let render_chaos (rows : chaos_row list) : string =
  let body =
    List.map
      (fun r ->
        [
          r.c_plan;
          r.c_bench;
          string_of_int r.c_seed;
          string_of_int r.c_violations;
          string_of_int r.c_class_loads;
          string_of_int r.c_revocations;
          string_of_int r.c_revoked_sites;
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [
        "plan";
        "benchmark";
        "seed";
        "violations";
        "class loads";
        "revocations";
        "sites";
      ]
    ~align:[ Tablefmt.L; L; R; R; R; R; R ]
    body

let print () =
  let points = measure () in
  print_endline (render points);
  let gained =
    List.filter (fun p -> p.limit = 0 && p.static_on > p.static_off) points
  in
  Printf.printf
    "limit 0: summaries add elided sites on %d/%d benchmarks (+%d sites \
     total)\n\n"
    (List.length gained)
    (List.length (List.filter (fun p -> p.limit = 0) points))
    (List.fold_left (fun a p -> a + p.static_on - p.static_off) 0 gained);
  print_endline
    "closed-world chaos (every row must show 0 violations; class loads \
     revoke):";
  print_endline (render_chaos (measure_chaos ()))
