(** Shared plumbing for the experiments: compile a workload at a given
    analysis configuration and run it under the instrumented runtime. *)

type compiled_workload = {
  workload : Workloads.Spec.t;
  compiled : Satb_core.Driver.compiled;
}

let compile ?(inline_limit = 100) ?(mode = Satb_core.Analysis.A)
    ?(null_or_same = false) ?(move_down = false) ?(swap = false)
    ?(summaries = false) (w : Workloads.Spec.t) : compiled_workload =
  let prog = Workloads.Spec.parse w in
  let conf =
    {
      Satb_core.Analysis.default_config with
      mode;
      null_or_same;
      move_down;
      swap;
      summaries;
    }
  in
  { workload = w; compiled = Satb_core.Driver.compile ~inline_limit ~conf prog }

(** Barrier policy from the analysis verdicts. *)
let policy_of (cw : compiled_workload) : Jrt.Interp.barrier_policy =
 fun c m pc ->
  not
    (Satb_core.Driver.needs_barrier cw.compiled
       { sk_class = c; sk_method = m; sk_pc = pc })

(** Tracing-state-check sites from the analysis verdicts (swap pairs). *)
let retrace_policy_of (cw : compiled_workload) : Jrt.Interp.retrace_policy =
 fun c m pc ->
  match
    Satb_core.Driver.retrace_check cw.compiled
      { sk_class = c; sk_method = m; sk_pc = pc }
  with
  | `Open -> Jrt.Interp.Check_open
  | `Close -> Jrt.Interp.Check_close
  | `None -> Jrt.Interp.No_check

let assumption_to_runtime :
    Satb_core.Driver.assumption -> Jrt.Interp.assumption = function
  | Satb_core.Driver.Single_mutator -> Jrt.Interp.Single_mutator
  | Satb_core.Driver.Retrace_collector -> Jrt.Interp.Retrace_collector
  | Satb_core.Driver.Descending_scan -> Jrt.Interp.Descending_scan
  | Satb_core.Driver.Mode_a -> Jrt.Interp.Mode_a
  | Satb_core.Driver.Closed_world -> Jrt.Interp.Closed_world

(** The per-site guard table from the compiler's assumption metadata. *)
let guard_policy_of (cw : compiled_workload) : Jrt.Interp.guard_policy =
 fun c m pc ->
  List.map assumption_to_runtime
    (Satb_core.Driver.site_assumptions cw.compiled
       { sk_class = c; sk_method = m; sk_pc = pc })

(** Per-site split verdicts for the hybrid (deletion + insertion)
    barrier, from the compiler's half-verdict tables.  Each half carries
    its own guard set so revocation can restore one half while the other
    stays elided. *)
let half_policy_of (cw : compiled_workload) : Jrt.Interp.half_policy =
 fun c m pc ->
  let key =
    { Satb_core.Driver.sk_class = c; sk_method = m; sk_pc = pc }
  in
  match Satb_core.Driver.hybrid_verdict cw.compiled key with
  | `Keep -> Jrt.Interp.keep_both
  | (`Elide_deletion | `Elide_insertion | `Elide_both) as hv ->
      let del = hv = `Elide_deletion || hv = `Elide_both in
      let ins = hv = `Elide_insertion || hv = `Elide_both in
      {
        Jrt.Interp.hs_del_elide = del;
        hs_ins_elide = ins;
        hs_ins_repair =
          ins && Satb_core.Driver.ins_repair_needed cw.compiled key;
        hs_del_guards =
          (if del then
             List.map assumption_to_runtime
               (Satb_core.Driver.site_assumptions cw.compiled key)
           else []);
        hs_ins_guards =
          (if ins then
             List.map assumption_to_runtime
               (Satb_core.Driver.ins_site_assumptions cw.compiled key)
           else []);
      }

(** Elision provenance, so runtime revocation events can name the
    original justification of each site they patch. *)
let explain_policy_of (cw : compiled_workload) : Jrt.Interp.explain_policy =
 fun c m pc ->
  Satb_core.Driver.justification cw.compiled
    { sk_class = c; sk_method = m; sk_pc = pc }

(** Session-wide default execution engine, so `bench --engine threaded`
    (and the CI both-engines tier-1 lever) can retarget every experiment
    without threading a parameter through each call site. *)
(* initial value honours SATB_ENGINE=threaded so CI can re-run the whole
   tier-1 suite on the compiled engine without touching any test *)
let default_engine : [ `Interp | `Threaded ] ref =
  ref
    (match Sys.getenv_opt "SATB_ENGINE" with
    | Some "threaded" -> `Threaded
    | Some _ | None -> `Interp)

let run ?(gc = Jrt.Runner.No_gc) ?(satb_mode = Jrt.Barrier_cost.Conditional)
    ?(use_policy = true) ?(guards = false) ?(revoke = true) ?chaos
    ?retrace_budget ?(fail_on_thread_error = true) ?(seed = 0) ?quantum
    ?gc_period ?engine ?observer (cw : compiled_workload) : Jrt.Runner.report =
  let engine = match engine with Some e -> e | None -> !default_engine in
  let policy =
    if use_policy then policy_of cw else Jrt.Interp.keep_all_policy
  in
  let retrace =
    if use_policy then retrace_policy_of cw else Jrt.Interp.no_retrace_checks
  in
  (* The hybrid collector switches the interpreter to the split-verdict
     barrier; the half policy carries each half's guards itself. *)
  let barrier_flavor =
    match gc with
    | Jrt.Runner.Hybrid _ -> `Hybrid
    | _ -> Jrt.Interp.default_config.barrier_flavor
  in
  let halves =
    match gc with
    | Jrt.Runner.Hybrid _ when use_policy -> half_policy_of cw
    | _ -> Jrt.Interp.no_halves
  in
  (* Guards are opt-in: several negative soundness tests deliberately run
     unsound policy/collector combinations to show the oracle catching
     them, which wired guards would (correctly) neutralize. *)
  let cfg =
    if guards then
      {
        Jrt.Interp.default_config with
        policy;
        satb_mode;
        retrace;
        barrier_flavor;
        halves;
        guards = guard_policy_of cw;
        explain = explain_policy_of cw;
        revoke;
      }
    else
      {
        Jrt.Interp.default_config with
        policy;
        satb_mode;
        retrace;
        barrier_flavor;
        halves;
        revoke;
      }
  in
  let report =
    Jrt.Runner.run ~cfg ~gc ~engine ~seed ?quantum ?gc_period ?chaos
      ?retrace_budget ?observer cw.compiled.program ~entry:cw.workload.entry
  in
  (if fail_on_thread_error then
     match report.thread_errors with
     | [] -> ()
     | (tid, e) :: _ ->
         Fmt.failwith "workload %s: thread %d died: %s" cw.workload.name tid e);
  report
