(** E15 — the Go-style hybrid write barrier: per-collector, per-half
    dynamic elision across the Table 1 workloads, and a chaos soundness
    sweep under the hybrid collector with guards and revocation on.
    See the implementation header for the full experimental setup. *)

type collector = Csatb | Cincr | Cretrace | Chybrid

val collector_name : collector -> string
val all_collectors : collector list

type row = {
  bench : string;
  collector : string;
  stores : int;
  del_elided : int;  (** deletion-half elided executions *)
  del_paid : int;
  ins_elided : int;  (** insertion-half elided executions *)
  ins_paid : int;
  both_elided : int;  (** executions with both halves elided *)
  del_elide_pct : float;
  ins_elide_pct : float;
  both_elide_pct : float;
  cycles : int;
  violations : int;
}

type chaos_row = {
  c_plan : string;
  c_bench : string;
  c_violations : int;  (** must be 0: revocation repairs every plan *)
  c_revocations : int;
  c_revoked_sites : int;
  c_rescans : int;  (** remark-time repair re-scans *)
}

val measure : unit -> row list
(** The elision table: four collectors crossed with the six workloads;
    populates the ["hybrid"] telemetry table (gated per-half by the
    bench regression gate). *)

val measure_chaos : ?seed:int -> unit -> chaos_row list
(** The soundness sweep: late-spawn, barrier-skip and class-load fault
    plans under the hybrid collector; populates ["hybrid_chaos"]. *)

val render : row list -> string
val render_chaos : chaos_row list -> string
val print : unit -> unit
