(** E12 — interprocedural callee summaries vs the inline limit: the
    Figure 2 sweep re-run with summaries on and off, plus the
    closed-world chaos sweep (class-load faults must revoke
    summary-dependent elisions, never break the snapshot). *)

type point = {
  bench : string;
  limit : int;
  static_off : int;  (** elided sites, blanket Invoke havoc *)
  static_on : int;  (** elided sites, callee summaries consulted *)
  elim_off : float;  (** dynamic elimination %, havoc *)
  elim_on : float;  (** dynamic elimination %, summaries *)
  sum_methods : int;  (** methods summarized *)
  sum_havoced : int;  (** summaries widened to havoc *)
}

type chaos_row = {
  c_bench : string;
  c_plan : string;
  c_seed : int;
  c_violations : int;  (** snapshot-oracle violations; must be 0 *)
  c_revocations : int;  (** assumptions revoked at runtime *)
  c_revoked_sites : int;  (** sites patched back to full barriers *)
  c_class_loads : int;  (** chaos class-load announcements *)
}

val limits : int list

val measure : unit -> point list
(** The inline-limit sweep, summaries off vs on, over the Table 1
    workloads.  Summaries may only add elisions: [static_on >=
    static_off] on every point. *)

val measure_chaos : ?seeds:int list -> unit -> chaos_row list
(** Class-load (and mixed) fault plans against summary-compiled
    workloads at inline limit 0 with guards wired: the [Closed_world]
    revocation must keep every run violation-free. *)

val render : point list -> string
val render_chaos : chaos_row list -> string
val print : unit -> unit
