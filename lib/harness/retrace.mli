(** E10 — the §4.3 pairwise-swap extension under the retrace collector:
    additional array-store elimination with the swap analysis enabled,
    the forced re-scan and tracing-state-check counts (the protocol's
    runtime cost), and the SATB violation count proving the elision
    sound under the tracing-state protocol. *)

type row = {
  bench : string;
  elim_base_pct : float;
  elim_swap_pct : float;
  array_base_pct : float;
  array_swap_pct : float;
  retraces : int;
  checks : int;
  violations : int;
}

val measure_one : Workloads.Spec.t -> row
val measure : unit -> row list
val render : row list -> string
val print : unit -> unit
