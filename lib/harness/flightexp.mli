(** E18 — the flight recorder: a timeline walkthrough of a chaos run,
    and the always-on overhead measurement behind the <2% gate. *)

type row = {
  bench : string;
  steps : int;  (** instructions per run *)
  on_steps_s : float;  (** recorder enabled (the default) *)
  off_steps_s : float;  (** recorder disabled *)
  overhead_pct : float;
      (** median per-run time delta, on vs off; negative = noise *)
  events : int;  (** ring records per run with the recorder on *)
}

val walkthrough : unit -> string
(** Run db under the retrace collector with a late-spawn chaos plan and
    guards wired (the E11 revocation scenario), dump the recorder, parse
    the dump back and render the reconstructed timeline — the round trip
    `satbelim timeline` performs on an auto-captured dump.  Fully
    deterministic. *)

val measure : ?min_seconds:float -> ?min_pairs:int -> unit -> row list
(** A/B the recorder's master switch across the Table 1 workloads under
    the threaded engine at the E17 bench cadence.  The two arms are
    interleaved run-by-run with alternating within-pair order until
    cumulative mutator time reaches [min_seconds] (default 0.6s) and at
    least [min_pairs] (default 50) pairs ran; each arm is summarized by
    its median per-run mutator time, so slow drift and scheduler spikes
    cannot fake an overhead (A/A calibration: within +/-1.4%).  Fills
    the ["flight"] telemetry table behind BENCH_flight.json; the gate
    ceilings [overhead_pct] at 2.0. *)

val render : row list -> string
val print : unit -> unit
