(** E9 — ablation study over the design choices DESIGN.md calls out.

    Variants, each measured as dynamic elimination (and verified sound
    under SATB):
    - {b full}: the complete field+array analysis (mode A);
    - {b 1-name}: the §2.4 two-names-per-allocation-site precision
      disabled — every site collapses to its (non-unique) summary name,
      so strong update and the fresh-object facts are lost;
    - {b no-stride}: the Figure 1 stride-discovery merge disabled by
      widening every loop-head merge immediately ([max_visits = 0]), so
      no loop invariant over array null ranges survives;
    - {b field-only}: mode F (also one of the paper's own Figure 2
      configurations, repeated here for comparison);
    - {b rearrange}: the full analysis plus both §4.3 rearrangement
      extensions (move-down and pairwise swap), run under the retrace
      collector whose tracing-state protocol the swap elision
      requires. *)

type variant = Full | One_name | No_stride | Field_only | Rearrange

let variants = [ Full; One_name; No_stride; Field_only; Rearrange ]

let string_of_variant = function
  | Full -> "full"
  | One_name -> "1-name"
  | No_stride -> "no-stride"
  | Field_only -> "field-only"
  | Rearrange -> "rearrange"

let conf_of = function
  | Full -> Satb_core.Analysis.default_config
  | One_name -> { Satb_core.Analysis.default_config with two_names = false }
  | No_stride -> { Satb_core.Analysis.default_config with max_visits = 0 }
  | Field_only ->
      { Satb_core.Analysis.default_config with mode = Satb_core.Analysis.F }
  | Rearrange ->
      { Satb_core.Analysis.default_config with move_down = true; swap = true }

type row = { bench : string; elim : (variant * float) list }

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let measure_one (w : Workloads.Spec.t) : row =
  let elim variant =
    let prog = Workloads.Spec.parse w in
    let compiled =
      Satb_core.Driver.compile ~inline_limit:100 ~conf:(conf_of variant) prog
    in
    let policy c m pc =
      not
        (Satb_core.Driver.needs_barrier compiled
           { sk_class = c; sk_method = m; sk_pc = pc })
    in
    let retrace c m pc =
      match
        Satb_core.Driver.retrace_check compiled
          { sk_class = c; sk_method = m; sk_pc = pc }
      with
      | `Open -> Jrt.Interp.Check_open
      | `Close -> Jrt.Interp.Check_close
      | `None -> Jrt.Interp.No_check
    in
    let cfg = { Jrt.Interp.default_config with policy; retrace } in
    (* The swap elision is only sound under the retrace collector. *)
    let gc =
      match variant with
      | Rearrange -> Jrt.Runner.make_retrace ~trigger_allocs:24 ()
      | Full | One_name | No_stride | Field_only ->
          Jrt.Runner.make_satb ~trigger_allocs:24 ()
    in
    let r = Jrt.Runner.run ~cfg ~gc compiled.program ~entry:w.entry in
    (match r.gc with
    | Some g when g.total_violations > 0 ->
        Fmt.failwith "%s/%s: marking violation" w.name
          (string_of_variant variant)
    | Some _ | None -> ());
    (variant, pct r.dyn.elided_execs r.dyn.total_execs)
  in
  { bench = w.name; elim = List.map elim variants }

let measure () : row list = List.map measure_one Workloads.Registry.table1

let render (rows : row list) : string =
  let body =
    List.map
      (fun r ->
        r.bench
        :: List.map
             (fun v -> Tablefmt.f1 (List.assoc v r.elim))
             variants)
      rows
  in
  Tablefmt.render
    ~header:("benchmark" :: List.map string_of_variant variants)
    ~align:[ Tablefmt.L; R; R; R; R; R ]
    body

let print () = print_endline (render (measure ()))
