(** E15 — the Go-style hybrid write barrier and split-verdict elision:
    per-collector, per-half dynamic elision across the Table 1
    workloads, plus a chaos soundness sweep.

    The hybrid barrier has two independent halves: the Yuasa deletion
    half shades the overwritten value, and the Dijkstra insertion half
    shades the stored value while the storing thread's stack is still
    grey.  The analysis produces a split verdict per site —
    [`Elide_deletion] from facts about the {e overwritten} value (the
    classic pre-null / null-or-same chain) and [`Elide_insertion] from
    facts about the {e stored} value (provably null, or every reaching
    definition a fresh allocation) — each with its own guard set, so
    revocation can restore one half while the other stays elided.

    The elision table crosses the four collectors with the six
    workloads.  Under the pure-deletion collectors (satb, incr, retrace)
    the whole barrier {e is} the deletion half, so the deletion-half
    column equals the classic elision rate and the insertion-half column
    is zero by construction; under [hybrid] both halves pay or elide
    independently and a store counts as elided only when {e both}
    halves were removed.  At least one workload must show nonzero
    elision in {e each} half under the hybrid collector.

    The chaos sweep reruns the workloads under the hybrid collector with
    guards wired and revocation on, across the late-spawn, barrier-skip
    and class-load fault plans: every row must report zero oracle
    violations — the spawn revokes [Single_mutator]-guarded halves, the
    class load revokes summary-fresh insertion verdicts
    ([Closed_world]), and the skipped-barrier victims are severed (and
    so unreachable at cycle end), which the hybrid collector's
    end-reachability check tolerates by design. *)

type collector = Csatb | Cincr | Cretrace | Chybrid

let collector_name = function
  | Csatb -> "satb"
  | Cincr -> "incr"
  | Cretrace -> "retrace"
  | Chybrid -> "hybrid"

let all_collectors = [ Csatb; Cincr; Cretrace; Chybrid ]

let gc_of ?(trigger_allocs = 24) = function
  | Csatb -> Jrt.Runner.make_satb ~trigger_allocs ()
  | Cincr -> Jrt.Runner.make_incr ~trigger_allocs ()
  | Cretrace -> Jrt.Runner.make_retrace ~trigger_allocs ()
  | Chybrid -> Jrt.Runner.make_hybrid ~trigger_allocs ()

type row = {
  bench : string;
  collector : string;
  stores : int;
  del_elided : int;
  del_paid : int;
  ins_elided : int;
  ins_paid : int;
  both_elided : int;
  del_elide_pct : float;
  ins_elide_pct : float;
  both_elide_pct : float;
  cycles : int;
  violations : int;
}

type chaos_row = {
  c_plan : string;
  c_bench : string;
  c_violations : int;
  c_revocations : int;
  c_revoked_sites : int;
  c_rescans : int;  (** remark-time repair re-scans *)
}

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

(** Null-or-same and summaries on: the former feeds the deletion half,
    the latter the summary-fresh insertion verdicts.  Move-down and swap
    stay off — their collector guards fail under [hybrid] by design (no
    descending scan, no tracing-state protocol), which the chaos sweep
    exercises separately. *)
let compile_all () =
  List.map
    (fun w -> Exp.compile ~null_or_same:true ~summaries:true w)
    Workloads.Registry.table1

let run_one ~(coll : collector) ?chaos ?seed (cw : Exp.compiled_workload) :
    Jrt.Runner.report =
  Exp.run ~gc:(gc_of coll) ~guards:true ~fail_on_thread_error:false ?chaos
    ?seed cw

let row_of ~(coll : collector) (cw : Exp.compiled_workload)
    (r : Jrt.Runner.report) : row =
  let m = r.Jrt.Runner.machine in
  let sum f =
    Hashtbl.fold (fun _ st acc -> acc + f st) m.Jrt.Interp.stats 0
  in
  let stores = sum (fun st -> st.Jrt.Interp.execs) in
  let legacy_elided = sum (fun st -> st.Jrt.Interp.elided_execs) in
  let legacy_paid = sum (fun st -> st.Jrt.Interp.paid_execs) in
  (* Pure-deletion collectors: the whole barrier is the deletion half. *)
  let del_elided, del_paid, ins_elided, ins_paid, both_elided =
    match coll with
    | Chybrid ->
        ( sum (fun st -> st.Jrt.Interp.del_elided_execs),
          sum (fun st -> st.Jrt.Interp.del_paid_execs),
          sum (fun st -> st.Jrt.Interp.ins_elided_execs),
          sum (fun st -> st.Jrt.Interp.ins_paid_execs),
          legacy_elided )
    | Csatb | Cincr | Cretrace ->
        (legacy_elided, legacy_paid, 0, 0, legacy_elided)
  in
  let cycles, violations =
    match r.Jrt.Runner.gc with
    | Some g -> (g.Jrt.Runner.cycles, g.Jrt.Runner.total_violations)
    | None -> (0, 0)
  in
  {
    bench = cw.Exp.workload.name;
    collector = collector_name coll;
    stores;
    del_elided;
    del_paid;
    ins_elided;
    ins_paid;
    both_elided;
    del_elide_pct = pct del_elided (del_elided + del_paid);
    ins_elide_pct = pct ins_elided (ins_elided + ins_paid);
    both_elide_pct = pct both_elided stores;
    cycles;
    violations;
  }

let add_row (r : row) : row =
  Telemetry.add_row ~table:"hybrid"
    [
      ("bench", Telemetry.Str r.bench);
      ("collector", Telemetry.Str r.collector);
      ("stores", Telemetry.Int r.stores);
      ("del_elided", Telemetry.Int r.del_elided);
      ("del_paid", Telemetry.Int r.del_paid);
      ("ins_elided", Telemetry.Int r.ins_elided);
      ("ins_paid", Telemetry.Int r.ins_paid);
      ("both_elided", Telemetry.Int r.both_elided);
      ("del_elide_pct", Telemetry.Float r.del_elide_pct);
      ("ins_elide_pct", Telemetry.Float r.ins_elide_pct);
      ("both_elide_pct", Telemetry.Float r.both_elide_pct);
      ("cycles", Telemetry.Int r.cycles);
      ("violations", Telemetry.Int r.violations);
    ];
  r

let measure () : row list =
  Telemetry.clear_table "hybrid";
  let compiled = compile_all () in
  List.concat_map
    (fun cw ->
      List.map
        (fun coll -> add_row (row_of ~coll cw (run_one ~coll cw)))
        all_collectors)
    compiled

(** The chaos fault plans of the soundness sweep; each runs under the
    hybrid collector with guards wired and revocation on. *)
let chaos_plans : (string * Jrt.Chaos.fault list) list =
  [
    ("late-spawn", [ Jrt.Chaos.Late_spawn { at_instr = 1000; stores = 4 } ]);
    ( "barrier-skip",
      [ Jrt.Chaos.Barrier_skip { at_instr = 1000; victims = 4 } ] );
    ("class-load", [ Jrt.Chaos.Class_load { at_instr = 800 } ]);
  ]

let measure_chaos ?(seed = 1) () : chaos_row list =
  Telemetry.clear_table "hybrid_chaos";
  let compiled = compile_all () in
  List.concat_map
    (fun (plan, faults) ->
      List.map
        (fun (cw : Exp.compiled_workload) ->
          let chaos =
            Jrt.Chaos.create
              { Jrt.Chaos.seed; faults; quantum = None; gc_period = None }
          in
          let r = run_one ~coll:Chybrid ~chaos ~seed cw in
          let violations, rescans =
            match r.Jrt.Runner.gc with
            | Some g ->
                ( g.Jrt.Runner.total_violations,
                  List.fold_left ( + ) 0 g.Jrt.Runner.retraced )
            | None -> (0, 0)
          in
          let row =
            {
              c_plan = plan;
              c_bench = cw.Exp.workload.name;
              c_violations = violations;
              c_revocations = r.machine.Jrt.Interp.revocation_events;
              c_revoked_sites = r.machine.Jrt.Interp.revoked_sites;
              c_rescans = rescans;
            }
          in
          Telemetry.add_row ~table:"hybrid_chaos"
            [
              ("plan", Telemetry.Str row.c_plan);
              ("bench", Telemetry.Str row.c_bench);
              ("violations", Telemetry.Int row.c_violations);
              ("revocations", Telemetry.Int row.c_revocations);
              ("revoked_sites", Telemetry.Int row.c_revoked_sites);
              ("rescans", Telemetry.Int row.c_rescans);
            ];
          row)
        compiled)
    chaos_plans

let render (rows : row list) : string =
  let body =
    List.map
      (fun r ->
        [
          r.bench;
          r.collector;
          string_of_int r.stores;
          Printf.sprintf "%d (%.1f%%)" r.del_elided r.del_elide_pct;
          Printf.sprintf "%d (%.1f%%)" r.ins_elided r.ins_elide_pct;
          Printf.sprintf "%d (%.1f%%)" r.both_elided r.both_elide_pct;
          string_of_int r.cycles;
          string_of_int r.violations;
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [
        "benchmark";
        "collector";
        "stores";
        "del-half elided";
        "ins-half elided";
        "both elided";
        "cycles";
        "violations";
      ]
    ~align:[ Tablefmt.L; L; R; R; R; R; R; R ]
    body

let render_chaos (rows : chaos_row list) : string =
  let body =
    List.map
      (fun r ->
        [
          r.c_plan;
          r.c_bench;
          string_of_int r.c_violations;
          string_of_int r.c_revocations;
          string_of_int r.c_revoked_sites;
          string_of_int r.c_rescans;
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [ "plan"; "benchmark"; "violations"; "revocations"; "sites"; "rescans" ]
    ~align:[ Tablefmt.L; L; R; R; R; R ]
    body

let print () =
  print_endline "per-collector, per-half dynamic elision:";
  print_endline (render (measure ()));
  print_endline "";
  print_endline
    "chaos soundness sweep under hybrid (guards + revocation on; every \
     row must show 0 violations):";
  print_endline (render_chaos (measure_chaos ()))
