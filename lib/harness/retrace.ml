(** E10 — the §4.3 pairwise-swap extension under the retrace collector.

    The paper's §4.3 closes with the rearrangement idiom our move-down
    experiment deliberately leaves on the table: a pairwise swap
    ([temp = a[j]; a[j] = a[j+1]; a[j+1] = temp]) overwrites two slots
    but, taken as a whole, only permutes the array's existing elements —
    no reference leaves the array, so logging either pre-value is
    redundant {e provided} the collector can tolerate a concurrent scan
    observing the half-finished window.  Descending scan order alone
    cannot make that sound (the displaced element lives only in a local
    mid-window), which is why plain move-down keeps both barriers.

    The retrace collector makes the elision sound with an optimistic
    tracing-state protocol: each unlogged (elided) store performs a cheap
    per-object tracing-state check and, if the array's scan may be
    incomplete, enqueues it for an atomic re-scan before remark.  The
    swap window itself is a safepoint-free region — no collector work
    intervenes between the pair's two stores — so the re-scan always
    observes a consistent permutation.

    This experiment measures what that buys: array-store elimination on
    the Table 1 workloads with and without the swap extension, both run
    under the retrace collector, together with the number of forced
    re-scans (the protocol's cost) and the oracle's SATB-violation count
    (zero = the snapshot invariant held). *)

type row = {
  bench : string;
  elim_base_pct : float;  (** mode A + move-down *)
  elim_swap_pct : float;  (** mode A + move-down + swap *)
  array_base_pct : float;
  array_swap_pct : float;
  retraces : int;  (** forced re-scans with swap elision active *)
  checks : int;  (** dynamic tracing-state checks executed *)
  violations : int;  (** SATB violations with swap elision active *)
}

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let measure_one (w : Workloads.Spec.t) : row =
  let go ~swap =
    let cw = Exp.compile ~move_down:true ~swap w in
    let r =
      Exp.run
        ~gc:(Jrt.Runner.make_retrace ~trigger_allocs:24 ~steps_per_increment:8 ())
        cw
    in
    let v, rt =
      match r.gc with
      | Some g -> (g.total_violations, List.fold_left ( + ) 0 g.retraced)
      | None -> (0, 0)
    in
    (r.dyn, v, rt, r.machine.Jrt.Interp.retrace_checks)
  in
  let base, _, _, _ = go ~swap:false in
  let sw, violations, retraces, checks = go ~swap:true in
  {
    bench = w.name;
    elim_base_pct = pct base.elided_execs base.total_execs;
    elim_swap_pct = pct sw.elided_execs sw.total_execs;
    array_base_pct = pct base.array_elided base.array_execs;
    array_swap_pct = pct sw.array_elided sw.array_execs;
    retraces;
    checks;
    violations;
  }

let measure () : row list =
  List.map measure_one Workloads.Registry.table1

let render (rows : row list) : string =
  let body =
    List.map
      (fun r ->
        [
          r.bench;
          Tablefmt.f1 r.elim_base_pct;
          Tablefmt.f1 r.elim_swap_pct;
          Tablefmt.f1 r.array_base_pct;
          Tablefmt.f1 r.array_swap_pct;
          string_of_int r.retraces;
          string_of_int r.checks;
          string_of_int r.violations;
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [
        "benchmark";
        "A+md elim%";
        "+swap elim%";
        "A+md array%";
        "+swap array%";
        "retraces";
        "checks";
        "violations";
      ]
    ~align:[ Tablefmt.L; R; R; R; R; R; R; R ]
    body

let print () = print_endline (render (measure ()))
