(** E19 — the heap-state observatory: a census/retention walkthrough on
    db, barrier-float accounting across the Table 1 workloads under all
    four collectors, and the census-overhead measurement behind the <3%
    gate. *)

type float_row = {
  bench : string;
  collector : string;
  cycles : int;  (** completed GC cycles observed *)
  float_objs : int;  (** floating objects, summed across cycles *)
  float_units : int;
  float_pct : float;
      (** float units as a percentage of cumulative survivor units *)
  trace_u : int;  (** float units whose mark origin was the trace *)
  log_u : int;  (** ... an SATB/card/shade log entry *)
  alloc_u : int;  (** ... allocate-black *)
  repair_u : int;  (** ... revocation repair or retrace re-scan *)
}

type overhead_row = {
  ov_bench : string;
  ov_steps : int;  (** instructions per run *)
  ov_cycles : int;  (** observed cycles per run *)
  on_steps_s : float;  (** census telemetry armed ({!Heapscope.Observatory.census_tick}) *)
  off_steps_s : float;  (** observer absent (the default) *)
  overhead_pct : float;
      (** median per-run census-hook seconds over the median
          observer-free loop time *)
}

val walkthrough : unit -> string
(** Run db under SATB with the observatory armed and render what
    `satbelim heap --workload db` shows: the final-heap census, the
    dominator retention report and the per-cycle float accounting.
    Fully deterministic. *)

val measure : unit -> float_row list
(** The six-workload x four-collector float table, on the interpreter
    engine so counts are byte-deterministic.  Fills the ["heap"]
    telemetry table behind BENCH_heap.json; the gate diffs
    [float_units] and [float_pct] per (bench, collector). *)

val measure_overhead :
  ?min_seconds:float -> ?min_pairs:int -> unit -> overhead_row list
(** Cost of always-on census telemetry across the Table 1 workloads
    under the threaded engine at the E17 bench cadence.  The census
    hook runs inside the safepoint, where run-to-run loop-time noise
    swamps the E18 differential estimator on sub-millisecond runs, so
    the hook is timed directly: median per-run census seconds over the
    median loop time of interleaved observer-free runs.  Fills the
    ["heap_overhead"] telemetry table; the gate ceilings
    [overhead_pct] at 3.0 absolute. *)

val render_float_table : float_row list -> string
val render_overhead : overhead_row list -> string
val print : unit -> unit
