(** E9 — ablation study over the design choices DESIGN.md calls out:
    full analysis vs. single-name-per-site (no §2.4 precision) vs.
    no stride discovery (immediate widening) vs. field-only vs. full
    plus the §4.3 rearrangement extensions under the retrace
    collector. *)

type variant = Full | One_name | No_stride | Field_only | Rearrange

val variants : variant list
val string_of_variant : variant -> string
val conf_of : variant -> Satb_core.Analysis.config

type row = { bench : string; elim : (variant * float) list }

val measure_one : Workloads.Spec.t -> row
val measure : unit -> row list
val render : row list -> string
val print : unit -> unit
