(** The heap-state observatory: per-cycle census, barrier-float
    accounting against the exact-reachability oracle, dominator-based
    retention, and byte-stable snapshot export/diff.

    One observatory observes one run.  Arm the machine ({!arm}) before
    the run so the interpreter records elided-store verdicts, then have
    the runner invoke {!observe} at each cycle end — after the
    collector's final pause (so survivors carry their mark origins) and
    {e before} {!Jrt.Interp.reset_cycle_state} clears the verdict log.

    Float accounting: the collector's survivors minus the oracle's
    reachable set is the cycle's floating garbage — retained not because
    anything reaches it but because of {e how} concurrent marking kept
    it.  Each floating object is attributed two ways: by the origin the
    collector stamped when it marked it (SATB/card/shade log entry,
    allocate-black, revocation repair or retrace re-scan, or inherited
    from the parent that dragged it along), and by the elision-verdict
    class of any elided store that wrote it during the cycle. *)

val origin_names : string array
(** Index-aligned with {!Jrt.Heap.origin_none} .. [origin_repair]. *)

val n_origins : int

val verdict_names : string array
(** Index-aligned with {!Jrt.Interp.ew_full} .. [ew_both]. *)

val n_verdicts : int

type cycle_stats = {
  cs_cycle : int;  (** 0-based completed-cycle index *)
  cs_collector : string;
  cs_live : int;  (** survivors after the sweep *)
  cs_live_units : int;
  cs_sites : int;  (** distinct census rows *)
  cs_float_objs : int;
  cs_float_units : int;
  cs_float_origin_objs : int array;  (** per {!origin_names} *)
  cs_float_origin_units : int array;
  cs_float_verdict_objs : int array;
      (** floating objects written through an elided (half-)barrier this
          cycle, per {!verdict_names}; classes are not mutually exclusive *)
}

type t

val create : unit -> t

val arm : Jrt.Interp.t -> unit
(** Set {!Jrt.Interp.t.track_heap} so elided stores during marking are
    logged for verdict attribution.  Call before the run starts. *)

val observe : t -> Jrt.Interp.t -> unit
(** The cycle-end hook: census, oracle sweep, attribution.  Emits a
    ["heap.census"] telemetry event (carrying both census totals and the
    heap's own counters, for [validate-trace] reconciliation) and a
    {!Flight.Census} ring event. *)

val census_period : int
(** Sampling period of {!census_tick}'s full per-site fold. *)

val census_tick : Jrt.Interp.t -> unit
(** The light cycle-end hook for always-on census telemetry: no oracle
    sweep or attribution, the heap's O(1) counters every cycle, and the
    full per-site census fold — which is sweep-sized — only every
    {!census_period}-th cycle (counters-only events carry no
    [census_live]).  This sampled path is what the E19 <3% overhead
    gate measures; {!observe} is the full diagnostic `satbelim heap`
    runs, census fold and oracle sweep every cycle. *)

val cycles : t -> cycle_stats list
(** Observed cycles, oldest first. *)

val float_totals : t -> int * int
(** (objects, units) floated across all observed cycles. *)

val origin_unit_totals : t -> int array
val verdict_obj_totals : t -> int array

(** {2 Dominator retention} *)

type retainer = {
  r_site : int;
  r_cls : Jir.Types.class_name;
  r_retained : int;  (** units retained by objects of this site × class *)
}

type chain_hop = {
  ch_id : int;
  ch_cls : Jir.Types.class_name;
  ch_site : int;
  ch_units : int;
  ch_retained : int;
}

val retainers : Jrt.Interp.t -> retainer list
(** Retained units per (site × class) over the current live heap,
    heaviest first.  Retained = sum of dominator-subtree sizes of the
    group's objects (groups overlap when one dominates another, as in
    every heap profiler). *)

val retainer_chains : Jrt.Interp.t -> top:int -> chain_hop list list
(** For the [top] objects by retained size: the idom chain from the
    object up to the virtual root, object first. *)

(** {2 Snapshot export and diff} *)

val snapshot : t -> Jrt.Interp.t -> Telemetry.json
(** Byte-stable snapshot of the current heap (census + retention) plus
    the per-cycle float history observed so far.  Serialize with
    {!Telemetry.json_to_string_pretty}; key order and row sorts are
    deterministic. *)

type diff_row = {
  dr_site : string;
  dr_cls : string;
  dr_live : int * int;  (** old, new *)
  dr_units : int * int;  (** old, new *)
}

val diff : Telemetry.json -> Telemetry.json -> (diff_row list, string) result
(** Census delta between two parsed snapshots, biggest absolute unit
    growth first; unchanged rows are dropped. *)

(** {2 Rendering} *)

val render_table : string list -> string list list -> string
(** Fixed-format aligned table (heapscope sits below the harness
    library, so it cannot reuse its Tablefmt). *)

val render_census : ?top:int -> Census.row list -> string
val render_retainers : ?top:int -> Jrt.Interp.t -> string
val render_float : t -> string

val render_diff :
  old_name:string ->
  new_name:string ->
  Telemetry.json ->
  Telemetry.json ->
  (string, string) result
