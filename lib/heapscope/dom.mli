(** Dominator trees over integer object graphs, for retention analysis:
    everything an object [d] dominates is retained by it — unreachable the
    moment [d] dies.

    The graph is given abstractly as node count, successor function and
    root list, so unit tests can drive the solver with hand-built graphs
    (diamonds, cycles through back-edges, disconnected components) and
    the observatory can hand it the live heap.  A {e virtual root} [n]
    (one past the last real node) is added with the root list as its
    successors; objects directly reachable from more than one root are
    dominated by it alone.

    Algorithm: Cooper–Harvey–Kennedy's iterative data-flow formulation
    ("A simple, fast dominance algorithm") — a fixed point over reverse
    postorder with idom-chain intersection. *)

type tree

val compute : n:int -> succ:(int -> int list) -> roots:int list -> tree
(** Nodes are [0 .. n-1]; the virtual root is [n].  Successor ids outside
    [0..n] are ignored (the heap encodes null as [-1]). *)

val virtual_root : tree -> int

val idom : tree -> int -> int
(** Immediate dominator: the virtual root for nodes reachable along
    disjoint paths, [-1] for nodes unreachable from every root. *)

val reachable : tree -> int -> bool

val retained : tree -> units:(int -> int) -> int array
(** [retained.(v)] sums [units] over [v]'s dominator subtree ([v]
    included); slot [n] (the virtual root) holds the total over all
    reachable nodes.  Unreachable nodes retain 0. *)

val chain : tree -> int -> int list
(** Retainer chain [[v; idom v; ...]] up to (excluding) the virtual
    root; [[]] if [v] is unreachable. *)
