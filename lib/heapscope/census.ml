(** Allocation-site census.  See census.mli. *)

let n_age_buckets = 5
let age_bucket_names = [| "<=1"; "2"; "3-4"; "5-8"; ">8" |]

let age_bucket (age : int) : int =
  if age <= 1 then 0
  else if age = 2 then 1
  else if age <= 4 then 2
  else if age <= 8 then 3
  else 4

type row = {
  site : int;
  cls : Jir.Types.class_name;
  mutable live : int;
  mutable units : int;
  ages : int array;  (** live objects per age bucket *)
}

(* Sort for humans and for byte-stable snapshots: heaviest first, names
   break ties (site ids are interning-order-dependent, names are not). *)
let compare_rows (a : row) (b : row) : int =
  match compare b.units a.units with
  | 0 -> (
      match compare (Jrt.Sitemap.name a.site) (Jrt.Sitemap.name b.site) with
      | 0 -> compare a.cls b.cls
      | c -> c)
  | c -> c

let of_heap (h : Jrt.Heap.t) : row list =
  let tbl : (int * Jir.Types.class_name, row) Hashtbl.t = Hashtbl.create 64 in
  Jrt.Heap.iter_live h (fun o ->
      let key = (o.Jrt.Heap.site, o.Jrt.Heap.cls) in
      let r =
        match Hashtbl.find_opt tbl key with
        | Some r -> r
        | None ->
            let r =
              {
                site = o.Jrt.Heap.site;
                cls = o.Jrt.Heap.cls;
                live = 0;
                units = 0;
                ages = Array.make n_age_buckets 0;
              }
            in
            Hashtbl.add tbl key r;
            r
      in
      r.live <- r.live + 1;
      r.units <- r.units + Jrt.Heap.size_units o;
      let b = age_bucket (h.Jrt.Heap.gc_cycle - o.Jrt.Heap.birth_cycle) in
      r.ages.(b) <- r.ages.(b) + 1);
  List.sort compare_rows (Hashtbl.fold (fun _ r acc -> r :: acc) tbl [])

let totals (rows : row list) : int * int =
  List.fold_left (fun (l, u) r -> (l + r.live, u + r.units)) (0, 0) rows
