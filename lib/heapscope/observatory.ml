(* Heap-state observatory.  See observatory.mli for the contract. *)

module J = Telemetry

let origin_names = [| "none"; "trace"; "log"; "alloc"; "repair" |]
let n_origins = Array.length origin_names
let verdict_names = [| "full-elided"; "del-elided"; "ins-elided"; "both-elided" |]
let n_verdicts = Array.length verdict_names

type cycle_stats = {
  cs_cycle : int;
  cs_collector : string;
  cs_live : int;
  cs_live_units : int;
  cs_sites : int;
  cs_float_objs : int;
  cs_float_units : int;
  cs_float_origin_objs : int array;
  cs_float_origin_units : int array;
  cs_float_verdict_objs : int array;
}

type t = { mutable cycles : cycle_stats list (* newest first *) }

let create () : t = { cycles = [] }
let arm (m : Jrt.Interp.t) : unit = m.Jrt.Interp.track_heap <- true
let cycles (t : t) : cycle_stats list = List.rev t.cycles

(* ---- per-cycle observation --------------------------------------------- *)

let observe (t : t) (m : Jrt.Interp.t) : unit =
  let h = m.Jrt.Interp.heap in
  let census = Census.of_heap h in
  let c_live, c_units = Census.totals census in
  (* exact-reachability oracle sweep: anything the collector kept that the
     oracle cannot reach is floating garbage, attributable by mark origin *)
  let reach = Jrt.Oracle.reachable h (Jrt.Interp.roots m) in
  let float_objs = ref 0 and float_units = ref 0 in
  let o_objs = Array.make n_origins 0 and o_units = Array.make n_origins 0 in
  let floating : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  Jrt.Heap.iter_live h (fun o ->
      if not (Jrt.Oracle.Iset.mem o.Jrt.Heap.id reach) then begin
        incr float_objs;
        let u = Jrt.Heap.size_units o in
        float_units := !float_units + u;
        let og =
          let og = o.Jrt.Heap.origin in
          if og >= 0 && og < n_origins then og else 0
        in
        o_objs.(og) <- o_objs.(og) + 1;
        o_units.(og) <- o_units.(og) + u;
        Hashtbl.replace floating o.Jrt.Heap.id ()
      end);
  (* elision-verdict attribution: a floating object written through an
     elided (half-)barrier during the cycle is counted once per verdict
     class it was written under (classes are not mutually exclusive) *)
  let v_objs = Array.make n_verdicts 0 in
  let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (obj, cls) ->
      if
        cls >= 0 && cls < n_verdicts
        && Hashtbl.mem floating obj
        && not (Hashtbl.mem seen (obj, cls))
      then begin
        Hashtbl.add seen (obj, cls) ();
        v_objs.(cls) <- v_objs.(cls) + 1
      end)
    m.Jrt.Interp.elided_write_log;
  let cs =
    {
      cs_cycle = h.Jrt.Heap.gc_cycle - 1;
      cs_collector = m.Jrt.Interp.gc.Jrt.Gc_hooks.name;
      cs_live = h.Jrt.Heap.live_count;
      cs_live_units = h.Jrt.Heap.live_units;
      cs_sites = List.length census;
      cs_float_objs = !float_objs;
      cs_float_units = !float_units;
      cs_float_origin_objs = o_objs;
      cs_float_origin_units = o_units;
      cs_float_verdict_objs = v_objs;
    }
  in
  t.cycles <- cs :: t.cycles;
  (* the telemetry event carries census totals AND the heap's own
     counters so `satbelim validate-trace` can check they reconcile *)
  J.emit "heap.census"
    ([
       ("collector", J.Str cs.cs_collector);
       ("cycle", J.Int cs.cs_cycle);
       ("census_live", J.Int c_live);
       ("census_units", J.Int c_units);
       ("heap_live", J.Int cs.cs_live);
       ("heap_units", J.Int cs.cs_live_units);
       ("sites", J.Int cs.cs_sites);
       ("float_objs", J.Int !float_objs);
       ("float_units", J.Int !float_units);
     ]
    @ List.mapi
        (fun i name -> ("float_" ^ name, J.Int o_units.(i)))
        (Array.to_list origin_names)
    @ List.mapi
        (fun i name -> ("float_vd_" ^ name, J.Int v_objs.(i)))
        (Array.to_list verdict_names));
  Flight.record Flight.Census ~a:cs.cs_cycle ~b:c_units ~c:!float_units

(* The light cycle-end hook for always-on census telemetry, no oracle
   sweep or attribution.  The per-site fold is sweep-sized (it walks
   every slot ever allocated), so leaving it on every cycle would cost
   ~5% of a GC-heavy run; like any sampling profiler the tick emits the
   heap's O(1) counters each cycle and folds the full census only every
   [census_period]-th cycle.  This sampled path is what the E19 <3%
   overhead gate measures; {!observe} always runs the full fold. *)
let census_period = 8

let census_tick (m : Jrt.Interp.t) : unit =
  let h = m.Jrt.Interp.heap in
  let cycle = h.Jrt.Heap.gc_cycle - 1 in
  let counters =
    [
      ("collector", J.Str m.Jrt.Interp.gc.Jrt.Gc_hooks.name);
      ("cycle", J.Int cycle);
      ("heap_live", J.Int h.Jrt.Heap.live_count);
      ("heap_units", J.Int h.Jrt.Heap.live_units);
    ]
  in
  let fields =
    if cycle mod census_period = census_period - 1 then begin
      let census = Census.of_heap h in
      let c_live, c_units = Census.totals census in
      counters
      @ [
          ("census_live", J.Int c_live);
          ("census_units", J.Int c_units);
          ("sites", J.Int (List.length census));
        ]
    end
    else counters
  in
  J.emit "heap.census" fields;
  Flight.record Flight.Census ~a:cycle ~b:h.Jrt.Heap.live_units ~c:0

(* ---- aggregates --------------------------------------------------------- *)

let float_totals (t : t) : int * int =
  List.fold_left
    (fun (o, u) cs -> (o + cs.cs_float_objs, u + cs.cs_float_units))
    (0, 0) t.cycles

let origin_unit_totals (t : t) : int array =
  let acc = Array.make n_origins 0 in
  List.iter
    (fun cs ->
      Array.iteri
        (fun i u -> acc.(i) <- acc.(i) + u)
        cs.cs_float_origin_units)
    t.cycles;
  acc

let verdict_obj_totals (t : t) : int array =
  let acc = Array.make n_verdicts 0 in
  List.iter
    (fun cs ->
      Array.iteri
        (fun i n -> acc.(i) <- acc.(i) + n)
        cs.cs_float_verdict_objs)
    t.cycles;
  acc

(* ---- dominator retention ------------------------------------------------ *)

type retainer = {
  r_site : int;
  r_cls : Jir.Types.class_name;
  r_retained : int;  (** units retained by objects of this site × class *)
}

type chain_hop = {
  ch_id : int;
  ch_cls : Jir.Types.class_name;
  ch_site : int;
  ch_units : int;
  ch_retained : int;
}

let with_dominators (m : Jrt.Interp.t) :
    Dom.tree * int array (* retained per object id *) =
  let h = m.Jrt.Interp.heap in
  let n = h.Jrt.Heap.next_id in
  let live id =
    id >= 0 && id < n && not (Jrt.Heap.get h id).Jrt.Heap.dead
  in
  let tree =
    Dom.compute ~n
      ~succ:(fun id ->
        if not (live id) then []
        else List.filter live (Jrt.Heap.out_edges (Jrt.Heap.get h id)))
      ~roots:(List.filter live (Jrt.Interp.roots m))
  in
  let ret =
    Dom.retained tree ~units:(fun id ->
        if live id then Jrt.Heap.size_units (Jrt.Heap.get h id) else 0)
  in
  (tree, ret)

let retainers (m : Jrt.Interp.t) : retainer list =
  let h = m.Jrt.Interp.heap in
  let _, ret = with_dominators m in
  let tbl : (int * Jir.Types.class_name, int ref) Hashtbl.t =
    Hashtbl.create 64
  in
  Jrt.Heap.iter_live h (fun o ->
      let key = (o.Jrt.Heap.site, o.Jrt.Heap.cls) in
      let r =
        match Hashtbl.find_opt tbl key with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.add tbl key r;
            r
      in
      r := !r + ret.(o.Jrt.Heap.id));
  Hashtbl.fold
    (fun (site, cls) r acc ->
      { r_site = site; r_cls = cls; r_retained = !r } :: acc)
    tbl []
  |> List.sort (fun a b ->
         match compare b.r_retained a.r_retained with
         | 0 -> (
             match
               compare (Jrt.Sitemap.name a.r_site) (Jrt.Sitemap.name b.r_site)
             with
             | 0 -> compare a.r_cls b.r_cls
             | c -> c)
         | c -> c)

let retainer_chains (m : Jrt.Interp.t) ~(top : int) : chain_hop list list =
  let h = m.Jrt.Interp.heap in
  let tree, ret = with_dominators m in
  let heavy = ref [] in
  Jrt.Heap.iter_live h (fun o -> heavy := o :: !heavy);
  let heavy =
    List.sort
      (fun (a : Jrt.Heap.obj) b ->
        match compare ret.(b.Jrt.Heap.id) ret.(a.Jrt.Heap.id) with
        | 0 -> compare a.Jrt.Heap.id b.Jrt.Heap.id
        | c -> c)
      !heavy
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  List.map
    (fun (o : Jrt.Heap.obj) ->
      List.map
        (fun id ->
          let o = Jrt.Heap.get h id in
          {
            ch_id = id;
            ch_cls = o.Jrt.Heap.cls;
            ch_site = o.Jrt.Heap.site;
            ch_units = Jrt.Heap.size_units o;
            ch_retained = ret.(id);
          })
        (List.rev (Dom.chain tree o.Jrt.Heap.id)))
    (take top heavy)

(* ---- snapshot export and diff ------------------------------------------ *)

let census_row_json (r : Census.row) : J.json =
  J.Obj
    [
      ("site", J.Str (Jrt.Sitemap.name r.Census.site));
      ("class", J.Str r.Census.cls);
      ("live", J.Int r.Census.live);
      ("units", J.Int r.Census.units);
      ( "ages",
        J.List (Array.to_list (Array.map (fun n -> J.Int n) r.Census.ages)) );
    ]

let cycle_json (cs : cycle_stats) : J.json =
  J.Obj
    ([
       ("cycle", J.Int cs.cs_cycle);
       ("collector", J.Str cs.cs_collector);
       ("live", J.Int cs.cs_live);
       ("live_units", J.Int cs.cs_live_units);
       ("sites", J.Int cs.cs_sites);
       ("float_objs", J.Int cs.cs_float_objs);
       ("float_units", J.Int cs.cs_float_units);
     ]
    @ List.mapi
        (fun i name -> ("float_" ^ name, J.Int cs.cs_float_origin_units.(i)))
        (Array.to_list origin_names)
    @ List.mapi
        (fun i name -> ("float_vd_" ^ name, J.Int cs.cs_float_verdict_objs.(i)))
        (Array.to_list verdict_names))

let snapshot (t : t) (m : Jrt.Interp.t) : J.json =
  let h = m.Jrt.Interp.heap in
  let census = Census.of_heap h in
  let rets = retainers m in
  J.Obj
    [
      ( "heap_snapshot",
        J.Obj
          [
            ("version", J.Int 1);
            ("collector", J.Str m.Jrt.Interp.gc.Jrt.Gc_hooks.name);
            ("gc_cycle", J.Int h.Jrt.Heap.gc_cycle);
            ("live", J.Int h.Jrt.Heap.live_count);
            ("live_units", J.Int h.Jrt.Heap.live_units);
            ("census", J.List (List.map census_row_json census));
            ( "retained",
              J.List
                (List.map
                   (fun r ->
                     J.Obj
                       [
                         ("site", J.Str (Jrt.Sitemap.name r.r_site));
                         ("class", J.Str r.r_cls);
                         ("retained_units", J.Int r.r_retained);
                       ])
                   rets) );
            ("float_cycles", J.List (List.map cycle_json (cycles t)));
          ] );
    ]

(* ---- snapshot diffing --------------------------------------------------- *)

let field name = function
  | J.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let as_int = function Some (J.Int n) -> Some n | _ -> None
let as_str = function Some (J.Str s) -> Some s | _ -> None

(* (site, class) -> (live, units) from a parsed snapshot *)
let census_of_snapshot (j : J.json) :
    ((string * string) * (int * int)) list option =
  match field "heap_snapshot" j with
  | None -> None
  | Some body -> (
      match field "census" body with
      | Some (J.List rows) ->
          let parse r =
            match
              ( as_str (field "site" r),
                as_str (field "class" r),
                as_int (field "live" r),
                as_int (field "units" r) )
            with
            | Some site, Some cls, Some live, Some units ->
                Some ((site, cls), (live, units))
            | _ -> None
          in
          let parsed = List.filter_map parse rows in
          if List.length parsed = List.length rows then Some parsed else None
      | _ -> None)

let snapshot_totals (j : J.json) : (int * int * int) option =
  match field "heap_snapshot" j with
  | None -> None
  | Some body -> (
      match
        ( as_int (field "gc_cycle" body),
          as_int (field "live" body),
          as_int (field "live_units" body) )
      with
      | Some c, Some l, Some u -> Some (c, l, u)
      | _ -> None)

type diff_row = {
  dr_site : string;
  dr_cls : string;
  dr_live : int * int;  (** old, new *)
  dr_units : int * int;  (** old, new *)
}

let diff (old_ : J.json) (new_ : J.json) : (diff_row list, string) result =
  match (census_of_snapshot old_, census_of_snapshot new_) with
  | None, _ -> Error "old snapshot: not a heap_snapshot"
  | _, None -> Error "new snapshot: not a heap_snapshot"
  | Some o, Some n ->
      let keys =
        List.sort_uniq compare (List.map fst o @ List.map fst n)
      in
      let look rows k =
        Option.value (List.assoc_opt k rows) ~default:(0, 0)
      in
      let rows =
        List.filter_map
          (fun k ->
            let ol, ou = look o k and nl, nu = look n k in
            if ol = nl && ou = nu then None
            else
              Some
                {
                  dr_site = fst k;
                  dr_cls = snd k;
                  dr_live = (ol, nl);
                  dr_units = (ou, nu);
                })
          keys
      in
      (* biggest absolute unit growth first; names break ties *)
      Ok
        (List.sort
           (fun a b ->
             let da = abs (snd a.dr_units - fst a.dr_units)
             and db = abs (snd b.dr_units - fst b.dr_units) in
             match compare db da with
             | 0 -> compare (a.dr_site, a.dr_cls) (b.dr_site, b.dr_cls)
             | c -> c)
           rows)

(* ---- rendering ---------------------------------------------------------- *)

(* local fixed-format table (heapscope sits below the harness library, so
   it cannot reuse Tablefmt): header + rows, two-space gutter,
   left-aligned, golden-stable *)
let render_table (header : string list) (rows : string list list) : string =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make (max 1 ncols) 0 in
  List.iter
    (List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)))
    all;
  let buf = Buffer.create 256 in
  let line r =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf c;
        if i < List.length r - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length c) ' '))
      r;
    Buffer.add_char buf '\n'
  in
  line header;
  line (List.init ncols (fun i -> String.make widths.(i) '-'));
  List.iter line rows;
  Buffer.contents buf

let pct num den =
  if den = 0 then "0.0"
  else Printf.sprintf "%.1f" (100.0 *. float_of_int num /. float_of_int den)

let render_census ?(top = 10) (rows : Census.row list) : string =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  let shown = take top rows in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (render_table
       ([ "site"; "class"; "live"; "units" ]
       @ Array.to_list Census.age_bucket_names)
       (List.map
          (fun (r : Census.row) ->
            [
              Jrt.Sitemap.name r.Census.site;
              r.Census.cls;
              string_of_int r.Census.live;
              string_of_int r.Census.units;
            ]
            @ List.map string_of_int (Array.to_list r.Census.ages))
          shown));
  let rest = List.length rows - List.length shown in
  if rest > 0 then
    Buffer.add_string buf
      (Printf.sprintf "  ... and %d more site rows\n" rest);
  Buffer.contents buf

let render_retainers ?(top = 10) (m : Jrt.Interp.t) : string =
  let rets = retainers m in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (render_table
       [ "site"; "class"; "retained_units" ]
       (List.map
          (fun r ->
            [
              Jrt.Sitemap.name r.r_site;
              r.r_cls;
              string_of_int r.r_retained;
            ])
          (take top rets)));
  let chains = retainer_chains m ~top:(min top 5) in
  if chains <> [] then begin
    Buffer.add_string buf "\ntop retainer chains (root -> retained object):\n";
    List.iter
      (fun chain ->
        let hops =
          List.map
            (fun h ->
              Printf.sprintf "%s#%d(%s, %du ret %du)" h.ch_cls h.ch_id
                (Jrt.Sitemap.name h.ch_site)
                h.ch_units h.ch_retained)
            chain
        in
        Buffer.add_string buf ("  " ^ String.concat " <- " (List.rev hops));
        Buffer.add_char buf '\n')
      chains
  end;
  Buffer.contents buf

let render_float (t : t) : string =
  let buf = Buffer.create 512 in
  (match cycles t with
  | [] -> Buffer.add_string buf "  (no completed GC cycle observed)\n"
  | cs ->
      Buffer.add_string buf
        (render_table
           ([ "cycle"; "live_u"; "float_o"; "float_u"; "float%" ]
           @ List.map
               (fun n -> n ^ "_u")
               (List.tl (Array.to_list origin_names)))
           (List.map
              (fun c ->
                [
                  string_of_int c.cs_cycle;
                  string_of_int c.cs_live_units;
                  string_of_int c.cs_float_objs;
                  string_of_int c.cs_float_units;
                  pct c.cs_float_units c.cs_live_units;
                ]
                @ List.map string_of_int
                    (List.tl (Array.to_list c.cs_float_origin_units)))
              cs));
      let vt = verdict_obj_totals t in
      if Array.exists (fun n -> n > 0) vt then begin
        Buffer.add_string buf
          "floating objects written through elided barriers, by verdict:\n";
        Array.iteri
          (fun i n ->
            if n > 0 then
              Buffer.add_string buf
                (Printf.sprintf "  %s: %d\n" verdict_names.(i) n))
          vt
      end);
  Buffer.contents buf

let render_diff ~(old_name : string) ~(new_name : string) (old_ : J.json)
    (new_ : J.json) : (string, string) result =
  match diff old_ new_ with
  | Error e -> Error e
  | Ok rows ->
      let buf = Buffer.create 512 in
      (match (snapshot_totals old_, snapshot_totals new_) with
      | Some (oc, ol, ou), Some (nc, nl, nu) ->
          Buffer.add_string buf
            (Printf.sprintf
               "%s: cycle %d, %d live (%d units)\n%s: cycle %d, %d live (%d \
                units)\ngrowth: %+d objects, %+d units\n\n"
               old_name oc ol ou new_name nc nl nu (nl - ol) (nu - ou))
      | _ -> ());
      if rows = [] then Buffer.add_string buf "no per-site census changes\n"
      else
        Buffer.add_string buf
          (render_table
             [ "site"; "class"; "live"; "units"; "d_units" ]
             (List.map
                (fun r ->
                  [
                    r.dr_site;
                    r.dr_cls;
                    Printf.sprintf "%d->%d" (fst r.dr_live) (snd r.dr_live);
                    Printf.sprintf "%d->%d" (fst r.dr_units) (snd r.dr_units);
                    Printf.sprintf "%+d" (snd r.dr_units - fst r.dr_units);
                  ])
                rows));
      Ok (Buffer.contents buf)
