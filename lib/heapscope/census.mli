(** Allocation-site census: one pass over the live heap, aggregated per
    (allocation site × class) with object ages bucketed in completed GC
    cycles.

    The census is exact by construction — it folds the same [iter_live]
    the sweeps use — so its totals must reconcile {e to the unit} with
    {!Jrt.Heap.t.live_count} / [live_units]; {!totals} exists so tests
    (and [satbelim validate-trace]) can check that. *)

val n_age_buckets : int

val age_bucket_names : string array
(** Human labels, index-aligned with {!row.ages}. *)

val age_bucket : int -> int
(** Bucket index for an age in completed GC cycles:
    [<=1], [2], [3-4], [5-8], [>8]. *)

type row = {
  site : int;  (** interned allocation site ({!Jrt.Sitemap}) *)
  cls : Jir.Types.class_name;
  mutable live : int;
  mutable units : int;
  ages : int array;  (** live objects per age bucket *)
}

val of_heap : Jrt.Heap.t -> row list
(** Census of the live heap, sorted heaviest-units first (site name and
    class break ties, so the order is stable across runs even though
    interned ids are not). *)

val totals : row list -> int * int
(** [(live objects, live units)] summed over the rows. *)
