(** Iterative dominator trees over int graphs.  See dom.mli. *)

type tree = {
  t_n : int;
  t_idom : int array;
  t_rpo : int array;
}

let virtual_root (t : tree) : int = t.t_n

(* Cooper–Harvey–Kennedy: a data-flow fixed point over reverse postorder
   with an idom-chain intersect.  Simpler than Lengauer–Tarjan and plenty
   fast for heaps this size (the intersect walks are short because heap
   graphs are shallow), and trivially correct to review. *)
let compute ~(n : int) ~(succ : int -> int list) ~(roots : int list) : tree =
  let vroot = n in
  let succ_of v = if v = vroot then roots else succ v in
  let visited = Array.make (n + 1) false in
  let preds = Array.make (n + 1) [] in
  let post = ref [] in
  (* iterative DFS from the virtual root, collecting postorder and
     predecessor lists (only edges among reachable nodes matter) *)
  visited.(vroot) <- true;
  let stack = ref [ (vroot, ref (succ_of vroot)) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (v, rest) :: tl -> (
        match !rest with
        | [] ->
            post := v :: !post;
            stack := tl
        | s :: more ->
            rest := more;
            if s >= 0 && s <= n then begin
              preds.(s) <- v :: preds.(s);
              if not visited.(s) then begin
                visited.(s) <- true;
                stack := (s, ref (succ_of s)) :: !stack
              end
            end)
  done;
  let rpo = Array.of_list !post in
  let rpo_num = Array.make (n + 1) (-1) in
  Array.iteri (fun i v -> rpo_num.(v) <- i) rpo;
  let idom = Array.make (n + 1) (-1) in
  idom.(vroot) <- vroot;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_num.(!a) > rpo_num.(!b) do
        a := idom.(!a)
      done;
      while rpo_num.(!b) > rpo_num.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> vroot then begin
          let new_idom = ref (-1) in
          List.iter
            (fun p ->
              if idom.(p) <> -1 then
                new_idom := if !new_idom = -1 then p else intersect p !new_idom)
            preds.(b);
          if !new_idom <> -1 && idom.(b) <> !new_idom then begin
            idom.(b) <- !new_idom;
            changed := true
          end
        end)
      rpo
  done;
  { t_n = n; t_idom = idom; t_rpo = rpo }

let idom (t : tree) (v : int) : int = t.t_idom.(v)
let reachable (t : tree) (v : int) : bool = t.t_idom.(v) <> -1

(* Children precede parents in reverse RPO (a dominator is always earlier
   in RPO than what it dominates), so one backward pass accumulates
   subtree sums bottom-up. *)
let retained (t : tree) ~(units : int -> int) : int array =
  let ret = Array.make (t.t_n + 1) 0 in
  for v = 0 to t.t_n - 1 do
    if t.t_idom.(v) <> -1 then ret.(v) <- units v
  done;
  for i = Array.length t.t_rpo - 1 downto 0 do
    let v = t.t_rpo.(i) in
    if v <> t.t_n then ret.(t.t_idom.(v)) <- ret.(t.t_idom.(v)) + ret.(v)
  done;
  ret

let chain (t : tree) (v : int) : int list =
  if t.t_idom.(v) = -1 then []
  else begin
    let rec up v acc =
      if v = t.t_n then List.rev acc else up t.t_idom.(v) (v :: acc)
    in
    up v []
  end
