(* Benchmark / reproduction driver.

   `dune exec bench/main.exe` regenerates every table and figure of the
   paper (E1-E7, see DESIGN.md) and then runs a bechamel microbenchmark
   suite with one Test.make per table/figure, timing the code that
   produces each artifact.

   `dune exec bench/main.exe -- table1 fig2 ...` runs a subset;
   `-- quick` skips the bechamel suite; `-- --json` additionally writes
   BENCH_table1.json / BENCH_table2.json machine-readable artifacts. *)

let experiments =
  [
    ("table1", "Table 1: dynamic barrier elimination", Harness.Table1.print);
    ("table2", "Table 2: jbb end-to-end barrier cost", Harness.Table2.print);
    ( "fig2",
      "Figure 2: inline limit vs effectiveness and compile time",
      Harness.Fig2.print );
    ("fig3", "Figure 3: effect on compiled code size", Harness.Fig3.print);
    ("pause", "E5: SATB vs incremental-update final pause", Harness.Pause.print);
    ("nullsame", "E6: null-or-same extension", Harness.Nullsame.print);
    ("static", "E7: static elimination counts", Harness.Static_counts.print);
    ( "movedown",
      "E8: move-down (delete-by-shift) elision",
      Harness.Movedown.print );
    ("ablation", "E9: design-choice ablations", Harness.Ablation.print);
    ( "retrace",
      "E10: pairwise-swap elision under the retrace collector",
      Harness.Retrace.print );
    ( "revoke",
      "E11: guarded elision under chaos fault injection",
      Harness.Revoke.print );
    ( "summaries",
      "E12: interprocedural callee summaries vs the inline limit",
      Harness.Summaries.print );
  ]

(* --- machine-readable artifacts (--json) ------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Printf.printf "wrote %s\n%!" path

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let emit_json () =
  let table1_rows =
    List.map
      (fun (w : Workloads.Spec.t) ->
        let cw = Harness.Exp.compile w in
        let row = Harness.Table1.measure w in
        let d = row.Harness.Table1.dyn in
        String.concat ""
          [
            "    {\n";
            Printf.sprintf "      \"benchmark\": \"%s\",\n" (json_escape w.name);
            Printf.sprintf "      \"total_execs\": %d,\n" d.total_execs;
            Printf.sprintf "      \"elided_execs\": %d,\n" d.elided_execs;
            Printf.sprintf "      \"elim_pct\": %.1f,\n"
              (pct d.elided_execs d.total_execs);
            Printf.sprintf "      \"field_execs\": %d,\n" d.field_execs;
            Printf.sprintf "      \"field_elided\": %d,\n" d.field_elided;
            Printf.sprintf "      \"array_execs\": %d,\n" d.array_execs;
            Printf.sprintf "      \"array_elided\": %d,\n" d.array_elided;
            Printf.sprintf "      \"static_execs\": %d,\n" d.static_execs;
            Printf.sprintf "      \"analysis_seconds\": %.6f,\n"
              cw.Harness.Exp.compiled.analysis_seconds;
            Printf.sprintf "      \"inline_seconds\": %.6f\n"
              cw.Harness.Exp.compiled.inline_seconds;
            "    }";
          ])
      Workloads.Registry.table1
  in
  write_file "BENCH_table1.json"
    (Printf.sprintf "{\n  \"table1\": [\n%s\n  ]\n}\n"
       (String.concat ",\n" table1_rows));
  let table2_rows =
    List.map
      (fun (r : Harness.Table2.row) ->
        String.concat ""
          [
            "    {\n";
            Printf.sprintf "      \"mode\": \"%s\",\n" (json_escape r.mode);
            Printf.sprintf "      \"cost_units\": %d,\n" r.cost_units;
            Printf.sprintf "      \"relative\": %.4f\n" r.relative;
            "    }";
          ])
      (Harness.Table2.measure ())
  in
  write_file "BENCH_table2.json"
    (Printf.sprintf "{\n  \"table2\": [\n%s\n  ]\n}\n"
       (String.concat ",\n" table2_rows));
  let fig2_rows =
    List.map
      (fun (p : Harness.Summaries.point) ->
        String.concat ""
          [
            "    {\n";
            Printf.sprintf "      \"benchmark\": \"%s\",\n" (json_escape p.bench);
            Printf.sprintf "      \"inline_limit\": %d,\n" p.limit;
            Printf.sprintf "      \"static_elided_havoc\": %d,\n" p.static_off;
            Printf.sprintf "      \"static_elided_summaries\": %d,\n" p.static_on;
            Printf.sprintf "      \"elim_pct_havoc\": %.1f,\n" p.elim_off;
            Printf.sprintf "      \"elim_pct_summaries\": %.1f,\n" p.elim_on;
            Printf.sprintf "      \"summary_methods\": %d,\n" p.sum_methods;
            Printf.sprintf "      \"summary_havoced\": %d\n" p.sum_havoced;
            "    }";
          ])
      (Harness.Summaries.measure ())
  in
  write_file "BENCH_fig2.json"
    (Printf.sprintf "{\n  \"fig2_summaries\": [\n%s\n  ]\n}\n"
       (String.concat ",\n" fig2_rows))

(* --- bechamel microbenchmarks: one Test.make per table/figure --------- *)

open Bechamel
open Toolkit

let compile_all ?(mode = Satb_core.Analysis.A) ?(null_or_same = false)
    ?(inline_limit = 100) () =
  List.iter
    (fun w -> ignore (Harness.Exp.compile ~inline_limit ~mode ~null_or_same w))
    Workloads.Registry.table1

let bench_tests =
  Test.make_grouped ~name:"satb-wbe"
    [
      (* Table 1's cost is the full field+array analysis over every
         benchmark at inline limit 100 *)
      Test.make ~name:"table1/analyze-A-100"
        (Staged.stage (fun () -> compile_all ()));
      (* Table 2 is dominated by the instrumented jbb run *)
      Test.make ~name:"table2/run-jbb-always-log"
        (Staged.stage (fun () ->
             let cw = Harness.Exp.compile Workloads.Jbb.t in
             ignore
               (Harness.Exp.run ~satb_mode:Jrt.Barrier_cost.Always_log cw)));
      (* Figure 2's most expensive point: inline limit 200, mode A *)
      Test.make ~name:"fig2/analyze-A-200"
        (Staged.stage (fun () -> compile_all ~inline_limit:200 ()));
      (* Figure 2's cheapest analysis: field-only at limit 100 *)
      Test.make ~name:"fig2/analyze-F-100"
        (Staged.stage (fun () -> compile_all ~mode:Satb_core.Analysis.F ()));
      (* Figure 3 is the code-size model over B/F/A compiles *)
      Test.make ~name:"fig3/code-size-BFA"
        (Staged.stage (fun () ->
             List.iter
               (fun mode -> compile_all ~mode ())
               [ Satb_core.Analysis.B; F; A ]));
      (* E5: one full SATB cycle on jess *)
      Test.make ~name:"pause/satb-jess"
        (Staged.stage (fun () ->
             let cw = Harness.Exp.compile Workloads.Jess.t in
             ignore
               (Harness.Exp.run
                  ~gc:(Jrt.Runner.make_satb ~trigger_allocs:64 ())
                  cw)));
      (* E6: analysis with the null-or-same extension enabled *)
      Test.make ~name:"nullsame/analyze-A+nos"
        (Staged.stage (fun () -> compile_all ~null_or_same:true ()));
      (* E8: analysis with the move-down extension enabled *)
      Test.make ~name:"movedown/analyze-A+md"
        (Staged.stage (fun () ->
             ignore (Harness.Exp.compile ~move_down:true Workloads.Jbb.t)));
      (* E10: db under the retrace collector with swap elision *)
      Test.make ~name:"retrace/run-db-swap"
        (Staged.stage (fun () ->
             let cw =
               Harness.Exp.compile ~move_down:true ~swap:true Workloads.Db.t
             in
             ignore
               (Harness.Exp.run
                  ~gc:(Jrt.Runner.make_retrace ~trigger_allocs:24 ())
                  cw)));
      (* E11: db under a late-spawn fault plan with guards wired, so the
         timing includes revocation and snapshot repair *)
      Test.make ~name:"revoke/run-db-late-spawn"
        (Staged.stage (fun () ->
             let cw =
               Harness.Exp.compile ~move_down:true ~swap:true Workloads.Db.t
             in
             let chaos =
               Jrt.Chaos.create
                 {
                   Jrt.Chaos.seed = 1;
                   faults =
                     [ Jrt.Chaos.Late_spawn { at_instr = 1000; stores = 4 } ];
                   quantum = None;
                   gc_period = None;
                 }
             in
             ignore
               (Harness.Exp.run
                  ~gc:(Jrt.Runner.make_retrace ~trigger_allocs:24 ())
                  ~guards:true ~chaos ~fail_on_thread_error:false cw)));
      (* E12: summary construction + summary-aware analysis, no inlining *)
      Test.make ~name:"summaries/analyze-A-0+sum"
        (Staged.stage (fun () ->
             List.iter
               (fun w ->
                 ignore
                   (Harness.Exp.compile ~inline_limit:0 ~summaries:true w))
               Workloads.Registry.table1));
      (* E9: the cheapest ablation (single-name, no strong updates) *)
      Test.make ~name:"ablation/analyze-1-name"
        (Staged.stage (fun () ->
             List.iter
               (fun w ->
                 ignore
                   (Satb_core.Driver.compile ~inline_limit:100
                      ~conf:(Harness.Ablation.conf_of Harness.Ablation.One_name)
                      (Workloads.Spec.parse w)))
               Workloads.Registry.table1));
    ]

let run_bechamel () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let raw = Benchmark.all cfg instances bench_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Printf.printf "\n%s (ns/run):\n" measure;
      let rows =
        Hashtbl.fold
          (fun name ols acc ->
            let est =
              match Analyze.OLS.estimates ols with
              | Some (e :: _) -> Printf.sprintf "%.0f" e
              | Some [] | None -> "-"
            in
            (name, est) :: acc)
          tbl []
        |> List.sort compare
      in
      List.iter (fun (n, e) -> Printf.printf "  %-32s %12s\n" n e) rows)
    merged

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "quick" args in
  let json = List.mem "--json" args in
  let selected = List.filter (fun a -> a <> "quick" && a <> "--json") args in
  let wanted name = selected = [] || List.mem name selected in
  List.iter
    (fun (name, title, print) ->
      if wanted name then begin
        Printf.printf "== %s: %s ==\n%!" name title;
        print ();
        print_newline ()
      end)
    experiments;
  if json then emit_json ();
  if (not quick) && (selected = [] || List.mem "bechamel" selected) then begin
    Printf.printf "== bechamel: per-artifact timing ==\n%!";
    run_bechamel ()
  end
