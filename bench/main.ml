(* Benchmark / reproduction driver.

   `dune exec bench/main.exe` regenerates every table and figure of the
   paper (E1-E7, see DESIGN.md) and then runs a bechamel microbenchmark
   suite with one Test.make per table/figure, timing the code that
   produces each artifact.

   `dune exec bench/main.exe -- table1 fig2 ...` runs a subset;
   `-- quick` skips the bechamel suite; `-- --json` additionally writes
   BENCH_table1.json / BENCH_table2.json machine-readable artifacts. *)

let experiments =
  [
    ("table1", "Table 1: dynamic barrier elimination", Harness.Table1.print);
    ("table2", "Table 2: jbb end-to-end barrier cost", Harness.Table2.print);
    ( "fig2",
      "Figure 2: inline limit vs effectiveness and compile time",
      Harness.Fig2.print );
    ("fig3", "Figure 3: effect on compiled code size", Harness.Fig3.print);
    ("pause", "E5: SATB vs incremental-update final pause", Harness.Pause.print);
    ("nullsame", "E6: null-or-same extension", Harness.Nullsame.print);
    ("static", "E7: static elimination counts", Harness.Static_counts.print);
    ( "movedown",
      "E8: move-down (delete-by-shift) elision",
      Harness.Movedown.print );
    ("ablation", "E9: design-choice ablations", Harness.Ablation.print);
    ( "retrace",
      "E10: pairwise-swap elision under the retrace collector",
      Harness.Retrace.print );
    ( "revoke",
      "E11: guarded elision under chaos fault injection",
      Harness.Revoke.print );
    ( "summaries",
      "E12: interprocedural callee summaries vs the inline limit",
      Harness.Summaries.print );
    ( "profile",
      "E14: per-site hot-path attribution, plain vs full analysis on db",
      Harness.Profiler.print );
    ( "hybrid",
      "E15: hybrid write barrier, per-collector per-half elision + chaos \
       soundness",
      Harness.Hybrid.print );
    ( "pacing",
      "E16: GC pacing sweep — goals, soft limits, auto-tuning + chaos \
       allocation faults",
      Harness.Pacing.print );
    ( "engines",
      "E17: direct-threaded engine vs interpreter — steps/sec and \
       state-equality across the Table 1 workloads",
      Harness.Engines.print );
    ( "flight",
      "E18: flight recorder — chaos-run timeline walkthrough and \
       always-on overhead (<2% gated)",
      Harness.Flightexp.print );
    ( "heap",
      "E19: heap-state observatory — allocation-site census, dominator \
       retention, barrier-float accounting (<3% overhead gated)",
      Harness.Heapexp.print );
  ]

(* --- machine-readable artifacts (--json) ------------------------------ *)

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Printf.printf "wrote %s\n%!" path

(* The artifacts are serialized from the telemetry row tables the measure
   functions populate, so the rendered tables, the harness output and the
   BENCH_*.json files all share one source of truth. *)
let emit_json () =
  (* every artifact carries the table-file schema version so the gate
     refuses to compare baselines written at a different layout *)
  let emit path tables =
    write_file path
      (Telemetry.json_to_string_pretty
         (Telemetry.Obj
            (( "schema_version",
               Telemetry.Int Profile.Gate.bench_schema_version )
            :: List.map (fun t -> (t, Telemetry.table_to_json t)) tables))
      ^ "\n")
  in
  ignore (Harness.Table1.rows ());
  emit "BENCH_table1.json" [ "table1" ];
  ignore (Harness.Table2.measure ());
  emit "BENCH_table2.json" [ "table2" ];
  ignore (Harness.Summaries.measure ());
  emit "BENCH_fig2.json" [ "fig2_summaries" ];
  ignore (Harness.Pause.measure ());
  emit "BENCH_pause.json" [ "pause" ];
  ignore (Harness.Profiler.measure ());
  emit "BENCH_profile.json" [ "profile" ];
  ignore (Harness.Hybrid.measure ());
  ignore (Harness.Hybrid.measure_chaos ());
  emit "BENCH_hybrid.json" [ "hybrid"; "hybrid_chaos" ];
  ignore (Harness.Pacing.summarize (Harness.Pacing.measure ()));
  ignore (Harness.Pacing.measure_chaos ());
  emit "BENCH_pacing.json" [ "pacing"; "pacing_summary"; "pacing_chaos" ];
  ignore (Harness.Engines.measure ());
  emit "BENCH_engines.json" [ "engines" ];
  ignore (Harness.Flightexp.measure ());
  emit "BENCH_flight.json" [ "flight" ];
  ignore (Harness.Heapexp.measure ());
  ignore (Harness.Heapexp.measure_overhead ());
  emit "BENCH_heap.json" [ "heap"; "heap_overhead" ]

(* --- regression gate (`bench diff OLD.json NEW.json`) ----------------- *)

let diff_usage =
  "usage: bench diff OLD.json NEW.json [--max-elision-drop POINTS] \
   [--max-pause-increase PCT] [--max-cost-increase PCT] [--max-mmu-drop ABS]"

let run_diff (args : string list) : unit =
  let float_arg flag v k =
    match float_of_string_opt v with
    | Some f -> k f
    | None ->
        Printf.eprintf "bench diff: %s expects a number, got %S\n" flag v;
        exit 2
  in
  let rec parse th files = function
    | [] -> (th, List.rev files)
    | "--max-elision-drop" :: v :: rest ->
        float_arg "--max-elision-drop" v (fun f ->
            parse { th with Profile.Gate.max_elision_drop = f } files rest)
    | "--max-pause-increase" :: v :: rest ->
        float_arg "--max-pause-increase" v (fun f ->
            parse { th with Profile.Gate.max_pause_increase_pct = f } files rest)
    | "--max-cost-increase" :: v :: rest ->
        float_arg "--max-cost-increase" v (fun f ->
            parse { th with Profile.Gate.max_cost_increase_pct = f } files rest)
    | "--max-mmu-drop" :: v :: rest ->
        float_arg "--max-mmu-drop" v (fun f ->
            parse { th with Profile.Gate.max_mmu_drop = f } files rest)
    | a :: rest when String.length a > 0 && a.[0] <> '-' ->
        parse th (a :: files) rest
    | a :: _ ->
        Printf.eprintf "bench diff: unknown flag %s\n%s\n" a diff_usage;
        exit 2
  in
  match parse Profile.Gate.default_thresholds [] args with
  | thresholds, [ old_path; new_path ] -> (
      match Profile.Gate.diff_files ~thresholds ~old_path new_path with
      | Error e ->
          Printf.eprintf "bench diff: %s\n" e;
          exit 2
      | Ok o ->
          print_string (Profile.Gate.render o);
          if Profile.Gate.regressed o then begin
            Printf.printf "FAIL: %d regression(s)\n"
              (List.length o.Profile.Gate.o_regressions);
            exit 1
          end
          else print_endline "OK: no regressions")
  | _ ->
      prerr_endline diff_usage;
      exit 2

(* --- bechamel microbenchmarks: one Test.make per table/figure --------- *)

open Bechamel
open Toolkit

let compile_all ?(mode = Satb_core.Analysis.A) ?(null_or_same = false)
    ?(inline_limit = 100) () =
  List.iter
    (fun w -> ignore (Harness.Exp.compile ~inline_limit ~mode ~null_or_same w))
    Workloads.Registry.table1

let bench_tests =
  Test.make_grouped ~name:"satb-wbe"
    [
      (* Table 1's cost is the full field+array analysis over every
         benchmark at inline limit 100 *)
      Test.make ~name:"table1/analyze-A-100"
        (Staged.stage (fun () -> compile_all ()));
      (* Table 2 is dominated by the instrumented jbb run *)
      Test.make ~name:"table2/run-jbb-always-log"
        (Staged.stage (fun () ->
             let cw = Harness.Exp.compile Workloads.Jbb.t in
             ignore
               (Harness.Exp.run ~satb_mode:Jrt.Barrier_cost.Always_log cw)));
      (* Figure 2's most expensive point: inline limit 200, mode A *)
      Test.make ~name:"fig2/analyze-A-200"
        (Staged.stage (fun () -> compile_all ~inline_limit:200 ()));
      (* Figure 2's cheapest analysis: field-only at limit 100 *)
      Test.make ~name:"fig2/analyze-F-100"
        (Staged.stage (fun () -> compile_all ~mode:Satb_core.Analysis.F ()));
      (* Figure 3 is the code-size model over B/F/A compiles *)
      Test.make ~name:"fig3/code-size-BFA"
        (Staged.stage (fun () ->
             List.iter
               (fun mode -> compile_all ~mode ())
               [ Satb_core.Analysis.B; F; A ]));
      (* E5: one full SATB cycle on jess *)
      Test.make ~name:"pause/satb-jess"
        (Staged.stage (fun () ->
             let cw = Harness.Exp.compile Workloads.Jess.t in
             ignore
               (Harness.Exp.run
                  ~gc:(Jrt.Runner.make_satb ~trigger_allocs:64 ())
                  cw)));
      (* E6: analysis with the null-or-same extension enabled *)
      Test.make ~name:"nullsame/analyze-A+nos"
        (Staged.stage (fun () -> compile_all ~null_or_same:true ()));
      (* E8: analysis with the move-down extension enabled *)
      Test.make ~name:"movedown/analyze-A+md"
        (Staged.stage (fun () ->
             ignore (Harness.Exp.compile ~move_down:true Workloads.Jbb.t)));
      (* E10: db under the retrace collector with swap elision *)
      Test.make ~name:"retrace/run-db-swap"
        (Staged.stage (fun () ->
             let cw =
               Harness.Exp.compile ~move_down:true ~swap:true Workloads.Db.t
             in
             ignore
               (Harness.Exp.run
                  ~gc:(Jrt.Runner.make_retrace ~trigger_allocs:24 ())
                  cw)));
      (* E11: db under a late-spawn fault plan with guards wired, so the
         timing includes revocation and snapshot repair *)
      Test.make ~name:"revoke/run-db-late-spawn"
        (Staged.stage (fun () ->
             let cw =
               Harness.Exp.compile ~move_down:true ~swap:true Workloads.Db.t
             in
             let chaos =
               Jrt.Chaos.create
                 {
                   Jrt.Chaos.seed = 1;
                   faults =
                     [ Jrt.Chaos.Late_spawn { at_instr = 1000; stores = 4 } ];
                   quantum = None;
                   gc_period = None;
                 }
             in
             ignore
               (Harness.Exp.run
                  ~gc:(Jrt.Runner.make_retrace ~trigger_allocs:24 ())
                  ~guards:true ~chaos ~fail_on_thread_error:false cw)));
      (* E12: summary construction + summary-aware analysis, no inlining *)
      Test.make ~name:"summaries/analyze-A-0+sum"
        (Staged.stage (fun () ->
             List.iter
               (fun w ->
                 ignore
                   (Harness.Exp.compile ~inline_limit:0 ~summaries:true w))
               Workloads.Registry.table1));
      (* E9: the cheapest ablation (single-name, no strong updates) *)
      Test.make ~name:"ablation/analyze-1-name"
        (Staged.stage (fun () ->
             List.iter
               (fun w ->
                 ignore
                   (Satb_core.Driver.compile ~inline_limit:100
                      ~conf:(Harness.Ablation.conf_of Harness.Ablation.One_name)
                      (Workloads.Spec.parse w)))
               Workloads.Registry.table1));
    ]

let run_bechamel () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let raw = Benchmark.all cfg instances bench_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Printf.printf "\n%s (ns/run):\n" measure;
      let rows =
        Hashtbl.fold
          (fun name ols acc ->
            let est =
              match Analyze.OLS.estimates ols with
              | Some (e :: _) -> Printf.sprintf "%.0f" e
              | Some [] | None -> "-"
            in
            (name, est) :: acc)
          tbl []
        |> List.sort compare
      in
      List.iter (fun (n, e) -> Printf.printf "  %-32s %12s\n" n e) rows)
    merged

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | "diff" :: rest -> run_diff rest
  | _ ->
  (* `--engine threaded` retargets every experiment's runtime onto the
     compiled engine (the CI both-engines lever); default is interp *)
  let rec extract_engine acc = function
    | [] -> (None, List.rev acc)
    | "--engine" :: v :: rest -> (Some v, List.rev_append acc rest)
    | a :: rest -> extract_engine (a :: acc) rest
  in
  let engine, args = extract_engine [] args in
  (match engine with
  | None | Some "interp" -> ()
  | Some "threaded" -> Harness.Exp.default_engine := `Threaded
  | Some other ->
      Printf.eprintf "bench: --engine expects interp|threaded, got %S\n" other;
      exit 2);
  let quick = List.mem "quick" args in
  let json = List.mem "--json" args in
  let selected = List.filter (fun a -> a <> "quick" && a <> "--json") args in
  let wanted name = selected = [] || List.mem name selected in
  List.iter
    (fun (name, title, print) ->
      if wanted name then begin
        Printf.printf "== %s: %s ==\n%!" name title;
        print ();
        print_newline ()
      end)
    experiments;
  if json then emit_json ();
  if (not quick) && (selected = [] || List.mem "bechamel" selected) then begin
    Printf.printf "== bechamel: per-artifact timing ==\n%!";
    run_bechamel ()
  end
