// The §4.3 null-or-same idiom (memoization cache).  Try:
//   dune exec bin/satbelim.exe -- analyze examples/java/memo.java --null-or-same -v
class Scope { Scope cache; }

class Main {
  static Scope seed;

  static void resolve(int n) {
    Scope s = new Scope();
    s.cache = Main.seed;
    for (int i = 0; i < n; i = i + 1) {
      Scope t = s.cache;
      if (t == null) { t = Main.seed; }
      s.cache = t;          // writes back the cached value or fills null:
                            // removable only by the null-or-same extension
    }
  }

  static void main() {
    Main.seed = new Scope();
    resolve(100);
  }
}
