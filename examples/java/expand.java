// The paper's §3.1 motivating example.  Try:
//   dune exec bin/satbelim.exe -- analyze examples/java/expand.java -v
//   dune exec bin/satbelim.exe -- run examples/java/expand.java --gc satb
class T { T payload; }

class Main {
  static T[] result;

  static T[] expand(T[] ta) {
    T[] new_ta = new T[ta.length * 2];
    for (int i = 0; i < ta.length; i = i + 1) {
      new_ta[i] = ta[i];
    }
    return new_ta;
  }

  static void main() {
    T[] src = new T[8];
    for (int i = 0; i < 8; i = i + 1) {
      src[i] = new T();
    }
    Main.result = Main.expand(src);
  }
}
