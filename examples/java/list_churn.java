// Allocation churn under concurrent marking.  Try:
//   dune exec bin/satbelim.exe -- run examples/java/list_churn.java --gc satb
//   dune exec bin/satbelim.exe -- run examples/java/list_churn.java --gc incr
class Node {
  Node next;
  Node(Node n) { this.next = n; }   // initializing store: barrier removed
}

class Main {
  static Node head;

  static void build(int n) {
    Node l = null;
    for (int i = 0; i < n; i = i + 1) { l = new Node(l); }
    Main.head = l;                  // unlinks the previous list
  }

  static void main() {
    for (int round = 0; round < 8; round = round + 1) { build(32); }
  }
}
