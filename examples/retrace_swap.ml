(* The §4.3 pairwise-swap idiom end to end: the db workload's bubble
   sort swaps elements of a static object array
   (temp = a[j]; a[j] = a[j+1]; a[j+1] = temp).

   Taken as a whole a swap only permutes the array's existing elements,
   so neither overwritten pre-value needs SATB logging — but descending
   scan order alone cannot make the elision sound, because mid-window
   the displaced element lives only in a local the marker never scans.

   The retrace collector closes that gap with an optimistic
   tracing-state protocol: each elided store performs a cheap per-object
   tracing-state check and, if the array's concurrent scan may be
   incomplete, enqueues it for an atomic whole-object re-scan before
   remark.  The swap window itself is safepoint-free, so the re-scan
   always observes a consistent permutation.

   This example runs db three ways:
   1. swap analysis off, retrace collector — the baseline;
   2. swap analysis on, retrace collector — both swap barriers gone,
      zero violations, the oracle confirming the protocol is sound;
   3. swap analysis on but the plain SATB collector — the same elision
      is now unsound, and for adversarial schedules the oracle reports
      snapshot violations.

   Run with: dune exec examples/retrace_swap.exe *)

let describe name (r : Jrt.Runner.report) =
  let g = Option.get r.gc in
  Fmt.pr
    "%-28s array elided %4d/%4d  checks=%-4d retraces=%-2d violations=%d@."
    name r.dyn.array_elided r.dyn.array_execs
    r.machine.Jrt.Interp.retrace_checks
    (List.fold_left ( + ) 0 g.retraced)
    g.total_violations

let run ~swap ~gc ~gc_period =
  let cw = Harness.Exp.compile ~move_down:true ~swap Workloads.Db.t in
  Harness.Exp.run ~gc ~gc_period cw

(* db is single-threaded, so the adversarial knob is the collector
   pacing: sweeping the mutator-instructions-per-increment period moves
   the concurrent scan of the index array across every possible
   alignment with the sort's swap windows. *)
let sweep ~swap ~gc =
  let violations = ref 0 and retraces = ref 0 in
  for p = 1 to 200 do
    let r = run ~swap ~gc ~gc_period:p in
    match r.gc with
    | Some g ->
        violations := !violations + g.total_violations;
        retraces := !retraces + List.fold_left ( + ) 0 g.retraced
    | None -> ()
  done;
  (!violations, !retraces)

let () =
  let retrace =
    Jrt.Runner.Retrace { steps_per_increment = 1; pacing = Jrt.Pacer.config_of_trigger 8 }
  in
  Fmt.pr "db under the retrace collector:@.";
  describe "no swap analysis" (run ~swap:false ~gc:retrace ~gc_period:104);
  describe "swap analysis" (run ~swap:true ~gc:retrace ~gc_period:104);
  let v, rt = sweep ~swap:true ~gc:retrace in
  Fmt.pr
    "swap under retrace, 200 collector pacings: %d violations, %d forced \
     re-scans@."
    v rt;
  Fmt.pr
    "@.Same elision under plain SATB (no tracing-state protocol) — the@.\
     oracle catches the pacings where the half-finished swap hides a@.\
     live element from the marker:@.";
  let satb = Jrt.Runner.Satb { steps_per_increment = 1; pacing = Jrt.Pacer.config_of_trigger 8 } in
  let v, _ = sweep ~swap:true ~gc:satb in
  Fmt.pr "swap under plain SATB, 200 collector pacings: %d violations@." v
