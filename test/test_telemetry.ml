(* Tests for the unified telemetry layer: registry units, the JSONL
   event stream and its schema validator, the Chrome exporter, and the
   reconciliation invariants that tie the global counters to the
   interpreter's legacy per-machine statistics — under chaos fuzz.
   Also the provenance ("explain") contract: every elided site names a
   rule chain and its guards on all six benchmark workloads. *)

let reset () = Telemetry.reset ()

(* --- registry units ---------------------------------------------------- *)

let test_counter_basics () =
  reset ();
  let c = Telemetry.counter "test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Telemetry.counter_value c);
  Telemetry.incr c;
  Telemetry.incr c ~by:41;
  Alcotest.(check int) "incr + by" 42 (Telemetry.counter_value c);
  Alcotest.(check int) "by name" 42 (Telemetry.get_counter "test.counter");
  Alcotest.(check int) "unknown name reads 0" 0
    (Telemetry.get_counter "test.never-registered");
  Alcotest.(check string) "name" "test.counter" (Telemetry.counter_name c)

let test_reset_keeps_handles () =
  reset ();
  let c = Telemetry.counter "test.survivor" in
  Telemetry.incr c ~by:7;
  Telemetry.reset ();
  Alcotest.(check int) "zeroed in place" 0 (Telemetry.counter_value c);
  (* the cached handle must still be the registered counter *)
  Telemetry.incr c;
  Alcotest.(check int) "handle still live" 1
    (Telemetry.get_counter "test.survivor")

let test_gauge_histogram () =
  reset ();
  let g = Telemetry.gauge "test.gauge" in
  Telemetry.set_gauge g 2.5;
  Alcotest.(check (float 1e-9)) "gauge" 2.5 (Telemetry.gauge_value g);
  let h = Telemetry.histogram "test.histo" in
  List.iter (Telemetry.observe h) [ 1.0; 3.0; 2.0 ];
  let s = Telemetry.histo_stats h in
  Alcotest.(check int) "count" 3 s.Telemetry.h_count;
  Alcotest.(check (float 1e-9)) "sum" 6.0 s.Telemetry.h_sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Telemetry.h_min;
  Alcotest.(check (float 1e-9)) "max" 3.0 s.Telemetry.h_max

let test_time_records () =
  reset ();
  let x, dt = Telemetry.time "test.timed" (fun () -> 1 + 1) in
  Alcotest.(check int) "thunk result" 2 x;
  Alcotest.(check bool) "non-negative duration" true (dt >= 0.0);
  let s = Telemetry.histo_stats (Telemetry.histogram "test.timed") in
  Alcotest.(check int) "one observation" 1 s.Telemetry.h_count

let test_snapshot_sorted () =
  reset ();
  Telemetry.incr (Telemetry.counter "z.last");
  Telemetry.incr (Telemetry.counter "a.first");
  let s = Telemetry.snapshot () in
  let names = List.map fst s.Telemetry.sn_counters in
  Alcotest.(check (list string)) "deterministic order" (List.sort compare names)
    names

(* --- event stream ------------------------------------------------------ *)

let test_events_noop_unless_armed () =
  reset ();
  Alcotest.(check bool) "disarmed by default" false (Telemetry.armed ());
  Telemetry.emit "test.dropped" [];
  Alcotest.(check int) "nothing recorded" 0 (List.length (Telemetry.events ()))

let with_recording f =
  Telemetry.set_recording true;
  Fun.protect f ~finally:(fun () -> Telemetry.set_recording false)

let test_event_ordering_and_roundtrip () =
  reset ();
  with_recording (fun () ->
      for i = 1 to 5 do
        Telemetry.emit "test.tick" [ ("i", Telemetry.Int i) ]
      done);
  let evs = Telemetry.events () in
  Alcotest.(check int) "all recorded" 5 (List.length evs);
  let rec check_order = function
    | a :: (b : Telemetry.event) :: rest ->
        Alcotest.(check bool) "seq strictly increasing" true
          (b.ev_seq > a.Telemetry.ev_seq);
        Alcotest.(check bool) "ts non-decreasing" true
          (b.ev_ts >= a.Telemetry.ev_ts);
        check_order (b :: rest)
    | _ -> ()
  in
  check_order evs;
  List.iter
    (fun (ev : Telemetry.event) ->
      match Telemetry.event_of_json (Telemetry.event_to_json ev) with
      | Ok ev' ->
          Alcotest.(check string) "kind round-trips" ev.ev_kind
            ev'.Telemetry.ev_kind;
          Alcotest.(check int) "seq round-trips" ev.ev_seq ev'.Telemetry.ev_seq
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    evs

let test_validate_event_line () =
  let ok = {|{"ts": 0.5, "seq": 3, "kind": "gc.cycle.start", "cycle": 1}|} in
  (match Telemetry.validate_event_line ok with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid line rejected: %s" e);
  List.iter
    (fun (what, line) ->
      match Telemetry.validate_event_line line with
      | Ok () -> Alcotest.failf "accepted %s" what
      | Error _ -> ())
    [
      ("junk", "not json");
      ("non-object", "[1,2]");
      ("missing kind", {|{"ts": 0.5, "seq": 3}|});
      ("empty kind", {|{"ts": 0.5, "seq": 3, "kind": ""}|});
      ("negative ts", {|{"ts": -1, "seq": 3, "kind": "x"}|});
    ]

(* --- whole-trace validation on hand-broken traces ----------------------- *)

let test_validate_trace_rejects_broken () =
  let line ~ts ~seq kind =
    Printf.sprintf {|{"ts": %g, "seq": %d, "kind": %S}|} ts seq kind
  in
  (* a well-bracketed two-run trace is fine *)
  (match
     Telemetry.validate_trace_lines
       [
         line ~ts:0.1 ~seq:0 "run.start";
         line ~ts:0.2 ~seq:1 "run.finish";
         line ~ts:0.3 ~seq:2 "run.start";
         line ~ts:0.4 ~seq:3 "run.finish";
       ]
   with
  | Ok n -> Alcotest.(check int) "two runs accepted" 4 n
  | Error (l, msg) -> Alcotest.failf "valid trace rejected at %d: %s" l msg);
  let broken =
    [
      ( "non-monotonic timestamps",
        3,
        [
          line ~ts:0.1 ~seq:0 "run.start";
          line ~ts:0.5 ~seq:1 "gc.cycle.start";
          line ~ts:0.2 ~seq:2 "run.finish";
        ] );
      ( "non-increasing sequence numbers",
        2,
        [ line ~ts:0.1 ~seq:3 "run.start"; line ~ts:0.2 ~seq:3 "run.finish" ]
      );
      ( "duplicate run.finish",
        3,
        [
          line ~ts:0.1 ~seq:0 "run.start";
          line ~ts:0.2 ~seq:1 "run.finish";
          line ~ts:0.3 ~seq:2 "run.finish";
        ] );
      ("orphan run.finish", 1, [ line ~ts:0.1 ~seq:0 "run.finish" ]);
    ]
  in
  List.iter
    (fun (what, want_line, lines) ->
      match Telemetry.validate_trace_lines lines with
      | Ok _ -> Alcotest.failf "accepted %s" what
      | Error (l, _) ->
          Alcotest.(check int) (what ^ " flagged on the right line") want_line
            l)
    broken

(* an empty trace is rejected as a whole-file diagnostic (line 0),
   distinct from a malformed line *)
let test_validate_trace_empty () =
  List.iter
    (fun (what, lines) ->
      match Telemetry.validate_trace_lines lines with
      | Ok n -> Alcotest.failf "%s accepted (%d events)" what n
      | Error (l, msg) ->
          Alcotest.(check int) (what ^ " flagged as whole-file") 0 l;
          Alcotest.(check string)
            (what ^ " message")
            "empty trace (no events)" msg)
    [ ("no lines", []); ("only blank lines", [ ""; "   "; "" ]) ];
  match Telemetry.validate_trace_lines [ "not json" ] with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error (l, _) ->
      Alcotest.(check int) "malformed line is not the empty diagnostic" 1 l

let test_chrome_export_shape () =
  reset ();
  with_recording (fun () ->
      Telemetry.emit "test.a" [];
      Telemetry.emit "test.b" [ ("n", Telemetry.Int 1) ]);
  match Telemetry.chrome_of_events (Telemetry.events ()) with
  | Telemetry.Obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Telemetry.List evs) ->
          Alcotest.(check bool) "one trace event per event" true
            (List.length evs >= 2)
      | _ -> Alcotest.fail "traceEvents missing or not a list")
  | _ -> Alcotest.fail "chrome trace is not an object"

(* --- a real run streams a schema-valid trace --------------------------- *)

let compile_full w =
  Harness.Exp.compile ~null_or_same:true ~move_down:true ~swap:true w

let test_run_trace_schema_valid () =
  reset ();
  let path = Filename.temp_file "satbelim-trace" ".jsonl" in
  let oc = open_out path in
  Telemetry.attach_sink oc;
  let chaos =
    Jrt.Chaos.create
      {
        Jrt.Chaos.seed = 1;
        faults = [ Jrt.Chaos.Late_spawn { at_instr = 1000; stores = 4 } ];
        quantum = None;
        gc_period = None;
      }
  in
  ignore
    (Harness.Exp.run
       ~gc:(Jrt.Runner.make_satb ~trigger_allocs:24 ~steps_per_increment:8 ())
       ~guards:true ~chaos ~fail_on_thread_error:false
       (compile_full Workloads.Db.t));
  Telemetry.detach_sink ();
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  match Telemetry.validate_trace_lines lines with
  | Ok n ->
      Alcotest.(check bool) "trace is non-trivial" true (n > 0);
      let kind_of line =
        match Telemetry.json_of_string line with
        | Ok (Telemetry.Obj fields) -> (
            match List.assoc_opt "kind" fields with
            | Some (Telemetry.Str k) -> k
            | _ -> "")
        | _ -> ""
      in
      let kinds = List.map kind_of lines in
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " event present") true (List.mem k kinds))
        [ "run.start"; "gc.cycle.start"; "chaos.fault"; "revoke.apply";
          "run.finish" ]
  | Error (line, msg) -> Alcotest.failf "line %d: %s" line msg

(* --- reconciliation: global counters == legacy machine stats ----------- *)

let check_reconciled (r : Jrt.Runner.report) =
  let m = r.machine in
  let same what counter legacy =
    if Telemetry.get_counter counter <> legacy then
      QCheck2.Test.fail_reportf "%s: telemetry %d <> legacy %d" what
        (Telemetry.get_counter counter)
        legacy
  in
  same "barriers" "jrt.barriers_executed" m.Jrt.Interp.barriers_executed;
  same "elided" "jrt.elided_barrier_execs" m.Jrt.Interp.elided_barrier_execs;
  same "retrace checks" "jrt.retrace_checks" m.Jrt.Interp.retrace_checks;
  same "revocation events" "jrt.revocation_events"
    m.Jrt.Interp.revocation_events;
  same "revoked sites" "jrt.revoked_sites" m.Jrt.Interp.revoked_sites;
  same "degradations" "jrt.degradations" m.Jrt.Interp.degradations;
  same "degraded swap execs" "jrt.degraded_swap_execs"
    m.Jrt.Interp.degraded_swap_execs;
  true

let reconciliation_prop =
  QCheck2.Test.make
    ~name:"telemetry counters reconcile with machine stats under chaos"
    ~count:20
    (QCheck2.Gen.triple
       (QCheck2.Gen.oneofl Workloads.Registry.table1)
       (QCheck2.Gen.int_range 1 500)
       QCheck2.Gen.bool)
    (fun (w, seed, use_retrace) ->
      let cw = compile_full w in
      let gc =
        if use_retrace then
          Jrt.Runner.make_retrace ~trigger_allocs:24 ~steps_per_increment:8 ()
        else Jrt.Runner.make_satb ~trigger_allocs:24 ~steps_per_increment:8 ()
      in
      let chaos = Jrt.Chaos.create (Jrt.Chaos.of_seed seed) in
      Telemetry.reset ();
      let r =
        Harness.Exp.run ~gc ~guards:true ~chaos ~fail_on_thread_error:false
          ~seed cw
      in
      check_reconciled r)

let test_reconciliation_budget_overflow () =
  (* the degraded-mode path (budget overflow) is rare under of_seed plans;
     pin it down deterministically *)
  let chaos =
    Jrt.Chaos.create
      {
        Jrt.Chaos.seed = 1;
        faults = [ Jrt.Chaos.Preempt_marker { at_alloc = 24; skips = 700 } ];
        quantum = None;
        gc_period = None;
      }
  in
  Telemetry.reset ();
  let r =
    Harness.Exp.run
      ~gc:(Jrt.Runner.make_retrace ~trigger_allocs:24 ~steps_per_increment:1 ())
      ~guards:true ~chaos ~retrace_budget:0 ~fail_on_thread_error:false
      (compile_full Workloads.Db.t)
  in
  Alcotest.(check bool) "degradation exercised" true
    (r.machine.Jrt.Interp.degradations > 0);
  Alcotest.(check bool) "reconciled" true (check_reconciled r)

(* --- provenance: every elided site explains itself ---------------------- *)

let test_explain_covers_all_elided_sites () =
  List.iter
    (fun (w : Workloads.Spec.t) ->
      let cw =
        Harness.Exp.compile ~null_or_same:true ~move_down:true ~swap:true
          ~summaries:true w
      in
      let compiled = cw.Harness.Exp.compiled in
      let stats = Satb_core.Driver.static_stats compiled in
      let exps = Satb_core.Driver.explanations compiled in
      Alcotest.(check int)
        (w.name ^ ": one explanation per elided site")
        stats.Satb_core.Driver.elided_sites (List.length exps);
      List.iter
        (fun (p : Satb_core.Driver.provenance) ->
          let site = Satb_core.Driver.string_of_site_key p.pv_key in
          Alcotest.(check bool)
            (w.name ^ "/" ^ site ^ ": names a rule")
            true
            (p.pv_rule <> "" && p.pv_rule <> "keep");
          Alcotest.(check bool)
            (w.name ^ "/" ^ site ^ ": has a fact chain")
            true
            (p.pv_facts <> []);
          match Satb_core.Driver.justification compiled p.pv_key with
          | Some j ->
              Alcotest.(check bool)
                (w.name ^ "/" ^ site ^ ": justification names the rule")
                true
                (String.length j >= String.length p.pv_rule)
          | None ->
              Alcotest.failf "%s/%s: no runtime justification" w.name site)
        exps)
    Workloads.Registry.table1

let test_explanations_sorted () =
  let cw = compile_full Workloads.Db.t in
  let exps = Satb_core.Driver.explanations cw.Harness.Exp.compiled in
  let keys = List.map (fun (p : Satb_core.Driver.provenance) -> p.pv_key) exps in
  Alcotest.(check bool) "deterministic site order" true
    (List.sort compare keys = keys)

let tests =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "reset keeps handles live" `Quick
      test_reset_keeps_handles;
    Alcotest.test_case "gauge and histogram" `Quick test_gauge_histogram;
    Alcotest.test_case "time records a duration" `Quick test_time_records;
    Alcotest.test_case "snapshot is sorted" `Quick test_snapshot_sorted;
    Alcotest.test_case "events drop when disarmed" `Quick
      test_events_noop_unless_armed;
    Alcotest.test_case "event ordering and JSON round-trip" `Quick
      test_event_ordering_and_roundtrip;
    Alcotest.test_case "JSONL schema validator" `Quick test_validate_event_line;
    Alcotest.test_case "trace validator rejects hand-broken traces" `Quick
      test_validate_trace_rejects_broken;
    Alcotest.test_case "trace validator reports empty traces distinctly"
      `Quick test_validate_trace_empty;
    Alcotest.test_case "chrome trace export shape" `Quick
      test_chrome_export_shape;
    Alcotest.test_case "chaos run streams a schema-valid trace" `Quick
      test_run_trace_schema_valid;
    QCheck_alcotest.to_alcotest reconciliation_prop;
    Alcotest.test_case "budget overflow reconciles" `Quick
      test_reconciliation_budget_overflow;
    Alcotest.test_case "explain covers every elided site (six workloads)"
      `Quick test_explain_covers_all_elided_sites;
    Alcotest.test_case "explanations are deterministically ordered" `Quick
      test_explanations_sorted;
  ]
