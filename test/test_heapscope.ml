(* Heap-state observatory tests: dominator-tree units on hand-built
   graphs, census/heap-counter reconciliation under chaos on both
   engines, and the float-accounting properties (the oracle's reachable
   set is always a subset of the collector's survivors; float is exactly
   zero when nothing overwrites references during marking). *)

module Dom = Heapscope.Dom
module Census = Heapscope.Census
module Obs = Heapscope.Observatory

(* ---- dominators on hand-built graphs ----------------------------------- *)

let graph edges n =
  let succ v = List.filter_map (fun (a, b) -> if a = v then Some b else None) edges in
  fun roots -> Dom.compute ~n ~succ ~roots

let test_dom_diamond () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3: neither arm dominates 3 *)
  let t = graph [ (0, 1); (0, 2); (1, 3); (2, 3) ] 4 [ 0 ] in
  Alcotest.(check int) "idom 1" 0 (Dom.idom t 1);
  Alcotest.(check int) "idom 2" 0 (Dom.idom t 2);
  Alcotest.(check int) "idom 3 joins at 0" 0 (Dom.idom t 3);
  Alcotest.(check int) "root under virtual root" (Dom.virtual_root t) (Dom.idom t 0);
  let ret = Dom.retained t ~units:(fun _ -> 1) in
  Alcotest.(check int) "0 retains all" 4 ret.(0);
  Alcotest.(check int) "1 retains itself" 1 ret.(1);
  Alcotest.(check int) "virtual root totals" 4 ret.(Dom.virtual_root t)

let test_dom_back_edge () =
  (* cycle through a back-edge: 0 -> 1 -> 2 -> 0 *)
  let t = graph [ (0, 1); (1, 2); (2, 0) ] 3 [ 0 ] in
  Alcotest.(check int) "idom 1" 0 (Dom.idom t 1);
  Alcotest.(check int) "idom 2" 1 (Dom.idom t 2);
  Alcotest.(check int) "idom 0" (Dom.virtual_root t) (Dom.idom t 0);
  Alcotest.(check (list int)) "chain from 2" [ 2; 1; 0 ] (Dom.chain t 2);
  let ret = Dom.retained t ~units:(fun v -> v + 1) in
  Alcotest.(check int) "0 retains the cycle" 6 ret.(0);
  Alcotest.(check int) "1 retains 2 and itself" 5 ret.(1)

let test_dom_disconnected () =
  (* 2 -> 3 unreachable from the root *)
  let t = graph [ (0, 1); (2, 3) ] 4 [ 0 ] in
  Alcotest.(check bool) "1 reachable" true (Dom.reachable t 1);
  Alcotest.(check bool) "2 unreachable" false (Dom.reachable t 2);
  Alcotest.(check int) "idom 2 is -1" (-1) (Dom.idom t 2);
  Alcotest.(check int) "idom 3 is -1" (-1) (Dom.idom t 3);
  Alcotest.(check (list int)) "chain of unreachable" [] (Dom.chain t 3);
  let ret = Dom.retained t ~units:(fun _ -> 1) in
  Alcotest.(check int) "unreachable retains 0" 0 ret.(2);
  Alcotest.(check int) "total counts reachable only" 2 ret.(Dom.virtual_root t)

let test_dom_multi_root () =
  (* an object held by two roots is dominated only by the virtual root *)
  let t = graph [ (0, 2); (1, 2) ] 3 [ 0; 1 ] in
  Alcotest.(check int) "idom 2" (Dom.virtual_root t) (Dom.idom t 2)

(* ---- census on a hand-built heap --------------------------------------- *)

let test_census_hand_heap () =
  let h = Jrt.Heap.create () in
  let s1 = Jrt.Sitemap.intern "T.m@1" and s2 = Jrt.Sitemap.intern "T.m@2" in
  let _a = Jrt.Heap.alloc_object ~site:s1 h "A" ~n_fields:2 in
  let _b = Jrt.Heap.alloc_object ~site:s1 h "A" ~n_fields:2 in
  let c = Jrt.Heap.alloc_object ~site:s2 h "B" ~n_fields:0 in
  h.Jrt.Heap.gc_cycle <- 3;
  let d = Jrt.Heap.alloc_object ~site:s2 h "B" ~n_fields:6 in
  Jrt.Heap.free h c;
  let rows = Census.of_heap h in
  let live, units = Census.totals rows in
  Alcotest.(check int) "live reconciles" h.Jrt.Heap.live_count live;
  Alcotest.(check int) "units reconcile" h.Jrt.Heap.live_units units;
  (* heaviest row first: two 4-unit A objects (8u) vs one 8-unit B *)
  (match rows with
  | r1 :: _ ->
      Alcotest.(check string) "top class" "A" r1.Census.cls;
      Alcotest.(check int) "top units" 8 r1.Census.units;
      Alcotest.(check int) "aged out of <=1" 0 r1.Census.ages.(0);
      Alcotest.(check int) "age 3 bucket" 2 r1.Census.ages.(2)
  | [] -> Alcotest.fail "census empty");
  let rb = List.find (fun r -> r.Census.cls = "B") rows in
  Alcotest.(check int) "B row is just the fresh object"
    (Jrt.Heap.size_units d) rb.Census.units;
  Alcotest.(check int) "fresh object in <=1" 1 rb.Census.ages.(0)

(* ---- census/oracle properties over real runs --------------------------- *)

let collectors =
  [
    ("satb", Jrt.Runner.make_satb ());
    ("incr", Jrt.Runner.make_incr ());
    ("retrace", Jrt.Runner.make_retrace ());
    ("hybrid", Jrt.Runner.make_hybrid ());
  ]

(* An observer that exercises the real observatory AND re-checks its two
   core invariants from first principles at every cycle end. *)
let checking_observer ~label obs cycles_seen (m : Jrt.Interp.t) =
  let h = m.Jrt.Interp.heap in
  (* census totals reconcile exactly with the heap's unit accounting *)
  let live, units = Census.totals (Census.of_heap h) in
  if live <> h.Jrt.Heap.live_count || units <> h.Jrt.Heap.live_units then
    Alcotest.failf "%s: census %d/%d vs heap %d/%d" label live units
      h.Jrt.Heap.live_count h.Jrt.Heap.live_units;
  (* the oracle's reachable set is a subset of the collector's survivors *)
  let reach = Jrt.Oracle.reachable h (Jrt.Interp.roots m) in
  Jrt.Oracle.Iset.iter
    (fun id ->
      if (Jrt.Heap.get h id).Jrt.Heap.dead then
        Alcotest.failf "%s: reachable object %d was swept" label id)
    reach;
  incr cycles_seen;
  Obs.observe obs m

let chaos_of seed =
  Jrt.Chaos.create
    {
      Jrt.Chaos.seed;
      faults =
        [
          Jrt.Chaos.Alloc_spike { at_instr = 400; count = 24 };
          Jrt.Chaos.Heap_pressure { at_alloc = 96 };
        ];
      quantum = None;
      gc_period = None;
    }

let reconcile_case ~engine ~seed () =
  let label_engine =
    match engine with `Interp -> "interp" | `Threaded -> "threaded"
  in
  List.iter
    (fun (gc_name, gc) ->
      List.iter
        (fun wname ->
          let w = Option.get (Workloads.Registry.find wname) in
          let cw = Harness.Exp.compile w in
          let obs = Obs.create () in
          let seen = ref 0 in
          let label =
            Printf.sprintf "%s/%s/%s/seed=%d" wname gc_name label_engine seed
          in
          let r =
            Harness.Exp.run ~gc ~guards:true ~seed ~engine
              ~chaos:(chaos_of seed) ~fail_on_thread_error:false
              ~observer:(checking_observer ~label obs seen)
              cw
          in
          (match r.Jrt.Runner.gc with
          | Some g ->
              Alcotest.(check int)
                (label ^ ": no violations") 0 g.Jrt.Runner.total_violations
          | None -> Alcotest.fail "expected gc summary");
          if !seen = 0 then Alcotest.failf "%s: no cycle observed" label;
          Alcotest.(check int)
            (label ^ ": observatory saw every cycle")
            !seen
            (List.length (Obs.cycles obs)))
        [ "db"; "jess" ])
    collectors

(* Float is exactly zero when no reference is overwritten while marking:
   concurrent marking then retains precisely the reachable set, i.e. the
   run is stop-the-world-equivalent.  compress and mpegaudio do int-array
   work with (almost) no barriers — their float must be 0 under every
   collector on both engines. *)
let float_zero_case ~engine () =
  List.iter
    (fun (gc_name, gc) ->
      List.iter
        (fun wname ->
          let w = Option.get (Workloads.Registry.find wname) in
          let cw = Harness.Exp.compile w in
          let obs = Obs.create () in
          let _r = Harness.Exp.run ~gc ~engine ~observer:(Obs.observe obs) cw in
          let fo, fu = Obs.float_totals obs in
          if fo <> 0 || fu <> 0 then
            Alcotest.failf "%s/%s: %d objects (%d units) floated" wname
              gc_name fo fu)
        [ "compress"; "mpegaudio" ])
    collectors

(* Property form of the reconciliation check: any seed, not just the
   three pinned chaos seeds. *)
let qcheck_reconcile =
  let w = Option.get (Workloads.Registry.find "db") in
  let cw = Harness.Exp.compile w in
  QCheck2.Test.make ~name:"census reconciles for arbitrary seeds" ~count:12
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      let obs = Obs.create () in
      let seen = ref 0 in
      let label = Printf.sprintf "db/satb/prop/seed=%d" seed in
      let _r =
        Harness.Exp.run ~gc:(Jrt.Runner.make_satb ()) ~seed
          ~chaos:(chaos_of seed) ~fail_on_thread_error:false
          ~observer:(checking_observer ~label obs seen)
          cw
      in
      !seen > 0 && !seen = List.length (Obs.cycles obs))

(* ---- verdict attribution plumbing -------------------------------------- *)

let test_verdict_log_gated () =
  (* track_heap off (the default): the interpreter must not accumulate
     the elided-write log at all *)
  let w = Option.get (Workloads.Registry.find "db") in
  let cw = Harness.Exp.compile w in
  let r = Harness.Exp.run ~gc:(Jrt.Runner.make_satb ()) cw in
  Alcotest.(check int)
    "no verdict log without observer" 0
    (List.length r.Jrt.Runner.machine.Jrt.Interp.elided_write_log)

let tests =
  [
    Alcotest.test_case "dominators: diamond" `Quick test_dom_diamond;
    Alcotest.test_case "dominators: back-edge cycle" `Quick test_dom_back_edge;
    Alcotest.test_case "dominators: disconnected" `Quick test_dom_disconnected;
    Alcotest.test_case "dominators: multi-root join" `Quick test_dom_multi_root;
    Alcotest.test_case "census: hand-built heap" `Quick test_census_hand_heap;
    Alcotest.test_case "census reconciles: interp, seed 42" `Quick
      (reconcile_case ~engine:`Interp ~seed:42);
    Alcotest.test_case "census reconciles: interp, seed 7" `Quick
      (reconcile_case ~engine:`Interp ~seed:7);
    Alcotest.test_case "census reconciles: interp, seed 101" `Quick
      (reconcile_case ~engine:`Interp ~seed:101);
    Alcotest.test_case "census reconciles: threaded, seed 42" `Quick
      (reconcile_case ~engine:`Threaded ~seed:42);
    Alcotest.test_case "census reconciles: threaded, seed 7" `Quick
      (reconcile_case ~engine:`Threaded ~seed:7);
    Alcotest.test_case "census reconciles: threaded, seed 101" `Quick
      (reconcile_case ~engine:`Threaded ~seed:101);
    Alcotest.test_case "float: zero without ref churn (interp)" `Quick
      (float_zero_case ~engine:`Interp);
    Alcotest.test_case "float: zero without ref churn (threaded)" `Quick
      (float_zero_case ~engine:`Threaded);
    Alcotest.test_case "verdict log gated off by default" `Quick
      test_verdict_log_gated;
    QCheck_alcotest.to_alcotest qcheck_reconcile;
  ]
