(* Tests for the GC pacing controller: goal-mode trigger recomputation,
   the degradation state machine and its exit hysteresis, hard-limit
   admission control (never exceeded, even end-to-end under any
   workload), assist reconciliation with the interpreter's counter, the
   deprecated fixed-mode alias, and the out-of-the-box default pacing
   that must cycle every table-1 workload with no flags at all. *)

module P = Jrt.Pacer

let heap_with ~live =
  let h = Jrt.Heap.create () in
  h.Jrt.Heap.live_units <- live;
  h

let goal_cfg ?soft_limit ?hard_limit g =
  { P.mode = P.Goal g; soft_limit; hard_limit; goal_floor = 64 }

(* --- goal mode: trigger recomputation ---------------------------------- *)

let test_trigger_recomputed () =
  let p = P.create (goal_cfg 2.0) in
  Alcotest.(check int)
    "first-cycle trigger is the floor" 64 (P.trigger_units p);
  P.note_cycle_end p (heap_with ~live:100) ~at_step:1000 ~pause_work:3;
  Alcotest.(check int)
    "trigger = live-at-mark-end x goal" 200 (P.trigger_units p);
  P.note_cycle_end p (heap_with ~live:10) ~at_step:2000 ~pause_work:3;
  Alcotest.(check int)
    "small live clamps back to the floor" 64 (P.trigger_units p);
  Alcotest.(check bool)
    "trigger reached starts a cycle" true
    (P.should_start p (heap_with ~live:64));
  Alcotest.(check bool)
    "below trigger does not" false
    (P.should_start p (heap_with ~live:63))

(* --- degradation: entry, boosted increments, exit hysteresis ----------- *)

let test_degradation_hysteresis () =
  let p = P.create (goal_cfg ~soft_limit:100 1.5) in
  let h = heap_with ~live:50 in
  P.before_alloc p h ~units:10;
  Alcotest.(check bool) "below soft: normal" false (P.degraded p);
  Alcotest.(check int) "no extra increments" 0 (P.at_safepoint p h);
  h.Jrt.Heap.live_units <- 95;
  P.before_alloc p h ~units:10;
  Alcotest.(check bool) "soft limit entered degraded" true (P.degraded p);
  Alcotest.(check bool)
    "degraded forces a cycle start" true (P.should_start p h);
  Alcotest.(check int) "one extra increment while degraded" 1
    (P.at_safepoint p h);
  (* still above 90% of the soft limit at the cycle boundary: no exit *)
  h.Jrt.Heap.live_units <- 95;
  P.note_cycle_end p h ~at_step:1000 ~pause_work:2;
  Alcotest.(check bool)
    "exit needs the hysteresis band, not just < soft" true (P.degraded p);
  (* mid-cycle drop below the band must NOT exit either *)
  h.Jrt.Heap.live_units <- 50;
  Alcotest.(check int)
    "exit only happens at a cycle boundary" 1 (P.at_safepoint p h);
  P.note_cycle_end p h ~at_step:2000 ~pause_work:2;
  Alcotest.(check bool) "cycle end below 90% recovers" false (P.degraded p);
  let s = P.stats p in
  Alcotest.(check int) "one degraded entry" 1 s.P.p_degraded_entries;
  Alcotest.(check bool)
    "degraded cycles recorded" true (s.P.p_degraded_cycles >= 1)

(* --- hard limit: refused before the allocation ------------------------- *)

let test_hard_limit_refuses_pre_alloc () =
  let p = P.create (goal_cfg ~hard_limit:100 1.5) in
  let h = heap_with ~live:99 in
  P.before_alloc p h ~units:1;
  (* exactly at the limit is still admitted: live + units > hard refuses *)
  Alcotest.(check bool)
    "allocation up to the limit is admitted" true
    (match P.state p with P.Normal -> true | _ -> false);
  (try
     P.before_alloc p h ~units:7;
     Alcotest.fail "over-limit allocation was admitted"
   with P.Hard_limit _ -> ());
  let s = P.stats p in
  Alcotest.(check bool)
    "state is hard-stop" true
    (match s.P.p_state with P.Hard_stop -> true | _ -> false);
  Alcotest.(check bool) "diagnostic recorded" true (s.P.p_hard_stop <> None);
  Alcotest.(check bool)
    "peak live never exceeded the limit" true (s.P.p_max_live_units <= 100)

let test_contradictory_configs_refused () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool)
    "soft >= hard refused" true
    (raises (fun () -> P.create (goal_cfg ~soft_limit:200 ~hard_limit:100 1.5)));
  Alcotest.(check bool)
    "goal <= 1.0 refused" true
    (raises (fun () -> P.create (goal_cfg 1.0)));
  Alcotest.(check bool)
    "negative goal refused" true
    (raises (fun () -> P.create (goal_cfg 0.5)))

(* --- end-to-end properties over the real runner ------------------------ *)

let compile w = Harness.Exp.compile ~null_or_same:true w

let pacer_stats (r : Jrt.Runner.report) : P.stats =
  match r.pacer with
  | Some s -> s
  | None -> Alcotest.fail "run has no pacer stats"

let violations (r : Jrt.Runner.report) =
  match r.gc with Some g -> g.total_violations | None -> 0

let gc_of ~pacing = function
  | "satb" -> Jrt.Runner.make_satb ~pacing ()
  | "incr" -> Jrt.Runner.make_incr ~pacing ()
  | "retrace" -> Jrt.Runner.make_retrace ~pacing ()
  | _ -> Jrt.Runner.make_hybrid ~pacing ()

let hard_limit_prop =
  QCheck2.Test.make
    ~name:"hard limit is never exceeded (and stops stay violation-free)"
    ~count:25
    (QCheck2.Gen.triple
       (QCheck2.Gen.oneofl Workloads.Registry.table1)
       (QCheck2.Gen.int_range 80 1200)
       (QCheck2.Gen.oneofl [ "satb"; "incr"; "retrace"; "hybrid" ]))
    (fun (w, hard, coll) ->
      let pacing =
        { P.default_config with
          soft_limit = Some (hard * 6 / 10);
          hard_limit = Some hard;
        }
      in
      let r =
        Harness.Exp.run ~gc:(gc_of ~pacing coll) ~guards:true
          ~fail_on_thread_error:false (compile w)
      in
      let s = pacer_stats r in
      s.P.p_max_live_units <= hard && violations r = 0)

let test_assists_reconcile () =
  List.iter
    (fun coll ->
      (* jbb peaks around 150 live units under this compile; 90 puts the
         whole steady state inside the degradation band *)
      let pacing = { P.default_config with soft_limit = Some 90 } in
      let r =
        Harness.Exp.run ~gc:(gc_of ~pacing coll) ~guards:true
          ~fail_on_thread_error:false (compile Workloads.Jbb.t)
      in
      let s = pacer_stats r in
      Alcotest.(check int)
        (coll ^ ": no violations while degraded") 0 (violations r);
      Alcotest.(check bool)
        (coll ^ ": run degraded, not died") true
        (s.P.p_degraded_cycles > 0 && s.P.p_hard_stop = None);
      Alcotest.(check bool) (coll ^ ": assists ran") true (s.P.p_assists > 0);
      Alcotest.(check int)
        (coll ^ ": pacer assists = interpreter assist execs")
        r.machine.Jrt.Interp.assist_execs s.P.p_assists)
    [ "satb"; "incr"; "retrace"; "hybrid" ]

let test_default_pacing_cycles_every_workload () =
  (* the --gc-trigger default-mismatch fix: with no pacing flags at all,
     every table-1 workload must exercise the collector *)
  List.iter
    (fun (w : Workloads.Spec.t) ->
      let r =
        Harness.Exp.run ~gc:(Jrt.Runner.make_satb ()) (compile w)
      in
      match r.gc with
      | Some g ->
          Alcotest.(check bool)
            (w.name ^ ": default pacing runs a cycle") true (g.cycles >= 1);
          Alcotest.(check int) (w.name ^ ": sound") 0 g.total_violations
      | None -> Alcotest.fail (w.name ^ ": no gc summary"))
    Workloads.Registry.table1

let test_fixed_alias_matches_trigger_allocs () =
  (* the two spellings of legacy pacing — ?trigger_allocs and
     config_of_trigger — must be the same run, bit for bit *)
  let go gc = Harness.Exp.run ~gc (compile Workloads.Db.t) in
  let a = go (Jrt.Runner.make_satb ~trigger_allocs:24 ()) in
  let b =
    go (Jrt.Runner.make_satb ~pacing:(P.config_of_trigger 24) ())
  in
  let summary (r : Jrt.Runner.report) =
    match r.gc with
    | Some g -> (r.steps, g.cycles, g.final_pause_works, g.pause_steps)
    | None -> (r.steps, 0, [], [])
  in
  Alcotest.(check bool) "identical reports" true (summary a = summary b);
  (try
     ignore
       (Jrt.Runner.make_satb ~trigger_allocs:24
          ~pacing:P.default_config ());
     Alcotest.fail "trigger_allocs + pacing accepted"
   with Invalid_argument _ -> ())

let tests =
  [
    Alcotest.test_case "goal mode recomputes the trigger at mark end" `Quick
      test_trigger_recomputed;
    Alcotest.test_case "degradation enters at soft limit, exits with \
                        hysteresis" `Quick test_degradation_hysteresis;
    Alcotest.test_case "hard limit refuses the allocation before it happens"
      `Quick test_hard_limit_refuses_pre_alloc;
    Alcotest.test_case "contradictory configs are refused" `Quick
      test_contradictory_configs_refused;
    QCheck_alcotest.to_alcotest hard_limit_prop;
    Alcotest.test_case "assists reconcile with the interpreter counter"
      `Quick test_assists_reconcile;
    Alcotest.test_case "default pacing cycles every table-1 workload" `Quick
      test_default_pacing_cycles_every_workload;
    Alcotest.test_case "fixed-mode alias reproduces --gc-trigger runs" `Quick
      test_fixed_alias_matches_trigger_allocs;
  ]
