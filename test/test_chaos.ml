(* Tests for the chaos fault-injection layer and the guard/revocation
   subsystem it exercises: the oracle self-test (deliberate barrier
   skips must always be caught), revocation closing the late-spawn hole,
   graceful degradation on retrace-budget overflow, and benign faults
   (marker preemption, heap pressure) staying violation-free. *)

let compile w =
  Harness.Exp.compile ~null_or_same:true ~move_down:true ~swap:true w

let chaos_of faults =
  Jrt.Chaos.create { Jrt.Chaos.seed = 1; faults; quantum = None; gc_period = None }

let satb () = Jrt.Runner.make_satb ~trigger_allocs:24 ~steps_per_increment:8 ()

let retrace ?(steps_per_increment = 8) () =
  Jrt.Runner.make_retrace ~trigger_allocs:24 ~steps_per_increment ()

let violations (r : Jrt.Runner.report) =
  match r.gc with Some g -> g.total_violations | None -> 0

(* --- oracle self-test --------------------------------------------------

   A deliberate, unguarded barrier skip severs the sole reference to a
   snapshot-reachable object while marking.  If the oracle ever lets one
   slide, the soundness suite's zero-violation results mean nothing, so
   this property must hold on every workload that gives the fault a
   window to fire. *)

let barrier_skip_caught (w : Workloads.Spec.t) seed =
  let chaos =
    Jrt.Chaos.create
      {
        Jrt.Chaos.seed;
        faults = [ Jrt.Chaos.Barrier_skip { at_instr = 200; victims = 2 } ];
        quantum = None;
        gc_period = None;
      }
  in
  let r =
    Harness.Exp.run ~gc:(satb ()) ~chaos ~fail_on_thread_error:false
      (compile w)
  in
  let skipped = (Jrt.Chaos.stats chaos).Jrt.Chaos.skipped_barriers in
  (skipped, violations r)

let test_oracle_selftest_all_workloads () =
  List.iter
    (fun (w : Workloads.Spec.t) ->
      let skipped, viols = barrier_skip_caught w 1 in
      Alcotest.(check bool)
        (w.name ^ ": fault fired") true (skipped > 0);
      Alcotest.(check bool)
        (w.name ^ ": oracle caught the skip") true (viols > 0))
    Workloads.Registry.table1

let oracle_selftest_prop =
  QCheck2.Test.make ~name:"oracle catches every barrier skip" ~count:30
    (QCheck2.Gen.pair
       (QCheck2.Gen.oneofl Workloads.Registry.table1)
       (QCheck2.Gen.int_range 1 1000))
    (fun (w, seed) ->
      let skipped, viols = barrier_skip_caught w seed in
      (* the plan is deterministic per (workload, seed); whenever a skip
         actually fires the snapshot invariant must break *)
      skipped = 0 || viols > 0)

(* --- late spawn: revocation closes the hole --------------------------- *)

let late_spawn = [ Jrt.Chaos.Late_spawn { at_instr = 1000; stores = 4 } ]

let run_late_spawn ~revoke ~gc w =
  let chaos = chaos_of late_spawn in
  let r =
    Harness.Exp.run ~gc ~guards:true ~revoke ~chaos
      ~fail_on_thread_error:false (compile w)
  in
  (r, (Jrt.Chaos.stats chaos).Jrt.Chaos.damage_stores)

let test_late_spawn_revoked () =
  List.iter
    (fun (w, gc) ->
      let r, damage = run_late_spawn ~revoke:true ~gc w in
      Alcotest.(check bool) "damage stores ran" true (damage > 0);
      Alcotest.(check int) "no violations" 0 (violations r);
      Alcotest.(check bool)
        "revocation happened" true
        (r.machine.Jrt.Interp.revocation_events > 0))
    [
      (Workloads.Db.t, satb ());
      (Workloads.Db.t, retrace ());
      (Workloads.Jbb.t, satb ());
      (Workloads.Jbb.t, retrace ());
    ]

let test_late_spawn_unrevoked_caught () =
  (* with revocation disabled the guarded swap elisions stay live after
     the second mutator appears; its damage stores go unlogged and the
     oracle must notice on at least one collector/workload pair *)
  let total =
    List.fold_left
      (fun acc (w, gc) ->
        let r, _ = run_late_spawn ~revoke:false ~gc w in
        acc + violations r)
      0
      [
        (Workloads.Jbb.t, satb ());
        (Workloads.Jbb.t, retrace ());
      ]
  in
  Alcotest.(check bool) "oracle caught the unrepaired spawn" true (total > 0)

(* --- retrace budget: graceful degradation ------------------------------ *)

let test_budget_overflow_degrades () =
  (* slow marking to one gray entry per increment and freeze it mid-scan
     so the cycle is still live during db's swap phase; a zero budget
     then trips the watchdog on the first unlogged store *)
  let chaos =
    chaos_of [ Jrt.Chaos.Preempt_marker { at_alloc = 24; skips = 700 } ]
  in
  let r =
    Harness.Exp.run
      ~gc:(retrace ~steps_per_increment:1 ())
      ~guards:true ~chaos ~retrace_budget:0 ~fail_on_thread_error:false
      (compile Workloads.Db.t)
  in
  Alcotest.(check int) "no violations" 0 (violations r);
  Alcotest.(check bool)
    "cycle degraded" true
    (r.machine.Jrt.Interp.degradations > 0);
  Alcotest.(check bool)
    "swap stores fell back to logging" true
    (r.machine.Jrt.Interp.degraded_swap_execs > 0);
  (* the over-budget entry is still enqueued and re-scanned: dropping it
     would be unsound *)
  let retraced =
    match r.gc with
    | Some g -> List.fold_left ( + ) 0 g.retraced
    | None -> 0
  in
  Alcotest.(check bool) "entry still re-scanned" true (retraced > 0)

(* --- benign faults stay violation-free --------------------------------- *)

let test_benign_faults_sound () =
  List.iter
    (fun (name, faults) ->
      List.iter
        (fun (w : Workloads.Spec.t) ->
          let chaos = chaos_of faults in
          let r =
            Harness.Exp.run ~gc:(satb ()) ~guards:true ~chaos
              ~fail_on_thread_error:false (compile w)
          in
          Alcotest.(check int) (name ^ "/" ^ w.name) 0 (violations r))
        [ Workloads.Db.t; Workloads.Jbb.t ])
    [
      ("preempt", [ Jrt.Chaos.Preempt_marker { at_alloc = 48; skips = 12 } ]);
      ("pressure", [ Jrt.Chaos.Heap_pressure { at_alloc = 64 } ]);
    ]

(* --- allocation faults vs the pacer ------------------------------------ *)

let alloc_faults =
  [
    ( "alloc-spike",
      [ Jrt.Chaos.Alloc_spike { at_instr = 800; count = 64 } ] );
    ( "mem-pressure",
      [
        Jrt.Chaos.Mem_pressure
          { at_alloc = 32; per_safepoint = 4; total = 200 };
      ] );
  ]

let test_alloc_faults_sound () =
  (* the new allocation faults are benign: ballast objects appear out of
     nowhere, but with no limits armed the runs stay violation-free and
     the fault demonstrably fired *)
  List.iter
    (fun (name, faults) ->
      List.iter
        (fun (w : Workloads.Spec.t) ->
          let chaos = chaos_of faults in
          let r =
            Harness.Exp.run ~gc:(satb ()) ~guards:true ~chaos
              ~fail_on_thread_error:false (compile w)
          in
          let s = Jrt.Chaos.stats chaos in
          Alcotest.(check bool)
            (name ^ "/" ^ w.name ^ ": fault fired") true
            (s.Jrt.Chaos.spike_allocs + s.Jrt.Chaos.ramp_allocs > 0);
          Alcotest.(check int) (name ^ "/" ^ w.name) 0 (violations r))
        [ Workloads.Db.t; Workloads.Jbb.t ])
    alloc_faults

let soft_gc ?hard_limit ~soft_limit () =
  let pacing =
    { Jrt.Pacer.default_config with soft_limit = Some soft_limit; hard_limit }
  in
  Jrt.Runner.make_satb ~pacing ~steps_per_increment:8 ()

let test_alloc_faults_degrade_not_die () =
  (* with a soft limit armed, an allocation fault pushes the heap into
     the degradation band: the run must degrade (and stay sound), never
     abort *)
  List.iter
    (fun (name, faults) ->
      let chaos = chaos_of faults in
      let r =
        Harness.Exp.run
          ~gc:(soft_gc ~soft_limit:90 ())
          ~guards:true ~chaos ~fail_on_thread_error:false
          (compile Workloads.Jbb.t)
      in
      let p =
        match r.pacer with
        | Some p -> p
        | None -> Alcotest.fail (name ^ ": no pacer stats")
      in
      Alcotest.(check int) (name ^ ": sound") 0 (violations r);
      Alcotest.(check bool)
        (name ^ ": degraded under pressure") true
        (p.Jrt.Pacer.p_degraded_cycles > 0);
      Alcotest.(check bool)
        (name ^ ": did not die") true
        (p.Jrt.Pacer.p_hard_stop = None && r.hard_stop = None))
    alloc_faults

let test_hard_limit_aborts_cleanly () =
  (* an unsurvivable spike against a hard limit must abort with the
     diagnostic — after finishing the in-flight cycle, so the oracle
     still checks every invariant — rather than corrupt state *)
  let chaos =
    chaos_of [ Jrt.Chaos.Alloc_spike { at_instr = 400; count = 400 } ]
  in
  let r =
    Harness.Exp.run
      ~gc:(soft_gc ~soft_limit:200 ~hard_limit:300 ())
      ~guards:true ~chaos ~fail_on_thread_error:false
      (compile Workloads.Db.t)
  in
  Alcotest.(check bool) "run reports the hard stop" true (r.hard_stop <> None);
  Alcotest.(check int) "aborted run is still sound" 0 (violations r);
  match r.pacer with
  | Some p ->
      Alcotest.(check bool)
        "live heap never exceeded the limit" true
        (p.Jrt.Pacer.p_max_live_units <= 300)
  | None -> Alcotest.fail "no pacer stats"

(* --- seed audit: every of_seed plan is sound, failures name the seed --- *)

let test_seed_plans_sound () =
  (* sweep a seed set through the derived fault plans (the CI trace
     smoke's seeds included); any failure message must carry the seed so
     the exact plan is reproducible from the log alone *)
  List.iter
    (fun seed ->
      let chaos = Jrt.Chaos.create (Jrt.Chaos.of_seed seed) in
      let r =
        Harness.Exp.run ~gc:(satb ()) ~guards:true ~chaos
          ~fail_on_thread_error:false (compile Workloads.Db.t)
      in
      Alcotest.(check int)
        (Printf.sprintf "chaos seed %d: violation-free" seed)
        0 (violations r);
      Alcotest.(check bool)
        (Printf.sprintf "chaos seed %d: no hard stop" seed)
        true (r.hard_stop = None))
    [ 42; 7; 101; 1; 2; 3; 17; 1000 ]

(* --- startup revocation ------------------------------------------------ *)

let test_startup_revocation_under_plain_satb () =
  (* swap verdicts assume the retrace collector; running the same
     compiled program under plain SATB with guards wired must patch the
     swap sites back at startup and stay sound *)
  let r =
    Harness.Exp.run ~gc:(satb ()) ~guards:true ~fail_on_thread_error:false
      (compile Workloads.Db.t)
  in
  Alcotest.(check int) "no violations" 0 (violations r);
  Alcotest.(check bool)
    "swap sites revoked at startup" true
    (r.machine.Jrt.Interp.revoked_sites > 0);
  Alcotest.(check int)
    "no tracing-state checks execute" 0 r.machine.Jrt.Interp.retrace_checks

let tests =
  [
    Alcotest.test_case "oracle self-test: all table1 workloads" `Quick
      test_oracle_selftest_all_workloads;
    QCheck_alcotest.to_alcotest oracle_selftest_prop;
    Alcotest.test_case "late spawn: revocation keeps runs sound" `Quick
      test_late_spawn_revoked;
    Alcotest.test_case "late spawn: --no-revoke is caught" `Quick
      test_late_spawn_unrevoked_caught;
    Alcotest.test_case "retrace budget overflow degrades gracefully" `Quick
      test_budget_overflow_degrades;
    Alcotest.test_case "benign faults stay violation-free" `Quick
      test_benign_faults_sound;
    Alcotest.test_case "allocation faults stay violation-free" `Quick
      test_alloc_faults_sound;
    Alcotest.test_case "allocation faults degrade, don't die" `Quick
      test_alloc_faults_degrade_not_die;
    Alcotest.test_case "hard limit aborts cleanly under a spike" `Quick
      test_hard_limit_aborts_cleanly;
    Alcotest.test_case "seed-derived plans are sound (seed in message)"
      `Quick test_seed_plans_sound;
    Alcotest.test_case "swap under plain satb revokes at startup" `Quick
      test_startup_revocation_under_plain_satb;
  ]
