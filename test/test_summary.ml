(* Interprocedural summary engine (Summary + Callgraph): unit checks of
   the summary domain on hand-written methods, caller-side integration —
   elisions that the blanket Invoke havoc loses must survive at inline
   limit 0 — and differential fuzzing: the summary transfer refines havoc
   pointwise, so its elided-site set is a superset, and both policies
   must preserve the SATB snapshot invariant. *)

open Jir.Types
module S = Satb_core.Summary

let parse = Jir.Parser.parse_linked

let src_lib =
  {|
class T
  field ref f
  field int i
  static ref sink
  method void <init> (ref) locals 1 ctor
    return
  end
  method void seti (ref int) locals 2
    aload 0
    iload 1
    putfield T.i
    return
  end
  method void setf (ref ref) locals 2
    aload 0
    aload 1
    putfield T.f
    return
  end
  method ref getf (ref) locals 1
    aload 0
    getfield T.f
    areturn
  end
  method void leak (ref) locals 1
    aload 0
    putstatic T.sink
    return
  end
  method ref mk () locals 0
    new T
    dup
    invoke T.<init>
    areturn
  end
  method int count (int) locals 1
    iload 0
    iconst 0
    if_icmpgt rec
    iconst 0
    ireturn
  rec:
    iload 0
    iconst 1
    isub
    invoke T.count
    iconst 1
    iadd
    ireturn
  end
  method void ping (int) locals 1
    iload 0
    iconst 0
    if_icmple fin
    iload 0
    iconst 1
    isub
    invoke T.pong
  fin:
    return
  end
  method void pong (int) locals 1
    iload 0
    invoke T.ping
    return
  end
end
class Main
  method void main () locals 0
    return
  end
end
|}

let tbl_of ?fixpoint_bound src =
  S.of_program ?fixpoint_bound (parse src)

let find tbl c m =
  match S.find tbl { mclass = c; mname = m } with
  | Some s -> s
  | None -> Alcotest.failf "no summary for %s.%s" c m

let test_int_write_must () =
  (* seti writes T.i of its receiver on every path: an integer w_must
     write, nothing escapes *)
  let s = find (tbl_of src_lib) "T" "seti" in
  Alcotest.(check bool) "receiver does not escape" false
    s.S.s_params.(0).ps_escapes;
  Alcotest.(check bool) "no unknown writes" false
    s.S.s_params.(0).ps_writes_top;
  match S.Fmap.find_opt (Satb_core.Field_id.F ("T", "i")) s.S.s_params.(0).ps_writes with
  | Some w ->
      Alcotest.(check bool) "integer write" true w.S.w_int;
      Alcotest.(check bool) "definite on return" true w.S.w_must
  | None -> Alcotest.fail "T.i write not recorded"

let test_ref_write_recorded () =
  (* setf stores param 1 into param 0's field f: the write's value shape
     names param 1, and neither argument escapes to another thread *)
  let s = find (tbl_of src_lib) "T" "setf" in
  Alcotest.(check bool) "receiver does not escape" false
    s.S.s_params.(0).ps_escapes;
  Alcotest.(check bool) "stored value does not escape" false
    s.S.s_params.(1).ps_escapes;
  match S.Fmap.find_opt (Satb_core.Field_id.F ("T", "f")) s.S.s_params.(0).ps_writes with
  | Some w ->
      Alcotest.(check bool) "value may be param 1" true
        (S.Iset.mem 1 w.S.w_val.vs_params);
      Alcotest.(check bool) "value is not global" false w.S.w_val.vs_global
  | None -> Alcotest.fail "T.f write not recorded"

let test_getter_pure () =
  let s = find (tbl_of src_lib) "T" "getf" in
  Alcotest.(check bool) "getter is pure" true (S.pure s);
  match s.S.s_ret with
  | S.Ret_shape _ -> ()
  | _ -> Alcotest.fail "expected a shaped return"

let test_leak_escapes () =
  let s = find (tbl_of src_lib) "T" "leak" in
  Alcotest.(check bool) "argument escapes" true s.S.s_params.(0).ps_escapes;
  match s.S.s_statics with
  | S.Sw_set [ fr ] ->
      Alcotest.(check string) "static class" "T" fr.fclass;
      Alcotest.(check string) "static field" "sink" fr.fname
  | _ -> Alcotest.fail "expected exactly T.sink written"

let test_factory_fresh () =
  let s = find (tbl_of src_lib) "T" "mk" in
  Alcotest.(check bool) "allocates" true s.S.s_allocates;
  match s.S.s_ret with
  | S.Ret_fresh (cn, _) -> Alcotest.(check string) "fresh class" "T" cn
  | _ -> Alcotest.fail "expected a fresh return"

let test_recursion_converges () =
  (* count is self-recursive but effect-free: the SCC fixpoint must
     converge to a pure summary, not widen to havoc *)
  let tbl = tbl_of src_lib in
  Alcotest.(check int) "nothing havoced" 0 (S.n_havoced tbl);
  let s = find tbl "T" "count" in
  Alcotest.(check bool) "recursive method pure" true (S.pure s);
  let s = find tbl "T" "ping" in
  Alcotest.(check bool) "mutually recursive method pure" true (S.pure s)

let test_fixpoint_bound_widens () =
  (* bound 0: recursive components cannot converge and widen to havoc;
     non-recursive methods are unaffected *)
  let tbl = tbl_of ~fixpoint_bound:0 src_lib in
  Alcotest.(check bool) "recursive members havoced" true (S.n_havoced tbl >= 3);
  let s = find tbl "T" "count" in
  Alcotest.(check bool) "count degraded" false (S.pure s);
  let s = find tbl "T" "getf" in
  Alcotest.(check bool) "getf still precise" true (S.pure s)

(* ---- caller-side integration at inline limit 0 ------------------------ *)

let compile ~summaries src =
  Satb_core.Driver.compile ~inline_limit:0
    ~conf:{ Satb_core.Analysis.default_config with summaries }
    (parse src)

let elided_sites (c : Satb_core.Driver.compiled) =
  List.concat_map
    (fun (r : Satb_core.Analysis.method_result) ->
      List.filter_map
        (fun (v : Satb_core.Analysis.verdict) ->
          if v.v_elide then Some (r.mr_class, r.mr_method, v.v_pc) else None)
        r.verdicts)
    c.results

let src_caller body =
  {|
class T
  field ref f
  field int i
  static ref sink
  method void <init> (ref) locals 1 ctor
    return
  end
  method void seti (ref int) locals 2
    aload 0
    iload 1
    putfield T.i
    return
  end
  method void leak (ref) locals 1
    aload 0
    putstatic T.sink
    return
  end
  method ref mk () locals 0
    new T
    dup
    invoke T.<init>
    areturn
  end
end
class Main
  method void main () locals 1
|}
  ^ body ^ {|
    return
  end
end
|}

let test_benign_callee_keeps_prenull () =
  (* new T; seti(t, 7); t.f <- t : the integer-writing callee must not
     destroy thread-locality or the definite nullness of T.f *)
  let body =
    {|
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    iconst 7
    invoke T.seti
    aload 0
    aload 0
    putfield T.f
|}
  in
  let off = compile ~summaries:false (src_caller body) in
  let on = compile ~summaries:true (src_caller body) in
  Alcotest.(check int) "havoc loses the elision" 0
    (List.length (elided_sites off));
  Alcotest.(check int) "summary keeps the elision" 1
    (List.length (elided_sites on))

let test_escaping_callee_blocks_elision () =
  (* leak(t) publishes t through a static: the store must keep its
     barrier even with summaries on *)
  let body =
    {|
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    invoke T.leak
    aload 0
    aload 0
    putfield T.f
|}
  in
  let on = compile ~summaries:true (src_caller body) in
  Alcotest.(check int) "escaped receiver keeps barrier" 0
    (List.length (elided_sites on))

let test_fresh_return_elides () =
  (* t = mk(): the returned object is fresh and unescaped, so t.f is
     definitely null at the store *)
  let body =
    {|
    invoke T.mk
    astore 0
    aload 0
    aload 0
    putfield T.f
|}
  in
  let off = compile ~summaries:false (src_caller body) in
  let on = compile ~summaries:true (src_caller body) in
  Alcotest.(check int) "havoc: global return" 0 (List.length (elided_sites off));
  Alcotest.(check int) "summary: fresh return" 1
    (List.length (elided_sites on))

let test_summary_elision_guarded_closed_world () =
  (* every elision downstream of a consulted summary carries the
     closed-world guard, so a later class load can revoke it *)
  let body =
    {|
    invoke T.mk
    astore 0
    aload 0
    aload 0
    putfield T.f
|}
  in
  let on = compile ~summaries:true (src_caller body) in
  match elided_sites on with
  | [ (c, m, pc) ] ->
      let assumptions =
        Satb_core.Driver.site_assumptions on
          { sk_class = c; sk_method = m; sk_pc = pc }
      in
      Alcotest.(check bool) "closed-world guard attached" true
        (List.mem Satb_core.Driver.Closed_world assumptions)
  | sites -> Alcotest.failf "expected one elided site, got %d" (List.length sites)

(* ---- differential fuzz ------------------------------------------------ *)

let compile_gen ~summaries prog =
  Satb_core.Driver.compile ~inline_limit:0
    ~conf:{ Satb_core.Analysis.default_config with summaries }
    prog

(* With summaries the analysis may only gain elisions: the summary
   transfer refines the havoc transfer pointwise. *)
let prop_summaries_superset =
  QCheck2.Test.make ~name:"summary elisions are a superset of havoc's"
    ~count:150 Gen.gen_program (fun p ->
      let prog = Jir.Program.of_program p in
      let off = compile_gen ~summaries:false prog in
      let on = compile_gen ~summaries:true prog in
      List.for_all
        (fun site -> List.mem site (elided_sites on))
        (elided_sites off))

(* Both policies must preserve the SATB snapshot invariant under a
   seed/pacing sweep. *)
let prop_summaries_sound =
  QCheck2.Test.make ~name:"SATB invariant with summary elisions" ~count:100
    (QCheck2.Gen.pair Gen.gen_program (QCheck2.Gen.int_range 1 1000))
    (fun (p, seed) ->
      let prog = Jir.Program.of_program p in
      List.for_all
        (fun summaries ->
          let compiled = compile_gen ~summaries prog in
          let policy c m pc =
            not
              (Satb_core.Driver.needs_barrier compiled
                 { sk_class = c; sk_method = m; sk_pc = pc })
          in
          let cfg = { Jrt.Interp.default_config with policy } in
          let r =
            Jrt.Runner.run ~cfg
              ~gc:
                (Jrt.Runner.Satb
                   { steps_per_increment = 1 + (seed mod 8); pacing = Jrt.Pacer.config_of_trigger 2 })
              ~seed
              ~quantum:(1 + (seed mod 30))
              ~gc_period:(1 + (seed mod 10))
              compiled.program
              ~entry:{ Jir.Types.mclass = "Main"; mname = "m" }
          in
          match r.gc with Some g -> g.total_violations = 0 | None -> false)
        [ false; true ])

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("int write is definite", test_int_write_must);
      ("ref write names the value", test_ref_write_recorded);
      ("getter pure", test_getter_pure);
      ("leak escapes via static", test_leak_escapes);
      ("factory returns fresh", test_factory_fresh);
      ("recursion converges", test_recursion_converges);
      ("fixpoint bound widens to havoc", test_fixpoint_bound_widens);
      ("benign callee keeps pre-null", test_benign_callee_keeps_prenull);
      ("escaping callee blocks elision", test_escaping_callee_blocks_elision);
      ("fresh return elides", test_fresh_return_elides);
      ("summary elision carries closed-world", test_summary_elision_guarded_closed_world);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_summaries_superset; prop_summaries_sound ]
