(* Tests for the hybrid write barrier: collector capability records, the
   split-verdict lattice of the analysis, half-independent revocation at
   safepoints, and the end-to-end per-half counter invariants under the
   hybrid collector. *)

module Driver = Satb_core.Driver
module Analysis = Satb_core.Analysis

(* --- collector capability records ------------------------------------- *)

let caps_str (c : Jrt.Gc_hooks.caps) =
  Printf.sprintf "{retrace_protocol=%b; descending_scan=%b; insertion_half=%b}"
    c.retrace_protocol c.descending_scan c.insertion_half

let caps_t : Jrt.Gc_hooks.caps Alcotest.testable =
  Alcotest.testable (Fmt.of_to_string caps_str) ( = )

let test_caps_of_choice () =
  let check name choice expected =
    Alcotest.check caps_t name expected (Jrt.Runner.caps_of_choice choice)
  in
  check "no_gc is vacuously capable" Jrt.Runner.No_gc
    {
      Jrt.Gc_hooks.retrace_protocol = true;
      descending_scan = true;
      insertion_half = true;
    };
  check "satb scans descending only"
    (Jrt.Runner.make_satb ())
    {
      Jrt.Gc_hooks.retrace_protocol = false;
      descending_scan = true;
      insertion_half = false;
    };
  check "incr has no extension caps"
    (Jrt.Runner.make_incr ())
    {
      Jrt.Gc_hooks.retrace_protocol = false;
      descending_scan = false;
      insertion_half = false;
    };
  check "retrace adds the tracing-state protocol"
    (Jrt.Runner.make_retrace ())
    {
      Jrt.Gc_hooks.retrace_protocol = true;
      descending_scan = true;
      insertion_half = false;
    };
  check "hybrid consumes the insertion half, nothing else"
    (Jrt.Runner.make_hybrid ())
    {
      Jrt.Gc_hooks.retrace_protocol = false;
      descending_scan = false;
      insertion_half = true;
    }

(* The installed collectors must actually expose the capabilities the
   run-start assertion checks against. *)
let test_collector_caps_agree () =
  let heap = Jrt.Heap.create () in
  let g =
    Jrt.Hybrid_gc.create heap
      ~static_roots:(fun () -> [])
      ~thread_roots:(fun () -> [])
  in
  Alcotest.check caps_t "hybrid_gc module"
    (Jrt.Runner.caps_of_choice (Jrt.Runner.make_hybrid ()))
    (Jrt.Hybrid_gc.hooks g).Jrt.Gc_hooks.caps;
  Alcotest.check caps_t "gc_hooks.none"
    (Jrt.Runner.caps_of_choice Jrt.Runner.No_gc)
    Jrt.Gc_hooks.none.Jrt.Gc_hooks.caps

(* --- the split-verdict lattice ----------------------------------------- *)

(* One jasm method exercising all four points of the half-verdict
   lattice, in order of appearance:
     site A  fresh.f := arg     pre-null deletion elision, unknown value
     site B  arg.g := fresh     unknown receiver, freshly allocated value
     site C  fresh.g := fresh   both halves removable
     site D  arg.f := arg       neither half removable
     site E  fresh.f := null    f overwritten at A, stored value null *)
let lattice_src =
  {|
class T
  field ref f
  field ref g
  method void <init> (ref) locals 1 ctor
    return
  end
end
class Main
  static ref sink
  method void m (ref) locals 2
    new T
    dup
    invoke T.<init>
    astore 1
    aload 1
    aload 0
    putfield T.f
    aload 0
    new T
    dup
    invoke T.<init>
    putfield T.g
    aload 1
    new T
    dup
    invoke T.<init>
    putfield T.g
    aload 0
    aload 0
    putfield T.f
    aload 1
    aconst_null
    putfield T.f
    return
  end
end
|}

let lattice_compiled () =
  Driver.compile ~inline_limit:100 (Jir.Parser.parse_linked lattice_src)

let lattice_verdicts compiled =
  List.concat_map
    (fun (r : Analysis.method_result) ->
      if String.equal r.mr_method "m" then
        List.map (fun v -> (r.mr_class, r.mr_method, v)) r.verdicts
      else [])
    compiled.Driver.results

let test_half_verdict_lattice () =
  let compiled = lattice_compiled () in
  let vs = lattice_verdicts compiled in
  Alcotest.(check int) "five store sites" 5 (List.length vs);
  let flags =
    List.map
      (fun (_, _, (v : Analysis.verdict)) -> (v.v_elide, v.v_ins_elide))
      vs
  in
  Alcotest.(check (list (pair bool bool)))
    "per-half elide flags A..E"
    [
      (true, false) (* A: deletion only *);
      (false, true) (* B: insertion only (fresh value) *);
      (true, true) (* C: both *);
      (false, false) (* D: keep *);
      (false, true) (* E: insertion only (null value) *);
    ]
    flags;
  let hv =
    List.map
      (fun (c, m, (v : Analysis.verdict)) ->
        Driver.string_of_hybrid_verdict
          (Driver.hybrid_verdict compiled
             { Driver.sk_class = c; sk_method = m; sk_pc = v.v_pc }))
      vs
  in
  Alcotest.(check (list string))
    "combined verdicts A..E"
    [
      Driver.string_of_hybrid_verdict `Elide_deletion;
      Driver.string_of_hybrid_verdict `Elide_insertion;
      Driver.string_of_hybrid_verdict `Elide_both;
      Driver.string_of_hybrid_verdict `Keep;
      Driver.string_of_hybrid_verdict `Elide_insertion;
    ]
    hv;
  (* freshness proofs need the remark re-scan (the allocation may predate
     the cycle); a provably-null store does not *)
  let repair =
    List.map
      (fun (c, m, (v : Analysis.verdict)) ->
        Driver.ins_repair_needed compiled
          { Driver.sk_class = c; sk_method = m; sk_pc = v.v_pc })
      vs
  in
  Alcotest.(check (list bool))
    "repair needed only under freshness proofs"
    [ false; true; true; false; false ]
    repair

(* --- half-independent revocation --------------------------------------- *)

(* A synthetic all-sites policy where the two halves rest on different
   assumptions, so a single chaos fault revokes exactly one of them.
   No_gc keeps the run free of marking (nothing to make unsound) while
   safepoint revocation still fires. *)
let split_halves : Jrt.Interp.half_policy =
 fun _ _ _ ->
  {
    Jrt.Interp.hs_del_elide = true;
    hs_ins_elide = true;
    hs_ins_repair = true;
    hs_del_guards = [ Jrt.Interp.Single_mutator ];
    hs_ins_guards = [ Jrt.Interp.Closed_world ];
  }

let run_split_halves faults =
  let w = Workloads.Db.t in
  let prog = Workloads.Spec.parse w in
  let cfg =
    {
      Jrt.Interp.default_config with
      barrier_flavor = `Hybrid;
      halves = split_halves;
    }
  in
  let chaos =
    Jrt.Chaos.create { Jrt.Chaos.seed = 1; faults; quantum = None; gc_period = None }
  in
  let r =
    Jrt.Runner.run ~cfg ~gc:Jrt.Runner.No_gc ~seed:1 ~chaos prog
      ~entry:w.Workloads.Spec.entry
  in
  r.Jrt.Runner.machine

let sum_sites m f =
  Hashtbl.fold (fun _ st acc -> acc + f st) m.Jrt.Interp.stats 0

let check_per_half_sums m =
  Hashtbl.iter
    (fun site (st : Jrt.Interp.site_stats) ->
      let id = Jrt.Interp.site_id site in
      Alcotest.(check int)
        (id ^ ": elided+paid = execs") st.execs
        (st.elided_execs + st.paid_execs);
      Alcotest.(check int)
        (id ^ ": deletion halves = execs")
        st.execs
        (st.del_elided_execs + st.del_paid_execs);
      Alcotest.(check int)
        (id ^ ": insertion halves = execs")
        st.execs
        (st.ins_elided_execs + st.ins_paid_execs))
    m.Jrt.Interp.stats

let test_revoke_deletion_half_only () =
  let m =
    run_split_halves [ Jrt.Chaos.Late_spawn { at_instr = 1000; stores = 2 } ]
  in
  Alcotest.(check bool)
    "single-mutator revoked" true
    (List.mem Jrt.Interp.Single_mutator m.Jrt.Interp.revoked);
  Alcotest.(check bool)
    "closed-world intact" false
    (List.mem Jrt.Interp.Closed_world m.Jrt.Interp.revoked);
  Alcotest.(check bool)
    "revocation events fired" true
    (m.Jrt.Interp.revocation_events >= 1);
  Hashtbl.iter
    (fun site (st : Jrt.Interp.site_stats) ->
      let id = Jrt.Interp.site_id site in
      Alcotest.(check bool) (id ^ ": deletion half patched back") false
        st.st_del_elided;
      Alcotest.(check bool) (id ^ ": insertion half still elided") true
        st.st_ins_elided;
      Alcotest.(check bool) (id ^ ": Elide_both downgraded") false
        st.st_elided;
      Alcotest.(check int) (id ^ ": insertion half never paid") 0
        st.ins_paid_execs)
    m.Jrt.Interp.stats;
  check_per_half_sums m;
  (* stores before the spawn elided the deletion half, stores after paid *)
  Alcotest.(check bool)
    "some deletion halves elided (pre-spawn)" true
    (sum_sites m (fun st -> st.del_elided_execs) > 0);
  Alcotest.(check bool)
    "some deletion halves paid (post-revocation)" true
    (sum_sites m (fun st -> st.del_paid_execs) > 0)

let test_revoke_insertion_half_only () =
  let m = run_split_halves [ Jrt.Chaos.Class_load { at_instr = 800 } ] in
  Alcotest.(check bool)
    "closed-world revoked" true
    (List.mem Jrt.Interp.Closed_world m.Jrt.Interp.revoked);
  Alcotest.(check bool)
    "single-mutator intact" false
    (List.mem Jrt.Interp.Single_mutator m.Jrt.Interp.revoked);
  Hashtbl.iter
    (fun site (st : Jrt.Interp.site_stats) ->
      let id = Jrt.Interp.site_id site in
      Alcotest.(check bool) (id ^ ": insertion half patched back") false
        st.st_ins_elided;
      Alcotest.(check bool) (id ^ ": deletion half still elided") true
        st.st_del_elided;
      Alcotest.(check int) (id ^ ": deletion half never paid") 0
        st.del_paid_execs)
    m.Jrt.Interp.stats;
  check_per_half_sums m;
  Alcotest.(check bool)
    "some insertion halves paid (post-revocation)" true
    (sum_sites m (fun st -> st.ins_paid_execs) > 0)

(* --- half revocation under the real analysis and collector -------------- *)

(* Move-down elisions carry the Descending_scan guard (which the hybrid
   collector cannot honour, so the runner revokes them at startup) and
   summary-dependent insertion elisions carry Closed_world (which a
   chaos class load revokes mid-run): both revocations must flip exactly
   the halves that depend on them, leave the other half's elisions
   intact, and keep the end-reachability oracle clean. *)
let half_revocation_prop =
  QCheck2.Test.make
    ~name:
      "hybrid: revoking one half leaves the other intact and the oracle clean"
    ~count:15
    (QCheck2.Gen.pair
       (QCheck2.Gen.oneofl Workloads.Registry.table1)
       (QCheck2.Gen.int_range 1 500))
    (fun (w, seed) ->
      let cw =
        Harness.Exp.compile ~null_or_same:true ~move_down:true ~summaries:true
          w
      in
      let chaos = Jrt.Chaos.create (Jrt.Chaos.of_seed seed) in
      let r =
        Harness.Exp.run
          ~gc:(Jrt.Runner.make_hybrid ~trigger_allocs:24 ())
          ~guards:true ~chaos ~fail_on_thread_error:false ~seed cw
      in
      (match r.Jrt.Runner.gc with
      | Some g ->
          if g.Jrt.Runner.total_violations <> 0 then
            QCheck2.Test.fail_reportf "%s (seed %d): %d oracle violations"
              w.name seed g.Jrt.Runner.total_violations
      | None -> QCheck2.Test.fail_reportf "no gc summary");
      let m = r.Jrt.Runner.machine in
      let halves = Harness.Exp.half_policy_of cw in
      let dead guards =
        List.exists (fun a -> List.mem a m.Jrt.Interp.revoked) guards
      in
      Hashtbl.iter
        (fun (site : Jrt.Interp.site) (st : Jrt.Interp.site_stats) ->
          let hs =
            halves site.Jrt.Interp.s_class site.Jrt.Interp.s_method
              site.Jrt.Interp.s_pc
          in
          let expect_del =
            hs.Jrt.Interp.hs_del_elide && not (dead hs.Jrt.Interp.hs_del_guards)
          in
          let expect_ins =
            hs.Jrt.Interp.hs_ins_elide && not (dead hs.Jrt.Interp.hs_ins_guards)
          in
          if st.st_del_elided <> expect_del then
            QCheck2.Test.fail_reportf
              "%s (seed %d) %s: deletion half %b, expected %b" w.name seed
              (Jrt.Interp.site_id site) st.st_del_elided expect_del;
          if st.st_ins_elided <> expect_ins then
            QCheck2.Test.fail_reportf
              "%s (seed %d) %s: insertion half %b, expected %b" w.name seed
              (Jrt.Interp.site_id site) st.st_ins_elided expect_ins;
          if st.st_elided <> (st.st_del_elided && st.st_ins_elided) then
            QCheck2.Test.fail_reportf "%s (seed %d) %s: st_elided mirror broken"
              w.name seed (Jrt.Interp.site_id site);
          if
            st.execs <> st.del_elided_execs + st.del_paid_execs
            || st.execs <> st.ins_elided_execs + st.ins_paid_execs
            || st.execs <> st.elided_execs + st.paid_execs
          then
            QCheck2.Test.fail_reportf "%s (seed %d) %s: counter sums diverged"
              w.name seed (Jrt.Interp.site_id site))
        m.Jrt.Interp.stats;
      true)

(* --- end to end under the hybrid collector ------------------------------ *)

let test_hybrid_end_to_end () =
  let cw =
    Harness.Exp.compile ~null_or_same:true ~summaries:true Workloads.Jess.t
  in
  let r =
    Harness.Exp.run
      ~gc:(Jrt.Runner.make_hybrid ~trigger_allocs:24 ())
      ~guards:true cw
  in
  (match r.Jrt.Runner.gc with
  | Some g ->
      Alcotest.(check bool) "cycles ran" true (g.Jrt.Runner.cycles > 0);
      Alcotest.(check int) "no oracle violations" 0
        g.Jrt.Runner.total_violations
  | None -> Alcotest.fail "no gc summary");
  let m = r.Jrt.Runner.machine in
  Alcotest.(check bool)
    "deletion halves elided" true
    (sum_sites m (fun st -> st.del_elided_execs) > 0);
  Alcotest.(check bool)
    "insertion halves elided" true
    (sum_sites m (fun st -> st.ins_elided_execs) > 0);
  check_per_half_sums m;
  (* the legacy elided counter means both-halves-elided under hybrid *)
  Alcotest.(check int) "machine-level elided = both-halves sites"
    (sum_sites m (fun st -> st.elided_execs))
    m.Jrt.Interp.elided_barrier_execs

let tests =
  [
    Alcotest.test_case "collector capability records" `Quick
      test_caps_of_choice;
    Alcotest.test_case "installed collectors expose declared caps" `Quick
      test_collector_caps_agree;
    Alcotest.test_case "half-verdict lattice on a known program" `Quick
      test_half_verdict_lattice;
    Alcotest.test_case "late spawn revokes only the deletion half" `Quick
      test_revoke_deletion_half_only;
    Alcotest.test_case "class load revokes only the insertion half" `Quick
      test_revoke_insertion_half_only;
    QCheck_alcotest.to_alcotest half_revocation_prop;
    Alcotest.test_case "hybrid collector end-to-end invariants" `Quick
      test_hybrid_end_to_end;
  ]
