(* Tests for the §4.3 pairwise-swap extension and the retrace collector's
   tracing-state protocol that makes it sound. *)

let compile ?(swap = true) src =
  let prog = Jir.Parser.parse_linked src in
  let conf = { Satb_core.Analysis.default_config with swap } in
  Satb_core.Driver.compile ~inline_limit:100 ~conf prog

let flags compiled ~meth =
  List.concat_map
    (fun (r : Satb_core.Analysis.method_result) ->
      if String.equal r.mr_method meth then
        List.map (fun (v : Satb_core.Analysis.verdict) -> v.v_elide) r.verdicts
      else [])
    compiled.Satb_core.Driver.results

let hdr =
  {|
class T
  field ref f
  method void <init> (ref) locals 1 ctor
    return
  end
end
|}

(* the canonical pairwise swap over a global array:
   a = arr[j]; b = arr[j+1]; arr[j] = b; arr[j+1] = a *)
let swap_src =
  hdr
  ^ {|
class Main
  static ref arr
  method void swap (int) locals 3
    getstatic Main.arr
    iload 0
    aaload
    astore 1            ; a = arr[j]
    getstatic Main.arr
    iload 0
    iconst 1
    iadd
    aaload
    astore 2            ; b = arr[j+1]
    getstatic Main.arr
    iload 0
    aload 2
    aastore             ; arr[j] = b   (first store of the pair)
    getstatic Main.arr
    iload 0
    iconst 1
    iadd
    aload 1
    aastore             ; arr[j+1] = a (second store)
    return
  end
end
|}

let test_swap_pair_elided () =
  Alcotest.(check (list bool)) "both swap stores elided" [ true; true ]
    (flags (compile swap_src) ~meth:"swap")

let test_disabled_without_flag () =
  Alcotest.(check (list bool)) "all kept without the flag" [ false; false ]
    (flags (compile ~swap:false swap_src) ~meth:"swap")

let test_multi_threaded_gate () =
  (* the same code in a program that spawns a thread: extension disabled *)
  let src =
    swap_src
    ^ {|
class Aux
  method void w () locals 0
    return
  end
  method void go () locals 0
    spawn Aux.w
    return
  end
end
|}
  in
  Alcotest.(check (list bool)) "gated off when multi-threaded"
    [ false; false ]
    (flags (compile src) ~meth:"swap")

let test_retrace_check_sites () =
  (* the runtime must see the pair as an open/close tracing-check window *)
  let compiled = compile swap_src in
  let pcs reason =
    List.concat_map
      (fun (r : Satb_core.Analysis.method_result) ->
        List.filter_map
          (fun (v : Satb_core.Analysis.verdict) ->
            if v.v_reason = reason then Some v.v_pc else None)
          r.verdicts)
      compiled.Satb_core.Driver.results
  in
  match (pcs Satb_core.Analysis.Swap_first, pcs Satb_core.Analysis.Swap_second)
  with
  | [ first ], [ second ] ->
      let check pc =
        Satb_core.Driver.retrace_check compiled
          { sk_class = "Main"; sk_method = "swap"; sk_pc = pc }
      in
      Alcotest.(check bool) "first store opens" true (check first = `Open);
      Alcotest.(check bool) "second store closes" true (check second = `Close);
      Alcotest.(check bool) "other sites unchecked" true (check 0 = `None)
  | f, s ->
      Alcotest.failf "expected one swap pair, got %d first / %d second"
        (List.length f) (List.length s)

let test_wrong_slot_kept () =
  (* storing the displaced element two slots up is not a swap: the value
     from arr[j] never returns to a scanned slot's mirror position *)
  let src =
    hdr
    ^ {|
class Main
  static ref arr
  method void swap (int) locals 3
    getstatic Main.arr
    iload 0
    aaload
    astore 1
    getstatic Main.arr
    iload 0
    iconst 1
    iadd
    aaload
    astore 2
    getstatic Main.arr
    iload 0
    aload 2
    aastore
    getstatic Main.arr
    iload 0
    iconst 2
    iadd
    aload 1
    aastore             ; arr[j+2] = a: not the displaced slot's partner
    return
  end
end
|}
  in
  Alcotest.(check (list bool)) "mismatched second slot kept" [ false; false ]
    (flags (compile src) ~meth:"swap")

let test_different_arrays_kept () =
  (* the "swapped" value comes from a different global array *)
  let src =
    hdr
    ^ {|
class Main
  static ref arr
  static ref other
  method void swap (int) locals 3
    getstatic Main.arr
    iload 0
    aaload
    astore 1
    getstatic Main.other
    iload 0
    iconst 1
    iadd
    aaload
    astore 2
    getstatic Main.arr
    iload 0
    aload 2
    aastore
    getstatic Main.arr
    iload 0
    iconst 1
    iadd
    aload 1
    aastore
    return
  end
end
|}
  in
  Alcotest.(check (list bool)) "cross-array value kept" [ false; false ]
    (flags (compile src) ~meth:"swap")

let test_unwhitelisted_instr_kills_window () =
  (* an arraylength between the pair's stores could (in general code)
     hide collector work the safepoint-free window must exclude, so the
     pending swap is dropped and both stores keep their barriers *)
  let src =
    hdr
    ^ {|
class Main
  static ref arr
  method void swap (int) locals 3
    getstatic Main.arr
    iload 0
    aaload
    astore 1
    getstatic Main.arr
    iload 0
    iconst 1
    iadd
    aaload
    astore 2
    getstatic Main.arr
    iload 0
    aload 2
    aastore
    getstatic Main.arr
    arraylength
    istore 0
    getstatic Main.arr
    iload 0
    aload 1
    aastore
    return
  end
end
|}
  in
  Alcotest.(check (list bool)) "window torn by non-whitelisted instr"
    [ false; false ]
    (flags (compile src) ~meth:"swap")

let test_db_gains_and_stays_sound () =
  let r = Harness.Retrace.measure_one Workloads.Db.t in
  Alcotest.(check int) "no violations" 0 r.violations;
  Alcotest.(check bool) "array elimination appears" true
    (r.array_swap_pct > 40.0 && r.array_base_pct < 0.5);
  Alcotest.(check bool) "total elimination grows" true
    (r.elim_swap_pct > r.elim_base_pct +. 10.0);
  Alcotest.(check bool) "tracing checks executed" true (r.checks > 0)

(* db is single-threaded, so the adversarial knob is the collector
   pacing (mutator instructions per increment): sweeping it moves the
   concurrent index-array scan across every alignment with the sort's
   swap windows. *)
let sweep_db ~gc_periods ~gc =
  let cw = Harness.Exp.compile ~move_down:true ~swap:true Workloads.Db.t in
  List.fold_left
    (fun (v, rt) p ->
      let r = Harness.Exp.run ~gc ~gc_period:p cw in
      match r.gc with
      | Some g ->
          (v + g.total_violations, rt + List.fold_left ( + ) 0 g.retraced)
      | None -> (v, rt))
    (0, 0) gc_periods

let periods = List.init 120 (fun i -> i + 1) @ List.init 30 (fun i -> 96 + (i * 4))

let test_unsound_under_plain_satb () =
  (* the same elision under a collector without the tracing-state
     protocol: the oracle must catch the lost displaced element for at
     least one pacing *)
  let violations, _ =
    sweep_db ~gc_periods:periods
      ~gc:(Jrt.Runner.Satb { steps_per_increment = 1; pacing = Jrt.Pacer.config_of_trigger 8 })
  in
  Alcotest.(check bool) "oracle catches swap elision under plain SATB" true
    (violations > 0)

let test_sound_and_retracing_under_retrace () =
  let violations, retraces =
    sweep_db ~gc_periods:periods
      ~gc:(Jrt.Runner.Retrace { steps_per_increment = 1; pacing = Jrt.Pacer.config_of_trigger 8 })
  in
  Alcotest.(check int) "no violations across the pacing sweep" 0 violations;
  Alcotest.(check bool) "forced re-scans observed" true (retraces > 0)

(* property: swap elision stays sound under the retrace collector for
   adversarial pacings and schedules *)
let prop_swap_sound_under_retrace =
  QCheck2.Test.make ~name:"swap elision sound under retrace collector"
    ~count:15
    (QCheck2.Gen.int_range 1 10_000)
    (fun seed ->
      let cw = Harness.Exp.compile ~move_down:true ~swap:true Workloads.Db.t in
      let quantum = 1 + (seed * 7 mod 97) in
      let gc_period = 1 + (seed * 13 mod 401) in
      let steps = 1 + (seed mod 4) in
      let r =
        Harness.Exp.run
          ~gc:
            (Jrt.Runner.Retrace
               { steps_per_increment = steps; pacing = Jrt.Pacer.config_of_trigger 8 })
          ~seed ~quantum ~gc_period cw
      in
      match r.gc with Some g -> g.total_violations = 0 | None -> false)

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("swap pair elided", test_swap_pair_elided);
      ("disabled without flag", test_disabled_without_flag);
      ("multi-threaded gate", test_multi_threaded_gate);
      ("retrace check sites", test_retrace_check_sites);
      ("wrong second slot kept", test_wrong_slot_kept);
      ("different arrays kept", test_different_arrays_kept);
      ("non-whitelisted instr kills window", test_unwhitelisted_instr_kills_window);
      ("db gains, stays sound", test_db_gains_and_stays_sound);
      ("unsound under plain satb", test_unsound_under_plain_satb);
      ("sound and retracing under retrace", test_sound_and_retracing_under_retrace);
    ]
  @ [ QCheck_alcotest.to_alcotest prop_swap_sound_under_retrace ]
