(* Fuzzing the whole pipeline: for randomly generated programs, the
   analysis must terminate, its verdicts must agree with the interpreter's
   pre-null instrumentation, and running under SATB with elision enabled
   must preserve the snapshot invariant. *)

let compile prog =
  Satb_core.Driver.compile ~inline_limit:100
    ~conf:{ Satb_core.Analysis.default_config with null_or_same = true }
    prog

(* A site the analysis elides must never observe a non-null pre-value at
   runtime (the §4.2 correctness check, automated): null-or-same sites
   are the exception — they may overwrite their own value — so check
   against the verdict reason. *)
let prop_elided_sites_never_non_null =
  QCheck2.Test.make ~name:"elided pre-null sites never see non-null"
    ~count:150 Gen.gen_program (fun p ->
      let prog = Jir.Program.of_program p in
      let compiled = compile prog in
      let policy c m pc =
        not
          (Satb_core.Driver.needs_barrier compiled
             { sk_class = c; sk_method = m; sk_pc = pc })
      in
      let cfg = { Jrt.Interp.default_config with policy } in
      let r =
        Jrt.Runner.run ~cfg compiled.program
          ~entry:{ Jir.Types.mclass = "Main"; mname = "m" }
      in
      Hashtbl.fold
        (fun (site : Jrt.Interp.site) (st : Jrt.Interp.site_stats) ok ->
          ok
          &&
          if not st.st_elided then true
          else
            match
              Satb_core.Driver.verdict compiled
                {
                  sk_class = site.s_class;
                  sk_method = site.s_method;
                  sk_pc = site.s_pc;
                }
            with
            | Some { v_reason = Satb_core.Analysis.Null_or_same; _ } -> true
            | Some { v_reason = Satb_core.Analysis.Move_down; _ } -> true
            | _ -> st.pre_null_execs = st.execs)
        r.machine.Jrt.Interp.stats true)

let prop_satb_sound_on_generated =
  QCheck2.Test.make ~name:"SATB invariant on generated programs" ~count:100
    (QCheck2.Gen.pair Gen.gen_program (QCheck2.Gen.int_range 1 1000))
    (fun (p, seed) ->
      let prog = Jir.Program.of_program p in
      let compiled = compile prog in
      let policy c m pc =
        not
          (Satb_core.Driver.needs_barrier compiled
             { sk_class = c; sk_method = m; sk_pc = pc })
      in
      let cfg = { Jrt.Interp.default_config with policy } in
      let r =
        Jrt.Runner.run ~cfg
          ~gc:
            (Jrt.Runner.Satb
               { steps_per_increment = 1 + (seed mod 8); pacing = Jrt.Pacer.config_of_trigger 2 })
          ~seed
          ~quantum:(1 + (seed mod 30))
          ~gc_period:(1 + (seed mod 10))
          compiled.program
          ~entry:{ Jir.Types.mclass = "Main"; mname = "m" }
      in
      match r.gc with Some g -> g.total_violations = 0 | None -> false)

let prop_analysis_deterministic =
  QCheck2.Test.make ~name:"analysis is deterministic" ~count:100
    Gen.gen_program (fun p ->
      let prog = Jir.Program.of_program p in
      let verdicts prog =
        List.concat_map
          (fun (r : Satb_core.Analysis.method_result) ->
            List.map
              (fun (v : Satb_core.Analysis.verdict) ->
                (r.mr_class, r.mr_method, v.v_pc, v.v_elide))
              r.verdicts)
          (compile prog).results
      in
      verdicts prog = verdicts prog)

(* widening: a loop whose counter strides differently on two paths still
   reaches a fixed point, and the affected store conservatively keeps its
   barrier *)
let test_widening_terminates () =
  let src =
    {|
class T
  field ref f
  method void <init> (ref) locals 1 ctor
    return
  end
end
class Main
  static int p
  static ref sink
  method void m () locals 2
    iconst 8
    anewarray T
    astore 1
    iconst 0
    istore 0
  loop:
    iload 0
    iconst 8
    if_icmpge fin
    aload 1
    iload 0
    getstatic Main.sink
    aastore
    getstatic Main.p
    ifeq two
    iinc 0 1
    goto loop
  two:
    iinc 0 2
    goto loop
  fin:
    return
  end
end
|}
  in
  let prog = Jir.Parser.parse_linked src in
  let compiled = Satb_core.Driver.compile ~inline_limit:100 prog in
  match compiled.results with
  | _ ->
      (* reaching here at all means the fixed point was found; the store
         must be kept (stride is 1 on one path, 2 on the other) *)
      let kept =
        List.for_all
          (fun (r : Satb_core.Analysis.method_result) ->
            List.for_all
              (fun (v : Satb_core.Analysis.verdict) ->
                if r.mr_method = "m" then not v.v_elide else true)
              r.verdicts)
          compiled.results
      in
      Alcotest.(check bool) "mixed-stride store kept" true kept

let test_low_max_visits_still_sound () =
  (* an aggressive widening threshold loses precision but never soundness:
     run jess compiled with max_visits = 1 under SATB *)
  let prog = Workloads.Spec.parse Workloads.Jess.t in
  let conf = { Satb_core.Analysis.default_config with max_visits = 1 } in
  let compiled = Satb_core.Driver.compile ~inline_limit:100 ~conf prog in
  let policy c m pc =
    not
      (Satb_core.Driver.needs_barrier compiled
         { sk_class = c; sk_method = m; sk_pc = pc })
  in
  let cfg = { Jrt.Interp.default_config with policy } in
  let r =
    Jrt.Runner.run ~cfg
      ~gc:(Jrt.Runner.make_satb ~trigger_allocs:16 ~steps_per_increment:4 ())
      compiled.program ~entry:Workloads.Jess.t.entry
  in
  (match r.gc with
  | Some g -> Alcotest.(check int) "sound under widening" 0 g.total_violations
  | None -> Alcotest.fail "expected gc");
  Alcotest.(check (list (pair int string))) "no errors" [] r.thread_errors

let tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_elided_sites_never_non_null;
      prop_satb_sound_on_generated;
      prop_analysis_deterministic;
    ]
  @ List.map
      (fun (n, f) -> Alcotest.test_case n `Quick f)
      [
        ("widening terminates", test_widening_terminates);
        ("aggressive widening stays sound", test_low_max_visits_still_sound);
      ]
