(* Unit tests for the flight recorder: ring mechanics, interning, the
   anomaly detectors, dump round-trips, timeline reconstruction across
   all four collectors, render determinism and the capture protocol.

   The recorder is process-global; every test that drives it by hand
   starts from [Flight.set_capacity] (which implies [begin_run]) and
   installs its own step source, and ends by restoring the default
   capacity so the runner-driven tests below see a fresh 4096-slot
   ring. *)

let step = ref 0

let fresh ?(cap = 64) () =
  Flight.set_capacity cap;
  step := 0;
  Flight.set_step_source (fun () -> !step)

let restore () = Flight.set_capacity 4096

let at s k ~a ~b ~c =
  step := s;
  Flight.record k ~a ~b ~c

(* --- ring mechanics ------------------------------------------------------ *)

let test_ring_wrap () =
  fresh ~cap:16 ();
  for i = 1 to 40 do
    at i Flight.Pause ~a:i ~b:0 ~c:0
  done;
  Alcotest.(check int) "recorded counts every event" 40 (Flight.recorded ());
  let evs = Flight.events () in
  Alcotest.(check int) "ring keeps the last capacity events" 16
    (List.length evs);
  Alcotest.(check int) "oldest survivor is recorded-capacity+1" 25
    (List.hd evs).Flight.a;
  Alcotest.(check int) "newest survivor is the last record" 40
    (List.hd (List.rev evs)).Flight.a;
  restore ()

let test_disabled_records_nothing () =
  fresh ();
  Flight.set_enabled false;
  at 1 Flight.Pause ~a:1 ~b:0 ~c:0;
  Flight.set_enabled true;
  Alcotest.(check int) "disabled recorder drops the event" 0
    (Flight.recorded ());
  at 2 Flight.Pause ~a:2 ~b:0 ~c:0;
  Alcotest.(check int) "re-enabled recorder records" 1 (Flight.recorded ());
  restore ()

let test_intern_stability () =
  let a = Flight.intern "test-intern-a" in
  let b = Flight.intern "test-intern-b" in
  Alcotest.(check bool) "distinct strings, distinct ids" true (a <> b);
  Alcotest.(check int) "interning is idempotent" a
    (Flight.intern "test-intern-a");
  Alcotest.(check string) "str_of inverts intern" "test-intern-a"
    (Flight.str_of a);
  Flight.begin_run ();
  Alcotest.(check int) "the table survives begin_run" a
    (Flight.intern "test-intern-a")

(* --- anomaly detectors --------------------------------------------------- *)

let test_revocation_storm_detector () =
  fresh ();
  let site = Flight.intern "storm-site" in
  for i = 1 to 6 do
    at (i * 100) Flight.Revoke_site ~a:site ~b:site ~c:0
  done;
  Flight.poll ();
  (match Flight.anomalies () with
  | [ ("revocation-storm", at_step) ] ->
      Alcotest.(check int) "fired at the sixth revocation" 600 at_step
  | l -> Alcotest.failf "expected one storm firing, got %d" (List.length l));
  (* the firing itself is on the record, and it fires only once *)
  let anomaly_events =
    List.filter (fun e -> e.Flight.k = Flight.Anomaly) (Flight.events ())
  in
  Alcotest.(check int) "one anomaly event recorded" 1
    (List.length anomaly_events);
  for i = 7 to 20 do
    at (i * 100) Flight.Revoke_site ~a:site ~b:site ~c:0
  done;
  Flight.poll ();
  Alcotest.(check int) "fires at most once per run" 1
    (List.length (Flight.anomalies ()));
  restore ()

let test_storm_window_excludes_slow_revocation () =
  fresh ();
  let site = Flight.intern "slow-site" in
  (* six revocations, but spread over 6 x 2000 steps: never 6 within the
     5000-step window *)
  for i = 1 to 6 do
    at (i * 2000) Flight.Revoke_site ~a:site ~b:site ~c:0
  done;
  Flight.poll ();
  Alcotest.(check int) "slow revocation is not a storm" 0
    (List.length (Flight.anomalies ()));
  restore ()

let test_oscillation_and_spiral_detectors () =
  fresh ();
  for i = 1 to 4 do
    at (i * 1000) Flight.Soft_enter ~a:100 ~b:80 ~c:0;
    at ((i * 1000) + 500) Flight.Soft_exit ~a:70 ~b:80 ~c:0
  done;
  Flight.poll ();
  Alcotest.(check bool) "four soft-limit entries fire the oscillation" true
    (List.mem_assoc "pacing-oscillation" (Flight.anomalies ()));
  fresh ();
  for i = 1 to 50 do
    at (4000 + i) Flight.Assist ~a:0 ~b:0 ~c:0
  done;
  Flight.poll ();
  Alcotest.(check bool) "fifty assists in a window fire the spiral" true
    (List.mem_assoc "assist-spiral" (Flight.anomalies ()));
  restore ()

let test_cascade_detector () =
  fresh ();
  at 1000 Flight.Soft_enter ~a:100 ~b:80 ~c:0;
  at 2000 Flight.Swap_degraded ~a:0 ~b:0 ~c:0;
  Flight.poll ();
  Alcotest.(check int) "two degradation signals are not a cascade" 0
    (List.length (Flight.anomalies ()));
  at 3000 Flight.Revoke_site ~a:0 ~b:0 ~c:0;
  Flight.poll ();
  Alcotest.(check bool) "soft + degraded + revoke within a window cascade"
    true
    (List.mem_assoc "degradation-cascade" (Flight.anomalies ()));
  restore ()

(* --- dumps and timelines ------------------------------------------------- *)

let test_dump_roundtrip () =
  fresh ();
  Flight.set_meta [ ("collector", "test"); ("engine", "interp") ];
  Flight.set_sites_source (fun () ->
      [
        {
          Flight.fs_site = "C.m@1";
          fs_kind = "putfield";
          fs_state = "elided";
          fs_execs = 10;
          fs_paid = 0;
          fs_elided_execs = 10;
          fs_revocations = 0;
          fs_guards = [ "single-mutator" ];
        };
      ]);
  let coll = Flight.intern "test" in
  at 100 Flight.Mark_start ~a:coll ~b:0 ~c:5;
  at 200 Flight.Mark_end ~a:coll ~b:0 ~c:0;
  at 200 Flight.Pause ~a:3 ~b:0 ~c:0;
  let j = Flight.dump_json ~reason:"unit" in
  (* the dump survives a serialize/deserialize cycle too *)
  let reparsed =
    match Telemetry.json_of_string (Telemetry.json_to_string_pretty j) with
    | Ok j -> j
    | Error e -> Alcotest.failf "dump does not re-read as JSON: %s" e
  in
  match Flight.parse_dump reparsed with
  | Error e -> Alcotest.failf "dump does not parse back: %s" e
  | Ok d ->
      Alcotest.(check string) "reason survives" "unit" d.Flight.d_reason;
      Alcotest.(check int) "events survive" 3
        (List.length d.Flight.d_events);
      Alcotest.(check int) "sites survive" 1 (List.length d.Flight.d_sites);
      let tl = Flight.timeline_of d in
      (match tl.Flight.tl_cycles with
      | [ cy ] ->
          Alcotest.(check int) "cycle start" 100 cy.Flight.cy_start;
          Alcotest.(check (option int)) "cycle end" (Some 200)
            cy.Flight.cy_end;
          Alcotest.(check (option int)) "cycle pause" (Some 3)
            cy.Flight.cy_pause
      | l -> Alcotest.failf "expected one cycle, got %d" (List.length l));
      Alcotest.(check int) "no events dropped" 0 tl.Flight.tl_dropped;
      restore ()

let test_parse_dump_rejects_junk () =
  List.iter
    (fun (what, j) ->
      match Flight.parse_dump j with
      | Ok _ -> Alcotest.failf "parsed %s" what
      | Error _ -> ())
    [
      ("a non-object", Telemetry.Int 3);
      ("an empty object", Telemetry.Obj []);
      ( "an unversioned flight object",
        Telemetry.Obj [ ("flight", Telemetry.Obj []) ] );
    ]

(* --- runner integration: all four collectors ----------------------------- *)

let compile_full w =
  Harness.Exp.compile ~null_or_same:true ~move_down:true ~swap:true
    ~summaries:true w

let collectors =
  [
    ("satb", fun () -> Jrt.Runner.make_satb ~trigger_allocs:24 ());
    ("incremental-update", fun () -> Jrt.Runner.make_incr ~trigger_allocs:24 ());
    ("retrace", fun () -> Jrt.Runner.make_retrace ~trigger_allocs:24 ());
    ("hybrid", fun () -> Jrt.Runner.make_hybrid ~trigger_allocs:24 ());
  ]

let chaos_run ~gc cw =
  let chaos = Jrt.Chaos.create (Jrt.Chaos.of_seed 42) in
  Harness.Exp.run ~gc ~guards:true ~chaos ~fail_on_thread_error:false cw

(* each collector's chaos run dumps, parses back, and reconstructs a
   timeline whose cycles carry that collector's name — and rendering the
   same seed twice is byte-identical (the golden-test contract) *)
let test_timeline_all_collectors () =
  let cw = compile_full Workloads.Db.t in
  List.iter
    (fun (name, mk) ->
      let once () =
        ignore (chaos_run ~gc:(mk ()) cw);
        let d =
          match Flight.parse_dump (Flight.dump_json ~reason:"test") with
          | Ok d -> d
          | Error e -> Alcotest.failf "%s: dump does not parse: %s" name e
        in
        (Flight.render_timeline d, Flight.timeline_of d)
      in
      let r1, tl = once () in
      let r2, _ = once () in
      Alcotest.(check string) (name ^ ": render is deterministic") r1 r2;
      Alcotest.(check bool) (name ^ ": reconstructed at least one cycle")
        true
        (tl.Flight.tl_cycles <> []);
      List.iter
        (fun cy ->
          Alcotest.(check string)
            (name ^ ": cycle carries the collector name")
            name cy.Flight.cy_collector)
        tl.Flight.tl_cycles;
      Alcotest.(check bool) (name ^ ": sites reconstructed") true
        (tl.Flight.tl_sites <> []))
    collectors

(* the ring is reset per run: a second run's events never leak into the
   first run's dump surface *)
let test_begin_run_isolates_runs () =
  let cw = compile_full Workloads.Db.t in
  ignore (chaos_run ~gc:(Jrt.Runner.make_satb ~trigger_allocs:24 ()) cw);
  let first = List.length (Flight.events ()) in
  Alcotest.(check bool) "first run recorded" true (first > 0);
  ignore
    (Harness.Exp.run ~gc:(Jrt.Runner.make_satb ~trigger_allocs:24 ()) cw);
  let second = Flight.events () in
  Alcotest.(check bool) "no chaos events leak into the chaos-free run" true
    (List.for_all (fun e -> e.Flight.k <> Flight.Chaos_fault) second)

(* --- capture protocol ---------------------------------------------------- *)

let test_capture_once_when_armed () =
  let dir = Filename.temp_file "flight" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:Flight.disarm_capture @@ fun () ->
  Alcotest.(check bool) "unarmed capture is refused" true
    (Flight.capture ~reason:"early" = None);
  Flight.arm_capture ~dir ();
  match Flight.capture ~reason:"unit-test" with
  | None ->
      (* another test (or an earlier capture in this process) already
         holds the one capture slot; the protocol is first-wins *)
      Alcotest.(check bool) "a capture already exists" true
        (Flight.captured () <> None)
  | Some path ->
      Alcotest.(check bool) "dump lands in the armed dir" true
        (Filename.dirname path = dir);
      Alcotest.(check bool) "dump file exists" true (Sys.file_exists path);
      (match
         Telemetry.json_of_string
           (In_channel.with_open_text path In_channel.input_all)
       with
      | Ok j -> (
          match Flight.parse_dump j with
          | Ok d ->
              Alcotest.(check string) "reason stamped" "unit-test"
                d.Flight.d_reason
          | Error e -> Alcotest.failf "captured dump unparseable: %s" e)
      | Error e -> Alcotest.failf "captured dump not JSON: %s" e);
      Alcotest.(check (option string)) "second capture is refused" None
        (Flight.capture ~reason:"again");
      Alcotest.(check bool) "captured reports the first capture" true
        (Flight.captured () = Some (path, "unit-test"))

let tests =
  [
    Alcotest.test_case "ring wraps, keeping the newest events" `Quick
      test_ring_wrap;
    Alcotest.test_case "disabled recorder records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "interning is stable across runs" `Quick
      test_intern_stability;
    Alcotest.test_case "revocation-storm detector" `Quick
      test_revocation_storm_detector;
    Alcotest.test_case "storm window excludes slow revocation" `Quick
      test_storm_window_excludes_slow_revocation;
    Alcotest.test_case "oscillation and assist-spiral detectors" `Quick
      test_oscillation_and_spiral_detectors;
    Alcotest.test_case "degradation-cascade detector" `Quick
      test_cascade_detector;
    Alcotest.test_case "dump -> JSON -> parse -> timeline round-trip" `Quick
      test_dump_roundtrip;
    Alcotest.test_case "parse_dump rejects junk" `Quick
      test_parse_dump_rejects_junk;
    Alcotest.test_case
      "chaos timelines reconstruct deterministically (4 collectors)" `Quick
      test_timeline_all_collectors;
    Alcotest.test_case "begin_run isolates runs" `Quick
      test_begin_run_isolates_runs;
    Alcotest.test_case "capture: armed, once, parseable" `Quick
      test_capture_once_when_armed;
  ]
