(* Inliner tests: expansion mechanics and, crucially, behavioral
   equivalence — a program must compute the same results at every inline
   limit. *)

open Jir.Types

let parse src = Jir.Parser.parse_linked src

let inline limit prog =
  Satb_core.Inliner.inline_program ~conf:(Satb_core.Inliner.config limit) prog

let method_size prog ~cls ~meth =
  Array.length (Jir.Program.get_method prog { mclass = cls; mname = meth }).code

let src_calc =
  {|
class Main
  static int out
  method int double (int) locals 1
    iload 0
    iconst 2
    imul
    ireturn
  end
  method int apply (int) locals 1
    iload 0
    invoke Main.double
    iconst 1
    iadd
    ireturn
  end
  method void main () locals 0
    iconst 20
    invoke Main.apply
    putstatic Main.out
    return
  end
end
|}

let test_small_callee_inlined () =
  let prog = parse src_calc in
  let before = method_size prog ~cls:"Main" ~meth:"main" in
  let inlined = inline 100 prog in
  let after = method_size inlined ~cls:"Main" ~meth:"main" in
  Alcotest.(check bool) "main grew" true (after > before);
  (* no Invoke remains in main: both levels expanded *)
  let m = Jir.Program.get_method inlined { mclass = "Main"; mname = "main" } in
  Alcotest.(check bool) "no calls left" true
    (Array.for_all
       (function Invoke _ -> false | _ -> true)
       m.code)

let test_limit_zero_is_identity () =
  let prog = parse src_calc in
  let inlined = inline 0 prog in
  Alcotest.(check string) "identity at limit 0"
    (Jir.Pp.program_to_string (Jir.Program.program prog))
    (Jir.Pp.program_to_string (Jir.Program.program inlined))

let test_big_callee_not_inlined () =
  let prog = parse src_calc in
  let inlined = inline 2 prog in
  (* double (3 instrs) exceeds limit 2: calls remain *)
  let m = Jir.Program.get_method inlined { mclass = "Main"; mname = "apply" } in
  Alcotest.(check bool) "call kept" true
    (Array.exists (function Invoke _ -> true | _ -> false) m.code)

let out_static (r : Jrt.Runner.report) =
  match Hashtbl.find_opt r.machine.Jrt.Interp.statics ("Main", "out") with
  | Some (Jrt.Value.Int n) -> n
  | _ -> Alcotest.fail "no Main.out"

let run prog =
  Jrt.Runner.run prog ~entry:{ mclass = "Main"; mname = "main" }

let test_callee_exactly_at_limit () =
  (* the limit is inclusive: a callee whose size equals the limit is
     inlined; one instruction less and it is kept *)
  let prog = parse src_calc in
  let callee_size = method_size prog ~cls:"Main" ~meth:"double" in
  let has_call limit meth =
    let m =
      Jir.Program.get_method (inline limit prog) { mclass = "Main"; mname = meth }
    in
    Array.exists
      (function Invoke { mname = "double"; _ } -> true | _ -> false)
      m.code
  in
  Alcotest.(check bool) "inlined at exactly the limit" false
    (has_call callee_size "apply");
  Alcotest.(check bool) "kept one below the limit" true
    (has_call (callee_size - 1) "apply")

let src_mutual =
  {|
class Main
  static int out
  method int even (int) locals 1
    iload 0
    iconst 0
    if_icmpgt e1
    iconst 1
    ireturn
  e1:
    iload 0
    iconst 1
    isub
    invoke Main.odd
    ireturn
  end
  method int odd (int) locals 1
    iload 0
    iconst 0
    if_icmpgt o1
    iconst 0
    ireturn
  o1:
    iload 0
    iconst 1
    isub
    invoke Main.even
    ireturn
  end
  method void main () locals 0
    iconst 7
    invoke Main.even
    putstatic Main.out
    return
  end
end
|}

let test_mutual_recursion_bounded () =
  (* even/odd call each other: expansion must terminate (depth bound) and
     the program must still compute the same answer at every limit *)
  let prog = parse src_mutual in
  let expected = out_static (run prog) in
  Alcotest.(check int) "7 is odd" 0 expected;
  List.iter
    (fun limit ->
      let inlined = inline limit prog in
      let r = run inlined in
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "no errors at limit %d" limit)
        [] r.thread_errors;
      Alcotest.(check int)
        (Printf.sprintf "same result at limit %d" limit)
        expected (out_static r))
    [ 0; 6; 100 ];
  (* a cross-call survives somewhere: the cycle cannot be dissolved *)
  let inlined = inline 100 prog in
  let cross =
    List.exists
      (fun (_, (m : meth)) ->
        Array.exists
          (function
            | Invoke { mname = "even" | "odd"; _ } -> true
            | _ -> false)
          m.code)
      (List.map (fun (c, m) -> (c.cname, m)) (Jir.Program.all_methods inlined))
  in
  Alcotest.(check bool) "mutual call kept" true cross

let test_recursion_not_inlined_forever () =
  let prog =
    parse
      {|
class Main
  static int out
  method int fact (int) locals 1
    iload 0
    iconst 1
    if_icmpgt rec
    iconst 1
    ireturn
  rec:
    iload 0
    iload 0
    iconst 1
    isub
    invoke Main.fact
    imul
    ireturn
  end
  method void main () locals 0
    iconst 5
    invoke Main.fact
    putstatic Main.out
    return
  end
end
|}
  in
  let inlined = inline 100 prog in
  (* the expansion terminates and the self-call survives somewhere *)
  let m = Jir.Program.get_method inlined { mclass = "Main"; mname = "fact" } in
  Alcotest.(check bool) "self call kept" true
    (Array.exists
       (function
         | Invoke { mname = "fact"; _ } -> true
         | _ -> false)
       m.code)

let test_callee_with_handlers_not_inlined () =
  let prog =
    parse
      {|
class Main
  static int out
  method int guarded () locals 0
  t0:
    iconst 1
    iconst 0
    idiv
  t1:
    ireturn
  h:
    iconst 5
    ireturn
    catch arith t0 t1 h
  end
  method void main () locals 0
    invoke Main.guarded
    putstatic Main.out
    return
  end
end
|}
  in
  let inlined = inline 100 prog in
  let m = Jir.Program.get_method inlined { mclass = "Main"; mname = "main" } in
  Alcotest.(check bool) "guarded call kept" true
    (Array.exists (function Invoke _ -> true | _ -> false) m.code)

let test_behavior_preserved () =
  let prog = parse src_calc in
  let expected = out_static (run prog) in
  Alcotest.(check int) "reference result" 41 expected;
  List.iter
    (fun limit ->
      let r = run (inline limit prog) in
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "no errors at limit %d" limit)
        [] r.thread_errors;
      Alcotest.(check int)
        (Printf.sprintf "same result at limit %d" limit)
        expected (out_static r))
    [ 0; 1; 3; 5; 100 ]

let test_workload_behavior_preserved () =
  (* every workload must produce identical heap statistics at limit 0 and
     limit 100 (total allocations and executed-store counts are inlining
     invariants) *)
  List.iter
    (fun (w : Workloads.Spec.t) ->
      let totals limit =
        let prog = inline limit (Workloads.Spec.parse w) in
        let r = Jrt.Runner.run prog ~entry:w.entry in
        Alcotest.(check (list (pair int string)))
          (w.name ^ " no errors") [] r.thread_errors;
        (r.machine.Jrt.Interp.heap.Jrt.Heap.total_allocated, r.dyn.total_execs)
      in
      let a0, s0 = totals 0 in
      let a1, s1 = totals 100 in
      Alcotest.(check int) (w.name ^ " allocations invariant") a0 a1;
      Alcotest.(check int) (w.name ^ " stores invariant") s0 s1)
    Workloads.Registry.table1

let test_nested_inlining_locals_disjoint () =
  (* regression: nested expansion must not double-shift callee temps; the
     jess generation body exercised the bug *)
  let prog = Workloads.Spec.parse Workloads.Jess.t in
  let inlined = inline 100 prog in
  List.iter
    (fun (c, m) ->
      Array.iter
        (fun i ->
          let check_local l =
            if l >= m.max_locals then
              Alcotest.failf "%s.%s: local %d >= max_locals %d" c.cname
                m.mname l m.max_locals
          in
          match i with
          | Iload l | Istore l | Aload l | Astore l | Iinc (l, _) ->
              check_local l
          | _ -> ())
        m.code)
    (Jir.Program.all_methods inlined)

let prop_generated_behavior_preserved =
  QCheck2.Test.make ~name:"inlining preserves generated-program behavior"
    ~count:100 Gen.gen_program (fun p ->
      let prog = Jir.Program.of_program p in
      (* entry is Main.m; it returns nothing, so compare heap footprints
         and store counts *)
      let run prog =
        let r = Jrt.Runner.run prog ~entry:{ mclass = "Main"; mname = "m" } in
        ( r.machine.Jrt.Interp.heap.Jrt.Heap.total_allocated,
          r.dyn.total_execs,
          (* generated programs may legitimately die (e.g. a null deref on
             an uninitialized static); inlining must preserve that too *)
          List.map snd r.thread_errors )
      in
      run prog = run (inline 100 prog))

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("small callee inlined", test_small_callee_inlined);
      ("limit 0 identity", test_limit_zero_is_identity);
      ("big callee kept", test_big_callee_not_inlined);
      ("callee exactly at limit", test_callee_exactly_at_limit);
      ("mutual recursion bounded", test_mutual_recursion_bounded);
      ("recursion bounded", test_recursion_not_inlined_forever);
      ("handlers block inlining", test_callee_with_handlers_not_inlined);
      ("behavior preserved", test_behavior_preserved);
      ("workload behavior preserved", test_workload_behavior_preserved);
      ("nested locals disjoint", test_nested_inlining_locals_disjoint);
    ]
  @ [ QCheck_alcotest.to_alcotest prop_generated_behavior_preserved ]
