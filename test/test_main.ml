let () =
  Alcotest.run "satb-wbe"
    [
      ("intval", Test_intval.tests);
      ("intrange", Test_intrange.tests);
      ("state", Test_state.tests);
      ("parser", Test_parser.tests);
      ("minijava", Test_jsrc.tests);
      ("minijava-more", Test_jsrc_more.tests);
      ("verifier", Test_verifier.tests);
      ("cfg", Test_cfg.tests);
      ("runtime-units", Test_runtime_units.tests);
      ("types-units", Test_types_units.tests);
      ("differential", Test_differential.tests);
      ("field-analysis", Test_field_analysis.tests);
      ("array-analysis", Test_array_analysis.tests);
      ("null-or-same", Test_nullsame.tests);
      ("move-down", Test_movedown.tests);
      ("retrace", Test_retrace.tests);
      ("scan-direction", Test_scan_direction.tests);
      ("inliner", Test_inliner.tests);
      ("interp", Test_interp.tests);
      ("gc", Test_gc.tests);
      ("gc-edges", Test_gc_edges.tests);
      ("gc-hooks", Test_gc_hooks.tests);
      ("chaos", Test_chaos.tests);
      ("pacer", Test_pacer.tests);
      ("soundness", Test_soundness.tests);
      ("summary", Test_summary.tests);
      ("analysis-fuzz", Test_analysis_fuzz.tests);
      ("workloads", Test_workloads.tests);
      ("harness", Test_harness.tests);
      ("telemetry", Test_telemetry.tests);
      ("profile", Test_profile.tests);
      ("hybrid", Test_hybrid.tests);
      ("engines", Test_engines.tests);
      ("smoke", Test_smoke.tests);
    ]
