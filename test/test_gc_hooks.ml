(* Unit tests for the mutator/collector hook contract (Gc_hooks): which
   collectors honour on_unlogged_store, what the capability bits say,
   and how the hooks behave while the collector is idle. *)

let mk_heap_with_objs n =
  let heap = Jrt.Heap.create () in
  let objs =
    List.init n (fun _ -> (Jrt.Heap.alloc_object heap "T" ~n_fields:2).id)
  in
  (heap, objs)

let roots_of objs () = objs

(* --- none ------------------------------------------------------------- *)

let test_none_hooks () =
  let h = Jrt.Gc_hooks.none in
  Alcotest.(check bool) "never marking" false (h.is_marking ());
  (* every hook is a no-op; in particular the tracing-state check and the
     revocation repair must be safely ignorable *)
  h.log_ref_store ~obj:0 ~pre:Jrt.Value.Null;
  h.on_unlogged_store ~obj:0;
  h.on_revoke ~objs:[ 0; 1; 2 ];
  h.step ();
  Alcotest.(check bool) "still not marking" false (h.is_marking ());
  (* [none] vacuously satisfies every capability: it never marks, so no
     elision can ever be observed by a scan *)
  Alcotest.(check bool) "caps.retrace" true h.caps.retrace_protocol;
  Alcotest.(check bool) "caps.descending" true h.caps.descending_scan

(* --- plain SATB ------------------------------------------------------- *)

let test_satb_ignores_unlogged () =
  let heap, objs = mk_heap_with_objs 3 in
  let t = Jrt.Satb_gc.create heap ~roots:(roots_of objs) in
  let h = Jrt.Satb_gc.hooks t in
  Alcotest.(check bool) "no retrace protocol" false h.caps.retrace_protocol;
  Alcotest.(check bool) "descending by default" true h.caps.descending_scan;
  Jrt.Satb_gc.start_cycle t;
  let logged_before = t.logged in
  h.on_unlogged_store ~obj:(List.hd objs);
  Alcotest.(check int) "nothing logged" logged_before t.logged

let test_satb_ascending_caps () =
  let heap, objs = mk_heap_with_objs 1 in
  let t =
    Jrt.Satb_gc.create ~direction:Jrt.Satb_gc.Ascending heap
      ~roots:(roots_of objs)
  in
  let h = Jrt.Satb_gc.hooks t in
  Alcotest.(check bool)
    "ascending scan forfeits the cap" false h.caps.descending_scan

let test_satb_idle_contracts () =
  let heap, objs = mk_heap_with_objs 2 in
  let t = Jrt.Satb_gc.create heap ~roots:(roots_of objs) in
  let h = Jrt.Satb_gc.hooks t in
  Alcotest.(check bool) "idle" false (h.is_marking ());
  (* stepping, logging and revoking while idle must all be no-ops *)
  h.step ();
  h.log_ref_store ~obj:(List.hd objs) ~pre:Jrt.Value.Null;
  h.on_revoke ~objs;
  Alcotest.(check bool) "still idle" false (h.is_marking ());
  Alcotest.(check int) "no restarts while idle" 0 t.restarts;
  Jrt.Satb_gc.start_cycle t;
  Alcotest.(check bool) "marking after start" true (h.is_marking ())

let test_satb_revoke_restarts_mark () =
  let heap, objs = mk_heap_with_objs 2 in
  let t = Jrt.Satb_gc.create heap ~roots:(roots_of objs) in
  let h = Jrt.Satb_gc.hooks t in
  Jrt.Satb_gc.start_cycle t;
  h.on_revoke ~objs:[ List.hd objs ];
  Alcotest.(check int) "one restart" 1 t.restarts;
  Alcotest.(check bool) "still marking" true (h.is_marking ())

(* --- incremental update (card marking) -------------------------------- *)

let test_incr_ignores_unlogged () =
  let heap, objs = mk_heap_with_objs 3 in
  let t = Jrt.Incr_gc.create heap ~roots:(roots_of objs) in
  let h = Jrt.Incr_gc.hooks t in
  Alcotest.(check bool) "no retrace protocol" false h.caps.retrace_protocol;
  Alcotest.(check bool) "no descending contract" false h.caps.descending_scan;
  Jrt.Incr_gc.start_cycle t;
  let dirtied = t.dirtied_total in
  h.on_unlogged_store ~obj:(List.hd objs);
  Alcotest.(check int) "no card dirtied" dirtied t.dirtied_total

let test_incr_idle_contracts () =
  let heap, objs = mk_heap_with_objs 2 in
  let t = Jrt.Incr_gc.create heap ~roots:(roots_of objs) in
  let h = Jrt.Incr_gc.hooks t in
  Alcotest.(check bool) "idle" false (h.is_marking ());
  h.step ();
  h.on_revoke ~objs;
  Alcotest.(check bool) "still idle" false (h.is_marking ());
  Alcotest.(check int) "no cards dirtied while idle" 0 t.dirtied_total;
  Jrt.Incr_gc.start_cycle t;
  Alcotest.(check bool) "marking after start" true (h.is_marking ());
  (* under incremental update, revocation repair dirties the written
     objects so the marker re-examines them *)
  h.on_revoke ~objs;
  Alcotest.(check bool) "repair dirtied cards" true (t.dirtied_total > 0)

(* --- retrace ----------------------------------------------------------- *)

let test_retrace_caps_and_idle () =
  let heap, objs = mk_heap_with_objs 2 in
  let t = Jrt.Retrace_gc.create heap ~roots:(roots_of objs) in
  let h = Jrt.Retrace_gc.hooks t in
  Alcotest.(check bool) "retrace protocol" true h.caps.retrace_protocol;
  Alcotest.(check bool) "descending scan" true h.caps.descending_scan;
  Alcotest.(check bool) "idle" false (h.is_marking ());
  Alcotest.(check bool) "not degraded" false (Jrt.Retrace_gc.is_degraded t);
  (* the tracing-state check outside a marking cycle must not enqueue *)
  h.on_unlogged_store ~obj:(List.hd objs);
  h.on_revoke ~objs;
  h.step ();
  Alcotest.(check bool) "still idle" false (h.is_marking ());
  Alcotest.(check int) "no retrace entries" 0 t.enqueued

let test_retrace_budget_watchdog () =
  let heap, objs = mk_heap_with_objs 4 in
  let t =
    Jrt.Retrace_gc.create ~retrace_budget:1 heap ~roots:(roots_of objs)
  in
  let h = Jrt.Retrace_gc.hooks t in
  Jrt.Retrace_gc.start_cycle t;
  (* first enqueue is within budget; the second trips the watchdog but is
     still enqueued — dropping it would be unsound *)
  (match objs with
  | a :: b :: _ ->
      h.on_unlogged_store ~obj:a;
      Alcotest.(check bool) "within budget" false (Jrt.Retrace_gc.is_degraded t);
      h.on_unlogged_store ~obj:b;
      Alcotest.(check bool) "degraded" true (Jrt.Retrace_gc.is_degraded t);
      Alcotest.(check int) "both entries kept" 2 t.enqueued
  | _ -> assert false);
  let report = Jrt.Retrace_gc.finish_cycle t in
  Alcotest.(check bool) "report degraded" true report.degraded;
  Alcotest.(check bool) "overflow counted" true (report.budget_overflows > 0);
  (* the degraded flag describes a cycle; it clears once the cycle ends *)
  Alcotest.(check bool)
    "cleared after cycle" false (Jrt.Retrace_gc.is_degraded t)

let tests =
  [
    Alcotest.test_case "none: all hooks are no-ops" `Quick test_none_hooks;
    Alcotest.test_case "satb: ignores on_unlogged_store" `Quick
      test_satb_ignores_unlogged;
    Alcotest.test_case "satb: ascending scan drops the cap" `Quick
      test_satb_ascending_caps;
    Alcotest.test_case "satb: idle step/log/revoke are no-ops" `Quick
      test_satb_idle_contracts;
    Alcotest.test_case "satb: on_revoke restarts the mark" `Quick
      test_satb_revoke_restarts_mark;
    Alcotest.test_case "incr: ignores on_unlogged_store" `Quick
      test_incr_ignores_unlogged;
    Alcotest.test_case "incr: idle contracts, repair dirties" `Quick
      test_incr_idle_contracts;
    Alcotest.test_case "retrace: caps and idle contracts" `Quick
      test_retrace_caps_and_idle;
    Alcotest.test_case "retrace: budget watchdog degrades" `Quick
      test_retrace_budget_watchdog;
  ]
