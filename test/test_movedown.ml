(* Tests for the §4.3 move-down (delete-by-shift) extension. *)

let compile ?(move_down = true) src =
  let prog = Jir.Parser.parse_linked src in
  let conf = { Satb_core.Analysis.default_config with move_down } in
  Satb_core.Driver.compile ~inline_limit:100 ~conf prog

let flags compiled ~meth =
  List.concat_map
    (fun (r : Satb_core.Analysis.method_result) ->
      if String.equal r.mr_method meth then
        List.map (fun (v : Satb_core.Analysis.verdict) -> v.v_elide) r.verdicts
      else [])
    compiled.Satb_core.Driver.results

let hdr =
  {|
class T
  field ref f
  method void <init> (ref) locals 1 ctor
    return
  end
end
|}

(* the canonical clear-then-shift delete loop over a global array *)
let shift_src =
  hdr
  ^ {|
class Main
  static ref arr
  method void delete () locals 1
    getstatic Main.arr
    iconst 0
    aconst_null
    aastore               ; clear-first: keeps its barrier, starts the chain
    iconst 0
    istore 0
  loop:
    iload 0
    getstatic Main.arr
    arraylength
    iconst 1
    isub
    if_icmpge fin
    getstatic Main.arr
    iload 0
    getstatic Main.arr
    iload 0
    iconst 1
    iadd
    aaload
    aastore               ; move-down copy
    iinc 0 1
    goto loop
  fin:
    return
  end
end
|}

let test_shift_loop_elided () =
  Alcotest.(check (list bool)) "clear kept, shift elided" [ false; true ]
    (flags (compile shift_src) ~meth:"delete")

let test_disabled_without_flag () =
  Alcotest.(check (list bool)) "all kept without the flag" [ false; false ]
    (flags (compile ~move_down:false shift_src) ~meth:"delete")

let test_multi_threaded_gate () =
  (* the same code in a program that spawns a thread: extension disabled *)
  let src =
    shift_src
    ^ {|
class Aux
  method void w () locals 0
    return
  end
  method void go () locals 0
    spawn Aux.w
    return
  end
end
|}
  in
  Alcotest.(check (list bool)) "gated off when multi-threaded"
    [ false; false ]
    (flags (compile src) ~meth:"delete")

let test_no_clear_no_chain () =
  (* shifting without the clearing store: the first overwrite (the
     deleted element) would be lost, so nothing elides *)
  let src =
    hdr
    ^ {|
class Main
  static ref arr
  method void delete () locals 1
    iconst 0
    istore 0
  loop:
    iload 0
    getstatic Main.arr
    arraylength
    iconst 1
    isub
    if_icmpge fin
    getstatic Main.arr
    iload 0
    getstatic Main.arr
    iload 0
    iconst 1
    iadd
    aaload
    aastore
    iinc 0 1
    goto loop
  fin:
    return
  end
end
|}
  in
  Alcotest.(check (list bool)) "no chain start" [ false ]
    (flags (compile src) ~meth:"delete")

let test_wrong_delta_breaks_chain () =
  (* copying from two slots above moves elements down by 2: a value can
     skip past the marker, so only delta 1 is accepted *)
  let src =
    hdr
    ^ {|
class Main
  static ref arr
  method void delete () locals 1
    getstatic Main.arr
    iconst 0
    aconst_null
    aastore
    iconst 0
    istore 0
  loop:
    iload 0
    getstatic Main.arr
    arraylength
    iconst 2
    isub
    if_icmpge fin
    getstatic Main.arr
    iload 0
    getstatic Main.arr
    iload 0
    iconst 2
    iadd
    aaload
    aastore
    iinc 0 1
    goto loop
  fin:
    return
  end
end
|}
  in
  Alcotest.(check (list bool)) "delta 2 kept" [ false; false ]
    (flags (compile src) ~meth:"delete")

let test_different_arrays_no_chain () =
  (* loading from one global array and storing into another is not a
     rearrangement: kept *)
  let src =
    hdr
    ^ {|
class Main
  static ref arr
  static ref other
  method void delete () locals 1
    getstatic Main.arr
    iconst 0
    aconst_null
    aastore
    iconst 0
    istore 0
  loop:
    iload 0
    getstatic Main.arr
    arraylength
    iconst 1
    isub
    if_icmpge fin
    getstatic Main.arr
    iload 0
    getstatic Main.other
    iload 0
    iconst 1
    iadd
    aaload
    aastore
    iinc 0 1
    goto loop
  fin:
    return
  end
end
|}
  in
  Alcotest.(check (list bool)) "cross-array copy kept" [ false; false ]
    (flags (compile src) ~meth:"delete")

let test_putstatic_kills_identity () =
  (* replacing the static between the clear and the shift severs the
     must-alias identity: kept *)
  let src =
    hdr
    ^ {|
class Main
  static ref arr
  method void delete () locals 1
    getstatic Main.arr
    iconst 0
    aconst_null
    aastore
    iconst 8
    anewarray T
    putstatic Main.arr
    iconst 0
    istore 0
  loop:
    iload 0
    getstatic Main.arr
    arraylength
    iconst 1
    isub
    if_icmpge fin
    getstatic Main.arr
    iload 0
    getstatic Main.arr
    iload 0
    iconst 1
    iadd
    aaload
    aastore
    iinc 0 1
    goto loop
  fin:
    return
  end
end
|}
  in
  match flags (compile src) ~meth:"delete" with
  | [ _clear; _putstatic_absent_or; shift_store ] ->
      (* verdicts: clear aastore, (putstatic is a separate site), shift *)
      Alcotest.(check bool) "shift kept" false shift_store
  | [ _; shift_store ] ->
      Alcotest.(check bool) "shift kept" false shift_store
  | other -> Alcotest.failf "unexpected verdict count %d" (List.length other)

let test_call_kills_chain () =
  (* a non-inlined call between clear and shift may write anything *)
  let big_pad = String.concat "\n" (List.init 120 (fun _ -> "    iinc 0 1")) in
  let src =
    hdr
    ^ Printf.sprintf
        {|
class Main
  static ref arr
  method void opaque () locals 1
    iconst 0
    istore 0
%s
    return
  end
  method void delete () locals 1
    getstatic Main.arr
    iconst 0
    aconst_null
    aastore
    invoke Main.opaque
    iconst 0
    istore 0
  loop:
    iload 0
    getstatic Main.arr
    arraylength
    iconst 1
    isub
    if_icmpge fin
    getstatic Main.arr
    iload 0
    getstatic Main.arr
    iload 0
    iconst 1
    iadd
    aaload
    aastore
    iinc 0 1
    goto loop
  fin:
    return
  end
end
|}
        big_pad
  in
  Alcotest.(check (list bool)) "chain killed by call" [ false; false ]
    (flags (compile src) ~meth:"delete")

let test_jbb_gains_and_stays_sound () =
  let r = Harness.Movedown.measure_one Workloads.Jbb.t in
  Alcotest.(check int) "no violations" 0 r.violations;
  Alcotest.(check bool) "array elimination appears" true
    (r.array_md_pct > 40.0 && r.array_base_pct < 0.5);
  Alcotest.(check bool) "total elimination grows" true
    (r.elim_md_pct > r.elim_base_pct +. 10.0)

let test_mtrt_unchanged_multithreaded () =
  let r = Harness.Movedown.measure_one Workloads.Mtrt.t in
  Alcotest.(check int) "no violations" 0 r.violations;
  Alcotest.(check bool) "multi-threaded program unchanged" true
    (Float.abs (r.elim_md_pct -. r.elim_base_pct) < 0.01)

(* property: move-down elision stays sound under adversarial schedules
   and small marker chunks (forcing mid-array interleavings) *)
let prop_movedown_sound =
  QCheck2.Test.make ~name:"move-down sound under adversarial schedules"
    ~count:15
    (QCheck2.Gen.int_range 1 10_000)
    (fun seed ->
      let cw = Harness.Exp.compile ~move_down:true Workloads.Jbb.t in
      let quantum = 1 + (seed * 7 mod 97) in
      let gc_period = 1 + (seed * 13 mod 31) in
      let steps = 1 + (seed mod 4) in
      let r =
        Harness.Exp.run
          ~gc:(Jrt.Runner.Satb { steps_per_increment = steps; pacing = Jrt.Pacer.config_of_trigger 8 })
          ~seed ~quantum ~gc_period cw
      in
      match r.gc with Some g -> g.total_violations = 0 | None -> false)

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("shift loop elided", test_shift_loop_elided);
      ("disabled without flag", test_disabled_without_flag);
      ("multi-threaded gate", test_multi_threaded_gate);
      ("no clear, no chain", test_no_clear_no_chain);
      ("wrong delta kept", test_wrong_delta_breaks_chain);
      ("different arrays kept", test_different_arrays_no_chain);
      ("putstatic kills identity", test_putstatic_kills_identity);
      ("call kills chain", test_call_kills_chain);
      ("jbb gains, stays sound", test_jbb_gains_and_stays_sound);
      ("mtrt gated unchanged", test_mtrt_unchanged_multithreaded);
    ]
  @ [ QCheck_alcotest.to_alcotest prop_movedown_sound ]
