(* Differential fuzz of the direct-threaded engine ({!Jrt.Exec})
   against the tree-walking interpreter.  Same compiled workload, same
   collector, same chaos plan — the two final states must be identical
   in every dimension {!Harness.Engines.diff} checks: steps, cost and
   barrier units, every machine counter, per-site attribution, statics,
   the full heap graph, GC summary, pacer stats and thread errors.

   The matrix deliberately includes mid-run revocation (late spawn,
   class load) and the deliberately-unsound barrier skip: guard
   failures, elision rollback, snapshot repair and oracle violations
   must all land identically on both engines. *)

let compile_full w =
  Harness.Exp.compile ~null_or_same:true ~move_down:true ~swap:true
    ~summaries:true w

let collectors =
  [
    ( "satb",
      Jrt.Runner.make_satb ~trigger_allocs:24 ~steps_per_increment:8 () );
    ( "incr",
      Jrt.Runner.make_incr ~trigger_allocs:24 ~steps_per_increment:8 () );
    ( "retrace",
      Jrt.Runner.make_retrace ~trigger_allocs:24 ~steps_per_increment:8 () );
    ( "hybrid",
      Jrt.Runner.make_hybrid ~trigger_allocs:24 ~steps_per_increment:8 () );
  ]

(* chaos plans are stateful; build a fresh one per run so both engines
   see the same fault schedule from the same initial state *)
let plans : (string * (unit -> Jrt.Chaos.t option)) list =
  ("none", fun () -> None)
  :: (List.map
        (fun seed ->
          ( Printf.sprintf "seed-%d" seed,
            fun () -> Some (Jrt.Chaos.create (Jrt.Chaos.of_seed seed)) ))
        [ 42; 7; 101 ]
     @ List.map
         (fun (name, faults) ->
           ( name,
             fun () ->
               Some
                 (Jrt.Chaos.create
                    { Jrt.Chaos.seed = 1; faults; quantum = None; gc_period = None })
           ))
         [
           ( "late-spawn",
             [ Jrt.Chaos.Late_spawn { at_instr = 1000; stores = 4 } ] );
           ("class-load", [ Jrt.Chaos.Class_load { at_instr = 800 } ]);
           ( "barrier-skip",
             [ Jrt.Chaos.Barrier_skip { at_instr = 1000; victims = 4 } ] );
         ])

let both ~gc ~plan cw =
  let run engine =
    let chaos = plan () in
    Harness.Exp.run ~gc ~guards:true ?chaos ~fail_on_thread_error:false
      ~engine cw
  in
  let ri = run `Interp in
  let rt = run `Threaded in
  (Harness.Engines.diff ri rt, ri)

(* every collector x every plan, on the two workloads that exercise the
   widest machinery (db: swap/move-down phases; jbb: allocation-heavy
   with the deepest call graph) *)
let test_matrix () =
  let revocations = ref 0 in
  List.iter
    (fun w ->
      let cw = compile_full w in
      List.iter
        (fun (gc_name, gc) ->
          List.iter
            (fun (plan_name, plan) ->
              match both ~gc ~plan cw with
              | Some m, _ ->
                  Alcotest.failf "%s/%s/%s: engines diverge — %s"
                    (w : Workloads.Spec.t).name gc_name plan_name m
              | None, ri ->
                  revocations :=
                    !revocations
                    + ri.Jrt.Runner.machine.Jrt.Interp.revocation_events)
            plans)
        collectors)
    [ Workloads.Db.t; Workloads.Jbb.t ];
  (* the matrix must actually have exercised mid-run revocation, or the
     equality above proves less than it claims *)
  Alcotest.(check bool) "revocation fired somewhere" true (!revocations > 0)

(* random corner of the space: any Table 1 workload, any collector, any
   seed-derived chaos plan *)
let differential_prop =
  QCheck2.Test.make ~name:"engines agree under random chaos" ~count:30
    QCheck2.Gen.(
      triple
        (oneofl Workloads.Registry.table1)
        (oneofl collectors)
        (int_range 1 1000))
    (fun (w, (_, gc), seed) ->
      let cw = compile_full w in
      let plan () = Some (Jrt.Chaos.create (Jrt.Chaos.of_seed seed)) in
      fst (both ~gc ~plan cw) = None)

(* the flight recorder's event stream must be engine-invariant too
   (modulo Respecialize, which only the threaded engine emits — diff
   filters it); each stream is snapshotted right after its run, before
   the next run's begin_run resets the ring *)
let both_flight ~gc ~plan cw =
  let run engine =
    let chaos = plan () in
    let r =
      Harness.Exp.run ~gc ~guards:true ?chaos ~fail_on_thread_error:false
        ~engine cw
    in
    (r, Flight.events ())
  in
  let ri, ei = run `Interp in
  let rt, et = run `Threaded in
  Harness.Engines.diff ~flight:(ei, et) ri rt

let flight_parity_prop =
  QCheck2.Test.make ~name:"flight event streams agree across engines"
    ~count:12
    QCheck2.Gen.(
      triple
        (oneofl Workloads.Registry.table1)
        (oneofl collectors)
        (oneofl [ 42; 7; 101 ]))
    (fun (w, (_, gc), seed) ->
      let cw = compile_full w in
      let plan () = Some (Jrt.Chaos.create (Jrt.Chaos.of_seed seed)) in
      both_flight ~gc ~plan cw = None)

(* the bench cadence (coarser quantum and GC period) must agree too —
   it is what E17 times *)
let test_bench_cadence () =
  List.iter
    (fun (w : Workloads.Spec.t) ->
      let cw = compile_full w in
      let gc = Jrt.Runner.make_satb () in
      let run engine =
        Harness.Exp.run ~gc ~guards:true ~quantum:500 ~gc_period:512 ~engine
          cw
      in
      match Harness.Engines.diff (run `Interp) (run `Threaded) with
      | None -> ()
      | Some m ->
          Alcotest.failf "%s (bench cadence): engines diverge — %s" w.name m)
    Workloads.Registry.table1

let tests =
  [
    Alcotest.test_case
      "engines identical: 4 collectors x {seeds, revocation, skip}" `Quick
      test_matrix;
    QCheck_alcotest.to_alcotest differential_prop;
    QCheck_alcotest.to_alcotest flight_parity_prop;
    Alcotest.test_case "engines identical at the bench cadence" `Quick
      test_bench_cadence;
  ]
