(* The profiler layer: percentile units, MMU windowing edge cases, the
   per-site-sums-reconcile-exactly property under chaos, deterministic
   JSON round-trips, and the regression gate's thresholds. *)

module Stats = Profile.Stats
module Attr = Profile.Attr
module Gate = Profile.Gate

(* --- percentiles -------------------------------------------------------- *)

let test_percentiles () =
  let d = Stats.dist_of [] in
  Alcotest.(check (list int))
    "empty dist is all zero" [ 0; 0; 0; 0; 0; 0 ]
    [ d.d_count; d.d_total; d.d_p50; d.d_p90; d.d_p99; d.d_max ];
  let d = Stats.dist_of [ 7 ] in
  Alcotest.(check (list int))
    "singleton dist" [ 1; 7; 7; 7; 7; 7 ]
    [ d.d_count; d.d_total; d.d_p50; d.d_p90; d.d_p99; d.d_max ];
  (* nearest-rank on 1..100 is the identity *)
  let xs = List.init 100 (fun i -> 100 - i) in
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%d of 1..100" p)
        p
        (Stats.percentile xs (float_of_int p)))
    [ 1; 50; 90; 99; 100 ];
  let d = Stats.dist_of (List.init 10 (fun i -> i + 1)) in
  Alcotest.(check (list int))
    "1..10 percentiles" [ 5; 9; 10; 10 ]
    [ d.d_p50; d.d_p90; d.d_p99; d.d_max ]

(* --- MMU windowing edge cases ------------------------------------------- *)

let test_mmu_zero_pause () =
  let t = { Stats.steps = 100; pauses = [] } in
  Alcotest.(check int) "total time" 100 (Stats.total_time t);
  List.iter
    (fun w ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "mmu@%d of a zero-pause run" w)
        1.0
        (Stats.mmu t ~window:w))
    [ 1; 10; 100; 1000 ];
  List.iter
    (fun (_, u) ->
      Alcotest.(check (float 1e-9)) "curve point" 1.0 u)
    (Stats.mmu_curve t)

let test_mmu_window_longer_than_run () =
  (* a window longer than the whole run clamps to it, so MMU degrades to
     overall utilization *)
  let t = { Stats.steps = 10; pauses = [ { Stats.at = 5; work = 10 } ] } in
  Alcotest.(check int) "total time" 20 (Stats.total_time t);
  Alcotest.(check (float 1e-9)) "clamped window = utilization" 0.5
    (Stats.mmu t ~window:1000);
  Alcotest.(check (float 1e-9)) "utilization agrees" 0.5 (Stats.utilization t)

let test_mmu_exact_worst_window () =
  let t = { Stats.steps = 90; pauses = [ { Stats.at = 50; work = 10 } ] } in
  (* a window the size of the pause can sit entirely inside it *)
  Alcotest.(check (float 1e-9)) "window = pause -> 0" 0.0
    (Stats.mmu t ~window:10);
  (* a window twice the pause is at worst half paused *)
  Alcotest.(check (float 1e-9)) "window = 2x pause -> 0.5" 0.5
    (Stats.mmu t ~window:20);
  (* the full run sees 10/100 pause time *)
  Alcotest.(check (float 1e-9)) "window = run" 0.9 (Stats.mmu t ~window:100)

let test_mmu_degenerate () =
  let empty = { Stats.steps = 0; pauses = [] } in
  Alcotest.(check (float 1e-9)) "empty run" 1.0 (Stats.mmu empty ~window:10);
  Alcotest.(check bool) "empty curve" true (Stats.mmu_curve empty = []);
  let t = { Stats.steps = 100; pauses = [ { Stats.at = 10; work = 5 } ] } in
  Alcotest.(check (float 1e-9)) "window 0" 1.0 (Stats.mmu t ~window:0);
  (* ascending deduped windows, each at least one unit *)
  let ws = List.map fst (Stats.mmu_curve t) in
  Alcotest.(check bool) "windows ascending" true (List.sort_uniq compare ws = ws);
  Alcotest.(check bool) "windows positive" true (List.for_all (fun w -> w >= 1) ws)

(* --- per-site sums reconcile exactly with the interpreter --------------- *)

let test_reconcile_under_degraded_pacer () =
  (* allocation assists interleave collector increments into the
     allocation path; the per-site attribution must still reconcile
     exactly, and the pacer's assist book must equal the interpreter's *)
  let cw =
    Harness.Exp.compile ~null_or_same:true Workloads.Jbb.t
  in
  let pacing = { Jrt.Pacer.default_config with soft_limit = Some 90 } in
  let gc = Jrt.Runner.make_satb ~pacing ~steps_per_increment:8 () in
  let r = Harness.Exp.run ~gc ~guards:true ~fail_on_thread_error:false cw in
  let p =
    Attr.of_report ~workload:"jbb" ~gc:"satb"
      ~explain:(Harness.Exp.explain_policy_of cw) r
  in
  (match Attr.reconciles p r with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("degraded run does not reconcile: " ^ e));
  match r.Jrt.Runner.pacer with
  | Some ps ->
      Alcotest.(check bool)
        "assists ran" true (ps.Jrt.Pacer.p_assists > 0);
      Alcotest.(check int)
        "pacer assists = interpreter assist execs"
        r.Jrt.Runner.machine.Jrt.Interp.assist_execs ps.Jrt.Pacer.p_assists
  | None -> Alcotest.fail "no pacer stats"

let compile_full w =
  Harness.Exp.compile ~null_or_same:true ~move_down:true ~swap:true w

let profile_of_report ~(cw : Harness.Exp.compiled_workload) ~gc r =
  Attr.of_report ~workload:cw.Harness.Exp.workload.name ~gc
    ~explain:(Harness.Exp.explain_policy_of cw) r

let reconcile_prop =
  QCheck2.Test.make
    ~name:"per-site profile sums reconcile with interpreter counters under chaos"
    ~count:20
    (QCheck2.Gen.triple
       (QCheck2.Gen.oneofl Workloads.Registry.table1)
       (QCheck2.Gen.int_range 1 500)
       QCheck2.Gen.bool)
    (fun (w, seed, use_retrace) ->
      let cw = compile_full w in
      let gc, gc_name =
        if use_retrace then
          ( Jrt.Runner.make_retrace ~trigger_allocs:24 ~steps_per_increment:8 (),
            "retrace" )
        else
          ( Jrt.Runner.make_satb ~trigger_allocs:24 ~steps_per_increment:8 (),
            "satb" )
      in
      let chaos = Jrt.Chaos.create (Jrt.Chaos.of_seed seed) in
      let r =
        Harness.Exp.run ~gc ~guards:true ~chaos ~fail_on_thread_error:false
          ~seed cw
      in
      let p = profile_of_report ~cw ~gc:gc_name r in
      (match Attr.reconciles p r with
      | Ok () -> ()
      | Error e -> QCheck2.Test.fail_reportf "%s (seed %d): %s" w.name seed e);
      (* and the machine-level split is the legacy dyn_stats split *)
      let m = r.Jrt.Runner.machine in
      if
        p.Attr.p_totals.t_elided_execs + p.Attr.p_totals.t_external_elided
        <> m.Jrt.Interp.elided_barrier_execs
      then QCheck2.Test.fail_reportf "elided split diverged";
      true)

(* --- JSON round-trip is exact and deterministic -------------------------- *)

let db_profile () =
  let cw = compile_full Workloads.Db.t in
  let r =
    Harness.Exp.run
      ~gc:(Jrt.Runner.make_retrace ~trigger_allocs:24 ())
      ~guards:true cw
  in
  profile_of_report ~cw ~gc:"retrace" r

let test_json_roundtrip () =
  let p = db_profile () in
  let s = Telemetry.json_to_string (Attr.to_json p) in
  match Telemetry.json_of_string s with
  | Error e -> Alcotest.failf "re-parse failed: %s" e
  | Ok j -> (
      match Attr.of_json j with
      | Error e -> Alcotest.failf "of_json failed: %s" e
      | Ok p' ->
          Alcotest.(check string)
            "byte-identical after a round-trip" s
            (Telemetry.json_to_string (Attr.to_json p'));
          Alcotest.(check int)
            "sites survive" (List.length p.p_sites)
            (List.length p'.Attr.p_sites))

let test_hot_deterministic () =
  let p = db_profile () in
  let sites = Attr.hot ~top:5 p in
  Alcotest.(check bool) "at most five" true (List.length sites <= 5);
  let units = List.map (fun s -> s.Attr.r_barrier_units) sites in
  Alcotest.(check bool) "sorted by units desc" true
    (List.sort (fun a b -> compare b a) units = units);
  (* ties broken by site id: re-running gives the identical order *)
  let again = Attr.hot ~top:5 (db_profile ()) in
  Alcotest.(check (list string))
    "stable across runs"
    (List.map (fun s -> s.Attr.r_site) sites)
    (List.map (fun s -> s.Attr.r_site) again)

(* The ranking must not depend on the order rows arrive in (they are
   born from a Hashtbl fold): a permuted p_sites yields the identical
   hot list, and exact count ties fall back to site-id order. *)
let test_hot_tie_break () =
  let p = db_profile () in
  let names l = List.map (fun s -> s.Attr.r_site) l in
  let permuted = { p with Attr.p_sites = List.rev p.Attr.p_sites } in
  Alcotest.(check (list string))
    "permutation-invariant"
    (names (Attr.hot ~top:10 p))
    (names (Attr.hot ~top:10 permuted));
  match p.Attr.p_sites with
  | [] -> Alcotest.fail "db profile has no sites"
  | s :: _ ->
      (* two rows with byte-equal counts: only the site id can decide *)
      let tied =
        [ { s with Attr.r_site = "Zz.m@9" }; { s with Attr.r_site = "Aa.m@1" } ]
      in
      Alcotest.(check (list string))
        "equal counts fall back to site id"
        [ "Aa.m@1"; "Zz.m@9" ]
        (names (Attr.hot ~top:2 { p with Attr.p_sites = tied }))

let test_json_byte_stable () =
  let render () =
    Telemetry.json_to_string_pretty (Attr.to_json (db_profile ()))
  in
  Alcotest.(check string)
    "profile --json byte-stable across runs" (render ()) (render ())

(* --- profile diff and the bench gate ------------------------------------- *)

let test_profile_diff_regression () =
  let cw_plain = Harness.Exp.compile Workloads.Db.t in
  let gc = Jrt.Runner.make_retrace ~trigger_allocs:24 () in
  let plain =
    profile_of_report ~cw:cw_plain ~gc:"retrace"
      (Harness.Exp.run ~gc ~guards:true cw_plain)
  in
  let full = db_profile () in
  (* losing the extension stack drops the elision rate by ~70 points *)
  let d = Attr.diff ~baseline:full plain in
  Alcotest.(check bool) "plain-vs-full regresses" true (Attr.regressed d);
  (* the other direction is an improvement, not a regression *)
  let d = Attr.diff ~baseline:plain full in
  Alcotest.(check bool) "full-vs-plain passes" false (Attr.regressed d);
  (* self-diff is clean *)
  let d = Attr.diff ~baseline:full full in
  Alcotest.(check bool) "self-diff passes" false (Attr.regressed d)

let table1_json elim_pct =
  Telemetry.Obj
    [
      ( "table1",
        Telemetry.List
          [
            Telemetry.Obj
              [
                ("benchmark", Telemetry.Str "db");
                ("elim_pct", Telemetry.Float elim_pct);
              ];
          ] );
    ]

let test_gate_five_point_drop () =
  (match Gate.diff_json ~old_:(table1_json 9.0) (table1_json 4.0) with
  | Ok o -> Alcotest.(check bool) "5-point drop fails" true (Gate.regressed o)
  | Error e -> Alcotest.fail e);
  (match Gate.diff_json ~old_:(table1_json 9.0) (table1_json 8.5) with
  | Ok o ->
      Alcotest.(check bool) "0.5-point drop passes" false (Gate.regressed o)
  | Error e -> Alcotest.fail e);
  (* a benchmark silently disappearing must not pass *)
  match
    Gate.diff_json ~old_:(table1_json 9.0)
      (Telemetry.Obj [ ("table1", Telemetry.List []) ])
  with
  | Ok o -> Alcotest.(check bool) "missing row fails" true (Gate.regressed o)
  | Error e -> Alcotest.fail e

let engines_json speedup =
  Telemetry.Obj
    [
      ( "engines",
        Telemetry.List
          [
            Telemetry.Obj
              [
                ("benchmark", Telemetry.Str "db");
                ("speedup", Telemetry.Float speedup);
              ];
          ] );
    ]

(* the speedup gate is an absolute floor on the NEW value: a slow run
   in the baseline must not lower the bar *)
let test_gate_engine_speedup_floor () =
  (match Gate.diff_json ~old_:(engines_json 4.5) (engines_json 2.0) with
  | Ok o -> Alcotest.(check bool) "2.0x fails the floor" true (Gate.regressed o)
  | Error e -> Alcotest.fail e);
  (match Gate.diff_json ~old_:(engines_json 4.5) (engines_json 3.4) with
  | Ok o -> Alcotest.(check bool) "3.4x passes" false (Gate.regressed o)
  | Error e -> Alcotest.fail e);
  (* even against an accidentally-slow baseline, the floor holds *)
  match Gate.diff_json ~old_:(engines_json 2.0) (engines_json 2.5) with
  | Ok o ->
      Alcotest.(check bool)
        "below-floor new value fails regardless of baseline" true
        (Gate.regressed o)
  | Error e -> Alcotest.fail e

let test_gate_profile_files () =
  let full = db_profile () in
  let cw_plain = Harness.Exp.compile Workloads.Db.t in
  let plain =
    profile_of_report ~cw:cw_plain ~gc:"retrace"
      (Harness.Exp.run
         ~gc:(Jrt.Runner.make_retrace ~trigger_allocs:24 ())
         ~guards:true cw_plain)
  in
  (match Gate.diff_json ~old_:(Attr.to_json full) (Attr.to_json plain) with
  | Ok o ->
      Alcotest.(check bool) "gate sees profile regression" true
        (Gate.regressed o)
  | Error e -> Alcotest.fail e);
  match Gate.diff_json ~old_:(Attr.to_json full) (table1_json 9.0) with
  | Ok _ -> Alcotest.fail "mixed formats must not compare"
  | Error _ -> ()

(* --- schema versioning --------------------------------------------------- *)

let set_version v = function
  | Telemetry.Obj o ->
      Telemetry.Obj
        (("schema_version", Telemetry.Int v)
        :: List.filter (fun (k, _) -> k <> "schema_version") o)
  | j -> j

let strip_version = function
  | Telemetry.Obj o ->
      Telemetry.Obj (List.filter (fun (k, _) -> k <> "schema_version") o)
  | j -> j

let test_profile_schema_version () =
  let j = Attr.to_json (db_profile ()) in
  (match Attr.of_json j with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "current version must parse: %s" e);
  (match Attr.of_json (strip_version j) with
  | Ok _ -> Alcotest.fail "profile without schema_version must not parse"
  | Error _ -> ());
  match Attr.of_json (set_version (Attr.schema_version + 1) j) with
  | Ok _ -> Alcotest.fail "future schema_version must not parse"
  | Error _ -> ()

let test_gate_bench_schema_version () =
  let v = set_version Gate.bench_schema_version in
  (* same version on both sides compares normally *)
  (match Gate.diff_json ~old_:(v (table1_json 9.0)) (v (table1_json 8.5)) with
  | Ok o ->
      Alcotest.(check bool) "versioned pair compares" false (Gate.regressed o)
  | Error e -> Alcotest.fail e);
  (* both files predating versioning still compare with each other *)
  (match Gate.diff_json ~old_:(table1_json 9.0) (table1_json 8.5) with
  | Ok o ->
      Alcotest.(check bool) "legacy pair compares" false (Gate.regressed o)
  | Error e -> Alcotest.fail e);
  (* mismatched versions are an error, not a silent diff *)
  (match
     Gate.diff_json ~old_:(v (table1_json 9.0))
       (set_version (Gate.bench_schema_version + 1) (table1_json 9.0))
   with
  | Ok _ -> Alcotest.fail "version mismatch must not compare"
  | Error _ -> ());
  (* and so is a version on only one side, in either direction *)
  (match Gate.diff_json ~old_:(table1_json 9.0) (v (table1_json 9.0)) with
  | Ok _ -> Alcotest.fail "unversioned old vs versioned new must not compare"
  | Error _ -> ());
  match Gate.diff_json ~old_:(v (table1_json 9.0)) (table1_json 9.0) with
  | Ok _ -> Alcotest.fail "versioned old vs unversioned new must not compare"
  | Error _ -> ()

let tests =
  [
    Alcotest.test_case "nearest-rank percentiles" `Quick test_percentiles;
    Alcotest.test_case "MMU of a zero-pause run" `Quick test_mmu_zero_pause;
    Alcotest.test_case "MMU window longer than the run" `Quick
      test_mmu_window_longer_than_run;
    Alcotest.test_case "MMU finds the worst window exactly" `Quick
      test_mmu_exact_worst_window;
    Alcotest.test_case "MMU degenerate inputs" `Quick test_mmu_degenerate;
    QCheck_alcotest.to_alcotest reconcile_prop;
    Alcotest.test_case "profile reconciles under a degraded pacer" `Quick
      test_reconcile_under_degraded_pacer;
    Alcotest.test_case "profile JSON round-trips byte-identically" `Quick
      test_json_roundtrip;
    Alcotest.test_case "hot-site ranking is deterministic" `Quick
      test_hot_deterministic;
    Alcotest.test_case "hot-site ties break on site id" `Quick
      test_hot_tie_break;
    Alcotest.test_case "profile JSON is byte-stable across runs" `Quick
      test_json_byte_stable;
    Alcotest.test_case "profile diff flags a lost extension stack" `Quick
      test_profile_diff_regression;
    Alcotest.test_case "gate fails a doctored 5-point elision drop" `Quick
      test_gate_five_point_drop;
    Alcotest.test_case "gate floors the threaded-engine speedup" `Quick
      test_gate_engine_speedup_floor;
    Alcotest.test_case "gate handles profiler files and format mixing" `Quick
      test_gate_profile_files;
    Alcotest.test_case "profiles reject missing or mismatched versions" `Quick
      test_profile_schema_version;
    Alcotest.test_case "bench gate refuses cross-version comparisons" `Quick
      test_gate_bench_schema_version;
  ]
