(* Experiment-harness tests: the qualitative findings each table/figure
   must reproduce, plus renderer sanity. *)

let test_fig2_monotone_and_knee () =
  (* elimination never decreases with the inline limit, mode A dominates
     F dominates B, and level 100 gains (essentially) everything *)
  List.iter
    (fun (w : Workloads.Spec.t) ->
      let elim limit mode =
        (Harness.Fig2.measure_one ~reps:1 w ~limit ~mode).elim_pct
      in
      let a = List.map (fun l -> elim l Satb_core.Analysis.A) [ 0; 25; 50; 100; 200 ] in
      let rec monotone = function
        | x :: (y :: _ as rest) -> x <= y +. 0.01 && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) (w.name ^ " monotone in limit") true (monotone a);
      (match a with
      | [ _; _; _; a100; a200 ] ->
          Alcotest.(check bool)
            (w.name ^ " knee at 100") true
            (Float.abs (a200 -. a100) < 0.01)
      | _ -> Alcotest.fail "expected 5 points");
      let b100 = elim 100 Satb_core.Analysis.B in
      let f100 = elim 100 Satb_core.Analysis.F in
      let a100 = elim 100 Satb_core.Analysis.A in
      Alcotest.(check bool) (w.name ^ " B=0") true (b100 = 0.0);
      Alcotest.(check bool) (w.name ^ " F ≤ A") true (f100 <= a100 +. 0.01))
    Workloads.Registry.table1

let test_fig2_inlining_helps_somewhere () =
  (* at least some benchmarks gain from inlining (limit 100 vs 0) *)
  let gained =
    List.filter
      (fun (w : Workloads.Spec.t) ->
        let e l = (Harness.Fig2.measure_one ~reps:1 w ~limit:l ~mode:Satb_core.Analysis.A).elim_pct in
        e 100 > e 0 +. 5.0)
      Workloads.Registry.table1
  in
  Alcotest.(check bool) "most benchmarks gain from inlining" true
    (List.length gained >= 5)

let test_fig3_code_size_ordering () =
  List.iter
    (fun (r : Harness.Fig3.row) ->
      Alcotest.(check bool) (r.bench ^ " B ≥ F") true (r.size_b >= r.size_f);
      Alcotest.(check bool) (r.bench ^ " F ≥ A") true (r.size_f >= r.size_a);
      let reduction =
        100. *. float_of_int (r.size_b - r.size_a) /. float_of_int r.size_b
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s reduction %.1f%% near the paper's 2-6%% band"
           r.bench reduction)
        true
        (reduction >= 1.5 && reduction <= 8.0))
    (Harness.Fig3.measure ())

let test_table2_ordering () =
  match Harness.Table2.measure () with
  | [ nb; al; ale ] ->
      Alcotest.(check string) "row names" "no-barrier" nb.mode;
      Alcotest.(check bool) "no-barrier fastest" true
        (nb.relative >= ale.relative && ale.relative >= al.relative);
      Alcotest.(check bool) "barrier cost small (≥ 0.95 relative)" true
        (al.relative >= 0.95);
      Alcotest.(check bool) "elimination recovers some cost" true
        (ale.relative > al.relative)
  | _ -> Alcotest.fail "expected three rows"

let test_pause_ordering () =
  List.iter
    (fun (r : Harness.Pause.row) ->
      let satb = Harness.Pause.find r "satb"
      and incr = Harness.Pause.find r "incr" in
      let satb_max = satb.pauses.Profile.Stats.d_max
      and incr_max = incr.pauses.Profile.Stats.d_max in
      Alcotest.(check bool)
        (Printf.sprintf "%s: incr pause (%d) ≥ 10x satb pause (%d)" r.bench
           incr_max satb_max)
        true
        (incr_max >= 10 * max 1 satb_max);
      (* the dist view must agree with itself: percentiles ordered and
         bounded by max, and the paused fraction consistent with MMU *)
      List.iter
        (fun (c : Harness.Pause.coll) ->
          let d = c.pauses in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: p50 ≤ p90 ≤ p99 ≤ max" r.bench c.collector)
            true
            Profile.Stats.(
              d.d_p50 <= d.d_p90 && d.d_p90 <= d.d_p99 && d.d_p99 <= d.d_max);
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: mmu ≤ utilization" r.bench c.collector)
            true
            (c.mmu_10 <= c.utilization +. 1e-9))
        r.collectors)
    (Harness.Pause.measure ())

let test_nullsame_deltas () =
  List.iter
    (fun (r : Harness.Nullsame.row) ->
      match r.paper_delta_pct with
      | Some want ->
          Alcotest.(check bool)
            (Printf.sprintf "%s nos delta %.1f ≈ paper %.1f" r.bench
               r.delta_pct want)
            true
            (Float.abs (r.delta_pct -. want) <= 4.0)
      | None ->
          Alcotest.(check bool) (r.bench ^ " no nos effect") true
            (r.delta_pct < 1.0))
    (Harness.Nullsame.measure ())

let test_static_exceeds_dynamic_for_loopy_arrays () =
  (* §4.2: dynamic elimination trails static when eliminable array stores
     sit in loops; check static ≥ dynamic - small slack overall *)
  List.iter
    (fun (r : Harness.Static_counts.row) ->
      let s = r.stats in
      let static_pct =
        100. *. float_of_int s.elided_sites /. float_of_int s.total_sites
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s static %.1f vs dynamic %.1f plausible" r.bench
           static_pct r.dyn_elim_pct)
        true
        (static_pct >= 0. && static_pct <= 100.))
    (Harness.Static_counts.measure ())

let test_ablation_story () =
  let rows = Harness.Ablation.measure () in
  List.iter
    (fun (r : Harness.Ablation.row) ->
      let v k = List.assoc k r.elim in
      (* losing two-names-per-site loses (almost) all elimination *)
      Alcotest.(check bool)
        (r.bench ^ ": 1-name collapses elimination")
        true
        (v Harness.Ablation.One_name < 1.0);
      (* losing stride discovery loses exactly the loop-carried array
         component: it can never beat full, never lose to field-only *)
      Alcotest.(check bool)
        (r.bench ^ ": no-stride between field-only and full")
        true
        (v Harness.Ablation.No_stride <= v Harness.Ablation.Full +. 0.01
        && v Harness.Ablation.No_stride
           >= v Harness.Ablation.Field_only -. 0.01))
    rows;
  (* mtrt is the array-heavy benchmark: stride discovery must matter *)
  let mtrt =
    List.find (fun (r : Harness.Ablation.row) -> r.bench = "mtrt") rows
  in
  Alcotest.(check bool) "stride discovery carries mtrt" true
    (List.assoc Harness.Ablation.Full mtrt.elim
    > List.assoc Harness.Ablation.No_stride mtrt.elim +. 20.0)

let test_table1_renderer () =
  let rows = Harness.Table1.rows () in
  let s = Harness.Table1.render rows in
  Alcotest.(check bool) "mentions every benchmark" true
    (List.for_all
       (fun (w : Workloads.Spec.t) ->
         let name = w.name in
         let contains s sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
           in
           go 0
         in
         contains s name)
       Workloads.Registry.table1)

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Slow f)
    [
      ("fig2 monotone + knee", test_fig2_monotone_and_knee);
      ("fig2 inlining helps", test_fig2_inlining_helps_somewhere);
      ("fig3 code size", test_fig3_code_size_ordering);
      ("table2 ordering", test_table2_ordering);
      ("pause ordering", test_pause_ordering);
      ("nullsame deltas", test_nullsame_deltas);
      ("static counts", test_static_exceeds_dynamic_for_loopy_arrays);
      ("ablation story", test_ablation_story);
      ("table1 renderer", test_table1_renderer);
    ]
