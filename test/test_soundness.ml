(* The flagship end-to-end soundness property (DESIGN.md §5):

   For every workload, under adversarial mutator/collector interleavings,
   running with the analysis-directed barrier-elision policy must preserve
   the SATB snapshot invariant — every object reachable when marking
   started is marked when it finishes.  A single wrongly-removed barrier
   shows up as a violation (see the elide-all negative test in
   Test_gc). *)

let run_one (w : Workloads.Spec.t) ~null_or_same ~seed ~quantum ~gc_period
    ~steps ~trigger =
  let cw = Harness.Exp.compile ~null_or_same w in
  let r =
    Harness.Exp.run
      ~gc:(Jrt.Runner.Satb { steps_per_increment = steps; pacing = Jrt.Pacer.config_of_trigger trigger })
      ~seed ~quantum ~gc_period cw
  in
  match r.gc with
  | Some g -> g.total_violations
  | None -> Alcotest.fail "expected gc summary"

(* schedule parameters derived from a seed, exploring many interleavings *)
let params_of_seed seed =
  let quantum = 1 + (seed * 7 mod 97) in
  let gc_period = 1 + (seed * 13 mod 61) in
  let steps = 1 + (seed * 5 mod 40) in
  let trigger = 8 + (seed * 11 mod 80) in
  (quantum, gc_period, steps, trigger)

let prop_workload_sound (w : Workloads.Spec.t) ~null_or_same =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "SATB invariant: %s%s" w.name
         (if null_or_same then " (+null-or-same)" else ""))
    ~count:12
    (QCheck2.Gen.int_range 1 10_000)
    (fun seed ->
      let quantum, gc_period, steps, trigger = params_of_seed seed in
      run_one w ~null_or_same ~seed ~quantum ~gc_period ~steps ~trigger = 0)

let tests =
  List.map QCheck_alcotest.to_alcotest
    (List.concat_map
       (fun w ->
         [ prop_workload_sound w ~null_or_same:false;
           prop_workload_sound w ~null_or_same:true ])
       Workloads.Registry.all)
