(* QCheck generators for the property tests. *)

module Q = QCheck2.Gen

(* ---- Intval ----------------------------------------------------------- *)

(* small coefficients/ids keep failures readable *)
let coeff = Q.int_range (-4) 4
let nonzero_coeff = Q.map (fun k -> if k >= 0 then k + 1 else k) coeff
let unknown_id = Q.int_range 0 3

let lin_intval : Satb_core.Intval.t Q.t =
  let open Q in
  let* var =
    oneof
      [
        return None;
        (let* a = nonzero_coeff in
         let* v = unknown_id in
         return (Some (a, v)));
      ]
  in
  let* n_consts = int_range 0 2 in
  let* consts =
    list_repeat n_consts
      (let* k = nonzero_coeff in
       let* c = unknown_id in
       return (k, c))
  in
  let* base = int_range (-20) 20 in
  (* normalize: sorted ids, unique, nonzero coeffs (drop duplicates) *)
  let consts =
    List.sort_uniq (fun (_, c1) (_, c2) -> compare c1 c2) consts
  in
  return
    (Satb_core.Intval.Lin { var; consts; base })

let intval : Satb_core.Intval.t Q.t =
  Q.frequency [ (1, Q.return Satb_core.Intval.Top); (9, lin_intval) ]

let literal_intval : Satb_core.Intval.t Q.t =
  Q.map Satb_core.Intval.const (Q.int_range (-50) 50)

(* ---- Intrange --------------------------------------------------------- *)

let intrange : Satb_core.Intrange.t Q.t =
  let open Q in
  oneof
    [
      return Satb_core.Intrange.Empty;
      map (fun v -> Satb_core.Intrange.From v) lin_intval;
      map (fun v -> Satb_core.Intrange.Up_to v) lin_intval;
      map2 (fun a b -> Satb_core.Intrange.Full (a, b)) lin_intval lin_intval;
    ]

(* ---- Refsym ----------------------------------------------------------- *)

let refsym : Satb_core.Refsym.t Q.t =
  let open Q in
  oneof
    [
      return Satb_core.Refsym.Global;
      map (fun i -> Satb_core.Refsym.Arg i) (int_range 0 3);
      map2
        (fun site recent -> Satb_core.Refsym.Alloc { site; recent })
        (int_range 0 5) bool;
    ]

let refset : Satb_core.Refsym.Set.t Q.t =
  Q.map Satb_core.Refsym.Set.of_list (Q.list_size (Q.int_range 0 4) refsym)

(* ---- random straight-line + loop programs for round-trip tests ------- *)

(* A small structured method generator: produces verifiable methods over
   one class with an int field, a ref field and a static.  The generator
   emits well-bracketed code so the verifier accepts it. *)

open Jir.Types

let class_def =
  {
    cname = "C";
    fields = [ { fd_name = "r"; fd_ty = R }; { fd_name = "i"; fd_ty = I } ];
    statics = [ { fd_name = "s"; fd_ty = R } ];
    methods =
      [
        {
          mname = "<init>";
          params = [ R ];
          ret = None;
          is_constructor = true;
          max_locals = 1;
          code = [| Return |];
          handlers = [];
          labels = [];
        };
        (* helpers the snippets may call, exercising the interprocedural
           summary transfer when the inline limit keeps them out of line *)
        {
          mname = "set";
          params = [ R; R ];
          ret = None;
          is_constructor = false;
          max_locals = 2;
          code =
            [|
              Aload 0; Aload 1; Putfield { fclass = "C"; fname = "r" }; Return;
            |];
          handlers = [];
          labels = [];
        };
        {
          mname = "leak";
          params = [ R ];
          ret = None;
          is_constructor = false;
          max_locals = 1;
          code = [| Aload 0; Putstatic { fclass = "C"; fname = "s" }; Return |];
          handlers = [];
          labels = [];
        };
        {
          mname = "get";
          params = [ R ];
          ret = Some R;
          is_constructor = false;
          max_locals = 1;
          code = [| Aload 0; Getfield { fclass = "C"; fname = "r" }; Areturn |];
          handlers = [];
          labels = [];
        };
        {
          mname = "mk";
          params = [];
          ret = Some R;
          is_constructor = false;
          max_locals = 0;
          code =
            [| New "C"; Dup; Invoke { mclass = "C"; mname = "<init>" }; Areturn |];
          handlers = [];
          labels = [];
        };
      ];
  }

(* straight-line snippets that leave the stack empty; locals: 0 = int,
   1 = ref (initialized in the prologue) *)
let snippets : string instr list list =
  [
    [ Iconst 7; Istore 0 ];
    [ Iload 0; Iconst 1; Ibin Add; Istore 0 ];
    [ Iinc (0, 3) ];
    [ Aload 1; Getfield { fclass = "C"; fname = "r" }; Astore 1 ];
    [ Aload 1; Aload 1; Putfield { fclass = "C"; fname = "r" } ];
    [ Aload 1; Iload 0; Putfield { fclass = "C"; fname = "i" } ];
    [ Getstatic { fclass = "C"; fname = "s" }; Astore 1 ];
    [ Aload 1; Putstatic { fclass = "C"; fname = "s" } ];
    [ Iconst 4; Newarray (Elem_ref "C"); Astore 2 ];
    [ Iconst 3; Newarray Elem_int; Pop ];
    [ New "C"; Dup; Invoke { mclass = "C"; mname = "<init>" }; Astore 1 ];
    [ Iload 0; Ineg; Istore 0 ];
    [ Iconst 2; Iconst 5; Ibin Mul; Istore 0 ];
    [ Aconst_null; Astore 1 ];
    (* calls: out-of-line at small inline limits *)
    [ Aload 1; Aconst_null; Invoke { mclass = "C"; mname = "set" } ];
    [ Aload 1; Aload 1; Invoke { mclass = "C"; mname = "set" } ];
    [ Aload 1; Invoke { mclass = "C"; mname = "leak" } ];
    [ Aload 1; Invoke { mclass = "C"; mname = "get" }; Astore 1 ];
    [ Invoke { mclass = "C"; mname = "mk" }; Astore 1 ];
  ]

let gen_method : meth Q.t =
  let open Q in
  let* picks = list_size (int_range 1 8) (int_range 0 (List.length snippets - 1)) in
  let* with_loop = bool in
  let body = List.concat_map (fun i -> List.nth snippets i) picks in
  let b =
    (* local 3 is the loop counter; snippets only touch locals 0-2 *)
    Jir.Builder.create ~name:"m" ~params:[] ~locals:4 ()
  in
  (* prologue: initialize locals *)
  Jir.Builder.emit_all b
    [
      Iconst 0;
      Istore 0;
      New "C";
      Dup;
      Invoke { mclass = "C"; mname = "<init>" };
      Astore 1;
      Aconst_null;
      Astore 2;
    ];
  if with_loop then begin
    Jir.Builder.emit_all b [ Iconst 3; Istore 3 ];
    Jir.Builder.label b "loop";
    Jir.Builder.emit_all b [ Iload 3; If_i (Le, "done") ];
    Jir.Builder.emit_all b body;
    Jir.Builder.emit_all b [ Iinc (3, -1); Goto "loop" ];
    Jir.Builder.label b "done";
    Jir.Builder.emit b Return
  end
  else begin
    Jir.Builder.emit_all b body;
    Jir.Builder.emit b Return
  end;
  return (Jir.Builder.finish b)

let gen_program : program Q.t =
  Q.map
    (fun m ->
      {
        classes =
          [
            class_def;
            { cname = "Main"; fields = []; statics = []; methods = [ m ] };
          ];
      })
    gen_method
