(* Collector tests: SATB and incremental-update marking correctness,
   sweeping, allocate-black behavior, pause-work asymmetry, and the
   negative cases (barrier removal that each collector cannot tolerate). *)

(* list-churn program: builds a list, then repeatedly unlinks the whole
   list (making garbage) and builds a new one *)
let churn_src =
  {|
class Node
  field ref next
  method void <init> (ref) locals 1 ctor
    return
  end
end
class Main
  static ref head
  method void build (int) locals 2
    aconst_null
    astore 1
  loop:
    iload 0
    ifle fin
    new Node
    dup
    invoke Node.<init>
    dup
    aload 1
    putfield Node.next
    astore 1
    iinc 0 -1
    goto loop
  fin:
    aload 1
    putstatic Main.head
    return
  end
  method void main () locals 1
    iconst 6
    istore 0
  rounds:
    iload 0
    ifle fin
    iconst 24
    invoke Main.build
    iinc 0 -1
    goto rounds
  fin:
    return
  end
end
|}

let compile src =
  Satb_core.Driver.compile ~inline_limit:100 (Jir.Parser.parse_linked src)

let run_churn ?(policy_from_analysis = true) ?(elide_all = false) gc =
  let compiled = compile churn_src in
  let policy =
    if elide_all then fun _ _ _ -> true
    else if policy_from_analysis then fun c m pc ->
      not
        (Satb_core.Driver.needs_barrier compiled
           { sk_class = c; sk_method = m; sk_pc = pc })
    else Jrt.Interp.keep_all_policy
  in
  let cfg = { Jrt.Interp.default_config with policy } in
  Jrt.Runner.run ~cfg ~gc compiled.program
    ~entry:{ Jir.Types.mclass = "Main"; mname = "main" }

let satb ?(t = 16) ?(s = 8) () =
  Jrt.Runner.Satb { steps_per_increment = s; pacing = Jrt.Pacer.config_of_trigger t }

let incr ?(t = 16) ?(s = 8) () =
  Jrt.Runner.Incr { steps_per_increment = s; pacing = Jrt.Pacer.config_of_trigger t }

let gc_of (r : Jrt.Runner.report) =
  match r.gc with Some g -> g | None -> Alcotest.fail "expected gc summary"

let test_satb_collects_garbage () =
  let r = run_churn (satb ()) in
  let g = gc_of r in
  Alcotest.(check int) "no violations" 0 g.total_violations;
  Alcotest.(check bool) "ran cycles" true (g.cycles >= 2);
  (* churn makes garbage: live_count well below total allocations *)
  let h = r.machine.Jrt.Interp.heap in
  Alcotest.(check bool) "swept garbage" true
    (h.Jrt.Heap.live_count < h.Jrt.Heap.total_allocated)

let test_incr_collects_garbage () =
  let r = run_churn ~policy_from_analysis:false (incr ()) in
  let g = gc_of r in
  Alcotest.(check int) "no violations" 0 g.total_violations;
  Alcotest.(check bool) "ran cycles" true (g.cycles >= 2);
  let h = r.machine.Jrt.Interp.heap in
  Alcotest.(check bool) "swept garbage" true
    (h.Jrt.Heap.live_count < h.Jrt.Heap.total_allocated)

let test_satb_sound_with_analysis_policy () =
  (* the initializing stores in build are elided; SATB stays correct *)
  let compiled = compile churn_src in
  let stats = Satb_core.Driver.static_stats compiled in
  Alcotest.(check bool) "something was elided" true (stats.elided_sites > 0);
  let r = run_churn (satb ()) in
  Alcotest.(check int) "no violations" 0 (gc_of r).total_violations

let test_satb_catches_unsound_elision () =
  (* removing every barrier breaks the snapshot: jess's working-memory
     overwrites unlink fact subgraphs during marking without logging *)
  let cw = Harness.Exp.compile Workloads.Jess.t in
  let cfg = { Jrt.Interp.default_config with policy = (fun _ _ _ -> true) } in
  let r =
    Jrt.Runner.run ~cfg
      ~gc:(Jrt.Runner.Satb { steps_per_increment = 8; pacing = Jrt.Pacer.config_of_trigger 32 })
      cw.compiled.program ~entry:Workloads.Jess.t.entry
  in
  Alcotest.(check bool) "violations detected" true
    ((gc_of r).total_violations > 0)

let test_incr_breaks_under_satb_policy () =
  (* pre-null elision is SATB-specific: a card-marking collector must
     hear about initializing stores into already-scanned objects.  (The
     churn program's elided store writes into a *fresh* object, which
     incremental update scans late, so this program alone stays correct;
     mtrt's pattern — elided stores into pre-cycle objects — breaks it.) *)
  let cw = Harness.Exp.compile Workloads.Mtrt.t in
  let r =
    Harness.Exp.run
      ~gc:(Jrt.Runner.Incr { steps_per_increment = 2; pacing = Jrt.Pacer.config_of_trigger 4 })
      ~use_policy:true ~seed:3 ~quantum:100 ~gc_period:16 cw
  in
  Alcotest.(check bool) "incremental update misses objects" true
    ((gc_of r).total_violations > 0)

let test_pause_asymmetry () =
  (* same budgets: the incremental final pause does far more work *)
  let satb_pause =
    List.fold_left max 0 (gc_of (run_churn (satb ()))).final_pause_works
  in
  let incr_pause =
    List.fold_left max 0
      (gc_of (run_churn ~policy_from_analysis:false (incr ()))).final_pause_works
  in
  Alcotest.(check bool)
    (Printf.sprintf "incr pause (%d) > satb pause (%d)" incr_pause satb_pause)
    true
    (incr_pause > satb_pause)

let test_satb_allocate_black () =
  (* objects allocated during marking are implicitly marked and never
     swept in that cycle, even if dead by cycle end *)
  let r = run_churn ~policy_from_analysis:false (satb ~t:8 ~s:2 ()) in
  let g = gc_of r in
  Alcotest.(check int) "no violations" 0 g.total_violations

let test_use_after_free_guard () =
  (* with sound policies the interpreter's dead-object guard never fires;
     this is implied by the runs above finishing without Runtime_bug *)
  let r = run_churn (satb ()) in
  Alcotest.(check (list (pair int string))) "no errors" [] r.thread_errors

(* deterministic replay: same seed → same schedule → same stats *)
let test_deterministic_replay () =
  let once () =
    let r = run_churn ~policy_from_analysis:false (satb ()) in
    (r.steps, r.dyn.total_execs, (gc_of r).final_pause_works)
  in
  Alcotest.(check bool) "identical replays" true (once () = once ())

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("satb collects garbage", test_satb_collects_garbage);
      ("incr collects garbage", test_incr_collects_garbage);
      ("satb sound with analysis", test_satb_sound_with_analysis_policy);
      ("satb catches unsound elision", test_satb_catches_unsound_elision);
      ("incr breaks under satb policy", test_incr_breaks_under_satb_policy);
      ("pause asymmetry", test_pause_asymmetry);
      ("allocate black", test_satb_allocate_black);
      ("no use-after-free", test_use_after_free_guard);
      ("deterministic replay", test_deterministic_replay);
    ]
