(** Hand-written lexer for mini-Java. *)

type token =
  | Tident of string
  | Tint_lit of int
  | Tkw of string  (** reserved word *)
  | Tpunct of string  (** operator or delimiter, longest-match *)
  | Teof

type spanned = { tok : token; pos : Ast.pos }

exception Lex_error of { pos : Ast.pos; message : string }

let keywords =
  [
    "class"; "int"; "void"; "static"; "new"; "null"; "this"; "return";
    "if"; "else"; "while"; "for"; "spawn";
  ]

let puncts =
  (* longest first, so matching can be greedy *)
  [
    "&&"; "||"; "=="; "!="; "<="; ">="; "["; "]"; "("; ")"; "{"; "}";
    "<"; ">"; "="; "+"; "-"; "*"; "/"; "%"; "!"; ";"; ","; ".";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** Tokenize a whole source string; [//] comments and [/* */] block
    comments are skipped. *)
let tokenize (src : string) : spanned list =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let out = ref [] in
  let pos () : Ast.pos = { line = !line; col = !col } in
  let advance () =
    (if !i < n then
       match src.[!i] with
       | '\n' ->
           incr line;
           col := 1
       | _ -> incr col);
    incr i
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let error message = raise (Lex_error { pos = pos (); message }) in
  while !i < n do
    match src.[!i] with
    | ' ' | '\t' | '\r' | '\n' -> advance ()
    | '/' when peek 1 = Some '/' ->
        while !i < n && src.[!i] <> '\n' do
          advance ()
        done
    | '/' when peek 1 = Some '*' ->
        advance ();
        advance ();
        let closed = ref false in
        while (not !closed) && !i < n do
          if src.[!i] = '*' && peek 1 = Some '/' then begin
            advance ();
            advance ();
            closed := true
          end
          else advance ()
        done;
        if not !closed then error "unterminated block comment"
    | c when is_digit c ->
        let p = pos () in
        let start = !i in
        while !i < n && is_digit src.[!i] do
          advance ()
        done;
        let text = String.sub src start (!i - start) in
        out := { tok = Tint_lit (int_of_string text); pos = p } :: !out
    | c when is_ident_start c ->
        let p = pos () in
        let start = !i in
        while !i < n && is_ident_char src.[!i] do
          advance ()
        done;
        let text = String.sub src start (!i - start) in
        let tok =
          if List.mem text keywords then Tkw text else Tident text
        in
        out := { tok; pos = p } :: !out
    | _ ->
        let p = pos () in
        let matched =
          List.find_opt
            (fun punct ->
              let l = String.length punct in
              !i + l <= n && String.sub src !i l = punct)
            puncts
        in
        (match matched with
        | Some punct ->
            for _ = 1 to String.length punct do
              advance ()
            done;
            out := { tok = Tpunct punct; pos = p } :: !out
        | None -> error (Printf.sprintf "unexpected character %C" src.[!i]))
  done;
  List.rev ({ tok = Teof; pos = pos () } :: !out)

let string_of_token = function
  | Tident s -> Printf.sprintf "identifier %S" s
  | Tint_lit n -> Printf.sprintf "integer %d" n
  | Tkw s -> Printf.sprintf "keyword %S" s
  | Tpunct s -> Printf.sprintf "%S" s
  | Teof -> "end of input"
