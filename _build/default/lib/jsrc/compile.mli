(** Type checking and code generation: mini-Java AST → JIR.  Instance
    methods receive their receiver as JIR parameter 0; classes without an
    explicit constructor get a synthesized trivial one. *)

exception Type_error of { pos : Ast.pos; message : string }

val pp_error : exn Fmt.t
(** Render a type, parse, or lex error for the user. *)

val compile_program : Ast.program -> Jir.Program.t
val compile_source : string -> Jir.Program.t
